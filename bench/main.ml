(* Benchmark and reproduction harness.

   Usage:
     dune exec bench/main.exe                 -- run every section
     dune exec bench/main.exe <section> ...   -- run selected sections
     dune exec bench/main.exe -- --json <section> ...
         -- additionally time each section, rerun them serially with the
            analysis cache disabled, and write speedup, cache statistics
            and per-entry ILP metrics to BENCH_wcet.json

   Sections (one per paper artefact, see DESIGN.md's experiment index):
     table1   Table 1  - WCET with/without cache pinning
     table2   Table 2  - before/after WCET, computed vs observed, L2 off/on
     fig7     Fig. 7   - capability-decode depth sweep (observed)
     fig8     Fig. 8   - hardware-model overestimation on forced paths
     fig9     Fig. 9   - observed effect of L2 cache and branch predictor
     sched    Sections 3.1-3.2 - scheduler ablation (lazy/Benno/bitmap)
     loopbounds Section 5.3   - automatically computed loop bounds
     analysis Section 6.3     - ILP sizes, solver effort, constraint effect
     constraints Section 5.2  - WCET under manual vs derived constraints
     summary  Section 6       - headline numbers
     sim      stochastic soak: observed IRQ latency vs the computed bound
     smp      multicore soak: shielded vs spread IRQ affinity at 4 cores
     micro    Bechamel microbenchmarks of the core data structures *)

let run_table1 () = Sel4_rt.Experiments.(print_table1 (table1 ()))

(* The latest table2 rows, kept for the --json report (observed-WCET
   provenance). *)
let table2_rows : Sel4_rt.Experiments.table2_row list ref = ref []

let run_table2 () =
  let rows = Sel4_rt.Experiments.table2 () in
  table2_rows := rows;
  Sel4_rt.Experiments.print_table2 rows
let run_fig7 () = Sel4_rt.Experiments.(print_fig7 (fig7 ()))
let run_fig8 () = Sel4_rt.Experiments.(print_fig8 (fig8 ()))
let run_fig9 () = Sel4_rt.Experiments.(print_fig9 (fig9 ()))
let run_sched () = Sel4_rt.Experiments.(print_sched (sched_ablation ()))
let run_loopbounds () = Sel4_rt.Experiments.(print_loop_bounds (loop_bounds ()))
let run_analysis () = Sel4_rt.Experiments.(print_analysis_cost (analysis_cost ()))

let run_constraints () =
  Sel4_rt.Experiments.(print_constraint_modes (constraint_modes ()))
let run_summary () = Sel4_rt.Experiments.(print_summary (summary ()))
let run_l2lock () = Sel4_rt.Experiments.(print_l2_lock (l2_lock ()))
let run_callpreempt () = Sel4_rt.Experiments.(print_call_preempt (call_preempt ()))
let run_fastpath () = Sel4_rt.Experiments.(print_fastpath (fastpath_ablation ()))
let run_replacement () = Sel4_rt.Experiments.(print_replacement (replacement ()))

(* The latest fault-injection report, kept for the --json summary. *)
let inject_report : Inject.report option ref = ref None

let run_inject () =
  let report = Inject.run_campaign ~smoke:true (Sel4_rt.Analysis_ctx.default) in
  inject_report := Some report;
  Fmt.pr "%a@." Inject.pp_report report

(* The latest race-audit and schedule-exploration reports, kept for the
   --json summary: the explore counters feed the BENCH_wcet.json explore
   object and the perf-ledger record. *)
let race_report : Race.audit_report option ref = ref None
let explore_report : Explore.report option ref = ref None

let run_race () =
  let report = Race.audit ~smoke:true Sel4_rt.Analysis_ctx.default in
  race_report := Some report;
  Fmt.pr "%a@." Race.pp_matrix ();
  Fmt.pr "%a@." Race.pp_og ();
  Fmt.pr "%a@." Race.pp_audit report

let run_explore () =
  let report = Explore.run ~smoke:true Sel4_rt.Analysis_ctx.default in
  explore_report := Some report;
  Fmt.pr "%a@." Explore.pp_report report

(* The latest soak-campaign report and its wall-clock economics, kept for
   the --json summary, plus the worst-delivery forensics (tail flight
   recorder, bound decomposition and gap reports). *)
let sim_report : (Sim.report * Sim.throughput) option ref = ref None
let sim_forensics : Sim.forensics option ref = ref None

let run_sim () =
  let report, th, forensics = Sim.run_campaign_forensics ~smoke:true () in
  sim_report := Some (report, th);
  sim_forensics := Some forensics;
  Fmt.pr "%a@." Sim.pp_report report;
  Fmt.pr "%a@." Obs.Tail_report.pp forensics.Sim.fo_tail;
  List.iter (fun g -> Fmt.pr "%a@." Obs.Gap_report.pp g) forensics.Sim.fo_gaps;
  Fmt.pr "%a@." Sim.pp_throughput th

(* The latest SMP shielded-vs-spread runs, kept for the --json summary:
   the smp object in BENCH_wcet.json records the IPI accounting and the
   tail comparison so CI can gate on zero per-core bound violations and
   on the shielded core keeping the strictly lower tail. *)
let smp_reports :
    (Smp.Soak.report * Smp.Soak.report * Smp.Soak.comparison) option ref =
  ref None

let run_smp () =
  let shielded, spread, cmp = Smp.Soak.run_compare ~smoke:true ~cores:4 () in
  smp_reports := Some (shielded, spread, cmp);
  Fmt.pr "%a@." Smp.Soak.pp_report shielded;
  Fmt.pr "%a@." Smp.Soak.pp_report spread;
  Fmt.pr "%a@." Smp.Soak.pp_comparison cmp

(* --- Bechamel microbenchmarks --- *)

let micro_tests () =
  let open Bechamel in
  let cache_test =
    let cache = Hw.Cache.create ~line_size:32 ~sets:128 ~ways:4 () in
    let counter = ref 0 in
    Test.make ~name:"l1-cache-access"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Hw.Cache.access cache ~write:false (!counter * 32 mod 65536))))
  in
  let sched_test variant name =
    let build = { Sel4.Build.improved with Sel4.Build.sched = variant } in
    let env = Sel4.Boot.boot build in
    let threads =
      List.init 16 (fun i ->
          Sel4.Boot.spawn_thread env ~priority:(64 + i) ~dest:(20 + i))
    in
    List.iter (Sel4.Boot.make_runnable env) threads;
    let ctx = Sel4.Kernel.ctx env.Sel4.Boot.k in
    let sched = env.Sel4.Boot.k.Sel4.Kernel.sched in
    Test.make ~name:("choose-thread-" ^ name)
      (Staged.stage (fun () -> ignore (Sel4.Sched.choose_thread ctx sched)))
  in
  let fastpath_test =
    let module K = Sel4.Kernel in
    let module B = Sel4.Boot in
    let env = B.boot Sel4.Build.improved in
    let _ep = B.spawn_endpoint env ~dest:10 in
    let server = B.spawn_thread env ~priority:150 ~dest:11 in
    let client = B.spawn_thread env ~priority:120 ~dest:12 in
    B.make_runnable env server;
    B.make_runnable env client;
    K.force_run env.B.k server;
    ignore (K.kernel_entry env.B.k (K.Ev_recv { ep = 10 }));
    Test.make ~name:"ipc-call-reply-roundtrip"
      (Staged.stage (fun () ->
           K.force_run env.B.k client;
           ignore
             (K.kernel_entry env.B.k
                (K.Ev_call
                   { ep = 10; badge_hint = 0; msg_len = 2; extra_caps = [] }));
           K.force_run env.B.k server;
           ignore
             (K.kernel_entry env.B.k (K.Ev_reply_recv { ep = 10; msg_len = 1 }))))
  in
  let ilp_test =
    (* Bypass the analysis cache: the point is to measure the pipeline, not
       a table lookup. *)
    Test.make ~name:"ipet-interrupt-analysis"
      (Staged.stage (fun () ->
           ignore
             (Wcet.Ipet.analyse ~config:Hw.Config.default
                (Sel4_rt.Kernel_model.spec Sel4.Build.improved
                   Sel4_rt.Kernel_model.Interrupt))))
  in
  Test.make_grouped ~name:"micro"
    [
      cache_test;
      sched_test Sel4.Build.Lazy "lazy";
      sched_test Sel4.Build.Benno "benno";
      sched_test Sel4.Build.Benno_bitmap "bitmap";
      fastpath_test;
      ilp_test;
    ]

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  Fmt.pr "@.Bechamel microbenchmarks (wall-clock of the simulator itself)@.";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] -> Fmt.pr "  %-40s %12.1f ns/run@." name ns
      | _ -> Fmt.pr "  %-40s %12s@." name "-")
    rows

let sections =
  [
    ("table1", run_table1);
    ("table2", run_table2);
    ("fig7", run_fig7);
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("sched", run_sched);
    ("loopbounds", run_loopbounds);
    ("analysis", run_analysis);
    ("constraints", run_constraints);
    ("summary", run_summary);
    ("l2lock", run_l2lock);
    ("callpreempt", run_callpreempt);
    ("fastpath", run_fastpath);
    ("replacement", run_replacement);
    ("inject", run_inject);
    ("race", run_race);
    ("explore", run_explore);
    ("sim", run_sim);
    ("smp", run_smp);
    ("micro", run_micro);
  ]

(* --- driver --- *)

let section_fn name =
  match List.assoc_opt name sections with
  | Some f -> f
  | None ->
      Fmt.epr "unknown section %s; available: %s@." name
        (String.concat " " (List.map fst sections));
      exit 1

(* Run [f] with the standard formatter's output discarded (the serial
   baseline rerun recomputes every section; its output is redundant). *)
let silenced f =
  let fmt = Format.std_formatter in
  Format.pp_print_flush fmt ();
  let saved = Format.pp_get_formatter_out_functions fmt () in
  Format.pp_set_formatter_out_functions fmt
    {
      Format.out_string = (fun _ _ _ -> ());
      out_flush = (fun () -> ());
      out_newline = (fun () -> ());
      out_spaces = (fun _ -> ());
      out_indent = (fun _ -> ());
    };
  Fun.protect
    ~finally:(fun () ->
      Format.pp_print_flush fmt ();
      Format.pp_set_formatter_out_functions fmt saved)
    f

let timed f =
  let started = Wcet.Clock.now_s () in
  f ();
  Wcet.Clock.now_s () -. started

(* Minimal JSON emission; every string we print is a known identifier, so
   escaping only needs the basics. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* A run (or section) is "warm" when any result came from the persistent
   disk cache rather than an in-process solve; the three counters
   partition lookups, so cold solves are exactly [misses]. *)
let cache_mode_of (stats : Sel4_rt.Analysis_cache.stats) =
  if stats.Sel4_rt.Analysis_cache.disk_hits > 0 then "warm" else "cold"

let cache_stats_json (stats : Sel4_rt.Analysis_cache.stats) =
  Printf.sprintf
    "{\"mode\": \"%s\", \"hits\": %d, \"disk_hits\": %d, \"misses\": %d, \
     \"hit_rate\": %.6f, \"prefix_hits\": %d, \"prefix_misses\": %d}"
    (cache_mode_of stats) stats.Sel4_rt.Analysis_cache.hits
    stats.Sel4_rt.Analysis_cache.disk_hits stats.Sel4_rt.Analysis_cache.misses
    (Sel4_rt.Analysis_cache.hit_rate stats)
    stats.Sel4_rt.Analysis_cache.prefix_hits
    stats.Sel4_rt.Analysis_cache.prefix_misses

let provenance_json (p : Sel4_rt.Workloads.provenance) =
  Printf.sprintf
    "{\"workload\": \"%s\", \"worst_seed\": %d, \"section\": \"%s\", \
     \"section_cycles\": %d, \"cycles_to_preempt\": %s, \"stall_cycles\": %d, \
     \"compute_cycles\": %d}"
    (json_escape p.Sel4_rt.Workloads.workload)
    p.Sel4_rt.Workloads.worst_seed
    (json_escape p.Sel4_rt.Workloads.section)
    p.Sel4_rt.Workloads.section_cycles
    (match p.Sel4_rt.Workloads.cycles_to_preempt with
    | Some c -> string_of_int c
    | None -> "null")
    p.Sel4_rt.Workloads.stall_cycles p.Sel4_rt.Workloads.compute_cycles

let table2_cell_json (c : Sel4_rt.Experiments.table2_cell) =
  Printf.sprintf "{\"computed\": %d, \"observed\": %d, \"provenance\": %s}"
    c.Sel4_rt.Experiments.computed c.Sel4_rt.Experiments.observed
    (provenance_json c.Sel4_rt.Experiments.prov)

let write_json ~path ~elapsed_s ~section_times ~engine_wall_s
    ~serial_fresh_wall_s ~(stats : Sel4_rt.Analysis_cache.stats) ~domains
    ~requested_domains ~recommended_domains ~warning ~analysis_rows
    ~constraint_rows ~table2_rows ~inject_rep ~race_rep ~explore_rep ~sim_rep
    ~sim_forensics ~smp_rep =
  let buf = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let f v = Printf.sprintf "%.6f" v in
  addf "{\n  \"sections\": [\n";
  List.iteri
    (fun i (name, wall, sstats) ->
      addf "    {\"name\": \"%s\", \"wall_s\": %s, \"cache\": %s}%s\n"
        (json_escape name) (f wall)
        (cache_stats_json sstats)
        (if i < List.length section_times - 1 then "," else ""))
    section_times;
  addf "  ],\n";
  addf "  \"engine_wall_s\": %s,\n" (f engine_wall_s);
  addf "  \"serial_fresh_wall_s\": %s,\n" (f serial_fresh_wall_s);
  (* Omitted (not zeroed) on single-domain runs: see
     Serve.Envelope.speedup_field. *)
  (match
     Serve.Envelope.speedup_field ~domains ~engine_wall_s ~serial_fresh_wall_s
   with
  | Some v -> addf "  \"speedup\": %s,\n" v
  | None -> ());
  addf "  \"domains\": %d,\n" domains;
  addf "  \"requested_domains\": %s,\n"
    (match requested_domains with Some n -> string_of_int n | None -> "null");
  addf "  \"recommended_domains\": %d,\n" recommended_domains;
  addf "  \"warning\": %s,\n"
    (match warning with
    | Some w -> Printf.sprintf "\"%s\"" (json_escape w)
    | None -> "null");
  addf "  \"cache_mode\": \"%s\",\n" (cache_mode_of stats);
  addf "  \"cache\": %s,\n" (cache_stats_json stats);
  addf "  \"metrics\": %s,\n"
    (Obs.Metrics.to_json (Obs.Metrics.snapshot ()));
  (match table2_rows with
  | [] -> ()
  | rows ->
      addf "  \"table2\": [\n";
      List.iteri
        (fun i (r : Sel4_rt.Experiments.table2_row) ->
          addf "    {\"entry\": \"%s\", \"l2_off\": %s, \"l2_on\": %s}%s\n"
            (json_escape
               (Sel4_rt.Kernel_model.entry_name r.Sel4_rt.Experiments.t2_entry))
            (table2_cell_json r.Sel4_rt.Experiments.after_l2_off)
            (table2_cell_json r.Sel4_rt.Experiments.after_l2_on)
            (if i < List.length rows - 1 then "," else ""))
        rows;
      addf "  ],\n");
  (match inject_rep with
  | None -> ()
  | Some (r : Inject.report) ->
      addf
        "  \"inject\": {\"seed\": %d, \"smoke\": %b, \"campaigns\": %d, \
         \"runs\": %d, \"points_covered\": %d, \"max_restarts\": %d, \
         \"failures\": %d, \"ops\": [\n"
        r.Inject.r_seed r.Inject.r_smoke
        (List.length r.Inject.r_ops)
        r.Inject.r_total_runs
        (List.fold_left (fun a o -> a + o.Inject.o_points) 0 r.Inject.r_ops)
        (List.fold_left (fun a o -> max a o.Inject.o_max_restarts) 0 r.Inject.r_ops)
        (List.fold_left
           (fun a o -> a + List.length o.Inject.o_failures)
           0 r.Inject.r_ops);
      List.iteri
        (fun i (o : Inject.op_report) ->
          addf
            "    {\"op\": \"%s\", \"points\": %d, \"runs\": %d, \
             \"max_restarts\": %d, \"failures\": %d}%s\n"
            (json_escape (Inject.op_name o.Inject.o_op))
            o.Inject.o_points o.Inject.o_runs o.Inject.o_max_restarts
            (List.length o.Inject.o_failures)
            (if i < List.length r.Inject.r_ops - 1 then "," else ""))
        r.Inject.r_ops;
      addf "  ]},\n");
  (match explore_rep with
  | None -> ()
  | Some (r : Explore.report) ->
      let sum g = List.fold_left (fun a s -> a + g s) 0 r.Explore.x_scens in
      addf
        "  \"explore\": {\"smoke\": %b, \"depth\": %d, \"runs\": %d, \
         \"universe\": %d, \"explored\": %d, \"pruned\": %d, \"deduped\": \
         %d, \"digest_classes\": %d, \"failures\": %d, \
         \"audit_violations\": %s, \"ops\": [\n"
        r.Explore.x_smoke r.Explore.x_depth r.Explore.x_total_runs
        (sum (fun s -> s.Explore.e_universe))
        (sum (fun s -> s.Explore.e_explored))
        (sum (fun s -> s.Explore.e_pruned))
        (sum (fun s -> s.Explore.e_deduped))
        (sum (fun s -> s.Explore.e_digest_classes))
        (sum (fun s -> List.length s.Explore.e_failures))
        (match race_rep with
        | None -> "null"
        | Some (a : Race.audit_report) ->
            string_of_int (List.length a.Race.ar_violations));
      List.iteri
        (fun i (s : Explore.scen_report) ->
          addf
            "    {\"op\": \"%s\", \"polls\": %d, \"universe\": %d, \
             \"explored\": %d, \"pruned\": %d, \"deduped\": %d, \
             \"digest_classes\": %d, \"failures\": %d}%s\n"
            (json_escape s.Explore.e_scenario)
            s.Explore.e_polls s.Explore.e_universe s.Explore.e_explored
            s.Explore.e_pruned s.Explore.e_deduped s.Explore.e_digest_classes
            (List.length s.Explore.e_failures)
            (if i < List.length r.Explore.x_scens - 1 then "," else ""))
        r.Explore.x_scens;
      addf "  ]},\n");
  (match sim_rep with
  | None -> ()
  | Some ((r : Sim.report), (th : Sim.throughput)) ->
      addf "  \"sim\": %s,\n" (Sim.campaign_json r th));
  (match smp_rep with
  | None -> ()
  | Some
      ( (sh : Smp.Soak.report),
        (sp : Smp.Soak.report),
        (cmp : Smp.Soak.comparison) ) ->
      (* Summary counters only; the full per-scenario per-core tables are
         available from `sel4rt sim --cores N` (Smp.Soak.report_json). *)
      let policy_obj (r : Smp.Soak.report) =
        Printf.sprintf
          "{\"policy\": \"%s\", \"cores\": %d, \"entries_per_core\": %d, \
           \"deliveries\": %d, \"ipi_sent\": %d, \"ipi_delivered\": %d, \
           \"ipi_cancelled\": %d, \"ipi_coalesced\": %d, \"violations\": %d, \
           \"invariant_failures\": %d, \"ok\": %b}"
          (Smp.Topology.policy_name r.Smp.Soak.rp_policy)
          r.Smp.Soak.rp_cores r.Smp.Soak.rp_entries_per_core
          r.Smp.Soak.rp_deliveries r.Smp.Soak.rp_ipi_sent
          r.Smp.Soak.rp_ipi_delivered r.Smp.Soak.rp_ipi_cancelled
          r.Smp.Soak.rp_ipi_coalesced r.Smp.Soak.rp_violations
          r.Smp.Soak.rp_invariant_failures r.Smp.Soak.rp_ok
      in
      addf
        "  \"smp\": {\"base_bound\": %d, \"shielded\": %s, \"spread\": %s, \
         \"comparison\": %s},\n"
        sh.Smp.Soak.rp_base_bound (policy_obj sh) (policy_obj sp)
        (Smp.Soak.comparison_json cmp));
  (match sim_forensics with
  | None -> ()
  | Some (f : Sim.forensics) ->
      (* The worst-delivery flight recorder and the bound/observation gap
         alignment; the tail entries carry window sizes, not the raw
         event streams (those go to per-delivery Chrome trace files via
         `sel4rt sim --forensics-out`). *)
      addf "  \"forensics\": {\n    \"tail\": %s,\n"
        (Obs.Tail_report.to_json f.Sim.fo_tail);
      addf "    \"gaps\": %s,\n" (Obs.Gap_report.to_json f.Sim.fo_gaps);
      addf "    \"profiles\": {\n";
      List.iteri
        (fun i (label, p) ->
          addf "      \"%s\": %s%s\n" (json_escape label)
            (Obs.Bound_profile.to_json p)
            (if i < List.length f.Sim.fo_profiles - 1 then "," else ""))
        f.Sim.fo_profiles;
      addf "    }\n  },\n");
  addf "  \"analysis\": [\n";
  List.iteri
    (fun i (r : Sel4_rt.Experiments.analysis_cost_row) ->
      addf
        "    {\"entry\": \"%s\", \"ilp_vars\": %d, \"ilp_constraints\": %d, \
         \"bb_nodes\": %d, \"lp_solves\": %d, \"elapsed_s\": %s, \"wcet\": \
         %d}%s\n"
        (json_escape
           (Sel4_rt.Kernel_model.entry_name r.Sel4_rt.Experiments.ac_entry))
        r.Sel4_rt.Experiments.ilp_vars r.Sel4_rt.Experiments.ilp_constraints
        r.Sel4_rt.Experiments.bb_nodes r.Sel4_rt.Experiments.lp_solves
        (f r.Sel4_rt.Experiments.elapsed_s)
        r.Sel4_rt.Experiments.constrained_wcet
        (if i < List.length analysis_rows - 1 then "," else ""))
    analysis_rows;
  addf "  ],\n";
  addf "  \"constraints\": [\n";
  List.iteri
    (fun i (r : Sel4_rt.Experiments.constraint_mode_row) ->
      addf
        "    {\"entry\": \"%s\", \"unconstrained\": %d, \"manual\": %d, \
         \"derived\": %d, \"combined\": %d, \"wcet_delta\": %d, \
         \"n_manual\": %d, \"n_derived\": %d, \"proved\": %d, \
         \"refuted\": %d, \"unknown\": %d}%s\n"
        (json_escape
           (Sel4_rt.Kernel_model.entry_name r.Sel4_rt.Experiments.cm_entry))
        r.Sel4_rt.Experiments.cm_unconstrained r.Sel4_rt.Experiments.cm_manual
        r.Sel4_rt.Experiments.cm_derived r.Sel4_rt.Experiments.cm_combined
        (r.Sel4_rt.Experiments.cm_unconstrained
        - r.Sel4_rt.Experiments.cm_combined)
        r.Sel4_rt.Experiments.cm_n_manual r.Sel4_rt.Experiments.cm_n_derived
        r.Sel4_rt.Experiments.cm_proved r.Sel4_rt.Experiments.cm_refuted
        r.Sel4_rt.Experiments.cm_unknown
        (if i < List.length constraint_rows - 1 then "," else ""))
    constraint_rows;
  addf "  ]\n}";
  (* The whole report rides in the unified envelope ([compact:false]:
     the payload keeps its multi-line layout). *)
  let doc =
    Serve.Envelope.wrap ~compact:false ~status:Serve.Envelope.Ok ~elapsed_s
      ~payload:(Buffer.contents buf) ()
  in
  let oc = open_out path in
  output_string oc doc;
  close_out oc

(* --- perf ledger: one JSON line per `bench --json` run --- *)

(* Current commit without shelling out: CI exports GITHUB_SHA; a local
   checkout is resolved through .git/HEAD. *)
let current_commit () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some sha when String.trim sha <> "" -> String.trim sha
  | _ -> (
      let read_line_of path =
        if Sys.file_exists path then (
          let ic = open_in path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> try Some (String.trim (input_line ic)) with End_of_file -> None))
        else None
      in
      match read_line_of ".git/HEAD" with
      | Some head when String.length head > 5 && String.sub head 0 5 = "ref: "
        -> (
          let r = String.trim (String.sub head 5 (String.length head - 5)) in
          match read_line_of (Filename.concat ".git" r) with
          | Some sha -> sha
          | None -> "unknown")
      | Some sha -> sha
      | None -> "unknown")

(* The ledger is append-only: one record per run with the wall-clock
   economics and every computed bound, so CI can diff consecutive records
   and fail on throughput regressions or silent bound drift. *)
let append_history ~path ~engine_wall_s ~serial_fresh_wall_s
    ~(stats : Sel4_rt.Analysis_cache.stats) ~sim_rep ~explore_rep ~smp_rep =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "{\"commit\": \"%s\"" (json_escape (current_commit ()));
  addf ", \"engine_wall_s\": %.6f" engine_wall_s;
  addf ", \"serial_fresh_wall_s\": %.6f" serial_fresh_wall_s;
  (* Cold and warm runs both land in the ledger, labelled: comparing
     consecutive records only makes sense within one mode. *)
  addf ", \"cache_mode\": \"%s\"" (cache_mode_of stats);
  addf ", \"cache\": {\"hits\": %d, \"disk_hits\": %d, \"misses\": %d}"
    stats.Sel4_rt.Analysis_cache.hits stats.Sel4_rt.Analysis_cache.disk_hits
    stats.Sel4_rt.Analysis_cache.misses;
  (match sim_rep with
  | None ->
      addf ", \"soak_entries_per_sec\": null, \"bounds\": {}"
  | Some ((r : Sim.report), (th : Sim.throughput)) ->
      addf ", \"soak_entries_per_sec\": %.1f" th.Sim.th_entries_per_sec;
      addf ", \"soak_minor_words_per_entry\": %.2f"
        th.Sim.th_minor_words_per_entry;
      let bounds =
        List.fold_left
          (fun acc rr ->
            if List.mem_assoc rr.Sim.rr_build acc then acc
            else acc @ [ (rr.Sim.rr_build, rr.Sim.rr_bound) ])
          [] r.Sim.rp_runs
      in
      addf ", \"bounds\": {";
      List.iteri
        (fun i (label, b) ->
          addf "%s\"%s\": %d" (if i > 0 then ", " else "") (json_escape label) b)
        bounds;
      addf "}");
  (match explore_rep with
  | None -> addf ", \"explore\": null"
  | Some (r : Explore.report) ->
      let sum g = List.fold_left (fun a s -> a + g s) 0 r.Explore.x_scens in
      addf
        ", \"explore\": {\"explored\": %d, \"pruned\": %d, \"deduped\": %d, \
         \"digest_classes\": %d, \"failures\": %d}"
        (sum (fun s -> s.Explore.e_explored))
        (sum (fun s -> s.Explore.e_pruned))
        (sum (fun s -> s.Explore.e_deduped))
        (sum (fun s -> s.Explore.e_digest_classes))
        (sum (fun s -> List.length s.Explore.e_failures)));
  (match smp_rep with
  | None -> addf ", \"smp\": null"
  | Some
      ( (sh : Smp.Soak.report),
        (sp : Smp.Soak.report),
        (cmp : Smp.Soak.comparison) ) ->
      addf
        ", \"smp\": {\"ipi_sent\": %d, \"ipi_delivered\": %d, \
         \"ipi_cancelled\": %d, \"ipi_coalesced\": %d, \"violations\": %d, \
         \"shielded_p999\": %d, \"shielded_max\": %d, \"spread_p999\": %d, \
         \"spread_max\": %d, \"shielded_tail_lower\": %b}"
        (sh.Smp.Soak.rp_ipi_sent + sp.Smp.Soak.rp_ipi_sent)
        (sh.Smp.Soak.rp_ipi_delivered + sp.Smp.Soak.rp_ipi_delivered)
        (sh.Smp.Soak.rp_ipi_cancelled + sp.Smp.Soak.rp_ipi_cancelled)
        (sh.Smp.Soak.rp_ipi_coalesced + sp.Smp.Soak.rp_ipi_coalesced)
        (sh.Smp.Soak.rp_violations + sp.Smp.Soak.rp_violations)
        cmp.Smp.Soak.cmp_shielded.Sim.ls_p999
        cmp.Smp.Soak.cmp_shielded.Sim.ls_max
        cmp.Smp.Soak.cmp_spread.Sim.ls_p999 cmp.Smp.Soak.cmp_spread.Sim.ls_max
        cmp.Smp.Soak.cmp_tail_lower);
  addf "}\n";
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (Buffer.contents buf);
  close_out oc

let () =
  (* The persistent result cache makes repeat bench runs warm-start
     (SEL4RT_NO_DISK_CACHE opts out; the serial-fresh baseline below
     bypasses the whole memo path, disk included). *)
  Serve.Disk_cache.install ();
  let started_s = Wcet.Clock.now_s () in
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, names = List.partition (fun a -> String.length a > 1 && a.[0] = '-') args in
  let json = List.mem "--json" flags in
  (match List.filter (fun fl -> fl <> "--json") flags with
  | [] -> ()
  | fl :: _ ->
      Fmt.epr "unknown flag %s (only --json is supported)@." fl;
      exit 1);
  let requested = match names with [] -> List.map fst sections | _ -> names in
  (* Each section starts with fresh hit/miss counters, so the --json report
     can attribute cache behaviour per section; the cumulative view is the
     per-section sum. *)
  let section_times =
    List.map
      (fun name ->
        let f = section_fn name in
        Fmt.pr "==== %s ====@." name;
        Sel4_rt.Analysis_cache.reset_stats ();
        let wall = timed f in
        (name, wall, Sel4_rt.Analysis_cache.stats ()))
      requested
  in
  if json then begin
    let engine_wall_s =
      List.fold_left (fun a (_, t, _) -> a +. t) 0.0 section_times
    in
    let stats =
      List.fold_left
        (fun (a : Sel4_rt.Analysis_cache.stats) (_, _, (s : Sel4_rt.Analysis_cache.stats)) ->
          {
            Sel4_rt.Analysis_cache.hits = a.Sel4_rt.Analysis_cache.hits + s.Sel4_rt.Analysis_cache.hits;
            disk_hits = a.Sel4_rt.Analysis_cache.disk_hits + s.Sel4_rt.Analysis_cache.disk_hits;
            misses = a.Sel4_rt.Analysis_cache.misses + s.Sel4_rt.Analysis_cache.misses;
            prefix_hits = a.Sel4_rt.Analysis_cache.prefix_hits + s.Sel4_rt.Analysis_cache.prefix_hits;
            prefix_misses = a.Sel4_rt.Analysis_cache.prefix_misses + s.Sel4_rt.Analysis_cache.prefix_misses;
          })
        { Sel4_rt.Analysis_cache.hits = 0; disk_hits = 0; misses = 0; prefix_hits = 0; prefix_misses = 0 }
        section_times
    in
    (* The pool size is resolved once per process: SEL4RT_DOMAINS when set,
       otherwise the runtime's recommendation (capped at 8). *)
    let domains = Sel4_rt.Parallel.size (Sel4_rt.Parallel.default ()) in
    let requested_domains =
      Option.bind (Sys.getenv_opt "SEL4RT_DOMAINS") (fun s ->
          int_of_string_opt (String.trim s))
    in
    let recommended_domains = Domain.recommended_domain_count () in
    (* The ILP-size rows are cached by now, so this re-query is free. *)
    let analysis_rows = Sel4_rt.Experiments.analysis_cost () in
    let constraint_rows = Sel4_rt.Experiments.constraint_modes () in
    (* Serial fresh baseline: same sections, one domain, no memoisation. *)
    Sel4_rt.Parallel.set_serial true;
    Sel4_rt.Analysis_cache.set_enabled false;
    let serial_fresh_wall_s =
      silenced (fun () ->
          List.fold_left (fun acc name -> acc +. timed (section_fn name)) 0.0 requested)
    in
    Sel4_rt.Analysis_cache.set_enabled true;
    Sel4_rt.Parallel.set_serial false;
    let warning =
      if domains <= 1 then
        Some
          "parallel and serial baselines both ran on a single domain; the \
           speedup figure does not measure parallelism"
      else None
    in
    (match warning with Some w -> Fmt.epr "warning: %s@." w | None -> ());
    let path = "BENCH_wcet.json" in
    write_json ~path
      ~elapsed_s:(Wcet.Clock.now_s () -. started_s)
      ~section_times ~engine_wall_s ~serial_fresh_wall_s ~stats ~domains
      ~requested_domains ~recommended_domains ~warning ~analysis_rows
      ~constraint_rows ~table2_rows:!table2_rows ~inject_rep:!inject_report
      ~race_rep:!race_report ~explore_rep:!explore_report ~sim_rep:!sim_report
      ~sim_forensics:!sim_forensics ~smp_rep:!smp_reports;
    append_history ~path:"BENCH_history.jsonl" ~engine_wall_s
      ~serial_fresh_wall_s ~stats ~sim_rep:!sim_report
      ~explore_rep:!explore_report ~smp_rep:!smp_reports;
    Fmt.pr "@.engine: %.3fs  serial fresh: %.3fs  speedup: %s  cache \
            %s, hit rate: %.0f%%  (%s)@."
      engine_wall_s serial_fresh_wall_s
      (if domains <= 1 then "n/a (single domain)"
       else Fmt.str "%.1fx" (serial_fresh_wall_s /. engine_wall_s))
      (cache_mode_of stats)
      (100.0 *. Sel4_rt.Analysis_cache.hit_rate stats)
      path
  end
