module L = Tac.Lang
let b label instrs term = { L.label; instrs; term }

(* x is redefined between the two syntactically identical branches *)
let program =
  {
    L.entry = "entry";
    params = [ { L.name = "x"; lo = 0; hi = 1 } ];
    blocks =
      [
        b "entry" [] (L.Jump "t1");
        b "t1" [] (L.Branch (L.Eq, L.Reg "x", L.Imm 0, "a1", "b1"));
        b "a1" [] (L.Jump "m");
        b "b1" [] (L.Jump "m");
        b "m" [ L.Assign ("x", L.Imm 1) ] (L.Jump "t2");
        b "t2" [] (L.Branch (L.Eq, L.Reg "x", L.Imm 0, "a2", "b2"));
        b "a2" [] (L.Jump "fin");
        b "b2" [] (L.Jump "fin");
        b "fin" [] L.Halt;
      ];
  }

let model : Wcet.Derive_constraints.model =
  {
    dm_name = "poc";
    dm_func = "f";
    dm_program = program;
    dm_labels = [ ("a1", "A1"); ("a2", "A2"); ("b1", "B1"); ("b2", "B2") ];
    dm_calls_bound = 1;
  }

let () =
  let report = Wcet.Derive_constraints.derive [ model ] in
  List.iter
    (fun d -> Fmt.pr "DERIVED: %a@." Wcet.Derive_constraints.pp_derived d)
    report.Wcet.Derive_constraints.rep_derived;
  (* ground truth: run x=0 -> a1 executes, a2 does not *)
  let _, trace = Tac.Interp.run program ~inputs:[ ("x", 0) ] in
  Fmt.pr "concrete x=0: a1=%d a2=%d@."
    (Tac.Interp.visits trace "a1") (Tac.Interp.visits trace "a2")
