(* Tests for the abstract interpreter: soundness of the interval ×
   congruence domain against concrete evaluation, lattice laws the
   fixpoint relies on, per-edge branch refinement, interval-valued
   induction analysis, and the end-to-end derivation/audit of the
   Section 5.2 constraints, down to the IPET comparison of manual vs
   derived constraint sets. *)

module L = Tac.Lang
module VD = Tac.Value_domain
module AI = Tac.Absint
module DC = Wcet.Derive_constraints

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- domain soundness: exhaustive small-range enumeration --- *)

(* Every interval [lo, hi] with -4 <= lo <= hi <= 4, plus a few
   congruence-carrying elements. *)
let small_elements =
  let ranges = ref [] in
  for lo = -4 to 4 do
    for hi = lo to 4 do
      ranges := VD.range lo hi :: !ranges
    done
  done;
  VD.make ~lo:(VD.Fin (-4)) ~hi:(VD.Fin 4) ~modulus:2 ~residue:0
  :: VD.make ~lo:(VD.Fin (-3)) ~hi:(VD.Fin 3) ~modulus:3 ~residue:1
  :: !ranges

let members v = List.filter (VD.contains v) [ -4; -3; -2; -1; 0; 1; 2; 3; 4 ]

let for_all_pairs f =
  List.iter (fun a -> List.iter (fun b -> f a b) small_elements) small_elements

let test_lattice_laws () =
  for_all_pairs (fun a b ->
      let j = VD.join a b in
      check_bool "a <= join a b" true (VD.leq a j);
      check_bool "b <= join a b" true (VD.leq b j);
      let m = VD.meet a b in
      check_bool "meet a b <= a" true (VD.leq m a);
      check_bool "meet a b <= b" true (VD.leq m b);
      (* widen old next (old <= next) covers next *)
      let w = VD.widen a j in
      check_bool "join a b <= widen a (join a b)" true (VD.leq j w));
  (* join is monotone in each argument *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              if VD.leq a b then
                check_bool "join monotone" true
                  (VD.leq (VD.join a c) (VD.join b c)))
            small_elements)
        small_elements)
    [ VD.range 0 2; VD.range (-3) 1; VD.const 2; VD.bot ]

let test_widen_stabilises () =
  (* Iterating x -> widen x (join x (x+1)) from [0,0] must reach a
     fixpoint in a bounded number of steps (the termination argument of
     the ascending phase). *)
  let step x = VD.widen x (VD.join x (VD.add x (VD.const 1))) in
  let rec go x n =
    if n > 10 then Alcotest.fail "widening did not stabilise"
    else
      let x' = step x in
      if VD.equal x x' then n else go x' (n + 1)
  in
  let steps = go (VD.const 0) 0 in
  check_bool "stabilised in a few steps" true (steps <= 3)

let concrete_op = function
  | "add" -> ( + )
  | "sub" -> ( - )
  | "mul" -> ( * )
  | "div" -> fun x y -> if y = 0 then 0 else x / y
  | "and" -> ( land )
  | "or" -> ( lor )
  | "xor" -> ( lxor )
  | _ -> assert false

let abstract_op = function
  | "add" -> VD.add
  | "sub" -> VD.sub
  | "mul" -> VD.mul
  | "div" -> VD.div
  | "and" -> VD.logand
  | "or" -> VD.logor
  | "xor" -> VD.logxor
  | _ -> assert false

let test_transfer_soundness () =
  List.iter
    (fun name ->
      let c = concrete_op name and a = abstract_op name in
      for_all_pairs (fun va vb ->
          let r = a va vb in
          List.iter
            (fun x ->
              List.iter
                (fun y ->
                  check_bool
                    (Fmt.str "%s: %d in %s %s %s" name (c x y) (VD.to_string va)
                       name (VD.to_string vb))
                    true
                    (VD.contains r (c x y)))
                (members vb))
            (members va)))
    [ "add"; "sub"; "mul"; "div"; "and"; "or"; "xor" ]

let test_shift_soundness () =
  (* Non-negative shift counts; Lang masks counts to [0, 62]. *)
  let vals = [ VD.range 0 4; VD.range (-4) 4; VD.const 3; VD.range 1 2 ] in
  let counts = [ VD.const 0; VD.const 2; VD.range 0 3; VD.range 1 4 ] in
  List.iter
    (fun va ->
      List.iter
        (fun vb ->
          let shl = VD.shl va vb and shr = VD.shr va vb in
          List.iter
            (fun x ->
              List.iter
                (fun y ->
                  check_bool "shl sound" true
                    (VD.contains shl (L.eval_binop L.Shl x y));
                  check_bool "shr sound" true
                    (VD.contains shr (L.eval_binop L.Shr x y)))
                (members vb))
            (members va))
        counts)
    vals

let test_congruence () =
  let evens = VD.make ~lo:(VD.Fin 0) ~hi:(VD.Fin 10) ~modulus:2 ~residue:0 in
  check_bool "contains 4" true (VD.contains evens 4);
  check_bool "excludes 5" false (VD.contains evens 5);
  (* disjoint congruence classes meet to bottom *)
  let odds = VD.congruent ~modulus:2 ~residue:1 in
  check_bool "evens /\\ odds = bot" true (VD.is_bot (VD.meet evens odds));
  (* reduction rounds endpoints into the class *)
  (match VD.bounds (VD.make ~lo:(VD.Fin 1) ~hi:(VD.Fin 9) ~modulus:2 ~residue:0) with
  | Some (VD.Fin lo, VD.Fin hi) ->
      check_int "rounded lo" 2 lo;
      check_int "rounded hi" 8 hi
  | _ -> Alcotest.fail "expected finite bounds");
  (* x ≡ 1 (mod 3) joined with x ≡ 1 (mod 6) stays periodic *)
  match
    VD.congruence
      (VD.join (VD.congruent ~modulus:3 ~residue:1) (VD.congruent ~modulus:6 ~residue:1))
  with
  | Some (m, r) ->
      check_int "join modulus" 3 m;
      check_int "join residue" 1 r
  | None -> Alcotest.fail "join of congruences is not bot"

let test_refine () =
  let v = VD.range 0 10 and w = VD.range 3 5 in
  (match VD.bounds (VD.refine VD.Lt v w) with
  | Some (_, VD.Fin hi) -> check_int "x < [3,5] caps at 4" 4 hi
  | _ -> Alcotest.fail "expected finite hi");
  (match VD.bounds (VD.refine VD.Ge v w) with
  | Some (VD.Fin lo, _) -> check_int "x >= [3,5] floors at 3" 3 lo
  | _ -> Alcotest.fail "expected finite lo");
  check_bool "x < 0 infeasible from [0,10]" true
    (VD.is_bot (VD.refine VD.Lt v (VD.const 0)));
  check_int "definitely: [0,2] < [3,5]" 1
    (match VD.definitely VD.Lt (VD.range 0 2) w with Some true -> 1 | _ -> 0);
  check_int "definitely: [6,8] < [3,5] is false" 1
    (match VD.definitely VD.Lt (VD.range 6 8) w with Some false -> 1 | _ -> 0)

(* --- branch refinement through the interpreter --- *)

let diamond ~lo ~hi =
  {
    L.entry = "entry";
    params = [ { L.name = "x"; lo; hi } ];
    blocks =
      [
        { L.label = "entry"; instrs = []; term = L.Branch (L.Le, L.Reg "x", L.Imm 2, "low", "high") };
        { L.label = "low"; instrs = []; term = L.Jump "tail" };
        { L.label = "high"; instrs = []; term = L.Jump "tail" };
        { L.label = "tail"; instrs = []; term = L.Halt };
      ];
  }

let test_branch_refinement () =
  let ai = AI.analyse (diamond ~lo:0 ~hi:10) in
  (match VD.bounds (AI.reg_value ai ~block:"low" "x.0") with
  | Some (_, VD.Fin hi) -> check_int "low arm: x <= 2" 2 hi
  | _ -> Alcotest.fail "low arm not refined");
  (match VD.bounds (AI.reg_value ai ~block:"high" "x.0") with
  | Some (VD.Fin lo, _) -> check_int "high arm: x >= 3" 3 lo
  | _ -> Alcotest.fail "high arm not refined");
  (* the join at the tail restores the full range *)
  match VD.bounds (AI.reg_value ai ~block:"tail" "x.0") with
  | Some (VD.Fin lo, VD.Fin hi) ->
      check_int "tail lo" 0 lo;
      check_int "tail hi" 10 hi
  | _ -> Alcotest.fail "tail not tracked"

let test_infeasible_edge () =
  (* x in [0,2] makes the high arm dead. *)
  let ai = AI.analyse (diamond ~lo:0 ~hi:2) in
  check_bool "high edge infeasible" false
    (AI.edge_feasible ai ~src:"entry" ~dst:"high");
  check_bool "high block unreachable" false (AI.reachable ai "high");
  check_bool "low edge feasible" true (AI.edge_feasible ai ~src:"entry" ~dst:"low")

(* --- loop trip bounds --- *)

let countup ~lo ~hi =
  {
    L.entry = "entry";
    params = [ { L.name = "n"; lo; hi } ];
    blocks =
      [
        { L.label = "entry"; instrs = [ L.Assign ("i", L.Imm 0) ]; term = L.Jump "header" };
        { L.label = "header"; instrs = []; term = L.Branch (L.Lt, L.Reg "i", L.Reg "n", "body", "exit") };
        {
          L.label = "body";
          instrs = [ L.Binop ("i", L.Add, L.Reg "i", L.Imm 1) ];
          term = L.Jump "header";
        };
        { L.label = "exit"; instrs = []; term = L.Halt };
      ];
  }

(* The capability-decode shape: a decrement whose step is itself an
   interval (bits consumed per level in [1, 8]), which syntactic counter
   analysis cannot bound. *)
let decode_like =
  {
    L.entry = "entry";
    params = [ { L.name = "level_bits"; lo = 1; hi = 8 } ];
    blocks =
      [
        { L.label = "entry"; instrs = [ L.Assign ("bits", L.Imm 32) ]; term = L.Jump "header" };
        { L.label = "header"; instrs = []; term = L.Branch (L.Gt, L.Reg "bits", L.Imm 0, "body", "exit") };
        {
          L.label = "body";
          instrs = [ L.Binop ("bits", L.Sub, L.Reg "bits", L.Reg "level_bits") ];
          term = L.Jump "header";
        };
        { L.label = "exit"; instrs = []; term = L.Halt };
      ];
  }

let test_trip_bounds () =
  let ai = AI.analyse (countup ~lo:0 ~hi:10) in
  check_int "count-up trips" 10
    (match AI.trip_bound ai ~header:"header" with Some t -> t | None -> -1);
  check_int "header visit bound" 11
    (match AI.block_visit_bound ai "header" with Some b -> b | None -> -1);
  check_int "body visit bound" 10
    (match AI.block_visit_bound ai "body" with Some b -> b | None -> -1);
  check_int "exit visits once" 1
    (match AI.block_visit_bound ai "exit" with Some b -> b | None -> -1);
  let st = AI.stats ai in
  check_bool "widening fired" true (st.AI.widenings > 0);
  check_bool "narrowing ran" true (st.AI.narrowings > 0)

let test_interval_step_trip () =
  (* worst case: 32 iterations of -1 steps; visits = 33, matching the
     kernel's annotated decode bound. *)
  let ai = AI.analyse decode_like in
  check_int "decode-like trips" 32
    (match AI.trip_bound ai ~header:"header" with Some t -> t | None -> -1);
  check_int "decode-like header visits" 33
    (match AI.block_visit_bound ai "header" with Some b -> b | None -> -1)

let test_memory_carried_abstains () =
  (* Trip count through a Load: the analysis must return no bound. *)
  let p =
    {
      L.entry = "entry";
      params = [];
      blocks =
        [
          { L.label = "entry"; instrs = [ L.Load ("cur", L.Imm 0) ]; term = L.Jump "header" };
          { L.label = "header"; instrs = []; term = L.Branch (L.Ne, L.Reg "cur", L.Imm 0, "body", "exit") };
          {
            L.label = "body";
            instrs = [ L.Load ("cur", L.Reg "cur") ];
            term = L.Jump "header";
          };
          { L.label = "exit"; instrs = []; term = L.Halt };
        ];
    }
  in
  let ai = AI.analyse p in
  check_bool "no trip bound through loads" true
    (AI.trip_bound ai ~header:"header" = None)

let test_kernel_loops_cross_check () =
  (* The absint bound must agree with the primary method on every loop it
     can handle and abstain on the memory-carried badge scan. *)
  let results = Sel4_rt.Kernel_loops.catalogue ~max_frame_bytes:4096 ~chunk:512 in
  List.iter
    (fun (r : Sel4_rt.Kernel_loops.result) ->
      match (r.Sel4_rt.Kernel_loops.absint_bound, r.Sel4_rt.Kernel_loops.computed) with
      | Some a, Some c ->
          check_int
            (Fmt.str "absint agrees on %s" r.Sel4_rt.Kernel_loops.spec.Sel4_rt.Kernel_loops.name)
            c a
      | None, _ ->
          check_bool "only the badge scan abstains" true
            (String.length r.Sel4_rt.Kernel_loops.spec.Sel4_rt.Kernel_loops.name >= 10
            && String.sub r.Sel4_rt.Kernel_loops.spec.Sel4_rt.Kernel_loops.name 0 10
               = "badge_scan")
      | Some _, None -> Alcotest.fail "absint bounded a loop nothing else could")
    results;
  check_int "five loops catalogued" 5 (List.length results)

(* --- constraint derivation and audit --- *)

let delivery_like : DC.model =
  let b label instrs term = { L.label; instrs; term } in
  {
    DC.dm_name = "delivery";
    dm_func = "f";
    dm_program =
      {
        L.entry = "entry";
        params = [ { L.name = "t"; lo = 0; hi = 1 } ];
        blocks =
          [
            b "entry" [] (L.Jump "s1");
            b "s1" [] (L.Branch (L.Eq, L.Reg "t", L.Imm 0, "a1", "b1"));
            b "a1" [] (L.Jump "m");
            b "b1" [] (L.Jump "m");
            b "m" [] (L.Jump "s2");
            b "s2" [] (L.Branch (L.Eq, L.Reg "t", L.Imm 0, "a2", "b2"));
            b "a2" [] (L.Jump "x");
            b "b2" [] (L.Jump "x");
            b "x" [] L.Halt;
          ];
      };
    dm_labels = [ ("a1", "A1"); ("b1", "B1"); ("a2", "A2"); ("b2", "B2") ];
    dm_calls_bound = 1;
  }

let has_constraint report c =
  List.exists (fun (c', _) -> c' = c) report.DC.rep_derived

let test_derive_rules () =
  let r = DC.derive [ delivery_like ] in
  (* cross arms conflict; aligned arms are consistent *)
  check_bool "A1 conflicts B1" true
    (has_constraint r (Wcet.User_constraint.conflicts ~func:"f" "A1" "B1"));
  check_bool "A1 conflicts B2" true
    (has_constraint r (Wcet.User_constraint.conflicts ~func:"f" "A1" "B2"));
  check_bool "A1 consistent A2" true
    (has_constraint r (Wcet.User_constraint.consistent ~func:"f" "A1" "A2"));
  check_bool "B1 consistent B2" true
    (has_constraint r (Wcet.User_constraint.consistent ~func:"f" "B1" "B2"));
  (* nothing relates the aligned arms as conflicting *)
  check_bool "no A1/A2 conflict" false
    (has_constraint r (Wcet.User_constraint.conflicts ~func:"f" "A1" "A2"));
  check_int "four conflicts + two consistents" 6 (List.length r.DC.rep_derived)

let verdict_of report c =
  match
    List.find_opt (fun l -> l.DC.al_constraint = c) report.DC.rep_audit
  with
  | Some l -> Some l.DC.al_verdict
  | None -> None

let test_audit_verdicts () =
  let manual =
    [
      (* provable: subsumed by the equal-guards derivation *)
      Wcet.User_constraint.consistent ~func:"f" "A1" "A2";
      (* false: A1 and B2 never execute together *)
      Wcet.User_constraint.consistent ~func:"f" "A1" "B2";
      (* out of scope: no model covers function g *)
      Wcet.User_constraint.conflicts ~func:"g" "p" "q";
    ]
  in
  let r = DC.audit ~models:[ delivery_like ] ~manual in
  check_bool "consistent A1 A2 proved" true
    (verdict_of r (Wcet.User_constraint.consistent ~func:"f" "A1" "A2")
    = Some DC.Proved);
  check_bool "consistent A1 B2 refuted" true
    (verdict_of r (Wcet.User_constraint.consistent ~func:"f" "A1" "B2")
    = Some DC.Refuted);
  check_bool "unmapped function unknown" true
    (verdict_of r (Wcet.User_constraint.conflicts ~func:"g" "p" "q")
    = Some DC.Unknown);
  (* the refutation carries a concrete witness *)
  match List.find_opt (fun l -> l.DC.al_verdict = DC.Refuted) r.DC.rep_audit with
  | Some l -> check_bool "witness recorded" true (String.length l.DC.al_evidence > 0)
  | None -> Alcotest.fail "no refuted line"

let test_loop_cap_derivation () =
  let cap_model : DC.model =
    {
      DC.dm_name = "stale";
      dm_func = "choose";
      dm_program = countup ~lo:0 ~hi:7;
      dm_labels = [ ("body", "ch_stale") ];
      dm_calls_bound = 2;
    }
  in
  let r = DC.derive [ cap_model ] in
  (* per-invocation bound 7, times the declared two invocations *)
  check_bool "global cap scaled by calls bound" true
    (has_constraint r
       (Wcet.User_constraint.executes_at_most ~func:"choose" "ch_stale" 14))

(* --- kernel model: every manual constraint proved, derived set matches --- *)

let test_kernel_audit_complete () =
  let r = Sel4_rt.Kernel_model.constraint_report ~main:"syscall" () in
  check_int "all three manual constraints audited" 3
    (List.length r.DC.rep_audit);
  List.iter
    (fun l ->
      check_bool
        (Fmt.str "proved: %a" Wcet.User_constraint.pp l.DC.al_constraint)
        true
        (l.DC.al_verdict = DC.Proved))
    r.DC.rep_audit;
  check_int "seven derived constraints" 7 (List.length r.DC.rep_derived)

let test_ipet_manual_vs_derived () =
  let spec =
    Sel4_rt.Kernel_model.spec Sel4.Build.improved Sel4_rt.Kernel_model.Syscall
  in
  check_bool "spec carries derived constraints" true (spec.Wcet.Ipet.derived <> []);
  let prepared = Wcet.Ipet.prepare ~config:Hw.Config.default spec in
  let wcet ?use_constraints ?sources () =
    (Wcet.Ipet.analyse_prepared ?use_constraints ?sources prepared).Wcet.Ipet.wcet
  in
  let unconstrained = wcet ~use_constraints:false () in
  let manual = wcet ~sources:`Manual () in
  let derived = wcet ~sources:`Derived () in
  let combined = wcet ~sources:`All () in
  check_bool "manual tightens the bound" true (manual < unconstrained);
  check_int "derived alone reproduces the manual bound" manual derived;
  check_int "combined equals manual (derived subsume it)" manual combined

let () =
  Alcotest.run "absint"
    [
      ( "domain",
        [
          Alcotest.test_case "lattice laws" `Quick test_lattice_laws;
          Alcotest.test_case "widening stabilises" `Quick test_widen_stabilises;
          Alcotest.test_case "transfer soundness" `Slow test_transfer_soundness;
          Alcotest.test_case "shift soundness" `Quick test_shift_soundness;
          Alcotest.test_case "congruence" `Quick test_congruence;
          Alcotest.test_case "refinement" `Quick test_refine;
        ] );
      ( "interp",
        [
          Alcotest.test_case "branch refinement" `Quick test_branch_refinement;
          Alcotest.test_case "infeasible edge" `Quick test_infeasible_edge;
          Alcotest.test_case "trip bounds" `Quick test_trip_bounds;
          Alcotest.test_case "interval-step trip" `Quick test_interval_step_trip;
          Alcotest.test_case "memory-carried abstains" `Quick
            test_memory_carried_abstains;
          Alcotest.test_case "kernel loops cross-check" `Quick
            test_kernel_loops_cross_check;
        ] );
      ( "derive",
        [
          Alcotest.test_case "rules" `Quick test_derive_rules;
          Alcotest.test_case "audit verdicts" `Quick test_audit_verdicts;
          Alcotest.test_case "loop cap" `Quick test_loop_cap_derivation;
          Alcotest.test_case "kernel audit" `Quick test_kernel_audit_complete;
          Alcotest.test_case "ipet manual vs derived" `Slow
            test_ipet_manual_vs_derived;
        ] );
    ]
