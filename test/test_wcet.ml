(* Tests for the WCET analysis pipeline.

   The headline property (mirroring Section 5.4 of the paper) is soundness:
   for randomly generated structured programs, the IPET bound computed with
   the conservative cache model must dominate the cycle count observed by
   executing the same program on the detailed 4-way-LRU hardware model. *)

module F = Cfg.Flowgraph
module T = Wcet.Timing

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Sound per-miss charge of the analysis: memory latency + dirty eviction
   (60 + 30 = 90 with the L2 off). *)
let mem = Hw.Config.worst_miss_cycles Hw.Config.default

(* --- abstract cache --- *)

let test_abstract_cache () =
  let c = Wcet.Abstract_cache.create ~line_size:32 ~sets:128 ~pinned_lines:[] in
  check_bool "initially unknown" false (Wcet.Abstract_cache.must_hit c 0x1000);
  Wcet.Abstract_cache.access c 0x1000;
  check_bool "guaranteed after access" true
    (Wcet.Abstract_cache.must_hit c 0x1000);
  check_bool "same line guaranteed" true
    (Wcet.Abstract_cache.must_hit c 0x101f);
  (* Conflicting line (stride 128 sets * 32 B = 4 KiB) evicts in the 1-way
     model. *)
  Wcet.Abstract_cache.access c (0x1000 + 4096);
  check_bool "conflict evicts" false (Wcet.Abstract_cache.must_hit c 0x1000);
  Wcet.Abstract_cache.clobber c;
  check_bool "clobber forgets" false
    (Wcet.Abstract_cache.must_hit c (0x1000 + 4096))

let test_abstract_cache_join () =
  let a = Wcet.Abstract_cache.create ~line_size:32 ~sets:128 ~pinned_lines:[] in
  let b = Wcet.Abstract_cache.create ~line_size:32 ~sets:128 ~pinned_lines:[] in
  (* 0x1000 and 0x1040 map to different sets (0 and 2) and so coexist. *)
  Wcet.Abstract_cache.access a 0x1000;
  Wcet.Abstract_cache.access a 0x1040;
  Wcet.Abstract_cache.access b 0x1000;
  let j = Wcet.Abstract_cache.join a b in
  check_bool "common line kept" true (Wcet.Abstract_cache.must_hit j 0x1000);
  check_bool "one-sided line dropped" false
    (Wcet.Abstract_cache.must_hit j 0x1040)

let test_abstract_cache_pinned () =
  let c =
    Wcet.Abstract_cache.create ~line_size:32 ~sets:128 ~pinned_lines:[ 0x5000 ]
  in
  check_bool "pinned always hits" true (Wcet.Abstract_cache.must_hit c 0x5010);
  Wcet.Abstract_cache.clobber c;
  check_bool "pinned survives clobber" true
    (Wcet.Abstract_cache.must_hit c 0x5000)

(* --- cache analysis on straight-line code --- *)

let block_payload ?(accesses = []) ~base ~instrs () =
  T.make ~accesses ~base ~instrs ()

let test_block_cost_straightline () =
  (* Two blocks in sequence; the second re-reads the same static address
     and re-executes the same code line. *)
  let b = F.Builder.create "straight" in
  let p0 =
    block_payload ~base:0x0 ~instrs:4
      ~accesses:[ T.Static { addr = 0x8000; write = false } ]
      ()
  in
  let p1 =
    block_payload ~base:0x0 ~instrs:4
      ~accesses:[ T.Static { addr = 0x8000; write = false } ]
      ()
  in
  let n0 = F.Builder.add b ~label:"first" p0 in
  let n1 = F.Builder.add b ~label:"second" p1 in
  F.Builder.edge b n0 n1;
  let fn = F.Builder.finish b in
  let res = Wcet.Cache_analysis.analyse ~config:Hw.Config.default fn in
  let c0 = Wcet.Cache_analysis.cost res n0 in
  let c1 = Wcet.Cache_analysis.cost res n1 in
  (* First block: 4 instrs + 1 fetch-line miss + 1 data miss. *)
  check_int "cold block cost" (4 + mem + mem) c0.Wcet.Cache_analysis.cycles;
  (* Second block: everything guaranteed: 4 instrs + 1-cycle data hit. *)
  check_int "warm block cost" (4 + 1) c1.Wcet.Cache_analysis.cycles;
  check_int "warm fetch hits" 1 c1.Wcet.Cache_analysis.fetch_hits

let test_dynamic_access_clobbers () =
  let b = F.Builder.create "dyn" in
  let p0 =
    block_payload ~base:0x0 ~instrs:1
      ~accesses:
        [
          T.Static { addr = 0x8000; write = false };
          T.Dynamic { write = true; count = 1 };
          T.Static { addr = 0x8000; write = false };
        ]
      ()
  in
  let n0 = F.Builder.add b ~label:"only" p0 in
  ignore n0;
  let fn = F.Builder.finish b in
  let res = Wcet.Cache_analysis.analyse ~config:Hw.Config.default fn in
  let c = Wcet.Cache_analysis.cost res 0 in
  (* The second static access must be a miss again: the dynamic write
     clobbered the must-state. *)
  check_int "data misses" 3 c.Wcet.Cache_analysis.data_misses;
  check_int "data hits" 0 c.Wcet.Cache_analysis.data_hits

let test_pinned_code_cost () =
  let b = F.Builder.create "pin" in
  let p0 = block_payload ~base:0x0 ~instrs:8 () in
  ignore (F.Builder.add b ~label:"only" p0);
  let fn = F.Builder.finish b in
  let cold = Wcet.Cache_analysis.analyse ~config:Hw.Config.default fn in
  let pinned =
    Wcet.Cache_analysis.analyse ~config:Hw.Config.default ~pinned_code:[ 0x0 ]
      fn
  in
  check_int "cold pays fetch" (8 + mem)
    (Wcet.Cache_analysis.cost cold 0).Wcet.Cache_analysis.cycles;
  check_int "pinned avoids fetch" 8
    (Wcet.Cache_analysis.cost pinned 0).Wcet.Cache_analysis.cycles

(* --- IPET end-to-end on a hand-analysable program --- *)

(* main: entry -> header; header -> body -> header (bounded); header -> exit.
   All code on distinct lines so costs are independent. *)
let loop_program ~bound:_ =
  let b = F.Builder.create "main" in
  let entry = F.Builder.add b ~label:"entry" (block_payload ~base:0x000 ~instrs:2 ()) in
  let header = F.Builder.add b ~label:"header" (block_payload ~base:0x040 ~instrs:1 ()) in
  let body =
    F.Builder.add b ~label:"body"
      (block_payload ~base:0x080 ~instrs:3
         ~accesses:[ T.Dynamic { write = false; count = 1 } ]
         ())
  in
  let exit_ = F.Builder.add b ~label:"exit" (block_payload ~base:0x0c0 ~instrs:2 ()) in
  F.Builder.edge b entry header;
  F.Builder.edge b header body;
  F.Builder.edge b body header;
  F.Builder.edge b header exit_;
  { F.funcs = [ F.Builder.finish b ]; main = "main" }

let ipet_loop ~bound ~declared =
  Wcet.Ipet.analyse ~config:Hw.Config.default
    {
      Wcet.Ipet.program = loop_program ~bound;
      bounds = [ { Wcet.Ipet.func = "main"; header = "header"; bound = declared } ];
      constraints = [];
      derived = [];
    }

let test_ipet_loop_bound () =
  let r = ipet_loop ~bound:4 ~declared:4 in
  (* With miss = worst-case access charge: entry pays 2 instrs + one
     fetch-line miss.  The header is entered both from entry and from the
     body whose fetch state differs, so the must-join drops the header line
     and every header visit pays the fetch miss plus the 5-cycle branch.
     Each body visit pays fetch miss + dynamic data miss.  The exit pays
     2 instrs + fetch miss. *)
  let expected =
    (2 + mem) + (4 * (1 + mem + 5)) + (3 * (3 + mem + mem)) + (2 + mem)
  in
  check_int "loop WCET" expected r.Wcet.Ipet.wcet

let test_ipet_counts () =
  let r = ipet_loop ~bound:4 ~declared:4 in
  let counts = r.Wcet.Ipet.block_counts in
  check_int "entry once" 1 counts.(0);
  check_int "header bound times" 4 counts.(1);
  check_int "body bound-1 times" 3 counts.(2);
  check_int "exit once" 1 counts.(3)

let test_ipet_unbounded_loop () =
  check_bool "raises" true
    (try
       ignore (ipet_loop ~bound:4 ~declared:4).Wcet.Ipet.wcet;
       ignore
         (Wcet.Ipet.analyse ~config:Hw.Config.default
            {
              Wcet.Ipet.program = loop_program ~bound:4;
              bounds = [];
              constraints = [];
      derived = [];
            });
       false
     with Wcet.Ipet.Unbounded_loop _ -> true)

(* Diamond with an expensive and a cheap arm; a conflicts-with constraint
   can exclude the expensive arm from the bound. *)
let diamond_program () =
  let b = F.Builder.create "main" in
  let entry = F.Builder.add b ~label:"entry" (block_payload ~base:0x000 ~instrs:1 ()) in
  let costly =
    F.Builder.add b ~label:"costly"
      (block_payload ~base:0x040 ~instrs:10
         ~accesses:[ T.Dynamic { write = false; count = 5 } ]
         ())
  in
  let cheap = F.Builder.add b ~label:"cheap" (block_payload ~base:0x080 ~instrs:1 ()) in
  let join = F.Builder.add b ~label:"join" (block_payload ~base:0x0c0 ~instrs:1 ()) in
  let tail =
    F.Builder.add b ~label:"tail"
      (block_payload ~base:0x100 ~instrs:2
         ~accesses:[ T.Dynamic { write = false; count = 2 } ]
         ())
  in
  let out = F.Builder.add b ~label:"out" (block_payload ~base:0x140 ~instrs:1 ()) in
  F.Builder.edge b entry costly;
  F.Builder.edge b entry cheap;
  F.Builder.edge b costly join;
  F.Builder.edge b cheap join;
  F.Builder.edge b join tail;
  F.Builder.edge b join out;
  F.Builder.edge b tail out;
  { F.funcs = [ F.Builder.finish b ]; main = "main" }

let test_ipet_conflict_constraint () =
  let base =
    Wcet.Ipet.analyse ~config:Hw.Config.default
      { Wcet.Ipet.program = diamond_program (); bounds = []; constraints = []; derived = [] }
  in
  let constrained =
    Wcet.Ipet.analyse ~config:Hw.Config.default
      {
        Wcet.Ipet.program = diamond_program ();
        bounds = [];
        constraints = [ Wcet.User_constraint.conflicts ~func:"main" "costly" "tail" ];
        derived = [];
      }
  in
  check_bool "constraint lowers the bound" true
    (constrained.Wcet.Ipet.wcet < base.Wcet.Ipet.wcet);
  (* The unconstrained worst case takes both costly and tail. *)
  check_int "unconstrained takes costly" 1 base.Wcet.Ipet.block_counts.(1);
  check_int "unconstrained takes tail" 1 base.Wcet.Ipet.block_counts.(4)

let test_ipet_consistent_constraint () =
  let constrained =
    Wcet.Ipet.analyse ~config:Hw.Config.default
      {
        Wcet.Ipet.program = diamond_program ();
        bounds = [];
        constraints =
          [ Wcet.User_constraint.consistent ~func:"main" "cheap" "tail" ];
        derived = [];
      }
  in
  (* Consistent(cheap, tail): taking tail now requires the cheap arm. *)
  let counts = constrained.Wcet.Ipet.block_counts in
  check_bool "cheap iff tail" true (counts.(2) = counts.(4))

let test_executes_at_most_rejects_negative () =
  Alcotest.check_raises "negative count"
    (Invalid_argument
       "User_constraint.executes_at_most: negative count -1 for main.body")
    (fun () ->
      ignore (Wcet.User_constraint.executes_at_most ~func:"main" "body" (-1)));
  (* zero is a legal (if brutal) cap *)
  ignore (Wcet.User_constraint.executes_at_most ~func:"main" "body" 0)

let test_ipet_executes_at_most () =
  let r =
    Wcet.Ipet.analyse ~config:Hw.Config.default
      {
        Wcet.Ipet.program = loop_program ~bound:4;
        bounds = [ { Wcet.Ipet.func = "main"; header = "header"; bound = 4 } ];
        constraints =
          [ Wcet.User_constraint.executes_at_most ~func:"main" "body" 1 ];
        derived = [];
      }
  in
  check_int "body capped" 1 r.Wcet.Ipet.block_counts.(2)

let test_ipet_forced_path () =
  let free =
    Wcet.Ipet.analyse ~config:Hw.Config.default
      { Wcet.Ipet.program = diamond_program (); bounds = []; constraints = []; derived = [] }
  in
  let forced =
    Wcet.Ipet.analyse ~config:Hw.Config.default
      ~forced:[ ("main", "costly", 0); ("main", "tail", 0) ]
      { Wcet.Ipet.program = diamond_program (); bounds = []; constraints = []; derived = [] }
  in
  check_bool "forced path is cheaper" true
    (forced.Wcet.Ipet.wcet < free.Wcet.Ipet.wcet);
  check_int "costly excluded" 0 forced.Wcet.Ipet.block_counts.(1)

(* Per-context constraints: a callee invoked from two sites gets separate
   constraint instances, as the paper's virtual inlining requires. *)
let test_ipet_context_sensitivity () =
  let callee =
    let b = F.Builder.create "g" in
    let e = F.Builder.add b ~label:"g_entry" (block_payload ~base:0x200 ~instrs:1 ()) in
    let costly =
      F.Builder.add b ~label:"g_costly"
        (block_payload ~base:0x240 ~instrs:1
           ~accesses:[ T.Dynamic { write = false; count = 10 } ]
           ())
    in
    let cheap = F.Builder.add b ~label:"g_cheap" (block_payload ~base:0x280 ~instrs:1 ()) in
    let x = F.Builder.add b ~label:"g_exit" (block_payload ~base:0x2c0 ~instrs:1 ()) in
    F.Builder.edge b e costly;
    F.Builder.edge b e cheap;
    F.Builder.edge b costly x;
    F.Builder.edge b cheap x;
    F.Builder.finish b
  in
  let caller =
    let b = F.Builder.create "main" in
    let c1 = F.Builder.add b ~label:"call1" ~call:"g" (block_payload ~base:0x000 ~instrs:1 ()) in
    let c2 = F.Builder.add b ~label:"call2" ~call:"g" (block_payload ~base:0x040 ~instrs:1 ()) in
    let fin = F.Builder.add b ~label:"fin" (block_payload ~base:0x080 ~instrs:1 ()) in
    F.Builder.edge b c1 c2;
    F.Builder.edge b c2 fin;
    F.Builder.finish b
  in
  let program = { F.funcs = [ caller; callee ]; main = "main" } in
  let free =
    Wcet.Ipet.analyse ~config:Hw.Config.default
      { Wcet.Ipet.program = program; bounds = []; constraints = []; derived = [] }
  in
  let constrained =
    Wcet.Ipet.analyse ~config:Hw.Config.default
      {
        Wcet.Ipet.program = program;
        bounds = [];
        constraints =
          [ Wcet.User_constraint.conflicts ~func:"g" "g_costly" "g_costly" ];
        derived = [];
      }
  in
  (* conflicts(costly, costly) forbids the costly arm entirely, separately
     in each of the two inlined instances: 2 * 10 dynamic misses saved. *)
  check_bool "both instances constrained" true
    (free.Wcet.Ipet.wcet - constrained.Wcet.Ipet.wcet >= 2 * 10 * mem)

(* --- soundness: computed >= observed on random structured programs --- *)

type construct =
  | Straight of T.t
  | Branch of T.t * T.t  (* then / else arms joined after *)
  | Loop of int * T.t * T.t  (* trip count, header, body *)

let gen_payload =
  QCheck.Gen.(
    let* base_line = int_range 0 255 in
    let* instrs = int_range 1 16 in
    let* n_static = int_range 0 3 in
    let* statics =
      list_repeat n_static
        (let* word = int_range 0 511 in
         let* write = bool in
         return (T.Static { addr = 0x10000 + (word * 8); write }))
    in
    let* dyn = int_range 0 2 in
    let accesses =
      statics @ if dyn = 0 then [] else [ T.Dynamic { write = true; count = dyn } ]
    in
    return (T.make ~accesses ~base:(base_line * 32) ~instrs ()))

let gen_construct =
  QCheck.Gen.(
    let* kind = int_range 0 2 in
    match kind with
    | 0 ->
        let* p = gen_payload in
        return (Straight p)
    | 1 ->
        let* a = gen_payload in
        let* b = gen_payload in
        return (Branch (a, b))
    | _ ->
        let* k = int_range 1 6 in
        let* h = gen_payload in
        let* b = gen_payload in
        return (Loop (k, h, b)))

let gen_program = QCheck.Gen.(list_size (int_range 1 8) gen_construct)

(* Build the CFG for a construct list; returns (program, loop bounds). *)
let build_structured constructs =
  let b = F.Builder.create "main" in
  let bounds = ref [] in
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Fmt.str "%s%d" prefix !counter
  in
  let start = F.Builder.add b ~label:"start" (T.make ~base:0 ~instrs:1 ()) in
  let tail = ref start in
  List.iter
    (fun construct ->
      match construct with
      | Straight p ->
          let n = F.Builder.add b ~label:(fresh "s") p in
          F.Builder.edge b !tail n;
          tail := n
      | Branch (p1, p2) ->
          let n1 = F.Builder.add b ~label:(fresh "bt") p1 in
          let n2 = F.Builder.add b ~label:(fresh "bf") p2 in
          let j = F.Builder.add b ~label:(fresh "j") (T.make ~base:0x7000 ~instrs:1 ()) in
          F.Builder.edge b !tail n1;
          F.Builder.edge b !tail n2;
          F.Builder.edge b n1 j;
          F.Builder.edge b n2 j;
          tail := j
      | Loop (k, ph, pb) ->
          let label = fresh "h" in
          let h = F.Builder.add b ~label ph in
          let body = F.Builder.add b ~label:(fresh "lb") pb in
          let out = F.Builder.add b ~label:(fresh "lo") (T.make ~base:0x7100 ~instrs:1 ()) in
          F.Builder.edge b !tail h;
          F.Builder.edge b h body;
          F.Builder.edge b body h;
          F.Builder.edge b h out;
          (* header visits per entry = k + 1 (k iterations + final test) *)
          bounds := { Wcet.Ipet.func = "main"; header = label; bound = k + 1 } :: !bounds;
          tail := out)
    constructs;
  ( { F.funcs = [ F.Builder.finish b ]; main = "main" },
    !bounds )

(* Execute the structured program on the detailed hardware model, taking
   branch arms according to [decide], running every loop to its full trip
   count.  Returns observed cycles. *)
let execute ~config ~decide constructs =
  let cpu = Hw.Cpu.create config in
  Hw.Machine.pollute (Hw.Cpu.machine cpu) ~seed:7;
  let dyn_counter = ref 0 in
  let run_payload ?(branch = false) (p : T.t) =
    Hw.Cpu.exec cpu ~base:p.T.base ~count:p.T.instrs;
    List.iter
      (fun access ->
        match access with
        | T.Static { addr; write } ->
            if write then Hw.Cpu.store cpu addr else Hw.Cpu.load cpu addr
        | T.Dynamic { write; count } ->
            for _ = 1 to count do
              incr dyn_counter;
              let addr = 0x40000 + (!dyn_counter * 4096 mod 32768) in
              if write then Hw.Cpu.store cpu addr else Hw.Cpu.load cpu addr
            done)
      p.T.accesses;
    if branch then Hw.Cpu.branch cpu ~pc:p.T.base ~taken:true
  in
  run_payload (T.make ~base:0 ~instrs:1 ());
  List.iteri
    (fun i construct ->
      match construct with
      | Straight p -> run_payload p
      | Branch (p1, p2) ->
          (* The pre-branch block pays the branch; approximate by charging
             it on the chosen arm's entry (the analysis charges it on the
             block with two successors, which is the previous block; either
             way one branch cost is paid). *)
          Hw.Cpu.branch cpu ~pc:0x7000 ~taken:true;
          run_payload (if decide i then p1 else p2)
      | Loop (k, ph, pb) ->
          for _ = 1 to k do
            run_payload ~branch:true ph;
            run_payload pb
          done;
          run_payload ~branch:true ph;
          run_payload (T.make ~base:0x7100 ~instrs:1 ()))
    constructs;
  Hw.Cpu.cycles cpu

let print_constructs cs =
  Fmt.str "%d constructs: %s" (List.length cs)
    (String.concat ","
       (List.map
          (function
            | Straight _ -> "S"
            | Branch _ -> "B"
            | Loop (k, _, _) -> Fmt.str "L%d" k)
          cs))

let test_soundness =
  QCheck.Test.make ~count:100 ~name:"IPET bound dominates observed execution"
    (QCheck.make ~print:print_constructs gen_program)
    (fun constructs ->
      let program, bounds = build_structured constructs in
      let result =
        Wcet.Ipet.analyse ~config:Hw.Config.default
          { Wcet.Ipet.program = program; bounds; constraints = []; derived = [] }
      in
      (* Try several branch decision vectors, including all-true/all-false. *)
      List.for_all
        (fun decide ->
          execute ~config:Hw.Config.default ~decide constructs
          <= result.Wcet.Ipet.wcet)
        [
          (fun _ -> true);
          (fun _ -> false);
          (fun i -> i mod 2 = 0);
          (fun i -> i mod 3 = 0);
        ])

let test_soundness_l2_locked =
  (* The Section 8 configuration: the generated programs' code region is
     locked into the L2, so analysed fetch misses cost an L2 hit — and
     the bound must still dominate execution. *)
  QCheck.Test.make ~count:50 ~name:"soundness holds with code locked into L2"
    (QCheck.make ~print:print_constructs gen_program)
    (fun constructs ->
      let config =
        Hw.Config.with_l2_lock ~base:0 ~bytes:0x8000 Hw.Config.with_l2
      in
      let program, bounds = build_structured constructs in
      let result =
        Wcet.Ipet.analyse ~config
          { Wcet.Ipet.program = program; bounds; constraints = []; derived = [] }
      in
      execute ~config ~decide:(fun i -> i mod 2 = 1) constructs
      <= result.Wcet.Ipet.wcet)

let test_soundness_l2 =
  QCheck.Test.make ~count:50 ~name:"soundness holds with the L2 enabled"
    (QCheck.make ~print:print_constructs gen_program)
    (fun constructs ->
      let program, bounds = build_structured constructs in
      let result =
        Wcet.Ipet.analyse ~config:Hw.Config.with_l2
          { Wcet.Ipet.program = program; bounds; constraints = []; derived = [] }
      in
      execute ~config:Hw.Config.with_l2 ~decide:(fun _ -> true) constructs
      <= result.Wcet.Ipet.wcet)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "wcet"
    [
      ( "abstract-cache",
        Alcotest.
          [
            test_case "must analysis" `Quick test_abstract_cache;
            test_case "join" `Quick test_abstract_cache_join;
            test_case "pinned" `Quick test_abstract_cache_pinned;
          ] );
      ( "cache-analysis",
        Alcotest.
          [
            test_case "straight line" `Quick test_block_cost_straightline;
            test_case "dynamic clobbers" `Quick test_dynamic_access_clobbers;
            test_case "pinned code" `Quick test_pinned_code_cost;
          ] );
      ( "ipet",
        Alcotest.
          [
            test_case "loop bound" `Quick test_ipet_loop_bound;
            test_case "block counts" `Quick test_ipet_counts;
            test_case "unbounded loop" `Quick test_ipet_unbounded_loop;
            test_case "conflicts" `Quick test_ipet_conflict_constraint;
            test_case "consistent" `Quick test_ipet_consistent_constraint;
            test_case "executes at most" `Quick test_ipet_executes_at_most;
            test_case "negative cap rejected" `Quick
              test_executes_at_most_rejects_negative;
            test_case "forced path" `Quick test_ipet_forced_path;
            test_case "context sensitivity" `Quick test_ipet_context_sensitivity;
          ] );
      ( "soundness",
        qsuite [ test_soundness; test_soundness_l2; test_soundness_l2_locked ] );
    ]
