(* Tests for the static interference analysis: the footprint algebra, the
   section catalogue and its interference matrix, the Owicki-Gries
   progress-measure report, and — most importantly — the soundness audit:
   the declared footprints must cover every access the kernel actually
   performs, and a deliberately corrupted catalogue must be caught at
   exactly the corrupted section. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ctx = Sel4_rt.Analysis_ctx.default

(* --- footprint algebra --- *)

let test_conflicts () =
  let f1 = [ Race.r Race.Endpoint; Race.w Race.Tcb ] in
  let f2 = [ Race.r Race.Tcb ] in
  check_bool "W vs R conflicts" false (Race.independent f1 f2);
  check_bool "R vs R commutes" true
    (Race.independent [ Race.r Race.Endpoint ] [ Race.r Race.Endpoint ]);
  (* Distinct instances of the same class commute; None overlaps any. *)
  check_bool "distinct instances commute" true
    (Race.independent [ Race.w ~obj:1 Race.Endpoint ]
       [ Race.w ~obj:2 Race.Endpoint ]);
  check_bool "class-level overlaps instance" false
    (Race.independent [ Race.w Race.Endpoint ] [ Race.r ~obj:2 Race.Endpoint ]);
  (* Non-semantic conflicts disappear under semantic_only. *)
  check_bool "sched queues conflict (full)" false
    (Race.independent (Race.rw Race.Sched_queues) (Race.rw Race.Sched_queues));
  check_bool "sched queues commute (semantic)" true
    (Race.independent ~semantic_only:true (Race.rw Race.Sched_queues)
       (Race.rw Race.Sched_queues))

let test_catalogue_shape () =
  check_int "ten sections" 10 (List.length Race.catalogue);
  List.iter
    (fun op ->
      ignore (Race.section_exn (op ^ ".step"));
      ignore (Race.section_exn (op ^ ".finalise")))
    Race.ops;
  ignore (Race.section_exn "irq.deliver");
  ignore (Race.section_exn "irq.deliver_bound");
  Alcotest.check_raises "unknown section"
    (Invalid_argument "Race.section_exn: unknown section nope") (fun () ->
      ignore (Race.section_exn "nope"))

let test_matrix () =
  let pairs = Race.matrix () in
  (* Every section touches the kernel stack, so every unordered pair of
     distinct sections interferes on the full relation. *)
  let n = List.length Race.catalogue in
  check_int "all pairs interfere on bookkeeping" (n * (n - 1) / 2)
    (List.length pairs);
  let find l r =
    List.find
      (fun p -> p.Race.p_left = l && p.Race.p_right = r)
      pairs
  in
  (* ep-delete and retype steps are semantically independent: disjoint
     object classes. *)
  check_bool "ep_delete.step vs retype_clear.step commutes semantically" true
    ((find "ep_delete.step" "retype_clear.step").Race.p_semantic = []);
  (* ...but both ep ops fight over the endpoint. *)
  check_bool "ep_delete vs badged_abort semantically interferes" true
    (List.mem Race.Endpoint
       (find "ep_delete.step" "badged_abort.step").Race.p_semantic)

let test_og_report () =
  let rows = Race.og_report () in
  check_int "one row per op" (List.length Race.ops) (List.length rows);
  let row op = List.find (fun r -> r.Race.og_op = op) rows in
  (* The badged-abort sections write the endpoint state ep-delete's
     measure reads: an O-G proof must reason about that pair. *)
  check_bool "badged_abort perturbs ep_delete's measure" true
    (List.mem "badged_abort.step" (row "ep_delete").Race.og_perturbers);
  (* Retype's measure (watermark, cleared bytes) is untouched by every
     foreign section. *)
  check_int "retype_clear measure is isolated" 0
    (List.length (row "retype_clear").Race.og_perturbers);
  check_bool "irq.deliver never perturbs any measure" true
    (List.for_all
       (fun r -> not (List.mem "irq.deliver" r.Race.og_perturbers))
       rows)

(* --- the soundness audit --- *)

let test_audit_clean () =
  let a = Race.audit ~smoke:true ctx in
  check_bool "runs all ops x variants" true (a.Race.ar_runs >= 12);
  check_bool "recorded accesses" true (a.Race.ar_accesses > 1000);
  check_int "no access escapes its declared footprint" 0
    (List.length a.Race.ar_violations);
  check_bool "audit_ok" true (Race.audit_ok a)

let test_audit_catches_planted_corruption () =
  (* Drop a known write (Tcb, written when waking each dequeued waiter)
     from ep_delete.step: the audit must report violations, all of them
     at exactly that section and class. *)
  let corrupted =
    List.map
      (fun s ->
        if s.Race.sec_name = "ep_delete.step" then
          {
            s with
            Race.sec_fp =
              List.filter
                (fun a ->
                  not (a.Race.a_cls = Race.Tcb && a.Race.a_write))
                s.Race.sec_fp;
          }
        else s)
      Race.catalogue
  in
  let a =
    Race.audit ~catalogue:corrupted ~ops:[ Inject.Ep_delete ] ~smoke:true ctx
  in
  check_bool "corruption detected" true (List.length a.Race.ar_violations > 0);
  List.iter
    (fun v ->
      Alcotest.(check string)
        "violation names the corrupted section" "ep_delete.step"
        v.Race.av_section;
      check_bool "violation names the dropped class/direction" true
        (v.Race.av_cls = Race.Tcb && v.Race.av_write))
    a.Race.ar_violations

let test_audit_catches_missing_section_state () =
  (* Same planting against the finalise section: drop the Cap write that
     retires the deleted endpoint's slot.  Cap and Cdt_links alias at the
     address level, so both declarations must go. *)
  let corrupted =
    List.map
      (fun s ->
        if s.Race.sec_name = "ep_delete.finalise" then
          {
            s with
            Race.sec_fp =
              List.filter
                (fun a ->
                  not
                    (a.Race.a_write
                    && (a.Race.a_cls = Race.Cap || a.Race.a_cls = Race.Cdt_links)))
                s.Race.sec_fp;
          }
        else s)
      Race.catalogue
  in
  let a =
    Race.audit ~catalogue:corrupted ~ops:[ Inject.Ep_delete ] ~smoke:true ctx
  in
  check_bool "finalise corruption detected" true
    (List.exists
       (fun v -> v.Race.av_section = "ep_delete.finalise")
       a.Race.ar_violations)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_json_renders () =
  let a = Race.audit ~smoke:true ctx in
  let j = Race.to_json a in
  check_bool "mentions sections" true (contains j "\"sections\"");
  check_bool "mentions og" true (contains j "\"og\"");
  check_bool "audit is clean in json" true (contains j "\"violations\": []")

let () =
  Alcotest.run "race"
    [
      ( "algebra",
        [
          Alcotest.test_case "conflicts and independence" `Quick test_conflicts;
          Alcotest.test_case "catalogue shape" `Quick test_catalogue_shape;
          Alcotest.test_case "interference matrix" `Quick test_matrix;
          Alcotest.test_case "owicki-gries report" `Quick test_og_report;
        ] );
      ( "audit",
        [
          Alcotest.test_case "declared footprints cover reality" `Slow
            test_audit_clean;
          Alcotest.test_case "planted step corruption is caught" `Slow
            test_audit_catches_planted_corruption;
          Alcotest.test_case "planted finalise corruption is caught" `Slow
            test_audit_catches_missing_section_state;
          Alcotest.test_case "json renders" `Slow test_json_renders;
        ] );
    ]
