(* End-to-end tests of the reproduction pipeline: the timing skeletons,
   the adversarial workloads, pinning, and the response-time driver.

   The headline property ties the whole repository together: for every
   kernel entry point, build and hardware configuration, the IPET bound
   computed from the timing skeletons dominates what the executable
   kernel is observed to take under the adversarial workloads. *)

module KM = Sel4_rt.Kernel_model
module RT = Sel4_rt.Response_time
module Actx = Sel4_rt.Analysis_ctx

let improved = Sel4.Build.improved
let original = Sel4.Build.original
let ctx_of config build = Actx.make ~config ~build ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let configs = [ ("L2 off", Hw.Config.default); ("L2 on", Hw.Config.with_l2) ]

(* --- soundness: computed >= observed, everywhere --- *)

let test_soundness_all_entries () =
  List.iter
    (fun (cname, config) ->
      List.iter
        (fun entry ->
          let ctx = ctx_of config improved in
          let computed = RT.computed_cycles ctx entry in
          let observed = RT.observed ~runs:5 ctx entry in
          check_bool
            (Fmt.str "%s, %s: computed %d >= observed %d" (KM.entry_name entry)
               cname computed observed)
            true (computed >= observed))
        KM.entry_points)
    configs

let test_soundness_round_robin () =
  (* The ARM1136's actual replacement policy: the one-way conservative
     bound must still dominate round-robin execution (Section 5.1's
     soundness argument). *)
  let config =
    { Hw.Config.default with Hw.Config.replacement = Hw.Config.Round_robin }
  in
  List.iter
    (fun entry ->
      let computed =
        RT.computed_cycles (ctx_of Hw.Config.default improved) entry
      in
      let observed = RT.observed ~runs:5 (ctx_of config improved) entry in
      check_bool
        (Fmt.str "%s under round-robin: %d >= %d" (KM.entry_name entry)
           computed observed)
        true (computed >= observed))
    KM.entry_points

let test_soundness_original_build () =
  (* The before-kernel's syscall bound must also dominate its own worst
     observation (same workload; the operations just run unpreempted). *)
  let ctx = ctx_of Hw.Config.default original in
  let computed = RT.computed_cycles ctx KM.Syscall in
  let observed = RT.observed ~runs:3 ctx KM.Syscall in
  check_bool
    (Fmt.str "original syscall: %d >= %d" computed observed)
    true (computed >= observed)

(* --- forced paths (Figure 8) --- *)

let test_forced_path_between_observed_and_wcet () =
  let ctx = ctx_of Hw.Config.default improved in
  List.iter
    (fun entry ->
      let wcet = RT.computed_cycles ctx entry in
      let forced = RT.computed_for_path ctx entry in
      let observed = RT.observed ~runs:5 ctx entry in
      check_bool
        (Fmt.str "%s: observed %d <= forced %d <= wcet %d"
           (KM.entry_name entry) observed forced wcet)
        true
        (observed <= forced && forced <= wcet))
    KM.entry_points

(* --- the paper's headline shapes --- *)

let test_before_after_factor () =
  let before = RT.computed_cycles (ctx_of Hw.Config.default original) KM.Syscall in
  let after = RT.computed_cycles (ctx_of Hw.Config.default improved) KM.Syscall in
  let factor = float_of_int before /. float_of_int after in
  (* Paper: 11.6x.  Accept the right order of magnitude. *)
  check_bool
    (Fmt.str "syscall factor %.1f in [5, 25]" factor)
    true
    (factor >= 5.0 && factor <= 25.0)

let test_l2_raises_computed_lowers_little_observed () =
  List.iter
    (fun entry ->
      let c_off = RT.computed_cycles (ctx_of Hw.Config.default improved) entry in
      let c_on = RT.computed_cycles (ctx_of Hw.Config.with_l2 improved) entry in
      check_bool
        (Fmt.str "%s: computed rises with L2 (%d -> %d)" (KM.entry_name entry)
           c_off c_on)
        true (c_on > c_off))
    KM.entry_points

let test_pinning_reduces_wcet () =
  let selection = Sel4_rt.Pinning.select improved in
  let pins =
    {
      RT.code = selection.Sel4_rt.Pinning.code_lines;
      data = selection.Sel4_rt.Pinning.data_lines;
    }
  in
  let pinned_ctx =
    Actx.make
      ~config:(Hw.Config.with_pinning Hw.Config.default)
      ~pins ~build:improved ()
  in
  List.iter
    (fun entry ->
      let plain = RT.computed_cycles (ctx_of Hw.Config.default improved) entry in
      let pinned = RT.computed_cycles pinned_ctx entry in
      check_bool
        (Fmt.str "%s: pinning helps (%d -> %d)" (KM.entry_name entry) plain
           pinned)
        true (pinned <= plain))
    KM.entry_points;
  (* The interrupt path benefits the most, as in Table 1. *)
  let gain entry =
    let plain = RT.computed_cycles (ctx_of Hw.Config.default improved) entry in
    let pinned = RT.computed_cycles pinned_ctx entry in
    float_of_int (plain - pinned) /. float_of_int plain
  in
  check_bool "interrupt gains more than syscall" true
    (gain KM.Interrupt > gain KM.Syscall)

let test_response_bound_is_sum () =
  let ctx = ctx_of Hw.Config.default improved in
  check_int "response = syscall + interrupt"
    (RT.computed_cycles ctx KM.Syscall + RT.computed_cycles ctx KM.Interrupt)
    (RT.interrupt_response_bound ctx)

(* --- workloads --- *)

let test_workload_invariants () =
  (* The adversarial scenarios leave the kernel in a consistent state. *)
  List.iter
    (fun entry ->
      let s =
        Sel4_rt.Workloads.scenario (ctx_of Hw.Config.default improved) entry
      in
      let _ = Sel4_rt.Workloads.measure_once s ~seed:3 in
      match Sel4.Invariants.check_result s.Sel4_rt.Workloads.env.Sel4.Boot.k with
      | Ok () -> ()
      | Error ms ->
          Alcotest.failf "%s scenario: invariant violated: %s"
            (KM.entry_name entry) (String.concat "; " ms))
    KM.entry_points

let test_deep_cspace_depth_matters () =
  (* Figure 7: decode cost strictly grows with depth. *)
  let cost depth =
    let params =
      { KM.default_params with KM.decode_depth = depth; KM.extra_caps = 0 }
    in
    RT.observed ~runs:3 (Actx.make ~params ~build:improved ()) KM.Syscall
  in
  let c1 = cost 1 and c8 = cost 8 and c32 = cost 32 in
  check_bool (Fmt.str "monotone %d < %d < %d" c1 c8 c32) true
    (c1 < c8 && c8 < c32)

let test_observed_deterministic_per_seed () =
  let run () =
    let s =
      Sel4_rt.Workloads.scenario (ctx_of Hw.Config.default improved) KM.Interrupt
    in
    snd (Sel4_rt.Workloads.measure_once s ~seed:7)
  in
  check_int "same seed, same cycles" (run ()) (run ())

(* --- the constraint story (Section 6) --- *)

let test_constraints_tighten_syscall_bound () =
  let config = Hw.Config.default in
  let spec = KM.spec improved KM.Syscall in
  let unconstrained =
    Wcet.Ipet.analyse ~config
      { spec with Wcet.Ipet.constraints = []; derived = [] }
  in
  let constrained = Wcet.Ipet.analyse ~config spec in
  check_bool
    (Fmt.str "constraints tighten the bound (%d -> %d)"
       unconstrained.Wcet.Ipet.wcet constrained.Wcet.Ipet.wcet)
    true
    (constrained.Wcet.Ipet.wcet < unconstrained.Wcet.Ipet.wcet)

(* --- loop-bound integration --- *)

let test_kernel_loop_bounds () =
  List.iter
    (fun (r : Sel4_rt.Kernel_loops.result) ->
      match r.Sel4_rt.Kernel_loops.computed with
      | Some bound ->
          check_int
            (Fmt.str "%s: computed = annotated"
               r.Sel4_rt.Kernel_loops.spec.Sel4_rt.Kernel_loops.name)
            r.Sel4_rt.Kernel_loops.spec.Sel4_rt.Kernel_loops.annotated bound
      | None ->
          Alcotest.failf "%s: no bound computed"
            r.Sel4_rt.Kernel_loops.spec.Sel4_rt.Kernel_loops.name)
    (Sel4_rt.Experiments.loop_bounds ())

(* --- pinning mechanics --- *)

let test_pin_selection_fits_way () =
  let s = Sel4_rt.Pinning.select improved in
  let config = Hw.Config.default in
  check_bool "code lines fit one way" true
    (List.length s.Sel4_rt.Pinning.code_lines <= config.Hw.Config.l1_sets);
  check_bool "data lines fit one way" true
    (List.length s.Sel4_rt.Pinning.data_lines <= config.Hw.Config.l1_sets);
  (* At most one line per set (a locked way holds one line per set). *)
  let one_per_set lines =
    let sets = List.map (fun l -> l / 32 mod config.Hw.Config.l1_sets) lines in
    List.length sets = List.length (List.sort_uniq compare sets)
  in
  check_bool "one code line per set" true (one_per_set s.Sel4_rt.Pinning.code_lines);
  check_bool "one data line per set" true (one_per_set s.Sel4_rt.Pinning.data_lines)

let test_pinned_lines_survive_workload () =
  let selection = Sel4_rt.Pinning.select improved in
  let config = Hw.Config.with_pinning Hw.Config.default in
  let s = Sel4_rt.Workloads.scenario (ctx_of config improved) KM.Syscall in
  let machine = Hw.Cpu.machine s.Sel4_rt.Workloads.cpu in
  Sel4_rt.Pinning.install selection machine;
  let _ = Sel4_rt.Workloads.measure_once s ~seed:11 in
  List.iter
    (fun line ->
      check_bool
        (Fmt.str "pinned I-line %#x still cached" line)
        true
        (Hw.Cache.probe (Hw.Machine.icache machine) line))
    selection.Sel4_rt.Pinning.code_lines

(* --- the shared PRNG --- *)

let test_prng_deterministic () =
  let a = Sel4_rt.Prng.create 42 and b = Sel4_rt.Prng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Sel4_rt.Prng.next64 a = Sel4_rt.Prng.next64 b)
  done;
  let c = Sel4_rt.Prng.create 43 in
  check_bool "different seed, different stream" false
    (Sel4_rt.Prng.next64 a = Sel4_rt.Prng.next64 c)

let test_prng_ranges () =
  let r = Sel4_rt.Prng.create 7 in
  for _ = 1 to 1000 do
    let i = Sel4_rt.Prng.int r 10 in
    check_bool "int in range" true (i >= 0 && i < 10);
    let f = Sel4_rt.Prng.float r in
    check_bool "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done;
  check_int "bound <= 0 yields 0" 0 (Sel4_rt.Prng.int r 0)

let test_prng_split_at_pure () =
  let parent = Sel4_rt.Prng.create 11 in
  ignore (Sel4_rt.Prng.next64 parent);
  let before = Sel4_rt.Prng.state parent in
  let c3 = Sel4_rt.Prng.split_at parent 3 in
  let c3' = Sel4_rt.Prng.split_at parent 3 in
  check_bool "split_at does not advance the parent" true
    (Sel4_rt.Prng.state parent = before);
  for _ = 1 to 20 do
    check_bool "same child index, same stream" true
      (Sel4_rt.Prng.next64 c3 = Sel4_rt.Prng.next64 c3')
  done;
  let c4 = Sel4_rt.Prng.split_at parent 4 in
  check_bool "distinct child indices diverge" false
    (Sel4_rt.Prng.next64 (Sel4_rt.Prng.split_at parent 3)
    = Sel4_rt.Prng.next64 c4)

let test_prng_split_independent_of_draws () =
  (* The i-th child depends only on the parent state at the split, not on
     how many other children were split off before it. *)
  let p1 = Sel4_rt.Prng.create 5 and p2 = Sel4_rt.Prng.create 5 in
  ignore (Sel4_rt.Prng.split_at p1 0);
  ignore (Sel4_rt.Prng.split_at p1 1);
  let a = Sel4_rt.Prng.split_at p1 9 and b = Sel4_rt.Prng.split_at p2 9 in
  for _ = 1 to 20 do
    check_bool "child 9 identical" true
      (Sel4_rt.Prng.next64 a = Sel4_rt.Prng.next64 b)
  done

let () =
  Alcotest.run "core"
    [
      ( "soundness",
        Alcotest.
          [
            test_case "computed >= observed (all)" `Slow test_soundness_all_entries;
            test_case "original build" `Quick test_soundness_original_build;
            test_case "round-robin replacement" `Quick test_soundness_round_robin;
            test_case "forced path bracketed" `Slow
              test_forced_path_between_observed_and_wcet;
          ] );
      ( "shapes",
        Alcotest.
          [
            test_case "before/after factor" `Quick test_before_after_factor;
            test_case "L2 raises computed" `Quick
              test_l2_raises_computed_lowers_little_observed;
            test_case "pinning reduces WCET" `Slow test_pinning_reduces_wcet;
            test_case "response bound is a sum" `Quick test_response_bound_is_sum;
          ] );
      ( "workloads",
        Alcotest.
          [
            test_case "invariants preserved" `Quick test_workload_invariants;
            test_case "depth matters" `Quick test_deep_cspace_depth_matters;
            test_case "deterministic per seed" `Quick
              test_observed_deterministic_per_seed;
          ] );
      ( "analysis",
        Alcotest.
          [
            test_case "constraints tighten" `Quick
              test_constraints_tighten_syscall_bound;
            test_case "kernel loop bounds" `Quick test_kernel_loop_bounds;
          ] );
      ( "pinning",
        Alcotest.
          [
            test_case "selection fits way" `Quick test_pin_selection_fits_way;
            test_case "pins survive workload" `Quick
              test_pinned_lines_survive_workload;
          ] );
      ( "prng",
        Alcotest.
          [
            test_case "deterministic per seed" `Quick test_prng_deterministic;
            test_case "ranges" `Quick test_prng_ranges;
            test_case "split_at is pure" `Quick test_prng_split_at_pure;
            test_case "split independent of draws" `Quick
              test_prng_split_independent_of_draws;
          ] );
    ]
