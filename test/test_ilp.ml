(* Tests for the exact-rational LP/ILP solver: unit cases with known optima
   plus randomized cross-checks against brute-force enumeration. *)

module R = Ilp.Rat

let rat = Alcotest.testable R.pp R.equal

let check_rat = Alcotest.check rat
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Rationals --- *)

let test_rat_basics () =
  check_rat "1/2 + 1/3" (R.make 5 6) (R.add (R.make 1 2) (R.make 1 3));
  check_rat "normalisation" (R.make 1 2) (R.make 17 34);
  check_rat "negative denominator" (R.make (-1) 2) (R.make 1 (-2));
  check_rat "mul" (R.make 3 8) (R.mul (R.make 1 2) (R.make 3 4));
  check_rat "div" (R.make 2 3) (R.div (R.make 1 2) (R.make 3 4));
  check_int "floor 7/2" 3 (R.floor (R.make 7 2));
  check_int "floor -7/2" (-4) (R.floor (R.make (-7) 2));
  check_int "ceil 7/2" 4 (R.ceil (R.make 7 2));
  check_int "ceil -7/2" (-3) (R.ceil (R.make (-7) 2));
  check_bool "1/3 < 1/2" true (R.lt (R.make 1 3) (R.make 1 2))

let test_rat_overflow () =
  Alcotest.check_raises "mul overflow" R.Overflow (fun () ->
      ignore (R.mul (R.of_int max_int) (R.of_int 2)))

let small_rat_gen =
  QCheck.Gen.(
    map2
      (fun n d -> R.make n d)
      (int_range (-50) 50)
      (int_range 1 20))

let arb_rat = QCheck.make ~print:(Fmt.to_to_string R.pp) small_rat_gen

let test_rat_field_laws =
  QCheck.Test.make ~count:500 ~name:"rational arithmetic laws"
    QCheck.(triple arb_rat arb_rat arb_rat)
    (fun (a, b, c) ->
      R.equal (R.add a b) (R.add b a)
      && R.equal (R.add (R.add a b) c) (R.add a (R.add b c))
      && R.equal (R.mul a (R.add b c)) (R.add (R.mul a b) (R.mul a c))
      && R.equal (R.sub a a) R.zero
      && (R.is_zero b || R.equal (R.mul (R.div a b) b) a))

let test_rat_order_antisym =
  QCheck.Test.make ~count:500 ~name:"compare consistent with floats"
    QCheck.(pair arb_rat arb_rat)
    (fun (a, b) ->
      let c = R.compare a b in
      let f = Stdlib.compare (R.to_float a) (R.to_float b) in
      (* floats of small rationals are exact enough for the sign *)
      c = f || (c = 0 && f = 0))

(* --- Simplex unit cases --- *)

(* Constraints are written densely in the cases below and converted to the
   solver's sparse-row form here. *)
let lp num_vars maximize constraints =
  let sparse coeffs =
    Array.to_list (Array.mapi (fun v c -> (v, c)) coeffs)
    |> List.filter_map (fun (v, c) ->
           if c = 0 then None else Some (v, R.of_int c))
  in
  {
    Ilp.Simplex.num_vars;
    maximize = Array.map R.of_int maximize;
    constraints =
      List.map (fun (coeffs, op, b) -> (sparse coeffs, op, R.of_int b)) constraints;
  }

let objective_of = function
  | Ilp.Simplex.Optimal s -> s.Ilp.Simplex.objective
  | r -> Alcotest.failf "expected optimal, got %a" Ilp.Simplex.pp_result r

let test_simplex_basic () =
  (* max x + y s.t. x <= 2, y <= 3 -> 5 *)
  let r =
    Ilp.Simplex.solve
      (lp 2 [| 1; 1 |]
         [
           ([| 1; 0 |], Ilp.Simplex.Le, 2); ([| 0; 1 |], Ilp.Simplex.Le, 3);
         ])
  in
  check_rat "optimum" (R.of_int 5) (objective_of r)

let test_simplex_fractional () =
  (* max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4,y=0 -> 12;
     tighter: 2x + y <= 5 as well -> x=5/2? include to get fractional *)
  let r =
    Ilp.Simplex.solve
      (lp 2 [| 3; 2 |]
         [
           ([| 1; 1 |], Ilp.Simplex.Le, 4);
           ([| 1; 3 |], Ilp.Simplex.Le, 6);
           ([| 2; 1 |], Ilp.Simplex.Le, 5);
         ])
  in
  (* Optimum at 2x+y=5 intersect x+3y=6: x=9/5, y=7/5, objective 41/5. *)
  check_rat "fractional-path optimum" (R.make 41 5) (objective_of r)

let test_simplex_infeasible () =
  let r =
    Ilp.Simplex.solve
      (lp 1 [| 1 |]
         [ ([| 1 |], Ilp.Simplex.Le, 1); ([| 1 |], Ilp.Simplex.Ge, 2) ])
  in
  check_bool "infeasible" true (r = Ilp.Simplex.Infeasible)

let test_simplex_unbounded () =
  let r = Ilp.Simplex.solve (lp 1 [| 1 |] [ ([| -1 |], Ilp.Simplex.Le, 0) ]) in
  check_bool "unbounded" true (r = Ilp.Simplex.Unbounded)

let test_simplex_equality () =
  (* max x + 2y s.t. x + y = 3, x <= 2 -> x in [0,2], y = 3-x, obj = 6-x
     -> max at x=0: 6 *)
  let r =
    Ilp.Simplex.solve
      (lp 2 [| 1; 2 |]
         [ ([| 1; 1 |], Ilp.Simplex.Eq, 3); ([| 1; 0 |], Ilp.Simplex.Le, 2) ])
  in
  check_rat "equality optimum" (R.of_int 6) (objective_of r)

let test_simplex_negative_rhs () =
  (* x >= 1 written as -x <= -1; max -x -> -1 *)
  let r = Ilp.Simplex.solve (lp 1 [| -1 |] [ ([| -1 |], Ilp.Simplex.Le, -1) ]) in
  check_rat "negative rhs handled" (R.of_int (-1)) (objective_of r)

let test_simplex_degenerate () =
  (* Degenerate vertex: redundant constraints meeting at the optimum. *)
  let r =
    Ilp.Simplex.solve
      (lp 2 [| 1; 1 |]
         [
           ([| 1; 0 |], Ilp.Simplex.Le, 1);
           ([| 0; 1 |], Ilp.Simplex.Le, 1);
           ([| 1; 1 |], Ilp.Simplex.Le, 2);
           ([| 2; 1 |], Ilp.Simplex.Le, 3);
         ])
  in
  check_rat "degenerate optimum" (R.of_int 2) (objective_of r)

(* --- Randomized LP/ILP cross-checks --- *)

(* Random bounded ILPs: n in 1..3 variables, each bounded by [ub], a few
   mixed-relation constraints with small coefficients.  Brute-force over
   the integer box and compare with branch-and-bound; also check the LP
   relaxation bounds the ILP. *)
type rel = RLe | RGe | REq

let random_ilp_gen =
  QCheck.Gen.(
    let* n = int_range 1 3 in
    let* ub = int_range 1 5 in
    let* n_cstr = int_range 0 4 in
    let coeff = int_range (-3) 3 in
    let* objective = list_repeat n coeff in
    let* constraints =
      list_repeat n_cstr
        (let* coeffs = list_repeat n coeff in
         let* bound = int_range 0 12 in
         let* relation = frequency [ (4, return RLe); (2, return RGe); (1, return REq) ] in
         return (coeffs, relation, bound))
    in
    return (n, ub, objective, constraints))

let rel_str = function RLe -> "<=" | RGe -> ">=" | REq -> "="

let print_ilp (n, ub, objective, constraints) =
  Fmt.str "n=%d ub=%d obj=%a cstrs=[%s]" n ub
    Fmt.(Dump.list int)
    objective
    (String.concat "; "
       (List.map
          (fun (coeffs, relation, bound) ->
            Fmt.str "%a %s %d" Fmt.(Dump.list int) coeffs (rel_str relation)
              bound)
          constraints))

let satisfies relation v bound =
  match relation with RLe -> v <= bound | RGe -> v >= bound | REq -> v = bound

let brute_force (n, ub, objective, constraints) =
  (* Enumerate the integer box [0..ub]^n. *)
  let best = ref None in
  let point = Array.make n 0 in
  let rec enum i =
    if i = n then begin
      let feasible =
        List.for_all
          (fun (coeffs, relation, bound) ->
            let v =
              List.fold_left ( + ) 0
                (List.mapi (fun j c -> c * point.(j)) coeffs)
            in
            satisfies relation v bound)
          constraints
      in
      if feasible then begin
        let obj =
          List.fold_left ( + ) 0
            (List.mapi (fun j c -> c * point.(j)) objective)
        in
        match !best with
        | None -> best := Some obj
        | Some b -> if obj > b then best := Some obj
      end
    end
    else
      for v = 0 to ub do
        point.(i) <- v;
        enum (i + 1)
      done
  in
  enum 0;
  !best

let build_problem (n, ub, objective, constraints) =
  let p = Ilp.Problem.create () in
  let vars = List.init n (fun i -> Ilp.Problem.var p (Fmt.str "x%d" i)) in
  List.iter (fun v -> Ilp.Problem.add_le p [ (1, v) ] ub) vars;
  List.iter
    (fun (coeffs, relation, bound) ->
      let terms = List.map2 (fun c v -> (c, v)) coeffs vars in
      match relation with
      | RLe -> Ilp.Problem.add_le p terms bound
      | RGe -> Ilp.Problem.add_ge p terms bound
      | REq -> Ilp.Problem.add_eq p terms bound)
    constraints;
  Ilp.Problem.set_objective p (List.map2 (fun c v -> (c, v)) objective vars);
  p

let test_bb_vs_brute_force =
  QCheck.Test.make ~count:300 ~name:"branch&bound matches brute force"
    (QCheck.make ~print:print_ilp random_ilp_gen)
    (fun instance ->
      let expected = brute_force instance in
      let p = build_problem instance in
      match (Ilp.Branch_bound.solve p, expected) with
      | Ilp.Branch_bound.Optimal { objective; _ }, Some e -> objective = e
      | Ilp.Branch_bound.Infeasible, None -> true
      | _ -> false)

let test_lp_bounds_ilp =
  QCheck.Test.make ~count:300 ~name:"LP relaxation bounds the ILP"
    (QCheck.make ~print:print_ilp random_ilp_gen)
    (fun instance ->
      let p = build_problem instance in
      match (Ilp.Problem.solve_relaxation p, Ilp.Branch_bound.solve p) with
      | Ilp.Simplex.Optimal s, Ilp.Branch_bound.Optimal { objective; _ } ->
          R.ge s.Ilp.Simplex.objective (R.of_int objective)
      | Ilp.Simplex.Infeasible, Ilp.Branch_bound.Infeasible -> true
      | Ilp.Simplex.Optimal _, Ilp.Branch_bound.Infeasible ->
          (* LP feasible but no integer point in the polytope: possible. *)
          true
      | _ -> false)

let test_bb_warm_start =
  (* A warm start taken from the optimal solution (or any junk vector) must
     never change the reported optimum: valid incumbents only prune, and
     infeasible candidates are discarded. *)
  QCheck.Test.make ~count:300 ~name:"warm start preserves the optimum"
    (QCheck.make ~print:print_ilp random_ilp_gen)
    (fun instance ->
      let p = build_problem instance in
      let cold = Ilp.Branch_bound.solve p in
      let warm ws = Ilp.Branch_bound.solve ~warm_start:ws p in
      let junk =
        Array.init (List.length (Ilp.Problem.vars p)) (fun i -> (i * 7) - 3)
      in
      match cold with
      | Ilp.Branch_bound.Optimal { objective; values } -> (
          (match warm junk with
          | Ilp.Branch_bound.Optimal { objective = o; _ } -> o = objective
          | _ -> false)
          &&
          match warm values with
          | Ilp.Branch_bound.Optimal { objective = o; _ } -> o = objective
          | _ -> false)
      | Ilp.Branch_bound.Infeasible -> warm junk = Ilp.Branch_bound.Infeasible
      | Ilp.Branch_bound.Unbounded -> true)

let test_bb_integrality () =
  (* max x s.t. 2x <= 3 -> LP gives 3/2, ILP must give 1. *)
  let p = Ilp.Problem.create () in
  let x = Ilp.Problem.var p "x" in
  Ilp.Problem.add_le p [ (2, x) ] 3;
  Ilp.Problem.set_objective p [ (1, x) ];
  match Ilp.Branch_bound.solve p with
  | Ilp.Branch_bound.Optimal { objective; values } ->
      check_int "integral optimum" 1 objective;
      check_int "value" 1 values.(0)
  | r -> Alcotest.failf "expected optimal, got %a" Ilp.Branch_bound.pp_outcome r

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  scan 0

let test_problem_pp () =
  let p = Ilp.Problem.create () in
  let x = Ilp.Problem.var p "x_f" in
  Ilp.Problem.add_le ~label:"loop bound" p [ (1, x) ] 7;
  Ilp.Problem.set_objective p [ (42, x) ];
  let rendered = Fmt.to_to_string Ilp.Problem.pp p in
  check_bool "mentions variable" true (contains_substring rendered "x_f");
  check_bool "mentions label" true (contains_substring rendered "loop bound")

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "ilp"
    [
      ( "rat",
        Alcotest.
          [
            test_case "basics" `Quick test_rat_basics;
            test_case "overflow" `Quick test_rat_overflow;
          ]
        @ qsuite [ test_rat_field_laws; test_rat_order_antisym ] );
      ( "simplex",
        Alcotest.
          [
            test_case "basic" `Quick test_simplex_basic;
            test_case "fractional vertex" `Quick test_simplex_fractional;
            test_case "infeasible" `Quick test_simplex_infeasible;
            test_case "unbounded" `Quick test_simplex_unbounded;
            test_case "equality" `Quick test_simplex_equality;
            test_case "negative rhs" `Quick test_simplex_negative_rhs;
            test_case "degenerate" `Quick test_simplex_degenerate;
          ] );
      ( "branch-bound",
        Alcotest.[ test_case "integrality" `Quick test_bb_integrality ]
        @ qsuite [ test_bb_vs_brute_force; test_lp_bounds_ilp; test_bb_warm_start ] );
      ( "problem",
        Alcotest.[ test_case "pretty printing" `Quick test_problem_pp ] );
    ]
