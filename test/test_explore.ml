(* Tests for the DPOR schedule explorer.  The load-bearing one is
   pruning soundness: on the depth-3 ep-delete scenario, naive full
   enumeration and DPOR exploration must reach exactly the same set of
   final-state digests while DPOR prunes a substantial fraction of the
   universe.  The planted non-commuting pair (signal_a/poll_a on the same
   notification word) checks the pruner keeps genuinely order-sensitive
   schedules: both orders must be explored, and must reach different
   final states. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ctx = Sel4_rt.Analysis_ctx.default

(* --- the static classification feeding the pruner --- *)

let test_independent_actions () =
  let alphabet = Explore.actions_for Inject.Ep_delete in
  let indep = Explore.independent_actions Inject.Ep_delete alphabet in
  check_bool "pause is independent" true (List.mem "pause" indep);
  check_bool "signal_b is independent" true (List.mem "signal_b" indep);
  (* The planted non-commuting pair must be classified as decisions. *)
  check_bool "signal_a is a decision" false (List.mem "signal_a" indep);
  check_bool "poll_a is a decision" false (List.mem "poll_a" indep);
  let ab = Explore.actions_for Inject.Badged_abort in
  let ab_indep = Explore.independent_actions Inject.Badged_abort ab in
  check_bool "requeue conflicts with the abort" false
    (List.mem "requeue" ab_indep)

let test_universe_counts () =
  let alphabet = Explore.actions_for Inject.Ep_delete in
  (* sum over d of C(polls, d) * P(|A|, d) *)
  check_int "depth 1" 16 (List.length (Explore.universe ~polls:4 ~depth:1 alphabet));
  check_int "depth 2" (16 + 72)
    (List.length (Explore.universe ~polls:4 ~depth:2 alphabet));
  check_int "depth 3" (16 + 72 + 96)
    (List.length (Explore.universe ~polls:4 ~depth:3 alphabet));
  (* Distinct actions per schedule: depth saturates at the alphabet. *)
  check_int "depth beyond alphabet saturates"
    (List.length (Explore.universe ~polls:4 ~depth:4 alphabet))
    (List.length (Explore.universe ~polls:4 ~depth:5 alphabet))

let test_canonical_counts () =
  let alphabet = Explore.actions_for Inject.Ep_delete in
  let indep = Explore.independent_actions Inject.Ep_delete alphabet in
  let all = Explore.universe ~polls:4 ~depth:3 alphabet in
  let canon = List.filter (Explore.canonical ~polls:4 ~indep) all in
  (* Every schedule has exactly one canonical representative, so pruning
     is strict and substantial. *)
  check_bool "prunes at least 30%" true
    (float_of_int (List.length all - List.length canon)
     >= 0.3 *. float_of_int (List.length all));
  (* A schedule of decisions only is always canonical. *)
  let sig_a = List.find (fun a -> a.Explore.act_name = "signal_a") alphabet in
  let poll_a = List.find (fun a -> a.Explore.act_name = "poll_a") alphabet in
  check_bool "decision-only schedules are canonical" true
    (Explore.canonical ~polls:4 ~indep [ (2, sig_a); (4, poll_a) ]);
  (* An independent action parked on a non-minimal free poll is not. *)
  let sig_b = List.find (fun a -> a.Explore.act_name = "signal_b") alphabet in
  check_bool "sig_b at poll 1 is canonical" true
    (Explore.canonical ~polls:4 ~indep [ (1, sig_b) ]);
  check_bool "sig_b at poll 3 is pruned" false
    (Explore.canonical ~polls:4 ~indep [ (3, sig_b) ])

(* --- pruning soundness: naive and DPOR reach the same digest set --- *)

let test_pruning_soundness_depth3 () =
  let naive, _ =
    Explore.run_scenario ~naive:true ~depth:3 ctx Inject.Ep_delete
  in
  let dpor, _ = Explore.run_scenario ~depth:3 ctx Inject.Ep_delete in
  check_bool "naive run is clean" true (naive.Explore.e_failures = []);
  check_bool "dpor run is clean" true (dpor.Explore.e_failures = []);
  check_int "naive explores the whole universe" naive.Explore.e_universe
    naive.Explore.e_explored;
  let digest_set r =
    List.sort_uniq compare (List.map snd r.Explore.e_runs)
  in
  Alcotest.(check (list string))
    "identical final-state digest sets" (digest_set naive) (digest_set dpor);
  check_bool "dpor prunes at least 30% of the universe" true
    (float_of_int dpor.Explore.e_pruned
     >= 0.3 *. float_of_int dpor.Explore.e_universe);
  check_int "explored + pruned covers the universe" dpor.Explore.e_universe
    (dpor.Explore.e_explored + dpor.Explore.e_pruned)

(* --- the planted non-commuting pair is never pruned --- *)

let test_non_commuting_pair_explored () =
  let dpor, _ = Explore.run_scenario ~depth:2 ctx Inject.Ep_delete in
  let digest_of sched =
    match List.assoc_opt sched dpor.Explore.e_runs with
    | Some d -> d
    | None ->
        Alcotest.failf "schedule %s was pruned (must be explored)"
          (String.concat ";"
             (List.map (fun (p, n) -> Fmt.str "%d:%s" p n) sched))
  in
  (* Both orders of the racing pair must be explored... *)
  let d_sig_poll = digest_of [ (1, "signal_a"); (2, "poll_a") ] in
  let d_poll_sig = digest_of [ (1, "poll_a"); (2, "signal_a") ] in
  (* ...and they are genuinely order-sensitive: signal-then-poll consumes
     the word, poll-then-signal leaves it set. *)
  check_bool "the two orders reach different final states" true
    (d_sig_poll <> d_poll_sig)

(* --- determinism and the campaign entry point --- *)

let test_deterministic () =
  let r1, n1 = Explore.run_scenario ~depth:2 ctx Inject.Ep_delete in
  let r2, n2 = Explore.run_scenario ~depth:2 ctx Inject.Ep_delete in
  check_bool "identical reports" true (r1 = r2);
  check_int "identical run counts" n1 n2

let test_smoke_campaign () =
  let r = Explore.run ~smoke:true ctx in
  check_bool "smoke campaign is clean" true (Explore.ok r);
  check_int "smoke covers ep_delete only" 1 (List.length r.Explore.x_scens);
  List.iter
    (fun s ->
      check_bool "explored some schedules" true (s.Explore.e_explored > 0);
      check_bool "deduped some states" true (s.Explore.e_deduped > 0);
      check_int "counts add up" s.Explore.e_universe
        (s.Explore.e_explored + s.Explore.e_pruned))
    r.Explore.x_scens

let test_badged_abort_requeue () =
  (* The cross-op interference scenario: a client re-queues on the
     endpoint mid-abort.  Every schedule must satisfy the measure oracle
     (the scan bound was captured at start) and the differential oracle. *)
  let r, _ = Explore.run_scenario ~depth:2 ctx Inject.Badged_abort in
  check_bool "badged_abort scenario is clean" true (r.Explore.e_failures = []);
  check_bool "explored requeue schedules" true
    (List.exists
       (fun (sched, _) -> List.exists (fun (_, n) -> n = "requeue") sched)
       r.Explore.e_runs)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_json_envelope () =
  let r = Explore.run ~smoke:true ctx in
  let j = Explore.to_json r in
  (* The envelope keys shared with Inject.to_json. *)
  check_bool "campaign key" true (contains j "\"campaign\": \"explore\"");
  check_bool "ok key" true (contains j "\"ok\": true");
  check_bool "total_runs key" true (contains j "\"total_runs\"");
  check_bool "ops array" true (contains j "\"ops\"");
  check_bool "failures arrays" true (contains j "\"failures\": []")

let () =
  Alcotest.run "explore"
    [
      ( "static",
        [
          Alcotest.test_case "independent actions" `Quick
            test_independent_actions;
          Alcotest.test_case "universe counts" `Quick test_universe_counts;
          Alcotest.test_case "canonicity" `Quick test_canonical_counts;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "naive vs dpor digest sets (depth 3)" `Slow
            test_pruning_soundness_depth3;
          Alcotest.test_case "non-commuting pair is explored" `Slow
            test_non_commuting_pair_explored;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic" `Slow test_deterministic;
          Alcotest.test_case "smoke campaign" `Slow test_smoke_campaign;
          Alcotest.test_case "badged-abort requeue" `Slow
            test_badged_abort_requeue;
          Alcotest.test_case "json envelope" `Quick test_json_envelope;
        ] );
    ]
