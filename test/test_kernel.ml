(* Tests for the seL4-like kernel model.

   The flagship property mirrors the paper's verification story: the
   Section 2.2 invariant catalogue (queue well-formedness, the Benno
   invariant, the bitmap mirror, alignment, CDT shape, shadow
   back-pointers, kernel mappings) holds after every kernel entry, for
   arbitrary random operation sequences, in every build configuration. *)

open Sel4.Ktypes
module K = Sel4.Kernel
module B = Sel4.Boot

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let improved = Sel4.Build.improved
let original = Sel4.Build.original

let check_invariants what env =
  match Sel4.Invariants.check_result env.B.k with
  | Result.Ok () -> ()
  | Result.Error ms ->
      Alcotest.failf "%s: invariant violated: %s" what (String.concat "; " ms)

(* Run an event as a specific thread (models that thread being in user
   mode and trapping into the kernel). *)
let become env tcb = K.force_run env.B.k tcb

let as_thread env tcb event =
  become env tcb;
  K.kernel_entry env.B.k event

(* Kernel objects are cyclic, so thread-state checks must compare
   physically, never structurally. *)
let blocked_receiving tcb ep =
  match tcb.state with Blocked_on_receive ep' -> ep' == ep | _ -> false

let blocked_sending tcb ep =
  match tcb.state with Blocked_on_send ep' -> ep' == ep | _ -> false

let caller_is tcb expected =
  match tcb.caller with Some c -> c == expected | None -> false

let expect_completed what = function
  | K.Completed -> ()
  | K.Preempted -> Alcotest.failf "%s: unexpectedly preempted" what
  | K.Failed e -> Alcotest.failf "%s: failed: %s" what e

(* --- boot --- *)

let test_boot () =
  let env = B.boot improved in
  check_invariants "after boot" env;
  check_bool "root is current" true (env.B.k.K.current == env.B.root_tcb);
  check_int "root cnode has 256 slots" 256 (Array.length env.B.root_cnode.cn_slots)

let test_boot_all_builds () =
  List.iter
    (fun build -> check_invariants "boot" (B.boot build))
    [
      improved;
      original;
      { improved with Sel4.Build.sched = Sel4.Build.Benno };
      { improved with Sel4.Build.sched = Sel4.Build.Lazy };
      { original with Sel4.Build.vspace = Sel4.Build.Shadow_tables };
    ]

let test_retype_syscall () =
  let env = B.boot improved in
  let _ = B.retype_syscall env Endpoint_object ~count:3 ~dest:10 in
  check_invariants "after retype" env;
  (match env.B.root_cnode.cn_slots.(10).cap with
  | Endpoint_cap _ -> ()
  | c -> Alcotest.failf "expected endpoint cap, got %a" pp_cap c);
  (* New caps are CDT children of the untyped. *)
  check_bool "untyped has children" true (Sel4.Cdt.has_children env.B.ut_slot)

let test_retype_clears_objects () =
  let env = B.boot improved in
  let _ = B.retype_syscall env (Frame_object 16) ~count:1 ~dest:10 in
  match env.B.root_cnode.cn_slots.(10).cap with
  | Frame_cap { frame; _ } ->
      check_int "fully cleared" (1 lsl 16) frame.f_cleared
  | c -> Alcotest.failf "expected frame cap, got %a" pp_cap c

let test_retype_errors () =
  let env = B.boot improved in
  let _ = B.retype_syscall env Endpoint_object ~count:1 ~dest:10 in
  (match
     K.run_to_completion env.B.k
       (K.Ev_invoke
          (K.Inv_retype
             {
               ut = B.ut_cptr;
               obj_type = Endpoint_object;
               count = 1;
               dest_slots = [ env.B.root_cnode.cn_slots.(10) ];
             }))
   with
  | K.Failed _ -> ()
  | _ -> Alcotest.fail "occupied destination must fail");
  check_invariants "after failed retype" env

(* --- IPC --- *)

type ipc_env = {
  env : B.env;
  ep : endpoint;
  ep_cptr : int;
  server : tcb;
  client : tcb;
}

let ipc_setup ?cpu build =
  let env = B.boot ?cpu build in
  let ep = B.spawn_endpoint env ~dest:10 in
  let server = B.spawn_thread env ~priority:150 ~dest:11 in
  let client = B.spawn_thread env ~priority:120 ~dest:12 in
  B.make_runnable env server;
  B.make_runnable env client;
  { env; ep; ep_cptr = 10; server; client }

let test_ipc_call_reply () =
  let { env; ep; ep_cptr; server; client } = ipc_setup improved in
  (* Server blocks receiving. *)
  expect_completed "recv" (as_thread env server (K.Ev_recv { ep = ep_cptr }));
  check_bool "server blocked" true (blocked_receiving server ep);
  check_invariants "server blocked" env;
  (* Client calls: direct switch to the server. *)
  client.regs.(0) <- 42;
  client.regs.(1) <- 7;
  expect_completed "call"
    (as_thread env client
       (K.Ev_call { ep = ep_cptr; badge_hint = 0; msg_len = 2; extra_caps = [] }));
  check_bool "server now current" true (env.B.k.K.current == server);
  check_bool "client awaits reply" true (client.state = Blocked_on_reply);
  check_bool "server has caller" true (caller_is server client);
  check_int "message word 0" 42 server.regs.(0);
  check_int "message word 1" 7 server.regs.(1);
  check_invariants "mid-rendezvous" env;
  (* Server replies and waits again: the client becomes runnable. *)
  expect_completed "reply-recv"
    (as_thread env server (K.Ev_reply_recv { ep = ep_cptr; msg_len = 1 }));
  check_bool "client runnable" true (is_runnable client);
  check_bool "server waits again" true (blocked_receiving server ep);
  check_invariants "after reply" env

let test_ipc_fastpath_cycles () =
  (* The fastpath must stay within the paper's 200-250 cycle envelope once
     caches are warm (Section 6.1). *)
  let cpu = Hw.Cpu.create Hw.Config.default in
  let { env; ep_cptr; server; client; _ } = ipc_setup ~cpu improved in
  ignore ep_cptr;
  (* The server waits once; each round is a client call answered by a
     reply-and-wait, so the server is always waiting when the call lands
     (the fastpath precondition). *)
  expect_completed "recv" (as_thread env server (K.Ev_recv { ep = 10 }));
  let round () =
    expect_completed "call"
      (as_thread env client
         (K.Ev_call { ep = 10; badge_hint = 0; msg_len = 2; extra_caps = [] }));
    expect_completed "reply"
      (as_thread env server (K.Ev_reply_recv { ep = 10; msg_len = 1 }))
  in
  (* Warm up, then measure one call. *)
  for _ = 1 to 5 do
    round ()
  done;
  let before = K.cycles env.B.k in
  expect_completed "call"
    (as_thread env client
       (K.Ev_call { ep = 10; badge_hint = 0; msg_len = 2; extra_caps = [] }));
  let fastpath_cycles = K.cycles env.B.k - before in
  check_bool
    (Fmt.str "fastpath %d cycles within [150, 600]" fastpath_cycles)
    true
    (fastpath_cycles >= 150 && fastpath_cycles <= 600)

let test_ipc_send_queue_fifo () =
  let { env; ep; ep_cptr; server; _ } = ipc_setup improved in
  let extra = B.spawn_thread env ~priority:120 ~dest:13 in
  B.make_runnable env extra;
  let client2 = extra in
  (* Two clients send while nobody listens: both block in FIFO order. *)
  expect_completed "send1"
    (as_thread env env.B.root_tcb
       (K.Ev_send { ep = ep_cptr; msg_len = 1; extra_caps = []; blocking = true }));
  expect_completed "send2"
    (as_thread env client2
       (K.Ev_send { ep = ep_cptr; msg_len = 1; extra_caps = []; blocking = true }));
  check_int "two waiters" 2 (Sel4.Ep_queue.length ep);
  check_invariants "two waiters" env;
  (* Receiver drains them in order. *)
  env.B.root_tcb.regs.(0) <- 111;
  client2.regs.(0) <- 222;
  expect_completed "recv1" (as_thread env server (K.Ev_recv { ep = ep_cptr }));
  check_int "first message first" 111 server.regs.(0);
  expect_completed "recv2" (as_thread env server (K.Ev_recv { ep = ep_cptr }));
  check_int "second message second" 222 server.regs.(0);
  check_invariants "drained" env

let test_badge_delivery () =
  let { env; ep_cptr; server; client; _ } = ipc_setup improved in
  (* Mint a badged copy of the endpoint cap into slot 20. *)
  expect_completed "mint"
    (as_thread env env.B.root_tcb
       (K.Ev_invoke
          (K.Inv_copy
             {
               src = ep_cptr;
               dest_slot = env.B.root_cnode.cn_slots.(20);
               badge = Some 77;
             })));
  expect_completed "recv" (as_thread env server (K.Ev_recv { ep = ep_cptr }));
  expect_completed "badged call"
    (as_thread env client
       (K.Ev_call { ep = 20; badge_hint = 0; msg_len = 1; extra_caps = [] }));
  check_int "badge delivered" 77 server.ep_badge;
  check_invariants "after badged call" env

(* --- scheduler --- *)

(* The three scheduler variants must make identical scheduling decisions;
   they differ only in bookkeeping cost (Sections 3.1-3.2). *)
let scheduler_trace build =
  let env = B.boot build in
  let ep = B.spawn_endpoint env ~dest:10 in
  ignore ep;
  let a = B.spawn_thread env ~priority:130 ~dest:11 in
  let b = B.spawn_thread env ~priority:130 ~dest:12 in
  let c = B.spawn_thread env ~priority:90 ~dest:13 in
  List.iter (B.make_runnable env) [ a; b; c ];
  let trace = ref [] in
  let note () = trace := env.B.k.K.current.tcb_id :: !trace in
  let tick () =
    K.raise_irq env.B.k K.timer_irq;
    ignore (K.kernel_entry env.B.k K.Ev_interrupt);
    note ()
  in
  (* Round-robin among equal priorities, preferring higher. *)
  tick ();
  tick ();
  tick ();
  (* Current thread blocks on receive; next is chosen. *)
  ignore (K.kernel_entry env.B.k (K.Ev_recv { ep = 10 }));
  note ();
  (* A lower-priority thread sends to wake it: direct switch. *)
  (match env.B.k.K.current.tcb_id with
  | _ ->
      ignore
        (as_thread env c
           (K.Ev_send { ep = 10; msg_len = 1; extra_caps = []; blocking = true })));
  note ();
  tick ();
  tick ();
  check_invariants "scheduler trace" env;
  List.rev !trace

let test_scheduler_variants_agree () =
  let benno = scheduler_trace { improved with Sel4.Build.sched = Sel4.Build.Benno } in
  let bitmap = scheduler_trace improved in
  let lazy_ = scheduler_trace { improved with Sel4.Build.sched = Sel4.Build.Lazy } in
  Alcotest.(check (list int)) "bitmap = benno" benno bitmap;
  Alcotest.(check (list int)) "lazy = benno" benno lazy_

(* Lazy scheduling's pathological cleanup (Section 3.1).  A runnable
   worker W sits at the head of its priority's queue; behind it, [blocked]
   threads execute blocking sends.  Under lazy scheduling each blocked
   thread stays parked in the queue (chooseThread stops at the runnable
   head W, so intermediate schedules never reach the pile).  When W is
   finally suspended, one chooseThread invocation must dequeue the whole
   pile.  Under Benno scheduling the pile never forms. *)
let scheduler_cleanup_cycles build ~blocked =
  let cpu = Hw.Cpu.create Hw.Config.default in
  let env = B.boot ~cpu build in
  let _ep = B.spawn_endpoint env ~dest:10 in
  let w = B.spawn_thread env ~priority:140 ~dest:11 in
  B.make_runnable env w;
  let threads =
    List.init blocked (fun i -> B.spawn_thread env ~priority:140 ~dest:(20 + i))
  in
  List.iter (B.make_runnable env) threads;
  (* Each blocking send is followed by a reschedule that finds the
     runnable W at the head and stops, leaving the blocked thread parked
     behind it (lazy) or dequeued at block time (Benno). *)
  List.iter
    (fun t ->
      expect_completed "send"
        (as_thread env t
           (K.Ev_send { ep = 10; msg_len = 1; extra_caps = []; blocking = true })))
    threads;
  check_invariants "blocked threads parked" env;
  (* Suspend W, then force a scheduling decision with a timer tick. *)
  expect_completed "suspend worker"
    (as_thread env env.B.root_tcb
       (K.Ev_invoke (K.Inv_tcb_suspend { target = 11 })));
  let before = K.cycles env.B.k in
  K.raise_irq env.B.k K.timer_irq;
  ignore (K.kernel_entry env.B.k K.Ev_interrupt);
  check_invariants "after cleanup" env;
  K.cycles env.B.k - before

let test_lazy_cleanup_is_linear () =
  let lazy_build = { improved with Sel4.Build.sched = Sel4.Build.Lazy } in
  let lazy_small = scheduler_cleanup_cycles lazy_build ~blocked:8 in
  let lazy_big = scheduler_cleanup_cycles lazy_build ~blocked:64 in
  let benno_big = scheduler_cleanup_cycles improved ~blocked:64 in
  check_bool
    (Fmt.str "lazy grows with queue length (%d -> %d)" lazy_small lazy_big)
    true
    (lazy_big > lazy_small + (56 * 10));
  check_bool
    (Fmt.str "benno tick (%d) below lazy tick (%d)" benno_big lazy_big)
    true (benno_big < lazy_big)

let test_priority_change_requeues () =
  let env = B.boot improved in
  let t = B.spawn_thread env ~priority:50 ~dest:10 in
  B.make_runnable env t;
  expect_completed "set priority"
    (as_thread env env.B.root_tcb
       (K.Ev_invoke (K.Inv_tcb_priority { target = 10; prio = 200 })));
  check_int "moved to new queue" 200 t.priority;
  check_invariants "after priority change" env;
  (* A yield must now pick the boosted thread. *)
  expect_completed "yield" (as_thread env env.B.root_tcb K.Ev_yield);
  check_bool "boosted thread runs" true (env.B.k.K.current == t)

(* --- preemption and interrupt latency --- *)

(* Fill an endpoint with [n] blocked senders, then delete it while an
   interrupt arrives mid-deletion. *)
let endpoint_delete_latency build ~waiters ~irq_delay =
  let cpu = Hw.Cpu.create Hw.Config.default in
  let env = B.boot ~cpu build in
  let _ep = B.spawn_endpoint env ~dest:10 in
  let threads =
    List.init waiters (fun i -> B.spawn_thread env ~priority:50 ~dest:(20 + i))
  in
  List.iter
    (fun t ->
      B.make_runnable env t;
      expect_completed "send"
        (as_thread env t
           (K.Ev_send { ep = 10; msg_len = 1; extra_caps = []; blocking = true })))
    threads;
  (* Root deletes the endpoint cap (the final one). *)
  become env env.B.root_tcb;
  K.schedule_irq env.B.k 5 ~delay:irq_delay;
  let outcome =
    K.run_to_completion env.B.k (K.Ev_invoke (K.Inv_delete { target = 10 }))
  in
  expect_completed "delete finishes" outcome;
  check_invariants "after delete" env;
  (K.worst_irq_latency env.B.k, K.preempted_events env.B.k)

let test_preemptible_delete_bounds_latency () =
  let latency_improved, preemptions =
    endpoint_delete_latency improved ~waiters:64 ~irq_delay:2_000
  in
  let latency_original, _ =
    endpoint_delete_latency original ~waiters:64 ~irq_delay:2_000
  in
  check_bool "the improved kernel preempted" true (preemptions > 0);
  check_bool
    (Fmt.str "improved latency (%d) is bounded" latency_improved)
    true
    (latency_improved < 5_000);
  check_bool
    (Fmt.str "original latency (%d) dwarfs improved (%d)" latency_original
       latency_improved)
    true
    (latency_original > 3 * latency_improved)

let test_original_latency_grows_with_waiters () =
  let small, _ = endpoint_delete_latency original ~waiters:16 ~irq_delay:1_000 in
  let big, _ = endpoint_delete_latency original ~waiters:128 ~irq_delay:1_000 in
  check_bool
    (Fmt.str "unpreemptible latency grows (%d -> %d)" small big)
    true
    (big > small + (112 * 20))

let test_preempted_retype_restarts () =
  let cpu = Hw.Cpu.create Hw.Config.default in
  let env = B.boot ~cpu improved in
  (* 256 KiB frame: 256 chunks of clearing. *)
  K.schedule_irq env.B.k 5 ~delay:5_000;
  let outcome =
    K.run_to_completion env.B.k
      (K.Ev_invoke
         (K.Inv_retype
            {
              ut = B.ut_cptr;
              obj_type = Frame_object 18;
              count = 1;
              dest_slots = [ env.B.root_cnode.cn_slots.(10) ];
            }))
  in
  expect_completed "retype eventually completes" outcome;
  check_bool "was preempted" true (K.preempted_events env.B.k > 0);
  check_bool "syscall restarted" true (env.B.k.K.syscall_restarts > 0);
  (match env.B.root_cnode.cn_slots.(10).cap with
  | Frame_cap { frame; _ } ->
      check_int "frame fully cleared" (1 lsl 18) frame.f_cleared
  | c -> Alcotest.failf "expected frame, got %a" pp_cap c);
  check_invariants "after preempted retype" env

let test_retype_latency_original_vs_improved () =
  let retype_latency build =
    let cpu = Hw.Cpu.create Hw.Config.default in
    let env = B.boot ~cpu build in
    K.schedule_irq env.B.k 5 ~delay:5_000;
    let outcome =
      K.run_to_completion env.B.k
        (K.Ev_invoke
           (K.Inv_retype
              {
                ut = B.ut_cptr;
                obj_type = Frame_object 18;
                count = 1;
                dest_slots = [ env.B.root_cnode.cn_slots.(10) ];
              }))
    in
    expect_completed "retype" outcome;
    K.worst_irq_latency env.B.k
  in
  let improved_latency = retype_latency improved in
  let original_latency = retype_latency original in
  check_bool
    (Fmt.str "clearing preemption bounds latency (%d vs %d)" improved_latency
       original_latency)
    true
    (original_latency > 10 * improved_latency)

(* Several device timers armed during one long operation: deliveries come
   out earliest-first (ties broken by arming order), each with a latency
   measured from its own line's assert cycle, and the whole schedule is
   deterministic. *)
let multi_irq_deliveries build =
  let cpu = Hw.Cpu.create Hw.Config.default in
  let env = B.boot ~cpu build in
  let deliveries = ref [] in
  K.set_irq_delivery_hook env.B.k
    (Some (fun line latency -> deliveries := (line, latency) :: !deliveries));
  (* Lines 3 and 5 fire at the same cycle; 7 later.  A 256 KiB retype
     keeps the kernel busy well past all three fire times. *)
  K.schedule_irq env.B.k 7 ~delay:9_000;
  K.schedule_irq env.B.k 3 ~delay:5_000;
  K.schedule_irq env.B.k 5 ~delay:5_000;
  expect_completed "retype"
    (K.run_to_completion env.B.k
       (K.Ev_invoke
          (K.Inv_retype
             {
               ut = B.ut_cptr;
               obj_type = Frame_object 18;
               count = 1;
               dest_slots = [ env.B.root_cnode.cn_slots.(10) ];
             })));
  (* Drain anything still armed or pending: one delivery per entry. *)
  let rec drain guard =
    if guard = 0 then Alcotest.fail "irq drain did not terminate";
    if K.has_pending_irq env.B.k then begin
      expect_completed "drain" (K.kernel_entry env.B.k K.Ev_interrupt);
      drain (guard - 1)
    end
    else
      match K.next_armed_irq env.B.k with
      | None -> ()
      | Some (fire, _) ->
          let now = K.cycles env.B.k in
          if fire > now then Hw.Cpu.tick cpu (fire - now);
          expect_completed "drain" (K.kernel_entry env.B.k K.Ev_interrupt);
          drain (guard - 1)
  in
  drain 16;
  K.set_irq_delivery_hook env.B.k None;
  check_invariants "after multi-irq run" env;
  (List.rev !deliveries, K.worst_irq_latency env.B.k)

let test_multi_irq_delivery_deterministic () =
  List.iter
    (fun build ->
      let first, _ = multi_irq_deliveries build in
      let second, _ = multi_irq_deliveries build in
      check_int "three deliveries" 3 (List.length first);
      Alcotest.(check (list int))
        "earliest-first, ties by arming order" [ 3; 5; 7 ] (List.map fst first);
      Alcotest.(check (list (pair int int)))
        "schedule replays identically" first second)
    [ improved; original ]

let test_multi_irq_worst_latency_accounting () =
  let deliveries, worst = multi_irq_deliveries improved in
  List.iter
    (fun (line, latency) ->
      check_bool (Fmt.str "line %d latency positive" line) true (latency > 0);
      check_bool
        (Fmt.str "worst (%d) covers line %d (%d)" worst line latency)
        true (worst >= latency))
    deliveries;
  check_int "worst is the max per-line latency" worst
    (List.fold_left (fun a (_, l) -> max a l) 0 deliveries);
  (* The improved kernel preempts the retype, so the first delivery is
     bounded by a preemption interval, not the whole operation. *)
  let _, original_worst = multi_irq_deliveries original in
  check_bool
    (Fmt.str "unpreemptible worst (%d) dwarfs improved (%d)" original_worst
       worst)
    true
    (original_worst > 3 * worst)

(* Forward progress: even if an interrupt is re-armed after every
   preemption, the incremental-consistency design guarantees each restart
   retires at least one unit of work, so the operation completes within a
   bounded number of restarts (Section 3.3: "forward progress is
   ensured"). *)
let test_forward_progress_under_interrupt_storm () =
  let cpu = Hw.Cpu.create Hw.Config.default in
  let env = B.boot ~cpu improved in
  let _ep = B.spawn_endpoint env ~dest:10 in
  let waiters = 40 in
  let threads =
    List.init waiters (fun i -> B.spawn_thread env ~priority:50 ~dest:(20 + i))
  in
  List.iter
    (fun t ->
      B.make_runnable env t;
      expect_completed "send"
        (as_thread env t
           (K.Ev_send { ep = 10; msg_len = 1; extra_caps = []; blocking = true })))
    threads;
  become env env.B.root_tcb;
  let ep =
    match env.B.root_cnode.cn_slots.(10).cap with
    | Endpoint_cap { ep; _ } -> ep
    | _ -> Alcotest.fail "no endpoint"
  in
  (* Storm: one interrupt pending during every attempt. *)
  let restarts = ref 0 in
  let rec drive () =
    K.schedule_irq env.B.k 5 ~delay:150;
    become env env.B.root_tcb;
    match K.kernel_entry env.B.k (K.Ev_invoke (K.Inv_delete { target = 10 })) with
    | K.Completed -> ()
    | K.Preempted ->
        incr restarts;
        if !restarts > waiters + 5 then
          Alcotest.failf "no forward progress after %d restarts" !restarts;
        drive ()
    | K.Failed e -> Alcotest.failf "delete failed: %s" e
  in
  let len_before = Sel4.Ep_queue.length ep in
  drive ();
  check_int "queue had all waiters" waiters len_before;
  check_bool "many preemptions happened" true (!restarts > waiters / 2);
  check_bool "endpoint destroyed" true
    (cap_is_null env.B.root_cnode.cn_slots.(10).cap);
  List.iter
    (fun t -> check_bool "waiter released" true (is_runnable t))
    threads;
  check_invariants "after interrupt storm" env

(* --- badged aborts (Section 3.4) --- *)

let badged_setup ?cpu build ~badges =
  let env = B.boot ?cpu build in
  let ep = B.spawn_endpoint env ~dest:10 in
  let threads =
    List.mapi
      (fun i badge ->
        (* Mint a badged cap for each sender. *)
        expect_completed "mint"
          (as_thread env env.B.root_tcb
             (K.Ev_invoke
                (K.Inv_copy
                   {
                     src = 10;
                     dest_slot = env.B.root_cnode.cn_slots.(100 + i);
                     badge = Some badge;
                   })));
        let t = B.spawn_thread env ~priority:50 ~dest:(20 + i) in
        B.make_runnable env t;
        expect_completed "send"
          (as_thread env t
             (K.Ev_send
                { ep = 100 + i; msg_len = 1; extra_caps = []; blocking = true }));
        (t, badge))
      badges
  in
  (env, ep, threads)

let test_badged_abort_selective () =
  let env, ep, threads =
    badged_setup improved ~badges:[ 1; 2; 1; 3; 1; 2 ]
  in
  become env env.B.root_tcb;
  expect_completed "cancel"
    (K.run_to_completion env.B.k
       (K.Ev_invoke (K.Inv_cancel_badged_sends { ep = 10; badge = 1 })));
  (* Badge-1 senders woke; the others still wait, in order. *)
  List.iter
    (fun (t, badge) ->
      if badge = 1 then
        check_bool "badge-1 sender woken" true (is_runnable t)
      else
        check_bool "other badge still blocked" true
          (blocked_sending t ep))
    threads;
  let remaining = List.map (fun t -> t.ep_badge) (Sel4.Ep_queue.to_list ep) in
  Alcotest.(check (list int)) "queue order preserved" [ 2; 3; 2 ] remaining;
  check_invariants "after badged abort" env

let test_badged_abort_preemptible () =
  let cpu = Hw.Cpu.create Hw.Config.default in
  let env, ep, _threads =
    badged_setup ~cpu improved ~badges:(List.init 48 (fun i -> 1 + (i mod 3)))
  in
  become env env.B.root_tcb;
  K.schedule_irq env.B.k 5 ~delay:500;
  expect_completed "cancel"
    (K.run_to_completion env.B.k
       (K.Ev_invoke (K.Inv_cancel_badged_sends { ep = 10; badge = 2 })));
  check_bool "abort was preempted" true (K.preempted_events env.B.k > 0);
  check_bool "abort state cleaned up" true (ep.ep_abort = None);
  check_bool "no badge-2 waiters remain" true
    (List.for_all (fun t -> t.ep_badge <> 2) (Sel4.Ep_queue.to_list ep));
  check_invariants "after preemptible abort" env

(* --- CDT and revocation --- *)

let test_revoke_deletes_descendants () =
  let env = B.boot improved in
  let _ep = B.spawn_endpoint env ~dest:10 in
  (* Derive three badged children and one grandchild. *)
  List.iter
    (fun (src, dest, badge) ->
      expect_completed "mint"
        (as_thread env env.B.root_tcb
           (K.Ev_invoke
              (K.Inv_copy
                 { src; dest_slot = env.B.root_cnode.cn_slots.(dest); badge }))))
    [
      (10, 30, Some 1);
      (10, 31, Some 2);
      (31, 32, None);  (* plain copy of the badge-2 cap *)
    ];
  check_invariants "derived caps" env;
  expect_completed "revoke"
    (K.run_to_completion env.B.k (K.Ev_invoke (K.Inv_revoke { target = 10 })));
  check_bool "child 30 gone" true (cap_is_null env.B.root_cnode.cn_slots.(30).cap);
  check_bool "child 31 gone" true (cap_is_null env.B.root_cnode.cn_slots.(31).cap);
  check_bool "grandchild 32 gone" true
    (cap_is_null env.B.root_cnode.cn_slots.(32).cap);
  check_bool "original survives revoke" true
    (not (cap_is_null env.B.root_cnode.cn_slots.(10).cap));
  check_invariants "after revoke" env

let test_delete_final_cap_destroys () =
  let env = B.boot improved in
  let ep = B.spawn_endpoint env ~dest:10 in
  let t = B.spawn_thread env ~priority:50 ~dest:11 in
  B.make_runnable env t;
  expect_completed "send"
    (as_thread env t
       (K.Ev_send { ep = 10; msg_len = 1; extra_caps = []; blocking = true }));
  env.B.k.K.current <- env.B.root_tcb;
  expect_completed "delete"
    (K.run_to_completion env.B.k (K.Ev_invoke (K.Inv_delete { target = 10 })));
  check_bool "slot empty" true (cap_is_null env.B.root_cnode.cn_slots.(10).cap);
  check_bool "endpoint removed from registry" true
    (not
       (List.exists
          (function Any_endpoint e -> e == ep | _ -> false)
          env.B.k.K.objects));
  check_bool "waiter woken by destruction" true (is_runnable t);
  check_invariants "after destroy" env

let test_move_preserves_derivation () =
  let env = B.boot improved in
  let _ep = B.spawn_endpoint env ~dest:10 in
  (* Derive a badged child, then move the parent: the child must follow. *)
  expect_completed "mint"
    (as_thread env env.B.root_tcb
       (K.Ev_invoke
          (K.Inv_copy
             { src = 10; dest_slot = env.B.root_cnode.cn_slots.(11); badge = Some 5 })));
  expect_completed "move"
    (as_thread env env.B.root_tcb
       (K.Ev_invoke
          (K.Inv_move { src = 10; dest_slot = env.B.root_cnode.cn_slots.(12) })));
  check_bool "source emptied" true (cap_is_null env.B.root_cnode.cn_slots.(10).cap);
  check_bool "destination holds the cap" true
    (match env.B.root_cnode.cn_slots.(12).cap with
    | Endpoint_cap _ -> true
    | _ -> false);
  check_bool "child re-parented to the new slot" true
    (match env.B.root_cnode.cn_slots.(11).cdt_parent with
    | Some p -> p == env.B.root_cnode.cn_slots.(12)
    | None -> false);
  check_invariants "after move" env;
  (* Revoking through the moved slot still reaches the child. *)
  expect_completed "revoke"
    (K.run_to_completion env.B.k (K.Ev_invoke (K.Inv_revoke { target = 12 })));
  check_bool "child revoked through moved parent" true
    (cap_is_null env.B.root_cnode.cn_slots.(11).cap);
  check_invariants "after revoke through move" env

let test_delete_copy_keeps_object () =
  let env = B.boot improved in
  let _ep = B.spawn_endpoint env ~dest:10 in
  expect_completed "copy"
    (as_thread env env.B.root_tcb
       (K.Ev_invoke
          (K.Inv_copy
             { src = 10; dest_slot = env.B.root_cnode.cn_slots.(11); badge = None })));
  expect_completed "delete the copy"
    (K.run_to_completion env.B.k (K.Ev_invoke (K.Inv_delete { target = 11 })));
  check_bool "object survives (original cap remains)" true
    (List.exists
       (function Any_endpoint _ -> true | _ -> false)
       env.B.k.K.objects);
  check_invariants "after deleting copy" env

(* --- virtual memory, both designs --- *)

let vm_setup build =
  let env = B.boot build in
  let _ = B.retype_syscall env Page_directory_object ~count:1 ~dest:40 in
  let _ = B.retype_syscall env Page_table_object ~count:1 ~dest:41 in
  let _ = B.retype_syscall env (Frame_object 12) ~count:2 ~dest:42 in
  (match build.Sel4.Build.vspace with
  | Sel4.Build.Asid_table ->
      expect_completed "make pool"
        (K.run_to_completion env.B.k
           (K.Ev_invoke
              (K.Inv_make_asid_pool
                 {
                   ut = B.ut_cptr;
                   dest_slot = env.B.root_cnode.cn_slots.(45);
                   top_index = 0;
                 })));
      expect_completed "assign asid"
        (K.run_to_completion env.B.k
           (K.Ev_invoke (K.Inv_assign_asid { pool = 45; pd = 40 })))
  | Sel4.Build.Shadow_tables -> ());
  env

let map_all env =
  expect_completed "map pt"
    (K.run_to_completion env.B.k
       (K.Ev_invoke (K.Inv_map_page_table { pt = 41; pd = 40; vaddr = 0x100000 })));
  expect_completed "map frame 1"
    (K.run_to_completion env.B.k
       (K.Ev_invoke (K.Inv_map_frame { frame = 42; pd = 40; vaddr = 0x100000 })));
  expect_completed "map frame 2"
    (K.run_to_completion env.B.k
       (K.Ev_invoke (K.Inv_map_frame { frame = 43; pd = 40; vaddr = 0x103000 })))

let test_vm_map_unmap_shadow () =
  let env = vm_setup improved in
  map_all env;
  check_invariants "mapped (shadow)" env;
  expect_completed "unmap"
    (K.run_to_completion env.B.k (K.Ev_invoke (K.Inv_unmap_frame { frame = 42 })));
  check_invariants "after unmap (shadow)" env;
  (match env.B.root_cnode.cn_slots.(42).cap with
  | Frame_cap fc -> check_bool "mapping cleared" true (fc.fc_mapping = None)
  | _ -> Alcotest.fail "expected frame cap")

let test_vm_map_unmap_asid () =
  let env = vm_setup original in
  map_all env;
  check_invariants "mapped (asid)" env;
  expect_completed "unmap"
    (K.run_to_completion env.B.k (K.Ev_invoke (K.Inv_unmap_frame { frame = 42 })));
  check_invariants "after unmap (asid)" env

let test_vm_double_map_rejected () =
  let env = vm_setup improved in
  map_all env;
  match
    K.run_to_completion env.B.k
      (K.Ev_invoke (K.Inv_map_frame { frame = 42; pd = 40; vaddr = 0x105000 }))
  with
  | K.Failed _ -> check_invariants "after rejected map" env
  | _ -> Alcotest.fail "double map must fail"

let test_vm_stale_asid_harmless () =
  (* The original design's selling point: deleting the address space
     leaves dangling ASID references in frame caps that are harmless. *)
  let env = vm_setup original in
  map_all env;
  (* Delete the page directory (its final cap). *)
  expect_completed "delete pd"
    (K.run_to_completion env.B.k (K.Ev_invoke (K.Inv_delete { target = 40 })));
  check_invariants "pd deleted" env;
  (* Unmapping the frame now follows a stale ASID: must be a no-op. *)
  expect_completed "unmap stale"
    (K.run_to_completion env.B.k (K.Ev_invoke (K.Inv_unmap_frame { frame = 42 })));
  check_invariants "after stale unmap" env

let test_vm_shadow_delete_preempts () =
  let cpu = Hw.Cpu.create Hw.Config.default in
  let env = B.boot ~cpu improved in
  let _ = B.retype_syscall env Page_directory_object ~count:1 ~dest:40 in
  let _ = B.retype_syscall env Page_table_object ~count:1 ~dest:41 in
  let frames = 32 in
  let _ = B.retype_syscall env (Frame_object 12) ~count:frames ~dest:42 in
  expect_completed "map pt"
    (K.run_to_completion env.B.k
       (K.Ev_invoke (K.Inv_map_page_table { pt = 41; pd = 40; vaddr = 0x100000 })));
  for i = 0 to frames - 1 do
    expect_completed "map frame"
      (K.run_to_completion env.B.k
         (K.Ev_invoke
            (K.Inv_map_frame
               { frame = 42 + i; pd = 40; vaddr = 0x100000 + (i * 0x1000) })))
  done;
  check_invariants "many mappings" env;
  K.schedule_irq env.B.k 5 ~delay:300;
  (* Deleting the page table walks its entries with preemption points. *)
  expect_completed "delete pt"
    (K.run_to_completion env.B.k (K.Ev_invoke (K.Inv_delete { target = 41 })));
  check_bool "delete preempted" true (K.preempted_events env.B.k > 0);
  check_invariants "after preemptible pt delete" env;
  (* All frame caps lost their mappings via the shadow back-pointers. *)
  for i = 0 to frames - 1 do
    match env.B.root_cnode.cn_slots.(42 + i).cap with
    | Frame_cap fc -> check_bool "mapping purged" true (fc.fc_mapping = None)
    | _ -> Alcotest.fail "expected frame cap"
  done

let test_asid_pool_exhaustion () =
  let env = vm_setup original in
  (* The pool already holds one pd; filling it to capacity would be slow,
     so emulate fullness by assigning all entries directly. *)
  (match env.B.root_cnode.cn_slots.(45).cap with
  | Asid_pool_cap pool ->
      let dummy = Sel4.Objects.make_page_directory ~id:9999 ~addr:0 in
      Array.iteri
        (fun i e -> if e = None then pool.ap_entries.(i) <- Some dummy)
        pool.ap_entries
  | _ -> Alcotest.fail "expected pool cap");
  let _ = B.retype_syscall env Page_directory_object ~count:1 ~dest:50 in
  match
    K.run_to_completion env.B.k
      (K.Ev_invoke (K.Inv_assign_asid { pool = 45; pd = 50 }))
  with
  | K.Failed _ -> ()
  | _ -> Alcotest.fail "full pool must fail"

(* --- cap transfer over IPC --- *)

let test_cap_transfer () =
  let { env; ep_cptr; server; client; _ } = ipc_setup improved in
  server.recv_slot <- Some (env.B.root_cnode.cn_slots.(60));
  let _ = B.retype_syscall env Endpoint_object ~count:1 ~dest:61 in
  expect_completed "recv" (as_thread env server (K.Ev_recv { ep = ep_cptr }));
  expect_completed "call with cap"
    (as_thread env client
       (K.Ev_call { ep = ep_cptr; badge_hint = 0; msg_len = 8; extra_caps = [ 61 ] }));
  check_bool "cap arrived in recv slot" true
    (not (cap_is_null env.B.root_cnode.cn_slots.(60).cap));
  (* The transferred cap is a CDT child of the source. *)
  check_bool "derivation recorded" true
    (match env.B.root_cnode.cn_slots.(60).cdt_parent with
    | Some p -> p == env.B.root_cnode.cn_slots.(61)
    | None -> false);
  check_invariants "after cap transfer" env

(* --- interrupt delivery to handler threads --- *)

let test_irq_delivery () =
  let env = B.boot improved in
  let _ep = B.spawn_endpoint env ~dest:10 in
  let handler = B.spawn_thread env ~priority:200 ~dest:11 in
  B.make_runnable env handler;
  expect_completed "set handler"
    (as_thread env env.B.root_tcb
       (K.Ev_invoke (K.Inv_irq_handler { line = 7; ep = 10 })));
  expect_completed "handler waits" (as_thread env handler (K.Ev_recv { ep = 10 }));
  K.raise_irq env.B.k 7;
  expect_completed "irq" (K.kernel_entry env.B.k K.Ev_interrupt);
  check_bool "handler woken and running" true (env.B.k.K.current == handler);
  check_int "irq number delivered" 7 handler.regs.(0);
  check_invariants "after irq delivery" env

(* --- fault delivery --- *)

let test_fault_delivery () =
  let env = B.boot improved in
  let _ep = B.spawn_endpoint env ~dest:10 in
  let pager = B.spawn_thread env ~priority:200 ~dest:11 in
  B.make_runnable env pager;
  env.B.root_tcb.fault_handler_cptr <- Some 10;
  expect_completed "pager waits" (as_thread env pager (K.Ev_recv { ep = 10 }));
  expect_completed "fault"
    (as_thread env env.B.root_tcb (K.Ev_page_fault { vaddr = 0xdead000 }));
  check_bool "pager runs" true (env.B.k.K.current == pager);
  check_bool "faulter awaits reply" true
    (env.B.root_tcb.state = Blocked_on_reply);
  check_invariants "after fault" env

(* --- notifications (asynchronous signalling) --- *)

let ntfn_setup () =
  let env = B.boot improved in
  let ntfn = B.spawn_notification env ~dest:10 in
  let waiter = B.spawn_thread env ~priority:150 ~dest:11 in
  B.make_runnable env waiter;
  (env, ntfn, waiter)

let test_ntfn_signal_then_wait () =
  let env, ntfn, waiter = ntfn_setup () in
  (* Signal first: the badge accumulates in the word. *)
  expect_completed "signal"
    (as_thread env env.B.root_tcb (K.Ev_signal { ntfn = 10 }));
  check_int "word set" 1 ntfn.ntfn_word;
  (* Waiting now returns immediately with the word. *)
  expect_completed "wait" (as_thread env waiter (K.Ev_wait { ntfn = 10 }));
  check_bool "waiter still runnable" true (is_runnable waiter);
  check_int "word delivered" 1 waiter.regs.(0);
  check_int "word cleared" 0 ntfn.ntfn_word;
  check_invariants "signal then wait" env

let test_ntfn_wait_then_signal () =
  let env, ntfn, waiter = ntfn_setup () in
  expect_completed "wait" (as_thread env waiter (K.Ev_wait { ntfn = 10 }));
  check_bool "waiter blocked" true
    (match waiter.state with
    | Blocked_on_notification n -> n == ntfn
    | _ -> false);
  check_invariants "waiter blocked" env;
  expect_completed "signal"
    (as_thread env env.B.root_tcb (K.Ev_signal { ntfn = 10 }));
  check_bool "waiter woken" true (is_runnable waiter);
  check_int "badge delivered" 1 waiter.regs.(0);
  check_invariants "after signal" env

let test_ntfn_badges_accumulate () =
  let env, ntfn, _waiter = ntfn_setup () in
  (* Mint badged copies 0b01 and 0b10; both signals OR into the word. *)
  List.iter
    (fun (dest, badge) ->
      expect_completed "mint"
        (as_thread env env.B.root_tcb
           (K.Ev_invoke
              (K.Inv_copy
                 {
                   src = 10;
                   dest_slot = env.B.root_cnode.cn_slots.(dest);
                   badge = Some badge;
                 }))))
    [ (20, 1); (21, 2) ];
  expect_completed "signal 1"
    (as_thread env env.B.root_tcb (K.Ev_signal { ntfn = 20 }));
  expect_completed "signal 2"
    (as_thread env env.B.root_tcb (K.Ev_signal { ntfn = 21 }));
  check_int "badges OR-ed" 3 ntfn.ntfn_word;
  check_invariants "badges accumulate" env

let test_ntfn_poll () =
  let env, ntfn, waiter = ntfn_setup () in
  ignore ntfn;
  (* Poll with nothing pending: non-blocking. *)
  expect_completed "empty poll" (as_thread env waiter (K.Ev_poll { ntfn = 10 }));
  check_bool "poll does not block" true (is_runnable waiter);
  check_int "empty word" 0 waiter.regs.(0);
  expect_completed "signal"
    (as_thread env env.B.root_tcb (K.Ev_signal { ntfn = 10 }));
  expect_completed "poll" (as_thread env waiter (K.Ev_poll { ntfn = 10 }));
  check_int "word polled" 1 waiter.regs.(0);
  check_invariants "after poll" env

let test_irq_via_notification () =
  (* The real seL4 delivery path: the interrupt signals a notification. *)
  let env, ntfn, handler = ntfn_setup () in
  ignore ntfn;
  expect_completed "bind"
    (as_thread env env.B.root_tcb
       (K.Ev_invoke (K.Inv_bind_irq_notification { line = 6; ntfn = 10 })));
  expect_completed "handler waits" (as_thread env handler (K.Ev_wait { ntfn = 10 }));
  K.raise_irq env.B.k 6;
  expect_completed "irq" (K.kernel_entry env.B.k K.Ev_interrupt);
  check_bool "handler woken" true (is_runnable handler);
  check_int "line badge delivered" (1 lsl 6) handler.regs.(0);
  check_invariants "irq via notification" env

let test_ntfn_delete_wakes_waiters () =
  let env, ntfn, waiter = ntfn_setup () in
  ignore ntfn;
  expect_completed "wait" (as_thread env waiter (K.Ev_wait { ntfn = 10 }));
  become env env.B.root_tcb;
  expect_completed "delete"
    (K.run_to_completion env.B.k (K.Ev_invoke (K.Inv_delete { target = 10 })));
  check_bool "waiter woken by deletion" true (is_runnable waiter);
  check_bool "slot empty" true (cap_is_null env.B.root_cnode.cn_slots.(10).cap);
  check_invariants "after ntfn delete" env

(* --- random operation sequences preserve all invariants --- *)

type op =
  | Op_send of int * int  (* thread index, ep index *)
  | Op_call of int * int
  | Op_recv of int * int
  | Op_reply_recv of int * int
  | Op_yield
  | Op_tick
  | Op_irq of int
  | Op_cancel_badged of int * int  (* ep index, badge *)
  | Op_suspend of int
  | Op_resume of int
  | Op_set_prio of int * int
  | Op_delete_ep of int
  | Op_recreate_ep of int
  | Op_signal of int  (* thread index; ntfn is fixed at slot 13 *)
  | Op_ntfn_wait of int
  | Op_ntfn_poll of int

let gen_op =
  QCheck.Gen.(
    let thread = int_range 0 3 in
    let ep = int_range 0 2 in
    frequency
      [
        (4, map2 (fun t e -> Op_send (t, e)) thread ep);
        (4, map2 (fun t e -> Op_call (t, e)) thread ep);
        (4, map2 (fun t e -> Op_recv (t, e)) thread ep);
        (2, map2 (fun t e -> Op_reply_recv (t, e)) thread ep);
        (2, return Op_yield);
        (2, return Op_tick);
        (1, map (fun l -> Op_irq (1 + (l mod 8))) (int_range 1 8));
        (2, map2 (fun e b -> Op_cancel_badged (e, b)) ep (int_range 0 3));
        (1, map (fun t -> Op_suspend t) thread);
        (2, map (fun t -> Op_resume t) thread);
        (1, map2 (fun t p -> Op_set_prio (t, 10 + (p mod 200))) thread (int_range 0 199));
        (1, map (fun e -> Op_delete_ep e) ep);
        (1, map (fun e -> Op_recreate_ep e) ep);
        (2, map (fun t -> Op_signal t) thread);
        (2, map (fun t -> Op_ntfn_wait t) thread);
        (1, map (fun t -> Op_ntfn_poll t) thread);
      ])

let gen_ops = QCheck.Gen.(list_size (int_range 5 40) gen_op)

let print_ops ops =
  Fmt.str "%d ops: %s" (List.length ops)
    (String.concat ";"
       (List.map
          (function
            | Op_send (t, e) -> Fmt.str "send(%d,%d)" t e
            | Op_call (t, e) -> Fmt.str "call(%d,%d)" t e
            | Op_recv (t, e) -> Fmt.str "recv(%d,%d)" t e
            | Op_reply_recv (t, e) -> Fmt.str "replyrecv(%d,%d)" t e
            | Op_yield -> "yield"
            | Op_tick -> "tick"
            | Op_irq l -> Fmt.str "irq(%d)" l
            | Op_cancel_badged (e, b) -> Fmt.str "cancel(%d,%d)" e b
            | Op_suspend t -> Fmt.str "suspend(%d)" t
            | Op_resume t -> Fmt.str "resume(%d)" t
            | Op_set_prio (t, p) -> Fmt.str "prio(%d,%d)" t p
            | Op_delete_ep e -> Fmt.str "delep(%d)" e
            | Op_recreate_ep e -> Fmt.str "newep(%d)" e
            | Op_signal t -> Fmt.str "signal(%d)" t
            | Op_ntfn_wait t -> Fmt.str "ntfnwait(%d)" t
            | Op_ntfn_poll t -> Fmt.str "ntfnpoll(%d)" t)
          ops))

(* Execute an op sequence, checking the full invariant catalogue after
   every kernel entry.  Returns false (failing the property) on any
   violation. *)
let run_ops build ops =
  let env = B.boot build in
  let eps = [| 10; 11; 12 |] in
  Array.iter (fun d -> ignore (B.spawn_endpoint env ~dest:d)) eps;
  ignore (B.spawn_notification env ~dest:13);
  let threads =
    Array.init 4 (fun i -> B.spawn_thread env ~priority:(100 + (i * 10)) ~dest:(15 + i))
  in
  Array.iter (B.make_runnable env) threads;
  (* Badged caps for the cancel op: slots 30.. *)
  Array.iteri
    (fun i epc ->
      for b = 0 to 3 do
        ignore
          (as_thread env env.B.root_tcb
             (K.Ev_invoke
                (K.Inv_copy
                   {
                     src = epc;
                     dest_slot = env.B.root_cnode.cn_slots.(30 + (4 * i) + b);
                     badge = Some b;
                   })))
      done)
    eps;
  let ok = ref true in
  let entry tcb event =
    (* Only runnable threads can trap into the kernel. *)
    if is_runnable tcb || tcb == env.B.k.K.current then
      ignore (as_thread env tcb event);
    match Sel4.Invariants.check_result env.B.k with
    | Result.Ok () -> ()
    | Result.Error ms ->
        ok := false;
        QCheck.Test.fail_reportf "invariant violated: %s" (String.concat "; " ms)
  in
  List.iter
    (fun op ->
      match op with
      | Op_send (t, e) ->
          (* Half the sends use a badged cap. *)
          let cptr = if (t + e) mod 2 = 0 then eps.(e) else 30 + (4 * e) + t mod 4 in
          entry threads.(t)
            (K.Ev_send { ep = cptr; msg_len = 2; extra_caps = []; blocking = true })
      | Op_call (t, e) ->
          entry threads.(t)
            (K.Ev_call { ep = eps.(e); badge_hint = 0; msg_len = 2; extra_caps = [] })
      | Op_recv (t, e) -> entry threads.(t) (K.Ev_recv { ep = eps.(e) })
      | Op_reply_recv (t, e) ->
          entry threads.(t) (K.Ev_reply_recv { ep = eps.(e); msg_len = 1 })
      | Op_yield -> entry env.B.k.K.current K.Ev_yield
      | Op_tick ->
          K.raise_irq env.B.k K.timer_irq;
          entry env.B.k.K.current K.Ev_interrupt
      | Op_irq l ->
          K.raise_irq env.B.k l;
          entry env.B.k.K.current K.Ev_interrupt
      | Op_cancel_badged (e, b) ->
          entry env.B.root_tcb
            (K.Ev_invoke (K.Inv_cancel_badged_sends { ep = eps.(e); badge = b }))
      | Op_suspend t ->
          entry env.B.root_tcb
            (K.Ev_invoke (K.Inv_tcb_suspend { target = 15 + t }))
      | Op_resume t ->
          entry env.B.root_tcb
            (K.Ev_invoke (K.Inv_tcb_resume { target = 15 + t }))
      | Op_set_prio (t, p) ->
          entry env.B.root_tcb
            (K.Ev_invoke (K.Inv_tcb_priority { target = 15 + t; prio = p }))
      | Op_delete_ep e ->
          entry env.B.root_tcb (K.Ev_invoke (K.Inv_revoke { target = eps.(e) }));
          entry env.B.root_tcb (K.Ev_invoke (K.Inv_delete { target = eps.(e) }))
      | Op_signal t -> entry threads.(t) (K.Ev_signal { ntfn = 13 })
      | Op_ntfn_wait t -> entry threads.(t) (K.Ev_wait { ntfn = 13 })
      | Op_ntfn_poll t -> entry threads.(t) (K.Ev_poll { ntfn = 13 })
      | Op_recreate_ep e ->
          if cap_is_null env.B.root_cnode.cn_slots.(eps.(e)).cap then
            entry env.B.root_tcb
              (K.Ev_invoke
                 (K.Inv_retype
                    {
                      ut = B.ut_cptr;
                      obj_type = Endpoint_object;
                      count = 1;
                      dest_slots = [ env.B.root_cnode.cn_slots.(eps.(e)) ];
                    })))
    ops;
  !ok

(* --- capability-space decode vs a functional reference --- *)

(* A pure reference decoder with the same semantics as Cspace.resolve. *)
let rec reference_resolve cap cptr remaining depth =
  match cap with
  | Cnode_cap { cnode; guard; guard_bits } ->
      let need = guard_bits + cnode.cn_bits in
      if need > remaining then None
      else if
        guard_bits > 0
        && (cptr lsr (remaining - guard_bits)) land ((1 lsl guard_bits) - 1)
           <> guard
      then None
      else begin
        let index =
          (cptr lsr (remaining - need)) land ((1 lsl cnode.cn_bits) - 1)
        in
        let slot = cnode.cn_slots.(index) in
        let remaining = remaining - need in
        if remaining = 0 then Some (slot, depth + 1)
        else
          match slot.cap with
          | Cnode_cap _ as next -> reference_resolve next cptr remaining (depth + 1)
          | Null_cap -> None
          | _ -> Some (slot, depth + 1)
      end
  | _ -> None

(* Random guarded capability spaces: a tree of cnodes with random radices
   and guards, leaves sprinkled in. *)
let gen_cspace_shape =
  QCheck.Gen.(
    list_size (int_range 1 6)
      (triple (int_range 1 3) (* radix bits *)
         (int_range 0 3) (* guard bits *)
         (int_range 0 7) (* guard value, masked later *)))

let test_cspace_matches_reference =
  QCheck.Test.make ~count:200 ~name:"cspace decode matches functional reference"
    (QCheck.make
       ~print:(fun l -> Fmt.str "%d levels" (List.length l))
       gen_cspace_shape)
    (fun shape ->
      let env = B.boot improved in
      let k = env.B.k in
      (* Build a chain of cnodes per the shape; slot 0 links the chain. *)
      let nodes =
        List.map
          (fun (bits, guard_bits, guard) ->
            let dest = K.new_root_slot k in
            match
              Sel4.Untyped_ops.retype (K.ctx k)
                ~fresh_id:(fun () -> K.fresh_id k)
                ~register:(K.register k) ~ut_slot:env.B.ut_slot
                (Cnode_object bits) ~count:1 ~dest_slots:[ dest ]
            with
            | Sel4.Untyped_ops.Done [ Cnode_cap { cnode; _ } ] ->
                (cnode, guard_bits, guard land ((1 lsl guard_bits) - 1))
            | _ -> QCheck.assume_fail ())
          shape
      in
      let rec link = function
        | (a, _, _) :: ((b, gb, g) :: _ as rest) ->
            a.cn_slots.(0).cap <-
              Cnode_cap { cnode = b; guard = g; guard_bits = gb };
            link rest
        | _ -> ()
      in
      link nodes;
      (* Leaves in slot 1 of each node (when it exists). *)
      List.iter
        (fun (n, _, _) ->
          if Array.length n.cn_slots > 1 then
            n.cn_slots.(1).cap <- env.B.root_cnode.cn_slots.(B.ut_cptr).cap)
        nodes;
      let root =
        match nodes with
        | (first, gb, g) :: _ ->
            Cnode_cap { cnode = first; guard = g; guard_bits = gb }
        | [] -> QCheck.assume_fail ()
      in
      (* Compare on a spread of capability addresses. *)
      List.for_all
        (fun cptr ->
          let reference = reference_resolve root cptr 32 0 in
          match (Sel4.Cspace.resolve (K.ctx k) ~root_cap:root ~cptr, reference) with
          | Sel4.Cspace.Ok_slot (s1, d1), Some (s2, d2) -> s1 == s2 && d1 = d2
          | Sel4.Cspace.Error _, None -> true
          | _ -> false)
        [ 0; 1; 2; 3; 0x40000000; 0x80000001; 0xdeadbeef; 0x55555555; -1 land 0xffffffff ])

(* --- virtual-memory random operations preserve invariants --- *)

type vm_op =
  | Vm_map_pt of int  (* pd-index slot of vaddr megapage *)
  | Vm_map_frame of int * int  (* frame idx, vaddr page idx *)
  | Vm_unmap_frame of int
  | Vm_delete_frame of int
  | Vm_delete_pt
  | Vm_delete_pd

let gen_vm_ops =
  QCheck.Gen.(
    list_size (int_range 3 25)
      (frequency
         [
           (2, map (fun i -> Vm_map_pt (i mod 4)) (int_range 0 3));
           (6, map2 (fun f v -> Vm_map_frame (f mod 6, v mod 16)) (int_range 0 5) (int_range 0 15));
           (3, map (fun f -> Vm_unmap_frame (f mod 6)) (int_range 0 5));
           (2, map (fun f -> Vm_delete_frame (f mod 6)) (int_range 0 5));
           (1, return Vm_delete_pt);
           (1, return Vm_delete_pd);
         ]))

let print_vm_ops ops = Fmt.str "%d vm ops" (List.length ops)

let run_vm_ops build ops =
  let env = B.boot build in
  let _ = B.retype_syscall env Page_directory_object ~count:1 ~dest:40 in
  let _ = B.retype_syscall env Page_table_object ~count:4 ~dest:44 in
  let _ = B.retype_syscall env (Frame_object 12) ~count:6 ~dest:50 in
  (match build.Sel4.Build.vspace with
  | Sel4.Build.Asid_table ->
      (match
         K.run_to_completion env.B.k
           (K.Ev_invoke
              (K.Inv_make_asid_pool
                 {
                   ut = B.ut_cptr;
                   dest_slot = env.B.root_cnode.cn_slots.(60);
                   top_index = 0;
                 }))
       with
      | K.Completed -> ()
      | _ -> QCheck.Test.fail_report "asid pool setup failed");
      ignore
        (K.run_to_completion env.B.k
           (K.Ev_invoke (K.Inv_assign_asid { pool = 60; pd = 40 })))
  | Sel4.Build.Shadow_tables -> ());
  let ok = ref true in
  let step ev =
    ignore (K.run_to_completion env.B.k ev);
    match Sel4.Invariants.check_result env.B.k with
    | Ok () -> ()
    | Error ms ->
        ok := false;
        QCheck.Test.fail_reportf "vm invariant violated: %s" (String.concat "; " ms)
  in
  List.iter
    (fun op ->
      match op with
      | Vm_map_pt i ->
          step
            (K.Ev_invoke
               (K.Inv_map_page_table
                  { pt = 44 + i; pd = 40; vaddr = 0x100000 * (1 + i) }))
      | Vm_map_frame (f, v) ->
          step
            (K.Ev_invoke
               (K.Inv_map_frame
                  { frame = 50 + f; pd = 40; vaddr = 0x100000 + (v * 0x1000) }))
      | Vm_unmap_frame f ->
          step (K.Ev_invoke (K.Inv_unmap_frame { frame = 50 + f }))
      | Vm_delete_frame f -> step (K.Ev_invoke (K.Inv_delete { target = 50 + f }))
      | Vm_delete_pt -> step (K.Ev_invoke (K.Inv_delete { target = 44 }))
      | Vm_delete_pd -> step (K.Ev_invoke (K.Inv_delete { target = 40 })))
    ops;
  !ok

let test_vm_ops_shadow =
  QCheck.Test.make ~count:80 ~name:"vm invariants hold (shadow tables)"
    (QCheck.make ~print:print_vm_ops gen_vm_ops)
    (fun ops -> run_vm_ops improved ops)

let test_vm_ops_asid =
  QCheck.Test.make ~count:80 ~name:"vm invariants hold (asid table)"
    (QCheck.make ~print:print_vm_ops gen_vm_ops)
    (fun ops -> run_vm_ops original ops)

(* --- Benno and Benno+bitmap make identical scheduling decisions --- *)

let trace_of_ops build ops =
  let env = B.boot build in
  let eps = [| 10; 11; 12 |] in
  Array.iter (fun d -> ignore (B.spawn_endpoint env ~dest:d)) eps;
  ignore (B.spawn_notification env ~dest:13);
  let threads =
    Array.init 4 (fun i -> B.spawn_thread env ~priority:(100 + (i * 10)) ~dest:(15 + i))
  in
  Array.iter (B.make_runnable env) threads;
  let trace = ref [] in
  let entry tcb event =
    if is_runnable tcb || tcb == env.B.k.K.current then begin
      ignore (as_thread env tcb event);
      trace := env.B.k.K.current.tcb_id :: !trace
    end
  in
  List.iter
    (fun op ->
      match op with
      | Op_send (t, e) ->
          entry threads.(t)
            (K.Ev_send { ep = eps.(e); msg_len = 2; extra_caps = []; blocking = true })
      | Op_call (t, e) ->
          entry threads.(t)
            (K.Ev_call { ep = eps.(e); badge_hint = 0; msg_len = 2; extra_caps = [] })
      | Op_recv (t, e) -> entry threads.(t) (K.Ev_recv { ep = eps.(e) })
      | Op_reply_recv (t, e) ->
          entry threads.(t) (K.Ev_reply_recv { ep = eps.(e); msg_len = 1 })
      | Op_yield -> entry env.B.k.K.current K.Ev_yield
      | Op_tick ->
          K.raise_irq env.B.k K.timer_irq;
          entry env.B.k.K.current K.Ev_interrupt
      | Op_resume t ->
          entry env.B.root_tcb (K.Ev_invoke (K.Inv_tcb_resume { target = 15 + t }))
      | Op_suspend t ->
          entry env.B.root_tcb (K.Ev_invoke (K.Inv_tcb_suspend { target = 15 + t }))
      | _ -> ())
    ops;
  List.rev !trace

let test_bitmap_equals_benno =
  QCheck.Test.make ~count:100
    ~name:"bitmap and plain Benno make identical scheduling decisions"
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      trace_of_ops { improved with Sel4.Build.sched = Sel4.Build.Benno } ops
      = trace_of_ops improved ops)

let invariant_test build name =
  QCheck.Test.make ~count:120 ~name
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops -> run_ops build ops)

let test_invariants_improved =
  invariant_test improved "invariants hold under random ops (improved kernel)"

let test_invariants_original =
  invariant_test original "invariants hold under random ops (original kernel)"

let test_invariants_benno =
  invariant_test
    { improved with Sel4.Build.sched = Sel4.Build.Benno }
    "invariants hold under random ops (benno, no bitmap)"

(* --- every catalogue check detects a targeted corruption --- *)

(* Each test boots a clean kernel, applies one surgical corruption aimed
   at a single check, and requires both the targeted check and the
   whole-catalogue [check_result] to report it with the check's name —
   the detection power the fault-injection campaign's oracle relies on. *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let assert_detects ~name ~check env corrupt =
  (match Sel4.Invariants.check_result env.B.k with
  | Ok () -> ()
  | Error ms ->
      Alcotest.failf "%s: catalogue not clean before corruption: %s" name
        (String.concat "; " ms));
  corrupt ();
  check_bool (name ^ ": targeted check raises") true
    (try
       check env.B.k;
       false
     with Sel4.Invariants.Violation _ -> true);
  match Sel4.Invariants.check_result env.B.k with
  | Ok () -> Alcotest.failf "%s: check_result missed the corruption" name
  | Error ms ->
      check_bool (name ^ ": named in the report") true
        (List.exists (starts_with ~prefix:name) ms)

let park_one_sender env ~ep_cptr ~dest =
  let t = B.spawn_thread env ~priority:50 ~dest in
  B.make_runnable env t;
  K.force_run env.B.k t;
  ignore
    (K.kernel_entry env.B.k
       (K.Ev_send { ep = ep_cptr; msg_len = 1; extra_caps = []; blocking = true }));
  K.force_run env.B.k env.B.root_tcb;
  t

let frame_at env slot_i =
  match env.B.root_cnode.cn_slots.(slot_i).cap with
  | Frame_cap { frame; _ } -> frame
  | _ -> Alcotest.fail "expected a frame cap"

let test_detect_run_queues () =
  let env = B.boot improved in
  let t = B.spawn_thread env ~priority:120 ~dest:80 in
  B.make_runnable env t;
  assert_detects ~name:"run_queues" ~check:Sel4.Invariants.check_run_queues env
    (fun () -> t.in_run_queue <- false)

let test_detect_endpoints () =
  let env = B.boot improved in
  let ep = B.spawn_endpoint env ~dest:10 in
  ignore (park_one_sender env ~ep_cptr:(B.cptr 10) ~dest:20);
  assert_detects ~name:"endpoints" ~check:Sel4.Invariants.check_endpoints env
    (fun () -> ep.ep_queue_kind <- Ep_idle)

let test_detect_notifications () =
  let env = B.boot improved in
  let n = B.spawn_notification env ~dest:11 in
  assert_detects ~name:"notifications"
    ~check:Sel4.Invariants.check_notifications env (fun () ->
      (* A queued "waiter" that is not blocked on the notification. *)
      n.ntfn_queue.head <- Some env.B.root_tcb;
      n.ntfn_queue.tail <- Some env.B.root_tcb)

let test_detect_alignment () =
  let env = B.boot improved in
  ignore (B.retype_syscall env (Frame_object 12) ~count:1 ~dest:50);
  let f = frame_at env 50 in
  assert_detects ~name:"alignment" ~check:Sel4.Invariants.check_alignment env
    (fun () ->
      let rogue = { f with f_id = 9999; f_addr = f.f_addr + 4 } in
      env.B.k.K.objects <- Any_frame rogue :: env.B.k.K.objects)

let test_detect_cdt () =
  let env = B.boot improved in
  assert_detects ~name:"cdt" ~check:Sel4.Invariants.check_cdt env (fun () ->
      env.B.root_cnode.cn_slots.(99).cdt_parent <- Some env.B.ut_slot)

let test_detect_shadow_tables () =
  let env = B.boot improved in
  ignore (B.retype_syscall env Page_table_object ~count:1 ~dest:44);
  let pt =
    match env.B.root_cnode.cn_slots.(44).cap with
    | Page_table_cap { pt; _ } -> pt
    | _ -> Alcotest.fail "expected a page-table cap"
  in
  assert_detects ~name:"shadow_tables"
    ~check:Sel4.Invariants.check_shadow_tables env (fun () ->
      pt.pt_shadow.(5) <- Some env.B.ut_slot)

let test_detect_kernel_mappings () =
  let env = B.boot improved in
  ignore (B.retype_syscall env Page_directory_object ~count:1 ~dest:30);
  let pd =
    match env.B.root_cnode.cn_slots.(30).cap with
    | Page_directory_cap { pd; _ } -> pd
    | _ -> Alcotest.fail "expected a page-directory cap"
  in
  assert_detects ~name:"kernel_mappings"
    ~check:Sel4.Invariants.check_kernel_mappings env (fun () ->
      pd.pd_entries.(kernel_pde_first) <- Pde_invalid)

let test_detect_cleared () =
  let env = B.boot improved in
  ignore (B.retype_syscall env (Frame_object 12) ~count:1 ~dest:50);
  let f = frame_at env 50 in
  assert_detects ~name:"cleared" ~check:Sel4.Invariants.check_cleared env
    (fun () -> f.f_cleared <- 8)

(* check_result runs the catalogue to the end: two unrelated corruptions
   yield two named violations, not just the first. *)
let test_check_result_collects_all () =
  let env = B.boot improved in
  let t = B.spawn_thread env ~priority:120 ~dest:80 in
  B.make_runnable env t;
  ignore (B.retype_syscall env (Frame_object 12) ~count:1 ~dest:50);
  let f = frame_at env 50 in
  (match Sel4.Invariants.check_result env.B.k with
  | Ok () -> ()
  | Error ms -> Alcotest.failf "not clean: %s" (String.concat "; " ms));
  t.in_run_queue <- false;
  f.f_cleared <- 8;
  match Sel4.Invariants.check_result env.B.k with
  | Ok () -> Alcotest.fail "two corruptions missed"
  | Error ms ->
      check_int "both violations reported" 2 (List.length ms);
      check_bool "run_queues reported" true
        (List.exists (starts_with ~prefix:"run_queues") ms);
      check_bool "cleared reported" true
        (List.exists (starts_with ~prefix:"cleared") ms)

(* --- hook composition safety --- *)

(* The injection hook and the access recorder are both single-slot hooks
   shared by several analysis clients (inject, race, explore): installing
   over a live hook must be an error, never a silent replacement. *)

let test_injection_hook_double_set () =
  let env = B.boot improved in
  let k = env.B.k in
  K.set_injection_hook k (Some (fun _ -> false));
  check_bool "double install rejected" true
    (try
       K.set_injection_hook k (Some (fun _ -> true));
       false
     with Invalid_argument _ -> true);
  (* Clearing first makes the slot available again. *)
  K.set_injection_hook k None;
  K.set_injection_hook k (Some (fun _ -> false));
  K.set_injection_hook k None

let test_access_hook_double_set () =
  let env = B.boot improved in
  let ctx = K.ctx env.B.k in
  Sel4.Ctx.set_access_hook ctx (Some (fun _ _ _ -> ()));
  check_bool "double install rejected" true
    (try
       Sel4.Ctx.set_access_hook ctx (Some (fun _ _ _ -> ()));
       false
     with Invalid_argument _ -> true);
  Sel4.Ctx.set_access_hook ctx None;
  Sel4.Ctx.set_access_hook ctx (Some (fun _ _ _ -> ()));
  Sel4.Ctx.set_access_hook ctx None

let test_preempt_poll_hook_double_set () =
  let env = B.boot improved in
  let ctx = K.ctx env.B.k in
  Sel4.Ctx.set_preempt_poll_hook ctx (Some (fun _ -> false));
  check_bool "double install rejected" true
    (try
       Sel4.Ctx.set_preempt_poll_hook ctx (Some (fun _ -> false));
       false
     with Invalid_argument _ -> true);
  Sel4.Ctx.set_preempt_poll_hook ctx None

(* --- digest order-insensitivity --- *)

(* The canonical digest must not depend on object-registry order or on
   hash-table iteration order: it sorts by object id.  Reversing the
   registry and re-inserting the capability reference counts in a
   different order must leave the digest byte-identical. *)

let test_digest_order_insensitive () =
  let env = B.boot improved in
  let k = env.B.k in
  let _ep = B.spawn_endpoint env ~dest:10 in
  let _ntfn = B.spawn_notification env ~dest:11 in
  let a = B.spawn_thread env ~priority:100 ~dest:12 in
  let b = B.spawn_thread env ~priority:120 ~dest:13 in
  B.make_runnable env a;
  B.make_runnable env b;
  ignore (as_thread env a (K.Ev_recv { ep = B.cptr 10 }));
  ignore
    (as_thread env b
       (K.Ev_send { ep = B.cptr 10; msg_len = 1; extra_caps = []; blocking = true }));
  let d1 = Sel4.Digest.of_kernel k in
  (* Reverse the registry order. *)
  k.K.objects <- List.rev k.K.objects;
  (* Re-insert the capability refcounts in reverse order: different
     bucket chains, same bindings. *)
  let refs = Hashtbl.fold (fun id n acc -> (id, n) :: acc) k.K.cap_refs [] in
  Hashtbl.reset k.K.cap_refs;
  List.iter (fun (id, n) -> Hashtbl.replace k.K.cap_refs id n) (List.rev refs);
  let d2 = Sel4.Digest.of_kernel k in
  check_bool "digest is order-insensitive" true (d1 = d2);
  check_bool "digest is non-trivial" true (String.length d1 > 100)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "kernel"
    [
      ( "boot",
        Alcotest.
          [
            test_case "boot" `Quick test_boot;
            test_case "all builds" `Quick test_boot_all_builds;
            test_case "retype syscall" `Quick test_retype_syscall;
            test_case "retype clears" `Quick test_retype_clears_objects;
            test_case "retype errors" `Quick test_retype_errors;
          ] );
      ( "ipc",
        Alcotest.
          [
            test_case "call/reply" `Quick test_ipc_call_reply;
            test_case "fastpath cycles" `Quick test_ipc_fastpath_cycles;
            test_case "send queue fifo" `Quick test_ipc_send_queue_fifo;
            test_case "badge delivery" `Quick test_badge_delivery;
            test_case "cap transfer" `Quick test_cap_transfer;
          ] );
      ( "scheduler",
        Alcotest.
          [
            test_case "variants agree" `Quick test_scheduler_variants_agree;
            test_case "lazy cleanup linear" `Quick test_lazy_cleanup_is_linear;
            test_case "priority requeue" `Quick test_priority_change_requeues;
          ] );
      ( "preemption",
        Alcotest.
          [
            test_case "delete bounds latency" `Quick
              test_preemptible_delete_bounds_latency;
            test_case "original latency grows" `Quick
              test_original_latency_grows_with_waiters;
            test_case "retype restarts" `Quick test_preempted_retype_restarts;
            test_case "retype latency" `Quick
              test_retype_latency_original_vs_improved;
            test_case "forward progress under storm" `Quick
              test_forward_progress_under_interrupt_storm;
            test_case "multi-irq deterministic" `Quick
              test_multi_irq_delivery_deterministic;
            test_case "multi-irq worst latency" `Quick
              test_multi_irq_worst_latency_accounting;
          ] );
      ( "badged-abort",
        Alcotest.
          [
            test_case "selective" `Quick test_badged_abort_selective;
            test_case "preemptible" `Quick test_badged_abort_preemptible;
          ] );
      ( "cdt",
        Alcotest.
          [
            test_case "revoke descendants" `Quick test_revoke_deletes_descendants;
            test_case "delete final cap" `Quick test_delete_final_cap_destroys;
            test_case "delete copy keeps object" `Quick test_delete_copy_keeps_object;
            test_case "move preserves derivation" `Quick test_move_preserves_derivation;
          ] );
      ( "vspace",
        Alcotest.
          [
            test_case "map/unmap shadow" `Quick test_vm_map_unmap_shadow;
            test_case "map/unmap asid" `Quick test_vm_map_unmap_asid;
            test_case "double map rejected" `Quick test_vm_double_map_rejected;
            test_case "stale asid harmless" `Quick test_vm_stale_asid_harmless;
            test_case "shadow delete preempts" `Quick test_vm_shadow_delete_preempts;
            test_case "asid pool exhaustion" `Quick test_asid_pool_exhaustion;
          ] );
      ( "interrupts",
        Alcotest.
          [
            test_case "irq delivery" `Quick test_irq_delivery;
            test_case "fault delivery" `Quick test_fault_delivery;
          ] );
      ( "notifications",
        Alcotest.
          [
            test_case "signal then wait" `Quick test_ntfn_signal_then_wait;
            test_case "wait then signal" `Quick test_ntfn_wait_then_signal;
            test_case "badges accumulate" `Quick test_ntfn_badges_accumulate;
            test_case "poll" `Quick test_ntfn_poll;
            test_case "irq via notification" `Quick test_irq_via_notification;
            test_case "delete wakes waiters" `Quick test_ntfn_delete_wakes_waiters;
          ] );
      ( "invariant-detection",
        Alcotest.
          [
            test_case "run queues" `Quick test_detect_run_queues;
            test_case "endpoints" `Quick test_detect_endpoints;
            test_case "notifications" `Quick test_detect_notifications;
            test_case "alignment" `Quick test_detect_alignment;
            test_case "cdt" `Quick test_detect_cdt;
            test_case "shadow tables" `Quick test_detect_shadow_tables;
            test_case "kernel mappings" `Quick test_detect_kernel_mappings;
            test_case "cleared" `Quick test_detect_cleared;
            test_case "check_result collects all" `Quick
              test_check_result_collects_all;
          ] );
      ( "hooks-and-digest",
        Alcotest.
          [
            test_case "injection hook double-set" `Quick
              test_injection_hook_double_set;
            test_case "access hook double-set" `Quick
              test_access_hook_double_set;
            test_case "preempt-poll hook double-set" `Quick
              test_preempt_poll_hook_double_set;
            test_case "digest order-insensitivity" `Quick
              test_digest_order_insensitive;
          ] );
      ( "invariant-properties",
        qsuite
          [
            test_invariants_improved;
            test_invariants_original;
            test_invariants_benno;
          ] );
      ( "decode-properties", qsuite [ test_cspace_matches_reference ] );
      ("vm-properties", qsuite [ test_vm_ops_shadow; test_vm_ops_asid ]);
      ("sched-equivalence", qsuite [ test_bitmap_equals_benno ]);
    ]
