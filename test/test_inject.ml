(* Tests for the fault-injection campaign engine: the campaign must be a
   deterministic function of its seed, the exhaustive single-injection
   sweep over endpoint deletion must pass cleanly, and the shrinker must
   produce 1-minimal schedules — checked both directly and end-to-end
   through a planted failure oracle. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_int_list = Alcotest.(check (list int))
let ctx = Sel4_rt.Analysis_ctx.default

(* --- determinism: the report is a pure function of the seed --- *)

let test_same_seed_same_report () =
  let r1 = Inject.run_campaign ~smoke:true ~seed:7 ctx in
  let r2 = Inject.run_campaign ~smoke:true ~seed:7 ctx in
  check_bool "identical reports" true (r1 = r2)

let test_seed_changes_schedules () =
  (* Different seeds still pass, and run the same amount of work (the
     schedule *sizes* are drawn from the same distribution shape, but the
     reports need not be identical). *)
  let r1 = Inject.run_campaign ~smoke:true ~seed:1 ctx in
  let r2 = Inject.run_campaign ~smoke:true ~seed:2 ctx in
  check_bool "seed 1 passes" true (Inject.ok r1);
  check_bool "seed 2 passes" true (Inject.ok r2);
  check_int "seed recorded" 1 r1.Inject.r_seed

(* --- the exhaustive sweep over endpoint deletion is clean --- *)

let test_exhaustive_ep_delete () =
  let r = Inject.run_campaign ~smoke:true ~ops:[ Inject.Ep_delete ] ctx in
  check_bool "no failures" true (Inject.ok r);
  match r.Inject.r_ops with
  | [ o ] ->
      check_bool "covers preemption points" true (o.Inject.o_points > 0);
      (* 3 uninterrupted baselines + (points + random schedules) x 3
         variants: strictly more runs than points. *)
      check_bool "sweep ran per variant" true
        (o.Inject.o_runs >= 3 * (o.Inject.o_points + 1));
      check_bool "injections forced restarts" true (o.Inject.o_max_restarts > 0)
  | _ -> Alcotest.fail "expected exactly one op report"

let test_full_campaign_smoke () =
  let r = Inject.run_campaign ~smoke:true ctx in
  check_bool "all four ops pass" true (Inject.ok r);
  check_int "four campaigns" 4 (List.length r.Inject.r_ops);
  List.iter
    (fun o ->
      check_bool
        (Inject.op_name o.Inject.o_op ^ " polls preemption points")
        true
        (o.Inject.o_points > 0))
    r.Inject.r_ops

(* --- shrinking --- *)

let test_shrink_minimal () =
  (* The failure needs 3 and 7 together; everything else is noise. *)
  let fails s = List.mem 3 s && List.mem 7 s in
  check_int_list "noise removed" [ 3; 7 ]
    (Inject.shrink ~fails [ 1; 3; 5; 7; 9 ]);
  check_int_list "already minimal" [ 2 ] (Inject.shrink ~fails:(List.mem 2) [ 2 ]);
  (* 1-minimality: removing any element of the result must not fail. *)
  let result = Inject.shrink ~fails [ 9; 7; 5; 3; 1 ] in
  check_bool "result still fails" true (fails result);
  List.iteri
    (fun i _ ->
      check_bool "dropping any element passes" false
        (fails (List.filteri (fun j _ -> j <> i) result)))
    result

let test_planted_failure_is_shrunk () =
  (* Plant a deterministic bug that needs at least two injections, so the
     exhaustive single-injection sweep stays green and only the random
     multi-injection schedules hit it; the report must carry 1-minimal
     (two-element) schedules. *)
  let planted op schedule =
    if op = Inject.Ep_delete && List.length schedule >= 2 then
      Some "planted: double preemption mishandled"
    else None
  in
  let r = Inject.run_campaign ~smoke:true ~ops:[ Inject.Ep_delete ] ~planted ctx in
  check_bool "campaign reports the plant" false (Inject.ok r);
  let o = List.hd r.Inject.r_ops in
  check_bool "at least one failure" true (o.Inject.o_failures <> []);
  List.iter
    (fun (f : Inject.failure) ->
      check_bool "found by a multi-injection schedule" true
        (List.length f.Inject.f_schedule >= 2);
      check_int "shrunk to the 1-minimal pair" 2
        (List.length f.Inject.f_min_schedule);
      Alcotest.(check string)
        "oracle verdict propagated" "planted" f.Inject.f_variant)
    o.Inject.o_failures

let () =
  Alcotest.run "inject"
    [
      ( "determinism",
        Alcotest.
          [
            test_case "same seed, same report" `Quick test_same_seed_same_report;
            test_case "other seeds pass too" `Quick test_seed_changes_schedules;
          ] );
      ( "campaign",
        Alcotest.
          [
            test_case "exhaustive ep-delete sweep" `Quick
              test_exhaustive_ep_delete;
            test_case "all ops, smoke sizes" `Quick test_full_campaign_smoke;
          ] );
      ( "shrinking",
        Alcotest.
          [
            test_case "greedy shrink is 1-minimal" `Quick test_shrink_minimal;
            test_case "planted failure shrunk in report" `Quick
              test_planted_failure_is_shrunk;
          ] );
    ]
