(* The SMP model: per-core worlds coupled through the IPI fabric.  The
   engine is deterministic at every core count, affinity routing never
   leaks a line onto a non-affine core, the shielded core's bound and
   observed tail sit strictly below the unshielded ones, and the fabric's
   delivery invariant (every accepted IPI delivered or cancelled)
   closes. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let small ?(seed = 7) ~cores ~policy () =
  Smp.Soak.run ~seed ~entries:400 ~smoke:true ~cores ~policy ()

(* --- topology and routing --- *)

let test_routing_exhaustive () =
  List.iter
    (fun cores ->
      List.iter
        (fun policy ->
          let topo = Smp.Topology.make ~cores ~policy in
          for line = 0 to Sel4.Kernel.num_irqs - 1 do
            let c = Smp.Topology.route_line topo ~line in
            check_bool "routed core in range" true (c >= 0 && c < cores);
            match policy with
            | Smp.Topology.Shielded ->
                check_int "shielded routes everything to core 0" 0 c
            | Smp.Topology.Spread ->
                check_int "spread routes modulo" (line mod cores) c
          done;
          (* tenant placement: only tenant cores, all tenants placed *)
          let tenant_cores = Smp.Topology.tenant_cores topo in
          List.iter
            (fun total ->
              let counts = Smp.Topology.place_tenants topo ~total in
              check_int "all tenants placed" total
                (Array.fold_left ( + ) 0 counts);
              Array.iteri
                (fun c n ->
                  if n > 0 then
                    check_bool "tenants only on tenant cores" true
                      (List.mem c tenant_cores))
                counts)
            [ 0; 1; 3; 4; 6; 17 ];
          if policy = Smp.Topology.Shielded && cores > 1 then begin
            check_bool "core 0 shielded from tenants" true
              (not (List.mem 0 tenant_cores));
            check_bool "core 0 receives no IPIs" true
              (not (Smp.Topology.receives_ipis topo ~core:0))
          end)
        [ Smp.Topology.Spread; Smp.Topology.Shielded ])
    [ 1; 2; 3; 4; 5; 6 ]

(* Run-level version of the same property: a core's world only contains
   the device lines the topology routes to it, so no delivery can ever
   land elsewhere (devices are bound inside the per-core kernel). *)
let test_routing_in_reports () =
  List.iter
    (fun policy ->
      let r = small ~cores:4 ~policy () in
      List.iter
        (fun sr ->
          Array.iter
            (fun cr ->
              List.iter
                (fun line ->
                  let topo = Smp.Topology.make ~cores:4 ~policy in
                  check_int "line on its affine core"
                    (Smp.Topology.route_line topo ~line)
                    cr.Smp.Soak.cr_core)
                cr.Smp.Soak.cr_lines)
            sr.Smp.Soak.sr_cores)
        r.Smp.Soak.rp_scenarios)
    [ Smp.Topology.Spread; Smp.Topology.Shielded ]

(* --- determinism --- *)

let test_determinism () =
  List.iter
    (fun (cores, policy) ->
      let a = small ~cores ~policy () in
      let b = small ~cores ~policy () in
      check_string
        (Fmt.str "same seed, same report (%d cores, %s)" cores
           (Smp.Topology.policy_name policy))
        (Smp.Soak.report_json a) (Smp.Soak.report_json b))
    [
      (1, Smp.Topology.Spread);
      (2, Smp.Topology.Spread);
      (4, Smp.Topology.Spread);
      (4, Smp.Topology.Shielded);
    ]

(* --- the single-core degenerate case --- *)

let test_single_core_degenerate () =
  let r = small ~cores:1 ~policy:Smp.Topology.Spread () in
  check_int "no IPIs on one core" 0 r.Smp.Soak.rp_ipi_sent;
  check_int "no coalesced IPIs either" 0 r.Smp.Soak.rp_ipi_coalesced;
  List.iter
    (fun sr ->
      Array.iter
        (fun cr ->
          let b = cr.Smp.Soak.cr_bound in
          check_int "no send term" 0 b.Smp.Bound.b_send;
          check_int "no recv term" 0 b.Smp.Bound.b_recv;
          check_int "no contention term" 0 b.Smp.Bound.b_contention;
          check_int "bound degenerates to the single-core bound"
            r.Smp.Soak.rp_base_bound b.Smp.Bound.b_total)
        sr.Smp.Soak.sr_cores)
    r.Smp.Soak.rp_scenarios

(* --- per-core bounds --- *)

let test_bound_ordering () =
  let base = 50_000 in
  let sh = Smp.Topology.make ~cores:4 ~policy:Smp.Topology.Shielded in
  let sp = Smp.Topology.make ~cores:4 ~policy:Smp.Topology.Spread in
  let b_sh0 = Smp.Bound.per_core sh ~base ~core:0 in
  let b_sh1 = Smp.Bound.per_core sh ~base ~core:1 in
  let b_sp0 = Smp.Bound.per_core sp ~base ~core:0 in
  check_int "shielded core has no inbound-IPI term" 0 b_sh0.Smp.Bound.b_recv;
  check_bool "tenant core pays the inbound term" true
    (b_sh1.Smp.Bound.b_recv > 0);
  check_bool "shielded core bound strictly below its spread counterpart" true
    (b_sh0.Smp.Bound.b_total < b_sp0.Smp.Bound.b_total);
  check_bool "every multicore bound exceeds the base" true
    (b_sh0.Smp.Bound.b_total > base);
  check_bool "contention term from the interference matrix" true
    (b_sp0.Smp.Bound.b_contention
    = List.length (Smp.Bound.interfering_pairs ())
      * Sel4.Costs.remote_line_transfer_cycles)

(* --- the fabric delivery invariant --- *)

let test_fabric_accounting () =
  let f = Smp.Fabric.create ~cores:3 in
  check_bool "accepted" true (Smp.Fabric.send f ~src:0 ~dst:1 Smp.Fabric.Resched);
  check_bool "second send coalesces" false
    (Smp.Fabric.send f ~src:2 ~dst:1 Smp.Fabric.Resched);
  check_bool "different kind is independent" true
    (Smp.Fabric.send f ~src:0 ~dst:1 Smp.Fabric.Tlb_shootdown);
  check_bool "different dst is independent" true
    (Smp.Fabric.send f ~src:0 ~dst:2 Smp.Fabric.Resched);
  check_int "sent" 3 (Smp.Fabric.sent f);
  check_int "coalesced" 1 (Smp.Fabric.coalesced f);
  check_int "in flight" 3 (Smp.Fabric.in_flight f);
  check_bool "mid-run check passes with traffic in flight" true
    (Result.is_ok (Smp.Fabric.check ~final:false f));
  check_bool "final check fails with traffic in flight" true
    (Result.is_error (Smp.Fabric.check ~final:true f));
  Smp.Fabric.note_delivered f ~dst:1 Smp.Fabric.Resched;
  check_bool "slot free again after delivery" true
    (Smp.Fabric.send f ~src:2 ~dst:1 Smp.Fabric.Resched);
  Smp.Fabric.note_delivered f ~dst:1 Smp.Fabric.Resched;
  Smp.Fabric.note_delivered f ~dst:1 Smp.Fabric.Tlb_shootdown;
  check_int "cancel sweeps the rest" 1 (Smp.Fabric.cancel_outstanding f ~dst:2);
  check_bool "final invariant closes" true
    (Result.is_ok (Smp.Fabric.check ~final:true f));
  check_int "delivered + cancelled = sent" (Smp.Fabric.sent f)
    (Smp.Fabric.delivered f + Smp.Fabric.cancelled f)

(* --- migration/affinity invariants --- *)

let test_affinity_invariant_bites () =
  let k = Sel4.Kernel.create ~cpu_id:2 Sel4.Build.improved in
  Sel4.Invariants.check_affinity k;
  (* break it: claim the running thread belongs to another core *)
  k.Sel4.Kernel.current.Sel4.Ktypes.tcb_affinity <- 0;
  check_bool "wrong-core thread detected" true
    (match Sel4.Invariants.check_affinity k with
    | () -> false
    | exception Sel4.Invariants.Violation _ -> true)

let test_smp_soak_invariants_clean () =
  let r =
    Smp.Soak.run ~seed:11 ~entries:400 ~smoke:true ~inv_every:50 ~cores:4
      ~policy:Smp.Topology.Shielded ()
  in
  check_int "no invariant failures under sampling" 0
    r.Smp.Soak.rp_invariant_failures;
  check_int "no bound violations" 0 r.Smp.Soak.rp_violations;
  check_bool "fabric closed" true
    (List.for_all
       (fun sr -> sr.Smp.Soak.sr_fabric_error = None)
       r.Smp.Soak.rp_scenarios)

(* --- cross-core traffic actually flows --- *)

let test_ipis_flow () =
  let r = small ~cores:4 ~policy:Smp.Topology.Spread () in
  check_bool "IPIs were sent" true (r.Smp.Soak.rp_ipi_sent > 0);
  check_bool "IPIs were delivered" true (r.Smp.Soak.rp_ipi_delivered > 0);
  check_int "delivery invariant: sent = delivered + cancelled"
    r.Smp.Soak.rp_ipi_sent
    (r.Smp.Soak.rp_ipi_delivered + r.Smp.Soak.rp_ipi_cancelled);
  (* shielded: core 0 sends but never receives *)
  let s = small ~cores:4 ~policy:Smp.Topology.Shielded () in
  check_bool "shielded run sends IPIs" true (s.Smp.Soak.rp_ipi_sent > 0);
  List.iter
    (fun sr ->
      check_int "shielded core receives no IPIs" 0
        sr.Smp.Soak.sr_cores.(0).Smp.Soak.cr_ipi_delivered)
    s.Smp.Soak.rp_scenarios

(* --- the headline: shielding buys tail latency --- *)

let test_shielded_tail_lower () =
  let shielded, spread, cmp =
    Smp.Soak.run_compare ~seed:42 ~entries:1_200 ~smoke:true ~cores:4 ()
  in
  check_bool "shielded run ok" true shielded.Smp.Soak.rp_ok;
  check_bool "spread run ok" true spread.Smp.Soak.rp_ok;
  check_bool "tails populated" true
    (cmp.Smp.Soak.cmp_shielded.Sim.ls_count > 0
    && cmp.Smp.Soak.cmp_spread.Sim.ls_count > 0);
  check_bool "shielded p99.9 and max strictly lower" true
    cmp.Smp.Soak.cmp_tail_lower

let () =
  Alcotest.run "smp"
    [
      ( "topology",
        Alcotest.
          [
            test_case "routing exhaustive" `Quick test_routing_exhaustive;
            test_case "routing in reports" `Quick test_routing_in_reports;
          ] );
      ( "soak",
        Alcotest.
          [
            test_case "deterministic at 1/2/4 cores" `Quick test_determinism;
            test_case "single-core degenerate" `Quick
              test_single_core_degenerate;
            test_case "invariants clean under sampling" `Quick
              test_smp_soak_invariants_clean;
            test_case "ipis flow" `Quick test_ipis_flow;
            test_case "shielded tail lower" `Slow test_shielded_tail_lower;
          ] );
      ( "bound",
        Alcotest.[ test_case "per-core ordering" `Quick test_bound_ordering ] );
      ( "fabric",
        Alcotest.[ test_case "delivery accounting" `Quick test_fabric_accounting ] );
      ( "invariants",
        Alcotest.
          [ test_case "affinity check bites" `Quick test_affinity_invariant_bites ]
      );
    ]
