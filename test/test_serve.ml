(* Tests of the serve layer: the JSON parser/printer, the unified
   response envelope (schema pinned here), the typed Query wire parsing
   and response determinism, the on-disk content-addressed cache
   (round-trip, corruption recovery, version invalidation, concurrent
   writers, eviction), persistence through Analysis_cache — including a
   real process boundary (this binary re-executes itself as a populate
   child) — and the warm-start/rehydrate bit-identity contract. *)

module J = Serve.Json
module E = Serve.Envelope
module Q = Serve.Query
module DC = Serve.Disk_cache
module AC = Sel4_rt.Analysis_cache
module KM = Sel4_rt.Kernel_model

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "sel4rt-serve-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let parse_ok s =
  match J.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "expected valid JSON, got: %s (in %s)" msg s

let member_exn name v =
  match J.member name v with
  | Some x -> x
  | None -> Alcotest.failf "missing member %S" name

(* A persisted analysis payload to feed the disk cache; the interrupt
   entry is the cheapest real one. *)
let persisted_sample =
  lazy
    (Wcet.Ipet.to_persisted
       (Wcet.Ipet.analyse ~config:Hw.Config.default
          (KM.spec Sel4.Build.improved KM.Interrupt)))

(* --- Json --- *)

let test_json_roundtrip () =
  let v = parse_ok {|{"a": [1, 2.5, "x\nA", true, null], "b": {}}|} in
  check_string "compact" {|{"a":[1,2.5,"x\nA",true,null],"b":{}}|}
    (J.to_compact v);
  check_string "reparse fixpoint" (J.to_compact v)
    (J.to_compact (parse_ok (J.to_compact v)));
  check_int "int accessor" 1
    (Option.get (J.to_int_opt (List.nth (Option.get (J.to_list_opt (member_exn "a" v))) 0)))

let test_json_malformed () =
  let bad = [ {|{"a":|}; {|{"a":1} trailing|}; {|{bad: 1}|}; {|"\q"|}; "" ] in
  List.iter
    (fun s ->
      match J.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse failure for %s" s)
    bad

(* --- Envelope: the schema pin --- *)

let envelope_keys line =
  match parse_ok (String.trim line) with
  | J.Obj members -> List.map fst members
  | _ -> Alcotest.fail "envelope is not an object"

let test_envelope_schema () =
  List.iter
    (fun (status, name) ->
      let line =
        E.wrap ~id:"req-1" ~status ~elapsed_s:0.25 ~payload:{|{"x": 1}|} ()
      in
      (* One line, newline-terminated: the serve protocol framing. *)
      check_bool "ends with newline" true
        (String.length line > 0 && line.[String.length line - 1] = '\n');
      check_bool "single line" true
        (not (String.contains (String.sub line 0 (String.length line - 1)) '\n'));
      (* The key set and order are the schema; a new field must be added
         here deliberately (and schema_version bumped if it breaks
         consumers). *)
      Alcotest.(check (list string))
        "envelope keys"
        [ "schema_version"; "id"; "status"; "elapsed_s"; "payload" ]
        (envelope_keys line);
      let v = parse_ok (String.trim line) in
      check_int "schema_version" E.schema_version
        (Option.get (J.to_int_opt (member_exn "schema_version" v)));
      check_string "id" "req-1"
        (Option.get (J.to_string_opt (member_exn "id" v)));
      check_string "status" name
        (Option.get (J.to_string_opt (member_exn "status" v)));
      check_int "payload.x" 1
        (Option.get (J.to_int_opt (member_exn "x" (member_exn "payload" v)))))
    [ (E.Ok, "ok"); (E.Fail, "fail"); (E.Error, "error") ]

let test_envelope_no_id_and_bad_payload () =
  let line = E.wrap ~status:E.Ok ~elapsed_s:0.0 ~payload:{|{"y":2}|} () in
  Alcotest.(check (list string))
    "keys without id"
    [ "schema_version"; "status"; "elapsed_s"; "payload" ]
    (envelope_keys line);
  (* A payload that is not valid JSON must never yield a broken document:
     it degrades to an error envelope. *)
  let line = E.wrap ~status:E.Ok ~elapsed_s:0.0 ~payload:"not json" () in
  let v = parse_ok (String.trim line) in
  check_string "degraded status" "error"
    (Option.get (J.to_string_opt (member_exn "status" v)));
  check_bool "error payload" true
    (J.member "error" (member_exn "payload" v) <> None);
  let v = parse_ok (String.trim (E.error ~id:"e1" "boom")) in
  check_string "error helper message" "boom"
    (Option.get (J.to_string_opt (member_exn "error" (member_exn "payload" v))))

(* The bench report's speedup field: present only when more than one
   domain actually ran, so a single-domain bench can never ship a noise
   ratio that reads like a parallelism regression. *)
let test_envelope_speedup_field () =
  let field = E.speedup_field ~serial_fresh_wall_s:9.0 ~engine_wall_s:3.0 in
  check_bool "omitted at 1 domain" true (field ~domains:1 = None);
  check_bool "omitted at 0 domains" true (field ~domains:0 = None);
  check_string "present at 2 domains" "3.000000"
    (Option.get (field ~domains:2));
  check_bool "zero engine wall degrades to 0, not a crash" true
    (E.speedup_field ~domains:4 ~serial_fresh_wall_s:9.0 ~engine_wall_s:0.0
    = Some "0.000000")

(* --- Query wire parsing --- *)

let test_query_of_json () =
  let req s = Q.of_json (parse_ok s) in
  (match req {|{"query": "analyse"}|} with
  | Ok (None, Q.Analyse { target = Q.Kernel_entry; build; l2 = false; pin = false })
    when build = Sel4.Build.improved ->
      ()
  | _ -> Alcotest.fail "analyse defaults");
  (match
     req
       {|{"query": "analyse", "id": "i7", "target": "syscall", "build": "original", "l2": true, "pin": true}|}
   with
  | Ok (Some "i7", Q.Analyse { target = Q.Entry KM.Syscall; build; l2 = true; pin = true })
    when build = Sel4.Build.original ->
      ()
  | _ -> Alcotest.fail "analyse full params");
  (match req {|{"query": "explore", "smoke": true, "depth": 2}|} with
  | Ok (None, Q.Explore { smoke = true; depth = Some 2 }) -> ()
  | _ -> Alcotest.fail "explore params");
  (match req {|{"query": "sim", "scenarios": ["idle"], "entries": 100}|} with
  | Ok (None, Q.Sim { smoke = true; seed = 42; entries = Some 100; scenarios = [ "idle" ] }) ->
      ()
  | _ -> Alcotest.fail "sim params");
  List.iter
    (fun s ->
      match req s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected wire error for %s" s)
    [
      {|{"query": "bogus"}|};
      {|{"no_query": 1}|};
      {|{"query": "analyse", "target": "nowhere"}|};
      {|{"query": "analyse", "l2": "yes"}|};
      {|{"query": "sim", "scenarios": [1]}|};
      {|[1,2]|};
    ]

let test_query_respond_deterministic () =
  let request =
    Q.Analyse
      {
        target = Q.Entry KM.Interrupt;
        build = Sel4.Build.improved;
        l2 = false;
        pin = false;
      }
  in
  let payload_of (line, status) =
    check_bool "status ok" true (status = E.Ok);
    J.to_compact (member_exn "payload" (parse_ok (String.trim line)))
  in
  let p1 = payload_of (Q.respond ~id:"a" request) in
  let p2 = payload_of (Q.respond ~id:"b" request) in
  (* elapsed_s differs between the envelopes; the payloads must not. *)
  check_string "payload bytes identical" p1 p2;
  let v = parse_ok p1 in
  check_string "wire target round-trips" "interrupt"
    (Option.get (J.to_string_opt (member_exn "target" v)));
  check_bool "bound positive" true
    (Option.get (J.to_int_opt (member_exn "wcet_cycles" v)) > 0)

(* --- serve_channels: the protocol loop --- *)

let test_serve_channels () =
  let input =
    String.concat "\n"
      [
        {|{"query": "analyse", "id": "q1", "target": "interrupt"}|};
        "";
        "this is not json";
        {|{"query": "bogus", "id": "q2"}|};
      ]
    ^ "\n"
  in
  let in_path = Filename.temp_file "serve-in" ".jsonl" in
  let out_path = Filename.temp_file "serve-out" ".jsonl" in
  let oc = open_out in_path in
  output_string oc input;
  close_out oc;
  let ic = open_in in_path in
  let out = open_out out_path in
  let all_well_formed = Serve.Server.serve_channels ic out in
  close_in ic;
  close_out out;
  check_bool "malformed input clears the flag" false all_well_formed;
  let ic = open_in out_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  check_int "one response per non-blank request" 3 (List.length lines);
  let status_of line =
    Option.get (J.to_string_opt (member_exn "status" (parse_ok line)))
  in
  check_string "well-formed query ok" "ok" (status_of (List.nth lines 0));
  check_string "id echoed" "q1"
    (Option.get (J.to_string_opt (member_exn "id" (parse_ok (List.nth lines 0)))));
  check_string "non-JSON line errors" "error" (status_of (List.nth lines 1));
  check_string "unknown query errors" "error" (status_of (List.nth lines 2));
  check_string "bad query echoes id" "q2"
    (Option.get (J.to_string_opt (member_exn "id" (parse_ok (List.nth lines 2)))));
  Sys.remove in_path;
  Sys.remove out_path

(* --- the on-disk cache --- *)

let test_disk_roundtrip () =
  DC.set_dir (fresh_dir ());
  let p = Lazy.force persisted_sample in
  let before = DC.stats () in
  check_bool "miss before store" true (DC.load ~key:"k1" () = None);
  DC.store ~key:"k1" p;
  (match DC.load ~key:"k1" () with
  | None -> Alcotest.fail "stored entry should load"
  | Some p' ->
      check_int "wcet survives" p.Wcet.Ipet.ps_wcet p'.Wcet.Ipet.ps_wcet;
      check_int "solution length survives"
        (Array.length p.Wcet.Ipet.ps_ilp_solution)
        (Array.length p'.Wcet.Ipet.ps_ilp_solution);
      check_bool "binding constraints survive" true
        (p.Wcet.Ipet.ps_binding_constraints
        = p'.Wcet.Ipet.ps_binding_constraints));
  check_bool "other keys still miss" true (DC.load ~key:"k2" () = None);
  let after = DC.stats () in
  check_int "one store" 1 (after.DC.dc_stores - before.DC.dc_stores);
  check_int "one hit" 1 (after.DC.dc_hits - before.DC.dc_hits);
  check_int "two misses" 2 (after.DC.dc_misses - before.DC.dc_misses);
  check_int "no errors" 0 (after.DC.dc_errors - before.DC.dc_errors)

let test_disk_version_invalidation () =
  DC.set_dir (fresh_dir ());
  let p = Lazy.force persisted_sample in
  DC.store ~version:1 ~key:"k" p;
  let before = DC.stats () in
  check_bool "future version misses" true (DC.load ~version:2 ~key:"k" () = None);
  let after = DC.stats () in
  check_int "stale version is a miss, not an error" 0
    (after.DC.dc_errors - before.DC.dc_errors);
  check_bool "same version still hits" true (DC.load ~version:1 ~key:"k" () <> None)

let corrupt_with path f =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (f contents);
  close_out oc

let test_disk_corruption_recovery () =
  let p = Lazy.force persisted_sample in
  let cases =
    [
      ("truncated", fun s -> String.sub s 0 (String.length s / 2));
      ( "flipped blob byte",
        fun s ->
          let b = Bytes.of_string s in
          let i = String.length s - 1 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
          Bytes.to_string b );
      ("garbage header", fun s -> "garbage\n" ^ s);
      ("empty", fun _ -> "");
    ]
  in
  List.iter
    (fun (name, mangle) ->
      DC.set_dir (fresh_dir ());
      DC.store ~key:"k" p;
      let path = Filename.concat (DC.dir ()) (Sys.readdir (DC.dir ())).(0) in
      corrupt_with path mangle;
      let before = DC.stats () in
      check_bool (name ^ " loads as miss") true (DC.load ~key:"k" () = None);
      let after = DC.stats () in
      check_int (name ^ " counted as error") 1
        (after.DC.dc_errors - before.DC.dc_errors);
      check_bool (name ^ " entry dropped") false (Sys.file_exists path);
      (* The recompute path stores again and the entry is healthy. *)
      DC.store ~key:"k" p;
      check_bool (name ^ " recovered") true (DC.load ~key:"k" () <> None))
    cases

let test_disk_concurrent_writers () =
  DC.set_dir (fresh_dir ());
  let p = Lazy.force persisted_sample in
  let writers = 4 and rounds = 20 in
  let domains =
    List.init writers (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to rounds do
              DC.store ~key:"shared" p;
              if (d + i) mod 3 = 0 then ignore (DC.load ~key:"shared" ())
            done))
  in
  List.iter Domain.join domains;
  (* Readers racing the writers above never see a torn entry (that would
     have counted an error and deleted it); the final entry is intact. *)
  match DC.load ~key:"shared" () with
  | None -> Alcotest.fail "entry lost after concurrent writes"
  | Some p' -> check_int "intact payload" p.Wcet.Ipet.ps_wcet p'.Wcet.Ipet.ps_wcet

let test_disk_eviction () =
  DC.set_dir (fresh_dir ());
  let p = Lazy.force persisted_sample in
  Unix.putenv "SEL4RT_CACHE_MAX_BYTES" "1";
  let before = DC.stats () in
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SEL4RT_CACHE_MAX_BYTES" "")
    (fun () ->
      DC.store ~key:"a" p;
      DC.store ~key:"b" p);
  let after = DC.stats () in
  check_bool "eviction ran" true (after.DC.dc_evictions - before.DC.dc_evictions >= 1);
  let remaining =
    Array.to_list (Sys.readdir (DC.dir ()))
    |> List.filter (fun n -> Filename.check_suffix n ".an")
  in
  check_bool "cap enforced" true (List.length remaining <= 1)

(* --- persistence through Analysis_cache --- *)

(* A configuration no other suite in this binary analyses, so the
   in-memory memo can be reset and exercised in isolation. *)
let private_ctx () =
  Sel4_rt.Analysis_ctx.make ~config:Hw.Config.with_l2
    ~build:Sel4.Build.original ()

let test_memo_disk_warm_start () =
  DC.set_dir (fresh_dir ());
  DC.install ();
  Fun.protect ~finally:DC.uninstall (fun () ->
      AC.reset ();
      let cold = Sel4_rt.Response_time.computed (private_ctx ()) KM.Interrupt in
      let s = AC.stats () in
      check_int "cold run solves" 1 s.AC.misses;
      check_int "cold run has no disk hits" 0 s.AC.disk_hits;
      (* A fresh memo (fresh process, same disk): the result must come
         back from disk with zero cold solves and the identical bound. *)
      AC.reset ();
      let warm = Sel4_rt.Response_time.computed (private_ctx ()) KM.Interrupt in
      let s = AC.stats () in
      check_int "warm run never solves" 0 s.AC.misses;
      check_int "warm run disk hit" 1 s.AC.disk_hits;
      check_int "bit-identical bound" cold.Wcet.Ipet.wcet warm.Wcet.Ipet.wcet;
      check_bool "block counts identical" true
        (cold.Wcet.Ipet.block_counts = warm.Wcet.Ipet.block_counts);
      check_bool "binding constraints identical" true
        (cold.Wcet.Ipet.binding_constraints
        = warm.Wcet.Ipet.binding_constraints);
      check_int "solver stats identical" cold.Wcet.Ipet.lp_solves
        warm.Wcet.Ipet.lp_solves)

(* The same contract across a real process boundary: a child process
   (this binary, re-executed with SEL4RT_SERVE_CHILD=populate) fills the
   disk cache and prints its bound; the parent reads it back without a
   single solve. *)
let child_env_var = "SEL4RT_SERVE_CHILD"

let run_populate_child () =
  DC.install ();
  let r = Sel4_rt.Response_time.computed (private_ctx ()) KM.Interrupt in
  print_int r.Wcet.Ipet.wcet;
  print_newline ();
  exit (if AC.(stats ()).AC.misses = 1 then 0 else 3)

let test_cross_process_round_trip () =
  let dir = fresh_dir () in
  let out = Filename.temp_file "serve-child" ".out" in
  Unix.putenv "SEL4RT_CACHE_DIR" dir;
  Unix.putenv child_env_var "populate";
  let rc =
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv child_env_var "";
        Unix.putenv "SEL4RT_CACHE_DIR" "")
      (fun () ->
        Sys.command
          (Printf.sprintf "%s > %s"
             (Filename.quote Sys.executable_name)
             (Filename.quote out)))
  in
  check_int "child populated the cache and solved exactly once" 0 rc;
  let ic = open_in out in
  let child_bound = int_of_string (String.trim (input_line ic)) in
  close_in ic;
  Sys.remove out;
  DC.set_dir dir;
  DC.install ();
  Fun.protect ~finally:DC.uninstall (fun () ->
      AC.reset ();
      let r = Sel4_rt.Response_time.computed (private_ctx ()) KM.Interrupt in
      let s = AC.stats () in
      check_int "parent run never solves" 0 s.AC.misses;
      check_int "parent run reads the child's entry" 1 s.AC.disk_hits;
      check_int "bound identical across processes" child_bound r.Wcet.Ipet.wcet)

(* --- warm start and rehydration at the Ipet layer --- *)

let test_rehydrate_and_warm_start_identity () =
  let spec = KM.spec Sel4.Build.improved KM.Syscall in
  let prepared = Wcet.Ipet.prepare ~config:Hw.Config.default spec in
  let cold = Wcet.Ipet.analyse_prepared prepared in
  (* Rehydration (the disk-hit path) reconstitutes the full result. *)
  let r = Wcet.Ipet.rehydrate prepared (Wcet.Ipet.to_persisted cold) in
  check_int "rehydrated wcet" cold.Wcet.Ipet.wcet r.Wcet.Ipet.wcet;
  check_bool "rehydrated counts" true
    (cold.Wcet.Ipet.block_counts = r.Wcet.Ipet.block_counts);
  check_bool "rehydrated solution" true
    (cold.Wcet.Ipet.ilp_solution = r.Wcet.Ipet.ilp_solution);
  check_bool "rehydrated edges" true
    (cold.Wcet.Ipet.edge_counts = r.Wcet.Ipet.edge_counts);
  (* Seeding branch-and-bound with the persisted optimal basis must
     reproduce the cold bound bit-identically. *)
  let warm =
    Wcet.Ipet.analyse_prepared ~warm_start:cold.Wcet.Ipet.ilp_solution prepared
  in
  check_int "warm-started bound identical" cold.Wcet.Ipet.wcet
    warm.Wcet.Ipet.wcet;
  check_bool "warm-started optimum identical" true
    (cold.Wcet.Ipet.block_counts = warm.Wcet.Ipet.block_counts)

let () =
  (* The cross-process test re-executes this binary as a cache-populate
     child; the guard must run before Alcotest takes over. *)
  (match Sys.getenv_opt child_env_var with
  | Some "populate" -> run_populate_child ()
  | _ -> ());
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "malformed" `Quick test_json_malformed;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "schema pin" `Quick test_envelope_schema;
          Alcotest.test_case "no id / bad payload" `Quick
            test_envelope_no_id_and_bad_payload;
          Alcotest.test_case "speedup field omitted at 1 domain" `Quick
            test_envelope_speedup_field;
        ] );
      ( "query",
        [
          Alcotest.test_case "wire parsing" `Quick test_query_of_json;
          Alcotest.test_case "respond deterministic" `Quick
            test_query_respond_deterministic;
          Alcotest.test_case "serve_channels protocol" `Quick
            test_serve_channels;
        ] );
      ( "disk_cache",
        [
          Alcotest.test_case "roundtrip" `Quick test_disk_roundtrip;
          Alcotest.test_case "version invalidation" `Quick
            test_disk_version_invalidation;
          Alcotest.test_case "corruption recovery" `Quick
            test_disk_corruption_recovery;
          Alcotest.test_case "concurrent writers" `Quick
            test_disk_concurrent_writers;
          Alcotest.test_case "eviction cap" `Quick test_disk_eviction;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "memo warm start via disk" `Quick
            test_memo_disk_warm_start;
          Alcotest.test_case "cross-process roundtrip" `Quick
            test_cross_process_round_trip;
          Alcotest.test_case "rehydrate and warm start identity" `Quick
            test_rehydrate_and_warm_start_identity;
        ] );
    ]
