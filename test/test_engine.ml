(* Tests of the analysis engine itself: the memo cache must be invisible
   (cached results identical to fresh ones), and the domain pool must be
   deterministic (batch results identical to the serial path, run after
   run), per the correctness claims in DESIGN.md's engine section. *)

module KM = Sel4_rt.Kernel_model
module AC = Sel4_rt.Analysis_cache
module P = Sel4_rt.Parallel

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_int_list = Alcotest.(check (list int))

let builds = [ ("improved", Sel4.Build.improved); ("original", Sel4.Build.original) ]
let configs = [ ("L2 off", Hw.Config.default); ("L2 on", Hw.Config.with_l2) ]

let fresh ~config build entry =
  Wcet.Ipet.analyse ~config (KM.spec build entry)

(* Every observable field of the result except the timing must be
   identical whether it came from the cache or a from-scratch pipeline
   run. *)
let same_result label (a : Wcet.Ipet.result) (b : Wcet.Ipet.result) =
  check_int (label ^ ": wcet") a.Wcet.Ipet.wcet b.Wcet.Ipet.wcet;
  check_int_list
    (label ^ ": block_counts")
    (Array.to_list a.Wcet.Ipet.block_counts)
    (Array.to_list b.Wcet.Ipet.block_counts);
  check_int_list
    (label ^ ": ilp_solution")
    (Array.to_list a.Wcet.Ipet.ilp_solution)
    (Array.to_list b.Wcet.Ipet.ilp_solution);
  check_int (label ^ ": ilp_vars") a.Wcet.Ipet.ilp_vars b.Wcet.Ipet.ilp_vars;
  check_int
    (label ^ ": ilp_constraints")
    a.Wcet.Ipet.ilp_constraints b.Wcet.Ipet.ilp_constraints;
  check_int (label ^ ": bb_nodes") a.Wcet.Ipet.bb_nodes b.Wcet.Ipet.bb_nodes;
  check_int (label ^ ": lp_solves") a.Wcet.Ipet.lp_solves b.Wcet.Ipet.lp_solves

(* --- cache transparency: cached == fresh for every entry x build --- *)

let test_cached_equals_fresh () =
  AC.reset ();
  List.iter
    (fun (bname, build) ->
      List.iter
        (fun entry ->
          let config = Hw.Config.default in
          let label = Fmt.str "%s/%s" bname (KM.entry_name entry) in
          let cached = AC.computed ~config build entry in
          let cached_again = AC.computed ~config build entry in
          same_result label cached (fresh ~config build entry);
          same_result (label ^ " (second lookup)") cached cached_again)
        KM.entry_points)
    builds

let test_cache_counts_hits () =
  AC.reset ();
  let config = Hw.Config.with_l2 in
  let s0 = AC.stats () in
  check_int "counters start at zero" 0 (s0.AC.hits + s0.AC.misses);
  ignore (AC.computed ~config Sel4.Build.improved KM.Interrupt);
  ignore (AC.computed ~config Sel4.Build.improved KM.Interrupt);
  ignore (AC.computed ~config Sel4.Build.improved KM.Interrupt);
  let s = AC.stats () in
  check_int "one miss" 1 s.AC.misses;
  check_int "two hits" 2 s.AC.hits;
  check_bool "hit rate" true (abs_float (AC.hit_rate s -. (2.0 /. 3.0)) < 1e-9);
  AC.reset ();
  let s = AC.stats () in
  check_int "reset zeroes counters" 0 (s.AC.hits + s.AC.misses)

let test_variants_share_prefix () =
  AC.reset ();
  let config = Hw.Config.default in
  ignore (AC.computed ~config Sel4.Build.improved KM.Syscall);
  ignore (AC.computed ~use_constraints:false ~config Sel4.Build.improved KM.Syscall);
  let forced = KM.realisable_path ~params:KM.default_params KM.Syscall in
  ignore (AC.computed ~forced ~config Sel4.Build.improved KM.Syscall);
  let s = AC.stats () in
  check_int "three distinct ILP variants" 3 s.AC.misses;
  (* All three share one prepared prefix: one prefix miss, two prefix hits. *)
  check_int "one prefix computation" 1 s.AC.prefix_misses;
  check_int "prefix shared by the other variants" 2 s.AC.prefix_hits

let test_disabled_cache_bypasses_tables () =
  AC.reset ();
  AC.set_enabled false;
  Fun.protect ~finally:(fun () -> AC.set_enabled true) @@ fun () ->
  let config = Hw.Config.default in
  let r = AC.computed ~config Sel4.Build.improved KM.Interrupt in
  same_result "disabled" r (fresh ~config Sel4.Build.improved KM.Interrupt);
  let s = AC.stats () in
  check_int "no lookups recorded" 0 (s.AC.hits + s.AC.misses)

(* --- warm-starting cannot change the optimum --- *)

let test_warm_start_same_optimum () =
  AC.reset ();
  let config = Hw.Config.default in
  (* Constrained first so the unconstrained solve takes the warm start. *)
  let constrained = AC.computed ~config Sel4.Build.improved KM.Syscall in
  let warm = AC.computed ~use_constraints:false ~config Sel4.Build.improved KM.Syscall in
  AC.reset ();
  (* Cold: unconstrained without a cached constrained sibling. *)
  let cold = AC.computed ~use_constraints:false ~config Sel4.Build.improved KM.Syscall in
  check_int "warm-started optimum" cold.Wcet.Ipet.wcet warm.Wcet.Ipet.wcet;
  check_bool "relaxation dominates" true
    (warm.Wcet.Ipet.wcet >= constrained.Wcet.Ipet.wcet)

(* --- parallel pool: determinism, ordering, exceptions --- *)

let test_pool_map_matches_serial () =
  let pool = P.create ~domains:4 () in
  Fun.protect ~finally:(fun () -> P.shutdown pool) @@ fun () ->
  let inputs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  check_int_list "order-preserving map" (List.map f inputs) (P.map pool f inputs)

let test_pool_exception_propagates () =
  let pool = P.create ~domains:3 () in
  Fun.protect ~finally:(fun () -> P.shutdown pool) @@ fun () ->
  check_bool "job exception reaches submitter" true
    (try
       ignore (P.map pool (fun x -> if x = 5 then failwith "boom" else x)
                 (List.init 10 Fun.id));
       false
     with Failure m -> m = "boom")

let test_pool_nested_map () =
  let pool = P.create ~domains:3 () in
  Fun.protect ~finally:(fun () -> P.shutdown pool) @@ fun () ->
  (* Outer jobs submit inner maps; workers fall back to serial execution
     rather than deadlocking on their own pool. *)
  let rows = P.map pool (fun i -> P.map pool (fun j -> (10 * i) + j) [ 1; 2; 3 ]) [ 1; 2 ] in
  check_int_list "nested flattened" [ 11; 12; 13; 21; 22; 23 ] (List.concat rows)

let test_parallel_experiments_equal_serial () =
  (* The whole-experiment property: batched analyses must reproduce the
     serial, cache-free numbers exactly, run after run. *)
  let run () =
    AC.reset ();
    List.concat_map
      (fun (_, config) ->
        List.map
          (fun entry ->
            Sel4_rt.Response_time.computed_cycles
              (Sel4_rt.Analysis_ctx.make ~config ())
              entry)
          KM.entry_points)
      configs
  in
  let parallel1 = run () in
  let parallel2 = run () in
  P.set_serial true;
  AC.set_enabled false;
  let serial =
    Fun.protect
      ~finally:(fun () ->
        AC.set_enabled true;
        P.set_serial false)
      run
  in
  check_int_list "parallel deterministic" parallel1 parallel2;
  check_int_list "parallel equals serial fresh" serial parallel1

(* --- bound decomposition (sel4rt explain) --- *)

(* The acceptance property of the decomposition: the per-block rows are a
   partition of the bound — exec + stall + pipeline sums to the WCET
   exactly, for every entry point, build and hardware config. *)
let test_profile_sums_to_bound () =
  List.iter
    (fun (bname, build) ->
      List.iter
        (fun (cname, config) ->
          let ctx = Sel4_rt.Analysis_ctx.make ~config ~build () in
          List.iter
            (fun entry ->
              let label = Fmt.str "%s/%s/%s" bname cname (KM.entry_name entry) in
              let p = Sel4_rt.Response_time.profile ctx entry in
              let bound = Sel4_rt.Response_time.computed_cycles ctx entry in
              check_bool (label ^ ": exact partition") true
                (Obs.Bound_profile.exact p);
              check_int (label ^ ": total = wcet") bound
                (Obs.Bound_profile.total p);
              check_int (label ^ ": components partition the total")
                (Obs.Bound_profile.total p)
                (Obs.Bound_profile.exec_total p
                + Obs.Bound_profile.stall_total p
                + Obs.Bound_profile.pipeline_total p);
              List.iter
                (fun (r : Obs.Bound_profile.row) ->
                  check_int
                    (Fmt.str "%s: row %s partitions" label
                       r.Obs.Bound_profile.r_label)
                    r.Obs.Bound_profile.r_cycles
                    (r.Obs.Bound_profile.r_exec + r.Obs.Bound_profile.r_stall
                   + r.Obs.Bound_profile.r_pipeline))
                p.Obs.Bound_profile.p_rows)
            KM.entry_points)
        configs)
    builds

(* The kernel_entry decomposition (what `sel4rt explain kernel_entry`
   prints) must sum to the interrupt-response bound. *)
let test_response_profile_sums_to_response_bound () =
  List.iter
    (fun (cname, config) ->
      let ctx = Sel4_rt.Analysis_ctx.make ~config () in
      let p = Sel4_rt.Response_time.interrupt_response_profile ctx in
      check_bool (cname ^ ": exact") true (Obs.Bound_profile.exact p);
      check_int
        (cname ^ ": total = response bound")
        (Sel4_rt.Response_time.interrupt_response_bound ctx)
        (Obs.Bound_profile.total p))
    configs

(* The pinned variant reroutes stall cycles, never execution: pinning may
   only shrink the stall component. *)
let test_pinned_profile_shrinks_stall () =
  let config = Hw.Config.with_pinning Hw.Config.with_l2 in
  let build = Sel4.Build.improved in
  let sel = Sel4_rt.Pinning.select build in
  let pins =
    {
      Sel4_rt.Response_time.code = sel.Sel4_rt.Pinning.code_lines;
      data = sel.Sel4_rt.Pinning.data_lines;
    }
  in
  let plain =
    Sel4_rt.Response_time.interrupt_response_profile
      (Sel4_rt.Analysis_ctx.make ~config:Hw.Config.with_l2 ~build ())
  in
  let pinned =
    Sel4_rt.Response_time.interrupt_response_profile
      (Sel4_rt.Analysis_ctx.make ~config ~pins ~build ())
  in
  check_bool "pinning tightens the bound" true
    (Obs.Bound_profile.total pinned <= Obs.Bound_profile.total plain);
  check_bool "pinned stall below plain stall" true
    (Obs.Bound_profile.stall_total pinned
    <= Obs.Bound_profile.stall_total plain)

(* Folded-stack export carries exactly the profile's cycles: flamegraph
   totals must agree with the bound. *)
let test_folded_sums_to_bound () =
  let ctx = Sel4_rt.Analysis_ctx.make ~config:Hw.Config.default () in
  let p = Sel4_rt.Response_time.interrupt_response_profile ctx in
  let folded = Obs.Bound_profile.to_folded p in
  let total =
    List.fold_left
      (fun acc line ->
        if String.trim line = "" then acc
        else
          match String.rindex_opt line ' ' with
          | None -> Alcotest.failf "malformed folded line %S" line
          | Some i ->
              acc
              + int_of_string
                  (String.sub line (i + 1) (String.length line - i - 1)))
      0
      (String.split_on_char '\n' folded)
  in
  check_int "folded lines sum to the bound" (Obs.Bound_profile.total p) total

let () =
  Alcotest.run "engine"
    [
      ( "cache",
        Alcotest.
          [
            test_case "cached equals fresh" `Slow test_cached_equals_fresh;
            test_case "hit counting" `Quick test_cache_counts_hits;
            test_case "variants share prefix" `Quick test_variants_share_prefix;
            test_case "disabled bypasses tables" `Quick
              test_disabled_cache_bypasses_tables;
            test_case "warm start same optimum" `Quick
              test_warm_start_same_optimum;
          ] );
      ( "pool",
        Alcotest.
          [
            test_case "map matches serial" `Quick test_pool_map_matches_serial;
            test_case "exceptions propagate" `Quick
              test_pool_exception_propagates;
            test_case "nested maps" `Quick test_pool_nested_map;
            test_case "experiments equal serial" `Slow
              test_parallel_experiments_equal_serial;
          ] );
      ( "explain",
        Alcotest.
          [
            test_case "profile sums to bound" `Slow test_profile_sums_to_bound;
            test_case "response profile sums to response bound" `Quick
              test_response_profile_sums_to_response_bound;
            test_case "pinning shrinks stall" `Quick
              test_pinned_profile_shrinks_stall;
            test_case "folded sums to bound" `Quick test_folded_sums_to_bound;
          ] );
    ]
