(* The soak simulator: the validation gate holds on a small campaign, and
   a campaign is a pure function of its seed — byte-identical whether the
   shards run serially or across domains. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* One small two-scenario campaign, reused across the tests below (the
   engine is deterministic, so recomputing it is just wall-clock). *)
let small ?seed () =
  Sim.run_campaign ?seed ~entries:1_200
    ~only:[ "ipc_pingpong"; "untyped_churn" ]
    ()

let test_gate_holds () =
  let r = small () in
  check_bool "campaign ok" true r.Sim.rp_ok;
  check_int "two scenarios x four builds" 8 (List.length r.Sim.rp_runs);
  List.iter
    (fun rr ->
      check_int
        (Fmt.str "%s/%s entries" rr.Sim.rr_scenario rr.Sim.rr_build)
        1_200 rr.Sim.rr_entries;
      check_bool "no violations" true (rr.Sim.rr_violations = []);
      check_bool "no invariant failures" true
        (rr.Sim.rr_invariant_failures = []);
      check_bool "interrupts delivered" true (rr.Sim.rr_deliveries > 0);
      check_bool "bound positive" true (rr.Sim.rr_bound > 0))
    r.Sim.rp_runs

let test_latency_stats_ordered () =
  let r = small () in
  List.iter
    (fun rr ->
      let s = rr.Sim.rr_latency in
      if s.Sim.ls_count > 0 then begin
        check_bool "min <= p50" true (s.Sim.ls_min <= s.Sim.ls_p50);
        check_bool "p50 <= p90" true (s.Sim.ls_p50 <= s.Sim.ls_p90);
        check_bool "p90 <= p99" true (s.Sim.ls_p90 <= s.Sim.ls_p99);
        check_bool "p99 <= p99.9" true (s.Sim.ls_p99 <= s.Sim.ls_p999);
        check_bool "p99.9 <= max" true (s.Sim.ls_p999 <= s.Sim.ls_max);
        check_bool "max within bound" true (s.Sim.ls_max <= rr.Sim.rr_bound);
        check_int "bucket counts sum to count" s.Sim.ls_count
          (List.fold_left (fun a (_, c) -> a + c) 0 s.Sim.ls_buckets)
      end)
    r.Sim.rp_runs

let test_same_seed_identical () =
  let a = Sim.report_json (small ()) in
  let b = Sim.report_json (small ()) in
  check_bool "same seed, identical report" true (a = b);
  let c = Sim.report_json (small ~seed:1 ()) in
  check_bool "different seed, different traffic" true (a <> c)

let test_serial_equals_parallel () =
  Sel4_rt.Parallel.set_serial true;
  let serial =
    Fun.protect
      ~finally:(fun () -> Sel4_rt.Parallel.set_serial false)
      (fun () -> Sim.report_json (small ()))
  in
  let parallel = Sim.report_json (small ()) in
  check_bool "byte-identical across domain counts" true (serial = parallel)

let test_scheduler_differential () =
  (* Same seed, same scenarios: every scheduler variant and the pinned
     build must pass the gate, and the per-build bounds must reflect the
     paper's ordering (lazy >= benno >= bitmap >= bitmap+pin). *)
  let r = small () in
  let bound_of label =
    match
      List.find_opt (fun rr -> rr.Sim.rr_build = label) r.Sim.rp_runs
    with
    | Some rr -> rr.Sim.rr_bound
    | None -> Alcotest.failf "missing build %s" label
  in
  check_bool "lazy bound dominates benno" true
    (bound_of "lazy" >= bound_of "benno");
  check_bool "benno bound dominates bitmap" true
    (bound_of "benno" >= bound_of "benno_bitmap");
  check_bool "pinning tightens the bound" true
    (bound_of "benno_bitmap" >= bound_of "benno_bitmap+pin")

(* The determinism contract, pinned to bytes: the seed-42 smoke report
   committed in sim_smoke_report.golden.json must be reproduced exactly,
   whatever the domain count, shard-merge strategy or invariant sampling
   period.  Any optimisation of the kernel-entry hot path that changes
   cache evolution, cycle accounting or PRNG order fails this test. *)
(* Declared as a dune dep, so it sits next to the built test binary
   (which is where [dune runtest] runs; [dune exec] may run elsewhere). *)
let golden_fixture =
  let beside_exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "sim_smoke_report.golden.json"
  in
  if Sys.file_exists beside_exe then beside_exe
  else "sim_smoke_report.golden.json"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden_smoke_report () =
  let golden = read_file golden_fixture in
  let actual = Sim.report_json (Sim.run_campaign ~smoke:true ()) in
  check_bool "seed-42 smoke report matches the committed golden bytes" true
    (actual = golden)

(* The streaming ordered fold (constant memory) and the collect-everything
   merge must agree to the byte, at one domain and at four. *)
let test_stream_equals_collect () =
  let report ~domains ~collect =
    let pool = Sel4_rt.Parallel.create ~domains () in
    Fun.protect
      ~finally:(fun () -> Sel4_rt.Parallel.shutdown pool)
      (fun () ->
        Sim.report_json
          (fst
             (Sim.run_campaign_timed ~pool ~entries:1_200
                ~only:[ "ipc_pingpong"; "untyped_churn" ]
                ~collect ())))
  in
  let stream1 = report ~domains:1 ~collect:false in
  let collect1 = report ~domains:1 ~collect:true in
  check_bool "streamed = collected at 1 domain" true (stream1 = collect1);
  let stream4 = report ~domains:4 ~collect:false in
  let collect4 = report ~domains:4 ~collect:true in
  check_bool "streamed = collected at 4 domains" true (stream4 = collect4);
  check_bool "1 domain = 4 domains" true (stream1 = stream4)

(* Invariant checks charge no simulated cycles: the sampling period must
   never leak into the report bytes. *)
let test_inv_every_invisible () =
  let json inv_every =
    Sim.report_json
      (fst
         (Sim.run_campaign_timed ~entries:1_200 ~only:[ "ipc_pingpong" ]
            ~inv_every ()))
  in
  check_bool "inv-every 64 = inv-every 512" true (json 64 = json 512);
  check_bool "inv-every off = inv-every 512" true (json 0 = json 512)

(* Forensics is pure observation: pass 1 tracks the worst deliveries
   without drawing from the PRNG or charging cycles, pass 2 replays in
   separate shard instances — so the smoke report must stay byte-identical
   to the committed golden fixture with forensics enabled. *)
let test_forensics_golden_identity () =
  let golden = read_file golden_fixture in
  let report, _, forensics = Sim.run_campaign_forensics ~smoke:true () in
  check_bool "forensics leaves the smoke report byte-identical" true
    (Sim.report_json report = golden);
  let tail = forensics.Sim.fo_tail in
  check_bool "tail report non-empty" true
    (tail.Obs.Tail_report.t_deliveries <> []);
  List.iter
    (fun (d : Obs.Tail_report.delivery) ->
      check_bool "window captured" true (d.Obs.Tail_report.d_window <> []);
      check_bool "sections sum to latency" true
        (List.fold_left
           (fun a (_, c) -> a + c)
           0 d.Obs.Tail_report.d_sections
        = d.Obs.Tail_report.d_latency);
      check_bool "delivery event inside window" true
        (List.exists
           (fun (e : Obs.Trace.event) ->
             match e.Obs.Trace.kind with
             | Obs.Trace.Irq_deliver { line; latency } ->
                 line = d.Obs.Tail_report.d_line
                 && latency = d.Obs.Tail_report.d_latency
                 && e.Obs.Trace.at = d.Obs.Tail_report.d_delivered_at
             | _ -> false)
           d.Obs.Tail_report.d_window))
    tail.Obs.Tail_report.t_deliveries

(* The replayed worst window must agree with pass 1's measurements, and
   the gap report must align it against the bound decomposition. *)
let test_forensics_gap_alignment () =
  let report, _, forensics =
    Sim.run_campaign_forensics ~entries:1_200
      ~only:[ "ipc_pingpong"; "untyped_churn" ]
      ()
  in
  check_bool "one gap per run" true
    (List.length forensics.Sim.fo_gaps = List.length report.Sim.rp_runs);
  List.iter
    (fun (g : Obs.Gap_report.t) ->
      let rr =
        List.find
          (fun rr ->
            rr.Sim.rr_scenario = g.Obs.Gap_report.g_scenario
            && rr.Sim.rr_build = g.Obs.Gap_report.g_build)
          report.Sim.rp_runs
      in
      check_int "gap bound = run bound" rr.Sim.rr_bound
        g.Obs.Gap_report.g_bound;
      check_int "gap observed = run single-outstanding max"
        rr.Sim.rr_latency.Sim.ls_max g.Obs.Gap_report.g_observed_max;
      check_int "headroom arithmetic"
        (g.Obs.Gap_report.g_bound - g.Obs.Gap_report.g_observed_max)
        g.Obs.Gap_report.g_headroom;
      check_bool "charged funcs cover the bound" true
        (List.fold_left
           (fun a (f : Obs.Gap_report.func_gap) ->
             a + f.Obs.Gap_report.g_bound_cycles)
           0 g.Obs.Gap_report.g_funcs
        = g.Obs.Gap_report.g_bound);
      check_bool "unexecuted cycles consistent" true
        (List.fold_left
           (fun a (f : Obs.Gap_report.func_gap) ->
             if f.Obs.Gap_report.g_executed then a
             else a + f.Obs.Gap_report.g_bound_cycles)
           0 g.Obs.Gap_report.g_funcs
        = g.Obs.Gap_report.g_unexecuted_cycles))
    forensics.Sim.fo_gaps;
  (* every build variant got a decomposition, and each sums to its bound *)
  List.iter
    (fun (label, p) ->
      let rr = List.find (fun rr -> rr.Sim.rr_build = label) report.Sim.rp_runs in
      check_bool
        (Fmt.str "profile %s exact" label)
        true
        (Obs.Bound_profile.exact p);
      check_int
        (Fmt.str "profile %s total = bound" label)
        rr.Sim.rr_bound
        (Obs.Bound_profile.total p))
    forensics.Sim.fo_profiles

let test_report_json_shape () =
  let r = small () in
  let json = Sim.report_json r in
  check_bool "has seed" true
    (String.length json > 2 && json.[0] = '{');
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and jl = String.length json in
        let rec scan i = i + nl <= jl && (String.sub json i nl = needle || scan (i + 1)) in
        scan 0
      in
      check_bool (Fmt.str "json mentions %s" needle) true found)
    [
      "\"ok\": true";
      "\"scenario\": \"ipc_pingpong\"";
      "\"build\": \"benno_bitmap+pin\"";
      "\"p99\"";
      "\"margin_percent\"";
      "\"buckets\"";
    ]

let () =
  Alcotest.run "sim"
    [
      ( "soak",
        Alcotest.
          [
            test_case "gate holds" `Quick test_gate_holds;
            test_case "latency stats ordered" `Quick test_latency_stats_ordered;
            test_case "same seed identical" `Quick test_same_seed_identical;
            test_case "serial equals parallel" `Slow test_serial_equals_parallel;
            test_case "scheduler differential" `Quick test_scheduler_differential;
            test_case "golden smoke report" `Slow test_golden_smoke_report;
            test_case "stream equals collect" `Slow test_stream_equals_collect;
            test_case "inv-every invisible" `Quick test_inv_every_invisible;
            test_case "forensics golden identity" `Slow
              test_forensics_golden_identity;
            test_case "forensics gap alignment" `Slow
              test_forensics_gap_alignment;
            test_case "report json shape" `Quick test_report_json_shape;
          ] );
    ]
