(* The soak simulator: the validation gate holds on a small campaign, and
   a campaign is a pure function of its seed — byte-identical whether the
   shards run serially or across domains. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* One small two-scenario campaign, reused across the tests below (the
   engine is deterministic, so recomputing it is just wall-clock). *)
let small ?seed () =
  Sim.run_campaign ?seed ~entries:1_200
    ~only:[ "ipc_pingpong"; "untyped_churn" ]
    ()

let test_gate_holds () =
  let r = small () in
  check_bool "campaign ok" true r.Sim.rp_ok;
  check_int "two scenarios x four builds" 8 (List.length r.Sim.rp_runs);
  List.iter
    (fun rr ->
      check_int
        (Fmt.str "%s/%s entries" rr.Sim.rr_scenario rr.Sim.rr_build)
        1_200 rr.Sim.rr_entries;
      check_bool "no violations" true (rr.Sim.rr_violations = []);
      check_bool "no invariant failures" true
        (rr.Sim.rr_invariant_failures = []);
      check_bool "interrupts delivered" true (rr.Sim.rr_deliveries > 0);
      check_bool "bound positive" true (rr.Sim.rr_bound > 0))
    r.Sim.rp_runs

let test_latency_stats_ordered () =
  let r = small () in
  List.iter
    (fun rr ->
      let s = rr.Sim.rr_latency in
      if s.Sim.ls_count > 0 then begin
        check_bool "min <= p50" true (s.Sim.ls_min <= s.Sim.ls_p50);
        check_bool "p50 <= p90" true (s.Sim.ls_p50 <= s.Sim.ls_p90);
        check_bool "p90 <= p99" true (s.Sim.ls_p90 <= s.Sim.ls_p99);
        check_bool "p99 <= p99.9" true (s.Sim.ls_p99 <= s.Sim.ls_p999);
        check_bool "p99.9 <= max" true (s.Sim.ls_p999 <= s.Sim.ls_max);
        check_bool "max within bound" true (s.Sim.ls_max <= rr.Sim.rr_bound);
        check_int "bucket counts sum to count" s.Sim.ls_count
          (List.fold_left (fun a (_, c) -> a + c) 0 s.Sim.ls_buckets)
      end)
    r.Sim.rp_runs

let test_same_seed_identical () =
  let a = Sim.report_json (small ()) in
  let b = Sim.report_json (small ()) in
  check_bool "same seed, identical report" true (a = b);
  let c = Sim.report_json (small ~seed:1 ()) in
  check_bool "different seed, different traffic" true (a <> c)

let test_serial_equals_parallel () =
  Sel4_rt.Parallel.set_serial true;
  let serial =
    Fun.protect
      ~finally:(fun () -> Sel4_rt.Parallel.set_serial false)
      (fun () -> Sim.report_json (small ()))
  in
  let parallel = Sim.report_json (small ()) in
  check_bool "byte-identical across domain counts" true (serial = parallel)

let test_scheduler_differential () =
  (* Same seed, same scenarios: every scheduler variant and the pinned
     build must pass the gate, and the per-build bounds must reflect the
     paper's ordering (lazy >= benno >= bitmap >= bitmap+pin). *)
  let r = small () in
  let bound_of label =
    match
      List.find_opt (fun rr -> rr.Sim.rr_build = label) r.Sim.rp_runs
    with
    | Some rr -> rr.Sim.rr_bound
    | None -> Alcotest.failf "missing build %s" label
  in
  check_bool "lazy bound dominates benno" true
    (bound_of "lazy" >= bound_of "benno");
  check_bool "benno bound dominates bitmap" true
    (bound_of "benno" >= bound_of "benno_bitmap");
  check_bool "pinning tightens the bound" true
    (bound_of "benno_bitmap" >= bound_of "benno_bitmap+pin")

let test_report_json_shape () =
  let r = small () in
  let json = Sim.report_json r in
  check_bool "has seed" true
    (String.length json > 2 && json.[0] = '{');
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and jl = String.length json in
        let rec scan i = i + nl <= jl && (String.sub json i nl = needle || scan (i + 1)) in
        scan 0
      in
      check_bool (Fmt.str "json mentions %s" needle) true found)
    [
      "\"ok\": true";
      "\"scenario\": \"ipc_pingpong\"";
      "\"build\": \"benno_bitmap+pin\"";
      "\"p99\"";
      "\"margin_percent\"";
      "\"buckets\"";
    ]

let () =
  Alcotest.run "sim"
    [
      ( "soak",
        Alcotest.
          [
            test_case "gate holds" `Quick test_gate_holds;
            test_case "latency stats ordered" `Quick test_latency_stats_ordered;
            test_case "same seed identical" `Quick test_same_seed_identical;
            test_case "serial equals parallel" `Slow test_serial_equals_parallel;
            test_case "scheduler differential" `Quick test_scheduler_differential;
            test_case "report json shape" `Quick test_report_json_shape;
          ] );
    ]
