(* Tests for the TAC mini-language: interpreter, SSA construction and
   slicing.  The key properties mirror what the paper's Section 5.3
   pipeline relies on: SSA preserves semantics, and a slice taken for the
   branch conditions preserves every block visit count. *)

module L = Tac.Lang

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* count-up loop:
     entry: i := 0; acc := 0; goto header
     header: if i < n goto body else exit
     body: acc := acc + i; mem[i] := acc; i := i + 1; goto header
     exit: halt *)
let countup ~lo ~hi =
  {
    L.entry = "entry";
    params = [ { L.name = "n"; lo; hi } ];
    blocks =
      [
        {
          L.label = "entry";
          instrs = [ L.Assign ("i", L.Imm 0); L.Assign ("acc", L.Imm 0) ];
          term = L.Jump "header";
        };
        {
          L.label = "header";
          instrs = [];
          term = L.Branch (L.Lt, L.Reg "i", L.Reg "n", "body", "exit");
        };
        {
          L.label = "body";
          instrs =
            [
              L.Binop ("acc", L.Add, L.Reg "acc", L.Reg "i");
              L.Store (L.Reg "i", L.Reg "acc");
              L.Binop ("i", L.Add, L.Reg "i", L.Imm 1);
            ];
          term = L.Jump "header";
        };
        { L.label = "exit"; instrs = []; term = L.Halt };
      ];
  }

let test_interp_basics () =
  let program = countup ~lo:0 ~hi:10 in
  let state, trace = Tac.Interp.run program ~inputs:[ ("n", 5) ] in
  check_int "loop ran n times" 5 (Tac.Interp.visits trace "body");
  check_int "header tested n+1 times" 6 (Tac.Interp.visits trace "header");
  check_int "acc = 0+1+2+3+4" 10 (Hashtbl.find state.Tac.Interp.regs "acc");
  check_int "mem[4] stored" 10 (Hashtbl.find state.Tac.Interp.memory 4);
  check_bool "halted" true trace.Tac.Interp.halted

let test_interp_step_limit () =
  let forever =
    {
      L.entry = "spin";
      params = [];
      blocks = [ { L.label = "spin"; instrs = []; term = L.Jump "spin" } ];
    }
  in
  Alcotest.check_raises "diverges" Tac.Interp.Step_limit (fun () ->
      ignore (Tac.Interp.run ~max_steps:100 forever ~inputs:[]))

let test_validate () =
  let bad =
    {
      L.entry = "a";
      params = [];
      blocks = [ { L.label = "a"; instrs = []; term = L.Jump "nowhere" } ];
    }
  in
  check_bool "malformed rejected" true
    (try
       L.validate bad;
       false
     with L.Malformed _ -> true)

(* --- SSA --- *)

let ssa_defs (t : Tac.Ssa.t) =
  List.concat_map
    (fun (b : Tac.Ssa.ssa_block) ->
      List.map (fun (p : Tac.Ssa.phi) -> p.Tac.Ssa.dest) b.Tac.Ssa.phis
      @ List.concat_map L.defs_of_instr b.Tac.Ssa.instrs)
    t.Tac.Ssa.blocks

let test_ssa_single_assignment () =
  let ssa = Tac.Ssa.convert (countup ~lo:0 ~hi:10) in
  let defs = ssa_defs ssa in
  let sorted = List.sort compare defs in
  let rec no_dups = function
    | a :: b :: _ when a = b -> false
    | _ :: rest -> no_dups rest
    | [] -> true
  in
  check_bool "each register assigned once" true (no_dups sorted)

let test_ssa_phi_at_header () =
  let ssa = Tac.Ssa.convert (countup ~lo:0 ~hi:10) in
  let header = Tac.Ssa.block_exn ssa "header" in
  (* i and acc both flow around the loop: two phis at the header. *)
  check_int "phis at loop header" 2 (List.length header.Tac.Ssa.phis);
  List.iter
    (fun (p : Tac.Ssa.phi) ->
      check_int "two sources" 2 (List.length p.Tac.Ssa.sources))
    header.Tac.Ssa.phis

let visits_tbl_to_sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let test_ssa_preserves_visits () =
  let program = countup ~lo:0 ~hi:10 in
  let ssa = Tac.Ssa.convert program in
  for n = 0 to 10 do
    let _, trace = Tac.Interp.run program ~inputs:[ ("n", n) ] in
    let ssa_visits = Tac.Ssa.run ssa ~inputs:[ ("n", n) ] in
    Alcotest.(check (list (pair string int)))
      (Fmt.str "visits agree for n=%d" n)
      (visits_tbl_to_sorted trace.Tac.Interp.visits)
      (visits_tbl_to_sorted ssa_visits)
  done

(* --- random structured TAC programs --- *)

let reg_pool = [| "a"; "b"; "c"; "i"; "j" |]

let gen_operand =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> L.Reg reg_pool.(i)) (int_bound (Array.length reg_pool - 1));
        map (fun n -> L.Imm n) (int_range (-8) 8);
      ])

let gen_simple_instr =
  QCheck.Gen.(
    let* dst = int_bound (Array.length reg_pool - 1) in
    let* op = oneofl [ L.Add; L.Sub; L.Mul; L.And; L.Or; L.Xor ] in
    let* a = gen_operand in
    let* b = gen_operand in
    oneof
      [
        return (L.Binop (reg_pool.(dst), op, a, b));
        return (L.Assign (reg_pool.(dst), a));
        (let* addr = int_range 0 15 in
         return (L.Store (L.Imm addr, a)));
        (let* addr = int_range 0 15 in
         return (L.Load (reg_pool.(dst), L.Imm addr)));
      ])

type construct =
  | Straight of L.instr list
  | IfElse of L.cmp * L.operand * L.operand * L.instr list * L.instr list
  | CountLoop of int * L.instr list  (* trips, body extras *)

let gen_construct =
  QCheck.Gen.(
    let* kind = int_range 0 2 in
    match kind with
    | 0 ->
        let* instrs = list_size (int_range 1 4) gen_simple_instr in
        return (Straight instrs)
    | 1 ->
        let* c = oneofl [ L.Eq; L.Ne; L.Lt; L.Le; L.Gt; L.Ge ] in
        let* a = gen_operand in
        let* b = gen_operand in
        let* t = list_size (int_range 0 3) gen_simple_instr in
        let* e = list_size (int_range 0 3) gen_simple_instr in
        return (IfElse (c, a, b, t, e))
    | _ ->
        let* trips = int_range 0 5 in
        let* body = list_size (int_range 0 3) gen_simple_instr in
        return (CountLoop (trips, body)))

let gen_constructs = QCheck.Gen.(list_size (int_range 1 5) gen_construct)

(* Loop counters use dedicated registers (never in [reg_pool]) so that the
   random body cannot interfere with termination. *)
let build_program constructs =
  let blocks = ref [] in
  let counter = ref 0 in
  let fresh p =
    incr counter;
    Fmt.str "%s%d" p !counter
  in
  let emit label instrs term = blocks := { L.label; instrs; term } :: !blocks in
  let rec chain label = function
    | [] ->
        emit label [] L.Halt
    | Straight instrs :: rest ->
        let next = fresh "blk" in
        emit label instrs (L.Jump next);
        chain next rest
    | IfElse (c, a, b, t, e) :: rest ->
        let lt = fresh "then" and le = fresh "else" and j = fresh "join" in
        emit label [] (L.Branch (c, a, b, lt, le));
        emit lt t (L.Jump j);
        emit le e (L.Jump j);
        chain j rest
    | CountLoop (trips, body) :: rest ->
        let k = fresh "k" in
        let pre = fresh "pre" and h = fresh "hdr" and bd = fresh "body" in
        let after = fresh "after" in
        emit label [] (L.Jump pre);
        emit pre [ L.Assign (k, L.Imm 0) ] (L.Jump h);
        emit h [] (L.Branch (L.Lt, L.Reg k, L.Imm trips, bd, after));
        emit bd (body @ [ L.Binop (k, L.Add, L.Reg k, L.Imm 1) ]) (L.Jump h);
        chain after rest
  in
  chain "entry" constructs;
  {
    L.entry = "entry";
    params =
      [ { L.name = "a"; lo = 0; hi = 2 }; { L.name = "b"; lo = 0; hi = 2 } ];
    blocks = List.rev !blocks;
  }

let print_constructs cs = Fmt.str "%d constructs" (List.length cs)

let test_ssa_equivalence_random =
  QCheck.Test.make ~count:200 ~name:"SSA preserves visit counts"
    (QCheck.make ~print:print_constructs gen_constructs)
    (fun constructs ->
      let program = build_program constructs in
      let ssa = Tac.Ssa.convert program in
      Tac.Interp.for_all_inputs program (fun inputs ->
          let _, trace = Tac.Interp.run program ~inputs in
          let ssa_visits = Tac.Ssa.run ssa ~inputs in
          visits_tbl_to_sorted trace.Tac.Interp.visits
          = visits_tbl_to_sorted ssa_visits))

let test_slice_preserves_visits_random =
  QCheck.Test.make ~count:200 ~name:"slice preserves control flow"
    (QCheck.make ~print:print_constructs gen_constructs)
    (fun constructs ->
      let program = build_program constructs in
      let ssa = Tac.Ssa.convert program in
      let sliced, _stats = Tac.Slice.compute ssa in
      Tac.Interp.for_all_inputs program (fun inputs ->
          let full = Tac.Ssa.run ssa ~inputs in
          let cut = Tac.Ssa.run sliced ~inputs in
          visits_tbl_to_sorted full = visits_tbl_to_sorted cut))

let test_slice_removes_dead_code () =
  (* The accumulator and the store in [countup] do not influence control
     flow, so the slice must drop them. *)
  let ssa = Tac.Ssa.convert (countup ~lo:0 ~hi:10) in
  let _, stats = Tac.Slice.compute ssa in
  check_bool "slice strictly smaller" true
    (stats.Tac.Slice.kept_instrs < stats.Tac.Slice.total_instrs);
  (* i := 0, i + 1 must be kept (2 of the 5 instructions). *)
  check_int "kept exactly the counter chain" 2 stats.Tac.Slice.kept_instrs

let test_slice_keeps_stores_for_loads () =
  (* A branch depending on a load must keep stores. *)
  let program =
    {
      L.entry = "e";
      params = [];
      blocks =
        [
          {
            L.label = "e";
            instrs =
              [
                L.Store (L.Imm 0, L.Imm 7);
                L.Assign ("dead", L.Imm 3);
                L.Load ("x", L.Imm 0);
              ];
            term = L.Branch (L.Eq, L.Reg "x", L.Imm 7, "t", "f");
          };
          { L.label = "t"; instrs = []; term = L.Halt };
          { L.label = "f"; instrs = []; term = L.Halt };
        ];
    }
  in
  let ssa = Tac.Ssa.convert program in
  let sliced, stats = Tac.Slice.compute ssa in
  check_int "store and load kept, dead assign dropped" 2
    stats.Tac.Slice.kept_instrs;
  let visits = Tac.Ssa.run sliced ~inputs:[] in
  check_int "takes the true branch" 1
    (try Hashtbl.find visits "t" with Not_found -> 0)

(* The store's address is a parameter the slicer cannot separate from the
   loaded address, so the store must survive even though it may target a
   different location: dropping it would flip the branch when p = 0. *)
let test_slice_conservative_store_aliasing () =
  let program =
    {
      L.entry = "e";
      params = [ { L.name = "p"; lo = 0; hi = 1 } ];
      blocks =
        [
          {
            L.label = "e";
            instrs =
              [
                L.Store (L.Reg "p", L.Imm 7);
                L.Binop ("unused", L.Add, L.Reg "p", L.Imm 1);
                L.Load ("x", L.Imm 0);
              ];
            term = L.Branch (L.Eq, L.Reg "x", L.Imm 7, "t", "f");
          };
          { L.label = "t"; instrs = []; term = L.Halt };
          { L.label = "f"; instrs = []; term = L.Halt };
        ];
    }
  in
  let ssa = Tac.Ssa.convert program in
  let sliced, stats = Tac.Slice.compute ssa in
  check_int "kept the store and the load, dropped the arithmetic" 2
    stats.Tac.Slice.kept_instrs;
  check_bool "visit counts preserved on every input" true
    (Tac.Interp.for_all_inputs program (fun inputs ->
         let full = Tac.Ssa.run ssa ~inputs in
         let cut = Tac.Ssa.run sliced ~inputs in
         visits_tbl_to_sorted full = visits_tbl_to_sorted cut))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "tac"
    [
      ( "interp",
        Alcotest.
          [
            test_case "count-up loop" `Quick test_interp_basics;
            test_case "step limit" `Quick test_interp_step_limit;
            test_case "validation" `Quick test_validate;
          ] );
      ( "ssa",
        Alcotest.
          [
            test_case "single assignment" `Quick test_ssa_single_assignment;
            test_case "phi placement" `Quick test_ssa_phi_at_header;
            test_case "visit preservation" `Quick test_ssa_preserves_visits;
          ]
        @ qsuite [ test_ssa_equivalence_random ] );
      ( "slice",
        Alcotest.
          [
            test_case "removes dead code" `Quick test_slice_removes_dead_code;
            test_case "keeps stores for loads" `Quick test_slice_keeps_stores_for_loads;
            test_case "conservative about store aliasing" `Quick
              test_slice_conservative_store_aliasing;
          ]
        @ qsuite [ test_slice_preserves_visits_random ] );
    ]
