(* Tests of the observability layer: ring-buffer semantics, trace
   determinism (identical event streams run after run and across
   serial/parallel execution), zero overhead (observed cycle counts
   bit-identical with tracing on or off), latency attribution, metrics
   registry behaviour, and validity of the emitted JSON. *)

module T = Obs.Trace
module M = Obs.Metrics
module A = Obs.Attrib
module W = Sel4_rt.Workloads
module KM = Sel4_rt.Kernel_model

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- a minimal JSON syntax checker (no JSON library available) --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape");
          Buffer.add_char b '?';
          go ()
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
      | None -> fail "unterminated string"
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (elems [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

(* --- ring buffer --- *)

let test_ring () =
  let t = T.create ~capacity:4 () in
  check_int "capacity" 4 (T.capacity t);
  for i = 1 to 6 do
    T.emit t ~at:(i * 10) ~stall:i (T.Marker (string_of_int i))
  done;
  check_int "length" 4 (T.length t);
  check_int "dropped" 2 (T.dropped t);
  let marks =
    List.map
      (fun (e : T.event) ->
        match e.T.kind with T.Marker m -> m | _ -> "?")
      (T.events t)
  in
  Alcotest.(check (list string)) "oldest first" [ "3"; "4"; "5"; "6" ] marks;
  T.clear t;
  check_int "cleared" 0 (T.length t);
  check_int "cleared dropped" 0 (T.dropped t)

(* --- trace determinism: same scenario, same seed => same events --- *)

let trace_of ~seed entry =
  let buf = T.create () in
  let outcome, cycles =
    W.run_traced ~buf ~seed (Sel4_rt.Analysis_ctx.default) entry
  in
  (match outcome with
  | Sel4.Kernel.Failed e -> Alcotest.fail ("scenario failed: " ^ e)
  | _ -> ());
  (cycles, T.events buf)

let test_determinism () =
  List.iter
    (fun entry ->
      let c1, e1 = trace_of ~seed:3 entry in
      let c2, e2 = trace_of ~seed:3 entry in
      check_int (KM.entry_name entry ^ ": cycles repeat") c1 c2;
      check_int
        (KM.entry_name entry ^ ": event count repeats")
        (List.length e1) (List.length e2);
      check_bool (KM.entry_name entry ^ ": event streams identical") true
        (e1 = e2))
    [ KM.Syscall; KM.Interrupt ]

let test_serial_parallel () =
  let with_serial b f =
    Sel4_rt.Parallel.set_serial b;
    Fun.protect ~finally:(fun () -> Sel4_rt.Parallel.set_serial false) f
  in
  let measure () =
    W.observed_traced ~runs:3 Sel4_rt.Analysis_ctx.default KM.Interrupt
  in
  let w_serial, p_serial = with_serial true measure in
  let w_par, p_par = with_serial false measure in
  check_int "worst identical" w_serial w_par;
  check_bool "provenance identical" true (p_serial = p_par)

(* --- zero overhead: tracing must not change observed cycle counts --- *)

let test_zero_overhead () =
  List.iter
    (fun entry ->
      let plain = W.observed ~runs:4 Sel4_rt.Analysis_ctx.default entry in
      let traced, prov =
        W.observed_traced ~runs:4 Sel4_rt.Analysis_ctx.default entry
      in
      check_int (KM.entry_name entry ^ ": observed unchanged") plain traced;
      check_bool
        (KM.entry_name entry ^ ": provenance names the workload")
        true
        (prov.W.workload = KM.entry_name entry))
    [ KM.Syscall; KM.Interrupt; KM.Page_fault ]

(* --- latency attribution on synthetic traces --- *)

let ev at stall kind = { T.at; stall; kind }

let test_attribution_irq () =
  let events =
    [
      ev 100 0 (T.Kernel_enter { event = "retype" });
      ev 150 12 (T.Preempt_point { taken = true });
      ev 160 15 (T.Irq_deliver { line = 5; latency = 60 });
      ev 200 20 (T.Kernel_exit { outcome = "preempted" });
    ]
  in
  match A.irq_breakdowns events with
  | [ bd ] ->
      check_int "line" 5 bd.A.line;
      check_int "asserted_at" 100 bd.A.asserted_at;
      check_int "delivered_at" 160 bd.A.delivered_at;
      check_string "section" "retype" bd.A.section;
      (match bd.A.cycles_to_preempt with
      | Some c -> check_int "cycles_to_preempt" 50 c
      | None -> Alcotest.fail "expected a preemption point");
      check_int "stall" 15 bd.A.stall_cycles;
      check_int "compute" 45 bd.A.compute_cycles;
      check_int "stall+compute=latency" bd.A.latency
        (bd.A.stall_cycles + bd.A.compute_cycles)
  | l -> Alcotest.failf "expected 1 breakdown, got %d" (List.length l)

let test_attribution_section () =
  let events =
    [
      ev 0 0 (T.Kernel_enter { event = "delete" });
      ev 100 30 (T.Preempt_point { taken = false });
      ev 150 40 (T.Preempt_point { taken = false });
      ev 400 90 (T.Kernel_exit { outcome = "completed" });
    ]
  in
  match A.longest_nonpreemptible events with
  | Some sec ->
      check_string "label" "delete" sec.A.sec_label;
      check_int "cycles" 250 sec.A.sec_cycles;
      check_int "stall" 50 sec.A.sec_stall
  | None -> Alcotest.fail "expected a section"

let test_attribution_real_interrupt () =
  let buf = T.create () in
  let _ =
    W.run_traced ~buf ~seed:2 Sel4_rt.Analysis_ctx.default KM.Interrupt
  in
  match A.irq_breakdowns (T.events buf) with
  | [] -> Alcotest.fail "interrupt run must record a delivery"
  | bds ->
      List.iter
        (fun (bd : A.irq_breakdown) ->
          check_bool "latency positive" true (bd.A.latency > 0);
          check_int "split adds up" bd.A.latency
            (bd.A.stall_cycles + bd.A.compute_cycles);
          check_int "assert/deliver consistent" bd.A.latency
            (bd.A.delivered_at - bd.A.asserted_at))
        bds

(* A trace with two IRQ lines asserted inside different kernel sections,
   one of them while a previous delivery is still outstanding: every
   breakdown must recover its own assertion point and section. *)
let test_attribution_multi_line () =
  let events =
    [
      ev 100 0 (T.Kernel_enter { event = "call" });
      ev 180 10 (T.Irq_deliver { line = 3; latency = 80 });
      ev 300 20 (T.Kernel_exit { outcome = "completed" });
      ev 350 20 (T.Kernel_enter { event = "interrupt" });
      ev 420 25 (T.Irq_deliver { line = 9; latency = 100 });
      ev 500 30 (T.Kernel_exit { outcome = "completed" });
    ]
  in
  match A.irq_breakdowns events with
  | [ b3; b9 ] ->
      check_int "line 3 first" 3 b3.A.line;
      check_int "line 3 asserted" 100 b3.A.asserted_at;
      check_string "line 3 section" "call" b3.A.section;
      check_int "line 9 second" 9 b9.A.line;
      check_int "line 9 asserted" 320 b9.A.asserted_at;
      (* Line 9's assertion predates the interrupt entry at 350: it landed
         on the user side of the exit at 300. *)
      check_string "line 9 section" "user" b9.A.section;
      List.iter
        (fun (b : A.irq_breakdown) ->
          check_int "split adds up" b.A.latency
            (b.A.stall_cycles + b.A.compute_cycles))
        [ b3; b9 ]
  | l -> Alcotest.failf "expected 2 breakdowns, got %d" (List.length l)

(* --- per-section cycle attribution of a window --- *)

let test_section_profile () =
  let events =
    [
      ev 100 0 (T.Kernel_enter { event = "call" });
      ev 250 10 (T.Kernel_exit { outcome = "completed" });
      ev 300 10 (T.Kernel_enter { event = "interrupt" });
      ev 400 15 (T.Irq_deliver { line = 1; latency = 260 });
      ev 420 15 (T.Kernel_exit { outcome = "completed" });
    ]
  in
  (* Window [140, 400]: 110 in call, 50 user (250..300), 100 interrupt,
     then the remaining 0 — sums to 260. *)
  let profile = A.section_profile events ~from:140 ~until:400 in
  check_int "sums to the window" 260
    (List.fold_left (fun a (_, c) -> a + c) 0 profile);
  check_int "call cycles" 110 (List.assoc "call" profile);
  check_int "interrupt cycles" 100 (List.assoc "interrupt" profile);
  check_int "user cycles" 50 (List.assoc "user" profile);
  check_bool "largest first" true
    (match profile with (_, a) :: (_, b) :: _ -> a >= b | _ -> false);
  (* Clipping: a window that starts before the trace and ends mid-section
     still sums exactly. *)
  let clipped = A.section_profile events ~from:0 ~until:200 in
  check_int "clipped sums" 200
    (List.fold_left (fun a (_, c) -> a + c) 0 clipped);
  check_int "clipped user prefix" 100 (List.assoc "user" clipped);
  check_int "clipped call" 100 (List.assoc "call" clipped);
  check_int "empty window" 0
    (List.fold_left
       (fun a (_, c) -> a + c)
       0
       (A.section_profile events ~from:200 ~until:200))

(* --- Chrome trace_event export --- *)

let test_chrome_json () =
  let buf = T.create () in
  let _ =
    W.run_traced ~buf ~seed:1 Sel4_rt.Analysis_ctx.default KM.Syscall
  in
  check_bool "trace non-empty" true (T.length buf > 0);
  let json = T.to_chrome_json ~cycles_per_us:532.0 buf in
  let v = try parse_json json with Bad_json m -> Alcotest.fail m in
  match member "traceEvents" v with
  | Some (Arr evs) ->
      check_bool "has events" true (List.length evs > 1);
      List.iter
        (fun e ->
          match (member "ph" e, member "pid" e) with
          | Some (Str _), Some (Num _) -> ()
          | _ -> Alcotest.fail "event missing ph/pid")
        evs
  | _ -> Alcotest.fail "no traceEvents array"

(* --- metrics registry --- *)

let test_metrics_counters () =
  let c = M.counter "test.counter" in
  M.set_counter c 0;
  M.incr c;
  M.incr ~by:41 c;
  check_int "counter value" 42 (M.value c);
  check_bool "interned" true (M.counter "test.counter" == c);
  let g = M.gauge "test.gauge" in
  M.set_gauge g 2.5;
  let h = M.histogram "test.hist" in
  M.observe h 3.0;
  M.observe h 5.0;
  M.observe h 1000.0;
  let s = M.snapshot () in
  check_bool "counter in snapshot" true
    (List.mem_assoc "test.counter" s.M.s_counters);
  check_bool "gauge in snapshot" true (List.mem_assoc "test.gauge" s.M.s_gauges);
  (match List.assoc_opt "test.hist" s.M.s_histograms with
  | Some hs ->
      check_int "hist count" 3 hs.M.hs_count;
      check_bool "hist max" true (hs.M.hs_max = 1000.0);
      (* 3.0 -> bucket 2 (2^1,2^2]; 5.0 -> bucket 3; 1000.0 -> bucket 10 *)
      Alcotest.(check (list (pair int int)))
        "buckets"
        [ (2, 1); (3, 1); (10, 1) ]
        hs.M.hs_buckets
  | None -> Alcotest.fail "histogram missing");
  let names = List.map fst s.M.s_counters in
  check_bool "counters sorted" true (names = List.sort compare names)

let test_metrics_json () =
  let c = M.counter "test.json_counter" in
  M.incr c;
  let json = M.to_json (M.snapshot ()) in
  let v = try parse_json json with Bad_json m -> Alcotest.fail m in
  match member "counters" v with
  | Some (Obj kvs) ->
      check_bool "counter present" true (List.mem_assoc "test.json_counter" kvs)
  | _ -> Alcotest.fail "no counters object"

let test_metrics_span_and_reset () =
  let h = M.histogram "test.span" in
  let r = M.span h (fun () -> 7) in
  check_int "span returns" 7 r;
  (match List.assoc_opt "test.span" (M.snapshot ()).M.s_histograms with
  | Some hs -> check_bool "span observed" true (hs.M.hs_count >= 1)
  | None -> Alcotest.fail "span histogram missing");
  M.reset ();
  let s = M.snapshot () in
  check_bool "counters zeroed" true
    (List.for_all (fun (_, v) -> v = 0) s.M.s_counters);
  check_bool "histograms zeroed" true
    (List.for_all (fun (_, h) -> h.M.hs_count = 0) s.M.s_histograms)

let test_metrics_percentiles () =
  let h = M.histogram "test.pct" in
  for v = 1 to 100 do
    M.observe h (float_of_int v)
  done;
  match List.assoc_opt "test.pct" (M.snapshot ()).M.s_histograms with
  | None -> Alcotest.fail "histogram missing"
  | Some hs ->
      check_bool "exact min" true (hs.M.hs_min = 1.0);
      check_bool "exact max" true (hs.M.hs_max = 100.0);
      (* Rank 50 lands in bucket (32, 64]; the conservative estimate is
         its upper bound. *)
      check_bool "p50 bucket upper bound" true (M.percentile hs 0.5 = 64.0);
      (* Quantiles that never under-report: the estimate dominates the
         exact value from the raw sample. *)
      List.iter
        (fun q ->
          let exact =
            float_of_int
              (max 1 (int_of_float (Float.ceil (q *. float_of_int hs.M.hs_count))))
          in
          check_bool
            (Fmt.str "p%g conservative" (q *. 100.0))
            true
            (M.percentile hs q >= exact))
        [ 0.1; 0.5; 0.9; 0.99; 1.0 ];
      (* The top quantile clamps to the exact maximum. *)
      check_bool "p100 is exact max" true (M.percentile hs 1.0 = 100.0);
      check_bool "p0 clamps to min" true (M.percentile hs 0.0 >= 1.0);
      let empty = M.histogram "test.pct_empty" in
      ignore empty;
      match List.assoc_opt "test.pct_empty" (M.snapshot ()).M.s_histograms with
      | Some e -> check_bool "empty percentile" true (M.percentile e 0.5 = 0.0)
      | None -> Alcotest.fail "empty histogram missing"

(* Small samples (at most 64 distinct values) get exact order-statistic
   percentiles, not the conservative bucket upper bound. *)
let test_metrics_exact_small () =
  let h = M.histogram "test.pct_exact" in
  List.iter (M.observe h) [ 7.0; 3.0; 11.0; 3.0; 40.0 ];
  (match List.assoc_opt "test.pct_exact" (M.snapshot ()).M.s_histograms with
  | None -> Alcotest.fail "histogram missing"
  | Some hs ->
      (match hs.M.hs_exact with
      | Some vals ->
          Alcotest.(check (list (pair (float 0.0) int)))
            "exact multiset ascending"
            [ (3.0, 2); (7.0, 1); (11.0, 1); (40.0, 1) ]
            vals
      | None -> Alcotest.fail "exact multiset dropped below the limit");
      (* Rank statistics of [3;3;7;11;40]: p50 -> rank 3 = 7, not the
         bucket-8 upper bound the conservative path would report. *)
      check_bool "p50 exact" true (M.percentile hs 0.5 = 7.0);
      check_bool "p20 exact" true (M.percentile hs 0.2 = 3.0);
      check_bool "p90 exact" true (M.percentile hs 0.9 = 40.0);
      check_bool "p100 exact" true (M.percentile hs 1.0 = 40.0));
  (* Exactness survives reset. *)
  M.reset ();
  M.observe h 5.0;
  match List.assoc_opt "test.pct_exact" (M.snapshot ()).M.s_histograms with
  | Some hs -> check_bool "exact after reset" true (M.percentile hs 0.5 = 5.0)
  | None -> Alcotest.fail "histogram missing after reset"

(* Past 64 distinct values the multiset is dropped and the conservative
   bucket estimate takes over — pinning the current behaviour the
   [test_metrics_percentiles] case above relies on. *)
let test_metrics_exact_overflow () =
  let h = M.histogram "test.pct_overflow" in
  for v = 1 to 64 do
    M.observe h (float_of_int v)
  done;
  (match List.assoc_opt "test.pct_overflow" (M.snapshot ()).M.s_histograms with
  | Some hs ->
      check_bool "64 distinct still exact" true (hs.M.hs_exact <> None);
      check_bool "p50 exact at the limit" true (M.percentile hs 0.5 = 32.0)
  | None -> Alcotest.fail "histogram missing");
  M.observe h 65.0;
  match List.assoc_opt "test.pct_overflow" (M.snapshot ()).M.s_histograms with
  | Some hs ->
      check_bool "65th distinct value drops the multiset" true
        (hs.M.hs_exact = None);
      (* Back on the conservative path: bucket upper bound, never below
         the true quantile. *)
      check_bool "p50 conservative again" true (M.percentile hs 0.5 = 64.0)
  | None -> Alcotest.fail "histogram missing"

(* Ring overflow is not silent: every wrapped emission bumps the
   process-wide trace.dropped counter. *)
let test_trace_dropped_counter () =
  let c = M.counter "trace.dropped" in
  M.set_counter c 0;
  let t = T.create ~capacity:3 () in
  for i = 1 to 8 do
    T.emit t ~at:i ~stall:0 (T.Marker (string_of_int i))
  done;
  check_int "per-ring dropped" 5 (T.dropped t);
  check_int "registry counter" 5 (M.value c);
  M.set_counter c 0

(* --- bound profile (the `sel4rt explain` data model) --- *)

module BP = Obs.Bound_profile

let row ?(context = "") ?(count = 1) ~func ~label ~exec ~stall ~pipeline () =
  {
    BP.r_func = func;
    r_context = context;
    r_label = label;
    r_count = count;
    r_cycles = exec + stall + pipeline;
    r_exec = exec;
    r_stall = stall;
    r_pipeline = pipeline;
    r_fetch_misses = 0;
    r_data_misses = 0;
  }

(* Row components are per visit; every aggregate multiplies by the
   block's execution count.  vec_entry 1x100 + l_body 4x140 + sc_exit
   1x20 = 680. *)
let profile_fixture () =
  {
    BP.p_entry = "syscall";
    p_wcet = 680;
    p_rows =
      [
        row ~func:"syscall" ~label:"vec_entry" ~exec:10 ~stall:90 ~pipeline:0 ();
        row ~func:"lookup" ~context:"syscall/lookup@op" ~count:4 ~label:"l_body"
          ~exec:20 ~stall:120 ~pipeline:0 ();
        row ~func:"syscall" ~label:"sc_exit" ~exec:15 ~stall:0 ~pipeline:5 ();
      ];
    p_edges = [ (("vec_entry", "l_body"), 4); (("l_body", "sc_exit"), 1) ];
    p_binding = [ ("loop bound lookup/l_head <= 4 per entry", 0) ];
  }

let test_bound_profile_totals () =
  let p = profile_fixture () in
  check_int "total" 680 (BP.total p);
  check_bool "exact" true (BP.exact p);
  check_int "exec" 105 (BP.exec_total p);
  check_int "stall" 570 (BP.stall_total p);
  check_int "pipeline" 5 (BP.pipeline_total p);
  check_int "components partition the total" (BP.total p)
    (BP.exec_total p + BP.stall_total p + BP.pipeline_total p);
  (match BP.by_function p with
  | (f1, c1) :: _ ->
      check_string "largest function first" "lookup" f1;
      check_int "lookup cycles" 560 c1
  | [] -> Alcotest.fail "by_function empty");
  let broken = { p with BP.p_wcet = 681 } in
  check_bool "inexact detected" false (BP.exact broken)

let test_bound_profile_folded () =
  let p = profile_fixture () in
  let folded = BP.to_folded p in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' folded)
  in
  check_bool "one line per nonzero component" true (List.length lines = 6);
  let total =
    List.fold_left
      (fun acc line ->
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "malformed folded line %S" line
        | Some i ->
            acc
            + int_of_string (String.sub line (i + 1) (String.length line - i - 1)))
      0 lines
  in
  check_int "folded sums to the bound" 680 total;
  check_bool "frames are semicolon-separated from the entry" true
    (List.for_all
       (fun l -> String.length l > 8 && String.sub l 0 8 = "syscall;")
       lines)

let test_bound_profile_json () =
  let p = profile_fixture () in
  let v =
    try parse_json (BP.to_json p) with Bad_json m -> Alcotest.fail m
  in
  (match member "wcet_cycles" v with
  | Some (Num n) -> check_int "wcet field" 680 (int_of_float n)
  | _ -> Alcotest.fail "no wcet_cycles");
  (match member "blocks" v with
  | Some (Arr rows) -> check_int "three blocks" 3 (List.length rows)
  | _ -> Alcotest.fail "no blocks");
  match member "binding_constraints" v with
  | Some (Arr [ _ ]) -> ()
  | _ -> Alcotest.fail "no binding constraints"

let test_bound_profile_concat () =
  let a = profile_fixture () in
  let b =
    {
      BP.p_entry = "interrupt";
      p_wcet = 40;
      p_rows =
        [ row ~func:"interrupt" ~label:"irq_entry" ~exec:40 ~stall:0 ~pipeline:0 () ];
      p_edges = [];
      p_binding = [];
    }
  in
  let joined = BP.concat ~entry:"kernel_entry" [ a; b ] in
  check_int "concat total" 720 (BP.total joined);
  check_bool "concat exact" true (BP.exact joined);
  check_string "concat entry" "kernel_entry" joined.BP.p_entry;
  check_bool "contexts keep their source entry" true
    (List.for_all
       (fun (r : BP.row) ->
         let c = r.BP.r_context in
         let has_prefix p =
           String.length c >= String.length p
           && String.sub c 0 (String.length p) = p
         in
         has_prefix "syscall" || has_prefix "interrupt")
       joined.BP.p_rows)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "ring buffer" `Quick test_ring;
          Alcotest.test_case "deterministic streams" `Slow test_determinism;
          Alcotest.test_case "serial equals parallel" `Slow test_serial_parallel;
          Alcotest.test_case "zero overhead" `Slow test_zero_overhead;
          Alcotest.test_case "chrome json" `Slow test_chrome_json;
        ] );
      ( "attrib",
        [
          Alcotest.test_case "irq breakdown" `Quick test_attribution_irq;
          Alcotest.test_case "longest section" `Quick test_attribution_section;
          Alcotest.test_case "multi-line irq trace" `Quick
            test_attribution_multi_line;
          Alcotest.test_case "section profile" `Quick test_section_profile;
          Alcotest.test_case "real interrupt" `Slow
            test_attribution_real_interrupt;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and histograms" `Quick
            test_metrics_counters;
          Alcotest.test_case "json dump" `Quick test_metrics_json;
          Alcotest.test_case "span and reset" `Quick
            test_metrics_span_and_reset;
          Alcotest.test_case "percentiles" `Quick test_metrics_percentiles;
          Alcotest.test_case "exact small samples" `Quick
            test_metrics_exact_small;
          Alcotest.test_case "exact overflow to conservative" `Quick
            test_metrics_exact_overflow;
          Alcotest.test_case "trace.dropped counter" `Quick
            test_trace_dropped_counter;
        ] );
      ( "bound_profile",
        [
          Alcotest.test_case "totals and partition" `Quick
            test_bound_profile_totals;
          Alcotest.test_case "folded stacks" `Quick test_bound_profile_folded;
          Alcotest.test_case "json" `Quick test_bound_profile_json;
          Alcotest.test_case "concat" `Quick test_bound_profile_concat;
        ] );
    ]
