(* Quickstart: boot the kernel, run an IPC ping-pong between two threads,
   take an interrupt, and read the measured response latency.

     dune exec examples/quickstart.exe *)

module K = Sel4.Kernel
module B = Sel4.Boot

let () =
  (* Boot the improved kernel (Benno scheduling + bitmap, shadow page
     tables, preemption points) on the simulated i.MX31. *)
  let cpu = Hw.Cpu.create Hw.Config.default in
  let env = B.boot ~cpu Sel4.Build.improved in
  Fmt.pr "Booted: %a@." Sel4.Build.pp Sel4.Build.improved;

  (* Create an endpoint and two threads through the real retype path. *)
  let _ep = B.spawn_endpoint env ~dest:10 in
  let server = B.spawn_thread env ~priority:150 ~dest:11 in
  let client = B.spawn_thread env ~priority:120 ~dest:12 in
  B.make_runnable env server;
  B.make_runnable env client;

  (* The server waits; the client calls; the server replies. *)
  K.force_run env.B.k server;
  (match K.kernel_entry env.B.k (K.Ev_recv { ep = 10 }) with
  | K.Completed -> ()
  | _ -> failwith "recv failed");
  K.force_run env.B.k client;
  client.Sel4.Ktypes.regs.(0) <- 0xCAFE;
  let t0 = K.cycles env.B.k in
  (match
     K.kernel_entry env.B.k
       (K.Ev_call { ep = 10; badge_hint = 0; msg_len = 2; extra_caps = [] })
   with
  | K.Completed -> ()
  | _ -> failwith "call failed");
  Fmt.pr "IPC call delivered %#x to the server in %d cycles@."
    server.Sel4.Ktypes.regs.(0)
    (K.cycles env.B.k - t0);
  (match K.kernel_entry env.B.k (K.Ev_reply_recv { ep = 10; msg_len = 1 }) with
  | K.Completed -> ()
  | _ -> failwith "reply failed");

  (* Register an interrupt handler and take an interrupt. *)
  let _irq_ep = B.spawn_endpoint env ~dest:20 in
  let handler = B.spawn_thread env ~priority:200 ~dest:21 in
  B.make_runnable env handler;
  K.force_run env.B.k env.B.root_tcb;
  (match
     K.run_to_completion env.B.k
       (K.Ev_invoke (K.Inv_irq_handler { line = 7; ep = 20 }))
   with
  | K.Completed -> ()
  | _ -> failwith "irq setup failed");
  K.force_run env.B.k handler;
  (match K.kernel_entry env.B.k (K.Ev_recv { ep = 20 }) with
  | K.Completed -> ()
  | _ -> failwith "handler recv failed");
  K.force_run env.B.k env.B.root_tcb;
  K.raise_irq env.B.k 7;
  (match K.kernel_entry env.B.k K.Ev_interrupt with
  | K.Completed -> ()
  | _ -> failwith "interrupt failed");
  Fmt.pr "Interrupt 7 delivered to handler tcb%d; response latency %d cycles (%.2f us)@."
    (K.current env.B.k).Sel4.Ktypes.tcb_id
    (K.worst_irq_latency env.B.k)
    (Hw.Config.cycles_to_us Hw.Config.default (K.worst_irq_latency env.B.k));

  (* All kernel invariants still hold. *)
  match Sel4.Invariants.check_result env.B.k with
  | Ok () -> Fmt.pr "Invariant catalogue: OK@."
  | Error ms -> Fmt.pr "Invariant violated: %s@." (String.concat "; " ms)
