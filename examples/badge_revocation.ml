(* Badge revocation under load (Section 3.4).

   A server hands badged endpoint capabilities to clients.  When it
   revokes one badge, every pending send using that badge must be aborted
   — a scan over the endpoint queue with a preemption point per waiter,
   whose four pieces of resume state live on the endpoint object.  This
   example fills the queue, revokes a badge while an interrupt arrives
   mid-scan, and shows the selective abort surviving the preemption.

     dune exec examples/badge_revocation.exe *)

open Sel4.Ktypes
module K = Sel4.Kernel
module B = Sel4.Boot

let () =
  let cpu = Hw.Cpu.create Hw.Config.default in
  let env = B.boot ~cpu Sel4.Build.improved in
  let k = env.B.k in
  let ep = B.spawn_endpoint env ~dest:10 in
  (* Twelve clients, badges 1-3, all blocked sending. *)
  let clients =
    List.init 12 (fun i ->
        let badge = 1 + (i mod 3) in
        (match
           K.run_to_completion k
             (K.Ev_invoke
                (K.Inv_copy
                   {
                     src = 10;
                     dest_slot = env.B.root_cnode.cn_slots.(40 + i);
                     badge = Some badge;
                   }))
         with
        | K.Completed -> ()
        | _ -> failwith "mint failed");
        let t = B.spawn_thread env ~priority:50 ~dest:(20 + i) in
        B.make_runnable env t;
        K.force_run k t;
        (match
           K.kernel_entry k
             (K.Ev_send
                { ep = 40 + i; msg_len = 1; extra_caps = []; blocking = true })
         with
        | K.Completed -> ()
        | _ -> failwith "send failed");
        (t, badge))
    |> Array.of_list
  in
  Fmt.pr "Queue before revocation (%d waiters): %a@." (Sel4.Ep_queue.length ep)
    Fmt.(list ~sep:sp int)
    (List.map (fun t -> t.ep_badge) (Sel4.Ep_queue.to_list ep));

  (* Revoke badge 2 while an interrupt lands mid-scan. *)
  K.force_run k env.B.root_tcb;
  K.schedule_irq k 5 ~delay:300;
  (match
     K.run_to_completion k
       (K.Ev_invoke (K.Inv_cancel_badged_sends { ep = 10; badge = 2 }))
   with
  | K.Completed -> ()
  | _ -> failwith "cancel failed");
  Fmt.pr "Preemptions during the abort: %d@." (K.preempted_events k);
  Fmt.pr "Queue after revoking badge 2:  %a@."
    Fmt.(list ~sep:sp int)
    (List.map (fun t -> t.ep_badge) (Sel4.Ep_queue.to_list ep));
  Array.iter
    (fun (t, badge) ->
      let state =
        if is_runnable t then "aborted (runnable)" else "still queued"
      in
      Fmt.pr "  client tcb%-3d badge %d: %s@." t.tcb_id badge state)
    clients;
  match Sel4.Invariants.check_result k with
  | Ok () -> Fmt.pr "Invariant catalogue: OK@."
  | Error ms -> Fmt.pr "Invariant violated: %s@." (String.concat "; " ms)
