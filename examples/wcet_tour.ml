(* A tour of the WCET analysis pipeline (Section 5).

   Runs the full static analysis for the interrupt entry point — loop
   bounds, virtual inlining, must-cache analysis, ILP — and prints what
   each stage produced, ending with the worst-case path and the
   computed-vs-observed comparison.

     dune exec examples/wcet_tour.exe *)

let () =
  let config = Hw.Config.default in
  let build = Sel4.Build.improved in
  let ctx = Sel4_rt.Analysis_ctx.make ~config ~build () in

  Fmt.pr "1. Automatically computed loop bounds (slicing + model checking)@.";
  List.iter
    (fun r -> Fmt.pr "   %a@." Sel4_rt.Kernel_loops.pp_result r)
    (Sel4_rt.Experiments.loop_bounds ());

  Fmt.pr "@.2. IPET analysis of the interrupt entry point@.";
  let result =
    Sel4_rt.Response_time.computed ctx Sel4_rt.Kernel_model.Interrupt
  in
  Fmt.pr "   ILP: %d variables, %d constraints, %d branch-and-bound nodes@."
    result.Wcet.Ipet.ilp_vars result.Wcet.Ipet.ilp_constraints
    result.Wcet.Ipet.bb_nodes;
  Fmt.pr "   WCET bound: %d cycles (%.1f us at 532 MHz)@." result.Wcet.Ipet.wcet
    (Hw.Config.cycles_to_us config result.Wcet.Ipet.wcet);
  Fmt.pr "@.   Worst-case path (block, executions, cycles per visit):@.";
  List.iter
    (fun (label, count, cycles) ->
      Fmt.pr "     %-40s x%-4d %6d@." label count cycles)
    (Wcet.Ipet.worst_path result);

  Fmt.pr "@.3. Adversarial measurement on the executable kernel@.";
  let observed =
    Sel4_rt.Response_time.observed ~runs:10 ctx Sel4_rt.Kernel_model.Interrupt
  in
  Fmt.pr "   observed worst case: %d cycles; computed/observed = %.2f@."
    observed
    (float_of_int result.Wcet.Ipet.wcet /. float_of_int observed);

  Fmt.pr "@.4. The same analysis with cache pinning (Section 4)@.";
  let selection = Sel4_rt.Pinning.select build in
  Fmt.pr "   %a@." Sel4_rt.Pinning.pp selection;
  let pinned =
    Sel4_rt.Response_time.computed
      (Sel4_rt.Analysis_ctx.make
         ~config:(Hw.Config.with_pinning config)
         ~pins:
           {
             Sel4_rt.Analysis_ctx.code = selection.Sel4_rt.Pinning.code_lines;
             data = selection.Sel4_rt.Pinning.data_lines;
           }
         ~build ())
      Sel4_rt.Kernel_model.Interrupt
  in
  Fmt.pr "   WCET bound with pinning: %d cycles (%.0f%% lower)@."
    pinned.Wcet.Ipet.wcet
    (100.0
    *. float_of_int (result.Wcet.Ipet.wcet - pinned.Wcet.Ipet.wcet)
    /. float_of_int result.Wcet.Ipet.wcet);

  Fmt.pr "@.5. Interrupt response bound (syscall WCET + interrupt WCET)@.";
  Fmt.pr "   %.1f us@."
    (Hw.Config.cycles_to_us config
       (Sel4_rt.Response_time.interrupt_response_bound ctx))
