(* Mixed-criticality scenario: the paper's motivating system (Section 1).

   A high-priority real-time task handles a device interrupt while an
   untrusted best-effort task hammers the kernel with the longest
   operations it can construct: creating large objects and deleting them
   again.

   On the improved kernel the real-time task's interrupt response stays
   bounded by the preemption-point spacing; on the original kernel it is
   at the mercy of whatever the best-effort task was doing.

     dune exec examples/mixed_criticality.exe *)

open Sel4.Ktypes
module K = Sel4.Kernel
module B = Sel4.Boot

let adversary_ops env =
  (* The untrusted task's repertoire of long-running system calls. *)
  let slots = env.B.root_cnode.cn_slots in
  [
    (* Create (and clear) a 64 KiB frame. *)
    (fun i ->
      K.Ev_invoke
        (K.Inv_retype
           {
             ut = B.ut_cptr;
             obj_type = Frame_object 16;
             count = 1;
             dest_slots = [ slots.(100 + i) ];
           }));
    (* Delete it again. *)
    (fun i -> K.Ev_invoke (K.Inv_delete { target = 100 + i }));
  ]

let run build =
  let cpu = Hw.Cpu.create Hw.Config.default in
  let env = B.boot ~cpu build in
  let k = env.B.k in
  (* Real-time task: highest priority, waiting for interrupt 9. *)
  let _irq_ep = B.spawn_endpoint env ~dest:10 in
  let rt_task = B.spawn_thread env ~priority:254 ~dest:11 in
  B.make_runnable env rt_task;
  (match
     K.run_to_completion k (K.Ev_invoke (K.Inv_irq_handler { line = 9; ep = 10 }))
   with
  | K.Completed -> ()
  | _ -> failwith "irq handler setup failed");
  K.force_run k rt_task;
  (match K.kernel_entry k (K.Ev_recv { ep = 10 }) with
  | K.Completed -> ()
  | _ -> failwith "rt task wait failed");
  (* Untrusted task: low priority, issuing long syscalls. *)
  let adversary = B.spawn_thread env ~priority:10 ~dest:12 in
  B.make_runnable env adversary;
  let ops = adversary_ops env in
  let interrupts = ref 0 in
  for round = 0 to 19 do
    K.force_run k adversary;
    (* The device fires mid-way through the adversary's system call. *)
    K.schedule_irq k 9 ~delay:1_500;
    let op = List.nth ops (round mod List.length ops) in
    let rec drive outcome =
      match outcome with
      | K.Preempted ->
          (* The preempted syscall restarts once the adversary runs
             again. *)
          K.force_run k adversary;
          drive (K.kernel_entry k (op (round / 2)))
      | K.Completed | K.Failed _ -> ()
    in
    drive (K.kernel_entry k (op (round / 2)));
    (* The RT task handled its interrupt at top priority; put it back to
       waiting for the next round. *)
    if is_runnable rt_task then begin
      incr interrupts;
      K.force_run k rt_task;
      ignore (K.kernel_entry k (K.Ev_recv { ep = 10 }))
    end
  done;
  (match Sel4.Invariants.check_result k with
  | Ok () -> ()
  | Error ms -> Fmt.pr "  INVARIANT VIOLATION: %s@." (String.concat "; " ms));
  (!interrupts, K.worst_irq_latency k, K.preempted_events k)

let () =
  Fmt.pr "Mixed criticality: RT interrupt handling vs an adversarial task@.@.";
  let report name build =
    let delivered, worst, preemptions = run build in
    Fmt.pr
      "%-18s delivered=%d  worst response=%6d cycles (%6.1f us)  preemptions=%d@."
      name delivered worst
      (Hw.Config.cycles_to_us Hw.Config.default worst)
      preemptions
  in
  report "improved kernel" Sel4.Build.improved;
  report "original kernel" Sel4.Build.original;
  Fmt.pr
    "@.The improved kernel bounds the response by its preemption-point \
     spacing;@.the original kernel makes the RT task wait for whole object \
     creations@.and deletions.@."
