(* Tests for the CFG library: structure, dominators, natural loops and
   virtual inlining. *)

module F = Cfg.Flowgraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))

(* A diamond:  0 -> 1 -> 3, 0 -> 2 -> 3 *)
let diamond () =
  let b = F.Builder.create "diamond" in
  let n0 = F.Builder.add b ~label:"entry" ()
  and n1 = F.Builder.add b ~label:"left" ()
  and n2 = F.Builder.add b ~label:"right" ()
  and n3 = F.Builder.add b ~label:"join" () in
  F.Builder.edge b n0 n1;
  F.Builder.edge b n0 n2;
  F.Builder.edge b n1 n3;
  F.Builder.edge b n2 n3;
  F.Builder.finish b

(* A loop:  0 -> 1(header) -> 2(body) -> 1, 1 -> 3(exit) *)
let simple_loop () =
  let b = F.Builder.create "loop" in
  let n0 = F.Builder.add b ~label:"pre" ()
  and n1 = F.Builder.add b ~label:"header" ()
  and n2 = F.Builder.add b ~label:"body" ()
  and n3 = F.Builder.add b ~label:"exit" () in
  F.Builder.edge b n0 n1;
  F.Builder.edge b n1 n2;
  F.Builder.edge b n2 n1;
  F.Builder.edge b n1 n3;
  F.Builder.finish b

(* Nested loops: 0 -> 1 -> 2 -> 3 -> 2, 3 -> 1, 1 -> 4 *)
let nested_loops () =
  let b = F.Builder.create "nested" in
  let n0 = F.Builder.add b ~label:"pre" ()
  and n1 = F.Builder.add b ~label:"outer" ()
  and n2 = F.Builder.add b ~label:"inner" ()
  and n3 = F.Builder.add b ~label:"latch" ()
  and n4 = F.Builder.add b ~label:"exit" () in
  F.Builder.edge b n0 n1;
  F.Builder.edge b n1 n2;
  F.Builder.edge b n2 n3;
  F.Builder.edge b n3 n2;
  F.Builder.edge b n3 n1;
  F.Builder.edge b n1 n4;
  F.Builder.finish b

let test_structure () =
  let fn = diamond () in
  check_int "blocks" 4 (F.num_blocks fn);
  check_ints "exits" [ 3 ] (F.exits fn);
  let preds = F.preds fn in
  check_ints "preds of join" [ 1; 2 ] (List.sort compare preds.(3));
  check_ints "rpo starts at entry" [ 0 ]
    [ List.hd (F.reverse_postorder fn) ]

let test_malformed () =
  Alcotest.check_raises "bad edge"
    (F.Malformed "bad: edge 0 -> 7 out of range")
    (fun () ->
      let b = F.Builder.create "bad" in
      let n0 = F.Builder.add b ~label:"only" () in
      F.Builder.edge b n0 7;
      ignore (F.Builder.finish b))

let test_dominators_diamond () =
  let fn = diamond () in
  let dom = Cfg.Dominators.compute fn in
  Alcotest.(check (option int)) "idom of left" (Some 0) (Cfg.Dominators.idom dom 1);
  Alcotest.(check (option int)) "idom of join" (Some 0) (Cfg.Dominators.idom dom 3);
  check_bool "entry dominates all" true (Cfg.Dominators.dominates dom 0 3);
  check_bool "left does not dominate join" false
    (Cfg.Dominators.dominates dom 1 3);
  check_bool "dominance is reflexive" true (Cfg.Dominators.dominates dom 2 2)

let test_dominance_frontier () =
  let fn = diamond () in
  let dom = Cfg.Dominators.compute fn in
  let df = Cfg.Dominators.frontiers fn dom in
  check_ints "frontier of left is join" [ 3 ] df.(1);
  check_ints "frontier of right is join" [ 3 ] df.(2);
  check_ints "frontier of entry empty" [] df.(0)

let test_loops_simple () =
  let fn = simple_loop () in
  let loops = Cfg.Loops.compute fn in
  match Cfg.Loops.loops loops with
  | [ l ] ->
      check_int "header" 1 l.Cfg.Loops.header;
      check_ints "body" [ 1; 2 ] l.Cfg.Loops.body;
      check_int "depth" 1 l.Cfg.Loops.depth;
      Alcotest.(check (list (pair int int)))
        "entry edges" [ (0, 1) ]
        (Cfg.Loops.entry_edges fn l);
      check_bool "reducible" true (Cfg.Loops.is_reducible fn loops)
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

let test_loops_nested () =
  let fn = nested_loops () in
  let loops = Cfg.Loops.compute fn in
  check_int "two loops" 2 (List.length (Cfg.Loops.loops loops));
  let outer = Option.get (Cfg.Loops.loop_of_header loops 1) in
  let inner = Option.get (Cfg.Loops.loop_of_header loops 2) in
  check_int "outer depth" 1 outer.Cfg.Loops.depth;
  check_int "inner depth" 2 inner.Cfg.Loops.depth;
  check_ints "outer body" [ 1; 2; 3 ] outer.Cfg.Loops.body;
  check_ints "inner body" [ 2; 3 ] inner.Cfg.Loops.body;
  let innermost = Option.get (Cfg.Loops.innermost_containing loops 3) in
  check_int "latch innermost loop" 2 innermost.Cfg.Loops.header

let test_irreducible () =
  (* 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1: the 1<->2 cycle has two entries. *)
  let b = F.Builder.create "irr" in
  let n0 = F.Builder.add b ~label:"e" ()
  and n1 = F.Builder.add b ~label:"a" ()
  and n2 = F.Builder.add b ~label:"b" () in
  F.Builder.edge b n0 n1;
  F.Builder.edge b n0 n2;
  F.Builder.edge b n1 n2;
  F.Builder.edge b n2 n1;
  let fn = F.Builder.finish b in
  let loops = Cfg.Loops.compute fn in
  check_bool "detected as irreducible" false (Cfg.Loops.is_reducible fn loops)

(* --- virtual inlining --- *)

let leaf_fn name =
  let b = F.Builder.create name in
  let n0 = F.Builder.add b ~label:"body" () in
  ignore n0;
  F.Builder.finish b

let caller_fn callee =
  let b = F.Builder.create "caller" in
  let n0 = F.Builder.add b ~label:"pre" ~call:callee ()
  and n1 = F.Builder.add b ~label:"mid" ~call:callee ()
  and n2 = F.Builder.add b ~label:"post" () in
  F.Builder.edge b n0 n1;
  F.Builder.edge b n1 n2;
  F.Builder.finish b

let test_inline_basic () =
  let prog =
    { F.funcs = [ caller_fn "leaf"; leaf_fn "leaf" ]; main = "caller" }
  in
  let inlined = Cfg.Inline.inline prog in
  (* 3 caller blocks + 2 clones of the 1-block leaf. *)
  check_int "block count" 5 (F.num_blocks inlined.Cfg.Inline.fn);
  let instances =
    Cfg.Inline.instances inlined ~func:"leaf" ~orig_id:0
  in
  check_int "two leaf instances" 2 (List.length instances);
  (* Every instance must be on a path entry..exit. *)
  check_ints "one exit" [ 1 ]
    [ List.length (F.exits inlined.Cfg.Inline.fn) ]

let test_inline_contexts () =
  let prog =
    { F.funcs = [ caller_fn "leaf"; leaf_fn "leaf" ]; main = "caller" }
  in
  let inlined = Cfg.Inline.inline prog in
  let ctxs = Cfg.Inline.contexts_of inlined ~func:"leaf" in
  check_int "two contexts" 2 (List.length ctxs);
  check_bool "contexts distinct" true
    (match ctxs with (a, _) :: (b, _) :: _ -> a <> b | _ -> false)

let test_inline_recursion_rejected () =
  let b = F.Builder.create "rec" in
  let n0 = F.Builder.add b ~label:"again" ~call:"rec" () in
  ignore n0;
  let fn = F.Builder.finish b in
  let prog = { F.funcs = [ fn ]; main = "rec" } in
  Alcotest.check_raises "recursion" (Cfg.Inline.Recursive "rec") (fun () ->
      ignore (Cfg.Inline.inline prog))

let test_inline_preserves_paths () =
  (* caller with a call in one branch of a diamond: path structure must be
     preserved (same number of entry-to-exit paths). *)
  let callee =
    let b = F.Builder.create "g" in
    let n0 = F.Builder.add b ~label:"g0" ()
    and n1 = F.Builder.add b ~label:"g1" ()
    and n2 = F.Builder.add b ~label:"g2" () in
    F.Builder.edge b n0 n1;
    F.Builder.edge b n0 n2;
    F.Builder.finish b
  in
  let caller =
    let b = F.Builder.create "f" in
    let n0 = F.Builder.add b ~label:"f0" ()
    and n1 = F.Builder.add b ~label:"f1" ~call:"g" ()
    and n2 = F.Builder.add b ~label:"f2" ()
    and n3 = F.Builder.add b ~label:"f3" () in
    F.Builder.edge b n0 n1;
    F.Builder.edge b n0 n2;
    F.Builder.edge b n1 n3;
    F.Builder.edge b n2 n3;
    F.Builder.finish b
  in
  let prog = { F.funcs = [ caller; callee ]; main = "f" } in
  let inlined = Cfg.Inline.inline prog in
  (* Count acyclic paths entry->exit by DFS. *)
  let count_paths fn =
    let rec walk id =
      match F.succs fn id with
      | [] -> 1
      | succs -> List.fold_left (fun acc s -> acc + walk s) 0 succs
    in
    walk fn.F.entry
  in
  (* f has paths: f0-f1-g{2 paths}-f3 and f0-f2-f3 = 3 paths. *)
  check_int "path count preserved" 3 (count_paths inlined.Cfg.Inline.fn)

(* Random reducible CFG generator: blocks 0..n-1, forward edges i -> j
   (i < j) plus self-contained back edges j -> i only when i dominates j by
   construction (we only add back edges to a chain ancestor).  Properties:
   detected loops are reducible, dominators are consistent. *)
let random_reducible =
  QCheck.Gen.(
    let* n = int_range 3 12 in
    let* forward =
      list_repeat (2 * n)
        (let* a = int_range 0 (n - 2) in
         let* b = int_range (a + 1) (n - 1) in
         return (a, b))
    in
    let* backs =
      list_repeat (n / 3)
        (let* target = int_range 0 (n - 2) in
         let* src = int_range target (n - 1) in
         return (src, target))
    in
    return (n, forward, backs))

let build_random (n, forward, backs) =
  let b = F.Builder.create "rand" in
  let ids = Array.init n (fun i -> F.Builder.add b ~label:(Fmt.str "b%d" i) ()) in
  (* Chain edges guarantee connectivity. *)
  for i = 0 to n - 2 do
    F.Builder.edge b ids.(i) ids.(i + 1)
  done;
  List.iter (fun (x, y) -> if x <> y then F.Builder.edge b ids.(x) ids.(y)) forward;
  List.iter (fun (x, y) -> if x <> y then F.Builder.edge b ids.(x) ids.(y)) backs;
  F.Builder.finish b

let test_dominator_soundness =
  QCheck.Test.make ~count:200 ~name:"idom dominates its block"
    (QCheck.make random_reducible)
    (fun instance ->
      let fn = build_random instance in
      let dom = Cfg.Dominators.compute fn in
      List.for_all
        (fun b ->
          match Cfg.Dominators.idom dom b with
          | None -> true
          | Some d -> Cfg.Dominators.dominates dom d b)
        (F.reverse_postorder fn))

let test_loop_headers_dominate_bodies =
  QCheck.Test.make ~count:200 ~name:"loop headers dominate their bodies"
    (QCheck.make random_reducible)
    (fun instance ->
      let fn = build_random instance in
      let dom = Cfg.Dominators.compute fn in
      let loops = Cfg.Loops.compute fn in
      List.for_all
        (fun l ->
          List.for_all
            (fun b -> Cfg.Dominators.dominates dom l.Cfg.Loops.header b)
            l.Cfg.Loops.body)
        (Cfg.Loops.loops loops))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "cfg"
    [
      ( "structure",
        Alcotest.
          [
            test_case "basics" `Quick test_structure;
            test_case "malformed" `Quick test_malformed;
          ] );
      ( "dominators",
        Alcotest.
          [
            test_case "diamond" `Quick test_dominators_diamond;
            test_case "frontiers" `Quick test_dominance_frontier;
          ]
        @ qsuite [ test_dominator_soundness ] );
      ( "loops",
        Alcotest.
          [
            test_case "simple" `Quick test_loops_simple;
            test_case "nested" `Quick test_loops_nested;
            test_case "irreducible" `Quick test_irreducible;
          ]
        @ qsuite [ test_loop_headers_dominate_bodies ] );
      ( "inline",
        Alcotest.
          [
            test_case "basic" `Quick test_inline_basic;
            test_case "contexts" `Quick test_inline_contexts;
            test_case "recursion rejected" `Quick test_inline_recursion_rejected;
            test_case "paths preserved" `Quick test_inline_preserves_paths;
          ] );
    ]
