test/test_core.ml: Alcotest Fmt Hw List Sel4 Sel4_rt Wcet
