test/test_hw.ml: Alcotest Gen Hw List QCheck QCheck_alcotest
