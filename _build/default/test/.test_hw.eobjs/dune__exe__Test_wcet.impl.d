test/test_wcet.ml: Alcotest Array Cfg Fmt Hw List QCheck QCheck_alcotest String Wcet
