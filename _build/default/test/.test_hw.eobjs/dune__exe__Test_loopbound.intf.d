test/test_loopbound.mli:
