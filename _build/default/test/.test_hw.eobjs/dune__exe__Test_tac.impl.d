test/test_tac.ml: Alcotest Array Fmt Hashtbl List QCheck QCheck_alcotest Tac
