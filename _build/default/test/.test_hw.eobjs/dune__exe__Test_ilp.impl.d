test/test_ilp.ml: Alcotest Array Dump Fmt Ilp List QCheck QCheck_alcotest Stdlib String
