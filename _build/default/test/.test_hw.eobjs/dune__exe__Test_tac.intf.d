test/test_tac.mli:
