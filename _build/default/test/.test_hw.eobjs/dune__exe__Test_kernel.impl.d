test/test_kernel.ml: Alcotest Array Fmt Hw List QCheck QCheck_alcotest Result Sel4 String
