test/test_loopbound.ml: Alcotest Fmt List Loopbound QCheck QCheck_alcotest Tac
