test/test_cfg.ml: Alcotest Array Cfg Fmt List Option QCheck QCheck_alcotest
