(* Tests for the hardware timing model: cache behaviour, pinning,
   machine-level latencies and CPU cycle accounting. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A small cache for targeted tests: 4 sets, 2 ways, 16-byte lines. *)
let small () = Hw.Cache.create ~line_size:16 ~sets:4 ~ways:2 ()

let is_hit = function Hw.Cache.Hit -> true | Hw.Cache.Miss _ -> false

let test_cache_basics () =
  let c = small () in
  check_bool "cold miss" false (is_hit (Hw.Cache.access c ~write:false 0x100));
  check_bool "re-access hits" true (is_hit (Hw.Cache.access c ~write:false 0x100));
  check_bool "same line hits" true (is_hit (Hw.Cache.access c ~write:false 0x10f));
  check_bool "other line misses" false
    (is_hit (Hw.Cache.access c ~write:false 0x200))

let test_cache_lru () =
  let c = small () in
  (* Three addresses mapping to the same set (stride = sets * line = 64). *)
  let a = 0x000 and b = 0x040 and d = 0x080 in
  ignore (Hw.Cache.access c ~write:false a);
  ignore (Hw.Cache.access c ~write:false b);
  (* Touch [a] so [b] is now LRU. *)
  ignore (Hw.Cache.access c ~write:false a);
  ignore (Hw.Cache.access c ~write:false d);
  (* [d] must have evicted [b], not [a]. *)
  check_bool "a survives" true (Hw.Cache.probe c a);
  check_bool "b evicted" false (Hw.Cache.probe c b);
  check_bool "d present" true (Hw.Cache.probe c d)

let test_dirty_eviction () =
  let c = small () in
  ignore (Hw.Cache.access c ~write:true 0x000);
  ignore (Hw.Cache.access c ~write:false 0x040);
  (match Hw.Cache.access c ~write:false 0x080 with
  | Hw.Cache.Miss { evicted_dirty } ->
      check_bool "dirty line written back" true evicted_dirty
  | Hw.Cache.Hit -> Alcotest.fail "expected miss");
  let stats = Hw.Cache.stats c in
  check "dirty evictions" 1 stats.Hw.Cache.dirty_evictions

let test_pinning () =
  let c = small () in
  Hw.Cache.lock_ways c 1;
  check_bool "pin succeeds" true (Hw.Cache.pin c 0x000);
  (* Flood the set with conflicting lines; the pinned line must survive. *)
  for i = 1 to 16 do
    ignore (Hw.Cache.access c ~write:true (i * 64))
  done;
  check_bool "pinned line survives flood" true (Hw.Cache.probe c 0x000);
  Hw.Cache.pollute c ~seed:42;
  check_bool "pinned line survives pollution" true (Hw.Cache.probe c 0x000);
  Hw.Cache.flush c;
  check_bool "pinned line survives flush" true (Hw.Cache.probe c 0x000);
  Hw.Cache.flush ~keep_pinned:false c;
  check_bool "full flush clears pins" false (Hw.Cache.probe c 0x000)

let test_pin_capacity () =
  let c = small () in
  Hw.Cache.lock_ways c 1;
  (* One locked way per set: a second conflicting pin must fail. *)
  check_bool "first pin" true (Hw.Cache.pin c 0x000);
  check_bool "conflicting pin refused" false (Hw.Cache.pin c 0x040)

let test_pin_without_lock () =
  let c = small () in
  check_bool "pin without locked ways fails" false (Hw.Cache.pin c 0x0)

(* Soundness of the paper's conservative analysis model (Section 5.1): the
   analysis treats each 4-way L1 set as if it were direct-mapped of one-way
   size, i.e. only the most recently used line of a set is assumed present.
   Property: if the 1-way model says hit, the real 4-way LRU cache hits. *)
let test_conservative_model_sound =
  QCheck.Test.make ~count:500
    ~name:"1-way direct-mapped must-hit implies 4-way LRU hit"
    QCheck.(list_of_size Gen.(int_range 1 60) (int_bound 1023))
    (fun trace ->
      let real = Hw.Cache.create ~line_size:16 ~sets:4 ~ways:4 () in
      let model = Hw.Cache.create ~line_size:16 ~sets:4 ~ways:1 () in
      List.for_all
        (fun word ->
          let addr = word * 4 in
          let model_hit = is_hit (Hw.Cache.access model ~write:false addr) in
          let real_hit = is_hit (Hw.Cache.access real ~write:false addr) in
          (not model_hit) || real_hit)
        trace)

(* Round-robin replacement: the victim cursor rotates through the ways,
   as on the ARM1136. *)
let test_round_robin_cycles_ways () =
  let c =
    Hw.Cache.create ~policy:Hw.Cache.Round_robin ~line_size:16 ~sets:1 ~ways:2
      ()
  in
  (* Fill both ways, then a third line evicts the first, a fourth the
     second. *)
  ignore (Hw.Cache.access c ~write:false 0x00);
  ignore (Hw.Cache.access c ~write:false 0x10);
  ignore (Hw.Cache.access c ~write:false 0x20);
  check_bool "first filled way evicted" false (Hw.Cache.probe c 0x00);
  check_bool "second way survives" true (Hw.Cache.probe c 0x10);
  ignore (Hw.Cache.access c ~write:false 0x30);
  check_bool "cursor rotated to the second way" false (Hw.Cache.probe c 0x10);
  check_bool "third line survives" true (Hw.Cache.probe c 0x20)

(* The paper's soundness argument (Section 5.1) holds for round-robin too:
   a model hit means no other access touched the set in between, so no
   replacement policy can have evicted the line. *)
let test_conservative_model_sound_rr =
  QCheck.Test.make ~count:500
    ~name:"1-way must-hit implies 4-way round-robin hit"
    QCheck.(list_of_size Gen.(int_range 1 60) (int_bound 1023))
    (fun trace ->
      let real =
        Hw.Cache.create ~policy:Hw.Cache.Round_robin ~line_size:16 ~sets:4
          ~ways:4 ()
      in
      let model = Hw.Cache.create ~line_size:16 ~sets:4 ~ways:1 () in
      List.for_all
        (fun word ->
          let addr = word * 4 in
          let model_hit = is_hit (Hw.Cache.access model ~write:false addr) in
          let real_hit = is_hit (Hw.Cache.access real ~write:false addr) in
          (not model_hit) || real_hit)
        trace)

(* LRU inclusion: a k-way cache's contents include those of a (k-1)-way
   cache under the same trace (standard stack property of LRU). *)
let test_lru_inclusion =
  QCheck.Test.make ~count:300 ~name:"LRU stack inclusion property"
    QCheck.(list_of_size Gen.(int_range 1 80) (int_bound 2047))
    (fun trace ->
      let c2 = Hw.Cache.create ~line_size:16 ~sets:4 ~ways:2 () in
      let c4 = Hw.Cache.create ~line_size:16 ~sets:4 ~ways:4 () in
      List.for_all
        (fun word ->
          let addr = word * 4 in
          let hit2 = is_hit (Hw.Cache.access c2 ~write:false addr) in
          let hit4 = is_hit (Hw.Cache.access c4 ~write:false addr) in
          (not hit2) || hit4)
        trace)

let test_machine_latencies () =
  let config = Hw.Config.default in
  let m = Hw.Machine.create config in
  check "cold load goes to memory" config.Hw.Config.mem_cycles_l2_off
    (Hw.Machine.read m 0x8000);
  check "warm load hits L1" config.Hw.Config.l1_hit_cycles
    (Hw.Machine.read m 0x8000);
  let m2 = Hw.Machine.create Hw.Config.with_l2 in
  check "cold load, L2 on, goes to memory"
    config.Hw.Config.mem_cycles_l2_on (Hw.Machine.read m2 0x8000)

let test_l2_catches_l1_eviction () =
  let m = Hw.Machine.create Hw.Config.with_l2 in
  let config = Hw.Machine.config m in
  ignore (Hw.Machine.read m 0x8000);
  (* Evict 0x8000 from L1 by flooding its set; L1 has 128 sets * 32 B =
     4 KiB stride, 4 ways.  The L2 (512 sets) keeps the line. *)
  for i = 1 to 8 do
    ignore (Hw.Machine.read m (0x8000 + (i * 128 * 32)))
  done;
  check_bool "line left L1" false (Hw.Cache.probe (Hw.Machine.dcache m) 0x8000);
  check "L2 services the reload" config.Hw.Config.l2_hit_cycles
    (Hw.Machine.read m 0x8000)

let test_l2_lockdown () =
  (* Addresses in the locked range always cost an L2 hit once they miss
     L1, regardless of L2 contents (Section 8 configuration). *)
  let config = Hw.Config.with_l2_lock ~base:0x8000 ~bytes:0x1000 Hw.Config.with_l2 in
  let m = Hw.Machine.create config in
  Hw.Machine.pollute m ~seed:1;
  check "locked fetch costs an L2 hit" config.Hw.Config.l2_hit_cycles
    (Hw.Machine.fetch m 0x8000);
  check "locked load costs an L2 hit" config.Hw.Config.l2_hit_cycles
    (Hw.Machine.read m 0x8f00);
  (* Outside the range: a polluted L2 means a full memory miss. *)
  check_bool "unlocked load costs memory latency" true
    (Hw.Machine.read m 0x20000 >= config.Hw.Config.mem_cycles_l2_on)

let test_l2_absorbs_l1_writebacks () =
  (* With the L2 present, evicting a dirty L1 line costs nothing extra
     (the write is absorbed); without it, the memory write-back is paid.
     This is what keeps the Figure 9 L2 penalty small. *)
  let run config =
    let m = Hw.Machine.create config in
    ignore (Hw.Machine.write m 0x000);
    (* Evict the dirty line by filling its set (stride 4 KiB, 4 ways). *)
    let cost = ref 0 in
    for i = 1 to 4 do
      cost := Hw.Machine.read m (i * 4096)
    done;
    !cost
  in
  let without_l2 = run Hw.Config.default in
  let with_l2 = run Hw.Config.with_l2 in
  check "L2 off pays the write-back"
    (Hw.Config.mem_cycles Hw.Config.default
    + Hw.Config.writeback_cycles Hw.Config.default)
    without_l2;
  check "L2 on absorbs it" (Hw.Config.mem_cycles Hw.Config.with_l2) with_l2

let test_branch_costs () =
  let m = Hw.Machine.create Hw.Config.default in
  check "static branch cost" 5 (Hw.Machine.branch m ~pc:0x100 ~taken:true);
  check "static branch cost (not taken)" 5
    (Hw.Machine.branch m ~pc:0x100 ~taken:false);
  let mp = Hw.Machine.create Hw.Config.with_branch_predictor in
  (* Counters reset to weakly-not-taken: a taken branch mispredicts first,
     then trains to predict correctly. *)
  check "first taken mispredicts" 7 (Hw.Machine.branch mp ~pc:0x100 ~taken:true);
  ignore (Hw.Machine.branch mp ~pc:0x100 ~taken:true);
  check "trained branch predicted" 1
    (Hw.Machine.branch mp ~pc:0x100 ~taken:true)

let test_predictor_counters () =
  let p = Hw.Branch_predictor.create ~entries:4 () in
  ignore (Hw.Branch_predictor.predict_and_update p ~pc:0 ~taken:true);
  ignore (Hw.Branch_predictor.predict_and_update p ~pc:0 ~taken:true);
  ignore (Hw.Branch_predictor.predict_and_update p ~pc:0 ~taken:true);
  check "predictions" 3 (Hw.Branch_predictor.predictions p);
  check "one initial misprediction" 1 (Hw.Branch_predictor.mispredictions p)

let test_cpu_accounting () =
  let cpu = Hw.Cpu.create Hw.Config.default in
  (* 8 instructions on one 32-byte line: 1 fetch miss + 8 execute cycles. *)
  Hw.Cpu.exec cpu ~base:0x1000 ~count:8;
  check "straight-line cost" (8 + 60) (Hw.Cpu.cycles cpu);
  Hw.Cpu.exec cpu ~base:0x1000 ~count:8;
  check "warm re-execution costs only issue cycles" (8 + 60 + 8)
    (Hw.Cpu.cycles cpu);
  let counters = Hw.Cpu.counters cpu in
  check "instruction counter" 16 counters.Hw.Cpu.instructions

let test_cycles_to_us () =
  (* 532 cycles at 532 MHz = 1 microsecond. *)
  Alcotest.(check (float 1e-9))
    "532 cycles is 1 us" 1.0
    (Hw.Config.cycles_to_us Hw.Config.default 532)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "hw"
    [
      ( "cache",
        [
          Alcotest.test_case "basics" `Quick test_cache_basics;
          Alcotest.test_case "lru" `Quick test_cache_lru;
          Alcotest.test_case "dirty eviction" `Quick test_dirty_eviction;
          Alcotest.test_case "pinning" `Quick test_pinning;
          Alcotest.test_case "pin capacity" `Quick test_pin_capacity;
          Alcotest.test_case "pin without lock" `Quick test_pin_without_lock;
          Alcotest.test_case "round-robin replacement" `Quick
            test_round_robin_cycles_ways;
        ] );
      ( "cache-properties",
        qsuite
          [
            test_conservative_model_sound;
            test_conservative_model_sound_rr;
            test_lru_inclusion;
          ] );
      ( "machine",
        [
          Alcotest.test_case "latencies" `Quick test_machine_latencies;
          Alcotest.test_case "l2 backstop" `Quick test_l2_catches_l1_eviction;
          Alcotest.test_case "l2 lockdown" `Quick test_l2_lockdown;
          Alcotest.test_case "l2 absorbs writebacks" `Quick
            test_l2_absorbs_l1_writebacks;
          Alcotest.test_case "branch costs" `Quick test_branch_costs;
          Alcotest.test_case "predictor counters" `Quick test_predictor_counters;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "accounting" `Quick test_cpu_accounting;
          Alcotest.test_case "cycles to us" `Quick test_cycles_to_us;
        ] );
    ]
