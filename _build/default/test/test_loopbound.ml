(* Tests for the loop-bound machinery: LTL finite-trace semantics, the
   bounded model checker with binary search, and the syntactic counter
   analysis.  The paper's claims (Section 5.3): counter loops are bounded
   statically; the slice+model-check pipeline bounds the rest. *)

module L = Tac.Lang

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_opt = Alcotest.(check (option int))

(* --- LTL --- *)

let test_ltl_basics () =
  let ge n = Loopbound.Ltl.prop (Fmt.str ">=%d" n) (fun s -> s >= n) in
  check_bool "G holds" true
    (Loopbound.Ltl.check_trace Loopbound.Ltl.(always (ge 1)) [ 1; 2; 3 ]);
  check_bool "G fails" false
    (Loopbound.Ltl.check_trace Loopbound.Ltl.(always (ge 2)) [ 2; 1; 3 ]);
  check_bool "F finds" true
    (Loopbound.Ltl.check_trace Loopbound.Ltl.(eventually (ge 3)) [ 1; 2; 3 ]);
  check_bool "X at last is false" false
    (Loopbound.Ltl.check_trace Loopbound.Ltl.(next (ge 0)) [ 5 ]);
  check_bool "until" true
    (Loopbound.Ltl.check_trace
       Loopbound.Ltl.(until (ge 1) (ge 9))
       [ 1; 2; 9; 0 ]);
  check_bool "until needs the goal" false
    (Loopbound.Ltl.check_trace
       Loopbound.Ltl.(until (ge 1) (ge 9))
       [ 1; 2; 3 ]);
  check_bool "empty trace satisfies G" true
    (Loopbound.Ltl.check_trace Loopbound.Ltl.(always (ge 5)) [])

(* --- programs under test --- *)

let countup ?(step = 1) ~lo ~hi () =
  {
    L.entry = "entry";
    params = [ { L.name = "n"; lo; hi } ];
    blocks =
      [
        {
          L.label = "entry";
          instrs = [ L.Assign ("i", L.Imm 0) ];
          term = L.Jump "header";
        };
        {
          L.label = "header";
          instrs = [];
          term = L.Branch (L.Lt, L.Reg "i", L.Reg "n", "body", "exit");
        };
        {
          L.label = "body";
          instrs = [ L.Binop ("i", L.Add, L.Reg "i", L.Imm step) ];
          term = L.Jump "header";
        };
        { L.label = "exit"; instrs = []; term = L.Halt };
      ];
  }

let countdown ~from_ =
  {
    L.entry = "entry";
    params = [];
    blocks =
      [
        {
          L.label = "entry";
          instrs = [ L.Assign ("i", L.Imm from_) ];
          term = L.Jump "header";
        };
        {
          L.label = "header";
          instrs = [];
          term = L.Branch (L.Gt, L.Reg "i", L.Imm 0, "body", "exit");
        };
        {
          L.label = "body";
          instrs = [ L.Binop ("i", L.Sub, L.Reg "i", L.Imm 1) ];
          term = L.Jump "header";
        };
        { L.label = "exit"; instrs = []; term = L.Halt };
      ];
  }

(* Loop whose exit depends on memory: the counter analysis must give up,
   the model checker still bounds it (matches the paper's split). *)
let memory_loop ~limit =
  {
    L.entry = "entry";
    params = [];
    blocks =
      [
        {
          L.label = "entry";
          instrs =
            [ L.Store (L.Imm 0, L.Imm limit); L.Assign ("i", L.Imm 0) ];
          term = L.Jump "header";
        };
        {
          L.label = "header";
          instrs = [ L.Load ("lim", L.Imm 0) ];
          term = L.Branch (L.Lt, L.Reg "i", L.Reg "lim", "body", "exit");
        };
        {
          L.label = "body";
          instrs = [ L.Binop ("i", L.Add, L.Reg "i", L.Imm 1) ];
          term = L.Jump "header";
        };
        { L.label = "exit"; instrs = []; term = L.Halt };
      ];
  }

(* --- model checker --- *)

let test_verify () =
  let program = countup ~lo:0 ~hi:8 () in
  check_bool "bound 9 verified" true
    (Loopbound.Checker.verify program ~header:"header" ~bound:9
    = Loopbound.Checker.Verified);
  (match Loopbound.Checker.verify program ~header:"header" ~bound:8 with
  | Loopbound.Checker.Violated witness ->
      check_int "witness is the worst input" 8 (List.assoc "n" witness)
  | v -> Alcotest.failf "expected violation, got %a" Loopbound.Checker.pp_verdict v);
  ()

let test_find_bound_exact () =
  let program = countup ~lo:0 ~hi:8 () in
  check_opt "binary search finds 9" (Some 9)
    (Loopbound.Checker.find_bound program ~header:"header");
  check_int "matches ground truth" 9
    (Loopbound.Checker.max_observed program ~header:"header")

let test_find_bound_diverging () =
  let forever =
    {
      L.entry = "spin";
      params = [];
      blocks = [ { L.label = "spin"; instrs = []; term = L.Jump "spin" } ];
    }
  in
  check_opt "diverging loop unbounded" None
    (Loopbound.Checker.find_bound ~max_steps:1000 ~upper:64 forever
       ~header:"spin")

let test_find_bound_memory_loop () =
  check_opt "memory loop bounded by the checker" (Some 8)
    (Loopbound.Checker.find_bound (memory_loop ~limit:7) ~header:"header")

(* --- counter analysis --- *)

let test_counter_basic () =
  check_opt "i < n, step 1, n <= 8" (Some 9)
    (Loopbound.Counter.analyse (countup ~lo:0 ~hi:8 ()) ~header:"header")

let test_counter_step () =
  (* i < n, i += 3, n <= 8: iterations = ceil(8/3) = 3, visits = 4. *)
  check_opt "step 3" (Some 4)
    (Loopbound.Counter.analyse (countup ~step:3 ~lo:0 ~hi:8 ()) ~header:"header")

let test_counter_countdown () =
  check_opt "count down from 5" (Some 6)
    (Loopbound.Counter.analyse (countdown ~from_:5) ~header:"header")

let test_counter_gives_up_on_memory () =
  check_opt "memory loop: analysis abstains" None
    (Loopbound.Counter.analyse (memory_loop ~limit:7) ~header:"header")

let test_counter_agrees_with_checker () =
  (* Where both methods apply they must agree (both are exact here). *)
  List.iter
    (fun (program, header) ->
      let counter = Loopbound.Counter.analyse program ~header in
      let checked = Loopbound.Checker.find_bound program ~header in
      Alcotest.(check (option int)) "counter = checker" checked counter)
    [
      (countup ~lo:0 ~hi:6 (), "header");
      (countup ~step:2 ~lo:0 ~hi:7 (), "header");
      (countdown ~from_:9, "header");
    ]

(* Random counter loops: the syntactic bound, when produced, dominates the
   exhaustive ground truth. *)
let gen_loop =
  QCheck.Gen.(
    let* step = int_range 1 4 in
    let* hi = int_range 0 12 in
    return (step, hi))

let test_counter_sound_random =
  QCheck.Test.make ~count:100 ~name:"counter bound dominates ground truth"
    (QCheck.make
       ~print:(fun (s, h) -> Fmt.str "step=%d hi=%d" s h)
       gen_loop)
    (fun (step, hi) ->
      let program = countup ~step ~lo:0 ~hi () in
      match Loopbound.Counter.analyse program ~header:"header" with
      | None -> false (* this family must always be analysable *)
      | Some bound ->
          bound >= Loopbound.Checker.max_observed program ~header:"header")

(* Sliced model checking: slicing first must not change the bound. *)
let test_slice_then_check () =
  let program = memory_loop ~limit:7 in
  let ssa = Tac.Ssa.convert program in
  let _sliced, stats = Tac.Slice.compute ssa in
  (* The slice keeps everything relevant; the checker on the original
     program and the ground truth agree. *)
  check_bool "slice ran" true (stats.Tac.Slice.total_instrs > 0);
  check_int "bound matches ground truth" 8
    (Loopbound.Checker.max_observed program ~header:"header")

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "loopbound"
    [
      ("ltl", Alcotest.[ test_case "finite-trace semantics" `Quick test_ltl_basics ]);
      ( "checker",
        Alcotest.
          [
            test_case "verify" `Quick test_verify;
            test_case "binary search exact" `Quick test_find_bound_exact;
            test_case "diverging" `Quick test_find_bound_diverging;
            test_case "memory loop" `Quick test_find_bound_memory_loop;
          ] );
      ( "counter",
        Alcotest.
          [
            test_case "basic" `Quick test_counter_basic;
            test_case "non-unit step" `Quick test_counter_step;
            test_case "countdown" `Quick test_counter_countdown;
            test_case "abstains on memory" `Quick test_counter_gives_up_on_memory;
            test_case "agrees with checker" `Quick test_counter_agrees_with_checker;
            test_case "slice then check" `Quick test_slice_then_check;
          ]
        @ qsuite [ test_counter_sound_random ] );
    ]
