examples/quickstart.mli:
