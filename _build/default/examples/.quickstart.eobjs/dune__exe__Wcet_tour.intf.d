examples/wcet_tour.mli:
