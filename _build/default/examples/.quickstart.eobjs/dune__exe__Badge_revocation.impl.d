examples/badge_revocation.ml: Array Fmt Hw List Sel4
