examples/wcet_tour.ml: Fmt Hw List Sel4 Sel4_rt Wcet
