examples/quickstart.ml: Array Fmt Hw Sel4
