examples/mixed_criticality.ml: Array Fmt Hw List Sel4
