examples/badge_revocation.mli:
