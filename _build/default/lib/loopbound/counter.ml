(* Syntactic induction-variable analysis for counter loops.

   Section 5.3: "loops which use explicit counter variables can be easily
   bounded using static analysis".  On SSA form the pattern is crisp:

     header:  i.1 := phi(pre: init, latch: i.2)
              if i.1 CMP limit goto body else exit   (or the negation)
     ...
     latch:   i.2 := i.1 + step

   The bound on header visits per loop entry follows from the initial
   value, the step and the limit.  Operands whose value is not a constant
   are widened to the declared parameter domain; anything else makes the
   analysis give up ([None]) and fall back to the model checker. *)

type interval = { lo : int; hi : int }

(* Find the definition of an SSA register among instructions. *)
let find_def (t : Tac.Ssa.t) r =
  List.find_map
    (fun (b : Tac.Ssa.ssa_block) ->
      List.find_map
        (fun i ->
          if List.mem r (Tac.Lang.defs_of_instr i) then Some i else None)
        b.Tac.Ssa.instrs)
    t.Tac.Ssa.blocks

(* Static value interval of an operand: an immediate, a parameter domain
   (version .0 of a parameter), or a chain of simple SSA copies/constant
   arithmetic leading to one.  SSA instruction definitions are acyclic, so
   the recursion terminates (phis stop the chase). *)
let rec interval_of_operand ?(fuel = 32) (t : Tac.Ssa.t) op =
  if fuel = 0 then None
  else
    match op with
    | Tac.Lang.Imm n -> Some { lo = n; hi = n }
    | Tac.Lang.Reg r -> (
        let base = Tac.Ssa.base_of r in
        if r = base ^ ".0" then
          List.find_map
            (fun (p : Tac.Lang.param) ->
              if p.Tac.Lang.name = base then
                Some { lo = p.Tac.Lang.lo; hi = p.Tac.Lang.hi }
              else None)
            t.Tac.Ssa.params
        else
          match find_def t r with
          | Some (Tac.Lang.Assign (_, src)) ->
              interval_of_operand ~fuel:(fuel - 1) t src
          | Some (Tac.Lang.Binop (_, Tac.Lang.Add, a, b)) -> (
              match
                ( interval_of_operand ~fuel:(fuel - 1) t a,
                  interval_of_operand ~fuel:(fuel - 1) t b )
              with
              | Some ia, Some ib ->
                  Some { lo = ia.lo + ib.lo; hi = ia.hi + ib.hi }
              | _ -> None)
          | Some (Tac.Lang.Binop (_, Tac.Lang.Sub, a, b)) -> (
              match
                ( interval_of_operand ~fuel:(fuel - 1) t a,
                  interval_of_operand ~fuel:(fuel - 1) t b )
              with
              | Some ia, Some ib ->
                  Some { lo = ia.lo - ib.hi; hi = ia.hi - ib.lo }
              | _ -> None)
          | _ -> None)

(* Max header visits for an increasing counter: first visit at [init],
   subsequent visits while the continue-condition holds.  Returns visits
   per loop entry including the final (failing) test. *)
let visits_increasing ~init ~step ~limit ~inclusive =
  (* Continue while i < limit (or <=).  Iterations executed: *)
  let room = limit - init + if inclusive then 1 else 0 in
  let iterations = if room <= 0 then 0 else (room + step - 1) / step in
  iterations + 1

let visits_decreasing ~init ~step ~limit ~inclusive =
  let room = init - limit + if inclusive then 1 else 0 in
  let iterations = if room <= 0 then 0 else (room + step - 1) / step in
  iterations + 1

let analyse_header (t : Tac.Ssa.t) ~header =
  let block = Tac.Ssa.block_exn t header in
  let lowered =
    Tac.To_cfg.lower
      {
        Tac.Lang.entry = t.Tac.Ssa.entry;
        params = t.Tac.Ssa.params;
        blocks =
          List.map
            (fun (b : Tac.Ssa.ssa_block) ->
              { Tac.Lang.label = b.Tac.Ssa.label; instrs = []; term = b.Tac.Ssa.term })
            t.Tac.Ssa.blocks;
      }
  in
  let loops = Cfg.Loops.compute lowered.Tac.To_cfg.fn in
  let loop =
    Cfg.Loops.loop_of_header loops (Tac.To_cfg.id lowered header)
  in
  match (loop, block.Tac.Ssa.term) with
  | Some loop, Tac.Lang.Branch (cmp, Tac.Lang.Reg iv, limit_op, l_true, l_false) ->
      let in_body l = List.mem (Tac.To_cfg.id lowered l) loop.Cfg.Loops.body in
      (* Normalise to: continue into the loop when [cmp] holds. *)
      let continue_cmp =
        match (in_body l_true, in_body l_false) with
        | true, false -> Some cmp
        | false, true ->
            Some
              (match cmp with
              | Tac.Lang.Lt -> Tac.Lang.Ge
              | Tac.Lang.Le -> Tac.Lang.Gt
              | Tac.Lang.Gt -> Tac.Lang.Le
              | Tac.Lang.Ge -> Tac.Lang.Lt
              | Tac.Lang.Eq -> Tac.Lang.Ne
              | Tac.Lang.Ne -> Tac.Lang.Eq)
        | _ -> None
      in
      let phi =
        List.find_opt (fun (p : Tac.Ssa.phi) -> p.Tac.Ssa.dest = iv) block.Tac.Ssa.phis
      in
      (match (continue_cmp, phi) with
      | Some cmp, Some phi ->
          (* Split phi sources into loop-external (init) and internal
             (latch). *)
          let init_ops, latch_ops =
            List.partition
              (fun (src, _) -> not (in_body src))
              phi.Tac.Ssa.sources
          in
          (match (init_ops, latch_ops) with
          | [ (_, init_op) ], [ (_, latch_op) ] ->
              let step =
                match latch_op with
                | Tac.Lang.Reg latch_reg -> (
                    match find_def t latch_reg with
                    | Some (Tac.Lang.Binop (_, Tac.Lang.Add, Tac.Lang.Reg r, Tac.Lang.Imm c))
                      when r = iv ->
                        Some c
                    | Some (Tac.Lang.Binop (_, Tac.Lang.Add, Tac.Lang.Imm c, Tac.Lang.Reg r))
                      when r = iv ->
                        Some c
                    | Some (Tac.Lang.Binop (_, Tac.Lang.Sub, Tac.Lang.Reg r, Tac.Lang.Imm c))
                      when r = iv ->
                        Some (-c)
                    | _ -> None)
                | Tac.Lang.Imm _ -> None
              in
              let init = interval_of_operand t init_op in
              let limit = interval_of_operand t limit_op in
              (match (step, init, limit, cmp) with
              | Some step, Some init, Some limit, Tac.Lang.Lt when step > 0 ->
                  Some
                    (visits_increasing ~init:init.lo ~step ~limit:limit.hi
                       ~inclusive:false)
              | Some step, Some init, Some limit, Tac.Lang.Le when step > 0 ->
                  Some
                    (visits_increasing ~init:init.lo ~step ~limit:limit.hi
                       ~inclusive:true)
              | Some step, Some init, Some limit, Tac.Lang.Gt when step < 0 ->
                  Some
                    (visits_decreasing ~init:init.hi ~step:(-step)
                       ~limit:limit.lo ~inclusive:false)
              | Some step, Some init, Some limit, Tac.Lang.Ge when step < 0 ->
                  Some
                    (visits_decreasing ~init:init.hi ~step:(-step)
                       ~limit:limit.lo ~inclusive:true)
              | Some step, Some init, Some limit, Tac.Lang.Ne
                when step <> 0
                     && init.lo = init.hi
                     && limit.lo = limit.hi
                     && (limit.lo - init.lo) mod step = 0
                     && (limit.lo - init.lo) / step >= 0 ->
                  Some (((limit.lo - init.lo) / step) + 1)
              | _ -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Convenience: analyse a raw TAC program (converting to SSA first). *)
let analyse program ~header = analyse_header (Tac.Ssa.convert program) ~header
