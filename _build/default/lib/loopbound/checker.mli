(** Bounded model checking of loop bounds with binary search
    (Section 5.3): the program's executions over its exhaustively
    enumerated input domains form the state space; the property "the loop
    head executes at most N times" is an LTL [always]; the bound is the
    least N the checker verifies. *)

type verdict = Verified | Violated of (Tac.Lang.reg * int) list | Diverged

type trace_state = { label : string; visit : int }

val bound_formula : header:string -> bound:int -> trace_state Ltl.t

val verify :
  ?max_steps:int -> Tac.Lang.program -> header:string -> bound:int -> verdict
(** Check [always (visits header <= bound)] over every input valuation.
    [Violated] carries a concrete counterexample input. *)

val find_bound :
  ?max_steps:int -> ?upper:int -> Tac.Lang.program -> header:string ->
  int option
(** Binary search for the least verified bound; [None] if even [upper]
    cannot be verified. *)

val max_observed : ?max_steps:int -> Tac.Lang.program -> header:string -> int
(** Exhaustive ground truth, for validating the other two. *)

val pp_verdict : verdict Fmt.t
