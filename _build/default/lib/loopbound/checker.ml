(* Bounded model checking of loop bounds with binary search, following the
   architecture of Section 5.3: the program (usually first reduced by
   slicing) is turned into a transition system whose states are
   (block label, visit count) pairs; the property "the loop head executes
   at most N times" is an LTL [always]; and the bound is found by binary
   search over N using the checker as a yes/no oracle.

   The state space is the product of the declared finite input domains and
   the program's executions; both are exhausted, so a "verified" answer is
   a proof over the whole domain, not a sample. *)

type verdict = Verified | Violated of (Tac.Lang.reg * int) list | Diverged

(* One trace state: the block just entered and its visit count so far. *)
type trace_state = { label : string; visit : int }

let bound_formula ~header ~bound =
  Ltl.always
    (Ltl.prop
       (Fmt.str "visits(%s) <= %d" header bound)
       (fun s -> s.label <> header || s.visit <= bound))

(* Check [always (visits header <= bound)] over every input valuation. *)
let verify ?(max_steps = 200_000) program ~header ~bound =
  let formula = bound_formula ~header ~bound in
  let witness = ref [] in
  let ok =
    Tac.Interp.for_all_inputs program (fun inputs ->
        let trace = ref [] in
        match
          Tac.Interp.run ~max_steps
            ~on_visit:(fun label visit ->
              if label = header then trace := { label; visit } :: !trace)
            program ~inputs
        with
        | exception Tac.Interp.Step_limit -> false
        | _state, _counts ->
            let holds = Ltl.check_trace formula (List.rev !trace) in
            if not holds then witness := inputs;
            holds)
  in
  if ok then Verified
  else if !witness <> [] then Violated !witness
  else Diverged

(* Binary search for the least verified bound (the paper's "binary search
   over the loop count").  Returns [None] if even [upper] cannot be
   verified (divergence or a genuinely larger bound). *)
let find_bound ?(max_steps = 200_000) ?(upper = 65_536) program ~header =
  match verify ~max_steps program ~header ~bound:upper with
  | Violated _ | Diverged -> None
  | Verified ->
      let rec search lo hi =
        (* Invariant: hi is verified, lo-1 ... all below lo unverified or
           unknown; find least verified in [lo, hi]. *)
        if lo >= hi then Some hi
        else
          let mid = (lo + hi) / 2 in
          match verify ~max_steps program ~header ~bound:mid with
          | Verified -> search lo mid
          | Violated _ | Diverged -> search (mid + 1) hi
      in
      search 0 upper

(* Ground truth by exhaustive execution: the maximum observed visit count
   of [header] over all inputs.  Used by tests to check soundness and
   tightness of both the checker and the counter analysis. *)
let max_observed ?(max_steps = 200_000) program ~header =
  let best = ref 0 in
  let _ =
    Tac.Interp.for_all_inputs program (fun inputs ->
        let _, trace = Tac.Interp.run ~max_steps program ~inputs in
        best := max !best (Tac.Interp.visits trace header);
        true)
  in
  !best

let pp_verdict ppf = function
  | Verified -> Fmt.string ppf "verified"
  | Violated inputs ->
      Fmt.pf ppf "violated at {%a}"
        Fmt.(list ~sep:comma (pair ~sep:(any "=") string int))
        inputs
  | Diverged -> Fmt.string ppf "diverged (step limit)"
