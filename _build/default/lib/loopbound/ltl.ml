(* Linear temporal logic over finite traces (LTLf).

   The paper converts a sliced loop into "a model in linear temporal
   logic" and asks a model checker for the maximum execution count of the
   loop head (Section 5.3).  Our model checker enumerates the finite input
   domains and checks each resulting execution trace against an LTL
   formula; the loop-bound property is [always (visits header <= n)]. *)

type 'state t =
  | Prop of string * ('state -> bool)
  | Not of 'state t
  | And of 'state t * 'state t
  | Or of 'state t * 'state t
  | Next of 'state t
  | Always of 'state t
  | Eventually of 'state t
  | Until of 'state t * 'state t

let prop name p = Prop (name, p)
let neg f = Not f
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let next f = Next f
let always f = Always f
let eventually f = Eventually f
let until a b = Until (a, b)
let implies a b = Or (Not a, b)

(* Finite-trace semantics: [Next] is false at the last position; [Always]
   and [Eventually] quantify over the remaining suffix. *)
let check_trace formula trace =
  let trace = Array.of_list trace in
  let n = Array.length trace in
  let rec holds f i =
    match f with
    | Prop (_, p) -> i < n && p trace.(i)
    | Not g -> not (holds g i)
    | And (g, h) -> holds g i && holds h i
    | Or (g, h) -> holds g i || holds h i
    | Next g -> i + 1 < n && holds g (i + 1)
    | Always g ->
        let rec all j = j >= n || (holds g j && all (j + 1)) in
        all i
    | Eventually g ->
        let rec some j = j < n && (holds g j || some (j + 1)) in
        some i
    | Until (g, h) ->
        let rec scan j =
          j < n && (holds h j || (holds g j && scan (j + 1)))
        in
        scan i
  in
  n = 0 || holds formula 0

let rec pp ppf = function
  | Prop (name, _) -> Fmt.string ppf name
  | Not f -> Fmt.pf ppf "!(%a)" pp f
  | And (a, b) -> Fmt.pf ppf "(%a & %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a | %a)" pp a pp b
  | Next f -> Fmt.pf ppf "X(%a)" pp f
  | Always f -> Fmt.pf ppf "G(%a)" pp f
  | Eventually f -> Fmt.pf ppf "F(%a)" pp f
  | Until (a, b) -> Fmt.pf ppf "(%a U %a)" pp a pp b
