(** Linear temporal logic over finite traces (LTLf).

    The loop-bound property of Section 5.3 is expressed as
    [always (visits header <= n)] and checked against execution traces of
    the (sliced) program. *)

type 'state t =
  | Prop of string * ('state -> bool)
  | Not of 'state t
  | And of 'state t * 'state t
  | Or of 'state t * 'state t
  | Next of 'state t
  | Always of 'state t
  | Eventually of 'state t
  | Until of 'state t * 'state t

val prop : string -> ('state -> bool) -> 'state t
val neg : 'state t -> 'state t
val ( &&& ) : 'state t -> 'state t -> 'state t
val ( ||| ) : 'state t -> 'state t -> 'state t
val next : 'state t -> 'state t
val always : 'state t -> 'state t
val eventually : 'state t -> 'state t
val until : 'state t -> 'state t -> 'state t
val implies : 'state t -> 'state t -> 'state t

val check_trace : 'state t -> 'state list -> bool
(** Finite-trace semantics: [Next] is false at the last position; the
    empty trace satisfies every formula vacuously. *)

val pp : 'state t Fmt.t
