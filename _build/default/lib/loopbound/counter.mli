(** Syntactic induction-variable analysis for counter loops: the paper's
    "loops which use explicit counter variables can be easily bounded
    using static analysis" (Section 5.3).

    Recognises, on SSA form, a header phi whose in-loop source is the phi
    plus or minus a constant, compared against a constant or an input
    parameter's domain.  Returns the bound on header visits per loop
    entry, or [None] when the pattern does not apply (the caller then
    falls back to the model checker). *)

type interval = { lo : int; hi : int }

val analyse : Tac.Lang.program -> header:string -> int option
val analyse_header : Tac.Ssa.t -> header:string -> int option

val visits_increasing : init:int -> step:int -> limit:int -> inclusive:bool -> int
val visits_decreasing : init:int -> step:int -> limit:int -> inclusive:bool -> int
