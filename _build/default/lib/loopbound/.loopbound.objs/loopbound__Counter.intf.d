lib/loopbound/counter.mli: Tac
