lib/loopbound/ltl.mli: Fmt
