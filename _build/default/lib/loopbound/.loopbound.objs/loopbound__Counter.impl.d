lib/loopbound/counter.ml: Cfg List Tac
