lib/loopbound/checker.ml: Fmt List Ltl Tac
