lib/loopbound/checker.mli: Fmt Ltl Tac
