lib/loopbound/ltl.ml: Array Fmt
