(* Branch-and-bound integer programming over the rational simplex.

   All variables are required to take integer values.  Depth-first search
   with an incumbent bound: a node is pruned when its LP relaxation cannot
   beat the best integral solution found so far.  Because IPET objectives
   have integer coefficients, the LP bound can be floored before comparing,
   which prunes aggressively.  IPET flow problems are network-like and their
   relaxations are usually integral already, so in practice the root node
   ends the search. *)

exception Node_limit

type outcome =
  | Optimal of { objective : int; values : int array }
  | Infeasible
  | Unbounded

type stats = { mutable nodes : int; mutable lp_solves : int }

let fractional_var (solution : Simplex.solution) =
  let n = Array.length solution.values in
  let rec scan i =
    if i >= n then None
    else if Rat.is_integer solution.values.(i) then scan (i + 1)
    else Some (i, solution.values.(i))
  in
  scan 0

let solve ?(max_nodes = 100_000) ?stats problem =
  let stats = match stats with Some s -> s | None -> { nodes = 0; lp_solves = 0 } in
  let incumbent = ref None in
  let better objective =
    match !incumbent with
    | None -> true
    | Some (best, _) -> objective > best
  in
  let unbounded = ref false in
  (* [bounds] is the list of extra branching constraints along this path. *)
  let rec node bounds =
    stats.nodes <- stats.nodes + 1;
    if stats.nodes > max_nodes then raise Node_limit;
    stats.lp_solves <- stats.lp_solves + 1;
    match Problem.solve_relaxation ~extra:bounds problem with
    | Simplex.Infeasible -> ()
    | Simplex.Unbounded ->
        (* An unbounded relaxation at any node makes the ILP unbounded or
           infeasible; report unbounded conservatively from the root. *)
        unbounded := true
    | Simplex.Optimal solution ->
        let bound = Rat.floor solution.objective in
        if (not !unbounded) && better bound then begin
          match fractional_var solution with
          | None ->
              let values = Array.map Rat.to_int_exn solution.values in
              if better bound then incumbent := Some (bound, values)
          | Some (v, value) ->
              let floor_c =
                {
                  Problem.label = "branch-le";
                  terms = [ (1, List.nth (Problem.vars problem) v) ];
                  relation = Problem.Le;
                  bound = Rat.floor value;
                }
              and ceil_c =
                {
                  Problem.label = "branch-ge";
                  terms = [ (1, List.nth (Problem.vars problem) v) ];
                  relation = Problem.Ge;
                  bound = Rat.ceil value;
                }
              in
              (* Explore the floor branch first: WCET flows are usually
                 pushed to their bounds, so ceiling tends to win; trying
                 floor first still finds it via the second branch while the
                 incumbent from the first prunes elsewhere. *)
              node (floor_c :: bounds);
              node (ceil_c :: bounds)
        end
  in
  node [];
  if !unbounded then Unbounded
  else
    match !incumbent with
    | Some (objective, values) -> Optimal { objective; values }
    | None -> Infeasible

let pp_outcome ppf = function
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Optimal { objective; values } ->
      Fmt.pf ppf "optimal %d at (%a)" objective Fmt.(array ~sep:comma int) values
