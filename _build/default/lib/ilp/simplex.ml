(* Two-phase dense simplex over exact rationals.

   Standard textbook algorithm with Bland's anti-cycling rule:
   - constraints are normalised to non-negative right-hand sides;
   - Le constraints get a slack variable, Ge a surplus plus an artificial,
     Eq an artificial;
   - phase 1 maximises minus the sum of artificials; a negative optimum
     means the problem is infeasible;
   - phase 2 maximises the user objective with artificial columns banned.

   Exact rationals (with overflow detection) make the solver sound, which
   matters because its output is a claimed *upper bound* on execution time. *)

type op = Le | Ge | Eq

type lp = {
  num_vars : int;
  maximize : Rat.t array;
  constraints : (Rat.t array * op * Rat.t) list;
}

type solution = { objective : Rat.t; values : Rat.t array }
type result = Optimal of solution | Infeasible | Unbounded

type tableau = {
  rows : Rat.t array array;  (* m rows, each of width [cols] *)
  rhs : Rat.t array;
  basis : int array;  (* column index of the basic variable of each row *)
  cost : Rat.t array;  (* current reduced costs *)
  mutable objective : Rat.t;
  cols : int;
  art_first : int;  (* first artificial column; cols if none *)
}

let pivot t ~row ~col =
  let piv = t.rows.(row).(col) in
  assert (Rat.sign piv > 0);
  let inv = Rat.inv piv in
  let r = t.rows.(row) in
  for j = 0 to t.cols - 1 do
    r.(j) <- Rat.mul r.(j) inv
  done;
  t.rhs.(row) <- Rat.mul t.rhs.(row) inv;
  let eliminate coeffs =
    let factor = coeffs.(col) in
    if Rat.is_zero factor then Rat.zero
    else begin
      for j = 0 to t.cols - 1 do
        coeffs.(j) <- Rat.sub coeffs.(j) (Rat.mul factor r.(j))
      done;
      Rat.mul factor t.rhs.(row)
    end
  in
  Array.iteri
    (fun i coeffs ->
      if i <> row then t.rhs.(i) <- Rat.sub t.rhs.(i) (eliminate coeffs))
    t.rows;
  (* The cost row represents z = objective + sum cbar_j x_j, so its constant
     moves with the opposite sign from the constraint rows. *)
  t.objective <- Rat.add t.objective (eliminate t.cost);
  t.basis.(row) <- col

(* One simplex phase: maximise until no improving column.  [allowed col]
   filters which columns may enter the basis (used to ban artificials in
   phase 2).  Bland's rule: smallest-index entering column; ratio-test ties
   broken by smallest basic-variable index. *)
let iterate t ~allowed =
  let m = Array.length t.rows in
  let rec step () =
    let entering = ref (-1) in
    (try
       for j = 0 to t.cols - 1 do
         if allowed j && Rat.sign t.cost.(j) > 0 then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let leave = ref (-1) in
      let best = ref Rat.zero in
      for i = 0 to m - 1 do
        if Rat.sign t.rows.(i).(col) > 0 then begin
          let ratio = Rat.div t.rhs.(i) t.rows.(i).(col) in
          if
            !leave < 0
            || Rat.lt ratio !best
            || (Rat.equal ratio !best && t.basis.(i) < t.basis.(!leave))
          then begin
            leave := i;
            best := ratio
          end
        end
      done;
      if !leave < 0 then `Unbounded
      else begin
        pivot t ~row:!leave ~col;
        step ()
      end
    end
  in
  step ()

let solve lp =
  let m = List.length lp.constraints in
  (* Normalise to non-negative rhs and count extra columns. *)
  let normalised =
    List.map
      (fun (coeffs, op, rhs) ->
        assert (Array.length coeffs = lp.num_vars);
        if Rat.sign rhs < 0 then
          let flipped =
            match op with Le -> Ge | Ge -> Le | Eq -> Eq
          in
          (Array.map Rat.neg coeffs, flipped, Rat.neg rhs)
        else (Array.map Fun.id coeffs, op, rhs))
      lp.constraints
  in
  let n_slack =
    List.length (List.filter (fun (_, op, _) -> op <> Eq) normalised)
  in
  let n_art =
    List.length (List.filter (fun (_, op, _) -> op <> Le) normalised)
  in
  let art_first = lp.num_vars + n_slack in
  let cols = art_first + n_art in
  let rows = Array.init m (fun _ -> Array.make cols Rat.zero) in
  let rhs = Array.make m Rat.zero in
  let basis = Array.make m (-1) in
  let next_slack = ref lp.num_vars in
  let next_art = ref art_first in
  List.iteri
    (fun i (coeffs, op, b) ->
      Array.blit coeffs 0 rows.(i) 0 lp.num_vars;
      rhs.(i) <- b;
      (match op with
      | Le ->
          rows.(i).(!next_slack) <- Rat.one;
          basis.(i) <- !next_slack;
          incr next_slack
      | Ge ->
          rows.(i).(!next_slack) <- Rat.minus_one;
          incr next_slack;
          rows.(i).(!next_art) <- Rat.one;
          basis.(i) <- !next_art;
          incr next_art
      | Eq ->
          rows.(i).(!next_art) <- Rat.one;
          basis.(i) <- !next_art;
          incr next_art);
      ())
    normalised;
  let t =
    { rows; rhs; basis; cost = Array.make cols Rat.zero; objective = Rat.zero;
      cols; art_first }
  in
  (* Phase 1: maximise -(sum of artificials).  With artificials basic, the
     reduced costs are the column sums over the artificial rows. *)
  if n_art > 0 then begin
    for i = 0 to m - 1 do
      if basis.(i) >= art_first then begin
        for j = 0 to cols - 1 do
          if j < art_first then t.cost.(j) <- Rat.add t.cost.(j) rows.(i).(j)
        done;
        t.objective <- Rat.sub t.objective rhs.(i)
      end
    done;
    match iterate t ~allowed:(fun j -> j < art_first) with
    | `Unbounded -> assert false (* phase-1 objective is bounded above by 0 *)
    | `Optimal ->
        if Rat.sign t.objective < 0 then raise Exit
  end;
  (* Drive any artificial still in the basis (at value 0) out, or mark its
     row redundant by zeroing it. *)
  for i = 0 to m - 1 do
    if t.basis.(i) >= art_first then begin
      let piv = ref (-1) in
      (try
         for j = 0 to art_first - 1 do
           if Rat.sign t.rows.(i).(j) <> 0 then begin
             piv := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !piv >= 0 then begin
        (* The row is degenerate (rhs = 0), so a negative pivot element can
           be made positive by negating the whole row. *)
        if Rat.sign t.rows.(i).(!piv) < 0 then begin
          t.rows.(i) <- Array.map Rat.neg t.rows.(i);
          t.rhs.(i) <- Rat.neg t.rhs.(i)
        end;
        pivot t ~row:i ~col:!piv
      end
      else begin
        (* Redundant row: clear it so it can never constrain anything. *)
        Array.fill t.rows.(i) 0 cols Rat.zero;
        t.rhs.(i) <- Rat.zero;
        t.rows.(i).(t.basis.(i)) <- Rat.one
      end
    end
  done;
  (* Phase 2: install the user objective and price out basic columns. *)
  Array.fill t.cost 0 cols Rat.zero;
  t.objective <- Rat.zero;
  Array.blit lp.maximize 0 t.cost 0 lp.num_vars;
  for i = 0 to m - 1 do
    let b = t.basis.(i) in
    if b < lp.num_vars then begin
      let c = lp.maximize.(b) in
      if not (Rat.is_zero c) then begin
        for j = 0 to cols - 1 do
          t.cost.(j) <- Rat.sub t.cost.(j) (Rat.mul c t.rows.(i).(j))
        done;
        t.objective <- Rat.add t.objective (Rat.mul c t.rhs.(i))
      end
    end
  done;
  match iterate t ~allowed:(fun j -> j < art_first) with
  | `Unbounded -> Unbounded
  | `Optimal ->
      let values = Array.make lp.num_vars Rat.zero in
      for i = 0 to m - 1 do
        if t.basis.(i) < lp.num_vars then values.(t.basis.(i)) <- t.rhs.(i)
      done;
      Optimal { objective = t.objective; values }

let solve lp = try solve lp with Exit -> Infeasible

let pp_result ppf = function
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Optimal { objective; values } ->
      Fmt.pf ppf "optimal %a at (%a)" Rat.pp objective
        Fmt.(array ~sep:comma Rat.pp)
        values
