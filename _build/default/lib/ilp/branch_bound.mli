(** Branch-and-bound integer linear programming.

    Solves a {!Problem.t} with all variables restricted to non-negative
    integers, maximising the objective.  This is the "off-the-shelf ILP
    solver" role of the paper's toolchain (Section 5.2). *)

exception Node_limit

type outcome =
  | Optimal of { objective : int; values : int array }
  | Infeasible
  | Unbounded

type stats = { mutable nodes : int; mutable lp_solves : int }

val solve : ?max_nodes:int -> ?stats:stats -> Problem.t -> outcome
(** @raise Node_limit if the search exceeds [max_nodes] (default 100_000). *)

val pp_outcome : outcome Fmt.t
