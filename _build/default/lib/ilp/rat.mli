(** Exact rational arithmetic over native integers with overflow detection.

    Sufficient for the small IPET problems of the WCET analysis; any
    overflow raises {!Overflow} rather than producing a wrong answer. *)

exception Overflow

type t

val make : int -> int -> t
(** [make num den] in lowest terms.  @raise Invalid_argument on [den = 0]. *)

val zero : t
val one : t
val minus_one : t
val of_int : int -> t
val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val div : t -> t -> t
val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val floor : t -> int
val ceil : t -> int
val to_float : t -> float

val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val pp : t Fmt.t
