lib/ilp/problem.mli: Fmt Rat Simplex
