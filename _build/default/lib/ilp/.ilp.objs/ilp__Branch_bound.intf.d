lib/ilp/branch_bound.mli: Fmt Problem
