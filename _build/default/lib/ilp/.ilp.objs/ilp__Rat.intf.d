lib/ilp/rat.mli: Fmt
