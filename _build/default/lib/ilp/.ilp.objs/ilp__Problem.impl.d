lib/ilp/problem.ml: Array Fmt Fun List Rat Simplex
