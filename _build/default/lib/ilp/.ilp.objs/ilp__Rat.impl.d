lib/ilp/rat.ml: Fmt Stdlib
