lib/ilp/branch_bound.ml: Array Fmt List Problem Rat Simplex
