lib/ilp/simplex.ml: Array Fmt Fun List Rat
