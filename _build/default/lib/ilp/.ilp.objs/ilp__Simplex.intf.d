lib/ilp/simplex.mli: Fmt Rat
