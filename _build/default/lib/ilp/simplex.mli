(** Two-phase dense simplex over exact rationals, with Bland's rule.

    Solves [max c.x  s.t.  A x {<=,>=,=} b,  x >= 0].  Exactness matters
    because the solver's output is used as a claimed sound upper bound on
    worst-case execution time. *)

type op = Le | Ge | Eq

type lp = {
  num_vars : int;
  maximize : Rat.t array;  (** objective coefficients, length [num_vars] *)
  constraints : (Rat.t array * op * Rat.t) list;
}

type solution = { objective : Rat.t; values : Rat.t array }
type result = Optimal of solution | Infeasible | Unbounded

val solve : lp -> result
val pp_result : result Fmt.t
