(** The proof-invariant catalogue of Section 2.2 as executable checks:
    queue well-formedness, the Benno-scheduling invariant, the bitmap
    mirror, object alignment and non-overlap, derivation-tree shape,
    shadow back-pointer consistency, kernel global mappings, and clearing
    completeness.  Property tests run {!check} after every kernel entry. *)

exception Violation of string

val check : Kernel.t -> unit
(** Run the whole catalogue.  @raise Violation with a description. *)

val check_result : Kernel.t -> (unit, string) Result.t

(** Individual checks, for targeted tests: *)

val check_run_queues : Kernel.t -> unit
val check_endpoints : Kernel.t -> unit
val check_notifications : Kernel.t -> unit
val check_alignment : Kernel.t -> unit
val check_cdt : Kernel.t -> unit
val check_shadow_tables : Kernel.t -> unit
val check_kernel_mappings : Kernel.t -> unit
val check_cleared : Kernel.t -> unit
