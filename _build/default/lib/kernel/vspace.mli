(** Virtual address-space management in both designs of Section 3.6:

    - [Asid_table]: frame caps name their address space through an ASID
      index; stale ASIDs are harmless (checked on use), making deletion
      O(1), but ASID allocation scans up to 1024 slots and pool teardown
      visits up to 1024 address spaces, unpreemptibly.
    - [Shadow_tables]: frame caps point directly at the page directory;
      page tables and directories carry shadow arrays of back-pointers to
      the frame-cap slots.  All state is exact and eager, so deletion
      walks the tables — one preemption point per entry, with the lowest
      mapped index memoised (incremental consistency). *)

open Ktypes

type progress = Done | Preempted

val pd_index : int -> int
val pt_index : int -> int
val pde_addr : page_directory -> int -> int
val pte_addr : page_table -> int -> int

(** {1 ASID table (original design)} *)

type asid_state = { table : asid_pool option array }

val asid_top_slots : int
val create_asid_state : unit -> asid_state
val asid_lookup : Ctx.t -> asid_state -> int -> page_directory option

val asid_alloc :
  Ctx.t -> asid_state -> asid_pool -> pool_slot:int -> page_directory ->
  int option
(** Find a free slot in the pool — the unpreemptible search the paper
    calls out.  Returns the allocated ASID. *)

val asid_delete_vspace : Ctx.t -> asid_state -> page_directory -> unit
(** O(1) deletion: drop the table entry and invalidate the TLB; frame caps
    keep harmless stale references. *)

val asid_pool_delete : Ctx.t -> asid_state -> pool_slot:int -> unit
(** The unpreemptible 1024-entry teardown of the original design. *)

(** {1 Kernel global mappings (both designs)} *)

val copy_kernel_mappings : Ctx.t -> page_directory -> unit
(** The 1 KiB copy into a fresh page directory — deliberately not
    preemptible (the tolerated ~20 us latency of Section 3.5). *)

(** {1 Mapping} *)

type map_error =
  | Already_mapped
  | No_page_table
  | Pde_occupied
  | Bad_vspace
  | Kernel_region

exception Vm_error of map_error

val resolve_vspace : Ctx.t -> Build.t -> asid_state -> cap -> page_directory
(** @raise Vm_error on a stale or invalid vspace reference. *)

val map_page_table : Ctx.t -> page_directory -> vaddr:int -> pt_cap_data -> unit
val map_frame :
  Ctx.t -> Build.t -> frame_cap_data -> slot:slot -> page_directory ->
  vaddr:int -> unit

val unmap_frame : Ctx.t -> Build.t -> asid_state -> frame_cap_data -> unit
(** In the ASID design the reference may be stale: the mapping is checked
    against the frame before being cleared. *)

(** {1 Preemptible teardown (shadow design)} *)

val delete_page_table_mappings : Ctx.t -> page_table -> progress
(** Clear every entry and its frame cap's back-pointer, one preemption
    point per entry, resuming from the memoised lowest mapped index. *)

val delete_vspace_shadow : Ctx.t -> page_directory -> progress
(** Eager whole-space teardown: sections and page tables, with nested
    preemptible page-table walks. *)

val pp_map_error : map_error Fmt.t
