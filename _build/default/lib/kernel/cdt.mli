(** Capability derivation tree (seL4's mapping database) as a first-child
    / sibling-list tree threaded through slots.

    Revocation deletes the subtree below a slot one leaf at a time — the
    canonical incremental-consistency shape: after each removal the tree
    is well formed again, so a preemption point fits between any two
    removals. *)

open Ktypes

val slot_addr : slot -> int
(** Simulated memory address of a slot (for cache accounting). *)

val insert_child : Ctx.t -> parent:slot -> child:slot -> unit

val remove : Ctx.t -> slot -> unit
(** Unlink a slot; its children are re-parented to its parent and spliced
    into the sibling list in its place. *)

val replace : Ctx.t -> old_slot:slot -> new_slot:slot -> unit
(** Transplant a slot's tree position onto another slot (capability
    moves keep their derivation position, unlike copies). *)

val deepest_descendant : slot -> slot option
(** A leaf of the subtree below the slot, or [None]: revoke deletes
    descendants bottom-up. *)

val descendants : slot -> slot list
val has_children : slot -> bool

val check_well_formed : slot -> bool
(** Sibling-list and parent-pointer consistency of the subtree. *)
