(** The scheduler: 256 fixed priorities with per-priority FIFO run queues,
    in the three variants the paper compares — lazy scheduling (Figure 2),
    Benno scheduling (Figure 3), and Benno with the two-level CLZ priority
    bitmap (Section 3.2).  Higher priority number = more urgent. *)

open Ktypes

val num_priorities : int
val bucket_bits : int
val num_buckets : int

type t

val create : Build.t -> idle:tcb -> t

val queue : t -> prio -> tcb_queue

val enqueue : Ctx.t -> t -> tcb -> unit
(** Append at the tail of the thread's priority queue. *)

val dequeue : Ctx.t -> t -> tcb -> unit

val on_block : Ctx.t -> t -> tcb -> unit
(** The thread stopped being runnable: Benno builds dequeue it now; lazy
    scheduling deliberately leaves it parked. *)

val make_runnable : Ctx.t -> t -> tcb -> unit
(** Enqueue unless already queued. *)

val choose_thread : Ctx.t -> t -> tcb
(** The scheduling decision, per variant: lazy scan with stale dequeues,
    Benno scan, or the two-load/two-CLZ bitmap lookup. *)

val queued_threads : t -> prio -> tcb list
val all_queued : t -> tcb list
val bitmap_bit_set : t -> prio -> bool
