(** Intrusive doubly-linked endpoint wait queues: O(1) enqueue/dequeue
    (Section 3.4 relies on this); only whole-queue operations iterate,
    and those carry preemption points.

    [dequeue] also keeps any in-flight badged-abort cursor on the endpoint
    valid — part of what makes the Section 3.4 resume state safe against
    concurrent queue surgery. *)

open Ktypes

val enqueue : Ctx.t -> endpoint -> tcb -> unit
val dequeue : Ctx.t -> endpoint -> tcb -> unit
val pop : Ctx.t -> endpoint -> tcb option
val is_empty : endpoint -> bool
val to_list : endpoint -> tcb list
val length : endpoint -> int
