(* Intrusive wait queue of a notification object, reusing the endpoint
   link fields of the TCB (a thread is never blocked on both). *)

open Ktypes

let enqueue ctx (n : notification) tcb =
  Ctx.exec ctx "endpoint_queue" Costs.ep_enqueue_instrs;
  Ctx.store ctx n.ntfn_addr;
  Ctx.store ctx tcb.tcb_addr;
  assert (tcb.ep_next = None && tcb.ep_prev = None);
  let q = n.ntfn_queue in
  match q.tail with
  | None ->
      q.head <- Some tcb;
      q.tail <- Some tcb
  | Some old_tail ->
      Ctx.store ctx old_tail.tcb_addr;
      old_tail.ep_next <- Some tcb;
      tcb.ep_prev <- Some old_tail;
      q.tail <- Some tcb

let dequeue ctx (n : notification) tcb =
  Ctx.exec ctx "endpoint_queue" Costs.ep_dequeue_instrs;
  Ctx.store ctx n.ntfn_addr;
  Ctx.store ctx tcb.tcb_addr;
  let q = n.ntfn_queue in
  (match tcb.ep_prev with
  | None -> q.head <- tcb.ep_next
  | Some prev ->
      Ctx.store ctx prev.tcb_addr;
      prev.ep_next <- tcb.ep_next);
  (match tcb.ep_next with
  | None -> q.tail <- tcb.ep_prev
  | Some next ->
      Ctx.store ctx next.tcb_addr;
      next.ep_prev <- tcb.ep_prev);
  tcb.ep_prev <- None;
  tcb.ep_next <- None

let pop ctx (n : notification) =
  match n.ntfn_queue.head with
  | None -> None
  | Some tcb ->
      dequeue ctx n tcb;
      Some tcb

let to_list (n : notification) =
  let rec walk acc = function
    | None -> List.rev acc
    | Some tcb -> walk (tcb :: acc) tcb.ep_next
  in
  walk [] n.ntfn_queue.head
