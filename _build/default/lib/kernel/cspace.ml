(* Guarded capability-space decoding.

   seL4 cap addresses are 32-bit values resolved through a tree of CNodes,
   each consuming a guard (bits that must match) plus a radix (bits
   indexing into the node's slots).  An adversarial capability space can
   force one bit per level — 32 levels, each a fresh cache miss — which is
   the paper's Figure 7 worst case and its dominant syscall cost.  seL4's
   defence is authority: don't let untrusted code build its own deep
   spaces. *)

open Ktypes

type error =
  | Invalid_root
  | Guard_mismatch of int (* level *)
  | Depth_exhausted
  | Empty_slot of int (* level *)

type result = Ok_slot of slot * int (* levels traversed *) | Error of error

let word_bits = 32

(* Resolve [cptr] against the cspace rooted at [root_cap].  Returns the
   slot addressed, charging one level's work per CNode traversed. *)
let resolve ctx ~root_cap ~cptr =
  let rec level cap remaining depth =
    Ctx.exec ctx "cspace_lookup" Costs.cspace_level_instrs;
    match cap with
    | Cnode_cap { cnode; guard; guard_bits } ->
        Ctx.load ctx cnode.cn_addr;
        let radix = cnode.cn_bits in
        let need = guard_bits + radix in
        if need > remaining then Error Depth_exhausted
        else begin
          let shifted_guard =
            (cptr lsr (remaining - guard_bits)) land ((1 lsl guard_bits) - 1)
          in
          if guard_bits > 0 && shifted_guard <> guard then
            Error (Guard_mismatch depth)
          else begin
            let index =
              (cptr lsr (remaining - need)) land ((1 lsl radix) - 1)
            in
            let slot = cnode.cn_slots.(index) in
            Ctx.load ctx (Cdt.slot_addr slot);
            let remaining = remaining - need in
            if remaining = 0 then Ok_slot (slot, depth + 1)
            else
              match slot.cap with
              | Cnode_cap _ as next ->
                  Ctx.branch ctx "cspace_lookup" ~taken:true;
                  level next remaining (depth + 1)
              | Null_cap -> Error (Empty_slot depth)
              | _ ->
                  (* Resolution stops early at a non-CNode cap; seL4 treats
                     this as resolving to that slot. *)
                  Ok_slot (slot, depth + 1)
          end
        end
    | _ -> Error Invalid_root
  in
  level root_cap word_bits 0

(* Look up the capability itself (most syscalls want the cap, not the
   slot). *)
let lookup_cap ctx ~root_cap ~cptr =
  match resolve ctx ~root_cap ~cptr with
  | Ok_slot (slot, depth) -> Result.Ok (slot.cap, depth)
  | Error e -> Result.Error e

let pp_error ppf = function
  | Invalid_root -> Fmt.string ppf "invalid root"
  | Guard_mismatch d -> Fmt.pf ppf "guard mismatch at level %d" d
  | Depth_exhausted -> Fmt.string ppf "depth exhausted"
  | Empty_slot d -> Fmt.pf ppf "empty slot at level %d" d
