(** Untyped memory retype: object creation with preemptible clearing
    (Section 3.5).  All object memory is cleared before any other kernel
    state changes, one chunk per preemption point, with progress stored in
    the objects; the remaining bookkeeping is a short atomic pass.  A
    preempted retype is restartable and resumes from the watermarks. *)

open Ktypes

type error =
  | Not_enough_memory
  | Dest_slot_occupied
  | Invalid_count
  | Untyped_has_children

type outcome = Done of cap list | Preempted | Error of error

val retype :
  Ctx.t ->
  fresh_id:(unit -> int) ->
  register:(any_object -> unit) ->
  ut_slot:slot ->
  obj_type ->
  count:int ->
  dest_slots:slot list ->
  outcome
(** Create [count] objects of the given type out of the untyped in
    [ut_slot], installing their capabilities in [dest_slots] as CDT
    children of the untyped.  New page directories receive the global
    kernel mappings (unpreemptible 1 KiB copy). *)

val pp_error : error Fmt.t
