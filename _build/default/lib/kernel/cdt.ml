(* Capability derivation tree (seL4's mapping database), kept as a
   first-child / sibling-list tree threaded through slots.

   Derived caps (mint, copy, retype results) become children of the cap
   they were derived from.  Revocation deletes the subtree below a slot,
   one slot at a time — the canonical incremental-consistency operation:
   after each removal the tree is again well formed, so a preemption point
   fits between any two removals (Section 3.3 uses exactly this shape for
   endpoint deletion; CNode revoke shares it). *)

open Ktypes

let slot_addr slot =
  match slot.sl_cnode with
  | Some cn -> cn.cn_addr + (16 * slot.sl_index)
  | None -> Layout.data_base + 0x8000 + (16 * slot.sl_index)

(* Link [child] as a derivation child of [parent]. *)
let insert_child ctx ~parent ~child =
  assert (child.cdt_parent = None);
  Ctx.exec ctx "cdt_ops" Costs.cdt_insert_instrs;
  Ctx.store ctx (slot_addr parent);
  Ctx.store ctx (slot_addr child);
  child.cdt_parent <- Some parent;
  child.cdt_next <- parent.cdt_first_child;
  (match parent.cdt_first_child with
  | Some first ->
      Ctx.store ctx (slot_addr first);
      first.cdt_prev <- Some child
  | None -> ());
  parent.cdt_first_child <- Some child

(* Unlink a slot from the tree.  Its children are re-parented to the
   slot's parent and spliced into the sibling list in the slot's place
   (seL4 keeps derivation ancestry transitive on delete). *)
let remove ctx slot =
  Ctx.exec ctx "cdt_ops" Costs.cdt_remove_instrs;
  Ctx.store ctx (slot_addr slot);
  let parent = slot.cdt_parent in
  let before = slot.cdt_prev and after = slot.cdt_next in
  let rec set_parent = function
    | None -> ()
    | Some c ->
        Ctx.store ctx (slot_addr c);
        c.cdt_parent <- parent;
        set_parent c.cdt_next
  in
  set_parent slot.cdt_first_child;
  let rec last = function
    | Some c when c.cdt_next <> None -> last c.cdt_next
    | other -> other
  in
  (* The segment replacing [slot] in the sibling list: its child list, or
     nothing. *)
  let seg_first, seg_last =
    match (slot.cdt_first_child, last slot.cdt_first_child) with
    | Some f, Some l -> (Some f, Some l)
    | _ -> (None, None)
  in
  let link_left = match seg_first with Some f -> Some f | None -> after in
  (match before with
  | Some b -> b.cdt_next <- link_left
  | None -> (
      match parent with
      | Some p -> p.cdt_first_child <- link_left
      | None -> ()));
  (match seg_first with Some f -> f.cdt_prev <- before | None -> ());
  let seg_end = match seg_last with Some l -> Some l | None -> before in
  (match after with Some a -> a.cdt_prev <- seg_end | None -> ());
  (match seg_last with Some l -> l.cdt_next <- after | None -> ());
  slot.cdt_parent <- None;
  slot.cdt_first_child <- None;
  slot.cdt_prev <- None;
  slot.cdt_next <- None

(* Transplant a slot's derivation-tree position onto another slot: the
   new slot takes over parent, siblings and children (capability moves
   keep their place in the tree, unlike copies which derive). *)
let replace ctx ~old_slot ~new_slot =
  Ctx.exec ctx "cdt_ops" Costs.cdt_insert_instrs;
  Ctx.store ctx (slot_addr old_slot);
  Ctx.store ctx (slot_addr new_slot);
  assert (new_slot.cdt_parent = None && new_slot.cdt_first_child = None);
  new_slot.cdt_parent <- old_slot.cdt_parent;
  new_slot.cdt_first_child <- old_slot.cdt_first_child;
  new_slot.cdt_prev <- old_slot.cdt_prev;
  new_slot.cdt_next <- old_slot.cdt_next;
  (match old_slot.cdt_parent with
  | Some p -> (
      match p.cdt_first_child with
      | Some f when f == old_slot -> p.cdt_first_child <- Some new_slot
      | _ -> ())
  | None -> ());
  (match old_slot.cdt_prev with
  | Some prev -> prev.cdt_next <- Some new_slot
  | None -> ());
  (match old_slot.cdt_next with
  | Some next -> next.cdt_prev <- Some new_slot
  | None -> ());
  let rec reparent = function
    | None -> ()
    | Some child ->
        child.cdt_parent <- Some new_slot;
        reparent child.cdt_next
  in
  reparent old_slot.cdt_first_child;
  old_slot.cdt_parent <- None;
  old_slot.cdt_first_child <- None;
  old_slot.cdt_prev <- None;
  old_slot.cdt_next <- None

(* First leaf-most descendant below [slot], or None: revoke deletes
   descendants bottom-up so that each step removes a leaf of the
   subtree. *)
let rec deepest_descendant slot =
  match slot.cdt_first_child with
  | None -> None
  | Some child -> Some (match deepest_descendant child with
    | Some deeper -> deeper
    | None -> child)

let descendants slot =
  let rec walk acc = function
    | None -> acc
    | Some child ->
        let acc = walk (child :: acc) child.cdt_first_child in
        walk acc child.cdt_next
  in
  List.rev (walk [] slot.cdt_first_child)

let has_children slot = slot.cdt_first_child <> None

(* Well-formedness of the sibling lists and parent pointers, used by the
   invariant checker. *)
let check_well_formed slot =
  (* Slots are cyclic records: all comparisons must be physical. *)
  let same a b = match a with Some x -> x == b | None -> false in
  let rec check_children parent = function
    | None -> true
    | Some child ->
        same child.cdt_parent parent
        && (match child.cdt_next with
           | Some next -> same next.cdt_prev child
           | None -> true)
        && (match child.cdt_prev with
           | Some prev -> same prev.cdt_next child
           | None -> same parent.cdt_first_child child)
        && check_children child child.cdt_first_child
        && check_children parent child.cdt_next
  in
  check_children slot slot.cdt_first_child
