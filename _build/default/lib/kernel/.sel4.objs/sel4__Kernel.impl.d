lib/kernel/kernel.ml: Array Build Cdt Costs Cspace Ctx Ep_queue Fmt Hashtbl Ktypes Layout List Ntfn_queue Objects Result Sched Untyped_ops Vspace
