lib/kernel/build.mli: Fmt
