lib/kernel/layout.ml: List
