lib/kernel/ktypes.ml: Fmt
