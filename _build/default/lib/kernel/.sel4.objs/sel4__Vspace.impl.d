lib/kernel/vspace.ml: Array Build Cdt Costs Ctx Fmt Ktypes Layout
