lib/kernel/ep_queue.ml: Costs Ctx Ktypes List
