lib/kernel/objects.ml: Array Costs Fmt Ktypes
