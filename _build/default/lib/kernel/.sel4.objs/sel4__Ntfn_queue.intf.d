lib/kernel/ntfn_queue.mli: Ctx Ktypes
