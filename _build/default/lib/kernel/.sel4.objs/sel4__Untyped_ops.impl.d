lib/kernel/untyped_ops.ml: Array Build Cdt Costs Ctx Fmt Ktypes List Objects Vspace
