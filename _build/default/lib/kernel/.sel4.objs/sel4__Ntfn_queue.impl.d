lib/kernel/ntfn_queue.ml: Costs Ctx Ktypes List
