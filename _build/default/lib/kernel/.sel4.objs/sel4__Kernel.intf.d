lib/kernel/kernel.mli: Build Ctx Hashtbl Hw Ktypes Sched Vspace
