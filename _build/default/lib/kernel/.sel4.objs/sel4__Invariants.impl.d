lib/kernel/invariants.ml: Array Build Cdt Fmt Kernel Ktypes List Objects Result Sched Vspace
