lib/kernel/invariants.mli: Kernel Result
