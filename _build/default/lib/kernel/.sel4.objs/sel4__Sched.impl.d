lib/kernel/sched.ml: Array Build Costs Ctx Ktypes Layout List
