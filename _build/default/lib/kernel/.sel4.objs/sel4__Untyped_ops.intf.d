lib/kernel/untyped_ops.mli: Ctx Fmt Ktypes
