lib/kernel/sched.mli: Build Ctx Ktypes
