lib/kernel/ctx.ml: Build Costs Hw Layout
