lib/kernel/cspace.mli: Ctx Fmt Ktypes Result
