lib/kernel/build.ml: Fmt
