lib/kernel/ep_queue.mli: Ctx Ktypes
