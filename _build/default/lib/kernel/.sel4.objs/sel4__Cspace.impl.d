lib/kernel/cspace.ml: Array Cdt Costs Ctx Fmt Ktypes Result
