lib/kernel/costs.ml:
