lib/kernel/vspace.mli: Build Ctx Fmt Ktypes
