lib/kernel/boot.ml: Array Build Cdt Fmt Kernel Ktypes List Sched Untyped_ops
