lib/kernel/cdt.ml: Costs Ctx Ktypes Layout List
