lib/kernel/cdt.mli: Ctx Ktypes
