lib/kernel/boot.mli: Build Hw Kernel Ktypes
