lib/kernel/ctx.mli: Build Hw
