(** Kernel build configuration: the paper's "before" and "after" kernels
    as switches over the same code base, enabling Table 2's comparison and
    per-dimension ablations. *)

type sched_variant =
  | Lazy  (** Figure 2: blocked threads parked in the run queues *)
  | Benno  (** Figure 3: only runnable threads queued (Section 3.1) *)
  | Benno_bitmap  (** plus the two-level CLZ priority bitmap (Section 3.2) *)

type vspace_model =
  | Asid_table  (** the original indirection with harmless stale ASIDs *)
  | Shadow_tables  (** eager back-pointers from mappings to frame caps *)

type t = {
  sched : sched_variant;
  vspace : vspace_model;
  preemption_points : bool;  (** Sections 3.3-3.6 preemption points *)
  preempt_chunk : int;  (** bytes cleared/copied between preemption points *)
}

val original : t
(** The "before" kernel of Table 2: lazy scheduling, ASID table, no
    preemption points. *)

val improved : t
(** The "after" kernel: Benno + bitmap, shadow tables, preemption points. *)

val pp : t Fmt.t
