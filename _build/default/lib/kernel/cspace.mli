(** Guarded capability-space decoding.

    A 32-bit capability address resolves through a tree of CNodes, each
    consuming guard bits plus radix bits.  An adversarial space consumes
    one bit per level — 32 pointer-chasing levels, the paper's Figure 7
    worst case and the dominant system-call cost. *)

open Ktypes

type error =
  | Invalid_root
  | Guard_mismatch of int  (** level *)
  | Depth_exhausted
  | Empty_slot of int  (** level *)

type result = Ok_slot of slot * int  (** slot, levels traversed *) | Error of error

val word_bits : int

val resolve : Ctx.t -> root_cap:cap -> cptr:int -> result
(** Resolve a capability address, charging one level's instructions and
    two loads per CNode traversed.  Resolution stops early at a non-CNode
    capability. *)

val lookup_cap : Ctx.t -> root_cap:cap -> cptr:int -> (cap * int, error) Result.t

val pp_error : error Fmt.t
