(** Intrusive wait queue of a notification object (reuses the endpoint
    link fields of the TCB; a thread is never blocked on both). *)

open Ktypes

val enqueue : Ctx.t -> notification -> tcb -> unit
val dequeue : Ctx.t -> notification -> tcb -> unit
val pop : Ctx.t -> notification -> tcb option
val to_list : notification -> tcb list
