(* Kernel build configuration: the paper's "before" and "after" kernels.

   The EuroSys'12 paper modifies seL4 in four independent dimensions; each
   is a switch here so that Table 2's before/after comparison — and
   per-dimension ablations — run against the same code base:

   - scheduler: lazy scheduling (Figure 2), Benno scheduling (Figure 3), or
     Benno scheduling plus the two-level CLZ priority bitmap (Section 3.2);
   - address spaces: the original ASID lookup table or the shadow
     page-table design (Section 3.6);
   - preemption points in endpoint deletion, badged aborts, object
     creation and address-space deletion (Sections 3.3-3.6);
   - the preemption granularity of block clear/copy operations (1 KiB,
     chosen because the unpreemptible kernel-mapping copy is 1 KiB). *)

type sched_variant = Lazy | Benno | Benno_bitmap

type vspace_model = Asid_table | Shadow_tables

type t = {
  sched : sched_variant;
  vspace : vspace_model;
  preemption_points : bool;
  preempt_chunk : int;  (* bytes cleared/copied between preemption points *)
}

(* The original seL4 of the "before" column of Table 2. *)
let original =
  {
    sched = Lazy;
    vspace = Asid_table;
    preemption_points = false;
    preempt_chunk = 1024;
  }

(* The modified kernel of the "after" columns. *)
let improved =
  {
    sched = Benno_bitmap;
    vspace = Shadow_tables;
    preemption_points = true;
    preempt_chunk = 1024;
  }

let pp ppf t =
  Fmt.pf ppf "sched=%s vspace=%s preempt=%b chunk=%d"
    (match t.sched with
    | Lazy -> "lazy"
    | Benno -> "benno"
    | Benno_bitmap -> "benno+bitmap")
    (match t.vspace with
    | Asid_table -> "asid"
    | Shadow_tables -> "shadow")
    t.preemption_points t.preempt_chunk
