(* Static cache analysis over the inlined CFG.

   A must-analysis fixpoint (descending Kleene iteration from top) computes,
   for every block, the set of cache lines guaranteed present on entry under
   the paper's conservative direct-mapped model.  From the entry states we
   derive a sound per-block cycle cost:

   - instruction issue: 1 cycle per instruction;
   - instruction fetch: one miss penalty per code line not guaranteed
     present (a guaranteed line overlaps fetch and costs nothing);
   - static data accesses: L1-hit cycles when guaranteed, otherwise the
     full memory latency;
   - dynamic data accesses: always the full memory latency, and they
     clobber all data-cache guarantees (any set may be evicted);
   - conditional branches: the constant branch cost (the analysis never
     models the predictor, exactly as in Section 5.1).

   The analysis credits the L2 cache only for addresses locked into it
   (the Section 8 configuration); everywhere else, enabling the L2 *raises*
   the conservative miss penalty from 60 to 96 cycles, which is why
   computed bounds grow with the L2 on (Table 2) even though observed
   times barely change. *)

type block_cost = {
  cycles : int;
  fetch_misses : int;
  fetch_hits : int;
  data_misses : int;
  data_hits : int;
}

type t = {
  costs : block_cost array;
  icache_in : Abstract_cache.t array;
  dcache_in : Abstract_cache.t array;
}

let cost t id = t.costs.(id)
let total_fetch_misses t = Array.fold_left (fun a c -> a + c.fetch_misses) 0 t.costs

let transfer ~config ~(payload : Timing.t) ~num_succs istate dstate =
  let miss_penalty = Hw.Config.worst_miss_cycles config in
  (* Addresses locked into the L2 (Section 8) can never cost more than an
     L2 hit; statically unknown addresses cannot be proven in-range. *)
  let penalty_for addr =
    if Hw.Config.l2_locked config addr then config.Hw.Config.l2_hit_cycles
    else miss_penalty
  in
  let hit = config.Hw.Config.l1_hit_cycles in
  let fetch_misses = ref 0 and fetch_hits = ref 0 in
  let cycles = ref 0 in
  List.iter
    (fun line ->
      if Abstract_cache.must_hit istate line then incr fetch_hits
      else begin
        incr fetch_misses;
        cycles := !cycles + penalty_for line;
        Abstract_cache.access istate line
      end)
    (Timing.code_lines payload ~line_size:config.Hw.Config.l1_line);
  let data_misses = ref 0 and data_hits = ref 0 in
  List.iter
    (fun access ->
      match access with
      | Timing.Static { addr; write = _ } ->
          if Abstract_cache.must_hit dstate addr then incr data_hits
          else begin
            incr data_misses;
            cycles := !cycles + penalty_for addr;
            Abstract_cache.access dstate addr
          end
      | Timing.Dynamic { count; write = _ } ->
          data_misses := !data_misses + count;
          cycles := !cycles + (count * miss_penalty);
          Abstract_cache.clobber dstate)
    payload.Timing.accesses;
  let branch_cycles =
    if Timing.ends_in_branch payload ~num_succs then
      config.Hw.Config.branch_cost_static
    else 0
  in
  let cycles =
    payload.Timing.instrs + !cycles + (!data_hits * hit) + branch_cycles
  in
  {
    cycles;
    fetch_misses = !fetch_misses;
    fetch_hits = !fetch_hits;
    data_misses = !data_misses;
    data_hits = !data_hits;
  }

let analyse ~config ?(pinned_code = []) ?(pinned_data = [])
    (fn : Timing.t Cfg.Flowgraph.fn) =
  let n = Cfg.Flowgraph.num_blocks fn in
  let line_size = config.Hw.Config.l1_line in
  (* One-way model: sets spanning a single way's worth of cache. *)
  let sets = config.Hw.Config.l1_sets in
  let fresh pinned_lines =
    Abstract_cache.create ~line_size ~sets ~pinned_lines
  in
  let icache_in : Abstract_cache.t option array = Array.make n None in
  let dcache_in : Abstract_cache.t option array = Array.make n None in
  let preds = Cfg.Flowgraph.preds fn in
  let out_states : (Abstract_cache.t * Abstract_cache.t) option array =
    Array.make n None
  in
  let meet mk states =
    match states with
    | [] -> mk ()
    | first :: rest ->
        List.fold_left Abstract_cache.join (Abstract_cache.copy first) rest
  in
  let queue = Queue.create () in
  let enqueued = Array.make n false in
  let push b =
    if not enqueued.(b) then begin
      enqueued.(b) <- true;
      Queue.push b queue
    end
  in
  push fn.Cfg.Flowgraph.entry;
  while not (Queue.is_empty queue) do
    let b = Queue.pop queue in
    enqueued.(b) <- false;
    let in_i, in_d =
      if b = fn.Cfg.Flowgraph.entry then
        (* Cold caches on kernel entry: nothing guaranteed but pins. *)
        (fresh pinned_code, fresh pinned_data)
      else begin
        let avail =
          List.filter_map (fun p -> out_states.(p)) preds.(b)
        in
        ( meet (fun () -> fresh pinned_code) (List.map fst avail),
          meet (fun () -> fresh pinned_data) (List.map snd avail) )
      end
    in
    let changed =
      match (icache_in.(b), dcache_in.(b)) with
      | Some old_i, Some old_d ->
          not (Abstract_cache.equal old_i in_i && Abstract_cache.equal old_d in_d)
      | _ -> true
    in
    if changed then begin
      icache_in.(b) <- Some (Abstract_cache.copy in_i);
      dcache_in.(b) <- Some (Abstract_cache.copy in_d);
      let block = Cfg.Flowgraph.block fn b in
      let istate = Abstract_cache.copy in_i and dstate = Abstract_cache.copy in_d in
      ignore
        (transfer ~config ~payload:block.Cfg.Flowgraph.payload
           ~num_succs:(List.length block.Cfg.Flowgraph.succs)
           istate dstate);
      out_states.(b) <- Some (istate, dstate);
      List.iter push block.Cfg.Flowgraph.succs
    end
  done;
  (* Final pass: per-block costs from the converged entry states. *)
  let costs =
    Array.init n (fun b ->
        match (icache_in.(b), dcache_in.(b)) with
        | Some in_i, Some in_d ->
            let block = Cfg.Flowgraph.block fn b in
            transfer ~config ~payload:block.Cfg.Flowgraph.payload
              ~num_succs:(List.length block.Cfg.Flowgraph.succs)
              (Abstract_cache.copy in_i) (Abstract_cache.copy in_d)
        | _ ->
            (* Unreachable block: cost irrelevant; make it harmless. *)
            {
              cycles = 0;
              fetch_misses = 0;
              fetch_hits = 0;
              data_misses = 0;
              data_hits = 0;
            })
  in
  let unwrap mk = function Some s -> s | None -> mk () in
  {
    costs;
    icache_in = Array.map (unwrap (fun () -> fresh pinned_code)) icache_in;
    dcache_in = Array.map (unwrap (fun () -> fresh pinned_data)) dcache_in;
  }
