lib/wcet/timing.mli: Fmt
