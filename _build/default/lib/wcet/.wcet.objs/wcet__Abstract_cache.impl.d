lib/wcet/abstract_cache.ml: Array Hashtbl List
