lib/wcet/cache_analysis.ml: Abstract_cache Array Cfg Hw List Queue Timing
