lib/wcet/abstract_cache.mli:
