lib/wcet/ipet.ml: Array Cache_analysis Cfg Fmt Hashtbl Ilp List Sys Timing User_constraint
