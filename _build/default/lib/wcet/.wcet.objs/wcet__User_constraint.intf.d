lib/wcet/user_constraint.mli: Fmt
