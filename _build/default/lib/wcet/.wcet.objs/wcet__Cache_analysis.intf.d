lib/wcet/cache_analysis.mli: Abstract_cache Cfg Hw Timing
