lib/wcet/user_constraint.ml: Fmt
