lib/wcet/timing.ml: Fmt List
