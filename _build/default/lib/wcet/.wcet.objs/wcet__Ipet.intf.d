lib/wcet/ipet.mli: Cache_analysis Cfg Hw Timing User_constraint
