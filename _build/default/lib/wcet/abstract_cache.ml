(* Abstract cache state for must-analysis.

   Following Section 5.1 of the paper, the 4-way set-associative L1 caches
   are analysed as if they were direct-mapped caches of one way's size:
   "the most recently accessed cache line in any cache set is guaranteed to
   reside in the cache when next accessed".  The must-state therefore maps
   every set index to the one line tag that is guaranteed present, or to
   nothing.

   Join (at control-flow merges) is intersection: a line is guaranteed only
   if it is guaranteed on all incoming paths.  [clobber] forgets everything;
   it models a write to a statically unknown address, which could evict any
   set.  Pinned lines are tracked separately and are never evicted. *)

type t = {
  line_size : int;
  sets : int;
  tags : int array;  (* tags.(set) = guaranteed tag, or -1 *)
  pinned : (int, unit) Hashtbl.t;  (* line addresses locked in the cache *)
}

let create ~line_size ~sets ~pinned_lines =
  let pinned = Hashtbl.create 16 in
  List.iter
    (fun addr -> Hashtbl.replace pinned (addr / line_size * line_size) ())
    pinned_lines;
  { line_size; sets; tags = Array.make sets (-1); pinned }

let copy t = { t with tags = Array.copy t.tags }

let set_of t addr = addr / t.line_size mod t.sets
let tag_of t addr = addr / t.line_size / t.sets
let is_pinned t addr = Hashtbl.mem t.pinned (addr / t.line_size * t.line_size)

(* Is the line containing [addr] guaranteed to be cached? *)
let must_hit t addr =
  is_pinned t addr || t.tags.(set_of t addr) = tag_of t addr

(* Record an access: afterwards the line is guaranteed present (it was just
   loaded).  Pinned lines do not occupy ordinary sets. *)
let access t addr =
  if not (is_pinned t addr) then t.tags.(set_of t addr) <- tag_of t addr

let clobber t = Array.fill t.tags 0 t.sets (-1)

(* Must-join: keep only lines guaranteed in both states. *)
let join a b =
  assert (a.line_size = b.line_size && a.sets = b.sets);
  let tags =
    Array.init a.sets (fun i -> if a.tags.(i) = b.tags.(i) then a.tags.(i) else -1)
  in
  { a with tags }

let equal a b = a.tags = b.tags

let bottom_like t = { t with tags = Array.make t.sets (-1) }

let guaranteed_lines t =
  let acc = ref [] in
  Array.iteri
    (fun set tag ->
      if tag >= 0 then acc := ((tag * t.sets) + set) * t.line_size :: !acc)
    t.tags;
  List.rev !acc
