(** Timing payload attached to every CFG basic block: the information the
    paper's analysis extracts from the compiled kernel binary.

    Data accesses are classified by what the analysis knows statically:
    [Static] addresses can be proven to hit by must-analysis; [Dynamic]
    addresses (pointer chasing) are always charged the worst miss, and a
    dynamic access also invalidates the data must-state. *)

type access =
  | Static of { addr : int; write : bool }
  | Dynamic of { write : bool; count : int }

type t = {
  base : int;  (** code address of the block's first instruction *)
  instrs : int;
  accesses : access list;
  branch : bool option;
      (** overrides the default "conditional iff >= 2 successors" *)
}

val make :
  ?accesses:access list -> ?branch:bool -> base:int -> instrs:int -> unit -> t

val nop : t

val code_lines : t -> line_size:int -> int list
(** I-cache line addresses this block's instructions occupy. *)

val ends_in_branch : t -> num_succs:int -> bool
val pp : t Fmt.t
