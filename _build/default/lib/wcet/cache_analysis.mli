(** Static cache analysis: must-analysis fixpoint over an inlined CFG and
    derivation of sound per-block cycle costs under the paper's conservative
    hardware model (Section 5.1). *)

type block_cost = {
  cycles : int;
  fetch_misses : int;
  fetch_hits : int;
  data_misses : int;
  data_hits : int;
}

type t = {
  costs : block_cost array;
  icache_in : Abstract_cache.t array;  (** entry must-state per block *)
  dcache_in : Abstract_cache.t array;
}

val analyse :
  config:Hw.Config.t ->
  ?pinned_code:int list ->
  ?pinned_data:int list ->
  Timing.t Cfg.Flowgraph.fn ->
  t
(** Fixpoint over the (call-free) CFG starting from cold caches at entry.
    Pinned lines are always guaranteed present. *)

val cost : t -> int -> block_cost
val total_fetch_misses : t -> int
