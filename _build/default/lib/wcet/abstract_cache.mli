(** Must-analysis abstract cache state: the conservative direct-mapped
    model of Section 5.1 of the paper, plus pinned lines that are always
    guaranteed present. *)

type t

val create : line_size:int -> sets:int -> pinned_lines:int list -> t
(** Empty must-state (nothing guaranteed) with the given pinned lines. *)

val copy : t -> t

val must_hit : t -> int -> bool
(** Is the line containing this address guaranteed to be cached? *)

val access : t -> int -> unit
(** Record an access; the line becomes guaranteed. *)

val clobber : t -> unit
(** Forget all guarantees except pinned lines (models a write to a
    statically unknown address). *)

val join : t -> t -> t
(** Intersection: guaranteed only if guaranteed on both paths. *)

val equal : t -> t -> bool
val bottom_like : t -> t
val is_pinned : t -> int -> bool

val guaranteed_lines : t -> int list
(** Line addresses currently guaranteed (excluding pinned lines). *)
