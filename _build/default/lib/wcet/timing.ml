(* Timing payload attached to every CFG basic block.

   This is the information the paper's analysis extracts from the compiled
   kernel binary: how many instructions a block executes, which code
   addresses it occupies (for I-cache analysis), and which data it touches
   (for D-cache analysis).  Data accesses are classified by how much the
   static analysis knows about their address:

   - [Static]: the address is known (globals, fixed kernel structures);
     must-analysis can prove hits for these.
   - [Dynamic]: the address is statically unknown (pointer chasing through
     capability spaces, page tables, thread queues); the conservative model
     must treat every such access as a miss, and a dynamic *write* can evict
     any line, so it also clears the data must-state.

   The same block descriptions drive both the static analysis and the
   worst-case measurement replays, which keeps "computed >= observed" an
   empirical theorem rather than an artefact of mismatched models. *)

type access =
  | Static of { addr : int; write : bool }
  | Dynamic of { write : bool; count : int }

type t = {
  base : int;  (* code address of the first instruction *)
  instrs : int;
  accesses : access list;
  branch : bool option;
      (* Some b overrides the default "conditional iff >= 2 successors" *)
}

let make ?(accesses = []) ?branch ~base ~instrs () =
  assert (instrs >= 0 && base >= 0);
  { base; instrs; accesses; branch }

let nop = { base = 0; instrs = 0; accesses = []; branch = Some false }

(* Code lines occupied by this block's instructions, for a given I-cache
   line size (ARM: 4-byte instructions). *)
let code_lines t ~line_size =
  if t.instrs = 0 then []
  else begin
    let first = t.base / line_size in
    let last = (t.base + (4 * t.instrs) - 1) / line_size in
    List.init (last - first + 1) (fun i -> (first + i) * line_size)
  end

let ends_in_branch t ~num_succs =
  match t.branch with Some b -> b | None -> num_succs >= 2

let pp ppf t =
  Fmt.pf ppf "base=%#x instrs=%d accesses=%d" t.base t.instrs
    (List.length t.accesses)
