(** Implicit Path Enumeration Technique: virtual inlining, cache analysis,
    ILP generation and solving, as in Section 5.2 of the paper. *)

type loop_bound = { func : string; header : string; bound : int }
(** Maximum executions of the header block per entry into the loop. *)

type spec = {
  program : Timing.t Cfg.Flowgraph.program;
  bounds : loop_bound list;
  constraints : User_constraint.t list;
}

type result = {
  wcet : int;  (** sound upper bound, in cycles *)
  block_counts : int array;  (** worst-case execution count per inlined block *)
  inlined : Timing.t Cfg.Inline.t;
  costs : Cache_analysis.t;
  ilp_vars : int;
  ilp_constraints : int;
  bb_nodes : int;
  lp_solves : int;
  elapsed_s : float;
}

exception Unbounded_loop of string
(** A loop header without an iteration bound; the analysis requires all
    loops bounded (Section 5.3). *)

exception No_solution of string

val analyse :
  config:Hw.Config.t ->
  ?pinned_code:int list ->
  ?pinned_data:int list ->
  ?forced:(string * string * int) list ->
  spec ->
  result
(** Compute the WCET bound.  [forced] pins total execution counts of
    (function, block label) pairs, which is how Section 6.2 computes the
    predicted time of a specific realisable path. *)

val worst_path : result -> (string * int * int) list
(** Blocks on the worst-case path: (inlined label, count, cycles/visit). *)
