lib/tac/to_cfg.ml: Array Cfg Hashtbl Lang List
