lib/tac/lang.mli: Fmt
