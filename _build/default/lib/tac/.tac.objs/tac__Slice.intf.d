lib/tac/slice.mli: Fmt Ssa
