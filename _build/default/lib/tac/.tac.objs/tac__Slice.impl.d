lib/tac/slice.ml: Fmt Hashtbl Lang List Queue Ssa
