lib/tac/interp.mli: Hashtbl Lang
