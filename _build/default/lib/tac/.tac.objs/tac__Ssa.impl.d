lib/tac/ssa.ml: Array Cfg Fmt Hashtbl Interp Lang List Queue String To_cfg
