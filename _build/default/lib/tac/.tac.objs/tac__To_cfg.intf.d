lib/tac/to_cfg.mli: Cfg Hashtbl Lang
