lib/tac/interp.ml: Hashtbl Lang List
