lib/tac/ssa.mli: Fmt Hashtbl Lang
