lib/tac/lang.ml: Fmt List
