(** Backward program slicing (Weiser) on SSA form, as used in Section 5.3
    to isolate the instructions that determine a loop's control flow.

    The criterion is the register set read by branch terminators, so the
    slice preserves every branch decision — hence every block visit count
    — while discarding result-only computation.  Memory is conservative:
    if any needed load survives, all stores survive (the paper's admitted
    limitation without pointer analysis). *)

type stats = {
  total_instrs : int;
  kept_instrs : int;
  total_phis : int;
  kept_phis : int;
}

val compute : Ssa.t -> Ssa.t * stats
(** The sliced program (same CFG, irrelevant instructions and phis
    removed) and reduction statistics. *)

val pp_stats : stats Fmt.t
