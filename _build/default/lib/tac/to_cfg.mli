(** Lowering TAC programs onto the generic CFG library, giving access to
    dominators, dominance frontiers (for SSA) and natural loops. *)

type t = {
  fn : Lang.block Cfg.Flowgraph.fn;
  id_of_label : (string, int) Hashtbl.t;
  label_of_id : string array;
}

val lower : Lang.program -> t
(** @raise Lang.Malformed on invalid programs. *)

val id : t -> string -> int
val label : t -> int -> string

val loop_headers : t -> string list
(** Labels of all natural-loop headers. *)
