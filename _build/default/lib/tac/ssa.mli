(** Static single assignment construction (Cytron et al.), as named in
    Section 5.3 of the paper: phi insertion at dominance frontiers, then
    stack-based renaming over the dominator tree.

    Versioned registers are written ["r.k"]; version ["r.0"] is the initial
    value of [r] (an input parameter, or an implicit zero). *)

type phi = { dest : Lang.reg; sources : (string * Lang.operand) list }
(** One source per predecessor block label. *)

type ssa_block = {
  label : string;
  phis : phi list;
  instrs : Lang.instr list;
  term : Lang.terminator;
}

type t = { entry : string; params : Lang.param list; blocks : ssa_block list }

val convert : Lang.program -> t
(** SSA-convert a validated program; unreachable blocks are dropped. *)

val base_of : Lang.reg -> Lang.reg
(** Strip the version suffix: [base_of "i.3" = "i"]. *)

val block_exn : t -> string -> ssa_block

val run :
  ?max_steps:int -> t -> inputs:(Lang.reg * int) list -> (string, int) Hashtbl.t
(** Execute the SSA program directly (parallel phi semantics) and return
    per-block visit counts — used to validate semantics preservation.
    @raise Interp.Step_limit on divergence. *)

val pp : t Fmt.t
