(* Concrete interpreter for the TAC mini-language.

   Used as the semantic ground truth: the slicing and loop-bound machinery
   are validated against it (a slice must preserve the branching behaviour
   it was taken for; a claimed loop bound must dominate observed visit
   counts). *)

type trace = {
  visits : (string, int) Hashtbl.t;  (* block label -> times entered *)
  mutable steps : int;
  mutable halted : bool;
}

exception Step_limit

type state = {
  regs : (Lang.reg, int) Hashtbl.t;
  memory : (int, int) Hashtbl.t;
}

let initial_state bindings =
  let regs = Hashtbl.create 16 in
  List.iter (fun (r, v) -> Hashtbl.replace regs r v) bindings;
  { regs; memory = Hashtbl.create 16 }

let read_reg state r = try Hashtbl.find state.regs r with Not_found -> 0
let read_mem state a = try Hashtbl.find state.memory a with Not_found -> 0

let eval state = function
  | Lang.Reg r -> read_reg state r
  | Lang.Imm n -> n

let exec_instr state = function
  | Lang.Assign (r, a) -> Hashtbl.replace state.regs r (eval state a)
  | Lang.Binop (r, op, a, b) ->
      Hashtbl.replace state.regs r
        (Lang.eval_binop op (eval state a) (eval state b))
  | Lang.Load (r, a) ->
      Hashtbl.replace state.regs r (read_mem state (eval state a))
  | Lang.Store (a, v) ->
      Hashtbl.replace state.memory (eval state a) (eval state v)

(* Run to Halt (or raise [Step_limit]); returns final state and trace.
   [on_visit label k] is called each time a block is entered, with [k] its
   visit count so far — the model checker builds its traces from this. *)
let run ?(max_steps = 1_000_000) ?(on_visit = fun _ _ -> ()) program ~inputs =
  Lang.validate program;
  let state = initial_state inputs in
  let trace = { visits = Hashtbl.create 16; steps = 0; halted = false } in
  let visit label =
    let k = 1 + try Hashtbl.find trace.visits label with Not_found -> 0 in
    Hashtbl.replace trace.visits label k;
    on_visit label k
  in
  let rec go label =
    trace.steps <- trace.steps + 1;
    if trace.steps > max_steps then raise Step_limit;
    visit label;
    let block = Lang.block_exn program label in
    List.iter (exec_instr state) block.Lang.instrs;
    match block.Lang.term with
    | Lang.Halt -> trace.halted <- true
    | Lang.Jump l -> go l
    | Lang.Branch (cmp, a, b, l1, l2) ->
        if Lang.eval_cmp cmp (eval state a) (eval state b) then go l1
        else go l2
  in
  go program.Lang.entry;
  (state, trace)

let visits trace label =
  try Hashtbl.find trace.visits label with Not_found -> 0

(* Enumerate all input valuations over the declared parameter domains and
   apply [f] to each.  The state space this induces is what the bounded
   model checker explores. *)
let for_all_inputs program f =
  let rec enum acc = function
    | [] -> f (List.rev acc)
    | (p : Lang.param) :: rest ->
        let rec values v =
          v > p.Lang.hi
          || (enum ((p.Lang.name, v) :: acc) rest && values (v + 1))
        in
        values p.Lang.lo
  in
  enum [] program.Lang.params
