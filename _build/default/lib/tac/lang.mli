(** A three-address-code mini-language: the stand-in for the paper's ARM
    instruction semantics (Section 5.3), in which the kernel's loops are
    re-expressed so that iteration bounds can be computed mechanically. *)

type reg = string

type operand = Reg of reg | Imm of int

type binop = Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type instr =
  | Assign of reg * operand
  | Binop of reg * binop * operand * operand
  | Load of reg * operand  (** destination, address *)
  | Store of operand * operand  (** address, value *)

type terminator =
  | Jump of string
  | Branch of cmp * operand * operand * string * string
      (** [Branch (c, a, b, l1, l2)]: if [a c b] goto [l1] else [l2] *)
  | Halt

type block = { label : string; instrs : instr list; term : terminator }

type param = { name : reg; lo : int; hi : int }
(** Input parameter with a finite domain; the model checker enumerates
    these exhaustively. *)

type program = { entry : string; params : param list; blocks : block list }

exception Malformed of string

val validate : program -> unit
(** @raise Malformed on duplicate labels, dangling jumps, bad domains. *)

val block_exn : program -> string -> block

val defs_of_instr : instr -> reg list
val uses_of_instr : instr -> reg list
val uses_of_operand : operand -> reg list
val uses_of_terminator : terminator -> reg list

val successors : terminator -> string list
(** Distinct successor labels. *)

val eval_cmp : cmp -> int -> int -> bool
val eval_binop : binop -> int -> int -> int

val pp_operand : operand Fmt.t
val pp_binop : binop Fmt.t
val pp_cmp : cmp Fmt.t
val pp_instr : instr Fmt.t
val pp_terminator : terminator Fmt.t
val pp : program Fmt.t
