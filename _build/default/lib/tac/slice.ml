(* Backward program slicing (Weiser 1984) on SSA form, as used in
   Section 5.3 of the paper to isolate the instructions that determine a
   loop's control flow before handing the result to the model checker.

   The slicing criterion is the set of registers used by branch
   terminators: the slice preserves every branch decision, hence every
   block visit count, while discarding computations that only feed results
   (accumulators, message words, stores never re-read by a branch).

   Memory is handled conservatively, mirroring the paper's admitted
   limitation ("we presently are unable to compute the bounds of loops
   which store and load critical values to and from memory" without
   pointer analysis): if any needed load exists, all stores are kept. *)

type stats = { total_instrs : int; kept_instrs : int; total_phis : int; kept_phis : int }

type def_site =
  | Def_phi of string (* block label *)
  | Def_instr of string * int (* block label, instruction index *)

let build_def_map (t : Ssa.t) =
  let defs = Hashtbl.create 32 in
  List.iter
    (fun (b : Ssa.ssa_block) ->
      List.iter
        (fun (phi : Ssa.phi) ->
          Hashtbl.replace defs phi.Ssa.dest (Def_phi b.Ssa.label))
        b.Ssa.phis;
      List.iteri
        (fun i instr ->
          List.iter
            (fun r -> Hashtbl.replace defs r (Def_instr (b.Ssa.label, i)))
            (Lang.defs_of_instr instr))
        b.Ssa.instrs)
    t.Ssa.blocks;
  defs

let compute (t : Ssa.t) =
  let defs = build_def_map t in
  let needed_regs = Hashtbl.create 32 in
  let needed_instrs = Hashtbl.create 32 in
  let needed_phis = Hashtbl.create 32 in
  let keep_all_stores = ref false in
  let work = Queue.create () in
  let need r =
    if not (Hashtbl.mem needed_regs r) then begin
      Hashtbl.replace needed_regs r ();
      Queue.push r work
    end
  in
  (* Criterion: every register a branch terminator reads. *)
  List.iter
    (fun (b : Ssa.ssa_block) ->
      List.iter need (Lang.uses_of_terminator b.Ssa.term))
    t.Ssa.blocks;
  let instr_at label i =
    List.nth (Ssa.block_exn t label).Ssa.instrs i
  in
  let phi_of label r =
    List.find
      (fun (p : Ssa.phi) -> p.Ssa.dest = r)
      (Ssa.block_exn t label).Ssa.phis
  in
  let mark_stores () =
    if not !keep_all_stores then begin
      keep_all_stores := true;
      List.iter
        (fun (b : Ssa.ssa_block) ->
          List.iteri
            (fun i instr ->
              match instr with
              | Lang.Store _ ->
                  Hashtbl.replace needed_instrs (b.Ssa.label, i) ();
                  List.iter need (Lang.uses_of_instr instr)
              | _ -> ())
            b.Ssa.instrs)
        t.Ssa.blocks
    end
  in
  while not (Queue.is_empty work) do
    let r = Queue.pop work in
    match Hashtbl.find_opt defs r with
    | None -> () (* version .0: an input or implicit zero *)
    | Some (Def_phi label) ->
        if not (Hashtbl.mem needed_phis (label, r)) then begin
          Hashtbl.replace needed_phis (label, r) ();
          List.iter
            (fun (_, op) -> List.iter need (Lang.uses_of_operand op))
            (phi_of label r).Ssa.sources
        end
    | Some (Def_instr (label, i)) ->
        if not (Hashtbl.mem needed_instrs (label, i)) then begin
          Hashtbl.replace needed_instrs (label, i) ();
          let instr = instr_at label i in
          List.iter need (Lang.uses_of_instr instr);
          match instr with Lang.Load _ -> mark_stores () | _ -> ()
        end
  done;
  let total_instrs = ref 0 and kept_instrs = ref 0 in
  let total_phis = ref 0 and kept_phis = ref 0 in
  let blocks =
    List.map
      (fun (b : Ssa.ssa_block) ->
        let phis =
          List.filter
            (fun (p : Ssa.phi) ->
              incr total_phis;
              let keep = Hashtbl.mem needed_phis (b.Ssa.label, p.Ssa.dest) in
              if keep then incr kept_phis;
              keep)
            b.Ssa.phis
        in
        let instrs =
          List.filteri
            (fun i _ ->
              incr total_instrs;
              let keep = Hashtbl.mem needed_instrs (b.Ssa.label, i) in
              if keep then incr kept_instrs;
              keep)
            b.Ssa.instrs
        in
        { b with Ssa.phis; instrs })
      t.Ssa.blocks
  in
  ( { t with Ssa.blocks },
    {
      total_instrs = !total_instrs;
      kept_instrs = !kept_instrs;
      total_phis = !total_phis;
      kept_phis = !kept_phis;
    } )

let pp_stats ppf s =
  Fmt.pf ppf "instrs %d/%d kept, phis %d/%d kept" s.kept_instrs s.total_instrs
    s.kept_phis s.total_phis
