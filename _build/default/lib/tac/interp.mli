(** Concrete interpreter for the TAC mini-language: the semantic ground
    truth against which slices and loop bounds are validated. *)

type trace = {
  visits : (string, int) Hashtbl.t;
  mutable steps : int;
  mutable halted : bool;
}

type state = {
  regs : (Lang.reg, int) Hashtbl.t;
  memory : (int, int) Hashtbl.t;
}

exception Step_limit

val run :
  ?max_steps:int ->
  ?on_visit:(string -> int -> unit) ->
  Lang.program ->
  inputs:(Lang.reg * int) list ->
  state * trace
(** Execute from the entry block to [Halt].  [on_visit label k] fires on
    every block entry with its running visit count.
    @raise Step_limit if the program runs longer than [max_steps] blocks. *)

val visits : trace -> string -> int
(** Times the given block was entered. *)

val for_all_inputs : Lang.program -> ((Lang.reg * int) list -> bool) -> bool
(** Short-circuiting universal quantification over all input valuations in
    the declared parameter domains. *)
