(* Lowering TAC programs onto the generic CFG library, so that dominators,
   dominance frontiers (for SSA) and natural loops can be reused. *)

type t = {
  fn : Lang.block Cfg.Flowgraph.fn;
  id_of_label : (string, int) Hashtbl.t;
  label_of_id : string array;
}

let lower (program : Lang.program) =
  Lang.validate program;
  let builder = Cfg.Flowgraph.Builder.create "tac" in
  let id_of_label = Hashtbl.create 16 in
  (* The entry block must come first so that builder ids match a natural
     traversal; add entry, then the rest in program order. *)
  let ordered =
    Lang.block_exn program program.Lang.entry
    :: List.filter (fun b -> b.Lang.label <> program.Lang.entry) program.Lang.blocks
  in
  List.iter
    (fun (b : Lang.block) ->
      let id = Cfg.Flowgraph.Builder.add builder ~label:b.Lang.label b in
      Hashtbl.replace id_of_label b.Lang.label id)
    ordered;
  List.iter
    (fun (b : Lang.block) ->
      let src = Hashtbl.find id_of_label b.Lang.label in
      List.iter
        (fun s ->
          Cfg.Flowgraph.Builder.edge builder src (Hashtbl.find id_of_label s))
        (Lang.successors b.Lang.term))
    ordered;
  let fn = Cfg.Flowgraph.Builder.finish builder in
  let label_of_id =
    Array.map (fun b -> b.Cfg.Flowgraph.label) fn.Cfg.Flowgraph.blocks
  in
  { fn; id_of_label; label_of_id }

let id t label = Hashtbl.find t.id_of_label label
let label t id = t.label_of_id.(id)

(* Loop headers of the program with their label. *)
let loop_headers t =
  let loops = Cfg.Loops.compute t.fn in
  List.map (fun l -> label t l.Cfg.Loops.header) (Cfg.Loops.loops loops)
