(** Virtual inlining: expand every call site into its own clone of the
    callee, producing a single call-free CFG (Section 5.2 of the paper).

    The origin table maps every inlined block back to its source function,
    original block, and calling context — needed both to apply per-function
    user constraints and to report worst-case paths readably. *)

exception Recursive of string

type origin = { func : string; orig_id : int; context : string }

type 'a t = { fn : 'a Flowgraph.fn; origins : origin array }

val inline : 'a Flowgraph.program -> 'a t
(** @raise Recursive on (mutually) recursive call chains.
    @raise Flowgraph.Malformed on invalid input. *)

val origin : 'a t -> int -> origin

val instances : 'a t -> func:string -> orig_id:int -> int list
(** All inlined copies of a given source block, one per calling context. *)

val contexts_of : 'a t -> func:string -> (string * int list) list
(** Inlined block ids of every instance of [func], grouped by context. *)
