lib/cfg/flowgraph.mli: Fmt
