lib/cfg/dominators.mli: Flowgraph
