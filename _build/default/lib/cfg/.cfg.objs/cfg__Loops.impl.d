lib/cfg/loops.ml: Array Dominators Flowgraph Fmt Hashtbl List
