lib/cfg/inline.mli: Flowgraph
