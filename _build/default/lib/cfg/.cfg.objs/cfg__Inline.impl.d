lib/cfg/inline.ml: Array Flowgraph Fmt Hashtbl List
