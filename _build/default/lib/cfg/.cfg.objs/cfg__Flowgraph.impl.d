lib/cfg/flowgraph.ml: Array Fmt List
