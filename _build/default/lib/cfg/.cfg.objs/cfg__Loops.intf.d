lib/cfg/loops.mli: Flowgraph Fmt
