lib/cfg/dominators.ml: Array Flowgraph List
