(** Control-flow graphs of basic blocks with a per-block payload.

    Call sites are blocks whose [call] field names the callee; their unique
    successor is the return point.  {!Inline} eliminates calls by virtual
    inlining before WCET analysis, as in Section 5.2 of the paper. *)

type 'a block = {
  id : int;
  label : string;
  payload : 'a;
  succs : int list;
  call : string option;
}

type 'a fn = { name : string; entry : int; blocks : 'a block array }

type 'a program = { funcs : 'a fn list; main : string }

exception Malformed of string

val block : 'a fn -> int -> 'a block
val num_blocks : 'a fn -> int
val succs : 'a fn -> int -> int list

val exits : 'a fn -> int list
(** Blocks with no successors. *)

val preds : 'a fn -> int list array

val reverse_postorder : 'a fn -> int list
(** Reverse postorder from the entry; unreachable blocks omitted. *)

val reachable : 'a fn -> bool array

val validate : 'a fn -> unit
(** @raise Malformed on inconsistent structure. *)

val validate_program : 'a program -> unit
val find_fn : 'a program -> string -> 'a fn

module Builder : sig
  type 'a t

  val create : string -> 'a t

  val add : ?call:string -> 'a t -> label:string -> 'a -> int
  (** Add a block; returns its id (ids are dense, in creation order). *)

  val edge : 'a t -> int -> int -> unit
  val set_entry : 'a t -> int -> unit

  val finish : 'a t -> 'a fn
  (** @raise Malformed if the graph is structurally invalid. *)
end

val map_payload : ('a block -> 'b) -> 'a fn -> 'b fn
val pp_fn : 'a fn Fmt.t
