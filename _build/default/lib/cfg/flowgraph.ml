(* Control-flow graphs of basic blocks, parameterised by a per-block
   payload.  The WCET layer instantiates the payload with timing
   information (instruction counts and memory-access descriptors); the
   graph algorithms below are payload-agnostic.

   A block whose [call] field is [Some f] represents a call site: control
   enters the callee and, on return, continues with the block's (unique)
   successor.  Virtual inlining (Section 5.2 of the paper) eliminates these
   before analysis. *)

type 'a block = {
  id : int;
  label : string;
  payload : 'a;
  succs : int list;
  call : string option;
}

type 'a fn = { name : string; entry : int; blocks : 'a block array }

type 'a program = { funcs : 'a fn list; main : string }

let block fn id = fn.blocks.(id)
let num_blocks fn = Array.length fn.blocks
let succs fn id = fn.blocks.(id).succs

let exits fn =
  Array.to_list fn.blocks
  |> List.filter_map (fun b -> if b.succs = [] then Some b.id else None)

let preds fn =
  let preds = Array.make (num_blocks fn) [] in
  Array.iter
    (fun b -> List.iter (fun s -> preds.(s) <- b.id :: preds.(s)) b.succs)
    fn.blocks;
  Array.map List.rev preds

(* Reverse postorder from the entry; unreachable blocks are absent. *)
let reverse_postorder fn =
  let n = num_blocks fn in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs id =
    if not visited.(id) then begin
      visited.(id) <- true;
      List.iter dfs (succs fn id);
      order := id :: !order
    end
  in
  dfs fn.entry;
  !order

let reachable fn =
  let n = num_blocks fn in
  let seen = Array.make n false in
  List.iter (fun id -> seen.(id) <- true) (reverse_postorder fn);
  seen

exception Malformed of string

(* Structural validation: ids dense and self-consistent, entry valid, edges
   in range, call blocks have at most one successor (the return point). *)
let validate fn =
  let n = num_blocks fn in
  let fail fmt = Fmt.kstr (fun s -> raise (Malformed s)) fmt in
  if n = 0 then fail "%s: empty function" fn.name;
  if fn.entry < 0 || fn.entry >= n then fail "%s: bad entry" fn.name;
  Array.iteri
    (fun i b ->
      if b.id <> i then fail "%s: block %d has id %d" fn.name i b.id;
      List.iter
        (fun s ->
          if s < 0 || s >= n then
            fail "%s: edge %d -> %d out of range" fn.name i s)
        b.succs;
      match b.call with
      | Some _ when List.length b.succs > 1 ->
          fail "%s: call block %d has multiple successors" fn.name i
      | _ -> ())
    fn.blocks

let validate_program p =
  List.iter validate p.funcs;
  let names = List.map (fun f -> f.name) p.funcs in
  let rec dups = function
    | [] -> ()
    | x :: rest ->
        if List.mem x rest then
          raise (Malformed (Fmt.str "duplicate function %s" x))
        else dups rest
  in
  dups names;
  if not (List.mem p.main names) then
    raise (Malformed (Fmt.str "missing main %s" p.main));
  List.iter
    (fun f ->
      Array.iter
        (fun b ->
          match b.call with
          | Some callee when not (List.mem callee names) ->
              raise
                (Malformed (Fmt.str "%s calls unknown %s" f.name callee))
          | _ -> ())
        f.blocks)
    p.funcs

let find_fn p name =
  match List.find_opt (fun f -> f.name = name) p.funcs with
  | Some f -> f
  | None -> raise (Malformed (Fmt.str "unknown function %s" name))

(* Builder -------------------------------------------------------------- *)

module Builder = struct
  type 'a t = {
    name : string;
    mutable rev_blocks : (string * 'a * string option) list;
    mutable edges : (int * int) list;
    mutable entry : int;
    mutable count : int;
  }

  let create name =
    { name; rev_blocks = []; edges = []; entry = 0; count = 0 }

  let add ?call t ~label payload =
    let id = t.count in
    t.rev_blocks <- (label, payload, call) :: t.rev_blocks;
    t.count <- t.count + 1;
    id

  let edge t a b = t.edges <- (a, b) :: t.edges
  let set_entry t id = t.entry <- id

  let finish t =
    let blocks = Array.of_list (List.rev t.rev_blocks) in
    let succs = Array.make (Array.length blocks) [] in
    List.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) t.edges;
    let fn =
      {
        name = t.name;
        entry = t.entry;
        blocks =
          Array.mapi
            (fun id (label, payload, call) ->
              { id; label; payload; succs = List.rev succs.(id); call })
            blocks;
      }
    in
    validate fn;
    fn
end

let map_payload f fn =
  { fn with blocks = Array.map (fun b -> { b with payload = f b }) fn.blocks }

let pp_fn ppf fn =
  Fmt.pf ppf "@[<v>function %s (entry %d)@," fn.name fn.entry;
  Array.iter
    (fun b ->
      Fmt.pf ppf "  %d[%s]%s -> %a@," b.id b.label
        (match b.call with Some f -> " call " ^ f | None -> "")
        Fmt.(list ~sep:comma int)
        b.succs)
    fn.blocks;
  Fmt.pf ppf "@]"
