(* Virtual inlining (Section 5.2 of the paper): every call site receives
   its own clone of the callee's CFG, so that downstream analyses see each
   calling context separately.  This is what lets the cache analysis treat
   the same function differently depending on execution history — and also
   what causes the overestimation discussed in Section 6, since constraints
   relating clones are lost unless added back by hand.

   Recursion is rejected: the kernel under analysis has none. *)

exception Recursive of string

type origin = { func : string; orig_id : int; context : string }
(* [context] is a path of call-site labels, e.g. "main/f@b3/g@b1". *)

type 'a t = { fn : 'a Flowgraph.fn; origins : origin array }

let inline (prog : 'a Flowgraph.program) : 'a t =
  Flowgraph.validate_program prog;
  let builder = Flowgraph.Builder.create (prog.Flowgraph.main ^ "!inlined") in
  let origins = ref [] in
  (* Clone one instance of [fname]; returns (entry_id, exit_ids).
     [stack] guards against recursion. *)
  let rec clone stack context fname =
    if List.mem fname stack then raise (Recursive fname);
    let fn = Flowgraph.find_fn prog fname in
    let n = Flowgraph.num_blocks fn in
    let map = Array.make n (-1) in
    Array.iter
      (fun b ->
        let label = context ^ "/" ^ b.Flowgraph.label in
        let id = Flowgraph.Builder.add builder ~label b.Flowgraph.payload in
        map.(b.Flowgraph.id) <- id;
        origins :=
          (id, { func = fname; orig_id = b.Flowgraph.id; context })
          :: !origins)
      fn.Flowgraph.blocks;
    let exit_ids = ref [] in
    Array.iter
      (fun b ->
        let this = map.(b.Flowgraph.id) in
        match b.Flowgraph.call with
        | None ->
            if b.Flowgraph.succs = [] then exit_ids := this :: !exit_ids;
            List.iter
              (fun s -> Flowgraph.Builder.edge builder this map.(s))
              b.Flowgraph.succs
        | Some callee ->
            let context' =
              Fmt.str "%s/%s@%s" context callee b.Flowgraph.label
            in
            let callee_entry, callee_exits =
              clone (fname :: stack) context' callee
            in
            Flowgraph.Builder.edge builder this callee_entry;
            (match b.Flowgraph.succs with
            | [] ->
                (* Tail position: the callee's exits are our exits. *)
                exit_ids := callee_exits @ !exit_ids
            | [ ret ] ->
                List.iter
                  (fun e -> Flowgraph.Builder.edge builder e map.(ret))
                  callee_exits
            | _ -> assert false (* validate_program rejects this *)))
      fn.Flowgraph.blocks;
    (map.(fn.Flowgraph.entry), !exit_ids)
  in
  let entry, _exits = clone [] prog.Flowgraph.main prog.Flowgraph.main in
  Flowgraph.Builder.set_entry builder entry;
  let fn = Flowgraph.Builder.finish builder in
  let origin_array = Array.make (Flowgraph.num_blocks fn) None in
  List.iter (fun (id, o) -> origin_array.(id) <- Some o) !origins;
  {
    fn;
    origins =
      Array.map
        (function Some o -> o | None -> assert false)
        origin_array;
  }

let origin t id = t.origins.(id)

(* All inlined block ids originating from block [orig_id] of [func],
   one per calling context. *)
let instances t ~func ~orig_id =
  let acc = ref [] in
  Array.iteri
    (fun id o ->
      if o.func = func && o.orig_id = orig_id then acc := id :: !acc)
    t.origins;
  List.rev !acc

(* Inlined blocks grouped by calling context of a given function: each
   element is (context, block ids of that instance). *)
let contexts_of t ~func =
  let tbl = Hashtbl.create 8 in
  Array.iteri
    (fun id o ->
      if o.func = func then
        Hashtbl.replace tbl o.context
          (id :: (try Hashtbl.find tbl o.context with Not_found -> [])))
    t.origins;
  Hashtbl.fold (fun ctx ids acc -> (ctx, List.rev ids) :: acc) tbl []
  |> List.sort compare
