(** Natural-loop detection over dominators.

    The WCET analysis attaches iteration bounds to the loop headers found
    here, and the IPET formulation constrains header flow against the flow
    entering the loop from outside (Section 5.2 of the paper). *)

type loop = {
  header : int;
  body : int list;  (** includes the header *)
  back_edges : (int * int) list;
  depth : int;  (** 1 = outermost *)
}

type t

val compute : 'a Flowgraph.fn -> t
val loops : t -> loop list
val headers : t -> int list
val loop_of_header : t -> int -> loop option
val innermost_containing : t -> int -> loop option

val entry_edges : 'a Flowgraph.fn -> loop -> (int * int) list
(** Edges into the header from outside the loop body. *)

val is_reducible : 'a Flowgraph.fn -> t -> bool
(** True when every retreating edge is a natural back edge. *)

val pp_loop : loop Fmt.t
