(** Immediate dominators (Cooper-Harvey-Kennedy) and dominance frontiers. *)

type t

val compute : 'a Flowgraph.fn -> t

val idom : t -> int -> int option
(** Immediate dominator; [None] for unreachable blocks.  The entry block is
    its own immediate dominator. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does [a] dominate [b]?  Reflexive. *)

val dominator_tree : t -> int list array
(** Children lists of the dominator tree. *)

val frontiers : 'a Flowgraph.fn -> t -> int list array
(** Dominance frontier of every block (Cytron et al.), for SSA phi
    placement. *)
