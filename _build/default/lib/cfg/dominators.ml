(* Immediate dominators by the Cooper-Harvey-Kennedy iterative algorithm
   ("A Simple, Fast Dominance Algorithm").  Runs on the reachable subgraph
   in reverse postorder. *)

type t = {
  idom : int array;  (* idom.(b) = immediate dominator; entry maps to itself;
                        -1 for unreachable blocks *)
  rpo_index : int array;  (* position in reverse postorder; -1 unreachable *)
}

let compute fn =
  let n = Flowgraph.num_blocks fn in
  let rpo = Flowgraph.reverse_postorder fn in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let preds = Flowgraph.preds fn in
  let idom = Array.make n (-1) in
  idom.(fn.Flowgraph.entry) <- fn.Flowgraph.entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> fn.Flowgraph.entry then begin
          let processed =
            List.filter (fun p -> idom.(p) >= 0) preds.(b)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { idom; rpo_index }

let idom t b = if t.idom.(b) < 0 then None else Some t.idom.(b)

let dominates t a b =
  (* Walk the dominator tree up from [b]. *)
  let rec walk b =
    if b = a then true
    else if t.idom.(b) < 0 || t.idom.(b) = b then b = a
    else walk t.idom.(b)
  in
  t.idom.(b) >= 0 && walk b

let dominator_tree t =
  let n = Array.length t.idom in
  let children = Array.make n [] in
  Array.iteri
    (fun b d -> if d >= 0 && d <> b then children.(d) <- b :: children.(d))
    t.idom;
  children

(* Dominance frontiers (Cytron et al.), needed for SSA construction. *)
let frontiers fn t =
  let n = Flowgraph.num_blocks fn in
  let preds = Flowgraph.preds fn in
  let df = Array.make n [] in
  for b = 0 to n - 1 do
    if t.idom.(b) >= 0 && List.length preds.(b) >= 2 then
      List.iter
        (fun p ->
          if t.idom.(p) >= 0 then begin
            let runner = ref p in
            while !runner <> t.idom.(b) do
              if not (List.mem b df.(!runner)) then
                df.(!runner) <- b :: df.(!runner);
              runner := t.idom.(!runner)
            done
          end)
        preds.(b)
  done;
  df
