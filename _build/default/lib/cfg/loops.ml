(* Natural-loop detection.

   A back edge is an edge u -> h where h dominates u; the natural loop of h
   is h plus all blocks that can reach u without passing through h.  Loops
   sharing a header are merged, as is conventional.  The analysis annotates
   each loop header with an iteration bound (Section 5.2: "we annotate the
   control flow graph with the upper bound on the number of iterations of
   all loops"). *)

type loop = {
  header : int;
  body : int list;  (* includes the header *)
  back_edges : (int * int) list;
  depth : int;  (* 1 = outermost *)
}

type t = { loops : loop list; loop_of_header : (int, loop) Hashtbl.t }

let compute fn =
  let dom = Dominators.compute fn in
  let preds = Flowgraph.preds fn in
  let reachable = Flowgraph.reachable fn in
  (* Collect back edges grouped by header. *)
  let by_header = Hashtbl.create 8 in
  Array.iter
    (fun b ->
      if reachable.(b.Flowgraph.id) then
        List.iter
          (fun s ->
            if Dominators.dominates dom s b.Flowgraph.id then
              Hashtbl.replace by_header s
                ((b.Flowgraph.id, s)
                :: (try Hashtbl.find by_header s with Not_found -> [])))
          b.Flowgraph.succs)
    fn.Flowgraph.blocks;
  let natural_loop header back_edges =
    let in_loop = Hashtbl.create 8 in
    Hashtbl.replace in_loop header ();
    let rec pull b =
      if not (Hashtbl.mem in_loop b) then begin
        Hashtbl.replace in_loop b ();
        List.iter pull preds.(b)
      end
    in
    List.iter (fun (u, _) -> pull u) back_edges;
    let body =
      List.sort compare
        (Hashtbl.fold (fun b () acc -> b :: acc) in_loop [])
    in
    { header; body; back_edges; depth = 0 }
  in
  let loops =
    Hashtbl.fold
      (fun header edges acc -> natural_loop header edges :: acc)
      by_header []
  in
  (* Nesting depth: the number of loops whose body contains this header. *)
  let with_depth =
    List.map
      (fun l ->
        let depth =
          List.length
            (List.filter (fun outer -> List.mem l.header outer.body) loops)
        in
        { l with depth })
      loops
  in
  let sorted =
    List.sort (fun a b -> compare (a.header, a.depth) (b.header, b.depth))
      with_depth
  in
  let loop_of_header = Hashtbl.create 8 in
  List.iter (fun l -> Hashtbl.replace loop_of_header l.header l) sorted;
  { loops = sorted; loop_of_header }

let loops t = t.loops
let headers t = List.map (fun l -> l.header) t.loops

let loop_of_header t h = Hashtbl.find_opt t.loop_of_header h

let innermost_containing t b =
  let containing = List.filter (fun l -> List.mem b l.body) t.loops in
  match List.sort (fun a b -> compare b.depth a.depth) containing with
  | [] -> None
  | l :: _ -> Some l

(* Entry edges of a loop: edges from outside the body into the header. *)
let entry_edges fn l =
  let preds = Flowgraph.preds fn in
  List.filter_map
    (fun p ->
      if List.mem p l.body then None else Some (p, l.header))
    preds.(l.header)

let is_reducible fn t =
  (* Every retreating edge must be a back edge to a natural-loop header
     that dominates its source; we check that no edge targets a block that
     appears earlier in reverse postorder unless it is a recorded back
     edge. *)
  let rpo = Flowgraph.reverse_postorder fn in
  let index = Array.make (Flowgraph.num_blocks fn) (-1) in
  List.iteri (fun i b -> index.(b) <- i) rpo;
  let back = Hashtbl.create 8 in
  List.iter
    (fun l -> List.iter (fun e -> Hashtbl.replace back e ()) l.back_edges)
    t.loops;
  Array.for_all
    (fun b ->
      index.(b.Flowgraph.id) < 0
      || List.for_all
           (fun s ->
             index.(s) > index.(b.Flowgraph.id)
             || Hashtbl.mem back (b.Flowgraph.id, s))
           b.Flowgraph.succs)
    fn.Flowgraph.blocks

let pp_loop ppf l =
  Fmt.pf ppf "loop@%d depth=%d body={%a}" l.header l.depth
    Fmt.(list ~sep:comma int)
    l.body
