(** Configuration of the simulated hardware platform.

    Models the evaluation platform of the paper: a Freescale i.MX31 with an
    ARM1136 core at 532 MHz, split 4-way 16 KiB L1 caches supporting way
    lockdown, an optional unified 8-way 128 KiB L2 cache, and external memory
    whose latency depends on whether the L2 is enabled. *)

type replacement = Lru | Round_robin

type t = {
  clock_mhz : float;  (** core clock, used to convert cycles to microseconds *)
  replacement : replacement;
      (** replacement policy at all levels.  The ARM1136 uses round-robin;
          LRU is the deterministic default stand-in.  The analysis model is
          sound for both. *)
  l1_line : int;  (** L1 line size in bytes *)
  l1_sets : int;  (** number of L1 sets *)
  l1_ways : int;  (** L1 associativity *)
  l1_hit_cycles : int;  (** extra cycles charged on an L1 hit *)
  l2_enabled : bool;
  l2_line : int;
  l2_sets : int;
  l2_ways : int;
  l2_hit_cycles : int;  (** latency of an access serviced by the L2 *)
  mem_cycles_l2_off : int;  (** external memory latency with the L2 disabled *)
  mem_cycles_l2_on : int;  (** external memory latency with the L2 enabled *)
  writeback_fraction : int;
      (** dirty-eviction cost is the memory latency divided by this *)
  branch_predictor : bool;
  branch_cost_static : int;  (** constant branch cost with the predictor off *)
  branch_cost_predicted : int;
  branch_cost_mispredicted : int;
  locked_ways_i : int;  (** I-cache ways reserved for pinned lines *)
  locked_ways_d : int;  (** D-cache ways reserved for pinned lines *)
  l2_locked_base : int;  (** start of the L2-locked range (Section 8) *)
  l2_locked_bytes : int;  (** length of the L2-locked range; 0 disables *)
}

val default : t
(** i.MX31 defaults: L2 disabled, branch predictor disabled, no pinning. *)

val baseline : t
(** Alias of {!default}; the Figure 9 baseline. *)

val with_l2 : t
val with_branch_predictor : t
val with_l2_and_branch_predictor : t

val with_pinning : t -> t
(** Reserve one L1 way (1/4 of each cache) for pinned lines, as in Section 4
    of the paper. *)

val with_l2_lock : base:int -> bytes:int -> t -> t
(** Enable the L2 and lock an address range (typically the kernel text)
    into it: the Section 8 future-work configuration. *)

val l2_locked : t -> int -> bool
(** Is this address inside the L2-locked range? *)

val mem_cycles : t -> int
(** Effective external memory latency under this configuration. *)

val writeback_cycles : t -> int
(** Cost charged when a dirty line is evicted. *)

val worst_miss_cycles : t -> int
(** Worst possible cost of one access: memory latency plus a dirty eviction
    at every cache level.  The sound per-miss charge of the static
    analysis. *)

val l1_bytes : t -> int
val cycles_to_us : t -> int -> float
val pp : t Fmt.t
