(* Machine configuration for the simulated evaluation platform.

   The defaults model the Freescale i.MX31 (KZM board) used in the paper:
   ARM1136 at 532 MHz, split 16 KiB 4-way L1 caches with 32-byte lines and
   way-based lockdown, a unified 128 KiB 8-way L2 cache with a 26-cycle hit
   latency, and external memory at 60 cycles (L2 disabled) or 96 cycles
   (L2 enabled).  Branches cost a constant 5 cycles when the branch
   predictor is disabled, and 0-7 cycles when enabled. *)

type replacement = Lru | Round_robin

type t = {
  clock_mhz : float;
  replacement : replacement;  (* cache replacement policy, all levels *)
  l1_line : int;
  l1_sets : int;
  l1_ways : int;
  l1_hit_cycles : int;
  l2_enabled : bool;
  l2_line : int;
  l2_sets : int;
  l2_ways : int;
  l2_hit_cycles : int;
  mem_cycles_l2_off : int;
  mem_cycles_l2_on : int;
  writeback_fraction : int;
      (* dirty-eviction cost = memory latency / writeback_fraction *)
  branch_predictor : bool;
  branch_cost_static : int;
  branch_cost_predicted : int;
  branch_cost_mispredicted : int;
  locked_ways_i : int;
  locked_ways_d : int;
  (* Address range locked into the L2 cache (Section 6.4 / Section 8 of
     the paper: "it would be possible to lock the entire seL4 microkernel
     into the L2 cache").  Fetches and loads in this range never cost more
     than an L2 hit.  Empty range = disabled. *)
  l2_locked_base : int;
  l2_locked_bytes : int;
}

let default =
  {
    clock_mhz = 532.0;
    replacement = Lru;
    l1_line = 32;
    l1_sets = 128;
    (* 16 KiB / (4 ways * 32 B) *)
    l1_ways = 4;
    l1_hit_cycles = 1;
    l2_enabled = false;
    l2_line = 32;
    l2_sets = 512;
    (* 128 KiB / (8 ways * 32 B) *)
    l2_ways = 8;
    l2_hit_cycles = 26;
    mem_cycles_l2_off = 60;
    mem_cycles_l2_on = 96;
    writeback_fraction = 2;
    branch_predictor = false;
    branch_cost_static = 5;
    branch_cost_predicted = 1;
    branch_cost_mispredicted = 7;
    locked_ways_i = 0;
    locked_ways_d = 0;
    l2_locked_base = 0;
    l2_locked_bytes = 0;
  }

(* The four hardware configurations compared in Figure 9 of the paper. *)
let baseline = default
let with_l2 = { default with l2_enabled = true }
let with_branch_predictor = { default with branch_predictor = true }

let with_l2_and_branch_predictor =
  { default with l2_enabled = true; branch_predictor = true }

(* Pinning reserves one of the four L1 ways (1/4 of the cache), as selected
   for the experiments in Section 4 of the paper. *)
let with_pinning c = { c with locked_ways_i = 1; locked_ways_d = 1 }

(* Lock an address range (typically the kernel text) into the L2: the
   future-work configuration of Section 8, feasible because the compiled
   kernel (36 KiB) fits comfortably in the 128 KiB L2. *)
let with_l2_lock ~base ~bytes c =
  { c with l2_enabled = true; l2_locked_base = base; l2_locked_bytes = bytes }

let l2_locked c addr =
  c.l2_locked_bytes > 0
  && addr >= c.l2_locked_base
  && addr < c.l2_locked_base + c.l2_locked_bytes

let mem_cycles c = if c.l2_enabled then c.mem_cycles_l2_on else c.mem_cycles_l2_off
let writeback_cycles c = mem_cycles c / c.writeback_fraction

(* The worst cost a single access can incur on this machine: a full miss
   to memory plus one memory-latency write-back (an L1 dirty eviction with
   the L2 off, or an L2 dirty eviction with it on; L1 write-backs are
   absorbed by the L2 when present).  The static analysis charges this for
   every access it cannot prove to hit, which keeps its bounds sound and
   makes *computed* times worse with the L2 enabled even though observed
   times barely change (Table 2, Figure 9). *)
let worst_miss_cycles c = mem_cycles c + writeback_cycles c
let l1_bytes c = c.l1_line * c.l1_sets * c.l1_ways

let cycles_to_us c cycles = float_of_int cycles /. c.clock_mhz

let pp ppf c =
  Fmt.pf ppf "@[<v>clock=%.0f MHz; L1 %d B (%d-way), locked i/d=%d/%d;@ \
              L2 %s (%d-way, hit %d); mem %d cycles; bpred=%b@]"
    c.clock_mhz (l1_bytes c) c.l1_ways c.locked_ways_i c.locked_ways_d
    (if c.l2_enabled then "on" else "off")
    c.l2_ways c.l2_hit_cycles (mem_cycles c) c.branch_predictor
