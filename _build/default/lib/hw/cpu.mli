(** Cycle accounting for simulated kernel execution.

    The kernel model charges all of its work through this interface; the
    accumulated cycle count stands in for the ARM1136 cycle counter used in
    the paper's measurements. *)

type t

type counters = {
  instructions : int;
  loads : int;
  stores : int;
  branches : int;
  cycles : int;
}

val create : Config.t -> t
val of_machine : Machine.t -> t
val machine : t -> Machine.t
val config : t -> Config.t

val cycles : t -> int
(** Cycles accumulated so far. *)

val tick : t -> int -> unit
(** Charge a raw number of cycles (e.g. fixed exception-entry microcode). *)

val exec : t -> base:int -> count:int -> unit
(** Execute [count] single-cycle instructions fetched sequentially from code
    address [base], charging I-cache fetch stalls. *)

val load : t -> int -> unit
val store : t -> int -> unit
val branch : t -> pc:int -> taken:bool -> unit

type access_kind = Fetch | Load | Store

val set_tracer : t -> (access_kind -> int -> unit) -> unit
(** Observe every access (before it hits the caches); used to derive
    cache-pinning candidates from execution traces (Section 4). *)

val clear_tracer : t -> unit

val counters : t -> counters
val reset : t -> unit
val pp_counters : counters Fmt.t
