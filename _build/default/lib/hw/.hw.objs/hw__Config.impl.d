lib/hw/config.ml: Fmt
