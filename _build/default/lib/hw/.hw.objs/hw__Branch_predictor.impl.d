lib/hw/branch_predictor.ml: Array
