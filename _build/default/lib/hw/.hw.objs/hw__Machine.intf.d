lib/hw/machine.mli: Cache Config
