lib/hw/cache.ml: Array Fmt
