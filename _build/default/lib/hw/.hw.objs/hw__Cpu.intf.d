lib/hw/cpu.mli: Config Fmt Machine
