lib/hw/machine.ml: Branch_predictor Cache Config Option
