lib/hw/cache.mli: Fmt
