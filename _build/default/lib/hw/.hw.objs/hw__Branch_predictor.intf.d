lib/hw/branch_predictor.mli:
