lib/hw/cpu.ml: Fmt Machine
