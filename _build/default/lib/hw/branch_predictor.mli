(** Bimodal (2-bit saturating counter) branch predictor.

    Models the dynamic branch prediction of the ARM1136 that the paper
    disables for analysis and re-enables for the Figure 9 measurements. *)

type t

val create : ?entries:int -> unit -> t
(** [entries] must be a power of two (default 128). *)

val predict_and_update : t -> pc:int -> taken:bool -> bool
(** Predict the branch at [pc], update the counter with the actual outcome,
    and return whether the prediction was correct. *)

val reset : t -> unit
val predictions : t -> int
val mispredictions : t -> int
