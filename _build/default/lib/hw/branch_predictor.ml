(* Two-bit saturating-counter branch predictor.

   The ARM1136 executes a branch in 0-7 cycles depending on prediction
   outcome when the predictor is enabled, and in a constant 5 cycles when it
   is disabled (Section 5.1).  The paper's static analysis cannot model the
   predictor, so it is disabled both in the model and on the hardware, and
   Figure 9 quantifies the effect of turning it back on.  We model a classic
   bimodal predictor: a table of 2-bit counters indexed by the branch PC. *)

type t = {
  table : int array;  (* 2-bit counters: 0,1 = predict not-taken; 2,3 = taken *)
  mask : int;
  mutable predictions : int;
  mutable mispredictions : int;
}

let create ?(entries = 128) () =
  assert (entries > 0 && entries land (entries - 1) = 0);
  {
    table = Array.make entries 1;
    (* weakly not-taken after reset *)
    mask = entries - 1;
    predictions = 0;
    mispredictions = 0;
  }

let index t pc = pc lsr 2 land t.mask

(* Predict, update the counter, and report whether the prediction was
   correct. *)
let predict_and_update t ~pc ~taken =
  let i = index t pc in
  let counter = t.table.(i) in
  let predicted_taken = counter >= 2 in
  let correct = predicted_taken = taken in
  t.predictions <- t.predictions + 1;
  if not correct then t.mispredictions <- t.mispredictions + 1;
  let counter' =
    if taken then min 3 (counter + 1) else max 0 (counter - 1)
  in
  t.table.(i) <- counter';
  correct

let reset t =
  Array.fill t.table 0 (Array.length t.table) 1;
  t.predictions <- 0;
  t.mispredictions <- 0

let predictions t = t.predictions
let mispredictions t = t.mispredictions
