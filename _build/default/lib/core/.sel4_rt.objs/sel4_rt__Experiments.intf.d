lib/core/experiments.mli: Hw Kernel_loops Kernel_model Sel4
