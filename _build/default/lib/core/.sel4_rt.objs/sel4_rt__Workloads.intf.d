lib/core/workloads.mli: Hw Kernel_model Sel4
