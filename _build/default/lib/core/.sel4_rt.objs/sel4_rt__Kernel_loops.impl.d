lib/core/kernel_loops.ml: Fmt Loopbound Tac
