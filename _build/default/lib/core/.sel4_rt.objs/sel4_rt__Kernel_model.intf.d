lib/core/kernel_model.mli: Sel4 Wcet
