lib/core/experiments.ml: Fmt Hw Kernel_loops Kernel_model List Pinning Response_time Sel4 Wcet
