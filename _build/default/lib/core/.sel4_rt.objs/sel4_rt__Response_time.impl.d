lib/core/response_time.ml: Hw Kernel_model Wcet Workloads
