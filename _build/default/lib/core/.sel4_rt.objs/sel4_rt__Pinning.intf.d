lib/core/pinning.mli: Fmt Hw Sel4
