lib/core/kernel_loops.mli: Fmt Tac
