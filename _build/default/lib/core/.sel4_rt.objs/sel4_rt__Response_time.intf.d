lib/core/response_time.mli: Hw Kernel_model Sel4 Wcet
