lib/core/kernel_model.ml: Cfg Kernel_loops List Sel4 String Wcet
