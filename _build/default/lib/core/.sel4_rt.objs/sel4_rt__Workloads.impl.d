lib/core/workloads.ml: Array Hw Kernel_model List Sel4
