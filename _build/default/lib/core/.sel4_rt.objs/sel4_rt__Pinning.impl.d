lib/core/pinning.ml: Fmt Hashtbl Hw Kernel_model List Sel4 Workloads
