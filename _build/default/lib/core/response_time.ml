(* Response-time analysis driver: computed (IPET) and observed
   (adversarial execution) worst cases per kernel entry point, and the
   headline quantity of the paper — the worst-case interrupt response
   time, which is the sum of the longest kernel operation (the system-call
   path) and the interrupt path (Section 6). *)

type pins = { code : int list; data : int list }

let no_pins = { code = []; data = [] }

let computed ?(params = Kernel_model.default_params) ?(pins = no_pins) ~config
    build entry =
  let spec = Kernel_model.spec ~params build entry in
  Wcet.Ipet.analyse ~config ~pinned_code:pins.code ~pinned_data:pins.data spec

let computed_cycles ?params ?pins ~config build entry =
  (computed ?params ?pins ~config build entry).Wcet.Ipet.wcet

(* Computed execution time of the realisable path (Section 6.2: extra ILP
   constraints force analysis of the tested path). *)
let computed_for_path ?(params = Kernel_model.default_params) ~config build
    entry =
  let spec = Kernel_model.spec ~params build entry in
  let forced = Kernel_model.realisable_path ~params entry in
  (Wcet.Ipet.analyse ~config ~forced spec).Wcet.Ipet.wcet

let observed ?runs ?params ~config build entry =
  Workloads.observed ?runs ?params ~config build entry

(* Worst-case interrupt response: the longest non-preemptible kernel path
   (the system call handler) plus the interrupt path itself. *)
let interrupt_response_bound ?params ?pins ~config build =
  computed_cycles ?params ?pins ~config build Kernel_model.Syscall
  + computed_cycles ?params ?pins ~config build Kernel_model.Interrupt

let us config cycles = Hw.Config.cycles_to_us config cycles
