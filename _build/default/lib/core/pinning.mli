(** Cache-pinning selection (Section 4): trace an interrupt delivery on
    the executable kernel, rank the touched lines by frequency, and
    greedily take what fits in one locked way per cache — plus the first
    256 bytes of the kernel stack and the key scheduler/IRQ data words,
    as the paper pinned. *)

type selection = {
  code_lines : int list;  (** I-cache line addresses *)
  data_lines : int list;  (** D-cache line addresses *)
}

val select : Sel4.Build.t -> selection
(** Trace-derived selection, at most one line per cache set. *)

val install : selection -> Hw.Machine.t -> unit
(** Pin the selection into a machine configured with locked ways. *)

val pp : selection Fmt.t
