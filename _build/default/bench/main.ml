(* Benchmark and reproduction harness.

   Usage:
     dune exec bench/main.exe                 -- run every section
     dune exec bench/main.exe <section> ...   -- run selected sections

   Sections (one per paper artefact, see DESIGN.md's experiment index):
     table1   Table 1  - WCET with/without cache pinning
     table2   Table 2  - before/after WCET, computed vs observed, L2 off/on
     fig7     Fig. 7   - capability-decode depth sweep (observed)
     fig8     Fig. 8   - hardware-model overestimation on forced paths
     fig9     Fig. 9   - observed effect of L2 cache and branch predictor
     sched    Sections 3.1-3.2 - scheduler ablation (lazy/Benno/bitmap)
     loopbounds Section 5.3   - automatically computed loop bounds
     analysis Section 6.3     - ILP sizes, solver effort, constraint effect
     summary  Section 6       - headline numbers
     micro    Bechamel microbenchmarks of the core data structures *)

let run_table1 () = Sel4_rt.Experiments.(print_table1 (table1 ()))
let run_table2 () = Sel4_rt.Experiments.(print_table2 (table2 ()))
let run_fig7 () = Sel4_rt.Experiments.(print_fig7 (fig7 ()))
let run_fig8 () = Sel4_rt.Experiments.(print_fig8 (fig8 ()))
let run_fig9 () = Sel4_rt.Experiments.(print_fig9 (fig9 ()))
let run_sched () = Sel4_rt.Experiments.(print_sched (sched_ablation ()))
let run_loopbounds () = Sel4_rt.Experiments.(print_loop_bounds (loop_bounds ()))
let run_analysis () = Sel4_rt.Experiments.(print_analysis_cost (analysis_cost ()))
let run_summary () = Sel4_rt.Experiments.(print_summary (summary ()))
let run_l2lock () = Sel4_rt.Experiments.(print_l2_lock (l2_lock ()))
let run_callpreempt () = Sel4_rt.Experiments.(print_call_preempt (call_preempt ()))
let run_fastpath () = Sel4_rt.Experiments.(print_fastpath (fastpath_ablation ()))
let run_replacement () = Sel4_rt.Experiments.(print_replacement (replacement ()))

(* --- Bechamel microbenchmarks --- *)

let micro_tests () =
  let open Bechamel in
  let cache_test =
    let cache = Hw.Cache.create ~line_size:32 ~sets:128 ~ways:4 () in
    let counter = ref 0 in
    Test.make ~name:"l1-cache-access"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Hw.Cache.access cache ~write:false (!counter * 32 mod 65536))))
  in
  let sched_test variant name =
    let build = { Sel4.Build.improved with Sel4.Build.sched = variant } in
    let env = Sel4.Boot.boot build in
    let threads =
      List.init 16 (fun i ->
          Sel4.Boot.spawn_thread env ~priority:(64 + i) ~dest:(20 + i))
    in
    List.iter (Sel4.Boot.make_runnable env) threads;
    let ctx = Sel4.Kernel.ctx env.Sel4.Boot.k in
    let sched = env.Sel4.Boot.k.Sel4.Kernel.sched in
    Test.make ~name:("choose-thread-" ^ name)
      (Staged.stage (fun () -> ignore (Sel4.Sched.choose_thread ctx sched)))
  in
  let fastpath_test =
    let module K = Sel4.Kernel in
    let module B = Sel4.Boot in
    let env = B.boot Sel4.Build.improved in
    let _ep = B.spawn_endpoint env ~dest:10 in
    let server = B.spawn_thread env ~priority:150 ~dest:11 in
    let client = B.spawn_thread env ~priority:120 ~dest:12 in
    B.make_runnable env server;
    B.make_runnable env client;
    K.force_run env.B.k server;
    ignore (K.kernel_entry env.B.k (K.Ev_recv { ep = 10 }));
    Test.make ~name:"ipc-call-reply-roundtrip"
      (Staged.stage (fun () ->
           K.force_run env.B.k client;
           ignore
             (K.kernel_entry env.B.k
                (K.Ev_call
                   { ep = 10; badge_hint = 0; msg_len = 2; extra_caps = [] }));
           K.force_run env.B.k server;
           ignore
             (K.kernel_entry env.B.k (K.Ev_reply_recv { ep = 10; msg_len = 1 }))))
  in
  let ilp_test =
    Test.make ~name:"ipet-interrupt-analysis"
      (Staged.stage (fun () ->
           ignore
             (Sel4_rt.Response_time.computed_cycles ~config:Hw.Config.default
                Sel4.Build.improved Sel4_rt.Kernel_model.Interrupt)))
  in
  Test.make_grouped ~name:"micro"
    [
      cache_test;
      sched_test Sel4.Build.Lazy "lazy";
      sched_test Sel4.Build.Benno "benno";
      sched_test Sel4.Build.Benno_bitmap "bitmap";
      fastpath_test;
      ilp_test;
    ]

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  Fmt.pr "@.Bechamel microbenchmarks (wall-clock of the simulator itself)@.";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] -> Fmt.pr "  %-40s %12.1f ns/run@." name ns
      | _ -> Fmt.pr "  %-40s %12s@." name "-")
    rows

let sections =
  [
    ("table1", run_table1);
    ("table2", run_table2);
    ("fig7", run_fig7);
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("sched", run_sched);
    ("loopbounds", run_loopbounds);
    ("analysis", run_analysis);
    ("summary", run_summary);
    ("l2lock", run_l2lock);
    ("callpreempt", run_callpreempt);
    ("fastpath", run_fastpath);
    ("replacement", run_replacement);
    ("micro", run_micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
          Fmt.pr "==== %s ====@." name;
          f ()
      | None ->
          Fmt.epr "unknown section %s; available: %s@." name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested
