(* sel4rt: command-line front end for the response-time toolkit.

     sel4rt wcet     --entry syscall --build improved --l2 --pin --path
     sel4rt analyse  [kernel_entry|syscall|...] --build improved  (JSON)
     sel4rt observe  --entry interrupt --runs 25 --l2
     sel4rt response --build improved --l2
     sel4rt explain  [kernel_entry|syscall|...] --format folded
     sel4rt sim      --smoke --forensics --forensics-out DIR
     sel4rt repro [section ...]        (same sections as bench/main.exe)
     sel4rt serve    --stdio | --socket PATH
     sel4rt loops
     sel4rt pins

   Every [--json] path and the serve protocol speak the same unified
   envelope (Serve.Envelope) over the same typed queries (Serve.Query);
   the subcommands below are thin clients of that API. *)

open Cmdliner

let entry_conv =
  let parse = function
    | "syscall" -> Ok Sel4_rt.Kernel_model.Syscall
    | "interrupt" | "irq" -> Ok Sel4_rt.Kernel_model.Interrupt
    | "fault" | "pagefault" -> Ok Sel4_rt.Kernel_model.Page_fault
    | "undefined" | "undef" -> Ok Sel4_rt.Kernel_model.Undefined_instruction
    | s -> Error (`Msg (Fmt.str "unknown entry point %S" s))
  in
  let print ppf e = Fmt.string ppf (Sel4_rt.Kernel_model.entry_name e) in
  Arg.conv (parse, print)

let build_conv =
  let parse = function
    | "improved" | "after" -> Ok Sel4.Build.improved
    | "original" | "before" -> Ok Sel4.Build.original
    | "benno" -> Ok { Sel4.Build.improved with Sel4.Build.sched = Sel4.Build.Benno }
    | "lazy" -> Ok { Sel4.Build.improved with Sel4.Build.sched = Sel4.Build.Lazy }
    | s -> Error (`Msg (Fmt.str "unknown build %S" s))
  in
  Arg.conv (parse, fun ppf b -> Sel4.Build.pp ppf b)

let entry_arg =
  Arg.(
    value
    & opt entry_conv Sel4_rt.Kernel_model.Syscall
    & info [ "entry"; "e" ] ~docv:"ENTRY"
        ~doc:"Kernel entry point: syscall, interrupt, fault or undefined.")

let build_arg =
  Arg.(
    value
    & opt build_conv Sel4.Build.improved
    & info [ "build"; "b" ] ~docv:"BUILD"
        ~doc:"Kernel build: improved (after), original (before), benno, lazy.")

let l2_arg =
  Arg.(value & flag & info [ "l2" ] ~doc:"Enable the unified L2 cache.")

let pin_arg =
  Arg.(
    value & flag
    & info [ "pin" ] ~doc:"Reserve one L1 way and pin the interrupt path.")

let path_arg =
  Arg.(value & flag & info [ "path" ] ~doc:"Print the worst-case path.")

let runs_arg =
  Arg.(
    value & opt int 25
    & info [ "runs" ] ~docv:"N" ~doc:"Polluted-cache measurement repetitions.")

let config_of ~l2 ~pin =
  let c = if l2 then Hw.Config.with_l2 else Hw.Config.default in
  if pin then Hw.Config.with_pinning c else c

let pins_of build ~pin =
  if not pin then Sel4_rt.Response_time.no_pins
  else begin
    let s = Sel4_rt.Pinning.select build in
    {
      Sel4_rt.Response_time.code = s.Sel4_rt.Pinning.code_lines;
      data = s.Sel4_rt.Pinning.data_lines;
    }
  end

(* Shared by every JSON subcommand: print the one-line envelope and map
   a non-ok status onto a non-zero exit. *)
let emit_envelope (line, status) =
  print_string line;
  if status <> Serve.Envelope.Ok then exit 1

let target_conv =
  let parse s =
    match Serve.Query.target_of_string s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf t -> Fmt.string ppf (Serve.Query.target_name t))

let target_arg =
  Arg.(
    value
    & pos 0 target_conv Serve.Query.Kernel_entry
    & info [] ~docv:"TARGET"
        ~doc:
          "What to analyse: kernel_entry (the full interrupt-response \
           bound: syscall path + interrupt path) or a single entry point — \
           syscall, interrupt, fault, undefined.")

let analyse_cmd =
  let run target build l2 pin =
    emit_envelope
      (Serve.Query.respond (Serve.Query.Analyse { target; build; l2; pin }))
  in
  Cmd.v
    (Cmd.info "analyse"
       ~doc:
         "Compute a WCET or interrupt-response bound and emit it as one \
          envelope line of JSON — the machine-readable twin of $(b,wcet) \
          and $(b,response), and exactly what one $(b,serve) analyse query \
          returns.  Warm disk-cache runs produce byte-identical payloads.")
    Term.(const run $ target_arg $ build_arg $ l2_arg $ pin_arg)

let wcet_cmd =
  let run entry build l2 pin path =
    let config = config_of ~l2 ~pin in
    let pins = pins_of build ~pin in
    let ctx = Sel4_rt.Analysis_ctx.make ~config ~pins ~build () in
    let result = Sel4_rt.Response_time.computed ctx entry in
    Fmt.pr "%s, %a@." (Sel4_rt.Kernel_model.entry_name entry) Sel4.Build.pp build;
    Fmt.pr "hardware: %a@." Hw.Config.pp config;
    Fmt.pr "WCET bound: %d cycles (%.1f us)@." result.Wcet.Ipet.wcet
      (Hw.Config.cycles_to_us config result.Wcet.Ipet.wcet);
    Fmt.pr "ILP: %d variables, %d constraints, %d nodes, %d LP solves, %.2fs@."
      result.Wcet.Ipet.ilp_vars result.Wcet.Ipet.ilp_constraints
      result.Wcet.Ipet.bb_nodes result.Wcet.Ipet.lp_solves
      result.Wcet.Ipet.elapsed_s;
    if path then begin
      Fmt.pr "worst-case path:@.";
      List.iter
        (fun (label, count, cycles) ->
          Fmt.pr "  %-44s x%-5d %7d cycles/visit@." label count cycles)
        (Wcet.Ipet.worst_path result)
    end
  in
  Cmd.v
    (Cmd.info "wcet" ~doc:"Compute a WCET bound for a kernel entry point.")
    Term.(const run $ entry_arg $ build_arg $ l2_arg $ pin_arg $ path_arg)

let observe_cmd =
  let run entry build l2 runs =
    let config = config_of ~l2 ~pin:false in
    let observed =
      Sel4_rt.Response_time.observed ~runs
        (Sel4_rt.Analysis_ctx.make ~config ~build ())
        entry
    in
    Fmt.pr "%s, %a, %d runs@." (Sel4_rt.Kernel_model.entry_name entry)
      Sel4.Build.pp build runs;
    Fmt.pr "observed worst case: %d cycles (%.1f us)@." observed
      (Hw.Config.cycles_to_us config observed)
  in
  Cmd.v
    (Cmd.info "observe"
       ~doc:"Measure the observed worst case under adversarial workloads.")
    Term.(const run $ entry_arg $ build_arg $ l2_arg $ runs_arg)

let response_cmd =
  let run build l2 pin =
    let config = config_of ~l2 ~pin in
    let pins = pins_of build ~pin in
    let bound =
      Sel4_rt.Response_time.interrupt_response_bound
        (Sel4_rt.Analysis_ctx.make ~config ~pins ~build ())
    in
    Fmt.pr "worst-case interrupt response (%a): %d cycles (%.1f us)@."
      Sel4.Build.pp build bound
      (Hw.Config.cycles_to_us config bound)
  in
  Cmd.v
    (Cmd.info "response"
       ~doc:
         "Compute the worst-case interrupt response bound (longest kernel \
          path plus the interrupt path).")
    Term.(const run $ build_arg $ l2_arg $ pin_arg)

(* --- explain: block-by-block decomposition of a WCET bound --- *)

let explain_cmd =
  let run func build l2 pin format out =
    let target =
      match Serve.Query.target_of_string func with
      | Ok t -> t
      | Error _ ->
          Fmt.epr
            "unknown function %S (kernel_entry, syscall, interrupt, fault, \
             undefined)@."
            func;
          exit 1
    in
    match format with
    | `Json ->
        (* The machine-readable path is one serve query: profile payload
           inside the envelope, non-exact decomposition = fail status. *)
        let line, status =
          Serve.Query.respond (Serve.Query.Explain { target; build; l2; pin })
        in
        (match out with
        | None -> print_string line
        | Some path ->
            let oc = open_out path in
            output_string oc line;
            close_out oc;
            Fmt.pr "wrote %s@." path);
        if status <> Serve.Envelope.Ok then begin
          Fmt.epr "internal error: decomposition does not sum to the bound@.";
          exit 2
        end
    | (`Text | `Folded) as format -> (
        let config = config_of ~l2 ~pin in
        let pins = pins_of build ~pin in
        let ctx = Sel4_rt.Analysis_ctx.make ~config ~pins ~build () in
        let profile =
          match target with
          | Serve.Query.Kernel_entry ->
              Sel4_rt.Response_time.interrupt_response_profile ctx
          | Serve.Query.Entry e -> Sel4_rt.Response_time.profile ctx e
        in
        if not (Obs.Bound_profile.exact profile) then begin
          Fmt.epr "internal error: decomposition does not sum to the bound@.";
          exit 2
        end;
        let rendered =
          match format with
          | `Text -> Fmt.str "%a" Obs.Bound_profile.pp profile
          | `Folded -> Obs.Bound_profile.to_folded profile
        in
        match out with
        | None -> print_string rendered
        | Some path ->
            let oc = open_out path in
            output_string oc rendered;
            close_out oc;
            Fmt.pr "wrote %s (%d rows, bound %d cycles)@." path
              (List.length profile.Obs.Bound_profile.p_rows)
              (Obs.Bound_profile.total profile))
  in
  let func_arg =
    Arg.(
      value & pos 0 string "kernel_entry"
      & info [] ~docv:"FUNC"
          ~doc:
            "What to explain: kernel_entry (the full interrupt-response \
             bound: syscall path + interrupt path), or a single entry point \
             — syscall, interrupt, fault, undefined.")
  in
  let format_conv =
    let parse = function
      | "text" | "table" -> Ok `Text
      | "folded" | "flamegraph" -> Ok `Folded
      | "json" -> Ok `Json
      | s -> Error (`Msg (Fmt.str "unknown format %S (text, folded, json)" s))
    in
    let print ppf f =
      Fmt.string ppf
        (match f with `Text -> "text" | `Folded -> "folded" | `Json -> "json")
    in
    Arg.conv (parse, print)
  in
  let format_arg =
    Arg.(
      value & opt format_conv `Text
      & info [ "format"; "f" ] ~docv:"FORMAT"
          ~doc:
            "Output format: text (per-block table), folded (flamegraph.pl \
             folded-stack lines, one frame path per block and cost \
             component), or json.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the profile to FILE.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Decompose a WCET bound block by block: the optimal IPET basis \
          rendered as per-block cycle contributions split into execution, \
          cache-stall and pipeline components, with the binding \
          flow/loop/infeasible-path constraints that shaped the optimum.  \
          The rows sum to the bound exactly.")
    Term.(
      const run $ func_arg $ build_arg $ l2_arg $ pin_arg $ format_arg
      $ out_arg)

let repro_cmd =
  let sections =
    [
      ("table1", fun () -> Sel4_rt.Experiments.(print_table1 (table1 ())));
      ("table2", fun () -> Sel4_rt.Experiments.(print_table2 (table2 ())));
      ("fig7", fun () -> Sel4_rt.Experiments.(print_fig7 (fig7 ())));
      ("fig8", fun () -> Sel4_rt.Experiments.(print_fig8 (fig8 ())));
      ("fig9", fun () -> Sel4_rt.Experiments.(print_fig9 (fig9 ())));
      ("sched", fun () -> Sel4_rt.Experiments.(print_sched (sched_ablation ())));
      ( "loopbounds",
        fun () -> Sel4_rt.Experiments.(print_loop_bounds (loop_bounds ())) );
      ( "analysis",
        fun () -> Sel4_rt.Experiments.(print_analysis_cost (analysis_cost ())) );
      ( "constraints",
        fun () ->
          Sel4_rt.Experiments.(print_constraint_modes (constraint_modes ())) );
      ("summary", fun () -> Sel4_rt.Experiments.(print_summary (summary ())));
      ("l2lock", fun () -> Sel4_rt.Experiments.(print_l2_lock (l2_lock ())));
    ]
  in
  let run names =
    let names = if names = [] then List.map fst sections else names in
    List.iter
      (fun name ->
        match List.assoc_opt name sections with
        | Some f ->
            Fmt.pr "==== %s ====@." name;
            f ()
        | None ->
            Fmt.epr "unknown section %s (available: %s)@." name
              (String.concat ", " (List.map fst sections));
            exit 1)
      names
  in
  Cmd.v
    (Cmd.info "repro"
       ~doc:"Regenerate the paper's tables and figures (all, or by name).")
    Term.(
      const run
      $ Arg.(value & pos_all string [] & info [] ~docv:"SECTION"))

let constraints_cmd =
  let main_of = function
    | "syscall" -> Ok "syscall"
    | "interrupt" | "irq" -> Ok "interrupt"
    | "fault" | "pagefault" | "page_fault" -> Ok "page_fault"
    | "undefined" | "undef" -> Ok "undef"
    | s -> Error s
  in
  let run func =
    let mains =
      match func with
      | Some f -> (
          match main_of f with
          | Ok m -> [ m ]
          | Error s ->
              Fmt.epr
                "unknown entry function %S (syscall, interrupt, fault, \
                 undefined)@."
                s;
              exit 1)
      | None ->
          List.map Sel4_rt.Kernel_model.entry_main
            Sel4_rt.Kernel_model.entry_points
    in
    List.iter
      (fun main ->
        Fmt.pr "==== %s ====@." main;
        let report = Sel4_rt.Kernel_model.constraint_report ~main () in
        Fmt.pr "%a@." Wcet.Derive_constraints.pp_report report)
      mains
  in
  let func_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FUNC"
          ~doc:
            "Entry function to audit: syscall, interrupt, fault or \
             undefined.  Default: all of them.")
  in
  Cmd.v
    (Cmd.info "constraints"
       ~doc:
         "Derive the Section 5.2 infeasible-path constraints from the TAC \
          decision models and audit every manual constraint \
          (proved/refuted/unknown, with evidence).")
    Term.(const run $ func_arg)

let loops_cmd =
  let run () =
    Sel4_rt.Experiments.(print_loop_bounds (loop_bounds ()))
  in
  Cmd.v
    (Cmd.info "loops" ~doc:"Compute the kernel loop bounds (Section 5.3).")
    Term.(const run $ const ())

(* --- trace: run a scenario with the cycle-accurate event tracer on --- *)

type trace_scenario = Quickstart | Entry of Sel4_rt.Kernel_model.entry_point

let scenario_conv =
  let parse = function
    | "quickstart" -> Ok Quickstart
    | "syscall" -> Ok (Entry Sel4_rt.Kernel_model.Syscall)
    | "interrupt" | "irq" -> Ok (Entry Sel4_rt.Kernel_model.Interrupt)
    | "fault" | "pagefault" -> Ok (Entry Sel4_rt.Kernel_model.Page_fault)
    | "undefined" | "undef" ->
        Ok (Entry Sel4_rt.Kernel_model.Undefined_instruction)
    | s -> Error (`Msg (Fmt.str "unknown scenario %S" s))
  in
  let print ppf = function
    | Quickstart -> Fmt.string ppf "quickstart"
    | Entry e -> Fmt.string ppf (Sel4_rt.Kernel_model.entry_name e)
  in
  Arg.conv (parse, print)

let format_conv =
  let parse = function
    | "chrome" | "json" -> Ok `Chrome
    | "text" | "timeline" -> Ok `Text
    | s -> Error (`Msg (Fmt.str "unknown format %S (chrome or text)" s))
  in
  let print ppf f =
    Fmt.string ppf (match f with `Chrome -> "chrome" | `Text -> "text")
  in
  Arg.conv (parse, print)

(* The examples/quickstart.ml sequence — boot, IPC ping-pong, interrupt
   delivery — with the tracer attached from the first boot instruction. *)
let run_quickstart_traced ~config buf =
  let module K = Sel4.Kernel in
  let module B = Sel4.Boot in
  let cpu = Hw.Cpu.create config in
  Hw.Cpu.set_trace_buffer cpu buf;
  let env = B.boot ~cpu Sel4.Build.improved in
  let expect what = function
    | K.Completed -> ()
    | _ -> failwith ("quickstart trace: " ^ what ^ " failed")
  in
  let _ep = B.spawn_endpoint env ~dest:10 in
  let server = B.spawn_thread env ~priority:150 ~dest:11 in
  let client = B.spawn_thread env ~priority:120 ~dest:12 in
  B.make_runnable env server;
  B.make_runnable env client;
  K.force_run env.B.k server;
  expect "recv" (K.kernel_entry env.B.k (K.Ev_recv { ep = 10 }));
  K.force_run env.B.k client;
  client.Sel4.Ktypes.regs.(0) <- 0xCAFE;
  expect "call"
    (K.kernel_entry env.B.k
       (K.Ev_call { ep = 10; badge_hint = 0; msg_len = 2; extra_caps = [] }));
  expect "reply"
    (K.kernel_entry env.B.k (K.Ev_reply_recv { ep = 10; msg_len = 1 }));
  let _irq_ep = B.spawn_endpoint env ~dest:20 in
  let handler = B.spawn_thread env ~priority:200 ~dest:21 in
  B.make_runnable env handler;
  K.force_run env.B.k env.B.root_tcb;
  expect "irq setup"
    (K.run_to_completion env.B.k
       (K.Ev_invoke (K.Inv_irq_handler { line = 7; ep = 20 })));
  K.force_run env.B.k handler;
  expect "handler recv" (K.kernel_entry env.B.k (K.Ev_recv { ep = 20 }));
  K.force_run env.B.k env.B.root_tcb;
  K.raise_irq env.B.k 7;
  expect "interrupt" (K.kernel_entry env.B.k K.Ev_interrupt);
  Hw.Cpu.clear_trace_buffer cpu

let trace_cmd =
  let run scenario build l2 seed format capacity out =
    let config = config_of ~l2 ~pin:false in
    let buf = Obs.Trace.create ?capacity () in
    (match scenario with
    | Quickstart -> run_quickstart_traced ~config buf
    | Entry entry -> (
        match
          Sel4_rt.Workloads.run_traced ~buf ~seed
            (Sel4_rt.Analysis_ctx.make ~config ~build ())
            entry
        with
        | Sel4.Kernel.Failed e, _ ->
            Fmt.epr "scenario failed: %s@." e;
            exit 1
        | (Sel4.Kernel.Completed | Sel4.Kernel.Preempted), _ -> ()));
    (* Overflow is visible, never silent: the ring keeps the newest events
       and the count of evicted ones is also surfaced as the
       [trace.dropped] metrics counter. *)
    if Obs.Trace.dropped buf > 0 then
      Fmt.epr
        "warning: trace ring overflowed — %d oldest events dropped (capacity \
         %d; raise with --capacity)@."
        (Obs.Trace.dropped buf) (Obs.Trace.capacity buf);
    let rendered =
      match format with
      | `Chrome ->
          Obs.Trace.to_chrome_json ~cycles_per_us:config.Hw.Config.clock_mhz
            buf
      | `Text -> Fmt.str "%a" Obs.Trace.pp_timeline buf
    in
    match out with
    | None -> print_string rendered
    | Some path ->
        let oc = open_out path in
        output_string oc rendered;
        close_out oc;
        Fmt.pr "wrote %s (%d events, %d dropped)@." path
          (Obs.Trace.length buf) (Obs.Trace.dropped buf)
  in
  let scenario_arg =
    Arg.(
      value
      & pos 0 scenario_conv Quickstart
      & info [] ~docv:"SCENARIO"
          ~doc:
            "Scenario to trace: quickstart (the examples/quickstart.ml \
             sequence), or an adversarial worst-case entry — syscall, \
             interrupt, fault, undefined.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Cache-pollution seed.")
  in
  let format_arg =
    Arg.(
      value & opt format_conv `Text
      & info [ "format"; "f" ] ~docv:"FORMAT"
          ~doc:
            "Output format: text (human-readable timeline) or chrome \
             (trace_event JSON, loadable in Perfetto / chrome://tracing).")
  in
  let capacity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "capacity" ] ~docv:"N"
          ~doc:
            "Trace ring capacity in events (default 65536).  When a scenario \
             emits more, the ring keeps the newest N and a warning with the \
             dropped count goes to stderr (also counted by the \
             $(b,trace.dropped) metric).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the trace to FILE.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a scenario with the cycle-accurate kernel tracer attached and \
          export the event timeline.")
    Term.(
      const run $ scenario_arg $ build_arg $ l2_arg $ seed_arg $ format_arg
      $ capacity_arg $ out_arg)

let metrics_cmd =
  let run l2 runs json =
    let config = config_of ~l2 ~pin:false in
    (* Exercise the full pipeline once per entry point — IPET stage spans,
       analysis-cache counters, pool stats — plus one observed workload for
       the hardware counters, then dump the registry. *)
    let ctx = Sel4_rt.Analysis_ctx.make ~config () in
    List.iter
      (fun entry -> ignore (Sel4_rt.Response_time.computed ctx entry))
      Sel4_rt.Kernel_model.entry_points;
    ignore
      (Sel4_rt.Response_time.observed ~runs ctx Sel4_rt.Kernel_model.Interrupt);
    if json then
      emit_envelope (Serve.Query.respond Serve.Query.Metrics)
    else Fmt.pr "%a@." (fun ppf -> Obs.Metrics.pp ppf) (Obs.Metrics.snapshot ())
  in
  let runs_arg =
    Arg.(
      value & opt int 5
      & info [ "runs" ] ~docv:"N" ~doc:"Observed-workload repetitions.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Dump the registry as JSON instead of the readable table.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run the analysis pipeline and dump the metrics registry (counters, \
          gauges, stage-span histograms) — a readable table by default, JSON \
          with $(b,--json).")
    Term.(const run $ l2_arg $ runs_arg $ json_arg)

let inject_cmd =
  let run smoke seed l2 json =
    if json then
      emit_envelope
        (Serve.Query.respond (Serve.Query.Inject { smoke; seed; l2 }))
    else begin
      let config = config_of ~l2 ~pin:false in
      let ctx = Sel4_rt.Analysis_ctx.make ~config () in
      let report = Inject.run_campaign ~smoke ~seed ctx in
      Fmt.pr "%a@." Inject.pp_report report;
      if not (Inject.ok report) then exit 1
    end
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Small workloads and few random schedules: the fast fixed-seed \
             CI configuration.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"PRNG seed for the multi-interrupt schedules.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the machine-readable campaign report (same envelope as \
             $(b,sel4rt explore --json)) instead of the readable table.")
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Exhaustive preemption-point fault-injection campaign: replay every \
          long-running operation injecting timer interrupts at each polled \
          preemption point, check the invariant catalogue and restart \
          progress after every kernel exit, and differentially compare final \
          states across scheduler variants. Exits non-zero on any failure.")
    Term.(const run $ smoke_arg $ seed_arg $ l2_arg $ json_arg)

let race_cmd =
  let run smoke json =
    if json then
      emit_envelope (Serve.Query.respond (Serve.Query.Race { smoke }))
    else begin
      let report = Race.audit ~smoke Sel4_rt.Analysis_ctx.default in
      Fmt.pr "%a@." Race.pp_matrix ();
      Fmt.pr "%a@." Race.pp_og ();
      Fmt.pr "%a@." Race.pp_audit report;
      if not (Race.audit_ok report) then exit 1
    end
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Audit against the small injection workloads (the CI run).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the full analysis (sections, matrix, Owicki-Gries rows, \
             audit) as JSON.")
  in
  Cmd.v
    (Cmd.info "race"
       ~doc:
         "Static interference analysis over preemption-delimited sections: \
          print the declared read/write footprints, the pairwise \
          interference matrix, the Owicki-Gries progress-measure report, \
          and audit the declarations against recorded accesses by replaying \
          every long-running operation preempted at every poll. Exits \
          non-zero if any recorded access escapes its declared footprint.")
    Term.(const run $ smoke_arg $ json_arg)

let explore_cmd =
  let run smoke depth json =
    if json then
      emit_envelope (Serve.Query.respond (Serve.Query.Explore { smoke; depth }))
    else begin
      let report = Explore.run ~smoke ?depth Sel4_rt.Analysis_ctx.default in
      Fmt.pr "%a@." Explore.pp_report report;
      if not (Explore.ok report) then exit 1
    end
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Depth-2 ep-delete scenario only: the fast CI configuration.")
  in
  let depth_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "depth" ] ~docv:"N"
          ~doc:
            "Maximum preemptions (and client actions) per schedule (default \
             3, or 2 under $(b,--smoke)).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the machine-readable report (same envelope as $(b,sel4rt \
             inject --json)) instead of the readable table.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "DPOR schedule explorer: systematically enumerate multi-preemption \
          schedules that run interfering client actions in the windows the \
          preemptions open, prune schedules whose actions provably commute \
          (static interference analysis), deduplicate final states by \
          canonical digest, and judge every explored schedule with the \
          injection oracles. Exits non-zero on any oracle failure.")
    Term.(const run $ smoke_arg $ depth_arg $ json_arg)

let sim_cmd =
  let run smoke seed entries only inv_every collect forensics forensics_out
      cores shielded compare =
    if cores > 1 || compare then begin
      (* The SMP engine: per-core worlds coupled through the IPI fabric.
         [--cores 1] without [--compare] stays on the single-core campaign
         below, whose stdout is covered by the byte-identity contract. *)
      if forensics || forensics_out <> None then
        Fmt.epr
          "warning: --forensics applies to the single-core campaign only; \
           ignored under --cores > 1@.";
      if compare then begin
        let shielded_rep, spread_rep, cmp =
          Smp.Soak.run_compare ~seed ?entries ~smoke ~cores:(max 2 cores) ()
        in
        Fmt.pr "%a@." Smp.Soak.pp_report shielded_rep;
        Fmt.pr "%a@." Smp.Soak.pp_report spread_rep;
        Fmt.pr "%a@." Smp.Soak.pp_comparison cmp;
        if
          not
            (shielded_rep.Smp.Soak.rp_ok && spread_rep.Smp.Soak.rp_ok
           && cmp.Smp.Soak.cmp_tail_lower)
        then exit 1
      end
      else begin
        let policy =
          if shielded then Smp.Topology.Shielded else Smp.Topology.Spread
        in
        let only = match only with [] -> None | l -> Some l in
        let report =
          Smp.Soak.run ~seed ?entries ~smoke ?inv_every ?only ~cores ~policy ()
        in
        Fmt.pr "%a@." Smp.Soak.pp_report report;
        if not report.Smp.Soak.rp_ok then exit 1
      end;
      exit 0
    end;
    let only = match only with [] -> None | l -> Some l in
    let report, th =
      if not (forensics || forensics_out <> None) then
        Sim.run_campaign_timed ~smoke ~seed ?entries ?only ?inv_every ~collect
          ()
      else begin
        let report, th, f =
          Sim.run_campaign_forensics ~smoke ~seed ?entries ?only ?inv_every ()
        in
        (* Forensic output goes to stderr / files: stdout stays the
           byte-identical campaign report. *)
        Fmt.epr "%a@." Obs.Tail_report.pp f.Sim.fo_tail;
        List.iter (fun g -> Fmt.epr "%a@." Obs.Gap_report.pp g) f.Sim.fo_gaps;
        Option.iter
          (fun dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            let write name contents =
              let path = Filename.concat dir name in
              let oc = open_out path in
              output_string oc contents;
              close_out oc;
              Fmt.epr "wrote %s@." path
            in
            write "sim_tail.json" (Obs.Tail_report.to_json f.Sim.fo_tail);
            write "sim_gap.json" (Obs.Gap_report.to_json f.Sim.fo_gaps);
            List.iter
              (fun (label, p) ->
                write
                  ("bound_profile_" ^ label ^ ".folded")
                  (Obs.Bound_profile.to_folded p))
              f.Sim.fo_profiles;
            List.iter
              (fun (stem, json) -> write (stem ^ ".trace.json") json)
              (Obs.Tail_report.chrome_traces f.Sim.fo_tail))
          forensics_out;
        (report, th)
      end
    in
    Fmt.pr "%a@." Sim.pp_report report;
    (* Wall-clock economics go to stderr: stdout is covered by the
       byte-identity contract (fixed seed => fixed bytes). *)
    Fmt.epr "%a@." Sim.pp_throughput th;
    if not report.Sim.rp_ok then exit 1
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Short runs (1500 kernel entries each): the fast fixed-seed CI \
             configuration.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"PRNG seed for workload traffic and device arrivals.")
  in
  let entries_arg =
    Arg.(
      value & opt (some int) None
      & info [ "entries" ] ~docv:"N"
          ~doc:"Kernel entries per scenario/build run (default 52000).")
  in
  let only_arg =
    Arg.(
      value & opt_all string []
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Restrict to the named scenario (repeatable).")
  in
  let inv_every_arg =
    Arg.(
      value & opt (some int) None
      & info [ "inv-every" ] ~docv:"N"
          ~doc:
            "Run the invariant catalogue every N entries (0 = off; default \
             512, or 0 under $(b,--smoke)).  Checks charge no simulated \
             cycles, so the period never changes the report.")
  in
  let collect_arg =
    Arg.(
      value & flag
      & info [ "collect" ]
          ~doc:
            "Collect all shard results before merging instead of the \
             constant-memory streaming fold (same report bytes; for \
             differential testing).")
  in
  let forensics_arg =
    Arg.(
      value & flag
      & info [ "forensics" ]
          ~doc:
            "Flight-record the worst deliveries: after the campaign, replay \
             the implicated shards with the tracer attached and print the \
             tail report (worst windows attributed to kernel sections) and \
             the gap report (bound decomposition vs. observed worst case) to \
             stderr.  The stdout report stays byte-identical.")
  in
  let forensics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "forensics-out" ] ~docv:"DIR"
          ~doc:
            "With $(b,--forensics): also write sim_tail.json, sim_gap.json, \
             per-build folded bound profiles and one Chrome trace per \
             captured worst delivery into DIR (implies $(b,--forensics)).")
  in
  let cores_arg =
    Arg.(
      value & opt int 1
      & info [ "cores" ] ~docv:"N"
          ~doc:
            "Number of modelled cores.  1 (default) runs the single-core \
             campaign (byte-identical to previous releases); above 1, the \
             SMP engine runs per-core schedulers coupled through the IPI \
             fabric and checks every delivery against the per-core bound \
             (single-core bound + remote-interference term).")
  in
  let shielded_arg =
    Arg.(
      value & flag
      & info [ "shielded" ]
          ~doc:
            "With $(b,--cores) > 1: route every device line to core 0 and \
             all tenant workload to the remaining cores (core 0 receives no \
             IPIs either).  Default is the spread policy (line l to core l \
             mod N, tenants round-robin).")
  in
  let compare_arg =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Run the shielded and spread policies at the same seed and \
             budget and report the tail comparison; exits non-zero unless \
             both runs pass their gates and the shielded core's observed \
             p99.9 and max are strictly lower.")
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Stochastic soak campaign: seeded multi-tenant syscall traffic plus \
          virtual devices asserting interrupts, run for large kernel-entry \
          counts across the scheduler variants and pinning, validating every \
          observed interrupt response latency against the computed WCET \
          bound. Deterministic for a fixed seed regardless of the domain \
          count. Exits non-zero if any latency exceeds its bound or an \
          invariant check fails.")
    Term.(
      const run $ smoke_arg $ seed_arg $ entries_arg $ only_arg $ inv_every_arg
      $ collect_arg $ forensics_arg $ forensics_out_arg $ cores_arg
      $ shielded_arg $ compare_arg)

let serve_cmd =
  let run socket stdio =
    ignore stdio;
    match socket with
    | Some path ->
        Fmt.epr "sel4rt serve: listening on %s@." path;
        Serve.Server.serve_socket path
    | None -> exit (Serve.Server.serve_stdio ())
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at PATH (one thread per \
             connection) instead of serving stdin/stdout.")
  in
  let stdio_arg =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve newline-delimited JSON queries on stdin/stdout until EOF \
             (the default).  Exits non-zero if any query line was \
             malformed.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived analysis service: accept newline-delimited JSON queries \
          (analyse, explain, metrics, sim, inject, race, explore) and answer \
          each with one envelope line.  Queries share the in-process \
          analysis caches, the Domain pool and the on-disk \
          content-addressed result cache, so repeated bounds come back \
          without a single ILP solve.")
    Term.(const run $ socket_arg $ stdio_arg)

let pins_cmd =
  let run build =
    let s = Sel4_rt.Pinning.select build in
    Fmt.pr "%a@." Sel4_rt.Pinning.pp s;
    Fmt.pr "I-cache lines:@.";
    List.iter (fun l -> Fmt.pr "  %#010x@." l) s.Sel4_rt.Pinning.code_lines;
    Fmt.pr "D-cache lines:@.";
    List.iter (fun l -> Fmt.pr "  %#010x@." l) s.Sel4_rt.Pinning.data_lines
  in
  Cmd.v
    (Cmd.info "pins" ~doc:"Show the trace-derived cache-pinning selection.")
    Term.(const run $ build_arg)

let () =
  (* Every subcommand shares the persistent result cache (set
     SEL4RT_NO_DISK_CACHE to opt out, SEL4RT_CACHE_DIR to relocate). *)
  Serve.Disk_cache.install ();
  let info =
    Cmd.info "sel4rt" ~version:"1.0.0"
      ~doc:
        "Worst-case interrupt response analysis for a verifiable protected \
         microkernel (EuroSys'12 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            wcet_cmd;
            analyse_cmd;
            serve_cmd;
            observe_cmd;
            response_cmd;
            explain_cmd;
            repro_cmd;
            constraints_cmd;
            loops_cmd;
            pins_cmd;
            trace_cmd;
            metrics_cmd;
            inject_cmd;
            race_cmd;
            explore_cmd;
            sim_cmd;
          ]))
