(** Interval × congruence product domain for the abstract interpreter.

    An element over-approximates a set of machine integers by the reduced
    product of an interval [lo, hi] (bounds possibly infinite) and a
    congruence class x ≡ r (mod m).  [m = 0] denotes the constant [r];
    [m = 1] denotes "no congruence information".  Reduction runs on every
    construction: interval endpoints are rounded to the congruence class,
    singleton intervals collapse to constants, and an empty intersection
    collapses to {!bot}.

    Arithmetic saturates: a finite bound whose exact value would leave the
    safely-representable range widens to the corresponding infinity, which
    keeps every transfer function an over-approximation without tracking
    native-int wraparound (model programs stay far below that range). *)

type bound = Ninf | Fin of int | Pinf

type t

val bot : t
val top : t
val const : int -> t
val range : int -> int -> t
(** [range lo hi]; empty when [lo > hi]. *)

val make : lo:bound -> hi:bound -> modulus:int -> residue:int -> t
(** Reduced constructor; [modulus = 0] means the constant [residue]. *)

val congruent : modulus:int -> residue:int -> t
(** All integers ≡ residue (mod modulus). *)

val is_bot : t -> bool
val is_const : t -> int option
val bounds : t -> (bound * bound) option
(** [None] for {!bot}. *)

val congruence : t -> (int * int) option
(** [(modulus, residue)]; [None] for {!bot}. *)

val finite_lo : t -> int option
val finite_hi : t -> int option
val contains : t -> int -> bool

(** {1 Lattice} *)

val leq : t -> t -> bool
val equal : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t

val widen : t -> t -> t
(** [widen old next] with [old ⊑ next]: unstable interval bounds jump to
    infinity; the congruence component joins (its chains are finite). *)

(** {1 Transfer functions}

    Each returns an over-approximation of the pointwise image.  Exact
    semantics of division and shifts follow {!Lang.eval_binop} (division
    by zero yields 0; shift counts are masked to [0, 62]). *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val shl : t -> t -> t
val shr : t -> t -> t

(** {1 Comparison refinement} *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

val negate_cmp : cmp -> cmp
val swap_cmp : cmp -> cmp
(** [swap_cmp c] is the comparison with the operands exchanged:
    [x c y ⇔ y (swap_cmp c) x]. *)

val definitely : cmp -> t -> t -> bool option
(** [Some b] when the comparison evaluates to [b] for every pair of
    concrete values drawn from the two arguments; [None] otherwise. *)

val refine : cmp -> t -> t -> t
(** [refine c v w] over-approximates [{x ∈ γ(v) | ∃ y ∈ γ(w). x c y}];
    {!bot} means the comparison can never hold. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
