(* A three-address-code mini-language.

   This plays the role of the paper's ARM instruction semantics (obtained
   there from the Fox/Myreen ARMv7 formalisation, Section 5.3): a small,
   exactly-defined language in which the kernel's loops can be re-expressed
   so that loop bounds can be computed mechanically by slicing and model
   checking rather than asserted by hand. *)

type reg = string

type operand = Reg of reg | Imm of int

type binop = Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type instr =
  | Assign of reg * operand
  | Binop of reg * binop * operand * operand
  | Load of reg * operand  (* dst, address *)
  | Store of operand * operand  (* address, value *)

type terminator =
  | Jump of string
  | Branch of cmp * operand * operand * string * string
      (* if cmp a b then goto l1 else goto l2 *)
  | Halt

type block = { label : string; instrs : instr list; term : terminator }

type param = { name : reg; lo : int; hi : int }
(* Input parameter with its declared finite domain; the model checker
   enumerates these. *)

type program = { entry : string; params : param list; blocks : block list }

(* Memoized label->block index.  Programs are immutable once built and
   looked up on every interpreter step; the index is keyed on the
   program's identity through a weak table (dead programs drop their
   index with them) and guarded by a mutex because analyses run on a
   domain pool.  Duplicate labels keep the first block, like the linear
   scan this replaces. *)
module Index_tbl = Ephemeron.K1.Make (struct
  type t = program

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let index_lock = Mutex.create ()
let indexes : (string, block) Hashtbl.t Index_tbl.t = Index_tbl.create 16

let index_of program =
  Mutex.protect index_lock (fun () ->
      match Index_tbl.find_opt indexes program with
      | Some idx -> idx
      | None ->
          let idx = Hashtbl.create (List.length program.blocks) in
          List.iter
            (fun b ->
              if not (Hashtbl.mem idx b.label) then Hashtbl.add idx b.label b)
            program.blocks;
          Index_tbl.add indexes program idx;
          idx)

let block_exn program label =
  match Hashtbl.find_opt (index_of program) label with
  | Some b -> b
  | None -> invalid_arg ("Tac.Lang.block_exn: no block " ^ label)

let defs_of_instr = function
  | Assign (r, _) | Binop (r, _, _, _) | Load (r, _) -> [ r ]
  | Store _ -> []

let uses_of_operand = function Reg r -> [ r ] | Imm _ -> []

let uses_of_instr = function
  | Assign (_, a) -> uses_of_operand a
  | Binop (_, _, a, b) -> uses_of_operand a @ uses_of_operand b
  | Load (_, a) -> uses_of_operand a
  | Store (a, v) -> uses_of_operand a @ uses_of_operand v

let uses_of_terminator = function
  | Jump _ | Halt -> []
  | Branch (_, a, b, _, _) -> uses_of_operand a @ uses_of_operand b

let successors = function
  | Jump l -> [ l ]
  | Branch (_, _, _, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]
  | Halt -> []

let eval_cmp cmp a b =
  match cmp with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 62)
  | Shr -> a lsr (b land 62)

exception Malformed of string

let validate program =
  let labels = List.map (fun b -> b.label) program.blocks in
  let rec dups = function
    | [] -> ()
    | l :: rest ->
        if List.mem l rest then raise (Malformed ("duplicate label " ^ l))
        else dups rest
  in
  dups labels;
  if not (List.mem program.entry labels) then
    raise (Malformed ("missing entry " ^ program.entry));
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          if not (List.mem s labels) then
            raise (Malformed (Fmt.str "%s jumps to unknown %s" b.label s)))
        (successors b.term))
    program.blocks;
  List.iter
    (fun (p : param) ->
      if p.lo > p.hi then
        raise (Malformed (Fmt.str "empty domain for %s" p.name)))
    program.params

let pp_operand ppf = function
  | Reg r -> Fmt.string ppf r
  | Imm n -> Fmt.int ppf n

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Div -> "/"
    | And -> "&"
    | Or -> "|"
    | Xor -> "^"
    | Shl -> "<<"
    | Shr -> ">>")

let pp_cmp ppf c =
  Fmt.string ppf
    (match c with
    | Eq -> "=="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let pp_instr ppf = function
  | Assign (r, a) -> Fmt.pf ppf "%s := %a" r pp_operand a
  | Binop (r, op, a, b) ->
      Fmt.pf ppf "%s := %a %a %a" r pp_operand a pp_binop op pp_operand b
  | Load (r, a) -> Fmt.pf ppf "%s := mem[%a]" r pp_operand a
  | Store (a, v) -> Fmt.pf ppf "mem[%a] := %a" pp_operand a pp_operand v

let pp_terminator ppf = function
  | Jump l -> Fmt.pf ppf "goto %s" l
  | Branch (c, a, b, l1, l2) ->
      Fmt.pf ppf "if %a %a %a goto %s else %s" pp_operand a pp_cmp c
        pp_operand b l1 l2
  | Halt -> Fmt.string ppf "halt"

let pp ppf program =
  Fmt.pf ppf "@[<v>entry %s@," program.entry;
  List.iter
    (fun (p : param) -> Fmt.pf ppf "param %s in [%d,%d]@," p.name p.lo p.hi)
    program.params;
  List.iter
    (fun b ->
      Fmt.pf ppf "%s:@," b.label;
      List.iter (fun i -> Fmt.pf ppf "  %a@," pp_instr i) b.instrs;
      Fmt.pf ppf "  %a@," pp_terminator b.term)
    program.blocks;
  Fmt.pf ppf "@]"
