(* Worklist abstract interpreter over SSA with per-edge refinement.

   The CFG structure (dominators, natural loops, predecessors) comes from
   lowering an instruction-free skeleton of the SSA program through
   To_cfg, the same trick Loopbound.Counter uses; block ids below are the
   skeleton's. *)

module VD = Value_domain
module Smap = Map.Make (String)

type env = VD.t Smap.t

type stats = { iterations : int; widenings : int; narrowings : int }

type t = {
  ssa : Ssa.t;
  skel : To_cfg.t;
  doms : Cfg.Dominators.t;
  loops : Cfg.Loops.t;
  reducible : bool;
  in_env : env option array;
  edges : (int * int, env) Hashtbl.t;
  stats : stats;
}

let ssa t = t.ssa
let stats t = t.stats

(* A register with no explicit binding: ".0" versions are initial values
   (the parameter's declared range, or the implicit zero every other
   register starts at — see Ssa.run); anything else is unknown. *)
let default_of (ssa : Ssa.t) reg =
  let base = Ssa.base_of reg in
  if reg = base ^ ".0" then
    match List.find_opt (fun (p : Lang.param) -> p.name = base) ssa.params with
    | Some p -> VD.range p.lo p.hi
    | None -> VD.const 0
  else VD.top

let lookup d env reg =
  match Smap.find_opt reg env with Some v -> v | None -> d reg

let eval d env = function
  | Lang.Imm n -> VD.const n
  | Lang.Reg r -> lookup d env r

let env_join d a b =
  Smap.merge
    (fun k x y ->
      match (x, y) with
      | Some x, Some y -> Some (VD.join x y)
      | Some x, None -> Some (VD.join x (d k))
      | None, Some y -> Some (VD.join (d k) y)
      | None, None -> None)
    a b

let env_widen d a b =
  Smap.merge
    (fun k x y ->
      let x = match x with Some x -> x | None -> d k in
      let y = match y with Some y -> y | None -> d k in
      Some (VD.widen x y))
    a b

let env_leq d a b =
  Smap.for_all
    (fun k va ->
      VD.leq va (match Smap.find_opt k b with Some v -> v | None -> d k))
    a
  && Smap.for_all
       (fun k vb ->
         match Smap.find_opt k a with
         | Some _ -> true
         | None -> VD.leq (d k) vb)
       b

(* Pointwise meet; None when some register becomes bottom (the state is
   unreachable). *)
let env_meet d a b =
  let bot = ref false in
  let m =
    Smap.merge
      (fun k x y ->
        let x = match x with Some x -> x | None -> d k in
        let y = match y with Some y -> y | None -> d k in
        let v = VD.meet x y in
        if VD.is_bot v then bot := true;
        Some v)
      a b
  in
  if !bot then None else Some m

let cmp_of : Lang.cmp -> VD.cmp = function
  | Lang.Eq -> VD.Eq
  | Lang.Ne -> VD.Ne
  | Lang.Lt -> VD.Lt
  | Lang.Le -> VD.Le
  | Lang.Gt -> VD.Gt
  | Lang.Ge -> VD.Ge

let transfer_instr d env (i : Lang.instr) =
  match i with
  | Assign (r, a) -> Smap.add r (eval d env a) env
  | Binop (r, op, a, b) ->
      let va = eval d env a and vb = eval d env b in
      let v =
        match (VD.is_const va, VD.is_const vb) with
        | Some x, Some y -> VD.const (Lang.eval_binop op x y)
        | _ -> (
            match op with
            | Add -> VD.add va vb
            | Sub -> VD.sub va vb
            | Mul -> VD.mul va vb
            | Div -> VD.div va vb
            | And -> VD.logand va vb
            | Or -> VD.logor va vb
            | Xor -> VD.logxor va vb
            | Shl -> VD.shl va vb
            | Shr -> VD.shr va vb)
      in
      Smap.add r v env
  | Load (r, _) -> Smap.add r VD.top env
  | Store _ -> env

let transfer_block d (b : Ssa.ssa_block) env =
  List.fold_left (transfer_instr d) env b.instrs

(* Refine [env] under the assumption [a c b]; None when the assumption
   is abstractly unsatisfiable (the edge is infeasible). *)
let refine_by d env c a b =
  let va = eval d env a and vb = eval d env b in
  match VD.definitely c va vb with
  | Some false -> None
  | _ ->
      let env =
        match a with
        | Lang.Reg ra -> Smap.add ra (VD.refine c va vb) env
        | Lang.Imm _ -> env
      in
      let env =
        match b with
        | Lang.Reg rb -> Smap.add rb (VD.refine (VD.swap_cmp c) vb va) env
        | Lang.Imm _ -> env
      in
      if Smap.exists (fun _ v -> VD.is_bot v) env then None else Some env

(* Environments flowing out of a block, per successor label. *)
let out_edges d (b : Ssa.ssa_block) env =
  match b.term with
  | Lang.Halt -> []
  | Lang.Jump l -> [ (l, env) ]
  | Lang.Branch (_, _, _, l1, l2) when l1 = l2 -> [ (l1, env) ]
  | Lang.Branch (c, a, bb, l1, l2) ->
      let c = cmp_of c in
      let t_edge =
        refine_by d env c a bb |> Option.map (fun e -> (l1, e))
      in
      let f_edge =
        refine_by d env (VD.negate_cmp c) a bb |> Option.map (fun e -> (l2, e))
      in
      List.filter_map Fun.id [ t_edge; f_edge ]

(* Evaluate [block]'s phis over the environment arriving on the edge from
   [pred] (parallel semantics; a missing source mirrors the concrete
   implicit zero). *)
let apply_phis d (block : Ssa.ssa_block) ~pred env =
  let bindings =
    List.map
      (fun (ph : Ssa.phi) ->
        let v =
          match List.assoc_opt pred ph.sources with
          | Some op -> eval d env op
          | None -> VD.const 0
        in
        (ph.dest, v))
      block.phis
  in
  List.fold_left (fun e (r, v) -> Smap.add r v e) env bindings

let analyse_ssa ?(widen_delay = 2) (ssa : Ssa.t) =
  let skeleton =
    {
      Lang.entry = ssa.entry;
      params = ssa.params;
      blocks =
        List.map
          (fun (b : Ssa.ssa_block) ->
            { Lang.label = b.label; instrs = []; term = b.term })
          ssa.blocks;
    }
  in
  let skel = To_cfg.lower skeleton in
  let fn = skel.fn in
  let doms = Cfg.Dominators.compute fn in
  let loops = Cfg.Loops.compute fn in
  let reducible = Cfg.Loops.is_reducible fn loops in
  let n = Cfg.Flowgraph.num_blocks fn in
  let preds = Cfg.Flowgraph.preds fn in
  let is_header = Array.make n false in
  List.iter (fun h -> is_header.(h) <- true) (Cfg.Loops.headers loops);
  let d = default_of ssa in
  let ssa_of = Array.map (fun l -> Ssa.block_exn ssa l) skel.label_of_id in
  let entry_id = To_cfg.id skel ssa.entry in
  (* Entry phis (the entry can be a loop header) start at the implicit
     zero, matching Ssa.run's missing-source behaviour. *)
  let env0 =
    List.fold_left
      (fun e (ph : Ssa.phi) -> Smap.add ph.dest (VD.const 0) e)
      Smap.empty (ssa_of.(entry_id)).phis
  in
  let in_env = Array.make n None in
  let edges : (int * int, env) Hashtbl.t = Hashtbl.create 64 in
  let visits = Array.make n 0 in
  let iterations = ref 0 and widenings = ref 0 and narrowings = ref 0 in
  let cap = (64 * n) + 256 in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let enqueue b =
    if not queued.(b) then (
      queued.(b) <- true;
      Queue.add b queue)
  in
  let recompute_in s =
    let contribs =
      List.filter_map
        (fun p ->
          Hashtbl.find_opt edges (p, s)
          |> Option.map (fun e -> apply_phis d ssa_of.(s) ~pred:skel.label_of_id.(p) e))
        preds.(s)
    in
    let contribs = if s = entry_id then env0 :: contribs else contribs in
    match contribs with
    | [] -> None
    | e :: rest -> Some (List.fold_left (env_join d) e rest)
  in
  let update_in s =
    match recompute_in s with
    | None -> ()
    | Some j -> (
        match in_env.(s) with
        | None ->
            in_env.(s) <- Some j;
            enqueue s
        | Some old ->
            let nw = env_join d old j in
            let widen_here =
              (is_header.(s) && visits.(s) >= widen_delay) || visits.(s) >= cap
            in
            let nw = if widen_here then env_widen d old nw else nw in
            if not (env_leq d nw old) then (
              if widen_here then incr widenings;
              in_env.(s) <- Some nw;
              enqueue s))
  in
  in_env.(entry_id) <- Some env0;
  enqueue entry_id;
  while not (Queue.is_empty queue) do
    let b = Queue.pop queue in
    queued.(b) <- false;
    visits.(b) <- visits.(b) + 1;
    incr iterations;
    match in_env.(b) with
    | None -> ()
    | Some env ->
        let env = transfer_block d ssa_of.(b) env in
        List.iter
          (fun (l, e) ->
            let s = To_cfg.id skel l in
            let key = (b, s) in
            match Hashtbl.find_opt edges key with
            | None ->
                Hashtbl.replace edges key e;
                update_in s
            | Some old ->
                let ne = env_join d old e in
                if not (env_leq d ne old) then (
                  Hashtbl.replace edges key ne;
                  update_in s))
          (out_edges d ssa_of.(b) env)
  done;
  (* Descending sweeps: rebuild edge environments from the current
     in-states (dropping edges refinement now proves infeasible), then
     meet each in-state with its recomputed join.  Every state stays
     above the least fixpoint, so precision improves soundly. *)
  let rebuild_edges () =
    Hashtbl.reset edges;
    Array.iteri
      (fun b ino ->
        match ino with
        | None -> ()
        | Some env ->
            let env = transfer_block d ssa_of.(b) env in
            List.iter
              (fun (l, e) -> Hashtbl.replace edges (b, To_cfg.id skel l) e)
              (out_edges d ssa_of.(b) env))
      in_env
  in
  let rpo = Cfg.Flowgraph.reverse_postorder fn in
  for _pass = 1 to 2 do
    rebuild_edges ();
    List.iter
      (fun s ->
        match in_env.(s) with
        | None -> ()
        | Some old -> (
            match recompute_in s with
            | None ->
                in_env.(s) <- None;
                incr narrowings
            | Some nw -> (
                match env_meet d old nw with
                | None ->
                    in_env.(s) <- None;
                    incr narrowings
                | Some m ->
                    if not (env_leq d old m) then incr narrowings;
                    in_env.(s) <- Some m)))
      rpo
  done;
  rebuild_edges ();
  {
    ssa;
    skel;
    doms;
    loops;
    reducible;
    in_env;
    edges;
    stats =
      {
        iterations = !iterations;
        widenings = !widenings;
        narrowings = !narrowings;
      };
  }

let analyse ?widen_delay p =
  Lang.validate p;
  analyse_ssa ?widen_delay (Ssa.convert p)

let id_opt t label =
  match Hashtbl.find_opt t.skel.id_of_label label with
  | Some i -> Some i
  | None -> None

let reachable t label =
  match id_opt t label with Some i -> t.in_env.(i) <> None | None -> false

let edge_feasible t ~src ~dst =
  match (id_opt t src, id_opt t dst) with
  | Some s, Some d -> Hashtbl.mem t.edges (s, d)
  | _ -> false

let reg_value t ~block reg =
  match id_opt t block with
  | None -> VD.bot
  | Some i -> (
      match t.in_env.(i) with
      | None -> VD.bot
      | Some env -> lookup (default_of t.ssa) env reg)

let value_of t ~block = function
  | Lang.Imm n -> VD.const n
  | Lang.Reg r -> reg_value t ~block r

let tracked_regs t ~block =
  let params =
    List.map (fun (p : Lang.param) -> p.name ^ ".0") t.ssa.params
  in
  match id_opt t block with
  | None -> params
  | Some i -> (
      match t.in_env.(i) with
      | None -> params
      | Some env ->
          let keys = Smap.fold (fun k _ acc -> k :: acc) env [] in
          keys @ List.filter (fun p -> not (Smap.mem p env)) params)

let pred_labels t label =
  match id_opt t label with
  | None -> []
  | Some i ->
      List.map
        (fun p -> t.skel.label_of_id.(p))
        (Cfg.Flowgraph.preds t.skel.fn).(i)

let loop_free t = Cfg.Loops.loops t.loops = []

let in_loop t label =
  match id_opt t label with
  | None -> false
  | Some i ->
      List.exists
        (fun (l : Cfg.Loops.loop) -> List.mem i l.body)
        (Cfg.Loops.loops t.loops)

let exactly_once t label =
  loop_free t && reachable t label
  &&
  match id_opt t label with
  | None -> false
  | Some i ->
      List.for_all
        (fun e -> t.in_env.(e) = None || Cfg.Dominators.dominates t.doms i e)
        (Cfg.Flowgraph.exits t.skel.fn)

(* Induction-variable trip counting over the fixpoint.  Like
   Loopbound.Counter but with interval-valued init, step and limit. *)

let find_def t reg =
  List.find_map
    (fun (b : Ssa.ssa_block) ->
      List.find_map
        (fun i ->
          if List.mem reg (Lang.defs_of_instr i) then Some (b, i) else None)
        b.instrs)
    t.ssa.blocks

let ceil_div a b = (a + b - 1) / b

let trip_of_candidate t loop ~header_id iv limit_op ccmp =
  let d = default_of t.ssa in
  let header = t.skel.label_of_id.(header_id) in
  let hblock = Ssa.block_exn t.ssa header in
  match List.find_opt (fun (ph : Ssa.phi) -> ph.dest = iv) hblock.phis with
  | None -> None
  | Some phi -> (
      let body = (loop : Cfg.Loops.loop).body in
      let in_body l =
        match id_opt t l with Some i -> List.mem i body | None -> false
      in
      let edge_env p =
        match (id_opt t p, id_opt t header) with
        | Some pi, Some hi -> Hashtbl.find_opt t.edges (pi, hi)
        | _ -> None
      in
      (* Initial value: join of the entry-edge sources. *)
      let inits =
        List.filter_map
          (fun (p, op) ->
            if in_body p then None
            else
              match edge_env p with
              | Some e -> Some (eval d e op)
              | None -> None)
          phi.sources
      in
      (* Step: each latch source must be iv +/- something. *)
      let steps =
        List.map
          (fun (p, op) ->
            if not (in_body p) then Some []
            else
              match op with
              | Lang.Reg s -> (
                  match find_def t s with
                  | Some (db, Lang.Binop (_, Lang.Add, Lang.Reg x, y))
                    when x = iv -> (
                      match t.in_env.(To_cfg.id t.skel db.label) with
                      | Some env ->
                          Some [ eval d (transfer_block d db env) y ]
                      | None -> Some [] (* latch unreachable *))
                  | Some (db, Lang.Binop (_, Lang.Sub, Lang.Reg x, y))
                    when x = iv -> (
                      match t.in_env.(To_cfg.id t.skel db.label) with
                      | Some env ->
                          Some [ VD.neg (eval d (transfer_block d db env) y) ]
                      | None -> Some [])
                  | _ -> None)
              | Lang.Imm _ -> None)
          phi.sources
      in
      if List.exists (fun s -> s = None) steps then None
      else
        let steps = List.concat_map Option.get steps in
        let init = List.fold_left VD.join VD.bot inits in
        let step = List.fold_left VD.join VD.bot steps in
        let limit =
          match t.in_env.(header_id) with
          | Some env -> eval d env limit_op
          | None -> VD.bot
        in
        if VD.is_bot init || VD.is_bot step || VD.is_bot limit then None
        else
          match ccmp with
          | Lang.Lt | Lang.Le -> (
              match
                (VD.finite_lo init, VD.finite_lo step, VD.finite_hi limit)
              with
              | Some i0, Some smin, Some lmax when smin >= 1 ->
                  let span =
                    lmax - i0 + (if ccmp = Lang.Le then 1 else 0)
                  in
                  Some (max 0 (ceil_div (max 0 span) smin))
              | _ -> None)
          | Lang.Gt | Lang.Ge -> (
              match
                (VD.finite_hi init, VD.finite_hi step, VD.finite_lo limit)
              with
              | Some i0, Some smax, Some lmin when smax <= -1 ->
                  let span =
                    i0 - lmin + (if ccmp = Lang.Ge then 1 else 0)
                  in
                  Some (max 0 (ceil_div (max 0 span) (-smax)))
              | _ -> None)
          | Lang.Ne -> (
              match
                (VD.is_const init, VD.is_const step, VD.is_const limit)
              with
              | Some i0, Some s, Some l when s <> 0 ->
                  let diff = l - i0 in
                  if diff mod s = 0 && diff / s >= 0 then Some (diff / s)
                  else None
              | _ -> None)
          | Lang.Eq -> None)

let trip_bound t ~header =
  match id_opt t header with
  | None -> None
  | Some hid -> (
      match Cfg.Loops.loop_of_header t.loops hid with
      | None -> None
      | Some loop -> (
          let hblock = Ssa.block_exn t.ssa header in
          match hblock.term with
          | Lang.Branch (c, a, b, l1, l2) when l1 <> l2 -> (
              let in_body l =
                match id_opt t l with
                | Some i -> List.mem i loop.body
                | None -> false
              in
              let cont =
                match (in_body l1, in_body l2) with
                | true, false -> Some c
                | false, true ->
                    Some
                      (match c with
                      | Lang.Eq -> Lang.Ne
                      | Lang.Ne -> Lang.Eq
                      | Lang.Lt -> Lang.Ge
                      | Lang.Le -> Lang.Gt
                      | Lang.Gt -> Lang.Le
                      | Lang.Ge -> Lang.Lt)
                | _ -> None
              in
              match cont with
              | None -> None
              | Some ccmp -> (
                  let swap = function
                    | Lang.Lt -> Lang.Gt
                    | Lang.Gt -> Lang.Lt
                    | Lang.Le -> Lang.Ge
                    | Lang.Ge -> Lang.Le
                    | c -> c
                  in
                  let c1 =
                    match a with
                    | Lang.Reg iv ->
                        trip_of_candidate t loop ~header_id:hid iv b ccmp
                    | Lang.Imm _ -> None
                  in
                  match c1 with
                  | Some _ -> c1
                  | None -> (
                      match b with
                      | Lang.Reg iv ->
                          trip_of_candidate t loop ~header_id:hid iv a
                            (swap ccmp)
                      | Lang.Imm _ -> None)))
          | _ -> None))

let loop_trips t =
  List.filter_map
    (fun h ->
      let header = t.skel.label_of_id.(h) in
      if t.in_env.(h) = None then None
      else
        trip_bound t ~header |> Option.map (fun n -> (header, n)))
    (Cfg.Loops.headers t.loops)

let block_visit_bound t label =
  if not t.reducible then None
  else
    match id_opt t label with
    | None -> None
    | Some i ->
        if t.in_env.(i) = None then Some 0
        else
          let containing =
            List.filter
              (fun (l : Cfg.Loops.loop) -> List.mem i l.body)
              (Cfg.Loops.loops t.loops)
          in
          match containing with
          | [] -> Some 1
          | [ loop ] when loop.depth = 1 -> (
              let entry_srcs =
                List.map fst (Cfg.Loops.entry_edges t.skel.fn loop)
              in
              let src_outside_loops s =
                not
                  (List.exists
                     (fun (l : Cfg.Loops.loop) -> List.mem s l.body)
                     (Cfg.Loops.loops t.loops))
              in
              if not (List.for_all src_outside_loops entry_srcs) then None
              else
                match trip_bound t ~header:t.skel.label_of_id.(loop.header) with
                | None -> None
                | Some trips ->
                    let per_entry =
                      if i = loop.header then trips + 1 else trips
                    in
                    Some (List.length entry_srcs * per_entry))
          | _ -> None
