(* Reduced product of intervals and congruences (Granger 1989 for the
   congruence transfer).  Normal form maintained by [mk]: finite bounds
   lie within [-big, big], endpoints sit on the congruence class,
   singleton intervals collapse to constants ([m = 0]), and an empty
   intersection is [Bot]. *)

type bound = Ninf | Fin of int | Pinf

(* Saturation threshold: finite bounds beyond this widen outward to the
   matching infinity (or clamp inward when that is the sound direction),
   so transfer arithmetic never overflows native ints. *)
let big = 1 lsl 50

type v = { lo : bound; hi : bound; m : int; r : int }
type t = Bot | V of v

let bcmp a b =
  match (a, b) with
  | Ninf, Ninf | Pinf, Pinf -> 0
  | Ninf, _ -> -1
  | _, Ninf -> 1
  | Pinf, _ -> 1
  | _, Pinf -> -1
  | Fin x, Fin y -> compare x y

let bmin a b = if bcmp a b <= 0 then a else b
let bmax a b = if bcmp a b >= 0 then a else b

let bneg = function Ninf -> Pinf | Pinf -> Ninf | Fin x -> Fin (-x)

let badd a b =
  match (a, b) with
  | Ninf, Pinf | Pinf, Ninf -> invalid_arg "Value_domain.badd"
  | Ninf, _ | _, Ninf -> Ninf
  | Pinf, _ | _, Pinf -> Pinf
  | Fin x, Fin y -> Fin (x + y) (* inputs are within +-big: no overflow *)

let bsub a b = badd a (bneg b)

let bmul a b =
  match (a, b) with
  | Fin 0, _ | _, Fin 0 -> Fin 0
  | Fin x, Fin y ->
      if abs x > (1 lsl 58) / abs y then if x > 0 = (y > 0) then Pinf else Ninf
      else Fin (x * y)
  | (Pinf | Ninf), Fin y -> if y > 0 then a else bneg a
  | Fin x, (Pinf | Ninf) -> if x > 0 then b else bneg b
  | Pinf, Pinf | Ninf, Ninf -> Pinf
  | Pinf, Ninf | Ninf, Pinf -> Ninf

let bsucc = function Fin x -> Fin (x + 1) | b -> b
let bpred = function Fin x -> Fin (x - 1) | b -> b

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* p * a + q * b = g, for a, b >= 1 *)
let rec egcd a b =
  if b = 0 then (a, 1, 0)
  else
    let g, p, q = egcd b (a mod b) in
    (g, q, p - (a / b) * q)

let norm_res r m = if m = 0 then r else (r mod m |> fun x -> (x + m) mod m)

(* Congruence-lattice join and meet over classes (m, r); m = 0 is the
   constant r, m = 1 is top. *)
let cong_join (m1, r1) (m2, r2) =
  let g = gcd (gcd m1 m2) (abs (r1 - r2)) in
  if g = 0 then (0, r1) else (g, norm_res r1 g)

let cong_meet (m1, r1) (m2, r2) =
  match (m1, m2) with
  | 0, 0 -> if r1 = r2 then Some (0, r1) else None
  | 0, m -> if norm_res (r1 - r2) m = 0 then Some (0, r1) else None
  | m, 0 -> if norm_res (r2 - r1) m = 0 then Some (0, r2) else None
  | _ ->
      let g = gcd m1 m2 in
      if norm_res (r1 - r2) g <> 0 then None
      else if m1 / g > 1_000_000_000 / m2 then Some (1, 0) (* lcm too big *)
      else
        let lcm = m1 / g * m2 in
        let _, p, _ = egcd m1 m2 in
        let t = norm_res (norm_res p (m2 / g) * norm_res ((r2 - r1) / g) (m2 / g)) (m2 / g) in
        Some (lcm, norm_res (r1 + (m1 * t)) lcm)

(* gamma(m1, r1) included in gamma(m2, r2)? *)
let cong_leq (m1, r1) (m2, r2) =
  match (m1, m2) with
  | _, 1 -> true
  | 0, 0 -> r1 = r2
  | 0, m -> norm_res (r1 - r2) m = 0
  | _, 0 -> false
  | _ -> m1 mod m2 = 0 && norm_res (r1 - r2) m2 = 0

let clamp_lo = function
  | Fin x when x < -big -> Ninf
  | Fin x when x > big -> Fin big
  | Pinf -> Fin big
  | b -> b

let clamp_hi = function
  | Fin x when x > big -> Pinf
  | Fin x when x < -big -> Fin (-big)
  | Ninf -> Fin (-big)
  | b -> b

let mk lo hi m r =
  let lo = clamp_lo lo and hi = clamp_hi hi in
  let m = abs m in
  let m, r = if m > 1 lsl 40 then (1, 0) else (m, r) in
  if bcmp lo hi > 0 then Bot
  else if m = 0 then
    if bcmp lo (Fin r) <= 0 && bcmp (Fin r) hi <= 0 then
      V { lo = clamp_lo (Fin r); hi = clamp_hi (Fin r); m = 0; r }
    else Bot
  else
    let r = norm_res r m in
    let lo =
      match lo with Fin x -> Fin (x + norm_res (r - x) m) | b -> b
    and hi =
      match hi with Fin x -> Fin (x - norm_res (x - r) m) | b -> b
    in
    if bcmp lo hi > 0 then Bot
    else
      match (lo, hi) with
      | Fin a, Fin b when a = b -> V { lo; hi; m = 0; r = a }
      | _ ->
          if m = 1 then V { lo; hi; m = 1; r = 0 } else V { lo; hi; m; r }

let bot = Bot
let top = mk Ninf Pinf 1 0
let const n = mk (Fin n) (Fin n) 0 n
let range lo hi = mk (Fin lo) (Fin hi) 1 0
let make ~lo ~hi ~modulus ~residue = mk lo hi modulus residue
let congruent ~modulus ~residue = mk Ninf Pinf modulus residue
let is_bot = function Bot -> true | V _ -> false

let is_const = function
  | V { m = 0; r; _ } -> Some r
  | _ -> None

let bounds = function Bot -> None | V { lo; hi; _ } -> Some (lo, hi)
let congruence = function Bot -> None | V { m; r; _ } -> Some (m, r)
let finite_lo = function V { lo = Fin x; _ } -> Some x | _ -> None
let finite_hi = function V { hi = Fin x; _ } -> Some x | _ -> None

let contains t n =
  match t with
  | Bot -> false
  | V { lo; hi; m; r } ->
      bcmp lo (Fin n) <= 0 && bcmp (Fin n) hi <= 0
      && (if m = 0 then n = r else norm_res (n - r) m = 0)

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | V a, V b ->
      bcmp b.lo a.lo <= 0 && bcmp a.hi b.hi <= 0
      && cong_leq (a.m, a.r) (b.m, b.r)

let equal a b = leq a b && leq b a

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | V a, V b ->
      let m, r = cong_join (a.m, a.r) (b.m, b.r) in
      mk (bmin a.lo b.lo) (bmax a.hi b.hi) m r

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b -> (
      match cong_meet (a.m, a.r) (b.m, b.r) with
      | None -> Bot
      | Some (m, r) -> mk (bmax a.lo b.lo) (bmin a.hi b.hi) m r)

let widen a b =
  match (a, join a b) with
  | Bot, x | x, Bot -> x
  | V a, V j ->
      let lo = if bcmp j.lo a.lo < 0 then Ninf else a.lo in
      let hi = if bcmp j.hi a.hi > 0 then Pinf else a.hi in
      mk lo hi j.m j.r

(* Transfer functions *)

let neg = function
  | Bot -> Bot
  | V { lo; hi; m; r } -> mk (bneg hi) (bneg lo) m (if m = 0 then -r else norm_res (-r) m)

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b ->
      let g = gcd a.m b.m in
      let m, r = if g = 0 then (0, a.r + b.r) else (g, norm_res (a.r + b.r) g) in
      mk (badd a.lo b.lo) (badd a.hi b.hi) m r

let sub a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b ->
      let g = gcd a.m b.m in
      let m, r = if g = 0 then (0, a.r - b.r) else (g, norm_res (a.r - b.r) g) in
      mk (bsub a.lo b.hi) (bsub a.hi b.lo) m r

let cong_mul (m1, r1) (m2, r2) =
  if m1 = 0 && m2 = 0 then (0, r1 * r2)
  else
    let cap = 1 lsl 25 in
    if abs m1 > cap || abs r1 > cap || abs m2 > cap || abs r2 > cap then (1, 0)
    else
      let g = gcd (gcd (m1 * m2) (m1 * r2)) (m2 * r1) in
      if g = 0 then (0, r1 * r2) else (g, norm_res (r1 * r2) g)

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b ->
      let cands = [ bmul a.lo b.lo; bmul a.lo b.hi; bmul a.hi b.lo; bmul a.hi b.hi ] in
      let lo = List.fold_left bmin Pinf cands and hi = List.fold_left bmax Ninf cands in
      let m, r = cong_mul (a.m, a.r) (b.m, b.r) in
      mk lo hi m r

(* Truncating division of a bound by a positive divisor bound. *)
let bdiv_pos a d =
  match (a, d) with
  | Ninf, _ -> Ninf
  | Pinf, _ -> Pinf
  | Fin _, Pinf -> Fin 0
  | Fin x, Fin y -> Fin (x / y)
  | _, Ninf -> invalid_arg "Value_domain.bdiv_pos"

(* Quotient interval for a divisor interval that is strictly positive.
   Truncating division is monotone in the dividend and, for a fixed-sign
   dividend, reaches its extremes at divisor endpoints, so the four
   corners bound the image. *)
let div_pos (alo, ahi) (dlo, dhi) =
  let cands = [ bdiv_pos alo dlo; bdiv_pos alo dhi; bdiv_pos ahi dlo; bdiv_pos ahi dhi ] in
  (List.fold_left bmin Pinf cands, List.fold_left bmax Ninf cands)

let div a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V av, V _ ->
      (* Lang semantics: division by zero yields 0. *)
      let zero_part = if contains b 0 then const 0 else Bot in
      let pos_part =
        match meet b (mk (Fin 1) Pinf 1 0) with
        | Bot -> Bot
        | V d ->
            let lo, hi = div_pos (av.lo, av.hi) (d.lo, d.hi) in
            mk lo hi 1 0
      in
      let neg_part =
        match meet b (mk Ninf (Fin (-1)) 1 0) with
        | Bot -> Bot
        | V d ->
            (* a / d = -(a / -d) *)
            let lo, hi = div_pos (av.lo, av.hi) (bneg d.hi, bneg d.lo) in
            mk (bneg hi) (bneg lo) 1 0
      in
      join zero_part (join pos_part neg_part)

let nonneg = function V { lo = Fin x; _ } -> x >= 0 | _ -> false

(* Smallest mask 2^k - 1 covering n. *)
let bits_mask n =
  let rec go m = if m >= n then m else go ((m * 2) + 1) in
  go 0

let lift_exact f a b =
  match (is_const a, is_const b) with
  | Some x, Some y -> Some (const (f x y))
  | _ -> None

let logand a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ -> (
      match lift_exact ( land ) a b with
      | Some c -> c
      | None ->
          if nonneg a && nonneg b then
            let hi =
              match (finite_hi a, finite_hi b) with
              | Some x, Some y -> Fin (min x y)
              | Some x, None | None, Some x -> Fin x
              | None, None -> Pinf
            in
            mk (Fin 0) hi 1 0
          else if nonneg a then mk (Fin 0) (match finite_hi a with Some x -> Fin x | None -> Pinf) 1 0
          else if nonneg b then mk (Fin 0) (match finite_hi b with Some x -> Fin x | None -> Pinf) 1 0
          else top)

let logor a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V av, V bv -> (
      match lift_exact ( lor ) a b with
      | Some c -> c
      | None ->
          if nonneg a && nonneg b then
            let hi =
              match (finite_hi a, finite_hi b) with
              | Some x, Some y -> Fin (bits_mask (max x y))
              | _ -> Pinf
            in
            mk (bmax av.lo bv.lo) hi 1 0
          else top)

let logxor a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ -> (
      match lift_exact ( lxor ) a b with
      | Some c -> c
      | None ->
          if nonneg a && nonneg b then
            let hi =
              match (finite_hi a, finite_hi b) with
              | Some x, Some y -> Fin (bits_mask (max x y))
              | _ -> Pinf
            in
            mk (Fin 0) hi 1 0
          else top)

(* Shift semantics mirror Lang.eval_binop: count masked to [0, 62]. *)
let shl a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ -> (
      match lift_exact (fun x y -> x lsl (y land 62)) a b with
      | Some c -> c
      | None -> (
          match is_const b with
          | Some y ->
              let k = y land 62 in
              (match (finite_lo a, finite_hi a) with
              | Some l, Some h when l >= 0 && k <= 50 && h <= 1 lsl (50 - k) ->
                  mul a (const (1 lsl k))
              | _ -> top)
          | None -> top))

let shr a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V av, _ -> (
      match lift_exact (fun x y -> x lsr (y land 62)) a b with
      | Some c -> c
      | None -> (
          match is_const b with
          | Some y ->
              let k = y land 62 in
              if k = 0 then a
              else (
                match finite_lo a with
                | Some l when l >= 0 ->
                    mk (Fin (l lsr k))
                      (match av.hi with Fin h -> Fin (h lsr k) | _ -> Pinf)
                      1 0
                | _ -> mk (Fin 0) Pinf 1 0)
          | None -> if nonneg a then mk (Fin 0) av.hi 1 0 else top))

(* Comparison refinement *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

let negate_cmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let swap_cmp = function
  | Lt -> Gt
  | Gt -> Lt
  | Le -> Ge
  | Ge -> Le
  | (Eq | Ne) as c -> c

let rec definitely c v w =
  match (v, w) with
  | Bot, _ | _, Bot -> None
  | V a, V b -> (
      let lt_all = bcmp a.hi b.lo < 0 in
      let le_all = bcmp a.hi b.lo <= 0 in
      let gt_all = bcmp a.lo b.hi > 0 in
      let ge_all = bcmp a.lo b.hi >= 0 in
      match c with
      | Lt -> if lt_all then Some true else if ge_all then Some false else None
      | Le -> if le_all then Some true else if gt_all then Some false else None
      | Gt -> if gt_all then Some true else if le_all then Some false else None
      | Ge -> if ge_all then Some true else if lt_all then Some false else None
      | Eq -> (
          match (is_const v, is_const w) with
          | Some x, Some y -> Some (x = y)
          | _ -> if is_bot (meet v w) then Some false else None)
      | Ne -> Option.map not (definitely Eq v w))

let clamp_upper v ub =
  match v with Bot -> Bot | V a -> mk a.lo (bmin a.hi ub) a.m a.r

let clamp_lower v lb =
  match v with Bot -> Bot | V a -> mk (bmax a.lo lb) a.hi a.m a.r

let refine c v w =
  match (v, w) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b -> (
      match c with
      | Eq -> meet v w
      | Ne -> (
          match is_const w with
          | Some cst ->
              let lo = if a.lo = Fin cst then Fin (cst + 1) else a.lo in
              let hi = if a.hi = Fin cst then Fin (cst - 1) else a.hi in
              mk lo hi a.m a.r
          | None -> v)
      | Lt -> clamp_upper v (bpred b.hi)
      | Le -> clamp_upper v b.hi
      | Gt -> clamp_lower v (bsucc b.lo)
      | Ge -> clamp_lower v b.lo)

let pp_bound ppf = function
  | Ninf -> Format.pp_print_string ppf "-inf"
  | Pinf -> Format.pp_print_string ppf "+inf"
  | Fin x -> Format.pp_print_int ppf x

let pp ppf = function
  | Bot -> Format.pp_print_string ppf "_|_"
  | V { m = 0; r; _ } -> Format.fprintf ppf "{%d}" r
  | V { lo; hi; m; r } ->
      Format.fprintf ppf "[%a,%a]" pp_bound lo pp_bound hi;
      if m > 1 then Format.fprintf ppf "=%d(mod %d)" r m

let to_string t = Format.asprintf "%a" pp t
