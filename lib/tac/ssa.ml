(* Static single assignment construction (Cytron et al. 1991), as named in
   Section 5.3 of the paper: phi insertion at dominance frontiers followed
   by stack-based renaming over the dominator tree.

   Versioned registers are written "r.k"; version "r.0" is the initial
   value of [r] (an input parameter or an implicit zero). *)

type phi = { dest : Lang.reg; sources : (string * Lang.operand) list }
(* One source per predecessor label. *)

type ssa_block = {
  label : string;
  phis : phi list;
  instrs : Lang.instr list;
  term : Lang.terminator;
}

type t = { entry : string; params : Lang.param list; blocks : ssa_block list }

let base_of versioned =
  match String.rindex_opt versioned '.' with
  | Some i -> String.sub versioned 0 i
  | None -> versioned

(* Memoized label->block index, same scheme as Lang.block_exn. *)
module Index_tbl = Ephemeron.K1.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let index_lock = Mutex.create ()
let indexes : (string, ssa_block) Hashtbl.t Index_tbl.t = Index_tbl.create 16

let index_of t =
  Mutex.protect index_lock (fun () ->
      match Index_tbl.find_opt indexes t with
      | Some idx -> idx
      | None ->
          let idx = Hashtbl.create (List.length t.blocks) in
          List.iter
            (fun b ->
              if not (Hashtbl.mem idx b.label) then Hashtbl.add idx b.label b)
            t.blocks;
          Index_tbl.add indexes t idx;
          idx)

let block_exn t label =
  match Hashtbl.find_opt (index_of t) label with
  | Some b -> b
  | None -> invalid_arg ("Ssa.block_exn: no block " ^ label)

let all_variables (program : Lang.program) =
  let tbl = Hashtbl.create 16 in
  let note r = Hashtbl.replace tbl r () in
  List.iter (fun (p : Lang.param) -> note p.Lang.name) program.Lang.params;
  List.iter
    (fun (b : Lang.block) ->
      List.iter
        (fun i ->
          List.iter note (Lang.defs_of_instr i);
          List.iter note (Lang.uses_of_instr i))
        b.Lang.instrs;
      List.iter note (Lang.uses_of_terminator b.Lang.term))
    program.Lang.blocks;
  Hashtbl.fold (fun r () acc -> r :: acc) tbl [] |> List.sort compare

let convert (program : Lang.program) =
  let lowered = To_cfg.lower program in
  let fn = lowered.To_cfg.fn in
  let n = Cfg.Flowgraph.num_blocks fn in
  let dom = Cfg.Dominators.compute fn in
  let frontiers = Cfg.Dominators.frontiers fn dom in
  let preds = Cfg.Flowgraph.preds fn in
  let vars = all_variables program in
  (* Phase 1: phi placement.  For each variable, iterate the dominance
     frontiers of its definition sites. *)
  let def_blocks v =
    List.filter_map
      (fun (b : Lang.block) ->
        if
          List.exists
            (fun i -> List.mem v (Lang.defs_of_instr i))
            b.Lang.instrs
        then Some (To_cfg.id lowered b.Lang.label)
        else None)
      program.Lang.blocks
    @
    (* Parameters are defined at entry. *)
    if List.exists (fun (p : Lang.param) -> p.Lang.name = v) program.Lang.params
    then [ fn.Cfg.Flowgraph.entry ]
    else []
  in
  let needs_phi = Array.make n [] in
  List.iter
    (fun v ->
      let placed = Array.make n false in
      let work = Queue.create () in
      List.iter (fun b -> Queue.push b work) (def_blocks v);
      while not (Queue.is_empty work) do
        let b = Queue.pop work in
        List.iter
          (fun f ->
            if not placed.(f) then begin
              placed.(f) <- true;
              needs_phi.(f) <- v :: needs_phi.(f);
              Queue.push f work
            end)
          frontiers.(b)
      done)
    vars;
  (* Phase 2: renaming over the dominator tree. *)
  let counters = Hashtbl.create 16 in
  let stacks : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let top v =
    match Hashtbl.find_opt stacks v with
    | Some (x :: _) -> x
    | _ -> v ^ ".0"
  in
  let fresh v =
    let k = 1 + try Hashtbl.find counters v with Not_found -> 0 in
    Hashtbl.replace counters v k;
    let name = Fmt.str "%s.%d" v k in
    Hashtbl.replace stacks v (name :: try Hashtbl.find stacks v with Not_found -> []);
    name
  in
  let pop v =
    match Hashtbl.find_opt stacks v with
    | Some (_ :: rest) -> Hashtbl.replace stacks v rest
    | _ -> assert false
  in
  let rename_operand = function
    | Lang.Reg r -> Lang.Reg (top r)
    | Lang.Imm n -> Lang.Imm n
  in
  (* Mutable per-block result under construction. *)
  let out_phis : (string * phi ref list) array =
    Array.init n (fun b ->
        ( To_cfg.label lowered b,
          List.map
            (fun v -> ref { dest = v; sources = [] })
            (List.sort compare needs_phi.(b)) ))
  in
  let out_instrs = Array.make n [] in
  let out_terms = Array.make n Lang.Halt in
  let children = Cfg.Dominators.dominator_tree dom in
  let rec walk b =
    let label = To_cfg.label lowered b in
    let block = Lang.block_exn program label in
    let pushed = ref [] in
    (* Phi destinations define new versions. *)
    let _, phis = out_phis.(b) in
    List.iter
      (fun phi_ref ->
        let v = base_of !phi_ref.dest in
        let name = fresh v in
        pushed := v :: !pushed;
        phi_ref := { !phi_ref with dest = name })
      phis;
    out_instrs.(b) <-
      List.map
        (fun i ->
          match i with
          | Lang.Assign (r, a) ->
              let a' = rename_operand a in
              let r' = fresh r in
              pushed := r :: !pushed;
              Lang.Assign (r', a')
          | Lang.Binop (r, op, a, c) ->
              let a' = rename_operand a and c' = rename_operand c in
              let r' = fresh r in
              pushed := r :: !pushed;
              Lang.Binop (r', op, a', c')
          | Lang.Load (r, a) ->
              let a' = rename_operand a in
              let r' = fresh r in
              pushed := r :: !pushed;
              Lang.Load (r', a')
          | Lang.Store (a, v) -> Lang.Store (rename_operand a, rename_operand v))
        block.Lang.instrs;
    out_terms.(b) <-
      (match block.Lang.term with
      | Lang.Jump l -> Lang.Jump l
      | Lang.Branch (c, a, v, l1, l2) ->
          Lang.Branch (c, rename_operand a, rename_operand v, l1, l2)
      | Lang.Halt -> Lang.Halt);
    (* Fill phi sources of successors. *)
    List.iter
      (fun s ->
        let _, succ_phis = out_phis.(s) in
        List.iter
          (fun phi_ref ->
            let v = base_of !phi_ref.dest in
            phi_ref :=
              {
                !phi_ref with
                sources = (label, Lang.Reg (top v)) :: !phi_ref.sources;
              })
          succ_phis)
      (Cfg.Flowgraph.succs fn b);
    List.iter walk children.(b);
    List.iter pop !pushed
  in
  walk fn.Cfg.Flowgraph.entry;
  ignore preds;
  let blocks =
    List.filter_map
      (fun (b : Lang.block) ->
        let id = To_cfg.id lowered b.Lang.label in
        if not (Cfg.Flowgraph.reachable fn).(id) then None
        else
          let label, phis = out_phis.(id) in
          Some
            {
              label;
              phis = List.map (fun r -> !r) phis;
              instrs = out_instrs.(id);
              term = out_terms.(id);
            })
      (Lang.block_exn program program.Lang.entry
      :: List.filter
           (fun b -> b.Lang.label <> program.Lang.entry)
           program.Lang.blocks)
  in
  { entry = program.Lang.entry; params = program.Lang.params; blocks }

(* --- SSA interpreter, for validating semantics preservation --- *)

let run ?(max_steps = 1_000_000) (t : t) ~inputs =
  let regs : (string, int) Hashtbl.t = Hashtbl.create 16 in
  (* Version 0 of each parameter carries its input value. *)
  List.iter (fun (r, v) -> Hashtbl.replace regs (r ^ ".0") v) inputs;
  let memory = Hashtbl.create 16 in
  let read r = try Hashtbl.find regs r with Not_found -> 0 in
  let eval = function Lang.Reg r -> read r | Lang.Imm n -> n in
  let visits = Hashtbl.create 16 in
  let steps = ref 0 in
  let rec go pred label =
    incr steps;
    if !steps > max_steps then raise Interp.Step_limit;
    Hashtbl.replace visits label
      (1 + try Hashtbl.find visits label with Not_found -> 0);
    let block = block_exn t label in
    (* Parallel phi evaluation: read all sources before writing. *)
    let phi_values =
      List.map
        (fun phi ->
          match List.assoc_opt pred phi.sources with
          | Some src -> (phi.dest, eval src)
          | None -> (phi.dest, 0))
        block.phis
    in
    List.iter (fun (d, v) -> Hashtbl.replace regs d v) phi_values;
    List.iter
      (fun i ->
        match i with
        | Lang.Assign (r, a) -> Hashtbl.replace regs r (eval a)
        | Lang.Binop (r, op, a, b) ->
            Hashtbl.replace regs r (Lang.eval_binop op (eval a) (eval b))
        | Lang.Load (r, a) ->
            Hashtbl.replace regs r
              (try Hashtbl.find memory (eval a) with Not_found -> 0)
        | Lang.Store (a, v) -> Hashtbl.replace memory (eval a) (eval v))
      block.instrs;
    match block.term with
    | Lang.Halt -> ()
    | Lang.Jump l -> go label l
    | Lang.Branch (c, a, b, l1, l2) ->
        if Lang.eval_cmp c (eval a) (eval b) then go label l1 else go label l2
  in
  go "" t.entry;
  visits

let pp ppf t =
  Fmt.pf ppf "@[<v>entry %s@," t.entry;
  List.iter
    (fun b ->
      Fmt.pf ppf "%s:@," b.label;
      List.iter
        (fun phi ->
          Fmt.pf ppf "  %s := phi(%a)@," phi.dest
            Fmt.(
              list ~sep:comma (fun ppf (l, o) ->
                  pf ppf "%s: %a" l Lang.pp_operand o))
            phi.sources)
        b.phis;
      List.iter (fun i -> Fmt.pf ppf "  %a@," Lang.pp_instr i) b.instrs;
      Fmt.pf ppf "  %a@," Lang.pp_terminator b.term)
    t.blocks;
  Fmt.pf ppf "@]"
