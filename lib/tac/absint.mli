(** Abstract interpretation of TAC programs over the
    {!Value_domain} interval × congruence product.

    The program is SSA-converted and analysed by a worklist fixpoint with
    per-edge branch refinement: each CFG edge carries the environment
    refined by the branch condition guarding it, so mutually exclusive
    paths receive disjoint abstract values.  Widening fires at natural
    loop headers after a short delay; bounded narrowing (descending
    sweeps) then recovers precision lost to widening.

    Memory is not modelled: [Load] yields top and [Store] is ignored,
    which keeps every result sound and forces the analysis to abstain on
    memory-carried loops (those remain the model checker's job). *)

type stats = {
  iterations : int;  (** block transfer evaluations in the ascending phase *)
  widenings : int;
  narrowings : int;
}

type t

val analyse : ?widen_delay:int -> Lang.program -> t
(** SSA-convert and analyse.  @raise Lang.Malformed on invalid programs. *)

val analyse_ssa : ?widen_delay:int -> Ssa.t -> t

val ssa : t -> Ssa.t
val stats : t -> stats

(** {1 Queries}  Blocks are named by their (SSA = source) labels;
    registers by their SSA names (["i.2"], with ["p.0"] the initial value
    of parameter [p]). *)

val reachable : t -> string -> bool
(** Abstractly reachable from the entry. *)

val edge_feasible : t -> src:string -> dst:string -> bool
(** False when the branch refinement proves the edge cannot be taken (or
    its source is unreachable). *)

val reg_value : t -> block:string -> Lang.reg -> Value_domain.t
(** Abstract value of a register in the in-state of [block] (after phi
    evaluation and edge refinement, joined over incoming edges);
    {!Value_domain.bot} when the block is unreachable. *)

val value_of : t -> block:string -> Lang.operand -> Value_domain.t

val tracked_regs : t -> block:string -> Lang.reg list
(** Registers with an explicit (non-default) value in the in-state of
    [block], plus the parameters' [".0"] registers. *)

val pred_labels : t -> string -> string list
val loop_free : t -> bool
val in_loop : t -> string -> bool

val exactly_once : t -> string -> bool
(** The block executes exactly once on every run: the program is
    loop-free (hence terminating) and the block dominates every
    reachable exit. *)

val loop_trips : t -> (string * int) list
(** For each loop header whose induction variable the analysis can
    bound: the maximum number of loop-body iterations per entry into the
    loop.  Generalises syntactic counter analysis: the step and limit
    may be arbitrary intervals (e.g. a parameter-dependent decrement). *)

val trip_bound : t -> header:string -> int option

val block_visit_bound : t -> string -> int option
(** Sound upper bound on executions of the block per program run, when
    one is derivable: 1 for blocks outside all loops (reducible CFGs),
    entries × trips for blocks in a single depth-1 loop with a known
    trip count. *)
