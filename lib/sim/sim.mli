(** Deterministic discrete-event soak engine (the §6-style long-horizon
    campaign): seeded multi-tenant syscall traffic plus virtual devices
    asserting interrupts under configurable arrival processes, run for
    large entry counts on the executable kernel, with every observed
    interrupt response latency validated against the computed WCET bound.

    Determinism: a campaign is a pure function of [(seed, entries)].  Work
    is sharded into fixed-size slices whose PRNG streams derive from the
    shard index alone ({!Sel4_rt.Prng.split_at}), shards run on the
    {!Sel4_rt.Parallel} pool, and results merge in submission order — so
    the merged histograms are byte-identical for any domain count. *)

(** Device interrupt arrival process, in cycles between assertions. *)
type arrival =
  | Periodic of int  (** fixed inter-arrival time *)
  | Poisson of int  (** exponential inter-arrival times with this mean *)
  | Bursty of { period : int; burst : int; spacing : int }
      (** [burst] assertions [spacing] cycles apart, then a [period] gap *)

type device = { dev_line : int; dev_arrival : arrival }

(** Workload program executed by the tenant threads of a scenario. *)
type workload =
  | Ipc_pingpong  (** client/server call + reply-recv pairs over endpoints *)
  | Notification_storm  (** signal / wait / poll churn on shared words *)
  | Cnode_storm  (** badged mint / move / delete decode storms *)
  | Untyped_churn  (** retype small objects and delete them again *)
  | Vspace_churn  (** map/unmap frames, page-table teardown and rebuild *)

type scenario = {
  sc_name : string;
  sc_workload : workload;
  sc_tenants : int;  (** workload threads, at mixed priorities *)
  sc_devices : device list;
}

val scenarios : scenario list
(** The standard five-scenario soak mix. *)

(** Exact latency statistics of one run, in cycles.  Percentiles are
    computed from the full sorted sample (not a sketch); [ls_buckets] is
    the log2 histogram in {!Obs.Metrics} bucket convention (exponent [k]
    covers [(2^(k-1), 2^k]]). *)
type latency_stats = {
  ls_count : int;
  ls_sum : int;
  ls_min : int;
  ls_p50 : int;
  ls_p90 : int;
  ls_p99 : int;
  ls_p999 : int;
  ls_max : int;
  ls_buckets : (int * int) list;
}

type violation = {
  v_line : int;
  v_latency : int;
  v_queued : int;  (** other deliveries between this line's assert and
                       delivery *)
  v_allowed : int;  (** the bound it was checked against *)
}

type run_result = {
  rr_scenario : string;
  rr_build : string;  (** scheduler/pinning label *)
  rr_pinned : bool;
  rr_entries : int;
  rr_preempted : int;
  rr_restarts : int;
  rr_failed : int;  (** kernel entries returning [Failed] (e.g. exhausted
                        untyped) — workload noise, not gate failures *)
  rr_deliveries : int;
  rr_queued_deliveries : int;  (** deliveries with at least one other
                                   delivery in their response window *)
  rr_bound : int;  (** computed interrupt-response bound (cycles) *)
  rr_irq_wcet : int;  (** computed interrupt-path WCET, the per-queued
                          -delivery surcharge *)
  rr_latency : latency_stats;
      (** single-outstanding deliveries — the paper's headline quantity,
          gated against [rr_bound] *)
  rr_violations : violation list;
  rr_invariant_failures : string list;
}

type report = {
  rp_seed : int;
  rp_entries_per_run : int;
  rp_total_entries : int;
  rp_total_deliveries : int;
  rp_runs : run_result list;
  rp_ok : bool;
}

val margin_percent : run_result -> float
(** Headroom of the bound over the observed worst case:
    [100 * (bound - max) / bound] (100 when nothing was observed). *)

(** {1 Steppable per-core world}

    The building block the SMP soak ({!Smp.Soak}) is made of: one
    booted kernel plus the scenario's tenants and devices, exposed as an
    explicit step/finish interface so several worlds (one per modelled
    core) can be interleaved in global cycle order.  {!run_campaign} is
    exactly [make_world] driven to completion per shard, so the
    single-core campaign (and its byte-identity contract) is unchanged. *)

(** Aggregated output of one world run to completion: counts, the
    latency histogram of single-outstanding deliveries (value -> count,
    sorted ascending), chronological bound violations and sampled
    invariant failures. *)
type shard_out = {
  so_entries : int;
  so_preempted : int;
  so_restarts : int;
  so_failed : int;
  so_deliveries : int;
  so_queued : int;
  so_hist : (int * int) list;
  so_violations : violation list;
  so_inv : string list;
  so_minor_words : float;
  so_worst : (int * int * int * int) list;
      (** forensics only: (latency, line, delivered cycle, entry index) *)
}

type world

val make_world :
  ?worst_n:int ->
  ?cpu_id:int ->
  ?trace:Obs.Trace.t ->
  ?on_delivery:(line:int -> latency:int -> cycle:int -> unit) ->
  build:Sel4.Build.t ->
  config:Hw.Config.t ->
  selection:Sel4_rt.Pinning.selection option ->
  scenario:scenario ->
  entries:int ->
  bound:int ->
  irq_wcet:int ->
  inv_every:int ->
  rng:Sel4_rt.Prng.t ->
  unit ->
  world
(** Boot a fresh kernel and set up [scenario]'s devices and tenants.
    [cpu_id] (default 0) tags the booted kernel's core so the affinity
    invariant has teeth under SMP soaks.
    Every observed delivery is checked against [bound] (plus one
    [irq_wcet] per queued delivery in its window) at delivery time.
    [on_delivery] is invoked after the delivering entry returns (outside
    kernel execution) — the hook the SMP fabric uses to observe traffic
    and inject cross-core work; the single-core campaign passes nothing,
    so report bytes are unaffected. *)

val world_step : world -> unit
(** Run one kernel entry (or one idle-skip-to-next-timer entry). *)

val world_done : world -> bool
val world_cycles : world -> int
val world_cpu : world -> Hw.Cpu.t
val world_kernel : world -> Sel4.Kernel.t
val world_entries_done : world -> int

val world_finish : world -> shard_out
(** Final invariant sample, uninstall the delivery hook, and reduce. *)

val stats_of_hist : (int, int) Hashtbl.t -> latency_stats
(** Exact latency statistics from a value -> count histogram (the merge
    step the campaign and the SMP soak share). *)

(** Wall-clock economics of one campaign (not deterministic — never part
    of the byte-identity contract). *)
type throughput = {
  th_wall_s : float;  (** wall time around the shard fan-out *)
  th_entries_per_sec : float;
  th_minor_words_per_entry : float;
      (** minor-heap words allocated per kernel entry, summed over the
          per-shard domain-local [Gc.minor_words] deltas *)
  th_peak_rss_kb : int;  (** VmHWM from /proc/self/status; 0 if absent *)
}

val run_campaign :
  ?pool:Sel4_rt.Parallel.t ->
  ?seed:int ->
  ?entries:int ->
  ?smoke:bool ->
  ?only:string list ->
  unit ->
  report
(** Run every scenario against the three scheduler variants (all other
    improvements enabled) plus a cache-pinned variant of the improved
    build, [entries] kernel entries each (default 52_000, or 1_500 with
    [smoke]).  [only] restricts to the named scenarios.  The gate holds
    when every observed latency is within its computed bound — plain for
    single-outstanding deliveries, plus one interrupt-path WCET per other
    delivery in the response window — and no sampled invariant check
    failed. *)

val run_campaign_timed :
  ?pool:Sel4_rt.Parallel.t ->
  ?seed:int ->
  ?entries:int ->
  ?smoke:bool ->
  ?only:string list ->
  ?inv_every:int ->
  ?collect:bool ->
  unit ->
  report * throughput
(** [run_campaign] plus throughput measurement.  [inv_every] sets the
    invariant sampling period in entries (default 512, or 0 = off with
    [smoke]; invariant checks charge no simulated cycles, so the period
    never affects report bytes).  [collect] forces the
    collect-all-then-merge path instead of the streaming ordered fold —
    same report bytes, unbounded memory; used by differential tests. *)

(** {1 Forensics: tail flight recorder and gap report}

    Retroactive capture of the worst deliveries of a campaign.  Pass 1 is
    the ordinary campaign with a per-run worst-[n] index (pure
    observation: no PRNG draws, no simulated cycles, so the report stays
    byte-identical to a non-forensic run).  Pass 2 replays exactly the
    shards implicated — their PRNG streams derive from
    [(seed, run, shard)] alone — with a trace ring attached, stopping
    right after the delivering entry, and extracts the window around each
    worst delivery. *)

type forensics = {
  fo_tail : Obs.Tail_report.t;
      (** the worst-[n] deliveries per (scenario, build) run, each with
          its captured trace window and kernel-section attribution *)
  fo_gaps : Obs.Gap_report.t list;
      (** one per run: the bound decomposition aligned against the
          observed worst window — headroom and never-executed charges *)
  fo_profiles : (string * Obs.Bound_profile.t) list;
      (** build label -> full interrupt-response bound decomposition, one
          per distinct build variant of the campaign *)
}

val run_campaign_forensics :
  ?pool:Sel4_rt.Parallel.t ->
  ?seed:int ->
  ?entries:int ->
  ?smoke:bool ->
  ?only:string list ->
  ?inv_every:int ->
  ?worst_n:int ->
  unit ->
  report * throughput * forensics
(** [run_campaign_timed] plus the two-pass forensics capture.  [worst_n]
    (default 2) bounds the flight-recorder ring per run.  The returned
    [report] is byte-identical ([report_json]) to the same campaign run
    without forensics. *)

val pp_report : report Fmt.t

val report_json : report -> string
(** The report as a JSON object (the ["sim"] section of
    [BENCH_wcet.json]). *)

val pp_throughput : throughput Fmt.t

val campaign_json : report -> throughput -> string
(** [report_json] with a ["throughput"] object spliced into the top-level
    object (wall-clock figures, not covered by byte-identity). *)
