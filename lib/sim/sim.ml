(* Deterministic discrete-event soak engine.

   One campaign = scenarios x build variants.  Each run is sharded into
   fixed-size slices of kernel entries; a shard boots a fresh kernel,
   spawns the scenario's tenants and virtual devices, and then simply
   plays user level: whatever thread the kernel scheduler left on the CPU
   issues the next event of its program.  Devices are interval timers
   armed through [Kernel.schedule_irq]; every delivery's observed
   response latency (from the line's own assert cycle) is collected via
   the kernel's delivery hook and checked against the computed WCET
   bound.

   Shard count and shard PRNG streams depend only on (seed, entries) —
   never on the domain count — and shard results merge in submission
   order, so campaign output is byte-identical for any parallelism. *)

open Sel4.Ktypes
module B = Sel4.Boot
module K = Sel4.Kernel
module Build = Sel4.Build
module Invariants = Sel4.Invariants
module Prng = Sel4_rt.Prng
module Parallel = Sel4_rt.Parallel
module Analysis_ctx = Sel4_rt.Analysis_ctx
module Response_time = Sel4_rt.Response_time
module Kernel_model = Sel4_rt.Kernel_model
module Pinning = Sel4_rt.Pinning

type arrival =
  | Periodic of int
  | Poisson of int
  | Bursty of { period : int; burst : int; spacing : int }

type device = { dev_line : int; dev_arrival : arrival }

type workload =
  | Ipc_pingpong
  | Notification_storm
  | Cnode_storm
  | Untyped_churn
  | Vspace_churn

type scenario = {
  sc_name : string;
  sc_workload : workload;
  sc_tenants : int;
  sc_devices : device list;
}

(* The standard soak mix.  Inter-arrival times are chosen so interrupts
   land inside kernel entries of every length class; two devices per
   scenario (where meaningful) exercise the multi-IRQ queueing path. *)
let scenarios =
  [
    {
      sc_name = "ipc_pingpong";
      sc_workload = Ipc_pingpong;
      sc_tenants = 6;
      sc_devices =
        [
          { dev_line = 1; dev_arrival = Periodic 21_001 };
          { dev_line = 2; dev_arrival = Poisson 34_000 };
        ];
    };
    {
      sc_name = "ntfn_storm";
      sc_workload = Notification_storm;
      sc_tenants = 6;
      sc_devices =
        [
          { dev_line = 1; dev_arrival = Periodic 15_013 };
          {
            dev_line = 3;
            dev_arrival = Bursty { period = 120_000; burst = 4; spacing = 2_500 };
          };
        ];
    };
    {
      sc_name = "cnode_storm";
      sc_workload = Cnode_storm;
      sc_tenants = 4;
      sc_devices = [ { dev_line = 2; dev_arrival = Poisson 26_000 } ];
    };
    {
      sc_name = "untyped_churn";
      sc_workload = Untyped_churn;
      sc_tenants = 4;
      sc_devices =
        [
          { dev_line = 1; dev_arrival = Periodic 17_989 };
          {
            dev_line = 4;
            dev_arrival = Bursty { period = 90_000; burst = 3; spacing = 3_000 };
          };
        ];
    };
    {
      sc_name = "vspace_churn";
      sc_workload = Vspace_churn;
      sc_tenants = 3;
      sc_devices =
        [
          { dev_line = 2; dev_arrival = Poisson 23_000 };
          { dev_line = 5; dev_arrival = Periodic 40_009 };
        ];
    };
  ]

(* --- statistics --- *)

type latency_stats = {
  ls_count : int;
  ls_sum : int;
  ls_min : int;
  ls_p50 : int;
  ls_p90 : int;
  ls_p99 : int;
  ls_p999 : int;
  ls_max : int;
  ls_buckets : (int * int) list;
}

let empty_stats =
  {
    ls_count = 0;
    ls_sum = 0;
    ls_min = 0;
    ls_p50 = 0;
    ls_p90 = 0;
    ls_p99 = 0;
    ls_p999 = 0;
    ls_max = 0;
    ls_buckets = [];
  }

(* Metrics bucket convention: exponent k covers (2^(k-1), 2^k]. *)
let bucket_of v =
  let rec bits n = if n = 0 then 0 else 1 + bits (n lsr 1) in
  if v <= 0 then min_int else bits (v - 1)

(* Exact latency statistics from a value -> count histogram.  Reproduces
   what sorting the expanded sample and indexing it would give, value for
   value: the percentile is the element at 0-based rank
   [min (n-1) (max 0 (ceil (p * n) - 1))] of the sorted expansion, found
   by walking cumulative counts.  Memory is O(distinct values) — the soak
   engine never materialises the per-delivery latency list. *)
let stats_of_hist tbl =
  let pairs =
    List.sort compare (Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl [])
  in
  match pairs with
  | [] -> empty_stats
  | (first, _) :: _ ->
      let n = List.fold_left (fun a (_, c) -> a + c) 0 pairs in
      let arr = Array.of_list pairs in
      let q p =
        let rank =
          min (n - 1) (max 0 (int_of_float (ceil (p *. float_of_int n)) - 1))
        in
        let rec walk i cum =
          let v, c = arr.(i) in
          if rank < cum + c then v else walk (i + 1) (cum + c)
        in
        walk 0 0
      in
      let buckets = Hashtbl.create 16 in
      List.iter
        (fun (v, c) ->
          let k = bucket_of v in
          Hashtbl.replace buckets k
            (c + Option.value ~default:0 (Hashtbl.find_opt buckets k)))
        pairs;
      {
        ls_count = n;
        ls_sum = List.fold_left (fun a (v, c) -> a + (v * c)) 0 pairs;
        ls_min = first;
        ls_p50 = q 0.5;
        ls_p90 = q 0.9;
        ls_p99 = q 0.99;
        ls_p999 = q 0.999;
        ls_max = fst arr.(Array.length arr - 1);
        ls_buckets =
          List.sort compare
            (Hashtbl.fold (fun k c acc -> (k, c) :: acc) buckets []);
      }

type violation = {
  v_line : int;
  v_latency : int;
  v_queued : int;
  v_allowed : int;
}

type run_result = {
  rr_scenario : string;
  rr_build : string;
  rr_pinned : bool;
  rr_entries : int;
  rr_preempted : int;
  rr_restarts : int;
  rr_failed : int;
  rr_deliveries : int;
  rr_queued_deliveries : int;
  rr_bound : int;
  rr_irq_wcet : int;
  rr_latency : latency_stats;
  rr_violations : violation list;
  rr_invariant_failures : string list;
}

type report = {
  rp_seed : int;
  rp_entries_per_run : int;
  rp_total_entries : int;
  rp_total_deliveries : int;
  rp_runs : run_result list;
  rp_ok : bool;
}

let margin_percent rr =
  if rr.rr_latency.ls_count = 0 || rr.rr_bound = 0 then 100.0
  else
    100.0
    *. float_of_int (rr.rr_bound - rr.rr_latency.ls_max)
    /. float_of_int rr.rr_bound

(* --- per-shard world --- *)

type dev_state = {
  d_line : int;
  d_arrival : arrival;
  d_rng : Prng.t;
  mutable d_burst_left : int;
}

let next_delay d =
  match d.d_arrival with
  | Periodic p -> p
  | Poisson mean ->
      let u = Prng.float d.d_rng in
      max 500 (int_of_float (-.log (1.0 -. u) *. float_of_int mean))
  | Bursty { period; burst; spacing } ->
      if d.d_burst_left > 0 then begin
        d.d_burst_left <- d.d_burst_left - 1;
        spacing
      end
      else begin
        d.d_burst_left <- max 0 (burst - 1);
        period
      end

(* One thread's user-level program: called whenever the kernel scheduler
   leaves that thread on the CPU, returns the next event it traps with. *)
type actor = { a_tcb : tcb; a_next : unit -> K.event }

(* Aggregated shard result: the shard reduces its own deliveries to counts,
   a latency histogram and any violations (checked at delivery time against
   the bound passed in), so merging is O(distinct latencies) and a campaign
   never holds per-delivery data for more than the shard in flight. *)
type shard_out = {
  so_entries : int;
  so_preempted : int;
  so_restarts : int;
  so_failed : int;
  so_deliveries : int;
  so_queued : int;  (* deliveries with at least one other in their window *)
  so_hist : (int * int) list;
      (* latency -> count of single-outstanding deliveries, sorted *)
  so_violations : violation list;  (* chronological *)
  so_inv : string list;
  so_minor_words : float;  (* minor-heap words allocated by this shard *)
  so_worst : (int * int * int * int) list;
      (* forensics only ([worst_n] > 0): the shard's worst deliveries as
         (latency, line, delivered cycle, 0-based entry index), latency
         descending, ties kept in observation order.  [report_json] never
         reads this, so it cannot perturb report bytes. *)
}

(* Tenant priorities: spread over [30, 79], deterministic in the index,
   never colliding with the root orchestrator (5) or the device interrupt
   handlers (150+). *)
let tenant_priority i = 30 + (i * 17 mod 50)

let frames_per_vspace_tenant = 4

exception Setup_failure of string

(* A steppable shard: the whole per-shard setup (kernel boot, devices,
   tenants, delivery plumbing) packaged behind a step/finish interface so
   a caller can interleave the execution of several worlds — the SMP
   soak steps N per-core worlds in global cycle order.  [run_shard] below
   is exactly [make_world] driven to completion, so the single-core path
   is untouched. *)
type world = {
  w_cpu : Hw.Cpu.t;
  w_kernel : K.t;
  w_entries : int;
  w_step : unit -> unit;
  w_entries_done : unit -> int;
  w_finish : unit -> shard_out;
}

let make_world ?(worst_n = 0) ?(cpu_id = 0) ?trace ?on_delivery ~build ~config
    ~selection ~scenario ~entries ~bound ~irq_wcet ~inv_every ~(rng : Prng.t) ()
    =
  let minor0 = Gc.minor_words () in
  let cpu = Hw.Cpu.create config in
  (* Flight-recorder replay: attach the caller's ring before any kernel
     activity.  Trace emission charges no simulated cycles, so the shard's
     behaviour is identical with or without it. *)
  Option.iter (Hw.Cpu.set_trace_buffer cpu) trace;
  (match selection with
  | Some sel -> Pinning.install sel (Hw.Cpu.machine cpu)
  | None -> ());
  let env = B.boot ~cpu ~cpu_id ~root_priority:5 build in
  let k = env.B.k in
  let next_slot = ref B.first_free_slot in
  let alloc_slot () =
    let s = !next_slot in
    incr next_slot;
    if s >= Array.length env.B.root_cnode.cn_slots then
      raise (Setup_failure "root cnode exhausted");
    s
  in
  let as_root ev =
    K.force_run k env.B.root_tcb;
    match K.run_to_completion k ev with
    | K.Completed -> ()
    | K.Preempted -> raise (Setup_failure "setup preempted")
    | K.Failed e -> raise (Setup_failure e)
  in
  (* Devices: one notification + one high-priority handler thread per
     line, bound through the real IRQ-control path. *)
  let devices =
    List.mapi
      (fun j d ->
        let ntfn_slot = alloc_slot () in
        let _ = B.spawn_notification env ~dest:ntfn_slot in
        as_root
          (K.Ev_invoke
             (K.Inv_bind_irq_notification
                { line = d.dev_line; ntfn = B.cptr ntfn_slot }));
        let handler = B.spawn_thread env ~priority:(150 + j) ~dest:(alloc_slot ()) in
        B.make_runnable env handler;
        K.force_run k handler;
        (match K.kernel_entry k (K.Ev_wait { ntfn = B.cptr ntfn_slot }) with
        | K.Completed -> ()
        | K.Preempted | K.Failed _ -> raise (Setup_failure "handler wait"));
        let dev =
          {
            d_line = d.dev_line;
            d_arrival = d.dev_arrival;
            d_rng = Prng.split_at rng (100 + j);
            d_burst_left = 0;
          }
        in
        (dev, { a_tcb = handler; a_next = (fun () -> K.Ev_wait { ntfn = B.cptr ntfn_slot }) }))
      scenario.sc_devices
  in
  let dev_states = List.map fst devices in
  let handler_actors = List.map snd devices in
  (* Tenants, per workload. *)
  let tenant_actors =
    match scenario.sc_workload with
    | Ipc_pingpong ->
        (* Pairs: even index = server (reply-recv loop), odd = client
           (call loop) on the pair's endpoint. *)
        let pairs = max 1 (scenario.sc_tenants / 2) in
        List.concat
          (List.init pairs (fun p ->
               let ep_slot = alloc_slot () in
               let _ = B.spawn_endpoint env ~dest:ep_slot in
               let server =
                 B.spawn_thread env ~priority:(tenant_priority (2 * p))
                   ~dest:(alloc_slot ())
               in
               let client =
                 B.spawn_thread env
                   ~priority:(tenant_priority ((2 * p) + 1))
                   ~dest:(alloc_slot ())
               in
               B.make_runnable env server;
               B.make_runnable env client;
               let crng = Prng.split_at rng (2 * p) in
               [
                 {
                   a_tcb = server;
                   a_next =
                     (fun () -> K.Ev_reply_recv { ep = B.cptr ep_slot; msg_len = 1 });
                 };
                 {
                   a_tcb = client;
                   a_next =
                     (fun () ->
                       K.Ev_call
                         {
                           ep = B.cptr ep_slot;
                           badge_hint = 0;
                           msg_len = 1 + Prng.int crng 4;
                           extra_caps = [];
                         });
                 };
               ]))
    | Notification_storm ->
        let words = 3 in
        let ntfn_slots = List.init words (fun _ -> alloc_slot ()) in
        List.iter (fun s -> ignore (B.spawn_notification env ~dest:s)) ntfn_slots;
        let ntfn_arr = Array.of_list ntfn_slots in
        List.init scenario.sc_tenants (fun i ->
            let t =
              B.spawn_thread env ~priority:(tenant_priority i)
                ~dest:(alloc_slot ())
            in
            B.make_runnable env t;
            let trng = Prng.split_at rng i in
            let signaler = i mod 2 = 0 in
            {
              a_tcb = t;
              a_next =
                (fun () ->
                  let ntfn = B.cptr ntfn_arr.(Prng.int trng words) in
                  if signaler then
                    if Prng.int trng 4 = 0 then K.Ev_poll { ntfn }
                    else K.Ev_signal { ntfn }
                  else
                    match Prng.int trng 3 with
                    | 0 -> K.Ev_wait { ntfn }
                    | 1 -> K.Ev_poll { ntfn }
                    | _ -> K.Ev_signal { ntfn });
            })
    | Cnode_storm ->
        let ep_slot = alloc_slot () in
        let _ = B.spawn_endpoint env ~dest:ep_slot in
        List.init scenario.sc_tenants (fun i ->
            let t =
              B.spawn_thread env ~priority:(tenant_priority i)
                ~dest:(alloc_slot ())
            in
            B.make_runnable env t;
            let s0 = alloc_slot () and s1 = alloc_slot () and s2 = alloc_slot () in
            let phase = ref 0 in
            {
              a_tcb = t;
              a_next =
                (fun () ->
                  let p = !phase in
                  phase := (p + 1) mod 5;
                  let slots = env.B.root_cnode.cn_slots in
                  match p with
                  | 0 ->
                      K.Ev_invoke
                        (K.Inv_copy
                           {
                             src = B.cptr ep_slot;
                             dest_slot = slots.(s0);
                             badge = Some (1 + i);
                           })
                  | 1 ->
                      K.Ev_invoke
                        (K.Inv_copy
                           {
                             src = B.cptr ep_slot;
                             dest_slot = slots.(s1);
                             badge = Some (100 + i);
                           })
                  | 2 ->
                      K.Ev_invoke
                        (K.Inv_move { src = B.cptr s1; dest_slot = slots.(s2) })
                  | 3 -> K.Ev_invoke (K.Inv_delete { target = B.cptr s0 })
                  | _ -> K.Ev_invoke (K.Inv_delete { target = B.cptr s2 }));
            })
    | Untyped_churn ->
        List.init scenario.sc_tenants (fun i ->
            let t =
              B.spawn_thread env ~priority:(tenant_priority i)
                ~dest:(alloc_slot ())
            in
            B.make_runnable env t;
            let s0 = alloc_slot ()
            and s1 = alloc_slot ()
            and s2 = alloc_slot ()
            and s3 = alloc_slot () in
            let phase = ref 0 in
            {
              a_tcb = t;
              a_next =
                (fun () ->
                  let p = !phase in
                  phase := (p + 1) mod 7;
                  let slots = env.B.root_cnode.cn_slots in
                  let retype obj_type dest_slots =
                    K.Ev_invoke
                      (K.Inv_retype
                         { ut = B.ut_cptr; obj_type; count = List.length dest_slots; dest_slots })
                  in
                  match p with
                  | 0 -> retype Endpoint_object [ slots.(s0); slots.(s1) ]
                  | 1 -> retype Notification_object [ slots.(s2) ]
                  | 2 -> retype (Frame_object 12) [ slots.(s3) ]
                  | 3 -> K.Ev_invoke (K.Inv_delete { target = B.cptr s0 })
                  | 4 -> K.Ev_invoke (K.Inv_delete { target = B.cptr s1 })
                  | 5 -> K.Ev_invoke (K.Inv_delete { target = B.cptr s2 })
                  | _ -> K.Ev_invoke (K.Inv_delete { target = B.cptr s3 }));
            })
    | Vspace_churn ->
        (* One ASID pool shared by the shard; a page directory, page
           table and four small frames per tenant.  The cyclic program
           maps and unmaps frames and periodically deletes the page
           table with live mappings — the §3.6 preemptible teardown —
           then rebuilds it through the real retype path. *)
        let pool_slot = alloc_slot () in
        as_root
          (K.Ev_invoke
             (K.Inv_make_asid_pool
                {
                  ut = B.ut_cptr;
                  dest_slot = env.B.root_cnode.cn_slots.(pool_slot);
                  top_index = 0;
                }));
        List.init scenario.sc_tenants (fun i ->
            let t =
              B.spawn_thread env ~priority:(tenant_priority i)
                ~dest:(alloc_slot ())
            in
            B.make_runnable env t;
            let pd_slot = alloc_slot () and pt_slot = alloc_slot () in
            let frame_slots =
              List.init frames_per_vspace_tenant (fun _ -> alloc_slot ())
            in
            let slots = env.B.root_cnode.cn_slots in
            ignore
              (B.retype_syscall env Page_directory_object ~count:1 ~dest:pd_slot);
            as_root
              (K.Ev_invoke
                 (K.Inv_assign_asid
                    { pool = B.cptr pool_slot; pd = B.cptr pd_slot }));
            ignore (B.retype_syscall env Page_table_object ~count:1 ~dest:pt_slot);
            List.iter
              (fun s -> ignore (B.retype_syscall env (Frame_object 12) ~count:1 ~dest:s))
              frame_slots;
            let base = 0x1000_0000 * (i + 1) in
            let f = Array.of_list frame_slots in
            let phase = ref 0 in
            let map_pt () =
              K.Ev_invoke
                (K.Inv_map_page_table
                   { pt = B.cptr pt_slot; pd = B.cptr pd_slot; vaddr = base })
            in
            let map_f j =
              K.Ev_invoke
                (K.Inv_map_frame
                   {
                     frame = B.cptr f.(j);
                     pd = B.cptr pd_slot;
                     vaddr = base + (j * 0x1000);
                   })
            in
            let unmap_f j = K.Ev_invoke (K.Inv_unmap_frame { frame = B.cptr f.(j) }) in
            {
              a_tcb = t;
              a_next =
                (fun () ->
                  let p = !phase in
                  phase := (p + 1) mod 11;
                  match p with
                  | 0 -> map_pt ()
                  | 1 -> map_f 0
                  | 2 -> map_f 1
                  | 3 -> map_f 2
                  | 4 -> unmap_f 0
                  | 5 -> map_f 3
                  | 6 -> unmap_f 1
                  (* f2 and f3 still mapped: the delete below does real
                     teardown work. *)
                  | 7 -> K.Ev_invoke (K.Inv_delete { target = B.cptr pt_slot })
                  | 8 -> unmap_f 2
                  | 9 -> unmap_f 3
                  | _ ->
                      K.Ev_invoke
                        (K.Inv_retype
                           {
                             ut = B.ut_cptr;
                             obj_type = Page_table_object;
                             count = 1;
                             dest_slots = [ slots.(pt_slot) ];
                           }));
            })
  in
  let root_actor = { a_tcb = env.B.root_tcb; a_next = (fun () -> K.Ev_yield) } in
  let actors = (root_actor :: handler_actors) @ tenant_actors in
  (* Flat per-entry dispatch: tcb id -> user program and tcb id -> restart
     event, in arrays sized by the post-setup id watermark (every thread
     the scheduler can leave on the CPU exists by now).  The per-entry
     path below allocates nothing: no closures, no options, no list
     traffic — entries run back-to-back on the minor heap's fast path. *)
  let yield_ev () = K.Ev_yield in
  let n_ids = k.K.next_id in
  let programs = Array.make n_ids yield_ev in
  List.iter (fun a -> programs.(a.a_tcb.tcb_id) <- a.a_next) actors;
  let restart_ev : K.event option array = Array.make n_ids None in
  (* Arm every device once; thereafter each re-arms at its own delivery. *)
  let arm d = K.schedule_irq k d.d_line ~delay:(next_delay d) in
  List.iter arm dev_states;
  let dev_by_line = Array.make K.num_irqs None in
  List.iter (fun d -> dev_by_line.(d.d_line) <- Some d) dev_states;
  (* Deliveries land in preallocated parallel buffers (at most one per
     line per entry) and are reduced after the entry returns. *)
  let deliv_cap = K.num_irqs in
  let deliv_line = Array.make deliv_cap 0 in
  let deliv_lat = Array.make deliv_cap 0 in
  let deliv_cyc = Array.make deliv_cap 0 in
  let deliv_n = ref 0 in
  K.set_irq_delivery_hook k
    (Some
       (fun line latency ->
         let i = !deliv_n in
         assert (i < deliv_cap);
         deliv_line.(i) <- line;
         deliv_lat.(i) <- latency;
         deliv_cyc.(i) <- K.cycles k;
         deliv_n := i + 1));
  (* Response-window ring: cycle stamps of the 64 most recent deliveries.
     [min_int] marks an empty slot and can never satisfy the window
     predicate, so a partially filled ring counts exactly like the short
     list it replaces. *)
  let recent = Array.make 64 min_int in
  let recent_pos = ref 0 in
  (* Worst-K tracking (forensics pass 1): a small sorted-descending array
     of (latency, line, delivered cycle, entry index).  Pure observation —
     no PRNG draws, no cycle charges — so enabling it cannot change the
     report.  Strict-greater insertion keeps the first-observed delivery
     ahead of later equals. *)
  let worst = Array.make (max worst_n 1) (min_int, 0, 0, 0) in
  let worst_len = ref 0 in
  let note_worst latency line cyc entry =
    let full = !worst_len = worst_n in
    if (not full) || latency > (let l, _, _, _ = worst.(worst_n - 1) in l) then begin
      let pos = ref (if full then worst_n - 1 else !worst_len) in
      if not full then incr worst_len;
      while !pos > 0 && (let l, _, _, _ = worst.(!pos - 1) in latency > l) do
        worst.(!pos) <- worst.(!pos - 1);
        decr pos
      done;
      worst.(!pos) <- (latency, line, cyc, entry)
    end
  in
  let hist : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let deliveries = ref 0 in
  let queued_deliveries = ref 0 in
  let violations = ref [] in
  let failed = ref 0 in
  let inv = ref [] in
  let inv_count = ref 0 in
  let entries_done = ref 0 in
  let sample_invariants () =
    if !inv_count < 8 then
      match Invariants.check_result k with
      | Ok () -> ()
      | Error vs ->
          (* Fingerprint the canonical kernel state (Sel4.Digest) so a
             sampled violation pins down *which* state broke — two runs
             reporting the same message can be told apart, and a replay
             reaching the same fingerprint is known to be faithful.
             Failure-only: passing runs never format a digest, so report
             bytes are unchanged. *)
          let state = Digest.to_hex (Digest.string (Sel4.Digest.of_kernel k)) in
          let msgs =
            List.map
              (fun v ->
                Fmt.str "%s entry %d [state %s]: %s" scenario.sc_name
                  !entries_done state v)
              vs
          in
          inv := !inv @ msgs;
          inv_count := !inv_count + List.length msgs
  in
  let run_entry issuer_id ev =
    if issuer_id >= 0 then restart_ev.(issuer_id) <- None;
    (match K.kernel_entry k ev with
    | K.Completed -> ()
    | K.Preempted -> if issuer_id >= 0 then restart_ev.(issuer_id) <- Some ev
    | K.Failed _ -> incr failed);
    incr entries_done;
    let nd = !deliv_n in
    if nd > 0 then begin
      for di = 0 to nd - 1 do
        let line = deliv_line.(di) in
        let latency = deliv_lat.(di) in
        let cyc = deliv_cyc.(di) in
        let asserted = cyc - latency in
        let queued = ref 0 in
        for ri = 0 to 63 do
          let c = recent.(ri) in
          if c > asserted && c < cyc then incr queued
        done;
        let queued = !queued in
        recent.(!recent_pos) <- cyc;
        recent_pos := (!recent_pos + 1) land 63;
        incr deliveries;
        if worst_n > 0 then note_worst latency line cyc (!entries_done - 1);
        let allowed = bound + (queued * irq_wcet) in
        if latency > allowed then
          violations :=
            { v_line = line; v_latency = latency; v_queued = queued; v_allowed = allowed }
            :: !violations;
        if queued > 0 then incr queued_deliveries
        else begin
          match Hashtbl.find_opt hist latency with
          | Some c -> Hashtbl.replace hist latency (c + 1)
          | None -> Hashtbl.add hist latency 1
        end;
        (match dev_by_line.(line) with Some d -> arm d | None -> ());
        (* External observer (the SMP fabric): pure observation from the
           world's own point of view — the callback runs after the entry,
           outside kernel execution, and the single-core path passes
           [None], so report bytes cannot change. *)
        match on_delivery with
        | Some f -> f ~line ~latency ~cycle:cyc
        | None -> ()
      done;
      deliv_n := 0
    end;
    if inv_every > 0 && !entries_done mod inv_every = 0 then sample_invariants ()
  in
  let step () =
    if K.has_pending_irq k then run_entry (-1) K.Ev_interrupt
    else
      let cur = k.K.current in
      if cur == k.K.idle then begin
        (match K.next_armed_irq k with
        | Some (fire, _) ->
            let now = K.cycles k in
            if fire > now then Hw.Cpu.tick cpu (fire - now)
        | None -> List.iter arm dev_states);
        run_entry (-1) K.Ev_interrupt
      end
      else
        let id = cur.tcb_id in
        let ev =
          match restart_ev.(id) with Some ev -> ev | None -> programs.(id) ()
        in
        run_entry id ev
  in
  let finish () =
    if inv_every > 0 then sample_invariants ();
    K.set_irq_delivery_hook k None;
    {
      so_entries = !entries_done;
      so_preempted = K.preempted_events k;
      so_restarts = k.K.syscall_restarts;
      so_failed = !failed;
      so_deliveries = !deliveries;
      so_queued = !queued_deliveries;
      so_hist =
        List.sort compare (Hashtbl.fold (fun v c acc -> (v, c) :: acc) hist []);
      so_violations = List.rev !violations;
      so_inv = !inv;
      so_minor_words = Gc.minor_words () -. minor0;
      so_worst = List.init !worst_len (fun i -> worst.(i));
    }
  in
  {
    w_cpu = cpu;
    w_kernel = k;
    w_entries = entries;
    w_step = step;
    w_entries_done = (fun () -> !entries_done);
    w_finish = finish;
  }

let world_step w = w.w_step ()
let world_done w = w.w_entries_done () >= w.w_entries
let world_cycles w = Hw.Cpu.cycles w.w_cpu
let world_cpu w = w.w_cpu
let world_kernel w = w.w_kernel
let world_entries_done w = w.w_entries_done ()
let world_finish w = w.w_finish ()

let run_shard ?worst_n ?trace ~build ~config ~selection ~scenario ~entries
    ~bound ~irq_wcet ~inv_every ~(rng : Prng.t) () =
  let w =
    make_world ?worst_n ?trace ~build ~config ~selection ~scenario ~entries
      ~bound ~irq_wcet ~inv_every ~rng ()
  in
  while not (world_done w) do
    world_step w
  done;
  world_finish w

(* --- campaign --- *)

let shard_size = 4096

let shard_sizes entries =
  let rec go n = if n <= shard_size then [ n ] else shard_size :: go (n - shard_size) in
  if entries <= 0 then [] else go entries

type run_spec = {
  rs_index : int;
  rs_label : string;
  rs_build : Build.t;
  rs_pinned : bool;
  rs_config : Hw.Config.t;
  rs_selection : Pinning.selection option;
  rs_scenario : scenario;
  rs_bound : int;
  rs_irq_wcet : int;
}

let build_variants =
  [
    ("lazy", { Build.improved with Build.sched = Build.Lazy }, false);
    ("benno", { Build.improved with Build.sched = Build.Benno }, false);
    ("benno_bitmap", Build.improved, false);
    ("benno_bitmap+pin", Build.improved, true);
  ]

(* Per-run accumulator: shard outputs merge into it in submission order
   (streaming), so its contents — and the report built from it — are
   independent of how shards were scheduled across domains. *)
type run_acc = {
  mutable ac_entries : int;
  mutable ac_preempted : int;
  mutable ac_restarts : int;
  mutable ac_failed : int;
  mutable ac_deliveries : int;
  mutable ac_queued : int;
  ac_hist : (int, int) Hashtbl.t;
  mutable ac_violations_rev : violation list;
  mutable ac_inv_rev : string list;
}

let fresh_acc () =
  {
    ac_entries = 0;
    ac_preempted = 0;
    ac_restarts = 0;
    ac_failed = 0;
    ac_deliveries = 0;
    ac_queued = 0;
    ac_hist = Hashtbl.create 64;
    ac_violations_rev = [];
    ac_inv_rev = [];
  }

let merge_shard acc (out : shard_out) =
  acc.ac_entries <- acc.ac_entries + out.so_entries;
  acc.ac_preempted <- acc.ac_preempted + out.so_preempted;
  acc.ac_restarts <- acc.ac_restarts + out.so_restarts;
  acc.ac_failed <- acc.ac_failed + out.so_failed;
  acc.ac_deliveries <- acc.ac_deliveries + out.so_deliveries;
  acc.ac_queued <- acc.ac_queued + out.so_queued;
  List.iter
    (fun (v, c) ->
      match Hashtbl.find_opt acc.ac_hist v with
      | Some c0 -> Hashtbl.replace acc.ac_hist v (c0 + c)
      | None -> Hashtbl.add acc.ac_hist v c)
    out.so_hist;
  acc.ac_violations_rev <- List.rev_append out.so_violations acc.ac_violations_rev;
  acc.ac_inv_rev <- List.rev_append out.so_inv acc.ac_inv_rev

let finish_acc spec acc =
  {
    rr_scenario = spec.rs_scenario.sc_name;
    rr_build = spec.rs_label;
    rr_pinned = spec.rs_pinned;
    rr_entries = acc.ac_entries;
    rr_preempted = acc.ac_preempted;
    rr_restarts = acc.ac_restarts;
    rr_failed = acc.ac_failed;
    rr_deliveries = acc.ac_deliveries;
    rr_queued_deliveries = acc.ac_queued;
    rr_bound = spec.rs_bound;
    rr_irq_wcet = spec.rs_irq_wcet;
    rr_latency = stats_of_hist acc.ac_hist;
    rr_violations = List.rev acc.ac_violations_rev;
    rr_invariant_failures = List.rev acc.ac_inv_rev;
  }

(* Campaign wall-clock economics, measured around the shard fan-out. *)
type throughput = {
  th_wall_s : float;
  th_entries_per_sec : float;
  th_minor_words_per_entry : float;
  th_peak_rss_kb : int;
}

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec scan acc =
        match input_line ic with
        | exception End_of_file -> acc
        | line ->
            if String.length line >= 6 && String.sub line 0 6 = "VmHWM:" then begin
              let num = ref 0 and seen = ref false in
              String.iter
                (fun ch ->
                  if ch >= '0' && ch <= '9' then begin
                    num := (!num * 10) + (Char.code ch - Char.code '0');
                    seen := true
                  end)
                line;
              scan (if !seen then !num else acc)
            end
            else scan acc
      in
      let r = scan 0 in
      close_in ic;
      r

(* The campaign driver proper.  [worst_n > 0] additionally tracks, per
   run, the worst-N deliveries as (latency, line, delivered cycle, entry
   index, shard index) — the forensics pass-1 output that tells the
   flight recorder which shards to replay. *)
let campaign_internal ?pool ?(seed = 42) ?entries ?(smoke = false) ?only
    ?inv_every ?(collect = false) ~worst_n () =
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  let entries =
    match entries with Some e -> e | None -> if smoke then 1_500 else 52_000
  in
  let inv_every =
    match inv_every with Some n -> max 0 n | None -> if smoke then 0 else 512
  in
  let chosen =
    match only with
    | None -> scenarios
    | Some names -> List.filter (fun s -> List.mem s.sc_name names) scenarios
  in
  let root = Prng.create seed in
  (* Analysis inputs, computed once per build variant (serial; the
     engine's cache makes repeats cheap). *)
  let specs =
    List.concat_map
      (fun sc ->
        List.map
          (fun (label, build, pinned) ->
            let config =
              if pinned then Hw.Config.with_pinning Hw.Config.default
              else Hw.Config.default
            in
            let selection = if pinned then Some (Pinning.select build) else None in
            let pins =
              match selection with
              | None -> Analysis_ctx.no_pins
              | Some sel ->
                  {
                    Analysis_ctx.code = sel.Pinning.code_lines;
                    data = sel.Pinning.data_lines;
                  }
            in
            let actx = Analysis_ctx.make ~config ~pins ~build () in
            {
              rs_index = 0;
              rs_label = label;
              rs_build = build;
              rs_pinned = pinned;
              rs_config = config;
              rs_selection = selection;
              rs_scenario = sc;
              rs_bound = Response_time.interrupt_response_bound actx;
              rs_irq_wcet = Response_time.computed_cycles actx Kernel_model.Interrupt;
            })
          build_variants)
      chosen
  in
  let specs = List.mapi (fun i s -> { s with rs_index = i }) specs in
  let nspecs = List.length specs in
  (* Flatten (run, shard) jobs into one batch for load balance.  Shard
     outputs merge into per-run accumulators in submission order as the
     ordered prefix completes, so only the pool's out-of-order window of
     shard_outs is ever live — memory stays constant in [entries].
     [collect] keeps the run_all-then-fold path for differential tests. *)
  let jobs =
    List.concat_map
      (fun spec ->
        let run_rng = Prng.split_at root spec.rs_index in
        List.mapi
          (fun shard_i n ->
            fun () ->
              ( spec.rs_index,
                shard_i,
                run_shard ~worst_n ~build:spec.rs_build ~config:spec.rs_config
                  ~selection:spec.rs_selection ~scenario:spec.rs_scenario
                  ~entries:n ~bound:spec.rs_bound ~irq_wcet:spec.rs_irq_wcet
                  ~inv_every
                  ~rng:(Prng.split_at run_rng shard_i) () ))
          (shard_sizes entries))
      specs
  in
  let accs = Array.init nspecs (fun _ -> fresh_acc ()) in
  (* Per-run worst-N across shards: stable descending merge, so equal
     latencies resolve to the earlier shard (submission order). *)
  let run_worsts = Array.make nspecs [] in
  let total_minor = ref 0.0 in
  let merge () (i, shard_i, out) =
    merge_shard accs.(i) out;
    if worst_n > 0 && out.so_worst <> [] then begin
      let added =
        List.map (fun (lat, line, cyc, entry) -> (lat, line, cyc, entry, shard_i))
          out.so_worst
      in
      let merged =
        List.stable_sort
          (fun (a, _, _, _, _) (b, _, _, _, _) -> compare b a)
          (run_worsts.(i) @ added)
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: tl -> x :: take (n - 1) tl
      in
      run_worsts.(i) <- take worst_n merged
    end;
    total_minor := !total_minor +. out.so_minor_words
  in
  let t0 = Obs.Metrics.now_s () in
  if collect then List.fold_left merge () (Parallel.run_all pool jobs)
  else Parallel.fold_ordered pool ~init:() ~merge jobs;
  let wall_s = Obs.Metrics.now_s () -. t0 in
  let runs = List.map (fun spec -> finish_acc spec accs.(spec.rs_index)) specs in
  let total_entries = List.fold_left (fun a r -> a + r.rr_entries) 0 runs in
  let total_deliveries = List.fold_left (fun a r -> a + r.rr_deliveries) 0 runs in
  let ok =
    List.for_all
      (fun r -> r.rr_violations = [] && r.rr_invariant_failures = [])
      runs
  in
  (* Feed the merged campaign into the metrics registry (serially, so the
     registry contents are deterministic too). *)
  Obs.Metrics.incr ~by:total_entries (Obs.Metrics.counter "sim.entries");
  Obs.Metrics.incr ~by:total_deliveries (Obs.Metrics.counter "sim.deliveries");
  Obs.Metrics.incr
    ~by:(List.fold_left (fun a r -> a + List.length r.rr_violations) 0 runs)
    (Obs.Metrics.counter "sim.violations");
  let h = Obs.Metrics.histogram "sim.irq_latency_cycles" in
  List.iter
    (fun r ->
      List.iter
        (fun (k, c) ->
          (* One representative value per bucket, weighted by count; exact
             values already live in the report, the registry keeps the
             shape. *)
          Obs.Metrics.observe_n h ~n:c (Float.of_int (1 lsl max 0 k)))
        r.rr_latency.ls_buckets)
    runs;
  let throughput =
    {
      th_wall_s = wall_s;
      th_entries_per_sec =
        (if wall_s > 0.0 then float_of_int total_entries /. wall_s else 0.0);
      th_minor_words_per_entry =
        (if total_entries > 0 then !total_minor /. float_of_int total_entries
         else 0.0);
      th_peak_rss_kb = peak_rss_kb ();
    }
  in
  Obs.Metrics.set_gauge
    (Obs.Metrics.gauge "sim.throughput.entries_per_sec")
    throughput.th_entries_per_sec;
  Obs.Metrics.set_gauge
    (Obs.Metrics.gauge "sim.throughput.minor_words_per_entry")
    throughput.th_minor_words_per_entry;
  Obs.Metrics.set_gauge
    (Obs.Metrics.gauge "sim.throughput.peak_rss_kb")
    (float_of_int throughput.th_peak_rss_kb);
  ( {
      rp_seed = seed;
      rp_entries_per_run = entries;
      rp_total_entries = total_entries;
      rp_total_deliveries = total_deliveries;
      rp_runs = runs;
      rp_ok = ok;
    },
    throughput,
    specs,
    run_worsts )

let run_campaign_timed ?pool ?seed ?entries ?smoke ?only ?inv_every ?collect ()
    =
  let report, throughput, _, _ =
    campaign_internal ?pool ?seed ?entries ?smoke ?only ?inv_every ?collect
      ~worst_n:0 ()
  in
  (report, throughput)

let run_campaign ?pool ?seed ?entries ?smoke ?only () =
  fst (run_campaign_timed ?pool ?seed ?entries ?smoke ?only ())

(* --- forensics: tail flight recorder + gap report --- *)

(* Kernel sections (trace event labels) -> source functions of the WCET
   model they can execute.  This is the alignment key between the bound
   decomposition (charged per CFG function) and an observed trace window
   (attributed per kernel section): a function counts as "executed by the
   worst window" when some section of the window implies it.  The mapping
   is deliberately generous — IPC entries are credited with the copy/
   transfer helpers even if the decode took an early exit — so
   "NOT executed" claims in the gap report are conservative. *)
let funcs_of_section s =
  if s = "user" then []
  else if s = "interrupt" then [ "interrupt"; "choose"; "ctxswitch" ]
  else if s = "call" || s = "send" || s = "recv" || s = "reply_recv" then
    [ "syscall"; "lookup"; "msgcopy"; "capxfer"; "choose"; "ctxswitch" ]
  else
    (* signal / wait / poll / yield / invoke:* and the fault paths all
       run decode + scheduling but never the IPC transfer helpers. *)
    [ "syscall"; "lookup"; "choose"; "ctxswitch" ]

type forensics = {
  fo_tail : Obs.Tail_report.t;
  fo_gaps : Obs.Gap_report.t list;
  fo_profiles : (string * Obs.Bound_profile.t) list;
      (* build label -> full response-bound decomposition, one per
         distinct build variant of the campaign *)
}

let actx_of_spec spec =
  let pins =
    match spec.rs_selection with
    | None -> Analysis_ctx.no_pins
    | Some sel ->
        { Analysis_ctx.code = sel.Pinning.code_lines; data = sel.Pinning.data_lines }
  in
  Analysis_ctx.make ~config:spec.rs_config ~pins ~build:spec.rs_build ()

(* Replay pass: re-run exactly the shards implicated by pass 1 with a
   trace ring attached, stopping right after the entry that delivered the
   worst interrupt.  Shard streams derive from (seed, run index, shard
   index) alone, so the replayed prefix is identical to the original run
   and the ring ends just past the delivery of interest. *)
let capture_delivery ~root ~spec ~rank (latency, line, cyc, entry_idx, shard_i) =
  let run_rng = Prng.split_at root spec.rs_index in
  let trace = Obs.Trace.create ~capacity:32_768 () in
  let (_ : shard_out) =
    run_shard ~trace ~build:spec.rs_build ~config:spec.rs_config
      ~selection:spec.rs_selection ~scenario:spec.rs_scenario
      ~entries:(entry_idx + 1) ~bound:spec.rs_bound ~irq_wcet:spec.rs_irq_wcet
      ~inv_every:0
      ~rng:(Prng.split_at run_rng shard_i) ()
  in
  let delivered_at = cyc in
  let asserted_at = delivered_at - latency in
  (* Pad the window back one full bound so the kernel operation the
     assertion landed in is visible from its entry. *)
  let from = max 0 (asserted_at - spec.rs_bound) in
  let window =
    List.filter
      (fun (e : Obs.Trace.event) ->
        e.Obs.Trace.at >= from && e.Obs.Trace.at <= delivered_at)
      (Obs.Trace.events trace)
  in
  let section =
    match
      List.find_opt
        (fun (b : Obs.Attrib.irq_breakdown) ->
          b.Obs.Attrib.line = line && b.Obs.Attrib.delivered_at = delivered_at)
        (Obs.Attrib.irq_breakdowns window)
    with
    | Some b -> b.Obs.Attrib.section
    | None -> "user"
  in
  {
    Obs.Tail_report.d_scenario = spec.rs_scenario.sc_name;
    d_build = spec.rs_label;
    d_rank = rank;
    d_line = line;
    d_latency = latency;
    d_bound = spec.rs_bound;
    d_shard = shard_i;
    d_entry = entry_idx;
    d_asserted_at = asserted_at;
    d_delivered_at = delivered_at;
    d_section = section;
    d_sections =
      Obs.Attrib.section_profile window ~from:asserted_at ~until:delivered_at;
    d_window = window;
  }

let run_campaign_forensics ?pool ?(seed = 42) ?entries ?smoke ?only ?inv_every
    ?(worst_n = 2) () =
  let report, throughput, specs, run_worsts =
    campaign_internal ?pool ~seed ?entries ?smoke ?only ?inv_every
      ~worst_n:(max 1 worst_n) ()
  in
  let root = Prng.create seed in
  let deliveries =
    List.concat_map
      (fun spec ->
        List.mapi
          (fun rank w -> capture_delivery ~root ~spec ~rank w)
          run_worsts.(spec.rs_index))
      specs
  in
  let tail = { Obs.Tail_report.t_worst_n = max 1 worst_n; t_deliveries = deliveries } in
  let profiles =
    List.fold_left
      (fun acc spec ->
        if List.mem_assoc spec.rs_label acc then acc
        else
          acc
          @ [
              ( spec.rs_label,
                Response_time.interrupt_response_profile (actx_of_spec spec) );
            ])
      [] specs
  in
  let gaps =
    List.filter_map
      (fun spec ->
        let rr =
          List.find
            (fun rr ->
              rr.rr_scenario = spec.rs_scenario.sc_name
              && rr.rr_build = spec.rs_label)
            report.rp_runs
        in
        match
          List.find_opt
            (fun (d : Obs.Tail_report.delivery) ->
              d.Obs.Tail_report.d_scenario = spec.rs_scenario.sc_name
              && d.Obs.Tail_report.d_build = spec.rs_label
              && d.Obs.Tail_report.d_rank = 0)
            deliveries
        with
        | None -> None
        | Some worst ->
            let profile = List.assoc spec.rs_label profiles in
            let executed_funcs =
              List.concat_map
                (fun (s, _) -> funcs_of_section s)
                ((worst.Obs.Tail_report.d_section, 0)
                :: worst.Obs.Tail_report.d_sections)
            in
            Some
              (Obs.Gap_report.make ~scenario:spec.rs_scenario.sc_name
                 ~build:spec.rs_label ~bound:spec.rs_bound
                 ~observed_max:rr.rr_latency.ls_max
                 ~sections:worst.Obs.Tail_report.d_sections
                 ~charged:(Obs.Bound_profile.by_function profile)
                 ~executed:(fun f -> List.mem f executed_funcs)))
      specs
  in
  (report, throughput, { fo_tail = tail; fo_gaps = gaps; fo_profiles = profiles })

(* --- reporting --- *)

let take_violations rr =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take 5 rr.rr_violations

let pp_report ppf r =
  Fmt.pf ppf "soak campaign: seed %d, %d entries/run, %d runs@." r.rp_seed
    r.rp_entries_per_run (List.length r.rp_runs);
  Fmt.pf ppf "%-16s %-18s %9s %8s %8s %8s %8s %9s %7s %5s@." "scenario" "build"
    "entries" "deliv" "p50" "p99" "max" "bound" "margin" "viol";
  List.iter
    (fun rr ->
      Fmt.pf ppf "%-16s %-18s %9d %8d %8d %8d %8d %9d %6.1f%% %5d@."
        rr.rr_scenario rr.rr_build rr.rr_entries rr.rr_deliveries
        rr.rr_latency.ls_p50 rr.rr_latency.ls_p99 rr.rr_latency.ls_max
        rr.rr_bound (margin_percent rr)
        (List.length rr.rr_violations))
    r.rp_runs;
  List.iter
    (fun rr ->
      List.iter
        (fun v ->
          Fmt.pf ppf "VIOLATION %s/%s line %d: latency %d > allowed %d (queued %d)@."
            rr.rr_scenario rr.rr_build v.v_line v.v_latency v.v_allowed v.v_queued)
        (take_violations rr);
      List.iter
        (fun msg -> Fmt.pf ppf "INVARIANT %s/%s: %s@." rr.rr_scenario rr.rr_build msg)
        rr.rr_invariant_failures)
    r.rp_runs;
  Fmt.pf ppf "totals: %d entries, %d deliveries -> %s@." r.rp_total_entries
    r.rp_total_deliveries
    (if r.rp_ok then "OK (all latencies within the computed bound)" else "FAILED")

let report_json r =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "{\"seed\": %d, \"entries_per_run\": %d, \"total_entries\": %d, " r.rp_seed
    r.rp_entries_per_run r.rp_total_entries;
  addf "\"total_deliveries\": %d, \"ok\": %b, \"runs\": [" r.rp_total_deliveries
    r.rp_ok;
  List.iteri
    (fun i rr ->
      if i > 0 then addf ", ";
      addf
        "{\"scenario\": \"%s\", \"build\": \"%s\", \"pinned\": %b, \
         \"entries\": %d, \"preempted\": %d, \"restarts\": %d, \"failed\": %d, \
         \"deliveries\": %d, \"queued_deliveries\": %d, \"bound\": %d, \
         \"irq_wcet\": %d, \"violations\": %d, \"invariant_failures\": %d, "
        rr.rr_scenario rr.rr_build rr.rr_pinned rr.rr_entries rr.rr_preempted
        rr.rr_restarts rr.rr_failed rr.rr_deliveries rr.rr_queued_deliveries
        rr.rr_bound rr.rr_irq_wcet
        (List.length rr.rr_violations)
        (List.length rr.rr_invariant_failures);
      let s = rr.rr_latency in
      addf
        "\"latency\": {\"count\": %d, \"min\": %d, \"p50\": %d, \"p90\": %d, \
         \"p99\": %d, \"p999\": %d, \"max\": %d, \"margin_percent\": %.2f, \
         \"buckets\": ["
        s.ls_count s.ls_min s.ls_p50 s.ls_p90 s.ls_p99 s.ls_p999 s.ls_max
        (margin_percent rr);
      List.iteri
        (fun j (k, c) ->
          if j > 0 then addf ", ";
          addf "{\"le_pow2\": %d, \"count\": %d}" k c)
        s.ls_buckets;
      addf "]}}")
    r.rp_runs;
  addf "]}";
  Buffer.contents buf

let pp_throughput ppf th =
  Fmt.pf ppf
    "throughput: %.2fs wall, %.0f entries/s, %.1f minor words/entry, peak RSS %d kB@."
    th.th_wall_s th.th_entries_per_sec th.th_minor_words_per_entry
    th.th_peak_rss_kb

(* [report_json] with a throughput object spliced in.  The throughput
   figures are wall-clock (not deterministic), so they stay out of
   [report_json] itself — the byte-identity contract covers only the
   simulated-time report. *)
let campaign_json r th =
  let base = report_json r in
  let body = String.sub base 0 (String.length base - 1) in
  Printf.sprintf
    "%s, \"throughput\": {\"wall_s\": %.3f, \"entries_per_sec\": %.0f, \
     \"minor_words_per_entry\": %.1f, \"peak_rss_kb\": %d}}"
    body th.th_wall_s th.th_entries_per_sec th.th_minor_words_per_entry
    th.th_peak_rss_kb
