(* Static interference analysis over preemption-delimited sections.

   Every preemption-delimited section of the four long-running operations
   (Sections 3.3-3.6) and the IRQ-delivery path declares a read/write
   footprint over abstract kernel state variables.  The variables are
   anchored on the concrete state the kernel manipulates — fields of
   [Kernel.t], the objects in its registry, and the globals of [Layout]:

     Tcb          per-TCB fields (state, restart flag, queue links, regs)
     Endpoint     endpoint queues, active flag, abort cursor
     Notification notification word, active flag, wait queue
     Cap          capability slots: the cap value and its CDT parent
     Cdt_links    CDT sibling/first-child links (bookkeeping only:
                  invisible to the canonical state digest)
     Untyped      untyped watermark and in-progress creation cursor
     Frame        frame contents and clearing progress
     Page_table   PTEs, shadow slots, mapping back-pointers
     Page_dir     PDEs, shadow slots, ASID binding
     Asid_pool    ASID pool entries
     Asid_table   the global ASID lookup table (Layout.asid_table_base)
     Sched_queues run queues and the priority bitmap (Layout.run_queue_base)
     Cur_thread   the current-thread pointer (Layout.cur_thread_ptr)
     Irq_state    pending word and handler table (Layout.irq_pending_word)
     Kernel_stack the single kernel stack (Layout.stack_base)

   Two sections interfere when their footprints overlap on a variable at
   least one of them writes.  Variables are split into *semantic* ones —
   those rendered into the canonical state digest ({!Sel4.Digest}) — and
   scheduler bookkeeping (run queues, current thread, CDT link order,
   stack, IRQ words), which every section touches but which is invisible
   to user level and excluded from the digest by design.  The semantic
   interference relation is what the DPOR explorer prunes with; the full
   relation is reported alongside it.

   The declared footprints are audited against reality: an access recorder
   ({!Sel4.Ctx.set_access_hook}) replays each operation preempting at
   every poll and fails if any recorded access classifies to a variable
   outside the executing section's declared footprint. *)

module K = Sel4.Kernel
module B = Sel4.Boot

type cls =
  | Tcb
  | Endpoint
  | Notification
  | Cap
  | Cdt_links
  | Untyped
  | Frame
  | Page_table
  | Page_dir
  | Asid_pool
  | Asid_table
  | Sched_queues
  | Cur_thread
  | Irq_state
  | Kernel_stack

let all_classes =
  [
    Tcb; Endpoint; Notification; Cap; Cdt_links; Untyped; Frame; Page_table;
    Page_dir; Asid_pool; Asid_table; Sched_queues; Cur_thread; Irq_state;
    Kernel_stack;
  ]

let cls_name = function
  | Tcb -> "tcb"
  | Endpoint -> "endpoint"
  | Notification -> "notification"
  | Cap -> "cap"
  | Cdt_links -> "cdt_links"
  | Untyped -> "untyped"
  | Frame -> "frame"
  | Page_table -> "page_table"
  | Page_dir -> "page_dir"
  | Asid_pool -> "asid_pool"
  | Asid_table -> "asid_table"
  | Sched_queues -> "sched_queues"
  | Cur_thread -> "cur_thread"
  | Irq_state -> "irq_state"
  | Kernel_stack -> "kernel_stack"

(* A variable is semantic when it is rendered into the canonical state
   digest: changes to it are observable in a final-state comparison.
   Scheduler bookkeeping is excluded from the digest by design (lazy
   scheduling parks blocked threads in the queues), and so is the CDT
   sibling order — only the cap value and parent survive. *)
let semantic = function
  | Tcb | Endpoint | Notification | Cap | Untyped | Frame | Page_table
  | Page_dir | Asid_pool | Asid_table ->
      true
  | Cdt_links | Sched_queues | Cur_thread | Irq_state | Kernel_stack -> false

(* --- footprints --- *)

type access = { a_cls : cls; a_obj : int option; a_write : bool }
(* [a_obj = None] means "any instance of the class" (the class-level
   catalogue); instantiated footprints (the explorer's) name object ids —
   or root-CNode slot indices for [Cap]. *)

type footprint = access list

let r ?obj cls = { a_cls = cls; a_obj = obj; a_write = false }
let w ?obj cls = { a_cls = cls; a_obj = obj; a_write = true }
let rw ?obj cls = [ r ?obj cls; w ?obj cls ]

let pp_access ppf a =
  Fmt.pf ppf "%s %s%s"
    (if a.a_write then "W" else "R")
    (cls_name a.a_cls)
    (match a.a_obj with Some i -> Fmt.str "#%d" i | None -> "")

(* Two accesses touch the same variable when the class matches and the
   instances can coincide ([None] = any instance). *)
let overlaps a b =
  a.a_cls = b.a_cls
  &&
  match (a.a_obj, b.a_obj) with
  | None, _ | _, None -> true
  | Some i, Some j -> i = j

let conflicts ?(semantic_only = false) (f1 : footprint) (f2 : footprint) =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if
            overlaps a b
            && (a.a_write || b.a_write)
            && ((not semantic_only) || semantic a.a_cls)
          then Some (a, b)
          else None)
        f2)
    f1

let independent ?semantic_only f1 f2 = conflicts ?semantic_only f1 f2 = []

(* --- the section catalogue --- *)

type section = { sec_name : string; sec_op : string option; sec_fp : footprint }

(* Every kernel entry shares the entry/exit overhead: the stack save and
   restore, a capability lookup during decode, and the pending-word load
   at each preemption poll. *)
let overhead = rw Kernel_stack @ [ r Cap; r Irq_state ]

let catalogue : section list =
  [
    (* §3.3: one waiter dequeued and woken per preemption point. *)
    {
      sec_name = "ep_delete.step";
      sec_op = Some "ep_delete";
      sec_fp = overhead @ rw Endpoint @ rw Tcb @ rw Sched_queues;
    };
    (* The final entry also retires the capability: slot cleared, CDT
       unlinked. *)
    {
      sec_name = "ep_delete.finalise";
      sec_op = Some "ep_delete";
      sec_fp =
        overhead @ rw Endpoint @ rw Tcb @ rw Sched_queues
        @ [ w Cap; w Cdt_links ];
    };
    (* §3.4: the abort cursor scans one queued sender per point, waking
       badge matches. *)
    {
      sec_name = "badged_abort.step";
      sec_op = Some "badged_abort";
      sec_fp = overhead @ rw Endpoint @ rw Tcb @ rw Sched_queues;
    };
    {
      sec_name = "badged_abort.finalise";
      sec_op = Some "badged_abort";
      sec_fp = overhead @ rw Endpoint @ rw Tcb @ rw Sched_queues;
    };
    (* §3.5: one chunk of the new objects cleared per point; the watermark
       and creation cursor live in the untyped. *)
    {
      sec_name = "retype_clear.step";
      sec_op = Some "retype_clear";
      sec_fp = overhead @ rw Untyped @ [ w Frame ];
    };
    (* The final entry installs the created caps into their slots. *)
    {
      sec_name = "retype_clear.finalise";
      sec_op = Some "retype_clear";
      sec_fp = overhead @ rw Untyped @ [ w Frame; w Cap; w Cdt_links ];
    };
    (* §3.6: one mapping entry unwound per point (shadow design); frame
       caps' mapping slots are rewritten as entries die. *)
    {
      sec_name = "vspace_delete.step";
      sec_op = Some "vspace_delete";
      sec_fp = overhead @ rw Page_dir @ rw Page_table @ [ w Cap ];
    };
    (* Completion releases the ASID and retires the PD cap. *)
    {
      sec_name = "vspace_delete.finalise";
      sec_op = Some "vspace_delete";
      sec_fp =
        overhead @ rw Page_dir @ rw Page_table @ rw Asid_pool @ rw Asid_table
        @ [ w Cap; w Cdt_links ];
    };
    (* The IRQ-delivery path taken after a preemption: acknowledge, requeue
       the preempted thread (timer tick), reschedule, restore the stack.
       With no handler registered it touches no semantic state beyond the
       restart flag (Tcb). *)
    {
      sec_name = "irq.deliver";
      sec_op = None;
      sec_fp =
        rw Kernel_stack @ rw Sched_queues @ rw Tcb
        @ [ r Irq_state; w Cur_thread ];
    };
    (* A bound handler adds the seL4 delivery mechanism: signal the
       handler notification, or hand off to a receiver queued on the
       handler endpoint. *)
    {
      sec_name = "irq.deliver_bound";
      sec_op = None;
      sec_fp =
        rw Kernel_stack @ rw Sched_queues @ rw Tcb @ rw Endpoint
        @ [ r Irq_state; w Cur_thread; w Notification; r Cap ];
    };
  ]

let section_exn name =
  match List.find_opt (fun s -> s.sec_name = name) catalogue with
  | Some s -> s
  | None -> invalid_arg ("Race.section_exn: unknown section " ^ name)

let interferes ?semantic_only s1 s2 =
  conflicts ?semantic_only s1.sec_fp s2.sec_fp
  |> List.map (fun (a, _) -> a.a_cls)
  |> List.sort_uniq compare

(* --- the pairwise interference matrix --- *)

type pair = {
  p_left : string;
  p_right : string;
  p_classes : cls list;  (* conflicting classes, full relation *)
  p_semantic : cls list;  (* the digest-visible subset *)
}

let matrix () =
  let rec go acc = function
    | [] -> List.rev acc
    | s :: rest ->
        let acc =
          List.fold_left
            (fun acc s' ->
              let full = interferes s s' in
              if full = [] then acc
              else
                {
                  p_left = s.sec_name;
                  p_right = s'.sec_name;
                  p_classes = full;
                  p_semantic = interferes ~semantic_only:true s s';
                }
                :: acc)
            acc rest
        in
        go acc rest
  in
  go [] catalogue

(* --- Owicki-Gries non-interference report --- *)

(* What each operation's progress measure reads (the [d_measure] closures
   of the injection drivers): the variables whose perturbation could break
   the strict-decrease restart guarantee. *)
let measure_reads = function
  | "ep_delete" | "badged_abort" -> [ Endpoint ]
  | "retype_clear" -> [ Untyped; Frame ]
  | "vspace_delete" -> [ Page_table; Page_dir ]
  | op -> invalid_arg ("Race.measure_reads: unknown op " ^ op)

let ops = [ "ep_delete"; "badged_abort"; "retype_clear"; "vspace_delete" ]

type og_row = {
  og_op : string;
  og_reads : cls list;  (* the progress measure's read set *)
  og_perturbers : string list;
      (* foreign sections writing into it: the interference an O-G proof
         must reason about *)
  og_safe : string list;  (* foreign sections proven non-interfering *)
}

let og_report () =
  List.map
    (fun op ->
      let reads = measure_reads op in
      let foreign = List.filter (fun s -> s.sec_op <> Some op) catalogue in
      let writes_measure s =
        List.exists
          (fun a -> a.a_write && List.mem a.a_cls reads)
          s.sec_fp
      in
      let perturbers, safe = List.partition writes_measure foreign in
      {
        og_op = op;
        og_reads = reads;
        og_perturbers = List.map (fun s -> s.sec_name) perturbers;
        og_safe = List.map (fun s -> s.sec_name) safe;
      })
    ops

(* --- metrics --- *)

let m_sections = Obs.Metrics.counter "race.sections"
let m_pairs = Obs.Metrics.counter "race.pairs_interfering"
let m_audit_runs = Obs.Metrics.counter "race.audit_runs"
let m_audit_accesses = Obs.Metrics.counter "race.audit_accesses"
let m_audit_violations = Obs.Metrics.counter "race.audit_violations"

(* --- footprint audit --- *)

(* Address classification: globals by the [Layout] map, objects by their
   registered address ranges.  Object ranges nest (frames are carved out
   of untypeds), so the smallest containing range wins. *)

type range = { lo : int; hi : int; r_cls : cls }

let globals =
  let d = Sel4.Layout.data_base in
  [
    { lo = Sel4.Layout.run_queue_base; hi = d + 0x2000; r_cls = Sched_queues };
    { lo = Sel4.Layout.cur_thread_ptr; hi = d + 0x2010; r_cls = Cur_thread };
    { lo = Sel4.Layout.irq_pending_word; hi = d + 0x3000; r_cls = Irq_state };
    { lo = Sel4.Layout.asid_table_base; hi = d + 0x4000; r_cls = Asid_table };
    (* Harness-owned root slots (Cdt.slot_addr for slots outside any
       CNode). *)
    { lo = d + 0x8000; hi = d + 0x9000; r_cls = Cap };
    {
      lo = Sel4.Layout.stack_base;
      hi = Sel4.Layout.stack_base + Sel4.Layout.stack_bytes;
      r_cls = Kernel_stack;
    };
  ]

let cls_of_object = function
  | Sel4.Ktypes.Any_tcb _ -> Tcb
  | Any_endpoint _ -> Endpoint
  | Any_notification _ -> Notification
  | Any_cnode _ -> Cap
  | Any_untyped _ -> Untyped
  | Any_frame _ -> Frame
  | Any_page_table _ -> Page_table
  | Any_page_directory _ -> Page_dir
  | Any_asid_pool _ -> Asid_pool

let range_of_object obj =
  let lo = Sel4.Objects.addr_of obj in
  { lo; hi = lo + Sel4.Objects.size_of obj; r_cls = cls_of_object obj }

(* [classify ranges addr] — smallest containing range, or None. *)
let classify ranges addr =
  List.fold_left
    (fun best r ->
      if addr >= r.lo && addr < r.hi then
        match best with
        | Some b when b.hi - b.lo <= r.hi - r.lo -> best
        | _ -> Some r
      else best)
    None ranges

(* Does [fp] cover an observed access to [cls]?  Slot addresses cannot be
   attributed to the cap value vs. the CDT links by address alone, so an
   observed [Cap] access is covered by either declaration. *)
let covers fp cls ~write =
  let matches c = c = cls || (cls = Cap && c = Cdt_links) in
  List.exists (fun a -> matches a.a_cls && (a.a_write || not write)) fp

type audit_violation = {
  av_section : string;
  av_cls : cls;
  av_write : bool;
  av_addr : int;
}

type audit_report = {
  ar_runs : int;
  ar_entries : int;
  ar_accesses : int;
  ar_violations : audit_violation list;
}

let audit_ok a = a.ar_violations = []

(* Replay one operation under one build, preempting at *every* poll so
   each kernel entry executes exactly one preemption-delimited section.
   The access recorder attributes everything before the poll fires to the
   operation's section and everything after (the unwind, the interrupt
   handler, the exit path) to the IRQ-delivery path. *)
let audit_one ~catalogue ~sz ~build ~op ~violations ~entries ~accesses =
  let env = B.boot build in
  let d = Inject.setup env sz op in
  let k = env.B.k in
  let op_name = Inject.op_name op in
  let step_fp = (List.find (fun s -> s.sec_name = op_name ^ ".step") catalogue).sec_fp in
  let final_fp =
    step_fp
    @ (List.find (fun s -> s.sec_name = op_name ^ ".finalise") catalogue).sec_fp
  in
  let irq_fp = (List.find (fun s -> s.sec_name = "irq.deliver") catalogue).sec_fp in
  (* Raw access log: (addr, is_write, window).  Windows are numbered
     2*entry for the section and 2*entry+1 for the IRQ tail. *)
  let log = ref [] in
  let recording = ref false in
  let entry = ref 0 in
  let in_tail = ref false in
  let ctx = K.ctx k in
  Sel4.Ctx.set_access_hook ctx
    (Some
       (fun addr _bytes write ->
         if !recording then
           log := (addr, write, (2 * !entry) + Bool.to_int !in_tail) :: !log));
  K.set_injection_hook k
    (Some
       (fun _ ->
         in_tail := true;
         true));
  let pre_objects = k.K.objects in
  let max_entries = 4096 in
  let rec drive n =
    if n > max_entries then invalid_arg "Race.audit: runaway restart loop"
    else begin
      K.force_run k d.d_initiator;
      entry := n;
      in_tail := false;
      recording := true;
      let outcome = K.kernel_entry k d.d_event in
      recording := false;
      match outcome with
      | K.Preempted -> drive (n + 1)
      | K.Completed -> n
      | K.Failed e -> invalid_arg ("Race.audit: op failed: " ^ e)
    end
  in
  let last = drive 0 in
  Sel4.Ctx.set_access_hook ctx None;
  K.set_injection_hook k None;
  (* Classify against every object that existed at setup or at the end:
     retype creates objects mid-run, deletion retires them. *)
  let ranges =
    let seen = Hashtbl.create 64 in
    let add acc obj =
      let id = Sel4.Objects.id_of obj in
      if Hashtbl.mem seen id then acc
      else begin
        Hashtbl.add seen id ();
        range_of_object obj :: acc
      end
    in
    let acc = List.fold_left add [] pre_objects in
    let acc = List.fold_left add acc k.K.objects in
    range_of_object (Sel4.Ktypes.Any_tcb k.K.idle) :: (globals @ acc)
  in
  let dedup = Hashtbl.create 256 in
  List.iter
    (fun (addr, write, window) ->
      if not (Hashtbl.mem dedup (addr, write, window)) then begin
        Hashtbl.add dedup (addr, write, window) ();
        incr accesses;
        let ent = window / 2 in
        let tail = window land 1 = 1 in
        let fp, name =
          if tail then (irq_fp, "irq.deliver")
          else if ent = last then (final_fp, op_name ^ ".finalise")
          else (step_fp, op_name ^ ".step")
        in
        match classify ranges addr with
        | None ->
            violations :=
              { av_section = name; av_cls = Kernel_stack; av_write = write;
                av_addr = addr }
              :: !violations
        | Some r ->
            if not (covers fp r.r_cls ~write) then
              violations :=
                { av_section = name; av_cls = r.r_cls; av_write = write;
                  av_addr = addr }
                :: !violations
      end)
    !log;
  entries := !entries + ((2 * last) + 1)

let audit ?(catalogue = catalogue) ?(ops = Inject.all_ops) ~smoke
    (actx : Sel4_rt.Analysis_ctx.t) =
  let sz = Inject.sizes ~smoke in
  let violations = ref [] in
  let entries = ref 0 in
  let accesses = ref 0 in
  let runs = ref 0 in
  List.iter
    (fun op ->
      List.iter
        (fun build ->
          incr runs;
          Obs.Metrics.incr m_audit_runs;
          audit_one ~catalogue ~sz ~build ~op ~violations ~entries ~accesses)
        (Inject.variants ~base:actx.Sel4_rt.Analysis_ctx.build op))
    ops;
  Obs.Metrics.incr ~by:!accesses m_audit_accesses;
  Obs.Metrics.incr ~by:(List.length !violations) m_audit_violations;
  Obs.Metrics.set_counter m_sections (List.length catalogue);
  Obs.Metrics.set_counter m_pairs (List.length (matrix ()));
  {
    ar_runs = !runs;
    ar_entries = !entries;
    ar_accesses = !accesses;
    ar_violations = List.rev !violations;
  }

(* --- rendering --- *)

let pp_matrix ppf () =
  let pairs = matrix () in
  Fmt.pf ppf "interference matrix: %d sections, %d interfering pairs@."
    (List.length catalogue) (List.length pairs);
  List.iter
    (fun p ->
      Fmt.pf ppf "  %-22s x %-22s %s%s@." p.p_left p.p_right
        (String.concat "," (List.map cls_name p.p_classes))
        (match p.p_semantic with
        | [] -> "  [commutes on digest-visible state]"
        | sem ->
            Fmt.str "  [semantic: %s]"
              (String.concat "," (List.map cls_name sem))))
    pairs

let pp_og ppf () =
  Fmt.pf ppf "progress-measure non-interference (Owicki-Gries):@.";
  List.iter
    (fun row ->
      Fmt.pf ppf "  %-14s measure reads {%s}@." row.og_op
        (String.concat "," (List.map cls_name row.og_reads));
      Fmt.pf ppf "    can perturb:   %s@."
        (if row.og_perturbers = [] then "-"
         else String.concat ", " row.og_perturbers);
      Fmt.pf ppf "    proven safe:   %s@."
        (if row.og_safe = [] then "-" else String.concat ", " row.og_safe))
    (og_report ())

let pp_audit ppf a =
  Fmt.pf ppf
    "footprint audit: %d runs, %d entries, %d distinct accesses, %d \
     violations@."
    a.ar_runs a.ar_entries a.ar_accesses
    (List.length a.ar_violations);
  List.iter
    (fun v ->
      Fmt.pf ppf "  VIOLATION %s: %s %s at %#x escapes declared footprint@."
        v.av_section
        (if v.av_write then "write" else "read")
        (cls_name v.av_cls) v.av_addr)
    a.ar_violations

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_strings l =
  "[" ^ String.concat ", " (List.map (fun s -> "\"" ^ json_escape s ^ "\"") l)
  ^ "]"

let to_json audit_report =
  let b = Buffer.create 2048 in
  let addf fmt = Fmt.kstr (Buffer.add_string b) fmt in
  addf "{\n  \"sections\": [\n";
  List.iteri
    (fun i s ->
      addf "    {\"name\": \"%s\", \"op\": %s, \"reads\": %s, \"writes\": %s}%s\n"
        s.sec_name
        (match s.sec_op with
        | Some op -> "\"" ^ op ^ "\""
        | None -> "null")
        (json_strings
           (List.filter_map
              (fun a -> if a.a_write then None else Some (cls_name a.a_cls))
              s.sec_fp))
        (json_strings
           (List.filter_map
              (fun a -> if a.a_write then Some (cls_name a.a_cls) else None)
              s.sec_fp))
        (if i < List.length catalogue - 1 then "," else ""))
    catalogue;
  addf "  ],\n  \"matrix\": [\n";
  let pairs = matrix () in
  List.iteri
    (fun i p ->
      addf "    {\"left\": \"%s\", \"right\": \"%s\", \"classes\": %s, \"semantic\": %s}%s\n"
        p.p_left p.p_right
        (json_strings (List.map cls_name p.p_classes))
        (json_strings (List.map cls_name p.p_semantic))
        (if i < List.length pairs - 1 then "," else ""))
    pairs;
  addf "  ],\n  \"og\": [\n";
  let og = og_report () in
  List.iteri
    (fun i row ->
      addf
        "    {\"op\": \"%s\", \"measure_reads\": %s, \"perturbers\": %s, \
         \"safe\": %s}%s\n"
        row.og_op
        (json_strings (List.map cls_name row.og_reads))
        (json_strings row.og_perturbers)
        (json_strings row.og_safe)
        (if i < List.length og - 1 then "," else ""))
    og;
  addf "  ],\n  \"audit\": {\"runs\": %d, \"entries\": %d, \"accesses\": %d, "
    audit_report.ar_runs audit_report.ar_entries audit_report.ar_accesses;
  addf "\"violations\": [";
  List.iteri
    (fun i v ->
      addf "%s{\"section\": \"%s\", \"class\": \"%s\", \"write\": %b, \"addr\": %d}"
        (if i > 0 then ", " else "")
        v.av_section (cls_name v.av_cls) v.av_write v.av_addr)
    audit_report.ar_violations;
  addf "]}\n}\n";
  Buffer.contents b
