(** Static interference analysis over preemption-delimited sections.

    Each preemption-delimited section of the four long-running operations
    (Sections 3.3-3.6) and the IRQ-delivery path declares a read/write
    footprint over abstract kernel state variables (endpoint queues, CDT,
    untyped watermarks, mapping entries, scheduler queues, per-TCB
    fields).  Two sections {e interfere} when their footprints overlap on
    a variable at least one writes; sections that do not interfere on
    digest-visible ({e semantic}) state commute, which is what the DPOR
    explorer ({!Explore}) prunes with.

    The declarations are not trusted: {!audit} replays every operation
    with an access recorder attached ({!Sel4.Ctx.set_access_hook}),
    preempting at every poll, and reports any recorded access that
    escapes the executing section's declared footprint. *)

(** {1 State variables} *)

type cls =
  | Tcb  (** per-TCB fields: state, restart flag, queue links, registers *)
  | Endpoint  (** endpoint queues, active flag, abort cursor *)
  | Notification  (** notification word, active flag, wait queue *)
  | Cap  (** capability slots: cap value and CDT parent *)
  | Cdt_links  (** CDT sibling/first-child links (digest-invisible) *)
  | Untyped  (** watermark and in-progress creation cursor *)
  | Frame  (** frame contents and clearing progress *)
  | Page_table  (** PTEs, shadow slots, mapping back-pointers *)
  | Page_dir  (** PDEs, shadow slots, ASID binding *)
  | Asid_pool  (** ASID pool entries *)
  | Asid_table  (** the global ASID lookup table *)
  | Sched_queues  (** run queues and priority bitmap *)
  | Cur_thread  (** the current-thread pointer *)
  | Irq_state  (** pending word and handler table *)
  | Kernel_stack  (** the single kernel stack *)

val all_classes : cls list
val cls_name : cls -> string

val semantic : cls -> bool
(** Is the variable rendered into the canonical state digest
    ({!Sel4.Digest.of_kernel})?  Scheduler bookkeeping, the CDT link
    order, IRQ words and the stack are not: they are invisible to a
    final-state comparison by design. *)

(** {1 Footprints} *)

type access = { a_cls : cls; a_obj : int option; a_write : bool }
(** [a_obj = None] means any instance of the class (the class-level
    catalogue); instantiated footprints name object ids. *)

type footprint = access list

val r : ?obj:int -> cls -> access
val w : ?obj:int -> cls -> access
val rw : ?obj:int -> cls -> footprint
val pp_access : access Fmt.t

val conflicts :
  ?semantic_only:bool -> footprint -> footprint -> (access * access) list
(** All pairs touching the same variable with at least one write.
    [semantic_only] restricts to digest-visible variables. *)

val independent : ?semantic_only:bool -> footprint -> footprint -> bool
(** [conflicts f1 f2 = []] — the two footprints commute. *)

(** {1 The section catalogue} *)

type section = {
  sec_name : string;  (** e.g. ["ep_delete.step"], ["irq.deliver"] *)
  sec_op : string option;  (** owning operation, [None] for the IRQ path *)
  sec_fp : footprint;
}

val catalogue : section list
(** Step and finalise sections of the four long-running operations, plus
    the IRQ-delivery path (unbound and bound-handler variants). *)

val section_exn : string -> section
(** Raises [Invalid_argument] for unknown names. *)

val interferes : ?semantic_only:bool -> section -> section -> cls list
(** The conflicting variable classes, deduplicated. *)

type pair = {
  p_left : string;
  p_right : string;
  p_classes : cls list;  (** conflicting classes, full relation *)
  p_semantic : cls list;  (** the digest-visible subset *)
}

val matrix : unit -> pair list
(** The pairwise interference relation over the catalogue (unordered
    pairs of distinct sections). *)

(** {1 Owicki-Gries non-interference report} *)

val ops : string list
val measure_reads : string -> cls list
(** The variable classes an operation's progress measure reads — the
    state whose perturbation could break the strict-decrease restart
    guarantee.  Raises [Invalid_argument] for unknown operations. *)

type og_row = {
  og_op : string;
  og_reads : cls list;
  og_perturbers : string list;
      (** foreign sections writing into the measure's read set: the
          interference an Owicki-Gries proof must reason about *)
  og_safe : string list;  (** foreign sections proven non-interfering *)
}

val og_report : unit -> og_row list

(** {1 Footprint audit} *)

type audit_violation = {
  av_section : string;
  av_cls : cls;
  av_write : bool;
  av_addr : int;
}

type audit_report = {
  ar_runs : int;  (** operation x scheduler-variant replays *)
  ar_entries : int;  (** preemption-delimited windows executed *)
  ar_accesses : int;  (** distinct (window, address, direction) accesses *)
  ar_violations : audit_violation list;
}

val audit :
  ?catalogue:section list ->
  ?ops:Inject.op list ->
  smoke:bool ->
  Sel4_rt.Analysis_ctx.t ->
  audit_report
(** Replay each operation under every scheduler variant, preempting at
    every poll so each kernel entry executes exactly one section, with
    the access recorder attached.  Every recorded access is classified
    (globals by the {!Sel4.Layout} map, objects by registered address
    range, smallest containing range first) and checked against the
    executing section's declared footprint.  [catalogue] substitutes a
    corrupted table — the hook the planted-violation tests use. *)

val audit_ok : audit_report -> bool

(** {1 Rendering} *)

val pp_matrix : unit Fmt.t
val pp_og : unit Fmt.t
val pp_audit : audit_report Fmt.t

val to_json : audit_report -> string
(** The full analysis — sections, matrix, Owicki-Gries rows and the audit
    result — as a JSON object. *)
