(* Synthetic address layout of the simulated kernel.

   Cache behaviour depends only on addresses, so a deterministic layout
   suffices.  Mirrors the paper's platform: the kernel owns the top 256 MiB
   of the virtual address space; its text is small (the compiled seL4 is
   36 KiB); the kernel stack and key globals are what Section 4 pins. *)

let kernel_base = 0xF000_0000

(* Code: one region per kernel function, allocated contiguously. *)
let text_base = kernel_base

(* Kernel stack (seL4 is event-based: one stack). *)
let stack_base = 0xF010_0000
let stack_bytes = 4096

(* Global kernel data: scheduler queues, priority bitmaps, IRQ state. *)
let data_base = 0xF020_0000

(* Scheduler run-queue heads: 256 priorities * 8 bytes (head/tail). *)
let run_queue_base = data_base
let run_queue_entry addr_prio = run_queue_base + (addr_prio * 8)

(* Two-level priority bitmap: one top word + 8 bucket words. *)
let bitmap_top = data_base + 0x1000
let bitmap_bucket i = data_base + 0x1020 + (i * 4)

(* Current-thread pointer, IRQ pending word and handler table. *)
let cur_thread_ptr = data_base + 0x2000
let irq_pending_word = data_base + 0x2010
let irq_handler_table = data_base + 0x2020

(* ASID lookup table root (original design, Section 3.6). *)
let asid_table_base = data_base + 0x3000

(* Physical memory that untyped objects carve up: 128 MiB as on the KZM
   board. *)
let phys_base = 0x0000_0000
let phys_bytes = 128 * 1024 * 1024

(* Code regions: one per kernel function, with a fixed instruction-space
   budget, laid out contiguously in declaration order.  Both the executor
   and the WCET timing skeletons fetch from these addresses, so the two
   sides agree on instruction-cache behaviour by construction.  The total
   is in the region of the real kernel's 36 KiB text. *)

type code_region = { name : string; base : int; instrs : int }

let declared =
  [
    ("vector_entry", 64);
    ("vector_exit", 64);
    ("decode", 48);
    ("cspace_lookup", 64);
    ("fastpath", 128);
    ("slowpath_ipc", 256);
    ("transfer_caps", 96);
    ("sched_enqueue", 32);
    ("sched_dequeue", 32);
    ("sched_choose", 64);
    ("sched_bitmap", 32);
    ("context_switch", 64);
    ("set_thread_state", 24);
    ("endpoint_queue", 48);
    ("endpoint_delete", 96);
    ("badge_abort", 96);
    ("untyped_retype", 160);
    ("clear_memory", 48);
    ("vspace_map", 160);
    ("vspace_unmap", 128);
    ("vspace_delete", 128);
    ("asid_ops", 96);
    ("pd_create", 96);
    ("cdt_ops", 96);
    ("cnode_ops", 128);
    ("tcb_ops", 96);
    ("irq_path", 96);
    ("irq_control", 64);
    ("preempt_check", 16);
    ("fault_path", 96);
  ]

let regions : (string * code_region) list =
  let next = ref text_base in
  List.map
    (fun (name, instrs) ->
      let base = !next in
      (* Round each function to a 32-byte line boundary. *)
      next := base + (((instrs * 4) + 31) / 32 * 32);
      (name, { name; base; instrs }))
    declared

(* [code] sits on the simulator's per-entry hot path (every charged
   instruction block names its region), so the lookup is a hash table
   rather than a walk of the assoc list. *)
let by_name : (string, code_region) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, r) -> Hashtbl.replace tbl name r) regions;
  tbl

let code name =
  try Hashtbl.find by_name name
  with Not_found -> invalid_arg ("Layout.code: unknown region " ^ name)

let all_regions () = List.map snd regions

let text_bytes =
  List.fold_left (fun acc (_, r) -> acc + (((r.instrs * 4) + 31) / 32 * 32)) 0
    regions
