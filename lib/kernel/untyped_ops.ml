(* Untyped memory retype: object creation with preemptible clearing.

   Section 3.5's restructured creation path:

   1. All object memory is cleared *before* any other kernel state is
      modified, in [Build.preempt_chunk]-sized chunks with a preemption
      point between chunks.  Progress lives in the objects (and the
      in-flight [creating] record on the untyped), so a preempted retype
      is simply re-executed and resumes where it left off.
   2. Once everything is cleared, the remaining bookkeeping — installing
      capabilities in the destination slots and linking them into the
      derivation tree as children of the untyped — is one short atomic
      pass. *)

open Ktypes

type error =
  | Not_enough_memory
  | Dest_slot_occupied
  | Invalid_count
  | Untyped_has_children

type outcome = Done of cap list | Preempted | Error of error

let align_up v a = (v + a - 1) / a * a

(* Allocate the object records (no clearing yet). *)
let allocate ~fresh_id (ut : untyped) obj_type ~count ~dest_slots =
  let size = obj_size_bytes obj_type in
  let total = 1 lsl ut.ut_size_bits in
  let first = align_up ut.ut_watermark size in
  if first + (size * count) > total then None
  else begin
    let make i =
      let addr = ut.ut_addr + first + (i * size) in
      let id = fresh_id () in
      match obj_type with
      | Tcb_object -> Any_tcb (Objects.make_tcb ~id ~addr ~priority:0)
      | Endpoint_object -> Any_endpoint (Objects.make_endpoint ~id ~addr)
      | Notification_object ->
          Any_notification (Objects.make_notification ~id ~addr)
      | Cnode_object bits -> Any_cnode (Objects.make_cnode ~id ~addr ~bits)
      | Frame_object bits -> Any_frame (Objects.make_frame ~id ~addr ~size_bits:bits)
      | Page_table_object -> Any_page_table (Objects.make_page_table ~id ~addr)
      | Page_directory_object ->
          Any_page_directory (Objects.make_page_directory ~id ~addr)
      | Untyped_object bits ->
          Any_untyped (Objects.make_untyped ~id ~addr ~size_bits:bits)
      | Asid_pool_object -> Any_asid_pool (Objects.make_asid_pool ~id ~addr)
    in
    ut.ut_watermark <- first + (size * count);
    let objs = List.init count make in
    Some
      {
        cr_type = obj_type;
        cr_entries = List.combine dest_slots objs;
        cr_cursor = 0;
      }
  end

(* Clear the remaining memory of the in-flight creation, one chunk per
   preemption point. *)
let clear_step ctx (creating : creating) =
  let chunk = ctx.Ctx.build.Build.preempt_chunk in
  let entries = Array.of_list creating.cr_entries in
  let n = Array.length entries in
  let rec obj_loop () =
    if creating.cr_cursor >= n then Vspace.Done
    else begin
      let _, obj = entries.(creating.cr_cursor) in
      let size = Objects.size_of obj in
      let rec chunk_loop () =
        let done_ = Objects.cleared_of obj in
        if done_ >= size then begin
          creating.cr_cursor <- creating.cr_cursor + 1;
          obj_loop ()
        end
        else begin
          let bytes = min chunk (size - done_) in
          Ctx.exec ctx "clear_memory"
            (Costs.clear_line_instrs * ((bytes + 31) / 32));
          Ctx.store_block ctx (Objects.addr_of obj + done_) bytes;
          if Ctx.tracing ctx then
            Ctx.emit ctx
              (Obs.Trace.Untyped_clear
                 { addr = Objects.addr_of obj + done_; bytes });
          Objects.set_cleared obj (done_ + bytes);
          if Ctx.preemption_point ctx then Vspace.Preempted else chunk_loop ()
        end
      in
      chunk_loop ()
    end
  in
  obj_loop ()

(* Install a fresh capability for a new object. *)
let cap_for obj =
  match obj with
  | Any_tcb t -> Tcb_cap t
  | Any_endpoint e -> Endpoint_cap { ep = e; badge = 0; rights = all_rights }
  | Any_notification n ->
      Notification_cap { ntfn = n; badge = 0; rights = all_rights }
  | Any_cnode c -> Cnode_cap { cnode = c; guard = 0; guard_bits = 0 }
  | Any_untyped u -> Untyped_cap u
  | Any_frame f -> Frame_cap { frame = f; fc_rights = rw_rights; fc_mapping = None }
  | Any_page_table pt -> Page_table_cap { pt; ptc_mapping = None }
  | Any_page_directory pd -> Page_directory_cap { pd; pdc_asid = None }
  | Any_asid_pool p -> Asid_pool_cap p

(* The retype entry point; restartable.  [ut_slot] holds the untyped cap
   (new caps become its CDT children); [register] records new objects in
   the kernel registry for the invariant checker. *)
let retype ctx ~fresh_id ~register ~(ut_slot : slot) obj_type ~count ~dest_slots
    =
  match ut_slot.cap with
  | Untyped_cap ut -> (
      let creating =
        match ut.ut_creating with
        | Some c -> Some c (* restarted syscall: resume clearing *)
        | None ->
            if count <= 0 || List.length dest_slots <> count then None
            else if
              List.exists (fun s -> not (cap_is_null s.cap)) dest_slots
            then None
            else begin
              (* seL4 refuses to retype an untyped that already has live
                 children covering its memory; we require derived caps to
                 be revoked first. *)
              allocate ~fresh_id ut obj_type ~count ~dest_slots
            end
      in
      match creating with
      | None ->
          if count <= 0 || List.length dest_slots <> count then
            Error Invalid_count
          else if List.exists (fun s -> not (cap_is_null s.cap)) dest_slots
          then Error Dest_slot_occupied
          else Error Not_enough_memory
      | Some creating -> (
          ut.ut_creating <- Some creating;
          match clear_step ctx creating with
          | Vspace.Preempted -> Preempted
          | Vspace.Done ->
              (* Atomic bookkeeping pass. *)
              Ctx.exec ctx "untyped_retype"
                (Costs.retype_fixed_instrs * count);
              let caps =
                List.map
                  (fun (slot, obj) ->
                    (* New page directories receive the global kernel
                       mappings here — a 1 KiB copy that is deliberately
                       not preemptible (Section 3.5). *)
                    (match obj with
                    | Any_page_directory pd -> Vspace.copy_kernel_mappings ctx pd
                    | _ -> ());
                    let cap = cap_for obj in
                    slot.cap <- cap;
                    Ctx.store ctx (Cdt.slot_addr slot);
                    Cdt.insert_child ctx ~parent:ut_slot ~child:slot;
                    register obj;
                    cap)
                  creating.cr_entries
              in
              ut.ut_creating <- None;
              Done caps))
  | _ -> Error Invalid_count

let pp_error ppf e =
  Fmt.string ppf
    (match e with
    | Not_enough_memory -> "not enough memory"
    | Dest_slot_occupied -> "destination slot occupied"
    | Invalid_count -> "invalid count"
    | Untyped_has_children -> "untyped has children")
