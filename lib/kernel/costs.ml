(* Per-primitive instruction counts, shared between the executable kernel
   and the WCET timing skeletons.

   Every kernel operation charges its work through these constants; the
   static analysis builds its CFG block costs from the *same* constants.
   This shared table is what makes "computed >= observed" hold for the
   structural part of the cost — the analysis then adds cache and path
   conservatism on top, which is where the paper's overestimation
   (Figure 8) comes from.

   The magnitudes are calibrated against the ARM1136 figures the paper
   reports: a fastpath IPC of 200-250 cycles, exception entry/exit
   microcode of a few dozen cycles, and a 1 KiB copy of roughly 20 us at
   532 MHz when every line misses. *)

(* Exception vector entry and exit (mode switch, bank swap, SPSR). *)
let entry_instrs = 40
let exit_instrs = 40

(* Syscall decoding: register unmarshalling and capability lookup setup. *)
let decode_instrs = 30

(* One edge of a capability-space lookup (Figure 7): guard check, radix
   extraction, slot computation.  Each level also loads the cnode header
   and the slot, charged separately. *)
let cspace_level_instrs = 12

(* Fastpath IPC (Section 6.1: "around 200-250 cycles on the ARM1136").
   The instruction count excludes the loads/stores it performs. *)
let fastpath_instrs = 90

(* Slowpath IPC fixed work, excluding message copy and queue updates. *)
let slowpath_ipc_instrs = 120

(* Copying one message register. *)
let per_message_word_instrs = 3

(* Transferring (deriving + installing) one capability over IPC. *)
let cap_transfer_instrs = 40

(* Scheduler primitives. *)
let enqueue_instrs = 10
let dequeue_instrs = 12
let bitmap_update_instrs = 6
let choose_thread_bitmap_instrs = 10 (* two loads + two CLZ + arithmetic *)
let choose_thread_scan_per_prio_instrs = 4
let lazy_dequeue_blocked_instrs = 14

(* Thread state changes and context switch. *)
let set_state_instrs = 6
let context_switch_instrs = 30

(* Endpoint queue surgery. *)
let ep_enqueue_instrs = 12
let ep_dequeue_instrs = 14

(* Badged-abort bookkeeping per examined waiter (Section 3.4). *)
let badge_scan_instrs = 10

(* Untyped retype fixed work per object (bookkeeping after clearing). *)
let retype_fixed_instrs = 60

(* Clearing / copying memory: instructions per 32-byte line (the stores
   themselves are charged through the cache model). *)
let clear_line_instrs = 4

(* Page-table operations. *)
let pte_update_instrs = 8
let unmap_entry_instrs = 10
let asid_lookup_instrs = 8
let asid_search_per_slot_instrs = 3
let tlb_invalidate_instrs = 20

(* CDT (capability derivation tree) surgery per slot. *)
let cdt_insert_instrs = 14
let cdt_remove_instrs = 16

(* Interrupt path: vector through to the handler dispatch. *)
let irq_path_instrs = 60

(* Cross-core IPI fabric (SMP model).  Sending is a write to the
   interrupt controller's ICR plus a barrier; receiving vectors through
   the IPI handler (ack, read the reason word, set the reschedule flag).
   [ipi_wire_cycles] is the interconnect latency between the ICR write
   and the remote pending bit — modelled as pure wire delay, charged to
   neither core.  A TLB-shootdown IPI additionally runs the local
   invalidate in its handler. *)
let ipi_send_instrs = 25
let ipi_receive_instrs = 45
let ipi_wire_cycles = 150
let tlb_shootdown_instrs = 30

(* One contended cache line migrating between cores: the per-pair charge
   of the remote-interference bound term (Smp.Bound).  Each interfering
   section pair over cross-core-shared state (run queues, current-thread
   pointer, IRQ words) can force at most one remote line transfer into a
   response window. *)
let remote_line_transfer_cycles = 40

(* Preemption-point check itself (poll the pending flag). *)
let preempt_check_instrs = 3

(* Maximum message length in registers (seL4 ARM: 120 message registers
   including the tag). *)
let max_msg_len = 120

(* Capability space depth limit: 32-bit cap addresses, one level can
   consume as little as one bit (Figure 7). *)
let max_cspace_depth = 32

(* Caps transferred in one IPC; the paper's worst case decodes 11 cap
   addresses in one atomic send-receive. *)
let max_extra_caps = 3
