(** Execution context: how the kernel charges work to the hardware model
    and observes pending interrupts at preemption points.  With no CPU
    attached the kernel runs uninstrumented (fast functional testing). *)

val no_irq : int
(** Sentinel for [irq_arrival]: no interrupt pending. *)

type t = {
  cpu : Hw.Cpu.t option;
  build : Build.t;
  mutable irq_arrival : int;
      (** arrival cycle of the earliest pending interrupt; [no_irq] when
          none is pending *)
  mutable timer_buf : int array;
      (** armed timer expiry cycles; only the first [timer_count] slots are
          live (use {!schedule_irq_at} to arm) *)
  mutable timer_count : int;
  mutable irq_latency_worst : int;
  mutable irq_latency_last : int;
  mutable preempt_count : int;
  mutable preempt_polls : int;  (** preemption points polled (taken or not) *)
  mutable on_preempt_poll : (int -> bool) option;
      (** fault-injection hook: called with the 1-based poll index before
          the pending check; returning [true] asserts an interrupt at
          exactly this poll (install via {!Kernel.set_injection_hook}) *)
  mutable on_access : (int -> int -> bool -> unit) option;
      (** access recorder: called with [(addr, bytes, is_write)] for every
          charged data access (install via {!set_access_hook}) *)
  region_names : string array;
      (** physical-equality memo for {!Layout.code} lookups on the charge
          path; managed by {!exec}/{!branch} *)
  region_memo : Layout.code_region array;
  mutable region_count : int;
}

val create : ?cpu:Hw.Cpu.t -> Build.t -> t
val cycles : t -> int

val set_preempt_poll_hook : t -> (int -> bool) option -> unit
(** Install (or clear, with [None]) the preempt-poll hook.  Raises
    [Invalid_argument] when a hook is already installed and the new value
    is [Some _]: hooks do not compose, so silently replacing one would
    drop another engine's instrumentation. *)

val set_access_hook : t -> (int -> int -> bool -> unit) option -> unit
(** Install (or clear) the access recorder, called with
    [(addr, bytes, is_write)] for every charged data access — even with
    no CPU attached, so footprint audits run at functional-test speed.
    Raises [Invalid_argument] on double-set, like
    {!set_preempt_poll_hook}. *)

val emit : t -> Obs.Trace.kind -> unit
(** Emit a structured trace event into the CPU's attached buffer (no-op
    without a CPU or a buffer).  Charges nothing. *)

val tracing : t -> bool
(** A CPU with a trace buffer is attached — check before building an
    event for {!emit} on a hot path (the event itself allocates). *)

val exec : t -> string -> int -> unit
(** [exec t region n]: charge [n] instructions fetched from the named code
    region (see {!Layout.code}). *)

val load : t -> int -> unit
val store : t -> int -> unit
val branch : t -> string -> taken:bool -> unit

val store_block : t -> int -> int -> unit
(** Bulk store, one access per cache line (object clearing, the kernel
    mapping copy). *)

val load_block : t -> int -> int -> unit

val raise_irq : t -> unit
val schedule_irq_at : t -> int -> unit
(** Arm a timer: an interrupt becomes pending once the cycle counter
    reaches the value.  Several timers may be armed at once; each expiry
    is promoted with its own arrival cycle (earliest first). *)

val irq_pending : t -> bool

val note_irq_taken : t -> int option
(** Called on the interrupt-dispatch path: record the response latency
    from arrival to now, clear the pending state, and return the latency
    (None when no interrupt was pending). *)

val preemption_point : t -> bool
(** Poll the pending flag (charging the check).  Always [false] when the
    build disables preemption points — the "before" kernel. *)

val worst_irq_latency : t -> int
val last_irq_latency : t -> int
