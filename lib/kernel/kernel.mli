(** The microkernel: event-based, single kernel stack, interrupts disabled
    during kernel execution except at explicit preemption points.

    Every kernel entry runs to completion or to a preemption point.  A
    preempted operation saves its progress in the objects it manipulates
    (incremental consistency), marks the current thread's system call for
    restart, handles the pending interrupt, and returns; re-executing the
    system call continues the operation (Section 2.1). *)

open Ktypes

type t = {
  ctx : Ctx.t;
  build : Build.t;
  cpu_id : int;
      (** the core this kernel instance runs on (SMP model); 0 on the
          single-core model *)
  sched : Sched.t;
  asids : Vspace.asid_state;
  idle : tcb;
  mutable current : tcb;
  mutable objects : any_object list;
      (** registry of live objects, for the invariant checker *)
  mutable next_id : int;
  mutable phys_watermark : int;
  mutable next_root_slot : int;
  mutable root_slots : slot list;
  cap_refs : (int, int) Hashtbl.t;  (** object id -> live capability count *)
  irq_handlers : cap option array;
  pending_buf : int array;  (** ring of raised, undelivered lines *)
  mutable pending_head : int;
  mutable pending_count : int;
  mutable pending_mask : int;  (** bit per line: membership in the ring *)
  mutable armed_fire : int array;
  mutable armed_line : int array;
      (** (fire cycle, line) device timers not yet expired, first
          [armed_count] slots live *)
  mutable armed_count : int;
  mutable scratch_fire : int array;
  mutable scratch_line : int array;
  irq_assert : int array;
      (** per-line assert cycle of each pending interrupt; negative = none *)
  mutable irq_line_worst : int;
  mutable on_irq_deliver : (int -> int -> unit) option;
  mutable preempted_events : int;
  mutable syscall_restarts : int;
}

val num_irqs : int
val timer_irq : int

(** {1 Construction and bookkeeping} *)

val create : ?cpu:Hw.Cpu.t -> ?cpu_id:int -> Build.t -> t
(** [cpu_id] (default 0) tags this kernel instance's core: threads it
    creates are pinned there ({!Ktypes.tcb.tcb_affinity}). *)

val ctx : t -> Ctx.t
val current : t -> tcb
val cycles : t -> int

val fresh_id : t -> int
val register : t -> any_object -> unit
val unregister : t -> any_object -> unit

val new_root_slot : t -> slot
(** A harness-owned capability slot outside any CNode (boot caps). *)

val boot_untyped : t -> size_bits:int -> slot
(** Carve an untyped out of simulated physical memory at boot. *)

val obj_of_cap : cap -> any_object option
val incref : t -> cap -> unit

(** {1 Scheduling} *)

val switch_to : t -> tcb -> unit
val reschedule : t -> unit

val force_run : t -> tcb -> unit
(** Harness entry: put [tcb] on the CPU as if scheduled, re-queueing the
    displaced thread.  Models user-level context switches driven by the
    simulation. *)

val wake : t -> ?direct:bool -> tcb -> unit
(** Make a thread runnable; with [direct] (default), performs the
    Benno-style immediate switch when the thread can run now. *)

(** {1 Events (kernel entries)} *)

type invocation =
  | Inv_retype of {
      ut : int;
      obj_type : obj_type;
      count : int;
      dest_slots : slot list;
    }
  | Inv_copy of { src : int; dest_slot : slot; badge : int option }
  | Inv_move of { src : int; dest_slot : slot }
  | Inv_delete of { target : int }
  | Inv_revoke of { target : int }
  | Inv_cancel_badged_sends of { ep : int; badge : int }
  | Inv_tcb_priority of { target : int; prio : int }
  | Inv_tcb_configure of {
      target : int;
      cspace : int;
      vspace : int;
      fault_ep : int;
    }
  | Inv_tcb_suspend of { target : int }
  | Inv_tcb_resume of { target : int }
  | Inv_map_frame of { frame : int; pd : int; vaddr : int }
  | Inv_unmap_frame of { frame : int }
  | Inv_map_page_table of { pt : int; pd : int; vaddr : int }
  | Inv_make_asid_pool of { ut : int; dest_slot : slot; top_index : int }
  | Inv_assign_asid of { pool : int; pd : int }
  | Inv_irq_handler of { line : int; ep : int }
  | Inv_bind_irq_notification of { line : int; ntfn : int }

type event =
  | Ev_signal of { ntfn : int }
  | Ev_wait of { ntfn : int }
  | Ev_poll of { ntfn : int }
  | Ev_call of {
      ep : int;
      badge_hint : int;
      msg_len : int;
      extra_caps : int list;
    }
  | Ev_send of { ep : int; msg_len : int; extra_caps : int list; blocking : bool }
  | Ev_recv of { ep : int }
  | Ev_reply_recv of { ep : int; msg_len : int }
  | Ev_yield
  | Ev_invoke of invocation
  | Ev_interrupt
  | Ev_page_fault of { vaddr : int }
  | Ev_undefined_instruction

type outcome = Completed | Preempted | Failed of string

val kernel_entry : t -> event -> outcome
(** One kernel entry: exception vector in, event handling, and either a
    clean exit or a preemption (in which case the pending interrupt is
    serviced before returning to user, per Section 5.2's path model). *)

val run_to_completion : ?max_restarts:int -> t -> event -> outcome
(** Re-execute a preempted system call until it completes (what user
    level does implicitly by restarting the trapping instruction). *)

(** {1 Interrupts} *)

val raise_irq : t -> int -> unit
(** Assert an interrupt line now. *)

val schedule_irq : t -> int -> delay:int -> unit
(** Assert a line once the cycle counter advances by [delay] — the
    interrupt lands mid-operation.  Any number of device timers may be
    armed concurrently; expiries are promoted to pending earliest-first
    (ties broken by arming order), each stamped with its own fire cycle
    as the line's assert time. *)

val next_armed_irq : t -> (int * int) option
(** The earliest (fire cycle, line) among armed device timers, if any —
    lets a driver know how far to advance an idle system for the next
    interrupt to fire. *)

val has_pending_irq : t -> bool
(** Is any line raised but not yet delivered?  Allocation-free. *)

val pending_lines : t -> int list
(** The pending lines in delivery order (diagnostics and tests). *)

val set_irq_delivery_hook : t -> (int -> int -> unit) option -> unit
(** Install (or clear) an observer called with [(line, latency)] at every
    interrupt delivery — the soak simulator's per-IRQ latency feed.
    Latency is measured from the line's own assert cycle. *)

val worst_irq_latency : t -> int
(** Worst observed per-delivery response latency (cycles), across all
    lines. *)

val preempted_events : t -> int

(** {1 Fault injection} *)

val set_injection_hook : t -> (int -> bool) option -> unit
(** Install (or clear) a deterministic fault-injection hook: the callback
    receives the 1-based index of every preemption-point poll; returning
    [true] asserts the timer interrupt at exactly that poll.  Indices are
    counted by poll, not by cycle, so an injection schedule replays
    identically across scheduler variants.  Installation resets the poll
    counter.  Raises [Invalid_argument] when a hook is already installed
    and the new value is [Some _] — clear with [None] first. *)

val preempt_polls : t -> int
(** Preemption-point polls since the injection hook was last installed. *)

(** {1 Internal operations exposed for targeted tests} *)

val delete_endpoint : t -> endpoint -> Vspace.progress
val cancel_badged_sends :
  t -> endpoint -> badge:badge -> initiator:tcb -> Vspace.progress
val delete_cap : t -> slot -> Vspace.progress
val revoke_cap : t -> slot -> Vspace.progress
val signal_notification : t -> notification -> badge:badge -> unit
val cancel_ipc : t -> tcb -> unit
