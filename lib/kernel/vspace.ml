(* Virtual address-space management, in both designs of Section 3.6.

   Original design ([Build.Asid_table]): frame caps name their address
   space through an ASID — an index into a two-level lookup table.  Stale
   ASIDs are harmless (checked against the page table on use), making
   address-space deletion O(1), but allocating an ASID scans up to 1024
   slots and deleting an ASID pool visits up to 1024 address spaces, both
   with interrupts disabled.

   Shadow design ([Build.Shadow_tables]): frame caps point directly at
   the page directory; each page table and page directory carries a shadow
   array of back-pointers from mapping entries to the frame-cap slots used
   to create them.  All mapping state is kept exact eagerly, so deletion
   must walk the tables — but each entry is a preemption point, and the
   lowest-mapped index is memoised so no work repeats (incremental
   consistency). *)

open Ktypes

type progress = Done | Preempted

let pd_index vaddr = (vaddr lsr pt_coverage_bits) land (pd_entries_count - 1)
let pt_index vaddr = (vaddr lsr page_bits) land (pt_entries_count - 1)

let pde_addr pd i = pd.pd_addr + (4 * i)
let pde_shadow_addr pd i = pd.pd_addr + 16384 + (4 * i)
let pte_addr pt i = pt.pt_addr + (4 * i)
let pte_shadow_addr pt i = pt.pt_addr + 1024 + (4 * i)

(* --- ASID table (original design) --- *)

type asid_state = {
  table : asid_pool option array;  (* top level: 256 pool slots *)
}

let asid_top_slots = 256

let create_asid_state () = { table = Array.make asid_top_slots None }

let asid_pool_index asid = asid / asid_pool_size
let asid_entry_index asid = asid mod asid_pool_size

let asid_lookup ctx st asid =
  Ctx.exec ctx "asid_ops" Costs.asid_lookup_instrs;
  Ctx.load ctx (Layout.asid_table_base + (4 * asid_pool_index asid));
  match st.table.(asid_pool_index asid) with
  | None -> None
  | Some pool ->
      Ctx.load ctx (pool.ap_addr + (4 * asid_entry_index asid));
      pool.ap_entries.(asid_entry_index asid)

(* Find a free slot in a pool: the unpreemptible search the paper calls
   out ("a pathological case may require searching over 1024 possible
   ASIDs").  Returns the allocated ASID. *)
let asid_alloc ctx st pool ~pool_slot pd =
  let rec search i =
    if i >= asid_pool_size then None
    else begin
      Ctx.exec ctx "asid_ops" Costs.asid_search_per_slot_instrs;
      Ctx.load ctx (pool.ap_addr + (4 * i));
      match pool.ap_entries.(i) with
      | None ->
          pool.ap_entries.(i) <- Some pd;
          Ctx.store ctx (pool.ap_addr + (4 * i));
          let asid = (pool_slot * asid_pool_size) + i in
          pd.pd_asid <- Some asid;
          Ctx.store ctx pd.pd_addr;
          Some asid
      | Some _ -> search (i + 1)
    end
  in
  assert (match st.table.(pool_slot) with Some p -> p == pool | None -> false);
  search 0

(* O(1) address-space deletion in the ASID design: drop the table entry
   and invalidate the TLB; frame caps keep stale references. *)
let asid_delete_vspace ctx st pd =
  match pd.pd_asid with
  | None -> ()
  | Some asid -> (
      Ctx.exec ctx "asid_ops" Costs.asid_lookup_instrs;
      match st.table.(asid_pool_index asid) with
      | None -> ()
      | Some pool ->
          pool.ap_entries.(asid_entry_index asid) <- None;
          Ctx.store ctx (pool.ap_addr + (4 * asid_entry_index asid));
          pd.pd_asid <- None;
          Ctx.store ctx pd.pd_addr;
          Ctx.exec ctx "asid_ops" Costs.tlb_invalidate_instrs)

(* Deleting a whole pool visits every address space in it — unpreemptible
   in the original design (Section 3.6). *)
let asid_pool_delete ctx st ~pool_slot =
  match st.table.(pool_slot) with
  | None -> ()
  | Some pool ->
      for i = 0 to asid_pool_size - 1 do
        Ctx.exec ctx "asid_ops" Costs.asid_search_per_slot_instrs;
        Ctx.load ctx (pool.ap_addr + (4 * i));
        match pool.ap_entries.(i) with
        | None -> ()
        | Some pd ->
            pd.pd_asid <- None;
            Ctx.store ctx pd.pd_addr;
            pool.ap_entries.(i) <- None;
            Ctx.store ctx (pool.ap_addr + (4 * i))
      done;
      Ctx.exec ctx "asid_ops" Costs.tlb_invalidate_instrs;
      st.table.(pool_slot) <- None;
      Ctx.store ctx (Layout.asid_table_base + (4 * pool_slot))

(* --- kernel global mappings (both designs) --- *)

(* Copy the kernel's global mappings into a fresh page directory: 256
   entries, 1 KiB of copying, deliberately *not* preemptible — the 20 us
   latency the paper measured and tolerated (Section 3.5). *)
let copy_kernel_mappings ctx pd =
  assert (not pd.pd_kernel_mapped);
  Ctx.exec ctx "pd_create" (Costs.clear_line_instrs * (1024 / 32));
  Ctx.load_block ctx Layout.data_base 1024;
  Ctx.store_block ctx (pde_addr pd kernel_pde_first) 1024;
  for i = kernel_pde_first to pd_entries_count - 1 do
    pd.pd_entries.(i) <- Pde_kernel
  done;
  pd.pd_kernel_mapped <- true

(* --- mapping --- *)

type map_error =
  | Already_mapped
  | No_page_table
  | Pde_occupied
  | Bad_vspace
  | Kernel_region

exception Vm_error of map_error

let require cond err = if not cond then raise (Vm_error err)

let resolve_vspace ctx build asid_state (cap : cap) =
  match (cap, build.Build.vspace) with
  | Page_directory_cap { pd; pdc_asid = Some asid }, Build.Asid_table -> (
      match asid_lookup ctx asid_state asid with
      | Some pd' when pd' == pd -> pd
      | _ -> raise (Vm_error Bad_vspace))
  | Page_directory_cap { pd; _ }, Build.Shadow_tables -> pd
  | _ -> raise (Vm_error Bad_vspace)

let map_page_table ctx pd ~vaddr (pt_cap : pt_cap_data) =
  let i = pd_index vaddr in
  require (i < kernel_pde_first) Kernel_region;
  require (pt_cap.ptc_mapping = None) Already_mapped;
  Ctx.exec ctx "vspace_map" Costs.pte_update_instrs;
  Ctx.load ctx (pde_addr pd i);
  require (pd.pd_entries.(i) = Pde_invalid) Pde_occupied;
  pd.pd_entries.(i) <- Pde_page_table pt_cap.pt;
  Ctx.store ctx (pde_addr pd i);
  pt_cap.pt.pt_mapped_in <- Some (pd, i);
  Ctx.store ctx pt_cap.pt.pt_addr;
  pt_cap.ptc_mapping <- Some (pd, i);
  if i < pd.pd_lowest_mapped then pd.pd_lowest_mapped <- i

(* Map a frame cap at [vaddr].  The mapping reference stored in the cap —
   ASID or direct pointer — is the crux of Section 3.6. *)
let map_frame ctx build (fc : frame_cap_data) ~slot pd ~vaddr =
  require (fc.fc_mapping = None) Already_mapped;
  require (pd_index vaddr < kernel_pde_first) Kernel_region;
  Ctx.exec ctx "vspace_map" Costs.pte_update_instrs;
  let vref =
    match build.Build.vspace with
    | Build.Asid_table -> (
        match pd.pd_asid with
        | Some asid -> Via_asid asid
        | None -> raise (Vm_error Bad_vspace))
    | Build.Shadow_tables -> Direct pd
  in
  if fc.frame.f_size_bits >= pt_coverage_bits then begin
    (* Section mapping directly in the page directory. *)
    let i = pd_index vaddr in
    Ctx.load ctx (pde_addr pd i);
    require (pd.pd_entries.(i) = Pde_invalid) Pde_occupied;
    pd.pd_entries.(i) <- Pde_section fc.frame;
    Ctx.store ctx (pde_addr pd i);
    if build.Build.vspace = Build.Shadow_tables then begin
      pd.pd_shadow.(i) <- Some slot;
      Ctx.store ctx (pde_shadow_addr pd i)
    end;
    if i < pd.pd_lowest_mapped then pd.pd_lowest_mapped <- i
  end
  else begin
    let i = pd_index vaddr in
    Ctx.load ctx (pde_addr pd i);
    match pd.pd_entries.(i) with
    | Pde_page_table pt ->
        let j = pt_index vaddr in
        Ctx.load ctx (pte_addr pt j);
        require (pt.pt_entries.(j) = Pte_invalid) Pde_occupied;
        pt.pt_entries.(j) <- Pte_frame fc.frame;
        Ctx.store ctx (pte_addr pt j);
        if build.Build.vspace = Build.Shadow_tables then begin
          pt.pt_shadow.(j) <- Some slot;
          Ctx.store ctx (pte_shadow_addr pt j)
        end;
        if j < pt.pt_lowest_mapped then pt.pt_lowest_mapped <- j
    | _ -> raise (Vm_error No_page_table)
  end;
  fc.fc_mapping <- Some { fm_vspace = vref; fm_vaddr = vaddr }

(* Unmap one frame cap.  In the ASID design the reference may be stale:
   the mapping is checked against the frame before being cleared ("it can
   be simply checked that the mapping in the address space (if any still
   exist) agrees with the frame cap"). *)
let unmap_frame ctx build asid_state (fc : frame_cap_data) =
  match fc.fc_mapping with
  | None -> ()
  | Some { fm_vspace; fm_vaddr } ->
      Ctx.exec ctx "vspace_unmap" Costs.unmap_entry_instrs;
      let pd_opt =
        match fm_vspace with
        | Via_asid asid -> asid_lookup ctx asid_state asid
        | Direct pd -> Some pd
      in
      (match pd_opt with
      | None -> () (* stale ASID: harmless dangling reference *)
      | Some pd -> (
          let i = pd_index fm_vaddr in
          Ctx.load ctx (pde_addr pd i);
          match pd.pd_entries.(i) with
          | Pde_section f when f == fc.frame ->
              pd.pd_entries.(i) <- Pde_invalid;
              Ctx.store ctx (pde_addr pd i);
              if build.Build.vspace = Build.Shadow_tables then begin
                pd.pd_shadow.(i) <- None;
                Ctx.store ctx (pde_shadow_addr pd i)
              end;
              Ctx.exec ctx "vspace_unmap" Costs.tlb_invalidate_instrs
          | Pde_page_table pt -> (
              let j = pt_index fm_vaddr in
              Ctx.load ctx (pte_addr pt j);
              match pt.pt_entries.(j) with
              | Pte_frame f when f == fc.frame ->
                  pt.pt_entries.(j) <- Pte_invalid;
                  Ctx.store ctx (pte_addr pt j);
                  if build.Build.vspace = Build.Shadow_tables then begin
                    pt.pt_shadow.(j) <- None;
                    Ctx.store ctx (pte_shadow_addr pt j)
                  end;
                  Ctx.exec ctx "vspace_unmap" Costs.tlb_invalidate_instrs
              | _ -> () (* mapping disagrees: stale, ignore *))
          | _ -> ()));
      fc.fc_mapping <- None

(* Clear one page-table entry during teardown, following the shadow
   back-pointer to purge the frame cap's mapping info eagerly. *)
let clear_pte ctx pt j =
  Ctx.exec ctx "vspace_delete" Costs.unmap_entry_instrs;
  Ctx.load ctx (pte_addr pt j);
  (match pt.pt_shadow.(j) with
  | Some slot -> (
      Ctx.load ctx (pte_shadow_addr pt j);
      match slot.cap with
      | Frame_cap fc ->
          fc.fc_mapping <- None;
          Ctx.store ctx (Cdt.slot_addr slot)
      | _ -> ())
  | None -> ());
  pt.pt_entries.(j) <- Pte_invalid;
  pt.pt_shadow.(j) <- None;
  Ctx.store ctx (pte_addr pt j);
  Ctx.store ctx (pte_shadow_addr pt j);
  if Ctx.tracing ctx then
    Ctx.emit ctx (Obs.Trace.Vspace_unmap { addr = pte_addr pt j })

(* Tear down all mappings of a page table, resuming from the memoised
   lowest mapped index; one preemption point per entry (Section 3.6: "the
   natural preemption point in the deletion path is to preempt after
   unmapping each entry"). *)
let delete_page_table_mappings ctx pt =
  let rec loop j =
    if j >= pt_entries_count then begin
      pt.pt_lowest_mapped <- pt_entries_count;
      Done
    end
    else begin
      pt.pt_lowest_mapped <- j;
      if pt.pt_entries.(j) <> Pte_invalid || pt.pt_shadow.(j) <> None then begin
        clear_pte ctx pt j;
        if Ctx.preemption_point ctx then Preempted else loop (j + 1)
      end
      else loop (j + 1)
    end
  in
  let r = loop pt.pt_lowest_mapped in
  if r = Done then begin
    (match pt.pt_mapped_in with
    | Some (pd, i) ->
        pd.pd_entries.(i) <- Pde_invalid;
        Ctx.store ctx (pde_addr pd i);
        pt.pt_mapped_in <- None
    | None -> ());
    pt.pt_lowest_mapped <- 0;
    Ctx.exec ctx "vspace_delete" Costs.tlb_invalidate_instrs
  end;
  r

(* Tear down an address space in the shadow design: unmap every section
   and every page table, one entry at a time with preemption points.
   The shadow design has no harmless dangling references, so a page table
   reached through the directory is emptied *eagerly* — clearing its
   entries and the mapped frame caps' back-pointers — before its slot in
   the directory goes away ("all mapping and unmapping operations, along
   with address space deletion must eagerly update all back-pointers",
   Section 3.6).  A preemption inside the nested table walk resumes
   through the memoised indices at both levels. *)
let delete_vspace_shadow ctx pd =
  let clear_section i =
    (match pd.pd_shadow.(i) with
    | Some slot -> (
        match slot.cap with Frame_cap fc -> fc.fc_mapping <- None | _ -> ())
    | None -> ());
    pd.pd_entries.(i) <- Pde_invalid;
    pd.pd_shadow.(i) <- None;
    Ctx.store ctx (pde_addr pd i);
    Ctx.store ctx (pde_shadow_addr pd i);
    if Ctx.tracing ctx then
      Ctx.emit ctx (Obs.Trace.Vspace_unmap { addr = pde_addr pd i })
  in
  let rec loop i =
    if i >= kernel_pde_first then begin
      pd.pd_lowest_mapped <- pd_entries_count;
      Done
    end
    else begin
      pd.pd_lowest_mapped <- i;
      Ctx.exec ctx "vspace_delete" Costs.unmap_entry_instrs;
      Ctx.load ctx (pde_addr pd i);
      match pd.pd_entries.(i) with
      | Pde_kernel -> loop (i + 1)
      | Pde_invalid ->
          if pd.pd_shadow.(i) <> None then clear_section i;
          loop (i + 1)
      | Pde_section _ ->
          clear_section i;
          if Ctx.preemption_point ctx then Preempted else loop (i + 1)
      | Pde_page_table pt -> (
          (* Nested preemptible walk; [pt_mapped_in] goes only once the
             table is empty, so a restart finds it again through the
             directory entry. *)
          match delete_page_table_mappings ctx pt with
          | Preempted -> Preempted
          | Done ->
              pd.pd_entries.(i) <- Pde_invalid;
              pd.pd_shadow.(i) <- None;
              Ctx.store ctx (pde_addr pd i);
              Ctx.store ctx (pde_shadow_addr pd i);
              if Ctx.preemption_point ctx then Preempted else loop (i + 1))
    end
  in
  let r = loop pd.pd_lowest_mapped in
  if r = Done then begin
    pd.pd_lowest_mapped <- 0;
    Ctx.exec ctx "vspace_delete" Costs.tlb_invalidate_instrs
  end;
  r

let pp_map_error ppf e =
  Fmt.string ppf
    (match e with
    | Already_mapped -> "already mapped"
    | No_page_table -> "no page table"
    | Pde_occupied -> "pde occupied"
    | Bad_vspace -> "bad vspace"
    | Kernel_region -> "kernel region")
