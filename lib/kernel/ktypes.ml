(* Kernel object types.

   One mutually recursive family, mirroring seL4's object model: threads
   (TCBs), endpoints, capability nodes (CNodes) with a capability
   derivation tree threaded through their slots, untyped memory, and the
   virtual-memory objects (frames, page tables, page directories, ASID
   pools).  Every object records its simulated physical address so that
   the cache model sees realistic access patterns. *)

type badge = int
type prio = int

type rights = { read : bool; write : bool; grant : bool }

let all_rights = { read = true; write = true; grant = true }
let rw_rights = { read = true; write = true; grant = false }

type obj_type =
  | Tcb_object
  | Endpoint_object
  | Notification_object
  | Cnode_object of int  (* radix bits *)
  | Frame_object of int  (* size bits: 12 (4 KiB) .. 24 (16 MiB) *)
  | Page_table_object
  | Page_directory_object
  | Untyped_object of int  (* size bits *)
  | Asid_pool_object

type tcb = {
  tcb_id : int;
  tcb_addr : int;
  mutable state : thread_state;
  mutable priority : prio;
  mutable cspace_root : cap;
  mutable vspace_root : cap;
  (* Fault-handler endpoint, as a capability address resolved in this
     thread's cspace at fault time (one decode per fault, as the paper
     notes for the exception entry points). *)
  mutable fault_handler_cptr : int option;
  (* Message registers; regs.(0) is the message tag. *)
  regs : int array;
  (* Intrusive scheduler queue links. *)
  mutable sched_next : tcb option;
  mutable sched_prev : tcb option;
  mutable in_run_queue : bool;
  (* The core this thread is pinned to (SMP model): threads never
     migrate, so a thread may only appear in its own core's run queues
     and on its own core's CPU.  0 on the single-core model. *)
  mutable tcb_affinity : int;
  (* Intrusive endpoint queue links; [ep_badge] is the badge a blocked
     sender used. *)
  mutable ep_next : tcb option;
  mutable ep_prev : tcb option;
  mutable ep_badge : badge;
  mutable ep_can_grant : bool;
  mutable ep_is_call : bool;
  mutable ep_msg_len : int;  (* length of the blocked send's message *)
  (* Thread waiting for our reply (we are the callee). *)
  mutable caller : tcb option;
  (* Callee we are waiting on while Blocked_on_reply (back-pointer kept so
     cancelling the IPC can purge the callee's [caller] field). *)
  mutable reply_target : tcb option;
  (* Slot into which a granted capability is received. *)
  mutable recv_slot : slot option;
  (* System call to re-execute after a preemption (restartable calls). *)
  mutable restart_syscall : bool;
  mutable tcb_cleared : int;  (* clearing progress during creation *)
}

and thread_state =
  | Inactive
  | Running
  | Blocked_on_send of endpoint
  | Blocked_on_receive of endpoint
  | Blocked_on_reply
  | Blocked_on_notification of notification

and endpoint = {
  ep_id : int;
  ep_addr : int;
  mutable ep_queue_kind : ep_queue_kind;
  ep_queue : tcb_queue;
  (* Set to false at the start of deletion so no new IPC can begin
     (forward progress for the preemptible delete, Section 3.3). *)
  mutable ep_active : bool;
  (* In-flight badged-abort progress, stored on the endpoint object rather
     than in a continuation (Section 3.4). *)
  mutable ep_abort : abort_progress option;
  mutable ep_cleared : int;  (* clearing progress during creation *)
}

and ep_queue_kind = Ep_idle | Ep_senders | Ep_receivers

(* Asynchronous notification object (seL4's async endpoint): signals OR
   their badges into the notification word; waiters block until a signal
   arrives.  This is how device interrupts reach user level. *)
and notification = {
  ntfn_id : int;
  ntfn_addr : int;
  mutable ntfn_word : badge;  (* pending signals, OR of badges; 0 = none *)
  ntfn_queue : tcb_queue;  (* blocked waiters *)
  mutable ntfn_active : bool;
  mutable ntfn_cleared : int;
}

and tcb_queue = { mutable head : tcb option; mutable tail : tcb option }

and abort_progress = {
  ab_badge : badge;  (* (3) the badge being removed *)
  mutable ab_cursor : tcb option;  (* (1) resume position *)
  mutable ab_last : tcb option;  (* (2) last waiter when the abort began *)
  mutable ab_initiator : tcb option;  (* (4) thread to notify on completion *)
}

and cnode = {
  cn_id : int;
  cn_addr : int;
  cn_bits : int;  (* radix: 2^bits slots *)
  mutable cn_slots : slot array;  (* filled right after construction *)
  mutable cn_cleared : int;  (* clearing progress during creation, bytes *)
}

and slot = {
  sl_cnode : cnode option;  (* None for root slots owned by the harness *)
  sl_index : int;
  mutable cap : cap;
  (* Capability derivation tree (seL4's MDB, as a first-child /
     sibling-list tree). *)
  mutable cdt_parent : slot option;
  mutable cdt_first_child : slot option;
  mutable cdt_prev : slot option;
  mutable cdt_next : slot option;
}

and cap =
  | Null_cap
  | Tcb_cap of tcb
  | Endpoint_cap of { ep : endpoint; badge : badge; rights : rights }
  | Notification_cap of { ntfn : notification; badge : badge; rights : rights }
  | Reply_cap of tcb
  | Cnode_cap of { cnode : cnode; guard : int; guard_bits : int }
  | Untyped_cap of untyped
  | Frame_cap of frame_cap_data
  | Page_table_cap of pt_cap_data
  | Page_directory_cap of pd_cap_data
  | Asid_pool_cap of asid_pool
  | Asid_control_cap
  | Irq_control_cap
  | Irq_handler_cap of int

and frame_cap_data = {
  frame : frame;
  fc_rights : rights;
  (* Where this cap's frame is mapped (each frame cap maps at most once,
     as in seL4). *)
  mutable fc_mapping : frame_mapping option;
}

and frame_mapping = {
  fm_vspace : vspace_ref;
  fm_vaddr : int;
}

(* The two designs of Section 3.6: an ASID indirection that tolerates
   stale references, or a direct page-directory reference kept exact by
   shadow back-pointers. *)
and vspace_ref = Via_asid of int | Direct of page_directory

and pt_cap_data = {
  pt : page_table;
  mutable ptc_mapping : (page_directory * int) option;  (* pd, pde index *)
}

and pd_cap_data = { pd : page_directory; mutable pdc_asid : int option }

and untyped = {
  ut_id : int;
  ut_addr : int;
  ut_size_bits : int;
  mutable ut_watermark : int;  (* bytes used from the start *)
  (* An in-flight retype: objects allocated but still being cleared.  The
     clearing happens *before* any other kernel state is touched
     (Section 3.5), so a preemption here leaves the system fully
     consistent and the restarted syscall resumes from the watermarks. *)
  mutable ut_creating : creating option;
}

and creating = {
  cr_type : obj_type;
  cr_entries : (slot * any_object) list;  (* destination slot, new object *)
  mutable cr_cursor : int;  (* objects fully cleared *)
}

and frame = {
  f_id : int;
  f_addr : int;
  f_size_bits : int;
  mutable f_cleared : int;  (* clearing progress during creation, bytes *)
}

and pte = Pte_invalid | Pte_frame of frame

and page_table = {
  pt_id : int;
  pt_addr : int;
  pt_entries : pte array;  (* 256 entries of 4 KiB *)
  pt_shadow : slot option array;  (* back-pointers to mapping frame caps *)
  mutable pt_lowest_mapped : int;  (* resume index for preemptible delete *)
  mutable pt_mapped_in : (page_directory * int) option;
  mutable pt_cleared : int;
}

and pde =
  | Pde_invalid
  | Pde_page_table of page_table
  | Pde_section of frame  (* 1 MiB section mapping *)
  | Pde_kernel  (* global kernel mapping, copied at creation *)

and page_directory = {
  pd_id : int;
  pd_addr : int;
  pd_entries : pde array;  (* 4096 entries of 1 MiB *)
  pd_shadow : slot option array;
  mutable pd_asid : int option;
  mutable pd_kernel_mapped : bool;
  mutable pd_lowest_mapped : int;
  mutable pd_cleared : int;
}

and asid_pool = {
  ap_id : int;
  ap_addr : int;
  ap_entries : page_directory option array;  (* 1024 address spaces *)
  mutable ap_cleared : int;  (* clearing progress during creation *)
}

(* Uniform view of any kernel object, used by the registry and the
   invariant checker. *)
and any_object =
  | Any_tcb of tcb
  | Any_endpoint of endpoint
  | Any_notification of notification
  | Any_cnode of cnode
  | Any_untyped of untyped
  | Any_frame of frame
  | Any_page_table of page_table
  | Any_page_directory of page_directory
  | Any_asid_pool of asid_pool

let pd_entries_count = 4096
let pt_entries_count = 256
let kernel_pde_first = 3840 (* top 256 MiB of a 4 GiB space: 256 entries *)
let asid_pool_size = 1024
let page_bits = 12
let pt_coverage_bits = 20 (* one PT maps 1 MiB *)

let obj_size_bytes = function
  | Tcb_object -> 512
  | Endpoint_object -> 16
  | Notification_object -> 16
  | Cnode_object bits -> 16 lsl bits
  | Frame_object bits -> 1 lsl bits
  | Page_table_object -> 1024 * 2 (* 1 KiB table + 1 KiB shadow *)
  | Page_directory_object -> 16384 * 2 (* 16 KiB directory + shadow *)
  | Untyped_object bits -> 1 lsl bits
  | Asid_pool_object -> 4096

let is_runnable tcb =
  match tcb.state with
  | Running -> true
  | Inactive | Blocked_on_send _ | Blocked_on_receive _ | Blocked_on_reply
  | Blocked_on_notification _ ->
      false

let cap_is_null = function Null_cap -> true | _ -> false

let pp_thread_state ppf = function
  | Inactive -> Fmt.string ppf "inactive"
  | Running -> Fmt.string ppf "running"
  | Blocked_on_send ep -> Fmt.pf ppf "blocked-send(ep%d)" ep.ep_id
  | Blocked_on_receive ep -> Fmt.pf ppf "blocked-recv(ep%d)" ep.ep_id
  | Blocked_on_reply -> Fmt.string ppf "blocked-reply"
  | Blocked_on_notification n -> Fmt.pf ppf "blocked-ntfn(ntfn%d)" n.ntfn_id

let pp_cap ppf = function
  | Null_cap -> Fmt.string ppf "null"
  | Tcb_cap t -> Fmt.pf ppf "tcb%d" t.tcb_id
  | Endpoint_cap { ep; badge; _ } -> Fmt.pf ppf "ep%d[badge=%d]" ep.ep_id badge
  | Notification_cap { ntfn; badge; _ } ->
      Fmt.pf ppf "ntfn%d[badge=%d]" ntfn.ntfn_id badge
  | Reply_cap t -> Fmt.pf ppf "reply(tcb%d)" t.tcb_id
  | Cnode_cap { cnode; _ } -> Fmt.pf ppf "cnode%d" cnode.cn_id
  | Untyped_cap u -> Fmt.pf ppf "untyped%d" u.ut_id
  | Frame_cap { frame; _ } -> Fmt.pf ppf "frame%d" frame.f_id
  | Page_table_cap { pt; _ } -> Fmt.pf ppf "pt%d" pt.pt_id
  | Page_directory_cap { pd; _ } -> Fmt.pf ppf "pd%d" pd.pd_id
  | Asid_pool_cap p -> Fmt.pf ppf "asid-pool%d" p.ap_id
  | Asid_control_cap -> Fmt.string ppf "asid-control"
  | Irq_control_cap -> Fmt.string ppf "irq-control"
  | Irq_handler_cap n -> Fmt.pf ppf "irq%d" n
