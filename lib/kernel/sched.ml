(* The scheduler: 256 fixed priorities with per-priority FIFO run queues,
   in the three variants the paper compares:

   - [Lazy] (Figure 2): blocking IPC leaves threads in the run queue; the
     scheduler dequeues stale blocked threads as it encounters them.  The
     pathological case — a long queue of blocked threads to clean up with
     interrupts disabled — is what Section 3.1 removes.
   - [Benno] (Figure 3): only runnable threads are ever in the queue, so
     the scheduler simply takes the head of the highest non-empty
     priority.  The fast IPC path switches directly to a woken thread
     without queueing it.
   - [Benno_bitmap] (Section 3.2): plus a two-level bitmap over priorities
     searched with CLZ, removing the scan loop entirely.

   Higher priority number = more urgent (seL4 convention, 255 highest). *)

open Ktypes

let num_priorities = 256
let bucket_bits = 32
let num_buckets = num_priorities / bucket_bits

type t = {
  build : Build.t;
  queues : tcb_queue array;
  buckets : int array;  (* one 32-bit word per bucket of priorities *)
  mutable top : int;  (* one bit per bucket *)
  idle : tcb;
}

let create build ~idle =
  {
    build;
    queues = Array.init num_priorities (fun _ -> { head = None; tail = None });
    buckets = Array.make num_buckets 0;
    top = 0;
    idle;
  }

let queue t prio = t.queues.(prio)

(* --- intrusive doubly-linked run-queue operations --- *)

let charge_queue_touch ctx prio =
  Ctx.load ctx (Layout.run_queue_entry prio)

let bitmap_set ctx t prio =
  if t.build.Build.sched = Build.Benno_bitmap then begin
    Ctx.exec ctx "sched_bitmap" Costs.bitmap_update_instrs;
    let bucket = prio / bucket_bits and bit = prio mod bucket_bits in
    t.buckets.(bucket) <- t.buckets.(bucket) lor (1 lsl bit);
    t.top <- t.top lor (1 lsl bucket);
    Ctx.store ctx (Layout.bitmap_bucket bucket);
    Ctx.store ctx Layout.bitmap_top
  end

let bitmap_clear ctx t prio =
  if t.build.Build.sched = Build.Benno_bitmap then begin
    Ctx.exec ctx "sched_bitmap" Costs.bitmap_update_instrs;
    let bucket = prio / bucket_bits and bit = prio mod bucket_bits in
    t.buckets.(bucket) <- t.buckets.(bucket) land lnot (1 lsl bit);
    if t.buckets.(bucket) = 0 then t.top <- t.top land lnot (1 lsl bucket);
    Ctx.store ctx (Layout.bitmap_bucket bucket);
    Ctx.store ctx Layout.bitmap_top
  end

(* Append at the tail (FIFO within a priority). *)
let enqueue ctx t tcb =
  assert (not tcb.in_run_queue);
  Ctx.exec ctx "sched_enqueue" Costs.enqueue_instrs;
  charge_queue_touch ctx tcb.priority;
  Ctx.store ctx tcb.tcb_addr;
  let q = queue t tcb.priority in
  (match q.tail with
  | None ->
      q.head <- Some tcb;
      q.tail <- Some tcb;
      bitmap_set ctx t tcb.priority
  | Some old_tail ->
      Ctx.store ctx old_tail.tcb_addr;
      old_tail.sched_next <- Some tcb;
      tcb.sched_prev <- Some old_tail;
      q.tail <- Some tcb);
  tcb.in_run_queue <- true

let dequeue ctx t tcb =
  assert tcb.in_run_queue;
  Ctx.exec ctx "sched_dequeue" Costs.dequeue_instrs;
  charge_queue_touch ctx tcb.priority;
  Ctx.store ctx tcb.tcb_addr;
  let q = queue t tcb.priority in
  (match tcb.sched_prev with
  | None -> q.head <- tcb.sched_next
  | Some prev ->
      Ctx.store ctx prev.tcb_addr;
      prev.sched_next <- tcb.sched_next);
  (match tcb.sched_next with
  | None -> q.tail <- tcb.sched_prev
  | Some next ->
      Ctx.store ctx next.tcb_addr;
      next.sched_prev <- tcb.sched_prev);
  tcb.sched_prev <- None;
  tcb.sched_next <- None;
  tcb.in_run_queue <- false;
  if q.head = None then bitmap_clear ctx t tcb.priority

(* A thread stopped being runnable.  Under lazy scheduling it may stay in
   the queue (that is the point of the optimisation); under Benno it must
   leave immediately, maintaining the new invariant that all queued
   threads are runnable. *)
let on_block ctx t tcb =
  match t.build.Build.sched with
  | Build.Lazy -> ()
  | Build.Benno | Build.Benno_bitmap ->
      if tcb.in_run_queue then dequeue ctx t tcb

(* Make a thread schedulable.  Under lazy scheduling it may already be
   queued from a previous lazy block. *)
let make_runnable ctx t tcb =
  if not tcb.in_run_queue then enqueue ctx t tcb

(* --- chooseThread, per variant --- *)

(* Figure 2: scan down; dequeue blocked leftovers as encountered. *)
let choose_lazy ctx t =
  let rec scan prio =
    if prio < 0 then t.idle
    else begin
      Ctx.exec ctx "sched_choose" Costs.choose_thread_scan_per_prio_instrs;
      charge_queue_touch ctx prio;
      let q = queue t prio in
      let rec head_loop () =
        match q.head with
        | None -> None
        | Some tcb ->
            Ctx.load ctx tcb.tcb_addr;
            if is_runnable tcb then Some tcb
            else begin
              (* Stale blocked thread left by lazy scheduling. *)
              Ctx.exec ctx "sched_choose" Costs.lazy_dequeue_blocked_instrs;
              dequeue ctx t tcb;
              head_loop ()
            end
      in
      match head_loop () with
      | Some tcb -> tcb
      | None -> scan (prio - 1)
    end
  in
  scan (num_priorities - 1)

(* Figure 3: the head of the highest non-empty queue is runnable. *)
let choose_benno ctx t =
  let rec scan prio =
    if prio < 0 then t.idle
    else begin
      Ctx.exec ctx "sched_choose" Costs.choose_thread_scan_per_prio_instrs;
      charge_queue_touch ctx prio;
      match (queue t prio).head with
      | Some tcb ->
          Ctx.load ctx tcb.tcb_addr;
          assert (is_runnable tcb);
          tcb
      | None -> scan (prio - 1)
    end
  in
  scan (num_priorities - 1)

(* Section 3.2: two loads and two CLZ instructions. *)
let choose_bitmap ctx t =
  Ctx.exec ctx "sched_choose" Costs.choose_thread_bitmap_instrs;
  Ctx.load ctx Layout.bitmap_top;
  if t.top = 0 then t.idle
  else begin
    let msb word =
      let rec go i = if word land (1 lsl i) <> 0 then i else go (i - 1) in
      go 31
    in
    let bucket = msb t.top in
    Ctx.load ctx (Layout.bitmap_bucket bucket);
    let bit = msb t.buckets.(bucket) in
    let prio = (bucket * bucket_bits) + bit in
    charge_queue_touch ctx prio;
    match (queue t prio).head with
    | Some tcb ->
        Ctx.load ctx tcb.tcb_addr;
        assert (is_runnable tcb);
        tcb
    | None -> assert false (* the bitmap mirrors queue occupancy *)
  end

let choose_thread ctx t =
  let chosen =
    match t.build.Build.sched with
    | Build.Lazy -> choose_lazy ctx t
    | Build.Benno -> choose_benno ctx t
    | Build.Benno_bitmap -> choose_bitmap ctx t
  in
  if Ctx.tracing ctx then
    Ctx.emit ctx
      (Obs.Trace.Sched_decision
         { tcb = chosen.tcb_id; priority = chosen.priority });
  chosen

(* --- introspection for tests and invariants --- *)

let queued_threads t prio =
  let rec walk acc = function
    | None -> List.rev acc
    | Some tcb -> walk (tcb :: acc) tcb.sched_next
  in
  walk [] (queue t prio).head

let all_queued t =
  List.concat (List.init num_priorities (fun p -> queued_threads t p))

let bitmap_bit_set t prio =
  t.buckets.(prio / bucket_bits) land (1 lsl (prio mod bucket_bits)) <> 0
