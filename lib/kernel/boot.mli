(** Minimal root-task bootstrap shared by tests, examples and benchmarks:
    a root untyped, a root CNode whose single level resolves a full 32-bit
    capability address (24 guard bits + 8 radix bits), and a root thread.
    Everything is created through the real retype path, so boot-time state
    satisfies the invariant catalogue. *)

open Ktypes

type env = {
  k : Kernel.t;
  root_cnode : cnode;
  root_tcb : tcb;
  ut_slot : slot;  (** large untyped for further allocations *)
}

exception Boot_failure of string

val root_cnode_bits : int
val root_guard_bits : int

val cptr : int -> int
(** Capability address of root CNode slot [i]. *)

val boot : ?cpu:Hw.Cpu.t -> ?cpu_id:int -> ?root_priority:int -> Build.t -> env
(** [cpu_id] (default 0) is forwarded to {!Kernel.create}: every thread
    the booted system creates is pinned to that core. *)

val ut_cptr : int
val root_cnode_cptr : int
val root_tcb_cptr : int
val first_free_slot : int

val retype_syscall : env -> obj_type -> count:int -> dest:int -> int list
(** Retype via the real system-call path into root CNode slots starting at
    [dest]; returns the new capabilities' addresses.
    @raise Boot_failure on error. *)

val spawn_thread : env -> priority:int -> dest:int -> tcb
(** A new thread sharing the root cspace (initially inactive). *)

val make_runnable : env -> tcb -> unit
val spawn_endpoint : env -> dest:int -> endpoint
val spawn_notification : env -> dest:int -> notification
