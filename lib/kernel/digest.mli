(** Canonical rendering of the scheduler-independent kernel state.

    The digest is a deterministic text rendering of every live object,
    root slot and capability refcount, sorted by object id.  Scheduler
    bookkeeping — run queues, [in_run_queue] flags, memoised lowest-mapped
    hints — is excluded: it is performance state, not semantics, and
    differs across scheduler variants by design.  Two kernel states with
    the same digest are indistinguishable to user level.

    Shared by lib/inject (differential final-state oracle), lib/explore
    (schedule deduplication) and lib/sim (violation forensics). *)

val of_kernel : Kernel.t -> string
(** Render the canonical state.  Insensitive to hash-table iteration
    order and to the order of the object registry. *)

val abort_scan_len : Ktypes.endpoint -> int
(** Remaining nodes in an in-progress badged abort: cursor to the
    end-of-queue marker captured when the abort began (also the
    badged-abort progress measure). *)
