(* Minimal root-task bootstrap, shared by tests, examples and benchmarks.

   Builds the initial capability environment the way seL4's boot protocol
   does: a root untyped, a root CNode retyped out of it, and a root thread
   whose cspace resolves a 32-bit cap address in a single level (guard of
   24 zero bits + 8 radix bits).  All objects are created through the real
   retype path so that boot-time state satisfies the invariants. *)

open Ktypes

type env = {
  k : Kernel.t;
  root_cnode : cnode;
  root_tcb : tcb;
  ut_slot : slot;  (* large untyped for further allocations *)
}

let root_cnode_bits = 8
let root_guard_bits = 32 - root_cnode_bits

(* Capability address of root CNode slot [i] under the standard guard. *)
let cptr i = i

exception Boot_failure of string

let retype_now env_k ~ut_slot obj_type ~count ~dest_slots =
  match
    Untyped_ops.retype (Kernel.ctx env_k)
      ~fresh_id:(fun () -> Kernel.fresh_id env_k)
      ~register:(Kernel.register env_k) ~ut_slot obj_type ~count ~dest_slots
  with
  | Untyped_ops.Done caps -> caps
  | Untyped_ops.Preempted -> raise (Boot_failure "retype preempted at boot")
  | Untyped_ops.Error e ->
      raise (Boot_failure (Fmt.to_to_string Untyped_ops.pp_error e))

let boot ?cpu ?cpu_id ?(root_priority = 100) (build : Build.t) =
  let k = Kernel.create ?cpu ?cpu_id build in
  let ut_slot = Kernel.boot_untyped k ~size_bits:26 (* 64 MiB *) in
  (* Root CNode. *)
  let cnode_dest = Kernel.new_root_slot k in
  let root_cnode =
    match
      retype_now k ~ut_slot (Cnode_object root_cnode_bits) ~count:1
        ~dest_slots:[ cnode_dest ]
    with
    | [ Cnode_cap { cnode; _ } ] -> cnode
    | _ -> raise (Boot_failure "no cnode")
  in
  (* Re-guard the root cnode cap so one level consumes the full word. *)
  cnode_dest.cap <-
    Cnode_cap { cnode = root_cnode; guard = 0; guard_bits = root_guard_bits };
  (* Root TCB. *)
  let tcb_dest = Kernel.new_root_slot k in
  let root_tcb =
    match retype_now k ~ut_slot Tcb_object ~count:1 ~dest_slots:[ tcb_dest ] with
    | [ Tcb_cap tcb ] -> tcb
    | _ -> raise (Boot_failure "no tcb")
  in
  root_tcb.priority <- root_priority;
  root_tcb.cspace_root <- cnode_dest.cap;
  root_tcb.state <- Running;
  (Kernel.switch_to k root_tcb : unit);
  (* Give the root task its own untyped and cnode caps inside its cspace,
     so syscalls can name them. *)
  root_cnode.cn_slots.(0).cap <- ut_slot.cap;
  Kernel.incref k ut_slot.cap;
  Cdt.insert_child (Kernel.ctx k) ~parent:ut_slot ~child:root_cnode.cn_slots.(0);
  root_cnode.cn_slots.(1).cap <- cnode_dest.cap;
  Kernel.incref k cnode_dest.cap;
  Cdt.insert_child (Kernel.ctx k) ~parent:cnode_dest
    ~child:root_cnode.cn_slots.(1);
  root_cnode.cn_slots.(2).cap <- Tcb_cap root_tcb;
  Kernel.incref k (Tcb_cap root_tcb);
  Cdt.insert_child (Kernel.ctx k) ~parent:tcb_dest ~child:root_cnode.cn_slots.(2);
  { k; root_cnode; root_tcb; ut_slot }

(* Slot indices 0-2 are reserved by [boot]. *)
let ut_cptr = cptr 0
let root_cnode_cptr = cptr 1
let root_tcb_cptr = cptr 2
let first_free_slot = 3

(* Convenience: retype via the real syscall path into root cnode slots
   starting at [dest]; returns the created caps' cptrs. *)
let retype_syscall env obj_type ~count ~dest =
  let dest_slots =
    List.init count (fun i -> env.root_cnode.cn_slots.(dest + i))
  in
  match
    Kernel.run_to_completion env.k
      (Kernel.Ev_invoke
         (Kernel.Inv_retype { ut = ut_cptr; obj_type; count; dest_slots }))
  with
  | Kernel.Completed -> List.init count (fun i -> cptr (dest + i))
  | Kernel.Preempted -> raise (Boot_failure "retype did not complete")
  | Kernel.Failed e -> raise (Boot_failure e)

(* Create an extra thread sharing the root cspace. *)
let spawn_thread env ~priority ~dest =
  let cptrs = retype_syscall env Tcb_object ~count:1 ~dest in
  let tcb =
    match env.root_cnode.cn_slots.(dest).cap with
    | Tcb_cap tcb -> tcb
    | _ -> raise (Boot_failure "spawn: no tcb")
  in
  tcb.priority <- priority;
  tcb.cspace_root <- env.root_tcb.cspace_root;
  ignore cptrs;
  tcb

let make_runnable env tcb =
  if not (Ktypes.is_runnable tcb) then begin
    tcb.state <- Running;
    Sched.make_runnable (Kernel.ctx env.k) env.k.Kernel.sched tcb
  end

(* Create an endpoint in root cnode slot [dest]. *)
let spawn_endpoint env ~dest =
  ignore (retype_syscall env Endpoint_object ~count:1 ~dest);
  match env.root_cnode.cn_slots.(dest).cap with
  | Endpoint_cap { ep; _ } -> ep
  | _ -> raise (Boot_failure "spawn: no endpoint")

(* Create a notification in root cnode slot [dest]. *)
let spawn_notification env ~dest =
  ignore (retype_syscall env Notification_object ~count:1 ~dest);
  match env.root_cnode.cn_slots.(dest).cap with
  | Notification_cap { ntfn; _ } -> ntfn
  | _ -> raise (Boot_failure "spawn: no notification")
