(* Kernel object constructors.

   Objects are created at aligned simulated-physical addresses (all seL4
   objects are aligned to their size — one of the proof invariants the
   checker validates) and start "dirty": their clearing progress is zero
   and must reach the full size before the object becomes visible to the
   rest of the kernel (Section 3.5). *)

open Ktypes

let make_slot ?cnode ~index () =
  {
    sl_cnode = cnode;
    sl_index = index;
    cap = Null_cap;
    cdt_parent = None;
    cdt_first_child = None;
    cdt_prev = None;
    cdt_next = None;
  }

let make_tcb ~id ~addr ~priority =
  {
    tcb_id = id;
    tcb_addr = addr;
    state = Inactive;
    priority;
    cspace_root = Null_cap;
    vspace_root = Null_cap;
    fault_handler_cptr = None;
    regs = Array.make Costs.max_msg_len 0;
    sched_next = None;
    sched_prev = None;
    in_run_queue = false;
    tcb_affinity = 0;
    ep_next = None;
    ep_prev = None;
    ep_badge = 0;
    ep_can_grant = false;
    ep_is_call = false;
    ep_msg_len = 0;
    caller = None;
    reply_target = None;
    recv_slot = None;
    restart_syscall = false;
    tcb_cleared = 0;
  }

let make_endpoint ~id ~addr =
  {
    ep_id = id;
    ep_addr = addr;
    ep_queue_kind = Ep_idle;
    ep_queue = { head = None; tail = None };
    ep_active = true;
    ep_abort = None;
    ep_cleared = 0;
  }

let make_notification ~id ~addr =
  {
    ntfn_id = id;
    ntfn_addr = addr;
    ntfn_word = 0;
    ntfn_queue = { head = None; tail = None };
    ntfn_active = true;
    ntfn_cleared = 0;
  }

let make_cnode ~id ~addr ~bits =
  (* Slots point back at their cnode, so the array is filled in a second
     step. *)
  let cnode =
    { cn_id = id; cn_addr = addr; cn_bits = bits; cn_slots = [||]; cn_cleared = 0 }
  in
  cnode.cn_slots <-
    Array.init (1 lsl bits) (fun index -> make_slot ~cnode ~index ());
  cnode

let make_untyped ~id ~addr ~size_bits =
  {
    ut_id = id;
    ut_addr = addr;
    ut_size_bits = size_bits;
    ut_watermark = 0;
    ut_creating = None;
  }

let make_frame ~id ~addr ~size_bits =
  { f_id = id; f_addr = addr; f_size_bits = size_bits; f_cleared = 0 }

let make_page_table ~id ~addr =
  {
    pt_id = id;
    pt_addr = addr;
    pt_entries = Array.make pt_entries_count Pte_invalid;
    pt_shadow = Array.make pt_entries_count None;
    pt_lowest_mapped = 0;
    pt_mapped_in = None;
    pt_cleared = 0;
  }

let make_page_directory ~id ~addr =
  {
    pd_id = id;
    pd_addr = addr;
    pd_entries = Array.make pd_entries_count Pde_invalid;
    pd_shadow = Array.make pd_entries_count None;
    pd_asid = None;
    pd_kernel_mapped = false;
    pd_lowest_mapped = 0;
    pd_cleared = 0;
  }

let make_asid_pool ~id ~addr =
  {
    ap_id = id;
    ap_addr = addr;
    ap_entries = Array.make asid_pool_size None;
    ap_cleared = 0;
  }

let addr_of = function
  | Any_tcb t -> t.tcb_addr
  | Any_endpoint e -> e.ep_addr
  | Any_notification n -> n.ntfn_addr
  | Any_cnode c -> c.cn_addr
  | Any_untyped u -> u.ut_addr
  | Any_frame f -> f.f_addr
  | Any_page_table pt -> pt.pt_addr
  | Any_page_directory pd -> pd.pd_addr
  | Any_asid_pool p -> p.ap_addr

let size_of = function
  | Any_tcb _ -> obj_size_bytes Tcb_object
  | Any_endpoint _ -> obj_size_bytes Endpoint_object
  | Any_notification _ -> obj_size_bytes Notification_object
  | Any_cnode c -> obj_size_bytes (Cnode_object c.cn_bits)
  | Any_untyped u -> obj_size_bytes (Untyped_object u.ut_size_bits)
  | Any_frame f -> obj_size_bytes (Frame_object f.f_size_bits)
  | Any_page_table _ -> obj_size_bytes Page_table_object
  | Any_page_directory _ -> obj_size_bytes Page_directory_object
  | Any_asid_pool _ -> 4 * asid_pool_size

let id_of = function
  | Any_tcb t -> t.tcb_id
  | Any_endpoint e -> e.ep_id
  | Any_notification n -> n.ntfn_id
  | Any_cnode c -> c.cn_id
  | Any_untyped u -> u.ut_id
  | Any_frame f -> f.f_id
  | Any_page_table pt -> pt.pt_id
  | Any_page_directory pd -> pd.pd_id
  | Any_asid_pool p -> p.ap_id

(* Clearing progress accessors (Section 3.5: progress lives in the
   object). *)
let cleared_of = function
  | Any_frame f -> f.f_cleared
  | Any_cnode c -> c.cn_cleared
  | Any_page_table pt -> pt.pt_cleared
  | Any_page_directory pd -> pd.pd_cleared
  | Any_tcb t -> t.tcb_cleared
  | Any_endpoint e -> e.ep_cleared
  | Any_notification n -> n.ntfn_cleared
  | Any_asid_pool p -> p.ap_cleared
  (* Untyped memory is handed out uncleared; its children are cleared when
     they in turn are retyped (the seL4 allocation model). *)
  | Any_untyped u -> obj_size_bytes (Untyped_object u.ut_size_bits)

let set_cleared obj bytes =
  match obj with
  | Any_frame f -> f.f_cleared <- bytes
  | Any_cnode c -> c.cn_cleared <- bytes
  | Any_page_table pt -> pt.pt_cleared <- bytes
  | Any_page_directory pd -> pd.pd_cleared <- bytes
  | Any_tcb t -> t.tcb_cleared <- bytes
  | Any_endpoint e -> e.ep_cleared <- bytes
  | Any_notification n -> n.ntfn_cleared <- bytes
  | Any_asid_pool p -> p.ap_cleared <- bytes
  | Any_untyped _ -> ()

let pp ppf obj =
  let kind =
    match obj with
    | Any_tcb _ -> "tcb"
    | Any_endpoint _ -> "ep"
    | Any_notification _ -> "ntfn"
    | Any_cnode _ -> "cnode"
    | Any_untyped _ -> "untyped"
    | Any_frame _ -> "frame"
    | Any_page_table _ -> "pt"
    | Any_page_directory _ -> "pd"
    | Any_asid_pool _ -> "asid-pool"
  in
  Fmt.pf ppf "%s%d@%#x" kind (id_of obj) (addr_of obj)
