(* Intrusive doubly-linked endpoint wait queues.

   Enqueue and dequeue are O(1) — the paper relies on this (Section 3.4:
   "Enqueuing and dequeuing threads are simple O(1) operations"); only
   whole-queue operations (deletion, badged abort) iterate, and those
   carry preemption points. *)

open Ktypes

let enqueue ctx (ep : endpoint) tcb =
  if Ctx.tracing ctx then
    Ctx.emit ctx (Obs.Trace.Ep_enqueue { ep = ep.ep_id; tcb = tcb.tcb_id });
  Ctx.exec ctx "endpoint_queue" Costs.ep_enqueue_instrs;
  Ctx.store ctx ep.ep_addr;
  Ctx.store ctx tcb.tcb_addr;
  assert (tcb.ep_next = None && tcb.ep_prev = None);
  let q = ep.ep_queue in
  match q.tail with
  | None ->
      q.head <- Some tcb;
      q.tail <- Some tcb
  | Some old_tail ->
      Ctx.store ctx old_tail.tcb_addr;
      old_tail.ep_next <- Some tcb;
      tcb.ep_prev <- Some old_tail;
      q.tail <- Some tcb

let dequeue ctx (ep : endpoint) tcb =
  if Ctx.tracing ctx then
    Ctx.emit ctx (Obs.Trace.Ep_dequeue { ep = ep.ep_id; tcb = tcb.tcb_id });
  Ctx.exec ctx "endpoint_queue" Costs.ep_dequeue_instrs;
  Ctx.store ctx ep.ep_addr;
  Ctx.store ctx tcb.tcb_addr;
  (* Keep any in-flight badged-abort cursor valid: if it points at the
     thread leaving the queue, advance (or retreat the end marker).  This
     is part of what makes the Section 3.4 resume state safe against
     concurrent queue surgery. *)
  (match ep.ep_abort with
  | Some progress ->
      (match progress.ab_cursor with
      | Some c when c == tcb -> progress.ab_cursor <- tcb.ep_next
      | _ -> ());
      (match progress.ab_last with
      | Some l when l == tcb -> progress.ab_last <- tcb.ep_prev
      | _ -> ())
  | None -> ());
  let q = ep.ep_queue in
  (match tcb.ep_prev with
  | None -> q.head <- tcb.ep_next
  | Some prev ->
      Ctx.store ctx prev.tcb_addr;
      prev.ep_next <- tcb.ep_next);
  (match tcb.ep_next with
  | None -> q.tail <- tcb.ep_prev
  | Some next ->
      Ctx.store ctx next.tcb_addr;
      next.ep_prev <- tcb.ep_prev);
  tcb.ep_prev <- None;
  tcb.ep_next <- None;
  if q.head = None then ep.ep_queue_kind <- Ep_idle

let pop ctx (ep : endpoint) =
  match ep.ep_queue.head with
  | None -> None
  | Some tcb ->
      dequeue ctx ep tcb;
      Some tcb

let is_empty (ep : endpoint) = ep.ep_queue.head = None

let to_list (ep : endpoint) =
  let rec walk acc = function
    | None -> List.rev acc
    | Some tcb -> walk (tcb :: acc) tcb.ep_next
  in
  walk [] ep.ep_queue.head

let length ep = List.length (to_list ep)
