(* Execution context: how the kernel charges its work to the hardware
   model, and how it observes pending interrupts at preemption points.

   With [cpu = None] the kernel runs uninstrumented (fast, for functional
   tests); with a CPU attached, every instruction, load, store and branch
   goes through the cache/memory hierarchy and accumulates cycles. *)

(* Interrupt state is int-encoded: [irq_arrival = no_irq] (a negative
   sentinel) means no interrupt pending, and armed timers live in a
   preallocated int array compacted in place.  The soak simulator polls
   [irq_pending] at every preemption point and kernel exit across hundreds
   of millions of entries; option boxes and timer lists here dominate its
   allocation profile. *)
let no_irq = -1

type t = {
  cpu : Hw.Cpu.t option;
  build : Build.t;
  mutable irq_arrival : int;
      (* Cycle at which the earliest still-pending interrupt arrived;
         [no_irq] when no interrupt is pending.  Set by the harness,
         cleared when the kernel takes the interrupt. *)
  mutable timer_buf : int array;
      (* Future interrupts: each becomes pending when the cycle counter
         reaches it.  Lets tests, benchmarks and the soak simulator fire
         interrupts in the middle of long-running kernel operations; the
         kernel tracks which line each timer belongs to.  Only the first
         [timer_count] slots are live. *)
  mutable timer_count : int;
  mutable irq_latency_worst : int;
  mutable irq_latency_last : int;
  mutable preempt_count : int;  (* preemption points taken (not checks) *)
  mutable preempt_polls : int;  (* preemption points polled (taken or not) *)
  mutable on_preempt_poll : (int -> bool) option;
      (* Fault-injection hook: called with the 1-based poll index at every
         preemption-point poll, *before* the pending check.  Returning
         [true] asserts an interrupt at exactly this poll — the mechanism
         the injection campaigns use to hit the k-th preemption point
         deterministically, independent of cycle counts.  Install via
         {!set_preempt_poll_hook}, which refuses to overwrite a live
         hook. *)
  mutable on_access : (int -> int -> bool -> unit) option;
      (* Access-recorder hook: called with [(addr, bytes, is_write)] for
         every charged data access, before the cache model (and even with
         no CPU attached).  The footprint-audit mode of the race analyser
         uses it to check declared read/write sets against reality. *)
  region_names : string array;
      (* Physical-equality memo over {!Layout.code}: [exec]/[branch] call
         sites pass string literals, so a pointer scan resolves the region
         without hashing the name on every charge.  Slots beyond
         [region_count] are unused; overflow falls back to the hashed
         lookup. *)
  region_memo : Layout.code_region array;
  mutable region_count : int;
}

let region_memo_cap = 64

let create ?cpu build =
  {
    cpu;
    build;
    irq_arrival = no_irq;
    timer_buf = Array.make 8 0;
    timer_count = 0;
    irq_latency_worst = 0;
    irq_latency_last = 0;
    preempt_count = 0;
    preempt_polls = 0;
    on_preempt_poll = None;
    on_access = None;
    region_names = Array.make region_memo_cap "";
    region_memo = Array.make region_memo_cap (snd (List.hd Layout.regions));
    region_count = 0;
  }

(* Resolve a region name by pointer comparison against previously seen
   names before falling back to the hashed lookup.  Call sites pass
   literals, so after warm-up every charge resolves in a few compares. *)
let region_of t name =
  let n = t.region_count in
  let names = t.region_names in
  let i = ref 0 in
  while !i < n && Array.unsafe_get names !i != name do
    incr i
  done;
  if !i < n then Array.unsafe_get t.region_memo !i
  else begin
    let r = Layout.code name in
    if n < region_memo_cap then begin
      names.(n) <- name;
      t.region_memo.(n) <- r;
      t.region_count <- n + 1
    end;
    r
  end

let cycles t = match t.cpu with Some cpu -> Hw.Cpu.cycles cpu | None -> 0

(* Emit a structured trace event (no-op without a CPU or without an
   attached buffer).  Emission charges nothing: tracing must never change
   the cycle counts it observes. *)
let emit t kind = match t.cpu with Some cpu -> Hw.Cpu.emit cpu kind | None -> ()

(* Emission sites on hot paths guard on this before building the event:
   the [Obs.Trace.kind] argument would otherwise heap-allocate per call
   even with no buffer attached. *)
let tracing t = match t.cpu with Some cpu -> Hw.Cpu.tracing cpu | None -> false

(* Charge [count] instructions from the code region [name].  The region's
   base gives the fetch addresses. *)
let exec t name count =
  match t.cpu with
  | None -> ()
  | Some cpu ->
      let region = region_of t name in
      Hw.Cpu.exec cpu ~base:region.Layout.base ~count

(* Hook installers: refuse to silently replace a live hook.  Two engines
   (inject campaign, audit recorder, explorer) composing over one context
   would otherwise drop each other's instrumentation without a trace. *)

let set_preempt_poll_hook t hook =
  (match (t.on_preempt_poll, hook) with
  | Some _, Some _ ->
      invalid_arg
        "Ctx.set_preempt_poll_hook: a preempt-poll hook is already \
         installed (clear it with None first)"
  | _ -> ());
  t.on_preempt_poll <- hook

let set_access_hook t hook =
  (match (t.on_access, hook) with
  | Some _, Some _ ->
      invalid_arg
        "Ctx.set_access_hook: an access hook is already installed (clear \
         it with None first)"
  | _ -> ());
  t.on_access <- hook

(* The recorder check is one field load and a compare on the soak hot
   path; the call only happens with an audit attached. *)
let[@inline] note_access t addr bytes write =
  match t.on_access with None -> () | Some f -> f addr bytes write

let load t addr =
  note_access t addr 4 false;
  match t.cpu with None -> () | Some cpu -> Hw.Cpu.load cpu addr

let store t addr =
  note_access t addr 4 true;
  match t.cpu with None -> () | Some cpu -> Hw.Cpu.store cpu addr

let branch t name ~taken =
  match t.cpu with
  | None -> ()
  | Some cpu ->
      let region = region_of t name in
      Hw.Cpu.branch cpu ~pc:region.Layout.base ~taken

(* Bulk store over [bytes] starting at [addr]: one store per cache line
   (write-allocate), as used by object clearing and the kernel-mapping
   copy. *)
let store_block t addr bytes =
  note_access t addr bytes true;
  match t.cpu with
  | None -> ()
  | Some cpu ->
      let line = (Hw.Cpu.config cpu).Hw.Config.l1_line in
      let lines = (bytes + line - 1) / line in
      for i = 0 to lines - 1 do
        Hw.Cpu.store cpu (addr + (i * line))
      done

let load_block t addr bytes =
  note_access t addr bytes false;
  match t.cpu with
  | None -> ()
  | Some cpu ->
      let line = (Hw.Cpu.config cpu).Hw.Config.l1_line in
      let lines = (bytes + line - 1) / line in
      for i = 0 to lines - 1 do
        Hw.Cpu.load cpu (addr + (i * line))
      done

(* --- interrupts and preemption points --- *)

let raise_irq t = if t.irq_arrival = no_irq then t.irq_arrival <- cycles t

let schedule_irq_at t cycle =
  (if t.timer_count = Array.length t.timer_buf then begin
     let bigger = Array.make (2 * Array.length t.timer_buf) 0 in
     Array.blit t.timer_buf 0 bigger 0 t.timer_count;
     t.timer_buf <- bigger
   end);
  t.timer_buf.(t.timer_count) <- cycle;
  t.timer_count <- t.timer_count + 1

(* Promote expired timers into the pending interrupt.  The arrival time is
   the earliest expired scheduled cycle, so response latency is measured
   from the moment the first (virtual) device asserted its line;
   per-line arrival accounting is the kernel's job.  Live timers are
   compacted in place, preserving their relative order. *)
let refresh t =
  if t.timer_count > 0 then begin
    let now = cycles t in
    let earliest = ref max_int in
    let kept = ref 0 in
    for i = 0 to t.timer_count - 1 do
      let c = t.timer_buf.(i) in
      if now >= c then begin
        if c < !earliest then earliest := c
      end
      else begin
        t.timer_buf.(!kept) <- c;
        incr kept
      end
    done;
    if !earliest < max_int then begin
      t.timer_count <- !kept;
      if t.irq_arrival = no_irq || t.irq_arrival > !earliest then
        t.irq_arrival <- !earliest
    end
  end

let irq_pending t =
  refresh t;
  t.irq_arrival <> no_irq

(* Called on the interrupt-dispatch path: record the response latency.
   Returns it so the kernel's interrupt handler can attribute the delivery
   in the event trace. *)
let note_irq_taken t =
  if t.irq_arrival = no_irq then None
  else begin
    let latency = cycles t - t.irq_arrival in
    t.irq_latency_last <- latency;
    if latency > t.irq_latency_worst then t.irq_latency_worst <- latency;
    t.irq_arrival <- no_irq;
    Some latency
  end

(* A preemption point: polls the pending flag (charging the check) and
   reports whether the current long-running operation must give way.
   Returns [false] always when the build has preemption points disabled —
   the "before" kernel of Table 2. *)
let preemption_point t =
  exec t "preempt_check" Costs.preempt_check_instrs;
  load t Layout.irq_pending_word;
  t.preempt_polls <- t.preempt_polls + 1;
  (match t.on_preempt_poll with
  | Some hook -> if hook t.preempt_polls then raise_irq t
  | None -> ());
  let taken =
    if t.build.Build.preemption_points && irq_pending t then begin
      t.preempt_count <- t.preempt_count + 1;
      true
    end
    else false
  in
  if tracing t then emit t (Obs.Trace.Preempt_point { taken });
  taken

let worst_irq_latency t = t.irq_latency_worst
let last_irq_latency t = t.irq_latency_last
