(* Execution context: how the kernel charges its work to the hardware
   model, and how it observes pending interrupts at preemption points.

   With [cpu = None] the kernel runs uninstrumented (fast, for functional
   tests); with a CPU attached, every instruction, load, store and branch
   goes through the cache/memory hierarchy and accumulates cycles. *)

type t = {
  cpu : Hw.Cpu.t option;
  build : Build.t;
  mutable irq_arrival : int option;
      (* Cycle at which the earliest still-pending interrupt arrived;
         [None] when no interrupt is pending.  Set by the harness, cleared
         when the kernel takes the interrupt. *)
  mutable irq_timers : int list;
      (* Future interrupts: each becomes pending when the cycle counter
         reaches it.  Lets tests, benchmarks and the soak simulator fire
         interrupts in the middle of long-running kernel operations; the
         kernel tracks which line each timer belongs to. *)
  mutable irq_latency_worst : int;
  mutable irq_latency_last : int;
  mutable preempt_count : int;  (* preemption points taken (not checks) *)
  mutable preempt_polls : int;  (* preemption points polled (taken or not) *)
  mutable on_preempt_poll : (int -> bool) option;
      (* Fault-injection hook: called with the 1-based poll index at every
         preemption-point poll, *before* the pending check.  Returning
         [true] asserts an interrupt at exactly this poll — the mechanism
         the injection campaigns use to hit the k-th preemption point
         deterministically, independent of cycle counts. *)
}

let create ?cpu build =
  {
    cpu;
    build;
    irq_arrival = None;
    irq_timers = [];
    irq_latency_worst = 0;
    irq_latency_last = 0;
    preempt_count = 0;
    preempt_polls = 0;
    on_preempt_poll = None;
  }

let cycles t = match t.cpu with Some cpu -> Hw.Cpu.cycles cpu | None -> 0

(* Emit a structured trace event (no-op without a CPU or without an
   attached buffer).  Emission charges nothing: tracing must never change
   the cycle counts it observes. *)
let emit t kind = match t.cpu with Some cpu -> Hw.Cpu.emit cpu kind | None -> ()

(* Charge [count] instructions from the code region [name].  The region's
   base gives the fetch addresses. *)
let exec t name count =
  match t.cpu with
  | None -> ()
  | Some cpu ->
      let region = Layout.code name in
      Hw.Cpu.exec cpu ~base:region.Layout.base ~count

let load t addr = match t.cpu with None -> () | Some cpu -> Hw.Cpu.load cpu addr
let store t addr = match t.cpu with None -> () | Some cpu -> Hw.Cpu.store cpu addr

let branch t name ~taken =
  match t.cpu with
  | None -> ()
  | Some cpu ->
      let region = Layout.code name in
      Hw.Cpu.branch cpu ~pc:region.Layout.base ~taken

(* Bulk store over [bytes] starting at [addr]: one store per cache line
   (write-allocate), as used by object clearing and the kernel-mapping
   copy. *)
let store_block t addr bytes =
  match t.cpu with
  | None -> ()
  | Some cpu ->
      let line = (Hw.Cpu.config cpu).Hw.Config.l1_line in
      let lines = (bytes + line - 1) / line in
      for i = 0 to lines - 1 do
        Hw.Cpu.store cpu (addr + (i * line))
      done

let load_block t addr bytes =
  match t.cpu with
  | None -> ()
  | Some cpu ->
      let line = (Hw.Cpu.config cpu).Hw.Config.l1_line in
      let lines = (bytes + line - 1) / line in
      for i = 0 to lines - 1 do
        Hw.Cpu.load cpu (addr + (i * line))
      done

(* --- interrupts and preemption points --- *)

let raise_irq t = if t.irq_arrival = None then t.irq_arrival <- Some (cycles t)

let schedule_irq_at t cycle = t.irq_timers <- t.irq_timers @ [ cycle ]

(* Promote expired timers into the pending interrupt.  The arrival time is
   the earliest expired scheduled cycle, so response latency is measured
   from the moment the first (virtual) device asserted its line;
   per-line arrival accounting is the kernel's job. *)
let refresh t =
  match t.irq_timers with
  | [] -> ()
  | timers ->
      let now = cycles t in
      let expired, live = List.partition (fun c -> now >= c) timers in
      if expired <> [] then begin
        t.irq_timers <- live;
        let earliest = List.fold_left min max_int expired in
        match t.irq_arrival with
        | Some a when a <= earliest -> ()
        | _ -> t.irq_arrival <- Some earliest
      end

let irq_pending t =
  refresh t;
  t.irq_arrival <> None

(* Called on the interrupt-dispatch path: record the response latency.
   Returns it so the kernel's interrupt handler can attribute the delivery
   in the event trace. *)
let note_irq_taken t =
  match t.irq_arrival with
  | None -> None
  | Some arrived ->
      let latency = cycles t - arrived in
      t.irq_latency_last <- latency;
      if latency > t.irq_latency_worst then t.irq_latency_worst <- latency;
      t.irq_arrival <- None;
      Some latency

(* A preemption point: polls the pending flag (charging the check) and
   reports whether the current long-running operation must give way.
   Returns [false] always when the build has preemption points disabled —
   the "before" kernel of Table 2. *)
let preemption_point t =
  exec t "preempt_check" Costs.preempt_check_instrs;
  load t Layout.irq_pending_word;
  t.preempt_polls <- t.preempt_polls + 1;
  (match t.on_preempt_poll with
  | Some hook -> if hook t.preempt_polls then raise_irq t
  | None -> ());
  let taken =
    if t.build.Build.preemption_points && irq_pending t then begin
      t.preempt_count <- t.preempt_count + 1;
      true
    end
    else false
  in
  emit t (Obs.Trace.Preempt_point { taken });
  taken

let worst_irq_latency t = t.irq_latency_worst
let last_irq_latency t = t.irq_latency_last
