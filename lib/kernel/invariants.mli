(** The proof-invariant catalogue of Section 2.2 as executable checks:
    queue well-formedness, the Benno-scheduling invariant, the bitmap
    mirror, object alignment and non-overlap, derivation-tree shape,
    shadow back-pointer consistency, kernel global mappings, and clearing
    completeness.  Property tests run {!check} after every kernel entry. *)

exception Violation of string

val check : Kernel.t -> unit
(** Run the whole catalogue.  @raise Violation at the first failure. *)

val check_result : Kernel.t -> (unit, string list) Result.t
(** Run the whole catalogue to the end and return {e every} violation
    (one per failing check, prefixed with the check's name), so failure
    reports show the complete damage rather than only the first hit. *)

val catalogue : (string * (Kernel.t -> unit)) list
(** The named checks, in the order {!check} runs them. *)

(** Individual checks, for targeted tests: *)

val check_run_queues : Kernel.t -> unit

val check_queue_membership : Kernel.t -> unit
(** A thread never appears on two run queues (nor twice in one). *)

val check_affinity : Kernel.t -> unit
(** SMP migration invariant: the current thread and every queued thread
    belong to this kernel's core ({!Kernel.t.cpu_id}); threads never
    migrate, so affinity is fixed at creation. *)

val check_endpoints : Kernel.t -> unit
val check_notifications : Kernel.t -> unit
val check_alignment : Kernel.t -> unit
val check_cdt : Kernel.t -> unit
val check_shadow_tables : Kernel.t -> unit
val check_kernel_mappings : Kernel.t -> unit
val check_cleared : Kernel.t -> unit
