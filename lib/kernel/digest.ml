(* Canonical rendering of the scheduler-independent kernel state.

   Run queues, [in_run_queue] flags and memoised lowest-mapped hints are
   excluded: lazy scheduling parks blocked threads in the queues by
   design, and the hints are performance state, not semantics.  Everything
   that survives into the digest is sorted by object id, never by
   hash-table or registry iteration order, so two states that differ only
   in bookkeeping order digest identically.

   Shared by the fault-injection campaign (differential final states), the
   schedule explorer (state deduplication) and the soak simulator
   (invariant-violation forensics). *)

open Ktypes

(* Length of the remaining abort scan: nodes from the cursor to the
   end-of-queue marker captured when the abort began. *)
let abort_scan_len (ep : endpoint) =
  match ep.ep_abort with
  | None -> 0
  | Some p ->
      let rec go n = function
        | None -> n
        | Some t -> (
            let n = n + 1 in
            match p.ab_last with
            | Some l when l == t -> n
            | _ -> go n t.ep_next)
      in
      go 0 p.ab_cursor

let of_kernel (k : Kernel.t) =
  let b = Buffer.create 1024 in
  let add fmt = Fmt.kstr (Buffer.add_string b) fmt in
  let slot_coord (s : slot) =
    match s.sl_cnode with
    | Some cn -> Fmt.str "cn%d[%d]" cn.cn_id s.sl_index
    | None -> Fmt.str "root[%d]" s.sl_index
  in
  let cap_str c = Fmt.to_to_string pp_cap c in
  let tcb_ids q =
    let rec go acc = function
      | None -> List.rev acc
      | Some t -> go (t.tcb_id :: acc) t.ep_next
    in
    go [] q.head
  in
  let obj_id = function
    | Any_tcb t -> t.tcb_id
    | Any_endpoint e -> e.ep_id
    | Any_notification n -> n.ntfn_id
    | Any_cnode c -> c.cn_id
    | Any_untyped u -> u.ut_id
    | Any_frame f -> f.f_id
    | Any_page_table pt -> pt.pt_id
    | Any_page_directory pd -> pd.pd_id
    | Any_asid_pool p -> p.ap_id
  in
  let objs =
    List.sort (fun a b -> compare (obj_id a) (obj_id b)) k.Kernel.objects
  in
  List.iter
    (fun obj ->
      match obj with
      | Any_tcb t ->
          add "tcb%d prio=%d state=%a restart=%b caller=%s@." t.tcb_id
            t.priority pp_thread_state t.state t.restart_syscall
            (match t.caller with Some c -> string_of_int c.tcb_id | None -> "-")
      | Any_endpoint e ->
          add "ep%d active=%b kind=%s q=%a abort=%s@." e.ep_id e.ep_active
            (match e.ep_queue_kind with
            | Ep_idle -> "idle"
            | Ep_senders -> "send"
            | Ep_receivers -> "recv")
            Fmt.(Dump.list int)
            (tcb_ids e.ep_queue)
            (match e.ep_abort with
            | None -> "-"
            | Some p ->
                Fmt.str "badge=%d remaining=%d" p.ab_badge (abort_scan_len e))
      | Any_notification n ->
          add "ntfn%d active=%b word=%d@." n.ntfn_id n.ntfn_active n.ntfn_word
      | Any_cnode c ->
          add "cnode%d bits=%d@." c.cn_id c.cn_bits;
          Array.iter
            (fun s ->
              if not (cap_is_null s.cap) then
                add "  %s = %s parent=%s@." (slot_coord s) (cap_str s.cap)
                  (match s.cdt_parent with
                  | Some p -> slot_coord p
                  | None -> "-"))
            c.cn_slots
      | Any_untyped u ->
          add "ut%d size=%d watermark=%d creating=%s@." u.ut_id u.ut_size_bits
            u.ut_watermark
            (match u.ut_creating with
            | None -> "-"
            | Some cr ->
                Fmt.str "cursor=%d/%d" cr.cr_cursor (List.length cr.cr_entries))
      | Any_frame f ->
          add "frame%d bits=%d cleared=%d@." f.f_id f.f_size_bits f.f_cleared
      | Any_page_table pt ->
          add "pt%d mapped_in=%s@." pt.pt_id
            (match pt.pt_mapped_in with
            | Some (pd, i) -> Fmt.str "pd%d[%d]" pd.pd_id i
            | None -> "-");
          for j = 0 to pt_entries_count - 1 do
            (match pt.pt_entries.(j) with
            | Pte_invalid -> ()
            | Pte_frame f -> add "  pte[%d]=frame%d@." j f.f_id);
            match pt.pt_shadow.(j) with
            | Some s -> add "  pts[%d]=%s@." j (slot_coord s)
            | None -> ()
          done
      | Any_page_directory pd ->
          add "pd%d asid=%s kernel=%b@." pd.pd_id
            (match pd.pd_asid with Some a -> string_of_int a | None -> "-")
            pd.pd_kernel_mapped;
          for i = 0 to kernel_pde_first - 1 do
            (match pd.pd_entries.(i) with
            | Pde_invalid | Pde_kernel -> ()
            | Pde_section f -> add "  pde[%d]=section:frame%d@." i f.f_id
            | Pde_page_table pt -> add "  pde[%d]=pt%d@." i pt.pt_id);
            match pd.pd_shadow.(i) with
            | Some s -> add "  pds[%d]=%s@." i (slot_coord s)
            | None -> ()
          done
      | Any_asid_pool p ->
          add "asid_pool%d@." p.ap_id;
          Array.iteri
            (fun i e ->
              match e with
              | Some pd -> add "  asid[%d]=pd%d@." i pd.pd_id
              | None -> ())
            p.ap_entries)
    objs;
  List.iter
    (fun s ->
      if not (cap_is_null s.cap) then
        add "rootslot[%d] = %s@." s.sl_index (cap_str s.cap))
    k.Kernel.root_slots;
  (* Live capability reference counts, sorted by object id: the Hashtbl's
     iteration order depends on insertion history and must never leak into
     the digest. *)
  let refs =
    Hashtbl.fold (fun id n acc -> (id, n) :: acc) k.Kernel.cap_refs []
    |> List.sort compare
  in
  List.iter (fun (id, n) -> if n > 0 then add "refs[%d] = %d@." id n) refs;
  Buffer.contents b
