(* The proof-invariant catalogue of Section 2.2, as executable checks.

   The paper's verified kernel maintains hundreds of invariants; the ones
   its modifications touch are checked here after every operation in the
   property tests:

   - well-formed data structures (doubly-linked lists with correct
     back-pointers, no cycles);
   - object alignment and non-overlap;
   - the new Benno-scheduling invariant: every thread in a run queue is
     runnable (Section 3.1), with the existing invariant that every
     runnable thread is queued or currently executing;
   - the bitmap invariant: the priority bitmap precisely mirrors run-queue
     occupancy (Section 3.2);
   - book-keeping: the derivation tree is well formed, and — in the shadow
     design — mapping entries and frame-cap back-pointers agree in both
     directions (Section 3.6);
   - page directories contain the global kernel mappings (Section 3.5). *)

open Ktypes

exception Violation of string

let fail fmt = Fmt.kstr (fun s -> raise (Violation s)) fmt

(* Walk an intrusive doubly-linked list checking back-pointers and
   detecting cycles; returns the member list. *)
let check_linked_list ~what ~head ~next ~prev =
  let rec walk seen node_prev node =
    match node with
    | None -> List.rev seen
    | Some tcb ->
        if List.memq tcb seen then fail "%s: cycle at tcb%d" what tcb.tcb_id;
        (match (prev tcb, node_prev) with
        | None, None -> ()
        | Some p, Some q when p == q -> ()
        | _ -> fail "%s: bad back-pointer at tcb%d" what tcb.tcb_id);
        walk (tcb :: seen) node (next tcb)
  in
  walk [] None head

let check_run_queues (k : Kernel.t) =
  let sched = k.Kernel.sched in
  for prio = 0 to Sched.num_priorities - 1 do
    let q = Sched.queue sched prio in
    let members =
      check_linked_list
        ~what:(Fmt.str "run queue %d" prio)
        ~head:q.head
        ~next:(fun tcb -> tcb.sched_next)
        ~prev:(fun tcb -> tcb.sched_prev)
    in
    (match (members, q.tail) with
    | [], None -> ()
    | [], Some _ -> fail "run queue %d: tail set on empty queue" prio
    | members, Some tail ->
        if not (List.nth members (List.length members - 1) == tail) then
          fail "run queue %d: tail mismatch" prio
    | _ :: _, None -> fail "run queue %d: missing tail" prio);
    List.iter
      (fun tcb ->
        if not tcb.in_run_queue then
          fail "tcb%d queued but not flagged" tcb.tcb_id;
        if tcb.priority <> prio then
          fail "tcb%d in queue %d but has priority %d" tcb.tcb_id prio
            tcb.priority)
      members;
    (* The bitmap mirrors queue occupancy exactly (Section 3.2). *)
    if k.Kernel.build.Build.sched = Build.Benno_bitmap then begin
      let bit = Sched.bitmap_bit_set sched prio in
      if bit <> (members <> []) then
        fail "bitmap bit for priority %d is %b but queue has %d members" prio
          bit (List.length members)
    end;
    (* The Benno invariant: all queued threads are runnable. *)
    (match k.Kernel.build.Build.sched with
    | Build.Benno | Build.Benno_bitmap ->
        List.iter
          (fun tcb ->
            if not (is_runnable tcb) then
              fail "Benno invariant: blocked tcb%d in run queue" tcb.tcb_id)
          members
    | Build.Lazy -> ())
  done;
  (* Existing invariant (all builds): every runnable thread is queued or
     currently executing. *)
  List.iter
    (fun obj ->
      match obj with
      | Any_tcb tcb ->
          if
            is_runnable tcb
            && (not tcb.in_run_queue)
            && (not (tcb == k.Kernel.current))
            && not (tcb == k.Kernel.idle)
          then
            fail "runnable tcb%d neither queued nor current" tcb.tcb_id
      | _ -> ())
    k.Kernel.objects

let check_notifications (k : Kernel.t) =
  List.iter
    (fun obj ->
      match obj with
      | Any_notification ntfn ->
          let members =
            check_linked_list
              ~what:(Fmt.str "ntfn%d queue" ntfn.ntfn_id)
              ~head:ntfn.ntfn_queue.head
              ~next:(fun tcb -> tcb.ep_next)
              ~prev:(fun tcb -> tcb.ep_prev)
          in
          (* A notification never holds both pending signals and blocked
             waiters. *)
          if ntfn.ntfn_word <> 0 && members <> [] then
            fail "ntfn%d: pending word with waiters queued" ntfn.ntfn_id;
          List.iter
            (fun tcb ->
              match tcb.state with
              | Blocked_on_notification n when n == ntfn -> ()
              | _ ->
                  fail "ntfn%d: queued tcb%d in state %a" ntfn.ntfn_id
                    tcb.tcb_id pp_thread_state tcb.state)
            members
      | _ -> ())
    k.Kernel.objects

let check_endpoints (k : Kernel.t) =
  List.iter
    (fun obj ->
      match obj with
      | Any_endpoint ep ->
          let members =
            check_linked_list
              ~what:(Fmt.str "ep%d queue" ep.ep_id)
              ~head:ep.ep_queue.head
              ~next:(fun tcb -> tcb.ep_next)
              ~prev:(fun tcb -> tcb.ep_prev)
          in
          (match (ep.ep_queue_kind, members) with
          | Ep_idle, _ :: _ -> fail "ep%d: idle but queue non-empty" ep.ep_id
          | (Ep_senders | Ep_receivers), [] ->
              fail "ep%d: kind set but queue empty" ep.ep_id
          | _ -> ());
          List.iter
            (fun tcb ->
              match (ep.ep_queue_kind, tcb.state) with
              | Ep_senders, Blocked_on_send ep' when ep' == ep -> ()
              | Ep_receivers, Blocked_on_receive ep' when ep' == ep -> ()
              | _ ->
                  fail "ep%d: queued tcb%d in state %a" ep.ep_id tcb.tcb_id
                    pp_thread_state tcb.state)
            members
      | _ -> ())
    k.Kernel.objects

let is_pow2 n = n > 0 && n land (n - 1) = 0

let check_alignment (k : Kernel.t) =
  List.iter
    (fun obj ->
      let addr = Objects.addr_of obj and size = Objects.size_of obj in
      if is_pow2 size && addr mod size <> 0 then
        fail "%a: misaligned (size %d)" Objects.pp obj size)
    k.Kernel.objects;
  (* Non-overlap: non-untyped objects must be pairwise disjoint (objects
     retyped out of an untyped live inside it, so untypeds are exempt from
     the pairing). *)
  let solid =
    List.filter_map
      (fun obj ->
        match obj with
        | Any_untyped _ -> None
        | _ -> Some (Objects.addr_of obj, Objects.size_of obj, obj))
      k.Kernel.objects
  in
  (* Sort on scalar keys only: kernel objects are cyclic, so polymorphic
     comparison must never reach them. *)
  let sorted =
    List.sort
      (fun (a1, s1, _) (a2, s2, _) -> compare (a1, s1) (a2, s2))
      solid
  in
  let rec scan = function
    | (a1, s1, o1) :: ((a2, _, o2) :: _ as rest) ->
        if a1 + s1 > a2 then
          fail "%a and %a overlap" Objects.pp o1 Objects.pp o2;
        scan rest
    | _ -> ()
  in
  scan sorted

let all_slots (k : Kernel.t) =
  k.Kernel.root_slots
  @ List.concat_map
      (fun obj ->
        match obj with
        | Any_cnode cn -> Array.to_list cn.cn_slots
        | _ -> [])
      k.Kernel.objects

let check_cdt (k : Kernel.t) =
  List.iter
    (fun slot ->
      if not (Cdt.check_well_formed slot) then
        fail "CDT ill-formed below slot %d" slot.sl_index;
      (* A slot participating in the tree must hold a capability. *)
      if
        cap_is_null slot.cap
        && (slot.cdt_parent <> None || slot.cdt_first_child <> None)
      then fail "empty slot %d threaded into the CDT" slot.sl_index)
    (all_slots k)

let check_shadow_tables (k : Kernel.t) =
  if k.Kernel.build.Build.vspace = Build.Shadow_tables then
    List.iter
      (fun obj ->
        match obj with
        | Any_page_table pt ->
            Array.iteri
              (fun j entry ->
                match (entry, pt.pt_shadow.(j)) with
                | Pte_invalid, Some _ ->
                    fail "pt%d[%d]: shadow without mapping" pt.pt_id j
                | Pte_frame _, None ->
                    fail "pt%d[%d]: mapping without shadow" pt.pt_id j
                | Pte_frame f, Some slot -> (
                    match slot.cap with
                    | Frame_cap fc ->
                        if not (fc.frame == f) then
                          fail "pt%d[%d]: shadow names wrong frame" pt.pt_id j;
                        (match fc.fc_mapping with
                        | Some { fm_vaddr; _ } ->
                            if Vspace.pt_index fm_vaddr <> j then
                              fail "pt%d[%d]: back-pointer vaddr mismatch"
                                pt.pt_id j
                        | None ->
                            fail "pt%d[%d]: mapped frame cap has no mapping"
                              pt.pt_id j)
                    | _ -> fail "pt%d[%d]: shadow points at non-frame" pt.pt_id j)
                | Pte_invalid, None -> ())
              pt.pt_entries
        | Any_frame _ -> ()
        | _ -> ())
      k.Kernel.objects

let check_kernel_mappings (k : Kernel.t) =
  List.iter
    (fun obj ->
      match obj with
      | Any_page_directory pd ->
          (* Invariant from Section 3.5: all page directories contain the
             global kernel mappings (established before the object becomes
             visible). *)
          if not pd.pd_kernel_mapped then
            fail "pd%d: kernel mappings missing" pd.pd_id;
          for i = kernel_pde_first to pd_entries_count - 1 do
            if pd.pd_entries.(i) <> Pde_kernel then
              fail "pd%d[%d]: kernel mapping clobbered" pd.pd_id i
          done
      | _ -> ())
    k.Kernel.objects

let check_cleared (k : Kernel.t) =
  List.iter
    (fun obj ->
      let size = Objects.size_of obj in
      match obj with
      | Any_frame _ | Any_page_table _ | Any_page_directory _ | Any_cnode _ ->
          let cleared = Objects.cleared_of obj in
          if cleared <> 0 && cleared < size then
            fail "%a: visible but only partially cleared (%d/%d)" Objects.pp
              obj cleared size
      | _ -> ())
    k.Kernel.objects

(* A thread is never on two run queues (nor twice in one): walk every
   queue and record each TCB's first home.  Double-enqueue corrupts both
   intrusive lists; this check names the offending thread instead of
   leaving the damage to surface as a cycle or bad back-pointer
   elsewhere.  Revisiting a TCB also bounds the walk, so a cyclic queue
   (reported precisely by [check_run_queues]) cannot hang this check. *)
let check_queue_membership (k : Kernel.t) =
  let seen = Hashtbl.create 64 in
  let sched = k.Kernel.sched in
  for prio = 0 to Sched.num_priorities - 1 do
    let q = Sched.queue sched prio in
    let rec walk = function
      | None -> ()
      | Some tcb -> (
          match Hashtbl.find_opt seen tcb.tcb_id with
          | Some first ->
              fail "tcb%d on two run queues (priorities %d and %d)" tcb.tcb_id
                first prio
          | None ->
              Hashtbl.add seen tcb.tcb_id prio;
              walk tcb.sched_next)
    in
    walk q.head
  done

(* Migration/affinity invariant (SMP model): threads never migrate, so a
   thread only executes on — and only queues on — the core it was
   created on.  Trivially satisfied on the single-core model (everything
   has affinity 0); the per-core kernels of the SMP soak give it teeth. *)
let check_affinity (k : Kernel.t) =
  let home = k.Kernel.cpu_id in
  let cur = k.Kernel.current in
  if cur.tcb_affinity <> home then
    fail "tcb%d (affinity %d) running on core %d" cur.tcb_id cur.tcb_affinity
      home;
  let sched = k.Kernel.sched in
  for prio = 0 to Sched.num_priorities - 1 do
    let q = Sched.queue sched prio in
    let rec walk seen = function
      | None -> ()
      | Some tcb ->
          (* A cyclic queue is [check_run_queues]'s violation to report;
             just bound the walk here. *)
          if List.memq tcb seen then ()
          else begin
            if tcb.tcb_affinity <> home then
              fail "tcb%d (affinity %d) queued on core %d" tcb.tcb_id
                tcb.tcb_affinity home;
            walk (tcb :: seen) tcb.sched_next
          end
    in
    walk [] q.head
  done

(* The catalogue, named for reporting. *)
let catalogue =
  [
    ("run_queues", check_run_queues);
    ("queue_membership", check_queue_membership);
    ("affinity", check_affinity);
    ("endpoints", check_endpoints);
    ("notifications", check_notifications);
    ("alignment", check_alignment);
    ("cdt", check_cdt);
    ("shadow_tables", check_shadow_tables);
    ("kernel_mappings", check_kernel_mappings);
    ("cleared", check_cleared);
  ]

(* Run the whole catalogue, stopping at the first violation. *)
let check (k : Kernel.t) = List.iter (fun (_, chk) -> chk k) catalogue

(* Run the whole catalogue to the end and report every violation (one per
   failing check), so injection failure reports show the complete damage
   rather than whichever invariant happens to be checked first. *)
let check_result k =
  let violations =
    List.filter_map
      (fun (name, chk) ->
        try
          chk k;
          None
        with Violation m -> Some (name ^ ": " ^ m))
      catalogue
  in
  match violations with [] -> Result.Ok () | vs -> Result.Error vs
