(* The microkernel: event-based, single kernel stack, interrupts disabled
   during kernel execution except at explicit preemption points.

   Every kernel entry runs to completion or to a preemption point.  A
   preempted operation saves its progress in the objects it manipulates
   (incremental consistency), marks the current thread's system call for
   restart, handles the pending interrupt, and returns — re-executing the
   original system call later continues the operation (Section 2.1:
   "a preempted operation is effectively a restartable system call"). *)

open Ktypes

type t = {
  ctx : Ctx.t;
  build : Build.t;
  cpu_id : int;
      (** the core this kernel instance runs on (SMP model); 0 on the
          single-core model *)
  sched : Sched.t;
  asids : Vspace.asid_state;
  idle : tcb;
  mutable current : tcb;
  mutable objects : any_object list;  (* registry, for the invariant checker *)
  mutable next_id : int;
  mutable phys_watermark : int;
  mutable next_root_slot : int;
  mutable root_slots : slot list;  (* harness-owned slots, for invariants *)
  cap_refs : (int, int) Hashtbl.t;  (* object id -> live cap count *)
  irq_handlers : cap option array;
  (* Interrupt state is int-encoded in preallocated arrays: the pending
     set is a FIFO ring (delivery order) shadowed by a membership bitmask,
     armed device timers live in parallel fire/line arrays compacted in
     place, and per-line assert stamps use a negative sentinel instead of
     an option box.  This sits on the soak simulator's per-entry hot path;
     the previous list/option encoding allocated on every raise, arm and
     poll. *)
  pending_buf : int array;  (* ring of raised, undelivered lines *)
  mutable pending_head : int;
  mutable pending_count : int;
  mutable pending_mask : int;  (* bit per line: membership in the ring *)
  mutable armed_fire : int array;
  mutable armed_line : int array;
      (* (fire cycle, line) device timers not yet expired, first
         [armed_count] slots live; promoted into the pending ring
         earliest-first once the cycle counter passes the fire cycle *)
  mutable armed_count : int;
  mutable scratch_fire : int array;
  mutable scratch_line : int array;  (* promote_armed expired-timer buffer *)
  irq_assert : int array;
      (* per-line cycle at which the pending assertion happened — the
         device's view — so each delivery's latency is measured from its
         own line's assert, not from the earliest of all pending lines;
         [no_assert] = none *)
  mutable irq_line_worst : int;
  mutable on_irq_deliver : (int -> int -> unit) option;
      (* observer hook: called with (line, latency) at every delivery *)
  mutable preempted_events : int;
  mutable syscall_restarts : int;
}

let num_irqs = 32
let timer_irq = 0
let no_assert = -1

(* --- pending-interrupt ring --- *)

let has_pending_irq t = t.pending_count > 0
let irq_is_pending t line = t.pending_mask land (1 lsl line) <> 0

(* Append [line] to the pending FIFO and stamp its assert cycle; the
   caller has already checked membership via the mask.  The ring never
   overflows: the mask bounds it at [num_irqs] distinct lines. *)
let pending_push t line ~asserted =
  t.pending_buf.((t.pending_head + t.pending_count) land (num_irqs - 1)) <- line;
  t.pending_count <- t.pending_count + 1;
  t.pending_mask <- t.pending_mask lor (1 lsl line);
  t.irq_assert.(line) <- asserted

let pending_pop t =
  let line = t.pending_buf.(t.pending_head) in
  t.pending_head <- (t.pending_head + 1) land (num_irqs - 1);
  t.pending_count <- t.pending_count - 1;
  t.pending_mask <- t.pending_mask land lnot (1 lsl line);
  line

(* The pending lines in delivery order (diagnostics and tests). *)
let pending_lines t =
  List.init t.pending_count (fun i ->
      t.pending_buf.((t.pending_head + i) land (num_irqs - 1)))

(* --- construction --- *)

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let register t obj =
  (* New threads inherit the creating kernel's core: the SMP model never
     migrates threads, so affinity is fixed at creation (the [affinity]
     invariant checks it stays that way). *)
  (match obj with Any_tcb tcb -> tcb.tcb_affinity <- t.cpu_id | _ -> ());
  t.objects <- obj :: t.objects;
  Hashtbl.replace t.cap_refs (Objects.id_of obj) 1

let unregister t obj =
  (* Compare by object id: [any_object] wrappers are re-boxed freely, so
     physical equality on the wrapper would never match. *)
  let id = Objects.id_of obj in
  t.objects <- List.filter (fun o -> Objects.id_of o <> id) t.objects;
  Hashtbl.remove t.cap_refs id

let create ?cpu ?(cpu_id = 0) (build : Build.t) =
  let ctx = Ctx.create ?cpu build in
  let idle = Objects.make_tcb ~id:0 ~addr:(Layout.data_base + 0x4000) ~priority:0 in
  idle.state <- Running;
  idle.tcb_affinity <- cpu_id;
  let t =
    {
      ctx;
      build;
      cpu_id;
      sched = Sched.create build ~idle;
      asids = Vspace.create_asid_state ();
      idle;
      current = idle;
      objects = [];
      next_id = 1;
      phys_watermark = 0x1000;
      next_root_slot = 0;
      root_slots = [];
      cap_refs = Hashtbl.create 64;
      irq_handlers = Array.make num_irqs None;
      pending_buf = Array.make num_irqs 0;
      pending_head = 0;
      pending_count = 0;
      pending_mask = 0;
      armed_fire = Array.make 8 0;
      armed_line = Array.make 8 0;
      armed_count = 0;
      scratch_fire = Array.make 8 0;
      scratch_line = Array.make 8 0;
      irq_assert = Array.make num_irqs no_assert;
      irq_line_worst = 0;
      on_irq_deliver = None;
      preempted_events = 0;
      syscall_restarts = 0;
    }
  in
  t

let ctx t = t.ctx
let current t = t.current
let cycles t = Ctx.cycles t.ctx

(* Root slots: capability storage owned by the initial task/harness,
   outside any CNode (boot caps live here). *)
let new_root_slot t =
  let index = t.next_root_slot in
  t.next_root_slot <- index + 1;
  let slot = Objects.make_slot ~index () in
  t.root_slots <- slot :: t.root_slots;
  slot

(* Carve a fresh untyped out of simulated physical memory (boot-time
   operation building the initial capability set). *)
let boot_untyped t ~size_bits =
  let size = 1 lsl size_bits in
  let addr = (t.phys_watermark + size - 1) / size * size in
  t.phys_watermark <- addr + size;
  assert (t.phys_watermark <= Layout.phys_bytes);
  let ut = Objects.make_untyped ~id:(fresh_id t) ~addr ~size_bits in
  register t (Any_untyped ut);
  let slot = new_root_slot t in
  slot.cap <- Untyped_cap ut;
  slot

(* --- capability accounting --- *)

let obj_of_cap = function
  | Tcb_cap tcb -> Some (Any_tcb tcb)
  | Endpoint_cap { ep; _ } -> Some (Any_endpoint ep)
  | Cnode_cap { cnode; _ } -> Some (Any_cnode cnode)
  | Untyped_cap ut -> Some (Any_untyped ut)
  | Frame_cap { frame; _ } -> Some (Any_frame frame)
  | Page_table_cap { pt; _ } -> Some (Any_page_table pt)
  | Page_directory_cap { pd; _ } -> Some (Any_page_directory pd)
  | Asid_pool_cap pool -> Some (Any_asid_pool pool)
  | Notification_cap { ntfn; _ } -> Some (Any_notification ntfn)
  | Null_cap | Reply_cap _ | Asid_control_cap | Irq_control_cap
  | Irq_handler_cap _ ->
      None

let incref t cap =
  match obj_of_cap cap with
  | None -> ()
  | Some obj ->
      let id = Objects.id_of obj in
      Hashtbl.replace t.cap_refs id
        (1 + try Hashtbl.find t.cap_refs id with Not_found -> 0)

let decref t cap =
  match obj_of_cap cap with
  | None -> false
  | Some obj -> (
      let id = Objects.id_of obj in
      match Hashtbl.find_opt t.cap_refs id with
      | Some n when n > 1 ->
          Hashtbl.replace t.cap_refs id (n - 1);
          false
      | Some _ -> true (* this was the final capability *)
      | None -> false)

(* --- thread state and scheduling --- *)

let set_state t tcb state =
  Ctx.exec t.ctx "set_thread_state" Costs.set_state_instrs;
  Ctx.store t.ctx tcb.tcb_addr;
  let was_runnable = is_runnable tcb in
  tcb.state <- state;
  if was_runnable && not (is_runnable tcb) then Sched.on_block t.ctx t.sched tcb

let switch_to t tcb =
  Ctx.exec t.ctx "context_switch" Costs.context_switch_instrs;
  Ctx.store t.ctx Layout.cur_thread_ptr;
  Ctx.load t.ctx tcb.tcb_addr;
  (* Under Benno scheduling the running thread is never in the run queue;
     under lazy scheduling it stays there — that is precisely the laziness
     whose cleanup cost Section 3.1 eliminates. *)
  (match t.build.Build.sched with
  | Build.Benno | Build.Benno_bitmap ->
      if tcb.in_run_queue then Sched.dequeue t.ctx t.sched tcb
  | Build.Lazy -> ());
  t.current <- tcb

(* Harness entry: force [tcb] onto the CPU as if the scheduler had picked
   it (models user-level context switches driven by the simulation). *)
let force_run t tcb =
  if not (t.current == tcb) then begin
    if is_runnable t.current && not (t.current == t.idle) then
      Sched.make_runnable t.ctx t.sched t.current;
    switch_to t tcb
  end

(* Pick the next thread and switch to it.  When the scheduler re-selects
   the current thread (it was re-queued by a timeslice rotation and is
   still the best choice), Benno builds must pull it back out of the
   queue — the running thread is never queued under Benno scheduling. *)
let reschedule t =
  let next = Sched.choose_thread t.ctx t.sched in
  if next == t.current then (
    match t.build.Build.sched with
    | Build.Benno | Build.Benno_bitmap ->
        if next.in_run_queue then Sched.dequeue t.ctx t.sched next
    | Build.Lazy -> ())
  else switch_to t next

(* A thread becomes runnable.  [direct] allows the Benno-style immediate
   switch when the woken thread can run now (Section 3.1). *)
let wake t ?(direct = true) tcb =
  set_state t tcb Running;
  let can_run_now = tcb.priority >= t.current.priority in
  if direct && can_run_now then begin
    (* Benno-style direct switch (Section 3.1): the woken thread runs
       immediately and is never queued.  The displaced thread, if still
       runnable, re-enters the run queue here — re-establishing the queue
       invariant at switch time.  Lazy scheduling took the same shortcut;
       the difference is what blocking left behind in the queues. *)
    if
      is_runnable t.current
      && (not (t.current == t.idle))
      && not (t.current == tcb)
    then Sched.make_runnable t.ctx t.sched t.current;
    switch_to t tcb
  end
  else Sched.make_runnable t.ctx t.sched tcb

(* --- IPC --- *)

let transfer_message t ~sender ~receiver ~msg_len ~badge =
  let words = min msg_len Costs.max_msg_len in
  Ctx.exec t.ctx "slowpath_ipc" (Costs.per_message_word_instrs * words);
  for i = 0 to words - 1 do
    Ctx.load t.ctx (sender.tcb_addr + 64 + (4 * i));
    Ctx.store t.ctx (receiver.tcb_addr + 64 + (4 * i));
    receiver.regs.(i) <- sender.regs.(i)
  done;
  (* Badge delivered in a register. *)
  if Costs.max_msg_len > 0 then receiver.regs.(0) <- receiver.regs.(0) land 0xffff;
  Ctx.store t.ctx (receiver.tcb_addr + 60);
  receiver.ep_badge <- badge

(* Transfer granted capabilities: each one costs a cspace decode on the
   sender side plus derivation-tree surgery; the first cap lands in the
   receiver's receive slot (as in seL4), the rest only charge their
   decode (they are diminished away). *)
let transfer_caps t ~sender ~receiver ~extra_caps =
  List.iteri
    (fun i cptr ->
      Ctx.exec t.ctx "transfer_caps" Costs.cap_transfer_instrs;
      match Cspace.resolve t.ctx ~root_cap:sender.cspace_root ~cptr with
      | Cspace.Error _ -> ()
      | Cspace.Ok_slot (src_slot, _) -> (
          match (i, receiver.recv_slot) with
          | 0, Some dest when cap_is_null dest.cap ->
              dest.cap <- src_slot.cap;
              incref t src_slot.cap;
              Cdt.insert_child t.ctx ~parent:src_slot ~child:dest
          | _ -> ()))
    extra_caps

(* Send on an endpoint.  Returns [false] if the sender blocked. *)
let send_ipc t ~(ep : endpoint) ~badge ~msg_len ~extra_caps ~can_grant ~is_call
    ~blocking ~sender =
  Ctx.exec t.ctx "slowpath_ipc" Costs.slowpath_ipc_instrs;
  Ctx.load t.ctx ep.ep_addr;
  match ep.ep_queue_kind with
  | Ep_receivers -> (
      match Ep_queue.pop t.ctx ep with
      | None -> assert false
      | Some receiver ->
          transfer_message t ~sender ~receiver ~msg_len ~badge;
          if can_grant && extra_caps <> [] then
            transfer_caps t ~sender ~receiver ~extra_caps;
          if is_call then begin
            set_state t sender Blocked_on_reply;
            receiver.caller <- Some sender;
            sender.reply_target <- Some receiver;
            Ctx.store t.ctx receiver.tcb_addr
          end;
          wake t receiver;
          true)
  | Ep_idle | Ep_senders ->
      if not blocking then true
      else begin
        set_state t sender (Blocked_on_send ep);
        sender.ep_badge <- badge;
        sender.ep_can_grant <- can_grant;
        sender.ep_is_call <- is_call;
        sender.ep_msg_len <- msg_len;
        ep.ep_queue_kind <- Ep_senders;
        Ep_queue.enqueue t.ctx ep sender;
        false
      end

(* Receive on an endpoint.  Returns [false] if the receiver blocked. *)
let recv_ipc t ~(ep : endpoint) ~receiver =
  Ctx.exec t.ctx "slowpath_ipc" Costs.slowpath_ipc_instrs;
  Ctx.load t.ctx ep.ep_addr;
  match ep.ep_queue_kind with
  | Ep_senders -> (
      match Ep_queue.pop t.ctx ep with
      | None -> assert false
      | Some sender ->
          transfer_message t ~sender ~receiver ~msg_len:sender.ep_msg_len
            ~badge:sender.ep_badge;
          if sender.ep_is_call then begin
            set_state t sender Blocked_on_reply;
            receiver.caller <- Some sender;
            sender.reply_target <- Some receiver
          end
          else wake t ~direct:false sender;
          true)
  | Ep_idle | Ep_receivers ->
      set_state t receiver (Blocked_on_receive ep);
      ep.ep_queue_kind <- Ep_receivers;
      Ep_queue.enqueue t.ctx ep receiver;
      false

(* Reply to our caller.  The replier continues into its receive phase
   (ReplyRecv is atomic), so the caller is made runnable without a direct
   switch; the scheduler picks it up when the replier blocks. *)
let do_reply t ~replier ~msg_len =
  match replier.caller with
  | None -> ()
  | Some caller ->
      replier.caller <- None;
      caller.reply_target <- None;
      transfer_message t ~sender:replier ~receiver:caller ~msg_len ~badge:0;
      wake t ~direct:false caller

(* The IPC fastpath (Section 6.1): an atomic call with a short message to
   an endpoint on which a receiver of eligible priority is already
   waiting.  200-250 cycles on the ARM1136; we charge the fastpath
   instruction budget plus the few cache touches it makes. *)
let fastpath_eligible t ~ep ~msg_len ~extra_caps =
  ep.ep_active
  && ep.ep_queue_kind = Ep_receivers
  && msg_len <= 4
  && extra_caps = []
  &&
  match ep.ep_queue.head with
  | Some receiver -> receiver.priority >= t.current.priority
  | None -> false

let fastpath_call t ~ep ~badge ~msg_len =
  Ctx.exec t.ctx "fastpath" Costs.fastpath_instrs;
  let sender = t.current in
  match Ep_queue.pop t.ctx ep with
  | None -> assert false
  | Some receiver ->
      for i = 0 to msg_len - 1 do
        receiver.regs.(i) <- sender.regs.(i)
      done;
      Ctx.load t.ctx sender.tcb_addr;
      Ctx.store t.ctx receiver.tcb_addr;
      receiver.ep_badge <- badge;
      sender.state <- Blocked_on_reply;
      receiver.caller <- Some sender;
      sender.reply_target <- Some receiver;
      receiver.state <- Running;
      (* Direct switch, bypassing the scheduler entirely. *)
      Ctx.store t.ctx Layout.cur_thread_ptr;
      t.current <- receiver

(* --- endpoint deletion (Section 3.3) and badged aborts (Section 3.4) --- *)

(* Abort all waiters: one dequeue per preemption point.  The endpoint is
   deactivated first so no new IPC can start — forward progress. *)
let delete_endpoint t (ep : endpoint) =
  Ctx.exec t.ctx "endpoint_delete" Costs.ep_dequeue_instrs;
  ep.ep_active <- false;
  Ctx.store t.ctx ep.ep_addr;
  let rec drain () =
    match Ep_queue.pop t.ctx ep with
    | None ->
        ep.ep_queue_kind <- Ep_idle;
        Vspace.Done
    | Some tcb ->
        (* The aborted thread restarts its IPC with an error at user
           level; kernel-side it simply becomes runnable again. *)
        wake t ~direct:false tcb;
        if Ctx.preemption_point t.ctx then Vspace.Preempted else drain ()
  in
  drain ()

(* Cancel all pending sends using [badge].  The four pieces of resume
   state from Section 3.4 live on the endpoint object:
   the badge, the cursor, the end-of-queue marker at start, and the
   initiating thread. *)
let cancel_badged_sends t (ep : endpoint) ~badge ~initiator =
  let start_abort () =
    let progress =
      {
        ab_badge = badge;
        ab_cursor = ep.ep_queue.head;
        ab_last = ep.ep_queue.tail;
        ab_initiator = Some initiator;
      }
    in
    ep.ep_abort <- Some progress;
    Ctx.store t.ctx ep.ep_addr;
    progress
  in
  let rec run (progress : abort_progress) =
    Ctx.exec t.ctx "badge_abort" Costs.badge_scan_instrs;
    match progress.ab_cursor with
    | None ->
        ep.ep_abort <- None;
        Ctx.store t.ctx ep.ep_addr;
        Vspace.Done
    | Some tcb ->
        Ctx.load t.ctx tcb.tcb_addr;
        let is_last =
          match progress.ab_last with Some l -> l == tcb | None -> true
        in
        let next = tcb.ep_next in
        if tcb.ep_badge = progress.ab_badge then begin
          Ep_queue.dequeue t.ctx ep tcb;
          wake t ~direct:false tcb
        end;
        progress.ab_cursor <- (if is_last then None else next);
        Ctx.store t.ctx ep.ep_addr;
        if Ctx.preemption_point t.ctx then Vspace.Preempted else run progress
  in
  match ep.ep_abort with
  | Some progress when progress.ab_badge <> badge ->
      (* A different badge's abort was preempted mid-flight: finish it
         first (on its initiator's behalf), then start ours (Section 3.4,
         item 3). *)
      (match run progress with
      | Vspace.Preempted -> Vspace.Preempted
      | Vspace.Done -> run (start_abort ()))
  | Some progress -> run progress (* our own preempted abort: resume *)
  | None ->
      if ep.ep_queue_kind = Ep_senders then run (start_abort ())
      else Vspace.Done

(* --- notifications (asynchronous signalling) --- *)

(* Signal: OR the badge into the word, or hand it directly to one waiter.
   Never blocks — this is the operation device interrupts use. *)
let signal_notification t (ntfn : notification) ~badge =
  Ctx.exec t.ctx "irq_path" Costs.set_state_instrs;
  Ctx.load t.ctx ntfn.ntfn_addr;
  match Ntfn_queue.pop t.ctx ntfn with
  | Some waiter ->
      waiter.state <- Inactive (* leaves Blocked_on_notification cleanly *);
      waiter.regs.(0) <- badge;
      Ctx.store t.ctx waiter.tcb_addr;
      wake t waiter
  | None ->
      ntfn.ntfn_word <- ntfn.ntfn_word lor badge;
      Ctx.store t.ctx ntfn.ntfn_addr

(* Wait: take all pending signals, or block. *)
let wait_notification t (ntfn : notification) ~waiter =
  Ctx.exec t.ctx "slowpath_ipc" Costs.set_state_instrs;
  Ctx.load t.ctx ntfn.ntfn_addr;
  if ntfn.ntfn_word <> 0 then begin
    waiter.regs.(0) <- ntfn.ntfn_word;
    ntfn.ntfn_word <- 0;
    Ctx.store t.ctx ntfn.ntfn_addr;
    true
  end
  else begin
    set_state t waiter (Blocked_on_notification ntfn);
    Ntfn_queue.enqueue t.ctx ntfn waiter;
    false
  end

(* Poll: non-blocking wait; returns the word (0 = nothing pending). *)
let poll_notification t (ntfn : notification) ~waiter =
  Ctx.exec t.ctx "slowpath_ipc" Costs.set_state_instrs;
  Ctx.load t.ctx ntfn.ntfn_addr;
  waiter.regs.(0) <- ntfn.ntfn_word;
  let word = ntfn.ntfn_word in
  ntfn.ntfn_word <- 0;
  if word <> 0 then Ctx.store t.ctx ntfn.ntfn_addr;
  word

(* Deletion: wake all waiters, one per preemption point (same incremental
   consistency as endpoint deletion). *)
let delete_notification t (ntfn : notification) =
  ntfn.ntfn_active <- false;
  Ctx.store t.ctx ntfn.ntfn_addr;
  let rec drain () =
    match Ntfn_queue.pop t.ctx ntfn with
    | None -> Vspace.Done
    | Some tcb ->
        tcb.state <- Inactive;
        wake t ~direct:false tcb;
        if Ctx.preemption_point t.ctx then Vspace.Preempted else drain ()
  in
  drain ()

(* --- object destruction --- *)

let cancel_ipc t tcb =
  match tcb.state with
  | Blocked_on_send ep | Blocked_on_receive ep ->
      Ep_queue.dequeue t.ctx ep tcb;
      tcb.state <- Inactive
  | Blocked_on_notification ntfn ->
      Ntfn_queue.dequeue t.ctx ntfn tcb;
      tcb.state <- Inactive
  | Blocked_on_reply ->
      (* Purge the callee's caller pointer, or a later reply would wake
         this thread out of whatever state it is in by then. *)
      (match tcb.reply_target with
      | Some callee -> (
          match callee.caller with
          | Some c when c == tcb -> callee.caller <- None
          | _ -> ())
      | None -> ());
      tcb.reply_target <- None;
      tcb.state <- Inactive
  | Inactive | Running -> ()

(* Destroy an object once its final capability goes away.  Returns
   [Preempted] for the long-running cases, which resume on restart. *)
let destroy_object t obj =
  match obj with
  | Any_endpoint ep -> (
      match delete_endpoint t ep with
      | Vspace.Preempted -> Vspace.Preempted
      | Vspace.Done ->
          unregister t obj;
          Vspace.Done)
  | Any_notification ntfn -> (
      match delete_notification t ntfn with
      | Vspace.Preempted -> Vspace.Preempted
      | Vspace.Done ->
          unregister t obj;
          Vspace.Done)
  | Any_tcb tcb ->
      cancel_ipc t tcb;
      if tcb.in_run_queue then Sched.dequeue t.ctx t.sched tcb;
      tcb.state <- Inactive;
      unregister t obj;
      Vspace.Done
  | Any_frame _ ->
      unregister t obj;
      Vspace.Done
  | Any_page_table pt -> (
      match Vspace.delete_page_table_mappings t.ctx pt with
      | Vspace.Preempted -> Vspace.Preempted
      | Vspace.Done ->
          unregister t obj;
          Vspace.Done)
  | Any_page_directory pd -> (
      match t.build.Build.vspace with
      | Build.Asid_table ->
          (* O(1): drop the ASID; stale frame caps are harmless. *)
          Vspace.asid_delete_vspace t.ctx t.asids pd;
          unregister t obj;
          Vspace.Done
      | Build.Shadow_tables -> (
          match Vspace.delete_vspace_shadow t.ctx pd with
          | Vspace.Preempted -> Vspace.Preempted
          | Vspace.Done ->
              unregister t obj;
              Vspace.Done))
  | Any_asid_pool pool ->
      (* The unpreemptible 1024-entry teardown of the original design. *)
      let slot_index =
        let found = ref None in
        Array.iteri
          (fun i p ->
            match p with
            | Some p when p == pool -> found := Some i
            | _ -> ())
          t.asids.Vspace.table;
        !found
      in
      (match slot_index with
      | Some i -> Vspace.asid_pool_delete t.ctx t.asids ~pool_slot:i
      | None -> ());
      unregister t obj;
      Vspace.Done
  | Any_cnode _ | Any_untyped _ ->
      unregister t obj;
      Vspace.Done

(* Delete the capability in one slot.  May preempt inside the object
   destructor; the slot is only emptied once destruction completed, so a
   restarted delete resumes the destructor. *)
let delete_cap t (slot : slot) =
  Ctx.exec t.ctx "cnode_ops" Costs.cdt_remove_instrs;
  match slot.cap with
  | Null_cap -> Vspace.Done
  | Frame_cap fc when fc.fc_mapping <> None ->
      (* Unmap before the cap disappears. *)
      Vspace.unmap_frame t.ctx t.build t.asids fc;
      if decref t slot.cap then
        match obj_of_cap slot.cap with
        | Some obj -> (
            match destroy_object t obj with
            | Vspace.Preempted -> Vspace.Preempted
            | Vspace.Done ->
                Cdt.remove t.ctx slot;
                slot.cap <- Null_cap;
                Vspace.Done)
        | None ->
            Cdt.remove t.ctx slot;
            slot.cap <- Null_cap;
            Vspace.Done
      else begin
        Cdt.remove t.ctx slot;
        slot.cap <- Null_cap;
        Vspace.Done
      end
  | cap ->
      if decref t cap then
        match obj_of_cap cap with
        | Some obj -> (
            match destroy_object t obj with
            | Vspace.Preempted ->
                (* [decref] does not mutate the count when it reports the
                   final cap, so the restarted delete will see the same
                   answer and resume the destructor. *)
                Vspace.Preempted
            | Vspace.Done ->
                Cdt.remove t.ctx slot;
                slot.cap <- Null_cap;
                Vspace.Done)
        | None ->
            Cdt.remove t.ctx slot;
            slot.cap <- Null_cap;
            Vspace.Done
      else begin
        Cdt.remove t.ctx slot;
        slot.cap <- Null_cap;
        Vspace.Done
      end

(* Revoke: delete every derivation descendant of [slot], leaf-first, one
   deletion per preemption point. *)
let revoke_cap t (slot : slot) =
  let rec loop () =
    Ctx.exec t.ctx "cnode_ops" Costs.cdt_remove_instrs;
    match Cdt.deepest_descendant slot with
    | None -> Vspace.Done
    | Some victim -> (
        match delete_cap t victim with
        | Vspace.Preempted -> Vspace.Preempted
        | Vspace.Done ->
            if Ctx.preemption_point t.ctx then Vspace.Preempted else loop ())
  in
  loop ()

(* --- interrupts --- *)

let raise_irq t line =
  assert (line >= 0 && line < num_irqs);
  if not (irq_is_pending t line) then
    pending_push t line ~asserted:(Ctx.cycles t.ctx);
  if Ctx.tracing t.ctx then Ctx.emit t.ctx (Obs.Trace.Irq_assert { line });
  Ctx.raise_irq t.ctx

(* Arrange for [line] to be asserted once the cycle counter reaches
   now + delay: the interrupt will land in the middle of whatever kernel
   operation is then executing.  Any number of device timers may be armed
   at once; each line becomes pending at its own fire cycle. *)
let schedule_irq t line ~delay =
  assert (line >= 0 && line < num_irqs);
  let fire = Ctx.cycles t.ctx + delay in
  (if t.armed_count = Array.length t.armed_fire then begin
     let cap = 2 * Array.length t.armed_fire in
     let grow a = Array.append a (Array.make (cap - Array.length a) 0) in
     t.armed_fire <- grow t.armed_fire;
     t.armed_line <- grow t.armed_line;
     t.scratch_fire <- grow t.scratch_fire;
     t.scratch_line <- grow t.scratch_line
   end);
  t.armed_fire.(t.armed_count) <- fire;
  t.armed_line.(t.armed_count) <- line;
  t.armed_count <- t.armed_count + 1;
  if Ctx.tracing t.ctx then
    Ctx.emit t.ctx (Obs.Trace.Irq_armed { line; fire_at = fire });
  Ctx.schedule_irq_at t.ctx fire

(* Promote armed lines whose fire cycle has passed into the pending set,
   earliest first (stable for equal fire cycles, so delivery order is
   deterministic), stamping each line's assert cycle with the cycle its
   (virtual) device raised it.  An already-pending line absorbs the new
   assertion, as a real interrupt controller's level-triggered pending
   bit would.  Expired slots are gathered into the scratch buffer and
   insertion-sorted (stable) by fire cycle; live timers compact in place,
   preserving arming order. *)
let promote_armed t =
  if t.armed_count > 0 then begin
    let now = Ctx.cycles t.ctx in
    let expired = ref 0 in
    let kept = ref 0 in
    for i = 0 to t.armed_count - 1 do
      let fire = t.armed_fire.(i) in
      if now >= fire then begin
        t.scratch_fire.(!expired) <- fire;
        t.scratch_line.(!expired) <- t.armed_line.(i);
        incr expired
      end
      else begin
        t.armed_fire.(!kept) <- fire;
        t.armed_line.(!kept) <- t.armed_line.(i);
        incr kept
      end
    done;
    if !expired > 0 then begin
      t.armed_count <- !kept;
      (* Stable insertion sort of the expired timers by fire cycle: equal
         fire cycles keep arming order, as the list-based
         [List.stable_sort] promotion did. *)
      for i = 1 to !expired - 1 do
        let f = t.scratch_fire.(i) and l = t.scratch_line.(i) in
        let j = ref (i - 1) in
        while !j >= 0 && t.scratch_fire.(!j) > f do
          t.scratch_fire.(!j + 1) <- t.scratch_fire.(!j);
          t.scratch_line.(!j + 1) <- t.scratch_line.(!j);
          decr j
        done;
        t.scratch_fire.(!j + 1) <- f;
        t.scratch_line.(!j + 1) <- l
      done;
      for i = 0 to !expired - 1 do
        let line = t.scratch_line.(i) in
        if not (irq_is_pending t line) then begin
          pending_push t line ~asserted:t.scratch_fire.(i);
          (* Flight-recorder visibility: a timer-armed line becoming
             pending is an assertion; without this the replayed worst-
             delivery windows would show armed->deliver with no assert
             edge.  Emission charges no cycles. *)
          if Ctx.tracing t.ctx then
            Ctx.emit t.ctx (Obs.Trace.Irq_assert { line })
        end
      done
    end
  end

(* Earliest armed timer (ties resolved to the earliest-armed slot). *)
let next_armed_irq t =
  if t.armed_count = 0 then None
  else begin
    let best = ref 0 in
    for i = 1 to t.armed_count - 1 do
      if t.armed_fire.(i) < t.armed_fire.(!best) then best := i
    done;
    Some (t.armed_fire.(!best), t.armed_line.(!best))
  end

let set_irq_delivery_hook t hook = t.on_irq_deliver <- hook

(* Install (or clear, with [None]) a deterministic fault-injection hook:
   [f] receives the 1-based index of every preemption-point poll and
   returning [true] asserts the timer interrupt at exactly that poll.
   Injecting by poll index rather than by cycle count makes a campaign
   schedule reproducible across scheduler variants, whose cycle counts
   differ but whose preemption-point structure does not.  Installation
   resets the poll counter, so indices are relative to that moment.
   Installing over a live hook raises [Invalid_argument] (via
   {!Ctx.set_preempt_poll_hook}): two campaigns sharing one kernel would
   otherwise silently drop each other's schedules. *)
let set_injection_hook t hook =
  Ctx.set_preempt_poll_hook t.ctx
    (match hook with
    | None -> None
    | Some f ->
        Some
          (fun poll ->
            f poll
            && begin
                 if not (irq_is_pending t timer_irq) then
                   pending_push t timer_irq ~asserted:(Ctx.cycles t.ctx);
                 if Ctx.tracing t.ctx then
                   Ctx.emit t.ctx (Obs.Trace.Irq_assert { line = timer_irq });
                 true
               end));
  t.ctx.Ctx.preempt_polls <- 0

let preempt_polls t = t.ctx.Ctx.preempt_polls

(* The in-kernel interrupt path: acknowledge the interrupt, record the
   response latency, deliver to the registered handler endpoint, and for
   the timer, preempt the current thread.  One line is delivered per
   entry; remaining pending lines re-assert and are taken on subsequent
   entries, exactly as a real controller re-raises its output. *)
let handle_interrupt_internal t =
  Ctx.exec t.ctx "irq_path" Costs.irq_path_instrs;
  Ctx.load t.ctx Layout.irq_pending_word;
  ignore (Ctx.irq_pending t.ctx) (* fold expired timers into the arrival *);
  promote_armed t;
  let ctx_latency = Ctx.note_irq_taken t.ctx in
  if t.pending_count = 0 then ()
  else begin
      let line = pending_pop t in
      let latency =
        (* Prefer the line's own assert cycle: with several outstanding
           interrupts the context-level arrival only tracks the earliest. *)
        let asserted = t.irq_assert.(line) in
        if asserted <> no_assert then begin
          t.irq_assert.(line) <- no_assert;
          Some (Ctx.cycles t.ctx - asserted)
        end
        else ctx_latency
      in
      (match latency with
      | Some latency ->
          if latency > t.irq_line_worst then t.irq_line_worst <- latency;
          if Ctx.tracing t.ctx then
            Ctx.emit t.ctx (Obs.Trace.Irq_deliver { line; latency });
          (match t.on_irq_deliver with
          | Some hook -> hook line latency
          | None -> ())
      | None -> ());
      if t.pending_count > 0 then Ctx.raise_irq t.ctx;
      Ctx.load t.ctx (Layout.irq_handler_table + (4 * line));
      (match t.irq_handlers.(line) with
      | Some (Notification_cap { ntfn; badge; _ }) when ntfn.ntfn_active ->
          (* The real seL4 mechanism: interrupts signal a notification. *)
          signal_notification t ntfn ~badge:(if badge = 0 then 1 lsl line else badge)
      | Some (Endpoint_cap { ep; badge; _ }) when ep.ep_active -> (
          (* Deliver as a message to a waiting receiver, if any. *)
          match ep.ep_queue_kind with
          | Ep_receivers -> (
              match Ep_queue.pop t.ctx ep with
              | Some handler ->
                  handler.ep_badge <- badge;
                  handler.regs.(0) <- line;
                  Ctx.store t.ctx handler.tcb_addr;
                  wake t handler
              | None -> ())
          | Ep_idle | Ep_senders -> ())
      | _ -> ());
      if line = timer_irq then begin
        (* Timer tick: end of timeslice.  The current thread goes to the
           tail of its queue (round-robin); under Benno scheduling this is
           the lazy re-enqueue of Section 3.1, under lazy scheduling it is
           the rotation that the dequeue/enqueue churn paid for. *)
        if is_runnable t.current && not (t.current == t.idle) then begin
          if t.current.in_run_queue then Sched.dequeue t.ctx t.sched t.current;
          Sched.enqueue t.ctx t.sched t.current
        end;
        reschedule t
      end
  end

(* --- events (kernel entries) --- *)

type invocation =
  | Inv_retype of {
      ut : int;  (* cptr *)
      obj_type : obj_type;
      count : int;
      dest_slots : slot list;  (* resolved destination slots *)
    }
  | Inv_copy of { src : int; dest_slot : slot; badge : int option }
  | Inv_move of { src : int; dest_slot : slot }
  | Inv_delete of { target : int }
  | Inv_revoke of { target : int }
  | Inv_cancel_badged_sends of { ep : int; badge : int }
  | Inv_tcb_priority of { target : int; prio : int }
  | Inv_tcb_configure of { target : int; cspace : int; vspace : int; fault_ep : int }
  | Inv_tcb_suspend of { target : int }
  | Inv_tcb_resume of { target : int }
  | Inv_map_frame of { frame : int; pd : int; vaddr : int }
  | Inv_unmap_frame of { frame : int }
  | Inv_map_page_table of { pt : int; pd : int; vaddr : int }
  | Inv_make_asid_pool of { ut : int; dest_slot : slot; top_index : int }
  | Inv_assign_asid of { pool : int; pd : int }
  | Inv_irq_handler of { line : int; ep : int }
  | Inv_bind_irq_notification of { line : int; ntfn : int }

type event =
  | Ev_signal of { ntfn : int }
  | Ev_wait of { ntfn : int }
  | Ev_poll of { ntfn : int }
  | Ev_call of { ep : int; badge_hint : int; msg_len : int; extra_caps : int list }
  | Ev_send of { ep : int; msg_len : int; extra_caps : int list; blocking : bool }
  | Ev_recv of { ep : int }
  | Ev_reply_recv of { ep : int; msg_len : int }
  | Ev_yield
  | Ev_invoke of invocation
  | Ev_interrupt
  | Ev_page_fault of { vaddr : int }
  | Ev_undefined_instruction

type outcome = Completed | Preempted | Failed of string

(* Short labels for the event trace (syscall enter/exit events). *)
let invocation_label = function
  | Inv_retype _ -> "invoke:retype"
  | Inv_copy _ -> "invoke:copy"
  | Inv_move _ -> "invoke:move"
  | Inv_delete _ -> "invoke:delete"
  | Inv_revoke _ -> "invoke:revoke"
  | Inv_cancel_badged_sends _ -> "invoke:cancel_badged_sends"
  | Inv_tcb_priority _ -> "invoke:tcb_priority"
  | Inv_tcb_configure _ -> "invoke:tcb_configure"
  | Inv_tcb_suspend _ -> "invoke:tcb_suspend"
  | Inv_tcb_resume _ -> "invoke:tcb_resume"
  | Inv_map_frame _ -> "invoke:map_frame"
  | Inv_unmap_frame _ -> "invoke:unmap_frame"
  | Inv_map_page_table _ -> "invoke:map_page_table"
  | Inv_make_asid_pool _ -> "invoke:make_asid_pool"
  | Inv_assign_asid _ -> "invoke:assign_asid"
  | Inv_irq_handler _ -> "invoke:irq_handler"
  | Inv_bind_irq_notification _ -> "invoke:bind_irq_notification"

let event_label = function
  | Ev_signal _ -> "signal"
  | Ev_wait _ -> "wait"
  | Ev_poll _ -> "poll"
  | Ev_call _ -> "call"
  | Ev_send _ -> "send"
  | Ev_recv _ -> "recv"
  | Ev_reply_recv _ -> "reply_recv"
  | Ev_yield -> "yield"
  | Ev_invoke inv -> invocation_label inv
  | Ev_interrupt -> "interrupt"
  | Ev_page_fault _ -> "page_fault"
  | Ev_undefined_instruction -> "undefined_instruction"

let outcome_label = function
  | Completed -> "completed"
  | Preempted -> "preempted"
  | Failed e -> "failed: " ^ e

let lookup t cptr =
  Cspace.resolve t.ctx ~root_cap:t.current.cspace_root ~cptr

let lookup_cap t cptr =
  match lookup t cptr with
  | Cspace.Ok_slot (slot, _) -> Result.Ok slot
  | Cspace.Error e -> Result.Error (Fmt.to_to_string Cspace.pp_error e)

let ( let* ) r f = match r with Result.Ok v -> f v | Result.Error e -> Failed e

let progress_outcome = function
  | Vspace.Done -> Completed
  | Vspace.Preempted -> Preempted

(* Dispatch one decoded invocation. *)
let dispatch_invocation t inv =
  match inv with
  | Inv_retype { ut; obj_type; count; dest_slots } -> (
      let* ut_slot = lookup_cap t ut in
      match
        Untyped_ops.retype t.ctx ~fresh_id:(fun () -> fresh_id t)
          ~register:(register t) ~ut_slot obj_type ~count ~dest_slots
      with
      | Untyped_ops.Done _ -> Completed
      | Untyped_ops.Preempted -> Preempted
      | Untyped_ops.Error e -> Failed (Fmt.to_to_string Untyped_ops.pp_error e))
  | Inv_copy { src; dest_slot; badge } -> (
      let* src_slot = lookup_cap t src in
      if not (cap_is_null dest_slot.cap) then Failed "destination occupied"
      else
        match (src_slot.cap, badge) with
        | Null_cap, _ -> Failed "source empty"
        | Endpoint_cap ep_cap, Some b ->
            dest_slot.cap <- Endpoint_cap { ep_cap with badge = b };
            incref t dest_slot.cap;
            Cdt.insert_child t.ctx ~parent:src_slot ~child:dest_slot;
            Completed
        | Notification_cap n_cap, Some b ->
            dest_slot.cap <- Notification_cap { n_cap with badge = b };
            incref t dest_slot.cap;
            Cdt.insert_child t.ctx ~parent:src_slot ~child:dest_slot;
            Completed
        | cap, None ->
            dest_slot.cap <- cap;
            incref t cap;
            Cdt.insert_child t.ctx ~parent:src_slot ~child:dest_slot;
            Completed
        | _, Some _ -> Failed "only endpoint and notification caps can be badged")
  | Inv_move { src; dest_slot } -> (
      let* src_slot = lookup_cap t src in
      if not (cap_is_null dest_slot.cap) then Failed "destination occupied"
      else
        match src_slot.cap with
        | Null_cap -> Failed "source empty"
        | cap ->
            Ctx.exec t.ctx "cnode_ops" Costs.cdt_insert_instrs;
            dest_slot.cap <- cap;
            src_slot.cap <- Null_cap;
            Cdt.replace t.ctx ~old_slot:src_slot ~new_slot:dest_slot;
            Completed)
  | Inv_delete { target } ->
      let* slot = lookup_cap t target in
      progress_outcome (delete_cap t slot)
  | Inv_revoke { target } ->
      let* slot = lookup_cap t target in
      progress_outcome (revoke_cap t slot)
  | Inv_cancel_badged_sends { ep; badge } -> (
      let* slot = lookup_cap t ep in
      match slot.cap with
      | Endpoint_cap { ep; _ } ->
          progress_outcome
            (cancel_badged_sends t ep ~badge ~initiator:t.current)
      | _ -> Failed "not an endpoint")
  | Inv_tcb_priority { target; prio } -> (
      let* slot = lookup_cap t target in
      match slot.cap with
      | Tcb_cap tcb ->
          Ctx.exec t.ctx "tcb_ops" Costs.set_state_instrs;
          if tcb.in_run_queue then begin
            Sched.dequeue t.ctx t.sched tcb;
            tcb.priority <- prio;
            Sched.enqueue t.ctx t.sched tcb
          end
          else tcb.priority <- prio;
          Completed
      | _ -> Failed "not a tcb")
  | Inv_tcb_configure { target; cspace; vspace; fault_ep } -> (
      let* slot = lookup_cap t target in
      match slot.cap with
      | Tcb_cap tcb ->
          Ctx.exec t.ctx "tcb_ops" (3 * Costs.set_state_instrs);
          let* cspace_slot = lookup_cap t cspace in
          let* vspace_slot = lookup_cap t vspace in
          tcb.cspace_root <- cspace_slot.cap;
          tcb.vspace_root <- vspace_slot.cap;
          tcb.fault_handler_cptr <- Some fault_ep;
          Completed
      | _ -> Failed "not a tcb")
  | Inv_tcb_suspend { target } -> (
      let* slot = lookup_cap t target in
      match slot.cap with
      | Tcb_cap tcb ->
          Ctx.exec t.ctx "tcb_ops" Costs.set_state_instrs;
          cancel_ipc t tcb;
          set_state t tcb Inactive;
          if tcb.in_run_queue then Sched.dequeue t.ctx t.sched tcb;
          if tcb == t.current then reschedule t;
          Completed
      | _ -> Failed "not a tcb")
  | Inv_tcb_resume { target } -> (
      let* slot = lookup_cap t target in
      match slot.cap with
      | Tcb_cap tcb ->
          Ctx.exec t.ctx "tcb_ops" Costs.set_state_instrs;
          (* seL4's Resume restarts the thread: any pending IPC is
             cancelled (dequeued) before it becomes runnable. *)
          if not (is_runnable tcb) then begin
            cancel_ipc t tcb;
            wake t ~direct:false tcb
          end;
          Completed
      | _ -> Failed "not a tcb")
  | Inv_map_frame { frame; pd; vaddr } -> (
      let* frame_slot = lookup_cap t frame in
      let* pd_slot = lookup_cap t pd in
      match frame_slot.cap with
      | Frame_cap fc -> (
          try
            let pd = Vspace.resolve_vspace t.ctx t.build t.asids pd_slot.cap in
            Vspace.map_frame t.ctx t.build fc ~slot:frame_slot pd ~vaddr;
            Completed
          with Vspace.Vm_error e ->
            Failed (Fmt.to_to_string Vspace.pp_map_error e))
      | _ -> Failed "not a frame")
  | Inv_unmap_frame { frame } -> (
      let* frame_slot = lookup_cap t frame in
      match frame_slot.cap with
      | Frame_cap fc ->
          Vspace.unmap_frame t.ctx t.build t.asids fc;
          Completed
      | _ -> Failed "not a frame")
  | Inv_map_page_table { pt; pd; vaddr } -> (
      let* pt_slot = lookup_cap t pt in
      let* pd_slot = lookup_cap t pd in
      match pt_slot.cap with
      | Page_table_cap ptc -> (
          try
            let pd = Vspace.resolve_vspace t.ctx t.build t.asids pd_slot.cap in
            Vspace.map_page_table t.ctx pd ~vaddr ptc;
            Completed
          with Vspace.Vm_error e ->
            Failed (Fmt.to_to_string Vspace.pp_map_error e))
      | _ -> Failed "not a page table")
  | Inv_make_asid_pool { ut; dest_slot; top_index } -> (
      let* ut_slot = lookup_cap t ut in
      if t.asids.Vspace.table.(top_index) <> None then
        Failed "asid slot occupied"
      else
        match
          Untyped_ops.retype t.ctx ~fresh_id:(fun () -> fresh_id t)
            ~register:(register t) ~ut_slot Asid_pool_object ~count:1
            ~dest_slots:[ dest_slot ]
        with
        | Untyped_ops.Done [ Asid_pool_cap pool ] ->
            t.asids.Vspace.table.(top_index) <- Some pool;
            Completed
        | Untyped_ops.Done _ -> Failed "unexpected retype result"
        | Untyped_ops.Preempted -> Preempted
        | Untyped_ops.Error e -> Failed (Fmt.to_to_string Untyped_ops.pp_error e))
  | Inv_assign_asid { pool; pd } -> (
      let* pool_slot = lookup_cap t pool in
      let* pd_slot = lookup_cap t pd in
      match (pool_slot.cap, pd_slot.cap) with
      | Asid_pool_cap p, Page_directory_cap pdc -> (
          let top =
            let found = ref None in
            Array.iteri
              (fun i entry ->
                match entry with
                | Some q when q == p -> found := Some i
                | _ -> ())
              t.asids.Vspace.table;
            !found
          in
          match top with
          | None -> Failed "pool not installed"
          | Some top_slot -> (
              match
                Vspace.asid_alloc t.ctx t.asids p ~pool_slot:top_slot pdc.pd
              with
              | Some asid ->
                  pdc.pdc_asid <- Some asid;
                  Completed
              | None -> Failed "pool full"))
      | _ -> Failed "bad asid assignment")
  | Inv_irq_handler { line; ep } -> (
      let* ep_slot = lookup_cap t ep in
      match ep_slot.cap with
      | (Endpoint_cap _ | Notification_cap _) as cap ->
          Ctx.exec t.ctx "irq_control" Costs.set_state_instrs;
          t.irq_handlers.(line) <- Some cap;
          Ctx.store t.ctx (Layout.irq_handler_table + (4 * line));
          Completed
      | _ -> Failed "handler must be an endpoint or notification")
  | Inv_bind_irq_notification { line; ntfn } -> (
      let* slot = lookup_cap t ntfn in
      match slot.cap with
      | Notification_cap _ as cap ->
          Ctx.exec t.ctx "irq_control" Costs.set_state_instrs;
          t.irq_handlers.(line) <- Some cap;
          Ctx.store t.ctx (Layout.irq_handler_table + (4 * line));
          Completed
      | _ -> Failed "not a notification")

let deliver_fault t ~fault_code =
  Ctx.exec t.ctx "fault_path" Costs.slowpath_ipc_instrs;
  let handler_cap =
    match t.current.fault_handler_cptr with
    | None -> Null_cap
    | Some cptr -> (
        (* One capability decode per fault (Section 6.1). *)
        match lookup t cptr with
        | Cspace.Ok_slot (slot, _) -> slot.cap
        | Cspace.Error _ -> Null_cap)
  in
  match handler_cap with
  | Endpoint_cap { ep; badge; _ } when ep.ep_active -> (
      let faulter = t.current in
      faulter.regs.(0) <- fault_code;
      match ep.ep_queue_kind with
      | Ep_receivers -> (
          match Ep_queue.pop t.ctx ep with
          | Some handler ->
              transfer_message t ~sender:faulter ~receiver:handler ~msg_len:2
                ~badge;
              set_state t faulter Blocked_on_reply;
              handler.caller <- Some faulter;
              faulter.reply_target <- Some handler;
              wake t handler;
              Completed
          | None -> Completed)
      | Ep_idle | Ep_senders ->
          (* Queue the faulter as a sender on the fault endpoint. *)
          set_state t faulter (Blocked_on_send ep);
          faulter.ep_badge <- badge;
          faulter.ep_is_call <- true;
          ep.ep_queue_kind <- Ep_senders;
          Ep_queue.enqueue t.ctx ep faulter;
          Completed)
  | _ ->
      (* No handler: the thread stops. *)
      set_state t t.current Inactive;
      Completed

let dispatch t event =
  match event with
  | Ev_yield ->
      Ctx.exec t.ctx "decode" Costs.decode_instrs;
      if is_runnable t.current && not (t.current == t.idle) then begin
        if t.current.in_run_queue then Sched.dequeue t.ctx t.sched t.current;
        Sched.enqueue t.ctx t.sched t.current
      end;
      reschedule t;
      Completed
  | Ev_interrupt ->
      handle_interrupt_internal t;
      Completed
  | Ev_page_fault _ -> deliver_fault t ~fault_code:1
  | Ev_undefined_instruction -> deliver_fault t ~fault_code:2
  | Ev_signal { ntfn } -> (
      Ctx.exec t.ctx "decode" Costs.decode_instrs;
      let* slot = lookup_cap t ntfn in
      match slot.cap with
      | Notification_cap { ntfn; badge; _ } ->
          if not ntfn.ntfn_active then Failed "notification inactive"
          else begin
            signal_notification t ntfn ~badge:(max badge 1);
            Completed
          end
      | _ -> Failed "not a notification")
  | Ev_wait { ntfn } -> (
      Ctx.exec t.ctx "decode" Costs.decode_instrs;
      let* slot = lookup_cap t ntfn in
      match slot.cap with
      | Notification_cap { ntfn; _ } ->
          if not ntfn.ntfn_active then Failed "notification inactive"
          else begin
            let _got = wait_notification t ntfn ~waiter:t.current in
            if not (is_runnable t.current) then reschedule t;
            Completed
          end
      | _ -> Failed "not a notification")
  | Ev_poll { ntfn } -> (
      Ctx.exec t.ctx "decode" Costs.decode_instrs;
      let* slot = lookup_cap t ntfn in
      match slot.cap with
      | Notification_cap { ntfn; _ } ->
          ignore (poll_notification t ntfn ~waiter:t.current);
          Completed
      | _ -> Failed "not a notification")
  | Ev_call { ep; badge_hint = _; msg_len; extra_caps } -> (
      Ctx.exec t.ctx "decode" Costs.decode_instrs;
      let* slot = lookup_cap t ep in
      match slot.cap with
      | Endpoint_cap { ep; badge; rights } ->
          if not ep.ep_active then Failed "endpoint inactive"
          else if fastpath_eligible t ~ep ~msg_len ~extra_caps then begin
            fastpath_call t ~ep ~badge ~msg_len;
            Completed
          end
          else begin
            let sender = t.current in
            let _sent =
              send_ipc t ~ep ~badge ~msg_len ~extra_caps
                ~can_grant:rights.grant ~is_call:true ~blocking:true ~sender
            in
            if not (is_runnable t.current) then reschedule t;
            Completed
          end
      | _ -> Failed "not an endpoint")
  | Ev_send { ep; msg_len; extra_caps; blocking } -> (
      Ctx.exec t.ctx "decode" Costs.decode_instrs;
      let* slot = lookup_cap t ep in
      match slot.cap with
      | Endpoint_cap { ep; badge; rights } ->
          if not ep.ep_active then Failed "endpoint inactive"
          else begin
            let _sent =
              send_ipc t ~ep ~badge ~msg_len ~extra_caps
                ~can_grant:rights.grant ~is_call:false ~blocking
                ~sender:t.current
            in
            if not (is_runnable t.current) then reschedule t;
            Completed
          end
      | _ -> Failed "not an endpoint")
  | Ev_recv { ep } -> (
      Ctx.exec t.ctx "decode" Costs.decode_instrs;
      let* slot = lookup_cap t ep in
      match slot.cap with
      | Endpoint_cap { ep; _ } ->
          if not ep.ep_active then Failed "endpoint inactive"
          else begin
            let _got = recv_ipc t ~ep ~receiver:t.current in
            if not (is_runnable t.current) then reschedule t;
            Completed
          end
      | _ -> Failed "not an endpoint")
  | Ev_reply_recv { ep; msg_len } -> (
      Ctx.exec t.ctx "decode" Costs.decode_instrs;
      let* slot = lookup_cap t ep in
      match slot.cap with
      | Endpoint_cap { ep; _ } ->
          let replier = t.current in
          do_reply t ~replier ~msg_len;
          let _got = recv_ipc t ~ep ~receiver:replier in
          if not (is_runnable t.current) then reschedule t;
          Completed
      | _ -> Failed "not an endpoint")
  | Ev_invoke inv ->
      Ctx.exec t.ctx "decode" Costs.decode_instrs;
      dispatch_invocation t inv

(* One kernel entry: exception vector in, event handling, and either a
   clean exit or a preemption (in which case the pending interrupt is
   handled before returning — "a preempted kernel operation will return up
   the call stack and then call the kernel's interrupt handler",
   Section 5.2). *)
let kernel_entry t event =
  if Ctx.tracing t.ctx then
    Ctx.emit t.ctx (Obs.Trace.Kernel_enter { event = event_label event });
  Ctx.exec t.ctx "vector_entry" Costs.entry_instrs;
  Ctx.store_block t.ctx Layout.stack_base 64;
  if t.current.restart_syscall then begin
    t.current.restart_syscall <- false;
    t.syscall_restarts <- t.syscall_restarts + 1
  end;
  let outcome = dispatch t event in
  (match outcome with
  | Preempted ->
      t.preempted_events <- t.preempted_events + 1;
      t.current.restart_syscall <- true;
      handle_interrupt_internal t
  | Completed | Failed _ ->
      (* Interrupts that arrived during this entry are taken on the exit
         path, before control reaches user mode again. *)
      if Ctx.irq_pending t.ctx then handle_interrupt_internal t);
  Ctx.exec t.ctx "vector_exit" Costs.exit_instrs;
  Ctx.load_block t.ctx Layout.stack_base 64;
  if Ctx.tracing t.ctx then
    Ctx.emit t.ctx (Obs.Trace.Kernel_exit { outcome = outcome_label outcome });
  outcome

(* Re-execute a preempted system call until it completes.  This is what
   user level does implicitly by restarting the faulted SWI. *)
let run_to_completion ?(max_restarts = 1_000_000) t event =
  let rec go n outcome =
    match outcome with
    | Preempted when n < max_restarts -> go (n + 1) (kernel_entry t event)
    | other -> other
  in
  go 0 (kernel_entry t event)

let worst_irq_latency t = max (Ctx.worst_irq_latency t.ctx) t.irq_line_worst
let preempted_events t = t.preempted_events
