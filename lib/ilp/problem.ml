(* Named-variable ILP/LP problem builder.

   A thin convenience layer over {!Simplex}: variables are created by name,
   constraints are integer-coefficient linear combinations, and the whole
   problem can be rendered for debugging (the paper's Section 5.2 works by
   inspecting and manually extending exactly such constraint systems). *)

type var = int

type relation = Le | Ge | Eq

type cstr = {
  label : string;
  terms : (int * var) list;
  relation : relation;
  bound : int;
}

type t = {
  mutable names : string list;  (* reversed *)
  mutable count : int;
  mutable constraints : cstr list;  (* reversed *)
  mutable objective : (int * var) list;
}

let create () = { names = []; count = 0; constraints = []; objective = [] }

let var t name =
  let v = t.count in
  t.names <- name :: t.names;
  t.count <- t.count + 1;
  v

let num_vars t = t.count

let name t v =
  let names = Array.of_list (List.rev t.names) in
  names.(v)

let add_constraint ?(label = "") t terms relation bound =
  List.iter (fun (_, v) -> assert (v >= 0 && v < t.count)) terms;
  t.constraints <- { label; terms; relation; bound } :: t.constraints

let add_le ?label t terms bound = add_constraint ?label t terms Le bound
let add_ge ?label t terms bound = add_constraint ?label t terms Ge bound
let add_eq ?label t terms bound = add_constraint ?label t terms Eq bound
let set_objective t terms = t.objective <- terms

let constraints t = List.rev t.constraints
let num_constraints t = List.length t.constraints
let objective t = t.objective

(* Merge duplicate variables of a term list into a sparse row, keeping
   first-occurrence order (deterministic) and dropping zero sums. *)
let sparse_row terms =
  let merged = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (c, v) ->
      match Hashtbl.find_opt merged v with
      | None ->
          order := v :: !order;
          Hashtbl.add merged v c
      | Some c0 -> Hashtbl.replace merged v (c0 + c))
    terms;
  List.rev !order
  |> List.filter_map (fun v ->
         let c = Hashtbl.find merged v in
         if c = 0 then None else Some (v, Rat.of_int c))

let to_lp ?(extra = []) t : Simplex.lp =
  let dense terms =
    let coeffs = Array.make t.count Rat.zero in
    List.iter
      (fun (c, v) -> coeffs.(v) <- Rat.add coeffs.(v) (Rat.of_int c))
      terms;
    coeffs
  in
  let convert { terms; relation; bound; _ } =
    let op =
      match relation with
      | Le -> Simplex.Le
      | Ge -> Simplex.Ge
      | Eq -> Simplex.Eq
    in
    (sparse_row terms, op, Rat.of_int bound)
  in
  {
    Simplex.num_vars = t.count;
    maximize = dense t.objective;
    constraints = List.rev_map convert t.constraints @ List.map convert extra;
  }

let solve_relaxation ?extra t = Simplex.solve (to_lp ?extra t)

let vars t = List.init t.count Fun.id
let solution_value (s : Simplex.solution) v = s.values.(v)

let eval_terms terms point =
  List.fold_left (fun acc (c, v) -> acc + (c * point.(v))) 0 terms

let slack { terms; relation; bound; _ } point =
  let lhs = eval_terms terms point in
  match relation with Le -> bound - lhs | Ge -> lhs - bound | Eq -> 0

let binding cstr point = slack cstr point = 0

let pp ppf t =
  let pp_term ppf (c, v) =
    if c = 1 then Fmt.string ppf (name t v)
    else Fmt.pf ppf "%d %s" c (name t v)
  in
  let pp_terms = Fmt.(list ~sep:(any " + ") pp_term) in
  let pp_rel ppf = function
    | Le -> Fmt.string ppf "<="
    | Ge -> Fmt.string ppf ">="
    | Eq -> Fmt.string ppf "="
  in
  Fmt.pf ppf "@[<v>maximize %a@,subject to:@," pp_terms t.objective;
  List.iter
    (fun c ->
      Fmt.pf ppf "  %a %a %d%s@," pp_terms c.terms pp_rel c.relation c.bound
        (if c.label = "" then "" else "    ; " ^ c.label))
    (constraints t);
  Fmt.pf ppf "@]"
