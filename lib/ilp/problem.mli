(** Named-variable ILP/LP problem builder over integer coefficients.

    All variables are implicitly non-negative.  This is the constraint
    language the IPET analysis emits; labels on constraints make the
    generated systems readable, mirroring the manual constraint-inspection
    workflow of Section 5.2 of the paper. *)

type var = private int
(** Dense indices in creation order; solution arrays are indexed by them. *)

type relation = Le | Ge | Eq

type cstr = {
  label : string;
  terms : (int * var) list;
  relation : relation;
  bound : int;
}

type t

val create : unit -> t

val var : t -> string -> var
(** Fresh non-negative variable. *)

val num_vars : t -> int
val name : t -> var -> string

val add_le : ?label:string -> t -> (int * var) list -> int -> unit
val add_ge : ?label:string -> t -> (int * var) list -> int -> unit
val add_eq : ?label:string -> t -> (int * var) list -> int -> unit

val set_objective : t -> (int * var) list -> unit
(** Objective to maximise. *)

val constraints : t -> cstr list
val num_constraints : t -> int

val objective : t -> (int * var) list
(** The current objective terms, as passed to {!set_objective}. *)

val to_lp : ?extra:cstr list -> t -> Simplex.lp
(** Render for the simplex; [extra] constraints are appended (used by branch
    and bound and by path forcing). *)

val solve_relaxation : ?extra:cstr list -> t -> Simplex.result

val vars : t -> var list
(** All variables, in creation order. *)

val solution_value : Simplex.solution -> var -> Rat.t

val eval_terms : (int * var) list -> int array -> int
(** Value of a linear form at an integer point (indexed by variable). *)

val slack : cstr -> int array -> int
(** Distance from the constraint boundary at an integer point: [bound - lhs]
    for [Le], [lhs - bound] for [Ge], and [0] for [Eq] (always tight).
    Non-negative iff the point satisfies the constraint. *)

val binding : cstr -> int array -> bool
(** A constraint is binding (tight) at a point when its slack is zero —
    i.e. it is part of the optimal basis that actually limits the
    objective.  [Eq] rows are tight by construction. *)

val pp : t Fmt.t
