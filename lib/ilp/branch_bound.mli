(** Branch-and-bound integer linear programming.

    Solves a {!Problem.t} with all variables restricted to non-negative
    integers, maximising the objective.  This is the "off-the-shelf ILP
    solver" role of the paper's toolchain (Section 5.2). *)

exception Node_limit

type outcome =
  | Optimal of { objective : int; values : int array }
  | Infeasible
  | Unbounded

type stats = { mutable nodes : int; mutable lp_solves : int }

val solve :
  ?max_nodes:int -> ?stats:stats -> ?warm_start:int array -> Problem.t -> outcome
(** [warm_start] seeds the incumbent with a candidate integral assignment
    (one value per problem variable, in creation order); it is validated
    against the constraints and ignored if infeasible, so any previous
    solution of a *more constrained* variant of the same problem is a safe
    warm start.  A good incumbent lets branch-and-bound prune nodes whose
    LP relaxation cannot beat it.
    @raise Node_limit if the search exceeds [max_nodes] (default 100_000). *)

val pp_outcome : outcome Fmt.t
