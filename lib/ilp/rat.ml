(* Exact rational arithmetic over OCaml's native 63-bit integers.

   The IPET problems produced by the WCET analysis are small (hundreds of
   variables, coefficients bounded by cycle counts around 10^5), so native
   integers with gcd normalisation suffice.  All operations detect overflow
   and raise [Overflow] rather than silently wrapping; this keeps the solver
   sound (an exception, never a wrong answer).  zarith is not available in
   this environment, which DESIGN.md records as the reason for this module. *)

exception Overflow

type t = { num : int; den : int }
(* Invariant: den > 0 and gcd(|num|, den) = 1; zero is 0/1. *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let checked_add a b =
  let s = a + b in
  (* Overflow iff operands share a sign and the sum's sign differs. *)
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let make num den =
  if den = 0 then invalid_arg "Rat.make: zero denominator";
  let sign = if den < 0 then -1 else 1 in
  let num = num * sign and den = den * sign in
  if num = 0 then { num = 0; den = 1 }
  else
    let g = gcd (abs num) den in
    { num = num / g; den = den / g }

let zero = { num = 0; den = 1 }
let one = { num = 1; den = 1 }
let minus_one = { num = -1; den = 1 }
let of_int n = { num = n; den = 1 }

let num t = t.num
let den t = t.den

let add a b =
  (* Integer fast path: the simplex tableaux this module serves stay
     integral through most pivots, so skip the gcd machinery when both
     operands have denominator 1 (the result is already normalised). *)
  if a.den = 1 && b.den = 1 then { num = checked_add a.num b.num; den = 1 }
  else
    let g = gcd a.den b.den in
    let da = a.den / g and db = b.den / g in
    let num = checked_add (checked_mul a.num db) (checked_mul b.num da) in
    make num (checked_mul a.den db)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)

let mul a b =
  if a.den = 1 && b.den = 1 then { num = checked_mul a.num b.num; den = 1 }
  else
  (* Cross-cancel before multiplying to delay overflow. *)
  let g1 = gcd (abs a.num) b.den and g2 = gcd (abs b.num) a.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  make
    (checked_mul (a.num / g1) (b.num / g2))
    (checked_mul (a.den / g2) (b.den / g1))

let div a b =
  if b.num = 0 then invalid_arg "Rat.div: division by zero";
  mul a { num = b.den * (if b.num < 0 then -1 else 1); den = abs b.num }

let inv a = div one a

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den *)
  Stdlib.compare (checked_mul a.num b.den) (checked_mul b.num a.den)

let equal a b = a.num = b.num && a.den = b.den
let sign a = Stdlib.compare a.num 0
let is_zero a = a.num = 0
let is_integer a = a.den = 1
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0
let min a b = if le a b then a else b
let max a b = if ge a b then a else b

let floor a =
  if a.num >= 0 then a.num / a.den
  else
    let q = a.num / a.den in
    if q * a.den = a.num then q else q - 1

let ceil a = -floor (neg a)

let to_float a = float_of_int a.num /. float_of_int a.den

let to_int_exn a =
  if a.den <> 1 then invalid_arg "Rat.to_int_exn: not an integer" else a.num

let pp ppf a =
  if a.den = 1 then Fmt.int ppf a.num else Fmt.pf ppf "%d/%d" a.num a.den
