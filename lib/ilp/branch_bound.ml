(* Branch-and-bound integer programming over the rational simplex.

   All variables are required to take integer values.  Depth-first search
   with an incumbent bound: a node is pruned when its LP relaxation cannot
   beat the best integral solution found so far.  Because IPET objectives
   have integer coefficients, the LP bound can be floored before comparing,
   which prunes aggressively.  IPET flow problems are network-like and their
   relaxations are usually integral already, so in practice the root node
   ends the search. *)

exception Node_limit

type outcome =
  | Optimal of { objective : int; values : int array }
  | Infeasible
  | Unbounded

type stats = { mutable nodes : int; mutable lp_solves : int }

let fractional_var (solution : Simplex.solution) =
  let n = Array.length solution.values in
  let rec scan i =
    if i >= n then None
    else if Rat.is_integer solution.values.(i) then scan (i + 1)
    else Some (i, solution.values.(i))
  in
  scan 0

(* A candidate integral assignment is usable as an initial incumbent only
   if it actually satisfies the problem: non-negative values that meet
   every constraint.  Anything else is silently discarded — warm starts
   are an optimisation, never a soundness input. *)
let check_warm_start problem values =
  let n = List.length (Problem.vars problem) in
  if Array.length values <> n || Array.exists (fun v -> v < 0) values then None
  else
    let value_of (terms : (int * Problem.var) list) =
      List.fold_left
        (fun acc ((c, v) : int * Problem.var) -> acc + (c * values.((v :> int))))
        0 terms
    in
    let ok =
      List.for_all
        (fun (c : Problem.cstr) ->
          let v = value_of c.Problem.terms in
          match c.Problem.relation with
          | Problem.Le -> v <= c.Problem.bound
          | Problem.Ge -> v >= c.Problem.bound
          | Problem.Eq -> v = c.Problem.bound)
        (Problem.constraints problem)
    in
    if ok then Some (value_of (Problem.objective problem), Array.copy values)
    else None

let solve ?(max_nodes = 100_000) ?stats ?warm_start problem =
  let stats = match stats with Some s -> s | None -> { nodes = 0; lp_solves = 0 } in
  (* Incumbent warm-starting: seed the search with a known feasible
     integral solution (typically from a previous solve of a more
     constrained variant of the same problem, whose optimum remains
     feasible here).  Every node whose LP bound cannot beat it is pruned
     without branching. *)
  let incumbent =
    ref (Option.bind warm_start (check_warm_start problem))
  in
  let better objective =
    match !incumbent with
    | None -> true
    | Some (best, _) -> objective > best
  in
  let unbounded = ref false in
  (* [bounds] is the list of extra branching constraints along this path. *)
  let rec node bounds =
    stats.nodes <- stats.nodes + 1;
    if stats.nodes > max_nodes then raise Node_limit;
    stats.lp_solves <- stats.lp_solves + 1;
    match Problem.solve_relaxation ~extra:bounds problem with
    | Simplex.Infeasible -> ()
    | Simplex.Unbounded ->
        (* An unbounded relaxation at any node makes the ILP unbounded or
           infeasible; report unbounded conservatively from the root. *)
        unbounded := true
    | Simplex.Optimal solution ->
        let bound = Rat.floor solution.objective in
        if (not !unbounded) && better bound then begin
          match fractional_var solution with
          | None ->
              let values = Array.map Rat.to_int_exn solution.values in
              if better bound then incumbent := Some (bound, values)
          | Some (v, value) ->
              let floor_c =
                {
                  Problem.label = "branch-le";
                  terms = [ (1, List.nth (Problem.vars problem) v) ];
                  relation = Problem.Le;
                  bound = Rat.floor value;
                }
              and ceil_c =
                {
                  Problem.label = "branch-ge";
                  terms = [ (1, List.nth (Problem.vars problem) v) ];
                  relation = Problem.Ge;
                  bound = Rat.ceil value;
                }
              in
              (* Explore the floor branch first: WCET flows are usually
                 pushed to their bounds, so ceiling tends to win; trying
                 floor first still finds it via the second branch while the
                 incumbent from the first prunes elsewhere. *)
              node (floor_c :: bounds);
              node (ceil_c :: bounds)
        end
  in
  node [];
  if !unbounded then Unbounded
  else
    match !incumbent with
    | Some (objective, values) -> Optimal { objective; values }
    | None -> Infeasible

let pp_outcome ppf = function
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Optimal { objective; values } ->
      Fmt.pf ppf "optimal %d at (%a)" objective Fmt.(array ~sep:comma int) values
