(** Two-phase simplex over exact rationals with Bland's rule and sparse
    constraint rows.

    Solves [max c.x  s.t.  A x {<=,>=,=} b,  x >= 0].  Constraints are
    given sparsely — IPET flow matrices are ~95 % zeros — and pivots only
    walk the nonzero support of the pivot row.  Exactness matters because
    the solver's output is used as a claimed sound upper bound on
    worst-case execution time. *)

type op = Le | Ge | Eq

type lp = {
  num_vars : int;
  maximize : Rat.t array;  (** objective coefficients, length [num_vars] *)
  constraints : ((int * Rat.t) list * op * Rat.t) list;
      (** sparse rows: (variable index, coefficient) pairs; indices must be
          in [0, num_vars); duplicate indices are summed *)
}

type solution = { objective : Rat.t; values : Rat.t array }
type result = Optimal of solution | Infeasible | Unbounded

val solve : lp -> result
val pp_result : result Fmt.t
