(* Two-phase simplex over exact rationals with sparse constraint input.

   Standard textbook algorithm with Bland's anti-cycling rule:
   - constraints arrive as sparse (variable, coefficient) rows and are
     normalised to non-negative right-hand sides;
   - Le constraints get a slack variable, Ge a surplus plus an artificial,
     Eq an artificial;
   - phase 1 maximises minus the sum of artificials; a negative optimum
     means the problem is infeasible;
   - phase 2 reuses the phase-1 tableau: the user objective is installed
     and priced out in place, with artificial columns banned from entering.

   IPET flow matrices are ~95 % zeros (each flow-conservation row touches a
   handful of the hundreds of columns), so the tableau is built from sparse
   rows and every pivot walks only the nonzero columns of the pivot row —
   entries outside that support are unchanged by the row operation.  The
   backing store stays a dense array per row because pivoting fills in.

   Exact rationals (with overflow detection) make the solver sound, which
   matters because its output is a claimed *upper bound* on execution time. *)

type op = Le | Ge | Eq

type lp = {
  num_vars : int;
  maximize : Rat.t array;
  constraints : ((int * Rat.t) list * op * Rat.t) list;
      (* sparse rows: (variable index, nonzero coefficient) pairs *)
}

type solution = { objective : Rat.t; values : Rat.t array }
type result = Optimal of solution | Infeasible | Unbounded

type tableau = {
  rows : Rat.t array array;  (* m rows, each of width [cols] *)
  rhs : Rat.t array;
  basis : int array;  (* column index of the basic variable of each row *)
  cost : Rat.t array;  (* current reduced costs *)
  mutable objective : Rat.t;
  cols : int;
  art_first : int;  (* first artificial column; cols if none *)
  nz_scratch : int array;  (* reusable buffer for pivot-row nonzeros *)
}

exception Infeasible_exn

let pivot t ~row ~col =
  let piv = t.rows.(row).(col) in
  assert (Rat.sign piv > 0);
  let r = t.rows.(row) in
  (* Collect the nonzero support of the pivot row once; every update below
     only touches these columns (zero pivot-row entries leave the other
     rows untouched). *)
  let nnz = ref 0 in
  if Rat.equal piv Rat.one then begin
    for j = 0 to t.cols - 1 do
      if not (Rat.is_zero r.(j)) then begin
        t.nz_scratch.(!nnz) <- j;
        incr nnz
      end
    done
  end
  else begin
    let inv = Rat.inv piv in
    for j = 0 to t.cols - 1 do
      if not (Rat.is_zero r.(j)) then begin
        r.(j) <- Rat.mul r.(j) inv;
        t.nz_scratch.(!nnz) <- j;
        incr nnz
      end
    done;
    t.rhs.(row) <- Rat.mul t.rhs.(row) inv
  end;
  let nnz = !nnz in
  let eliminate coeffs =
    let factor = coeffs.(col) in
    if Rat.is_zero factor then Rat.zero
    else begin
      for k = 0 to nnz - 1 do
        let j = t.nz_scratch.(k) in
        coeffs.(j) <- Rat.sub coeffs.(j) (Rat.mul factor r.(j))
      done;
      Rat.mul factor t.rhs.(row)
    end
  in
  Array.iteri
    (fun i coeffs ->
      if i <> row then
        let delta = eliminate coeffs in
        if not (Rat.is_zero delta) then t.rhs.(i) <- Rat.sub t.rhs.(i) delta)
    t.rows;
  (* The cost row represents z = objective + sum cbar_j x_j, so its constant
     moves with the opposite sign from the constraint rows. *)
  t.objective <- Rat.add t.objective (eliminate t.cost);
  t.basis.(row) <- col

(* One simplex phase: maximise until no improving column.  [allowed col]
   filters which columns may enter the basis (used to ban artificials in
   phase 2).  Bland's rule: smallest-index entering column; ratio-test ties
   broken by smallest basic-variable index. *)
let iterate t ~allowed =
  let m = Array.length t.rows in
  let rec step () =
    let entering = ref (-1) in
    (try
       for j = 0 to t.cols - 1 do
         if allowed j && Rat.sign t.cost.(j) > 0 then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let leave = ref (-1) in
      let best = ref Rat.zero in
      for i = 0 to m - 1 do
        if Rat.sign t.rows.(i).(col) > 0 then begin
          let ratio = Rat.div t.rhs.(i) t.rows.(i).(col) in
          if
            !leave < 0
            || Rat.lt ratio !best
            || (Rat.equal ratio !best && t.basis.(i) < t.basis.(!leave))
          then begin
            leave := i;
            best := ratio
          end
        end
      done;
      if !leave < 0 then `Unbounded
      else begin
        pivot t ~row:!leave ~col;
        step ()
      end
    end
  in
  step ()

let solve lp =
  let m = List.length lp.constraints in
  (* Normalise to non-negative rhs and count extra columns. *)
  let normalised =
    List.map
      (fun (terms, op, rhs) ->
        List.iter (fun (v, _) -> assert (v >= 0 && v < lp.num_vars)) terms;
        if Rat.sign rhs < 0 then
          let flipped = match op with Le -> Ge | Ge -> Le | Eq -> Eq in
          (List.map (fun (v, c) -> (v, Rat.neg c)) terms, flipped, Rat.neg rhs)
        else (terms, op, rhs))
      lp.constraints
  in
  let n_slack =
    List.length (List.filter (fun (_, op, _) -> op <> Eq) normalised)
  in
  let n_art =
    List.length (List.filter (fun (_, op, _) -> op <> Le) normalised)
  in
  let art_first = lp.num_vars + n_slack in
  let cols = art_first + n_art in
  let rows = Array.init m (fun _ -> Array.make cols Rat.zero) in
  let rhs = Array.make m Rat.zero in
  let basis = Array.make m (-1) in
  let next_slack = ref lp.num_vars in
  let next_art = ref art_first in
  List.iteri
    (fun i (terms, op, b) ->
      List.iter
        (fun (v, c) -> rows.(i).(v) <- Rat.add rows.(i).(v) c)
        terms;
      rhs.(i) <- b;
      match op with
      | Le ->
          rows.(i).(!next_slack) <- Rat.one;
          basis.(i) <- !next_slack;
          incr next_slack
      | Ge ->
          rows.(i).(!next_slack) <- Rat.minus_one;
          incr next_slack;
          rows.(i).(!next_art) <- Rat.one;
          basis.(i) <- !next_art;
          incr next_art
      | Eq ->
          rows.(i).(!next_art) <- Rat.one;
          basis.(i) <- !next_art;
          incr next_art)
    normalised;
  let t =
    { rows; rhs; basis; cost = Array.make cols Rat.zero; objective = Rat.zero;
      cols; art_first; nz_scratch = Array.make cols 0 }
  in
  (* Phase 1: maximise -(sum of artificials).  With artificials basic, the
     reduced costs are the column sums over the artificial rows. *)
  if n_art > 0 then begin
    for i = 0 to m - 1 do
      if basis.(i) >= art_first then begin
        for j = 0 to art_first - 1 do
          if not (Rat.is_zero rows.(i).(j)) then
            t.cost.(j) <- Rat.add t.cost.(j) rows.(i).(j)
        done;
        t.objective <- Rat.sub t.objective rhs.(i)
      end
    done;
    match iterate t ~allowed:(fun j -> j < art_first) with
    | `Unbounded -> assert false (* phase-1 objective is bounded above by 0 *)
    | `Optimal ->
        if Rat.sign t.objective < 0 then raise Infeasible_exn
  end;
  (* Drive any artificial still in the basis (at value 0) out, or mark its
     row redundant by zeroing it. *)
  for i = 0 to m - 1 do
    if t.basis.(i) >= art_first then begin
      let piv = ref (-1) in
      (try
         for j = 0 to art_first - 1 do
           if Rat.sign t.rows.(i).(j) <> 0 then begin
             piv := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !piv >= 0 then begin
        (* The row is degenerate (rhs = 0), so a negative pivot element can
           be made positive by negating the whole row. *)
        if Rat.sign t.rows.(i).(!piv) < 0 then begin
          t.rows.(i) <- Array.map Rat.neg t.rows.(i);
          t.rhs.(i) <- Rat.neg t.rhs.(i)
        end;
        pivot t ~row:i ~col:!piv
      end
      else begin
        (* Redundant row: clear it so it can never constrain anything. *)
        Array.fill t.rows.(i) 0 cols Rat.zero;
        t.rhs.(i) <- Rat.zero;
        t.rows.(i).(t.basis.(i)) <- Rat.one
      end
    end
  done;
  (* Phase 2 reuses the phase-1 tableau: install the user objective and
     price out basic columns in place. *)
  Array.fill t.cost 0 cols Rat.zero;
  t.objective <- Rat.zero;
  Array.blit lp.maximize 0 t.cost 0 lp.num_vars;
  for i = 0 to m - 1 do
    let b = t.basis.(i) in
    if b < lp.num_vars then begin
      let c = lp.maximize.(b) in
      if not (Rat.is_zero c) then begin
        let r = t.rows.(i) in
        for j = 0 to cols - 1 do
          if not (Rat.is_zero r.(j)) then
            t.cost.(j) <- Rat.sub t.cost.(j) (Rat.mul c r.(j))
        done;
        t.objective <- Rat.add t.objective (Rat.mul c t.rhs.(i))
      end
    end
  done;
  match iterate t ~allowed:(fun j -> j < art_first) with
  | `Unbounded -> Unbounded
  | `Optimal ->
      let values = Array.make lp.num_vars Rat.zero in
      for i = 0 to m - 1 do
        if t.basis.(i) < lp.num_vars then values.(t.basis.(i)) <- t.rhs.(i)
      done;
      Optimal { objective = t.objective; values }

let solve lp = try solve lp with Infeasible_exn -> Infeasible

let pp_result ppf = function
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Optimal { objective; values } ->
      Fmt.pf ppf "optimal %a at (%a)" Rat.pp objective
        Fmt.(array ~sep:comma Rat.pp)
        values
