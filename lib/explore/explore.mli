(** Stateless DPOR-style exploration of multi-preemption schedules.

    Where the injection campaign ([Inject]) sweeps single interrupts, the
    explorer enumerates {e interleavings}: a schedule places preemptions
    at chosen poll indices and runs a client action — a signal, a
    notification poll, a re-queueing send on the endpoint under abort —
    in the window each preemption opens, before the long-running
    operation restarts.

    The schedule space is pruned with the static interference relation of
    [Race], in the style of dynamic partial-order reduction: actions
    whose footprints commute (no semantic conflict) with the operation's
    sections, the IRQ-delivery path and every other action are slid to a
    canonical placement, and only canonical schedules run; conflicting
    actions are decisions, explored in every placement and order.  Every
    explored schedule is judged by the injection oracles (invariants
    after each exit, strict measure decrease, digest agreement across the
    three scheduler variants), and final states are deduplicated by
    canonical digest. *)

(** {1 Actions} *)

type action = {
  act_name : string;
  act_fp : Race.footprint;
      (** semantic footprint; instances are root-CNode slot indices *)
  act_actor_slot : int;  (** root-CNode slot of the acting thread's TCB *)
  act_event : Sel4.Kernel.event option;
      (** [None]: the preemption alone ("pause") *)
}

val actions_for : Inject.op -> action list
(** The scenario alphabet.  Only {!Inject.Ep_delete} and
    {!Inject.Badged_abort} have scenarios; raises [Invalid_argument]
    otherwise. *)

val op_sections : Inject.op -> Race.footprint list
(** The operation's own sections instantiated for the scenario's concrete
    objects, plus the IRQ-delivery path: what an action must commute with
    to be independent. *)

val independent_actions : Inject.op -> action list -> string list
(** Names of the globally-independent actions of an alphabet: those that
    commute, on digest-visible state, with every operation section and
    with every other action. *)

(** {1 Schedules} *)

type sched = (int * action) list
(** Sorted by poll index; distinct polls, distinct actions. *)

val universe : polls:int -> depth:int -> action list -> sched list
(** Every schedule of at most [depth] (poll, action) pairs over poll
    indices [1..polls]. *)

val canonical : polls:int -> indep:string list -> sched -> bool
(** Is this schedule its equivalence class's canonical representative?
    The globally-independent actions, taken in name order, must occupy
    the smallest polls left free by the decision actions.  Sliding an
    independent action to its canonical poll crosses only sections and
    actions it commutes with, so every class keeps exactly one canonical
    member. *)

val run_sched :
  build:Sel4.Build.t ->
  op:Inject.op ->
  sz:Inject.sizes ->
  schedule:sched ->
  unit ->
  (string * int, string) result
(** Replay the operation firing the schedule's preemptions and running
    each fired action in the window its preemption opens, with the
    invariant and progress-measure oracles armed.  [Ok (digest, polls)]
    on success. *)

(** {1 Reports} *)

type failure = {
  x_variant : string;
  x_schedule : (int * string) list;
  x_reason : string;
}

type scen_report = {
  e_scenario : string;
  e_depth : int;
  e_polls : int;  (** H: polls of the uninterrupted reference run *)
  e_alphabet : string list;
  e_independent : string list;
  e_universe : int;
  e_explored : int;
  e_pruned : int;
  e_deduped : int;  (** explored schedules converging on a seen digest *)
  e_digest_classes : int;
  e_runs : ((int * string) list * string) list;
      (** explored schedule -> final digest (first variant) *)
  e_failures : failure list;
}

type report = {
  x_smoke : bool;
  x_depth : int;
  x_scens : scen_report list;
  x_total_runs : int;
}

val run_scenario :
  ?naive:bool ->
  depth:int ->
  Sel4_rt.Analysis_ctx.t ->
  Inject.op ->
  scen_report * int
(** Explore one scenario; returns the report and the number of runs.
    [naive] disables pruning and the differential replay (first variant
    only) — the full-enumeration reference the pruning-soundness test
    compares digest sets against. *)

val run : ?smoke:bool -> ?depth:int -> Sel4_rt.Analysis_ctx.t -> report
(** The campaign: ep-delete at [depth] (default 3, smoke 2) and — full
    mode only — badged-abort at depth [<= 2]. *)

val ok : report -> bool
val pp_report : report Fmt.t

val to_json : report -> string
(** Shares the campaign envelope with [Inject.to_json]: [campaign],
    [ok], [total_runs], and an [ops] array with per-unit [failures]. *)
