(* Stateless DPOR-style exploration of multi-preemption schedules.

   The injection campaign ([Inject]) sweeps single interrupts and random
   multi-interrupt schedules; this module turns the same workloads into a
   systematic model checker over {e interleavings}: a schedule places a
   preemption at a chosen poll index and runs a client {e action} — a
   signal, a notification poll, a re-queueing send — in the window the
   preemption opens, before the long-running operation restarts.

   Exhaustive enumeration of (polls x actions) explodes, so schedules are
   pruned with the static interference relation of [Race], in the style
   of dynamic partial-order reduction with persistent/sleep sets:

   - An action whose footprint commutes (no semantic conflict) with every
     section of the operation, with the IRQ-delivery path {e and} with
     every other action in the alphabet is {e globally independent}:
     sliding it to a different poll, or across another independent
     action, provably reaches the same final state.  Each equivalence
     class keeps one canonical representative — independent actions
     occupy the smallest free polls in name order — and all other members
     are pruned without running.
   - Actions that do conflict (with the operation or with each other) are
     {e decisions}: every placement and relative order is explored.

   Every explored schedule is judged by the injection oracles (invariant
   catalogue after each kernel exit, strict decrease of the progress
   measure, final-state digest agreement across the three scheduler
   variants), and final states are deduplicated by canonical digest —
   schedules converging on an already-validated state skip the
   differential replay.

   The pruning-soundness test ([test_explore]) checks the construction
   empirically: naive full enumeration and DPOR exploration must reach
   exactly the same set of final-state digests, with a substantial
   fraction pruned. *)

open Sel4.Ktypes
module K = Sel4.Kernel
module B = Sel4.Boot

(* --- actions --- *)

(* Footprint instances are root-CNode slot indices: every object an
   explore footprint names is identified by the slot of its defining
   capability (the endpoint under deletion sits at slot 10, the
   notifications at 50/51).  Self-consistent within this module; the
   class-level [Race] catalogue never names instances. *)
type action = {
  act_name : string;
  act_fp : Race.footprint;
  act_actor_slot : int;  (** root-CNode slot of the acting thread's TCB *)
  act_event : K.event option;  (** [None]: the preemption alone ("pause") *)
}

let pause = { act_name = "pause"; act_fp = []; act_actor_slot = 0; act_event = None }

(* ep_delete scenario: notifications A (slot 50) and B (slot 51), actor
   threads at slots 60-62.  signal_a/poll_a race on notification A's word
   (signal ORs the badge in, poll reads and clears it — the order is
   digest-visible); signal_b touches only notification B and commutes
   with everything. *)
let ep_delete_actions =
  [
    pause;
    {
      act_name = "signal_a";
      act_fp = [ Race.r ~obj:50 Race.Cap; Race.w ~obj:50 Race.Notification ];
      act_actor_slot = 60;
      act_event = Some (K.Ev_signal { ntfn = B.cptr 50 });
    };
    {
      act_name = "poll_a";
      act_fp = Race.r ~obj:50 Race.Cap :: Race.rw ~obj:50 Race.Notification;
      act_actor_slot = 61;
      act_event = Some (K.Ev_poll { ntfn = B.cptr 50 });
    };
    {
      act_name = "signal_b";
      act_fp = [ Race.r ~obj:51 Race.Cap; Race.w ~obj:51 Race.Notification ];
      act_actor_slot = 62;
      act_event = Some (K.Ev_signal { ntfn = B.cptr 51 });
    };
  ]

(* badged_abort scenario: a fresh client re-queues on the endpoint under
   abort through the badge-7 cap (slot 11) mid-scan — the cross-op
   interference of Section 3.4.  The send conflicts with every abort
   section on the endpoint queue; the abort's progress measure is immune
   by construction (the scan stops at the end-of-queue marker captured
   when the abort began), which the measure oracle re-checks on every
   explored schedule. *)
let badged_abort_actions =
  [
    pause;
    {
      act_name = "requeue";
      act_fp =
        (Race.r ~obj:11 Race.Cap :: Race.rw ~obj:10 Race.Endpoint)
        @ [ Race.w Race.Tcb ];
      act_actor_slot = 60;
      act_event =
        Some
          (K.Ev_send
             { ep = B.cptr 11; msg_len = 1; extra_caps = []; blocking = true });
    };
    {
      act_name = "signal_b";
      act_fp = [ Race.r ~obj:51 Race.Cap; Race.w ~obj:51 Race.Notification ];
      act_actor_slot = 61;
      act_event = Some (K.Ev_signal { ntfn = B.cptr 51 });
    };
  ]

(* The operation's own sections, instantiated for the scenario's concrete
   objects (endpoint cap at slot 10), plus the IRQ-delivery path taken at
   every preemption: the environment an action must commute with. *)
let op_sections op =
  let overhead = Race.rw Race.Kernel_stack @ [ Race.r Race.Irq_state ] in
  let irq_deliver =
    Race.rw Race.Kernel_stack @ Race.rw Race.Sched_queues @ Race.rw Race.Tcb
    @ [ Race.r Race.Irq_state; Race.w Race.Cur_thread ]
  in
  let ep_sections =
    overhead
    @ Race.rw ~obj:10 Race.Endpoint
    @ Race.rw Race.Tcb @ Race.rw Race.Sched_queues
    @ [
        Race.r ~obj:10 Race.Cap;
        Race.w ~obj:10 Race.Cap;
        Race.w ~obj:10 Race.Cdt_links;
      ]
  in
  match op with
  | Inject.Ep_delete | Inject.Badged_abort -> [ ep_sections; irq_deliver ]
  | Inject.Retype_clear | Inject.Vspace_delete ->
      invalid_arg "Explore: only ep_delete and badged_abort have scenarios"

let actions_for = function
  | Inject.Ep_delete -> ep_delete_actions
  | Inject.Badged_abort -> badged_abort_actions
  | Inject.Retype_clear | Inject.Vspace_delete ->
      invalid_arg "Explore: only ep_delete and badged_abort have scenarios"

(* Globally independent: commutes (on digest-visible state) with the
   operation's sections, the IRQ path, and every other action. *)
let independent_actions op alphabet =
  let sections = op_sections op in
  List.filter
    (fun a ->
      List.for_all
        (Race.independent ~semantic_only:true a.act_fp)
        sections
      && List.for_all
           (fun b ->
             b.act_name = a.act_name
             || Race.independent ~semantic_only:true a.act_fp b.act_fp)
           alphabet)
    alphabet
  |> List.map (fun a -> a.act_name)

(* --- scenario workload extras --- *)

(* Spawned after [Inject.setup]: the notifications the actions target and
   a runnable actor thread per acting slot.  Slots 50+ are disjoint from
   the injection workloads (endpoint at 10, badged caps at 11/12, parked
   senders from 20). *)
let extra_setup op env =
  ignore (B.spawn_notification env ~dest:50);
  ignore (B.spawn_notification env ~dest:51);
  let actor_slots =
    actions_for op
    |> List.filter_map (fun a ->
           if a.act_event = None then None else Some a.act_actor_slot)
    |> List.sort_uniq compare
  in
  List.iter
    (fun slot ->
      let t = B.spawn_thread env ~priority:50 ~dest:slot in
      B.make_runnable env t)
    actor_slots;
  K.force_run env.B.k env.B.root_tcb

let tcb_at env slot =
  match env.B.root_cnode.cn_slots.(slot).cap with
  | Tcb_cap t -> t
  | _ -> invalid_arg (Fmt.str "Explore: no TCB cap at actor slot %d" slot)

(* --- schedules --- *)

type sched = (int * action) list
(* Sorted by poll; distinct polls, distinct actions. *)

let descr (s : sched) = List.map (fun (p, a) -> (p, a.act_name)) s

(* Subsets of size [k], elements kept in order. *)
let rec subsets k = function
  | _ when k = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
      List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest

(* Ordered arrangements of [k] distinct elements. *)
let rec arrangements k l =
  if k = 0 then [ [] ]
  else
    List.concat_map
      (fun x ->
        List.map
          (fun rest -> x :: rest)
          (arrangements (k - 1) (List.filter (fun y -> y != x) l)))
      l

let universe ~polls ~depth alphabet : sched list =
  let all_polls = List.init polls (fun i -> i + 1) in
  List.concat_map
    (fun d ->
      List.concat_map
        (fun poll_set ->
          List.map
            (fun acts -> List.combine poll_set acts)
            (arrangements d alphabet))
        (subsets d all_polls))
    (List.init (min depth (List.length alphabet)) (fun i -> i + 1))

(* Canonicity: the globally-independent actions of a schedule, taken in
   name order, must occupy the smallest polls left free by the decision
   actions.  Every schedule is digest-equivalent to exactly one canonical
   one (slide each independent action, in turn, to its canonical poll:
   each slide crosses only sections and actions it commutes with), so
   exploring canonical schedules covers every equivalence class. *)
let canonical ~polls ~indep (s : sched) =
  let dep_polls =
    List.filter_map
      (fun (p, a) -> if List.mem a.act_name indep then None else Some p)
      s
  in
  let free =
    List.filter
      (fun p -> not (List.mem p dep_polls))
      (List.init polls (fun i -> i + 1))
  in
  let placed =
    List.filter (fun (_, a) -> List.mem a.act_name indep) s
    (* schedules are poll-sorted already *)
  in
  let expected_names =
    List.sort compare (List.map (fun (_, a) -> a.act_name) placed)
  in
  let expected =
    List.combine
      (List.filteri (fun i _ -> i < List.length placed) free)
      expected_names
  in
  List.map (fun (p, a) -> (p, a.act_name)) placed = expected

(* --- one run --- *)

let ( let* ) = Result.bind

let check_invariants k =
  match Sel4.Invariants.check_result k with
  | Ok () -> Ok ()
  | Error ms -> Error ("invariants: " ^ String.concat "; " ms)

(* Replay [op] under [build], firing the preemptions of [schedule] and
   running each fired action in the window its preemption opens.  Returns
   the final digest and the total polls of the run. *)
let run_sched ~build ~op ~sz ~(schedule : sched) () =
  match
    let env = B.boot build in
    let d = Inject.setup env sz op in
    extra_setup op env;
    let k = env.B.k in
    K.set_injection_hook k
      (Some (fun poll -> List.mem_assoc poll schedule));
    let executed = Hashtbl.create 8 in
    let perform (poll, act) =
      Hashtbl.replace executed poll ();
      match act.act_event with
      | None -> Ok ()
      | Some ev -> (
          K.force_run k (tcb_at env act.act_actor_slot);
          match K.kernel_entry k ev with
          | K.Preempted -> Error (act.act_name ^ ": action itself preempted")
          | K.Failed e -> Error (act.act_name ^ ": " ^ e)
          | K.Completed -> check_invariants k)
    in
    let max_entries = 4096 + (4 * List.length schedule) in
    let rec go entries last_m =
      if entries > max_entries then
        Error "runaway restart loop (no forward progress?)"
      else begin
        K.force_run k d.d_initiator;
        let outcome = K.kernel_entry k d.d_event in
        let* () = check_invariants k in
        match outcome with
        | K.Failed e -> Error ("kernel reported: " ^ e)
        | K.Completed ->
            let m = d.d_measure () in
            if m <> 0 then
              Error (Fmt.str "completed with residual measure %d" m)
            else begin
              let polls = K.preempt_polls k in
              K.set_injection_hook k None;
              Ok (Sel4.Digest.of_kernel k, polls)
            end
        | K.Preempted ->
            let m = d.d_measure () in
            let* () =
              match last_m with
              | Some lm when m >= lm ->
                  Error
                    (Fmt.str
                       "restart progress violated: measure %d after %d (must \
                        strictly decrease)"
                       m lm)
              | _ -> Ok ()
            in
            let fired =
              List.filter
                (fun (p, _) ->
                  p <= K.preempt_polls k && not (Hashtbl.mem executed p))
                schedule
            in
            let* () =
              List.fold_left
                (fun acc pa -> Result.bind acc (fun () -> perform pa))
                (Ok ()) fired
            in
            go (entries + 1) (Some m)
      end
    in
    go 1 None
  with
  | result -> result
  | exception B.Boot_failure e -> Error ("setup: " ^ e)
  | exception Sel4.Invariants.Violation e -> Error ("invariant raised: " ^ e)

(* --- reports --- *)

type failure = {
  x_variant : string;
  x_schedule : (int * string) list;
  x_reason : string;
}

type scen_report = {
  e_scenario : string;
  e_depth : int;
  e_polls : int;  (** H: polls of the uninterrupted reference run *)
  e_alphabet : string list;
  e_independent : string list;  (** globally-independent subset *)
  e_universe : int;
  e_explored : int;
  e_pruned : int;
  e_deduped : int;  (** explored schedules converging on a seen digest *)
  e_digest_classes : int;
  e_runs : ((int * string) list * string) list;
      (** explored schedule -> final digest (first variant) *)
  e_failures : failure list;
}

type report = {
  x_smoke : bool;
  x_depth : int;
  x_scens : scen_report list;
  x_total_runs : int;
}

(* --- metrics --- *)

let m_runs = Obs.Metrics.counter "explore.runs"
let m_universe = Obs.Metrics.counter "explore.universe"
let m_explored = Obs.Metrics.counter "explore.explored"
let m_pruned = Obs.Metrics.counter "explore.pruned"
let m_deduped = Obs.Metrics.counter "explore.deduped"
let m_failures = Obs.Metrics.counter "explore.failures"

(* --- the exploration --- *)

let scenario_depth ~depth op =
  match op with
  | Inject.Ep_delete -> depth
  | Inject.Badged_abort -> min depth 2
  | _ -> depth

let run_scenario ?(naive = false) ~depth (actx : Sel4_rt.Analysis_ctx.t) op =
  (* Workload sizes stay at smoke scale: the breadth here is the schedule
     space, not the object counts, and poll indices must stay enumerable. *)
  let sz = Inject.sizes ~smoke:true in
  let builds = Inject.variants ~base:actx.Sel4_rt.Analysis_ctx.build op in
  let v0 = List.hd builds in
  let total_runs = ref 0 in
  let run ~build schedule =
    incr total_runs;
    Obs.Metrics.incr m_runs;
    run_sched ~build ~op ~sz ~schedule ()
  in
  (* The uninterrupted reference run fixes H, the poll universe. *)
  let polls =
    match run ~build:v0 [] with
    | Ok (_, polls) -> polls
    | Error e -> invalid_arg ("Explore: reference run failed: " ^ e)
  in
  let alphabet = actions_for op in
  let indep = independent_actions op alphabet in
  let all = universe ~polls ~depth alphabet in
  let seen = Hashtbl.create 64 in
  let explored = ref 0 in
  let pruned = ref 0 in
  let deduped = ref 0 in
  let runs = ref [] in
  let failures = ref [] in
  let fail variant schedule reason =
    failures :=
      { x_variant = variant; x_schedule = descr schedule; x_reason = reason }
      :: !failures
  in
  List.iter
    (fun schedule ->
      if (not naive) && not (canonical ~polls ~indep schedule) then
        incr pruned
      else begin
        incr explored;
        match run ~build:v0 schedule with
        | Error e ->
            fail (Inject.variant_name v0.Sel4.Build.sched) schedule e
        | Ok (d0, _) ->
            runs := (descr schedule, d0) :: !runs;
            if Hashtbl.mem seen d0 then incr deduped
            else begin
              Hashtbl.replace seen d0 ();
              if not naive then
                List.iter
                  (fun build ->
                    match run ~build schedule with
                    | Error e ->
                        fail
                          (Inject.variant_name build.Sel4.Build.sched)
                          schedule e
                    | Ok (d, _) ->
                        if d <> d0 then
                          fail "differential" schedule
                            (Fmt.str
                               "final state diverges between %s and %s"
                               (Inject.variant_name v0.Sel4.Build.sched)
                               (Inject.variant_name build.Sel4.Build.sched)))
                  (List.tl builds)
            end
      end)
    all;
  ( {
      e_scenario = Inject.op_name op;
      e_depth = depth;
      e_polls = polls;
      e_alphabet = List.map (fun a -> a.act_name) alphabet;
      e_independent = indep;
      e_universe = List.length all;
      e_explored = !explored;
      e_pruned = !pruned;
      e_deduped = !deduped;
      e_digest_classes = Hashtbl.length seen;
      e_runs = List.rev !runs;
      e_failures = List.rev !failures;
    },
    !total_runs )

let scenario_ops = [ Inject.Ep_delete; Inject.Badged_abort ]

let run ?(smoke = false) ?depth (actx : Sel4_rt.Analysis_ctx.t) =
  let depth = match depth with Some d -> d | None -> if smoke then 2 else 3 in
  let ops = if smoke then [ Inject.Ep_delete ] else scenario_ops in
  let scens, total =
    List.fold_left
      (fun (acc, total) op ->
        let r, n = run_scenario ~depth:(scenario_depth ~depth op) actx op in
        (r :: acc, total + n))
      ([], 0) ops
  in
  let scens = List.rev scens in
  List.iter
    (fun s ->
      Obs.Metrics.incr ~by:s.e_universe m_universe;
      Obs.Metrics.incr ~by:s.e_explored m_explored;
      Obs.Metrics.incr ~by:s.e_pruned m_pruned;
      Obs.Metrics.incr ~by:s.e_deduped m_deduped;
      Obs.Metrics.incr ~by:(List.length s.e_failures) m_failures)
    scens;
  { x_smoke = smoke; x_depth = depth; x_scens = scens; x_total_runs = total }

let ok r = List.for_all (fun s -> s.e_failures = []) r.x_scens

(* --- rendering --- *)

let pp_report ppf r =
  Fmt.pf ppf "schedule exploration (%s, depth <= %d): %d runs@."
    (if r.x_smoke then "smoke" else "full")
    r.x_depth r.x_total_runs;
  List.iter
    (fun s ->
      Fmt.pf ppf
        "  %-14s polls=%d alphabet={%s} independent={%s}@.\
        \    universe=%d explored=%d pruned=%d (%.0f%%) deduped=%d \
         digest_classes=%d failures=%d@."
        s.e_scenario s.e_polls
        (String.concat "," s.e_alphabet)
        (String.concat "," s.e_independent)
        s.e_universe s.e_explored s.e_pruned
        (if s.e_universe = 0 then 0.
         else 100. *. float_of_int s.e_pruned /. float_of_int s.e_universe)
        s.e_deduped s.e_digest_classes
        (List.length s.e_failures);
      List.iter
        (fun f ->
          Fmt.pf ppf "    FAIL [%s] schedule [%s]: %s@." f.x_variant
            (String.concat "; "
               (List.map (fun (p, n) -> Fmt.str "%d:%s" p n) f.x_schedule))
            f.x_reason)
        s.e_failures)
    r.x_scens

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shares the campaign envelope with [Inject.to_json]: [campaign], [ok],
   [total_runs], and an [ops] array with per-unit [failures]. *)
let to_json r =
  let b = Buffer.create 1024 in
  let addf fmt = Fmt.kstr (Buffer.add_string b) fmt in
  addf "{\n  \"campaign\": \"explore\",\n  \"smoke\": %b,\n  \"depth\": %d,\n"
    r.x_smoke r.x_depth;
  addf "  \"ok\": %b,\n  \"total_runs\": %d,\n  \"ops\": [\n" (ok r)
    r.x_total_runs;
  List.iteri
    (fun i s ->
      addf
        "    {\"name\": \"%s\", \"polls\": %d, \"universe\": %d, \
         \"explored\": %d, \"pruned\": %d, \"deduped\": %d, \
         \"digest_classes\": %d, \"failures\": ["
        s.e_scenario s.e_polls s.e_universe s.e_explored s.e_pruned s.e_deduped
        s.e_digest_classes;
      List.iteri
        (fun j f ->
          addf "%s{\"variant\": \"%s\", \"schedule\": [%s], \"reason\": \"%s\"}"
            (if j > 0 then ", " else "")
            (json_escape f.x_variant)
            (String.concat ", "
               (List.map
                  (fun (p, n) -> Fmt.str "[%d, \"%s\"]" p (json_escape n))
                  f.x_schedule))
            (json_escape f.x_reason))
        s.e_failures;
      addf "]}%s\n" (if i < List.length r.x_scens - 1 then "," else ""))
    r.x_scens;
  addf "  ]\n}\n";
  Buffer.contents b
