(** Adversarial workloads: best-effort recreation of worst cases on the
    executable kernel (Section 5.4).  Caches are polluted with dirty lines
    before each measured entry; the observed worst case is the maximum
    over several pollution seeds.

    Drivers take an {!Analysis_ctx.t}. *)

type scenario = {
  env : Sel4.Boot.env;
  cpu : Hw.Cpu.t;
  measured_event : Sel4.Kernel.event;
  victim : Sel4.Ktypes.tcb;  (** the thread that traps for the event *)
}

exception Scenario_failed of { entry : string; seed : int; reason : string }
(** A measured event failed outright: which entry point, under which
    pollution seed, and the kernel's error message. *)

val build_deep_cspace :
  Sel4.Boot.env -> depth:int -> Sel4.Ktypes.cap * Sel4.Ktypes.cnode array
(** The Figure 7 capability space: a chain of radix-1 CNodes, one decode
    level per address bit.  Returns the root capability and the chain. *)

val place_leaf :
  Sel4.Kernel.t -> Sel4.Ktypes.cnode array -> level:int -> Sel4.Ktypes.cap -> int
(** Install a leaf capability reachable through [level+1] decode levels;
    returns its capability address. *)

val scenario : Analysis_ctx.t -> Kernel_model.entry_point -> scenario
(** Construct the worst-case scenario for one entry point: full-depth
    decodes, maximum message, granted capabilities, waiting receiver /
    registered handler / deep fault-handler address. *)

val measure_once : scenario -> seed:int -> Sel4.Kernel.outcome * int
(** Pollute the caches with [seed] and measure one kernel entry. *)

val observed : ?runs:int -> Analysis_ctx.t -> Kernel_model.entry_point -> int
(** Maximum observed cycles over [runs] freshly built scenarios.
    @raise Scenario_failed if the measured event fails outright. *)

type provenance = {
  workload : string;  (** entry-point name *)
  worst_seed : int;  (** pollution seed of the worst run *)
  section : string;  (** worst non-preemptible section / delivery section *)
  section_cycles : int;
  cycles_to_preempt : int option;
      (** cycles from interrupt assertion to the first polled preemption
          point, when one was reached before delivery *)
  stall_cycles : int;  (** memory-hierarchy share of the section *)
  compute_cycles : int;
}

val pp_provenance : provenance Fmt.t

val run_traced :
  buf:Obs.Trace.t ->
  seed:int ->
  Analysis_ctx.t ->
  Kernel_model.entry_point ->
  Sel4.Kernel.outcome * int
(** Build the scenario, attach [buf], pollute with [seed] and measure one
    kernel entry.  Cycle counts are bit-identical to an untraced run. *)

val observed_traced :
  ?runs:int ->
  Analysis_ctx.t ->
  Kernel_model.entry_point ->
  int * provenance
(** Same maximum as {!observed} (tracing never charges cycles), plus the
    latency attribution of the worst run.
    @raise Scenario_failed if the measured event fails outright. *)
