(** The unified analysis context: one value carrying the four inputs every
    analysis driver needs — the hardware configuration, the workload
    parameters, the cache-pinning selection and the kernel build variant —
    so drivers take [Analysis_ctx.t] instead of re-copying the
    [?params ?pins ~config build] label sprawl.

    {!Response_time}, {!Workloads}, {!Experiments} and [Inject] are all
    expressed in terms of it; the deprecated optional-label wrappers that
    bridged one release have been removed. *)

type pins = { code : int list; data : int list }
(** Cache lines locked into one L1 way (Section 4 of the paper):
    instruction lines in [code], data lines in [data]. *)

val no_pins : pins

type t = {
  config : Hw.Config.t;  (** hardware/cache configuration *)
  params : Kernel_model.params;  (** workload shape (depth, message, caps) *)
  pins : pins;  (** pinned cache lines, [no_pins] when unused *)
  build : Sel4.Build.t;  (** kernel build variant under analysis *)
}

val make :
  ?config:Hw.Config.t ->
  ?params:Kernel_model.params ->
  ?pins:pins ->
  ?build:Sel4.Build.t ->
  unit ->
  t
(** Smart constructor.  Defaults: {!Hw.Config.default},
    {!Kernel_model.default_params}, {!no_pins}, {!Sel4.Build.improved}. *)

val default : t
(** [make ()]. *)

(** Functional updates, for deriving one-field variants of a base
    context (ablations, build sweeps): *)

val with_config : t -> Hw.Config.t -> t
val with_params : t -> Kernel_model.params -> t
val with_pins : t -> pins -> t
val with_build : t -> Sel4.Build.t -> t

val pp : t Fmt.t
