(* WCET timing skeletons: the static-analysis view of the kernel.

   The paper's toolchain extracts a CFG from the compiled kernel binary
   (Section 5.2).  Our stand-in builds the CFGs declaratively, but from
   the *same* cost constants ({!Sel4.Costs}) and the *same* code-region
   addresses ({!Sel4.Layout}) that the executable kernel charges, so the
   analysis and the measurements agree structurally and differ only where
   the paper's do: conservative cache modelling and infeasible paths.

   Response-time semantics (Sections 5.2-5.3): an analysed path ends
   either at the return to user or at a preemption point (where a pending
   interrupt is serviced), so preemptible loops are bounded by the work
   between preemption points — one iteration.  With preemption points
   disabled (the "before" kernel), the same loops are bounded by the full
   data-structure sizes, which is exactly what Table 2's "before" column
   pays. *)

module F = Cfg.Flowgraph
module T = Wcet.Timing

type params = {
  decode_depth : int;  (* capability-space levels (Figure 7) *)
  msg_words : int;  (* message registers copied per IPC phase *)
  extra_caps : int;  (* capabilities granted per IPC *)
  max_frame_bits : int;  (* largest object retyped in the scenario *)
  max_ep_waiters : int;  (* endpoint queue length bound *)
  max_parked : int;  (* stale threads lazy scheduling can park *)
  preemptible_call : bool;
      (* Section 6.1's suggested improvement: a preemption point between
         the send and receive phases of the atomic call, so the analysed
         interrupts-off path covers one phase, not both. *)
}

let default_params =
  {
    decode_depth = Sel4.Costs.max_cspace_depth;
    msg_words = Sel4.Costs.max_msg_len;
    extra_caps = Sel4.Costs.max_extra_caps;
    max_frame_bits = 17;
    (* 128 KiB: the open-system scenario's largest object *)
    max_ep_waiters = 256;
    max_parked = 64;
    preemptible_call = false;
  }

(* --- block construction helpers --- *)

(* Per-function instruction-offset tracking so consecutive blocks occupy
   consecutive I-cache lines of the function's code region. *)
type fb = {
  builder : T.t F.Builder.t;
  mutable offsets : (string * int ref) list;  (* region -> instrs emitted *)
}

let fb name = { builder = F.Builder.create name; offsets = [] }

let dyn ?(write = false) count = T.Dynamic { write; count }
let static ?(write = false) addr = T.Static { addr; write }

let block fb ~region ~label ~instrs ?(accesses = []) ?branch ?call () =
  let off =
    match List.assoc_opt region fb.offsets with
    | Some r -> r
    | None ->
        let r = ref 0 in
        fb.offsets <- (region, r) :: fb.offsets;
        r
  in
  let code = Sel4.Layout.code region in
  (* Wrap within the region's instruction budget. *)
  let base = code.Sel4.Layout.base + (4 * (!off mod code.Sel4.Layout.instrs)) in
  off := !off + instrs;
  F.Builder.add ?call fb.builder ~label
    (T.make ~accesses ?branch ~base ~instrs ())

(* A bounded loop: pre -> head -> body -> head, head -> (returns exit).
   Returns (entry=head, exit, header label for the bound). *)
let simple_loop fb ~name ~region ~body_instrs ~body_accesses =
  let head =
    block fb ~region ~label:(name ^ "_head") ~instrs:2 ()
  in
  let body =
    block fb ~region ~label:(name ^ "_body") ~instrs:body_instrs
      ~accesses:body_accesses ()
  in
  let exit_ = block fb ~region ~label:(name ^ "_exit") ~instrs:1 () in
  F.Builder.edge fb.builder head body;
  F.Builder.edge fb.builder body head;
  F.Builder.edge fb.builder head exit_;
  (head, exit_, name ^ "_head")

(* --- shared functions --- *)

(* Capability lookup: one loop iteration per decode level (Figure 7), two
   pointer-chasing loads per level. *)
let lookup_fn () =
  let f = fb "lookup" in
  let entry =
    block f ~region:"cspace_lookup" ~label:"l_setup" ~instrs:6
      ~accesses:[ dyn 1 ] ()
  in
  let head, exit_, header =
    simple_loop f ~name:"l" ~region:"cspace_lookup"
      ~body_instrs:Sel4.Costs.cspace_level_instrs ~body_accesses:[ dyn 2 ]
  in
  F.Builder.edge f.builder entry head;
  ignore exit_;
  (F.Builder.finish f.builder, header)

(* Message copy, one cache line (8 words) per iteration: the memory cost
   is line-granular on the hardware, so modelling it per word would be
   pessimism the real analysis does not have. *)
let words_per_line = 8

let msgcopy_fn () =
  let f = fb "msgcopy" in
  let entry = block f ~region:"slowpath_ipc" ~label:"m_setup" ~instrs:3 () in
  let head, _, header =
    simple_loop f ~name:"m" ~region:"slowpath_ipc"
      ~body_instrs:(words_per_line * Sel4.Costs.per_message_word_instrs)
      ~body_accesses:[ dyn 1; dyn ~write:true 1 ]
  in
  F.Builder.edge f.builder entry head;
  (F.Builder.finish f.builder, header)

(* Capability transfer: per granted cap, a full source lookup plus
   derivation-tree surgery. *)
let capxfer_fn () =
  let f = fb "capxfer" in
  let entry = block f ~region:"transfer_caps" ~label:"x_setup" ~instrs:4 () in
  let head = block f ~region:"transfer_caps" ~label:"x_head" ~instrs:2 () in
  let look =
    block f ~region:"transfer_caps" ~label:"x_lookup" ~call:"lookup" ~instrs:2 ()
  in
  let install =
    block f ~region:"transfer_caps" ~label:"x_install"
      ~instrs:Sel4.Costs.cap_transfer_instrs
      ~accesses:[ dyn ~write:true 3 ]
      ()
  in
  let exit_ = block f ~region:"transfer_caps" ~label:"x_exit" ~instrs:1 () in
  F.Builder.edge f.builder entry head;
  F.Builder.edge f.builder head look;
  F.Builder.edge f.builder look install;
  F.Builder.edge f.builder install head;
  F.Builder.edge f.builder head exit_;
  (F.Builder.finish f.builder, "x_head")

let block_fb = block

(* Scheduler chooseThread, per variant. *)
let choose_fn (build : Sel4.Build.t) =
  let f = fb "choose" in
  (match build.Sel4.Build.sched with
  | Sel4.Build.Benno_bitmap ->
      (* Two loads and two CLZ: loop-free (Section 3.2). *)
      let b =
        block f ~region:"sched_choose" ~label:"ch_bitmap"
          ~instrs:Sel4.Costs.choose_thread_bitmap_instrs
          ~accesses:
            [
              static Sel4.Layout.bitmap_top;
              dyn 1 (* bucket word *);
              dyn 1 (* queue head *);
              dyn 1 (* chosen tcb *);
            ]
          ()
      in
      ignore b
  | Sel4.Build.Benno ->
      (* Figure 3: scan priorities; heads are runnable by invariant. *)
      let entry = block f ~region:"sched_choose" ~label:"ch_setup" ~instrs:2 () in
      let head, _, _ =
        simple_loop f ~name:"ch" ~region:"sched_choose"
          ~body_instrs:Sel4.Costs.choose_thread_scan_per_prio_instrs
          ~body_accesses:[ dyn 1 ]
      in
      F.Builder.edge f.builder entry head
  | Sel4.Build.Lazy ->
      (* Figure 2: scan priorities, dequeueing stale blocked threads. *)
      let entry = block f ~region:"sched_choose" ~label:"ch_setup" ~instrs:2 () in
      let head = block f ~region:"sched_choose" ~label:"ch_head" ~instrs:2 () in
      let scan =
        block f ~region:"sched_choose" ~label:"ch_scan"
          ~instrs:Sel4.Costs.choose_thread_scan_per_prio_instrs
          ~accesses:[ dyn 1 ] ()
      in
      let stale =
        block f ~region:"sched_choose" ~label:"ch_stale"
          ~instrs:
            (Sel4.Costs.lazy_dequeue_blocked_instrs
           + Sel4.Costs.dequeue_instrs)
          ~accesses:[ dyn ~write:true 3 ]
          ()
      in
      let exit_ = block f ~region:"sched_choose" ~label:"ch_exit" ~instrs:1 () in
      F.Builder.edge f.builder entry head;
      F.Builder.edge f.builder head scan;
      F.Builder.edge f.builder scan stale;
      F.Builder.edge f.builder stale scan;
      F.Builder.edge f.builder scan head;
      F.Builder.edge f.builder head exit_);
  F.Builder.finish f.builder

let ctxswitch_fn () =
  let f = fb "ctxswitch" in
  ignore
    (block f ~region:"context_switch" ~label:"cs"
       ~instrs:Sel4.Costs.context_switch_instrs
       ~accesses:
         [ static ~write:true Sel4.Layout.cur_thread_ptr; dyn 1 ]
       ());
  F.Builder.finish f.builder

(* Preemption-point polling block. *)
let preempt_block f ~label =
  block_fb f ~region:"preempt_check" ~label
    ~instrs:Sel4.Costs.preempt_check_instrs
    ~accesses:[ static Sel4.Layout.irq_pending_word ]
    ()

(* --- entry-point mains --- *)

let lines_per_chunk build = build.Sel4.Build.preempt_chunk / 32

(* Loop bound between preemption points (Section 5.3): one unit of work
   when preemption points exist, the full structure otherwise. *)
let preemptible_bound (build : Sel4.Build.t) ~full =
  if build.Sel4.Build.preemption_points then 1 else full

let vector_entry_block f =
  block_fb f ~region:"vector_entry" ~label:"vec_entry"
    ~instrs:Sel4.Costs.entry_instrs
    ~accesses:
      [
        static ~write:true Sel4.Layout.stack_base;
        static ~write:true (Sel4.Layout.stack_base + 32);
      ]
    ()

let vector_exit_block f =
  block_fb f ~region:"vector_exit" ~label:"vec_exit"
    ~instrs:Sel4.Costs.exit_instrs
    ~accesses:
      [ static Sel4.Layout.stack_base; static (Sel4.Layout.stack_base + 32) ]
    ()

(* The system-call entry point: decode, then one of the kernel's
   operations, then schedule and return. *)
let syscall_program (build : Sel4.Build.t) (p : params) =
  let f = fb "syscall" in
  let entry = vector_entry_block f in
  let decode =
    block_fb f ~region:"decode" ~label:"sc_decode"
      ~instrs:Sel4.Costs.decode_instrs ~accesses:[ dyn 1 ] ()
  in
  F.Builder.edge f.builder entry decode;
  let join = block_fb f ~region:"decode" ~label:"sc_join" ~instrs:2 () in
  (* --- operation arm: atomic send-receive IPC --- *)
  let ipc_lookup =
    block_fb f ~region:"decode" ~label:"op_ipc" ~call:"lookup" ~instrs:2 ()
  in
  F.Builder.edge f.builder decode ipc_lookup;
  let sp_fixed =
    block_fb f ~region:"slowpath_ipc" ~label:"sp_fixed"
      ~instrs:Sel4.Costs.slowpath_ipc_instrs
      ~accesses:[ dyn 1; dyn ~write:true 3 ]
      ()
  in
  F.Builder.edge f.builder ipc_lookup sp_fixed;
  (* Receiver waiting (dequeue + copy + grant) vs sender blocks. *)
  let sp_dequeue =
    block_fb f ~region:"endpoint_queue" ~label:"sp_dequeue"
      ~instrs:Sel4.Costs.ep_dequeue_instrs
      ~accesses:[ dyn ~write:true 3 ]
      ()
  in
  let sp_enqueue =
    block_fb f ~region:"endpoint_queue" ~label:"sp_enqueue"
      ~instrs:(Sel4.Costs.ep_enqueue_instrs + Sel4.Costs.set_state_instrs)
      ~accesses:[ dyn ~write:true 3 ]
      ()
  in
  F.Builder.edge f.builder sp_fixed sp_dequeue;
  F.Builder.edge f.builder sp_fixed sp_enqueue;
  (* Figure 6 in miniature: the transferred-capability type is switched on
     twice on the delivery path (validation, then installation).  Frame
     caps are expensive to validate; endpoint caps are expensive to
     install.  Without the consistent-with constraints the ILP combines
     the expensive arm of each switch — an infeasible path. *)
  let sp_t1_frame =
    block_fb f ~region:"slowpath_ipc" ~label:"sp_t1_frame" ~instrs:40
      ~accesses:[ dyn 5 ] ()
  in
  let sp_t1_ep = block_fb f ~region:"slowpath_ipc" ~label:"sp_t1_ep" ~instrs:6 () in
  let sp_m1 = block_fb f ~region:"slowpath_ipc" ~label:"sp_m1" ~instrs:1 () in
  F.Builder.edge f.builder sp_dequeue sp_t1_frame;
  F.Builder.edge f.builder sp_dequeue sp_t1_ep;
  F.Builder.edge f.builder sp_t1_frame sp_m1;
  F.Builder.edge f.builder sp_t1_ep sp_m1;
  let sp_copy =
    block_fb f ~region:"slowpath_ipc" ~label:"sp_copy" ~call:"msgcopy" ~instrs:1 ()
  in
  let sp_copied = block_fb f ~region:"slowpath_ipc" ~label:"sp_copied" ~instrs:1 () in
  F.Builder.edge f.builder sp_m1 sp_copy;
  F.Builder.edge f.builder sp_copy sp_copied;
  let sp_t2_frame =
    block_fb f ~region:"slowpath_ipc" ~label:"sp_t2_frame" ~instrs:6 ()
  in
  let sp_t2_ep =
    block_fb f ~region:"slowpath_ipc" ~label:"sp_t2_ep" ~instrs:40
      ~accesses:[ dyn 5 ] ()
  in
  let sp_m2 = block_fb f ~region:"slowpath_ipc" ~label:"sp_m2" ~instrs:1 () in
  F.Builder.edge f.builder sp_copied sp_t2_frame;
  F.Builder.edge f.builder sp_copied sp_t2_ep;
  F.Builder.edge f.builder sp_t2_frame sp_m2;
  F.Builder.edge f.builder sp_t2_ep sp_m2;
  let sp_grant =
    block_fb f ~region:"slowpath_ipc" ~label:"sp_grant" ~call:"capxfer" ~instrs:1 ()
  in
  let sp_nogrant = block_fb f ~region:"slowpath_ipc" ~label:"sp_nogrant" ~instrs:1 () in
  let sp_wake =
    block_fb f ~region:"set_thread_state" ~label:"sp_wake"
      ~instrs:(2 * Sel4.Costs.set_state_instrs)
      ~accesses:[ dyn ~write:true 2 ]
      ()
  in
  let sp_done = block_fb f ~region:"slowpath_ipc" ~label:"sp_done" ~instrs:1 () in
  F.Builder.edge f.builder sp_m2 sp_grant;
  F.Builder.edge f.builder sp_m2 sp_nogrant;
  F.Builder.edge f.builder sp_grant sp_wake;
  F.Builder.edge f.builder sp_nogrant sp_wake;
  F.Builder.edge f.builder sp_wake sp_done;
  F.Builder.edge f.builder sp_enqueue sp_done;
  (* Receive phase of the atomic send-receive: ReplyRecv decodes the wait
     endpoint; a plain Call skips straight to the wait.  The WCET path
     takes the decode; the measured Call path does not — one of the
     legitimate gaps of Figure 8.

     With [preemptible_call] (the Section 6.1 suggestion), a preemption
     point separates the phases: the analysed interrupts-off path through
     the send phase ends there, and the receive phase is reached only via
     a restarted call (a separate decode arm), so the ILP maximises over
     the phases instead of summing them. *)
  let rp_lookup =
    block_fb f ~region:"slowpath_ipc" ~label:"rp_lookup" ~call:"lookup" ~instrs:2 ()
  in
  let rp_ret = block_fb f ~region:"slowpath_ipc" ~label:"rp_ret" ~instrs:1 () in
  let rp_merge = block_fb f ~region:"slowpath_ipc" ~label:"rp_merge" ~instrs:1 () in
  if p.preemptible_call then begin
    let call_preempt = preempt_block f ~label:"call_preempt" in
    F.Builder.edge f.builder sp_done call_preempt;
    F.Builder.edge f.builder call_preempt join;
    let resume =
      block_fb f ~region:"decode" ~label:"op_ipc_resume" ~instrs:4
        ~accesses:[ dyn 1 ] ()
    in
    F.Builder.edge f.builder decode resume;
    F.Builder.edge f.builder resume rp_lookup
  end
  else begin
    F.Builder.edge f.builder sp_done rp_lookup;
    F.Builder.edge f.builder sp_done rp_merge
  end;
  F.Builder.edge f.builder rp_lookup rp_ret;
  F.Builder.edge f.builder rp_ret rp_merge;
  let rp_copy =
    block_fb f ~region:"slowpath_ipc" ~label:"rp_copy" ~call:"msgcopy" ~instrs:1 ()
  in
  let rp_block =
    block_fb f ~region:"endpoint_queue" ~label:"rp_block"
      ~instrs:(Sel4.Costs.ep_enqueue_instrs + Sel4.Costs.set_state_instrs)
      ~accesses:[ dyn ~write:true 3 ]
      ()
  in
  F.Builder.edge f.builder rp_merge rp_copy;
  F.Builder.edge f.builder rp_merge rp_block;
  F.Builder.edge f.builder rp_copy join;
  F.Builder.edge f.builder rp_block join;
  (* --- operation arm: untyped retype (object creation, Section 3.5) --- *)
  let rt_lookup =
    block_fb f ~region:"decode" ~label:"op_retype" ~call:"lookup" ~instrs:2 ()
  in
  F.Builder.edge f.builder decode rt_lookup;
  let rt_fixed =
    block_fb f ~region:"untyped_retype" ~label:"rt_fixed"
      ~instrs:Sel4.Costs.retype_fixed_instrs
      ~accesses:[ dyn 2; dyn ~write:true 2 ]
      ()
  in
  F.Builder.edge f.builder rt_lookup rt_fixed;
  let clear_head = block_fb f ~region:"clear_memory" ~label:"clear_head" ~instrs:2 () in
  let clear_body =
    block_fb f ~region:"clear_memory" ~label:"clear_body"
      ~instrs:(Sel4.Costs.clear_line_instrs * lines_per_chunk build)
      ~accesses:[ dyn ~write:true (lines_per_chunk build) ]
      ()
  in
  let clear_preempt = preempt_block f ~label:"clear_preempt" in
  let rt_book =
    block_fb f ~region:"untyped_retype" ~label:"rt_book"
      ~instrs:Sel4.Costs.retype_fixed_instrs
      ~accesses:[ dyn ~write:true 4 ]
      ()
  in
  (* Page-directory creation additionally copies the kernel mappings:
     1 KiB, deliberately unpreemptible. *)
  let rt_pd_copy =
    block_fb f ~region:"pd_create" ~label:"rt_pd_copy"
      ~instrs:(Sel4.Costs.clear_line_instrs * (1024 / 32))
      ~accesses:[ dyn (1024 / 32); dyn ~write:true (1024 / 32) ]
      ()
  in
  let rt_no_pd = block_fb f ~region:"untyped_retype" ~label:"rt_no_pd" ~instrs:1 () in
  F.Builder.edge f.builder rt_fixed clear_head;
  F.Builder.edge f.builder clear_head clear_body;
  F.Builder.edge f.builder clear_body clear_preempt;
  F.Builder.edge f.builder clear_preempt clear_head;
  F.Builder.edge f.builder clear_head rt_book;
  F.Builder.edge f.builder rt_book rt_pd_copy;
  F.Builder.edge f.builder rt_book rt_no_pd;
  F.Builder.edge f.builder rt_pd_copy join;
  F.Builder.edge f.builder rt_no_pd join;
  (* --- operation arm: endpoint deletion (Section 3.3) --- *)
  let del_lookup =
    block_fb f ~region:"decode" ~label:"op_delete" ~call:"lookup" ~instrs:2 ()
  in
  F.Builder.edge f.builder decode del_lookup;
  let del_head = block_fb f ~region:"endpoint_delete" ~label:"del_head" ~instrs:2 () in
  let del_body =
    block_fb f ~region:"endpoint_delete" ~label:"del_body"
      ~instrs:
        (Sel4.Costs.ep_dequeue_instrs + Sel4.Costs.enqueue_instrs
       + Sel4.Costs.set_state_instrs)
      ~accesses:[ dyn ~write:true 5 ]
      ()
  in
  let del_preempt = preempt_block f ~label:"del_preempt" in
  let del_done =
    block_fb f ~region:"endpoint_delete" ~label:"del_done" ~instrs:8
      ~accesses:[ dyn ~write:true 2 ] ()
  in
  F.Builder.edge f.builder del_lookup del_head;
  F.Builder.edge f.builder del_head del_body;
  F.Builder.edge f.builder del_body del_preempt;
  F.Builder.edge f.builder del_preempt del_head;
  F.Builder.edge f.builder del_head del_done;
  F.Builder.edge f.builder del_done join;
  (* --- operation arm: badged abort (Section 3.4) --- *)
  let ab_lookup =
    block_fb f ~region:"decode" ~label:"op_abort" ~call:"lookup" ~instrs:2 ()
  in
  F.Builder.edge f.builder decode ab_lookup;
  let ab_head = block_fb f ~region:"badge_abort" ~label:"ab_head" ~instrs:2 () in
  let ab_body =
    block_fb f ~region:"badge_abort" ~label:"ab_body"
      ~instrs:(Sel4.Costs.badge_scan_instrs + Sel4.Costs.ep_dequeue_instrs)
      ~accesses:[ dyn ~write:true 3 ]
      ()
  in
  let ab_preempt = preempt_block f ~label:"ab_preempt" in
  let ab_done =
    block_fb f ~region:"badge_abort" ~label:"ab_done" ~instrs:6
      ~accesses:[ dyn ~write:true 1 ] ()
  in
  F.Builder.edge f.builder ab_lookup ab_head;
  F.Builder.edge f.builder ab_head ab_body;
  F.Builder.edge f.builder ab_body ab_preempt;
  F.Builder.edge f.builder ab_preempt ab_head;
  F.Builder.edge f.builder ab_head ab_done;
  F.Builder.edge f.builder ab_done join;
  (* --- operation arm: address-space management (Section 3.6) --- *)
  let vs_lookup =
    block_fb f ~region:"decode" ~label:"op_vspace" ~call:"lookup" ~instrs:2 ()
  in
  F.Builder.edge f.builder decode vs_lookup;
  (match build.Sel4.Build.vspace with
  | Sel4.Build.Shadow_tables ->
      (* Preemptible per-entry teardown. *)
      let vs_head = block_fb f ~region:"vspace_delete" ~label:"vs_head" ~instrs:2 () in
      let vs_body =
        block_fb f ~region:"vspace_delete" ~label:"vs_body"
          ~instrs:Sel4.Costs.unmap_entry_instrs
          ~accesses:[ dyn 2; dyn ~write:true 2 ]
          ()
      in
      let vs_preempt = preempt_block f ~label:"vs_preempt" in
      let vs_done =
        block_fb f ~region:"vspace_delete" ~label:"vs_done"
          ~instrs:Sel4.Costs.tlb_invalidate_instrs ()
      in
      F.Builder.edge f.builder vs_lookup vs_head;
      F.Builder.edge f.builder vs_head vs_body;
      F.Builder.edge f.builder vs_body vs_preempt;
      F.Builder.edge f.builder vs_preempt vs_head;
      F.Builder.edge f.builder vs_head vs_done;
      F.Builder.edge f.builder vs_done join
  | Sel4.Build.Asid_table ->
      (* The unpreemptible ASID loops: free-slot search on assignment and
         the 1024-entry pool teardown. *)
      let as_search_head =
        block_fb f ~region:"asid_ops" ~label:"as_head" ~instrs:2 ()
      in
      let as_search_body =
        block_fb f ~region:"asid_ops" ~label:"as_body"
          ~instrs:Sel4.Costs.asid_search_per_slot_instrs ~accesses:[ dyn 1 ] ()
      in
      let as_done =
        block_fb f ~region:"asid_ops" ~label:"as_done"
          ~instrs:Sel4.Costs.tlb_invalidate_instrs
          ~accesses:[ dyn ~write:true 2 ]
          ()
      in
      F.Builder.edge f.builder vs_lookup as_search_head;
      F.Builder.edge f.builder as_search_head as_search_body;
      F.Builder.edge f.builder as_search_body as_search_head;
      F.Builder.edge f.builder as_search_head as_done;
      F.Builder.edge f.builder as_done join;
      let pool_lookup =
        block_fb f ~region:"decode" ~label:"op_pool_delete" ~call:"lookup"
          ~instrs:2 ()
      in
      F.Builder.edge f.builder decode pool_lookup;
      let pool_head = block_fb f ~region:"asid_ops" ~label:"pool_head" ~instrs:2 () in
      let pool_body =
        block_fb f ~region:"asid_ops" ~label:"pool_body"
          ~instrs:Sel4.Costs.asid_search_per_slot_instrs
          ~accesses:[ dyn 1; dyn ~write:true 1 ]
          ()
      in
      let pool_done =
        block_fb f ~region:"asid_ops" ~label:"pool_done"
          ~instrs:Sel4.Costs.tlb_invalidate_instrs ()
      in
      F.Builder.edge f.builder pool_lookup pool_head;
      F.Builder.edge f.builder pool_head pool_body;
      F.Builder.edge f.builder pool_body pool_head;
      F.Builder.edge f.builder pool_head pool_done;
      F.Builder.edge f.builder pool_done join);
  (* --- common exit: schedule and return to user --- *)
  let sched =
    block_fb f ~region:"sched_choose" ~label:"sc_sched" ~call:"choose" ~instrs:1 ()
  in
  let switch =
    block_fb f ~region:"context_switch" ~label:"sc_switch" ~call:"ctxswitch"
      ~instrs:1 ()
  in
  let exit_ = vector_exit_block f in
  F.Builder.edge f.builder join sched;
  F.Builder.edge f.builder sched switch;
  F.Builder.edge f.builder switch exit_;
  F.Builder.finish f.builder

(* Interrupt entry: vector in, interrupt path, deliver to the handler
   endpoint, schedule, return. *)
let interrupt_program (_build : Sel4.Build.t) =
  let f = fb "interrupt" in
  let entry = vector_entry_block f in
  let irq =
    block_fb f ~region:"irq_path" ~label:"irq_dispatch"
      ~instrs:Sel4.Costs.irq_path_instrs
      ~accesses:
        [
          static Sel4.Layout.irq_pending_word;
          static Sel4.Layout.irq_handler_table;
          dyn 1;
        ]
      ()
  in
  let deliver =
    block_fb f ~region:"irq_path" ~label:"irq_deliver"
      ~instrs:(Sel4.Costs.ep_dequeue_instrs + Sel4.Costs.set_state_instrs)
      ~accesses:[ dyn ~write:true 3 ]
      ()
  in
  let no_handler = block_fb f ~region:"irq_path" ~label:"irq_nohandler" ~instrs:2 () in
  let sched =
    block_fb f ~region:"sched_choose" ~label:"irq_sched" ~call:"choose" ~instrs:1 ()
  in
  let switch =
    block_fb f ~region:"context_switch" ~label:"irq_switch" ~call:"ctxswitch"
      ~instrs:1 ()
  in
  let exit_ = vector_exit_block f in
  F.Builder.edge f.builder entry irq;
  F.Builder.edge f.builder irq deliver;
  F.Builder.edge f.builder irq no_handler;
  F.Builder.edge f.builder deliver sched;
  F.Builder.edge f.builder no_handler sched;
  F.Builder.edge f.builder sched switch;
  F.Builder.edge f.builder switch exit_;
  F.Builder.finish f.builder

(* Fault entries (page fault / undefined instruction): one capability
   decode to the fault handler, a short fault message, schedule, return. *)
let fault_program (_build : Sel4.Build.t) ~name =
  let f = fb name in
  let entry = vector_entry_block f in
  let fault =
    block_fb f ~region:"fault_path" ~label:(name ^ "_save")
      ~instrs:Sel4.Costs.slowpath_ipc_instrs
      ~accesses:[ dyn 2; dyn ~write:true 2 ]
      ()
  in
  let look =
    block_fb f ~region:"fault_path" ~label:(name ^ "_lookup") ~call:"lookup"
      ~instrs:2 ()
  in
  let looked = block_fb f ~region:"fault_path" ~label:(name ^ "_looked") ~instrs:1 () in
  let deliver =
    block_fb f ~region:"fault_path" ~label:(name ^ "_deliver")
      ~instrs:
        (Sel4.Costs.ep_dequeue_instrs + (4 * Sel4.Costs.per_message_word_instrs)
       + (2 * Sel4.Costs.set_state_instrs))
      ~accesses:[ dyn 2; dyn ~write:true 3 ]
      ()
  in
  let queue =
    block_fb f ~region:"fault_path" ~label:(name ^ "_queue")
      ~instrs:(Sel4.Costs.ep_enqueue_instrs + Sel4.Costs.set_state_instrs)
      ~accesses:[ dyn ~write:true 3 ]
      ()
  in
  let sched =
    block_fb f ~region:"sched_choose" ~label:(name ^ "_sched") ~call:"choose"
      ~instrs:1 ()
  in
  let switch =
    block_fb f ~region:"context_switch" ~label:(name ^ "_switch")
      ~call:"ctxswitch" ~instrs:1 ()
  in
  let exit_ = vector_exit_block f in
  F.Builder.edge f.builder entry fault;
  F.Builder.edge f.builder fault look;
  F.Builder.edge f.builder look looked;
  F.Builder.edge f.builder looked deliver;
  F.Builder.edge f.builder looked queue;
  F.Builder.edge f.builder deliver sched;
  F.Builder.edge f.builder queue sched;
  F.Builder.edge f.builder sched switch;
  F.Builder.edge f.builder switch exit_;
  F.Builder.finish f.builder

(* --- assembled specs --- *)

type entry_point = Syscall | Interrupt | Page_fault | Undefined_instruction

let entry_points = [ Syscall; Interrupt; Page_fault; Undefined_instruction ]

let entry_name = function
  | Syscall -> "System call"
  | Interrupt -> "Interrupt"
  | Page_fault -> "Page fault"
  | Undefined_instruction -> "Undefined instruction"

let entry_main = function
  | Syscall -> "syscall"
  | Interrupt -> "interrupt"
  | Page_fault -> "page_fault"
  | Undefined_instruction -> "undef"

let shared_functions build =
  let lookup, _ = lookup_fn () in
  let msgcopy, _ = msgcopy_fn () in
  let capxfer, _ = capxfer_fn () in
  [ lookup; msgcopy; capxfer; choose_fn build; ctxswitch_fn () ]

(* Loop bounds.  Automatically computed bounds (Section 5.3) are used for
   the loops the {!Kernel_loops} pipeline can analyse; the rest carry the
   structural annotations described above. *)
let bounds (build : Sel4.Build.t) (p : params) ~main =
  let chunk = build.Sel4.Build.preempt_chunk in
  let max_frame_bytes = 1 lsl p.max_frame_bits in
  let computed =
    Kernel_loops.catalogue ~max_frame_bytes ~chunk
  in
  let find name fallback =
    match
      List.find_opt
        (fun (r : Kernel_loops.result) ->
          String.length r.Kernel_loops.spec.Kernel_loops.name >= String.length name
          && String.sub r.Kernel_loops.spec.Kernel_loops.name 0 (String.length name)
             = name)
        computed
    with
    | Some { Kernel_loops.computed = Some b; _ } -> b
    | _ -> fallback
  in
  let decode_bound = find "cspace_decode" (p.decode_depth + 1) in
  let scan_bound = find "priority_scan" 257 in
  let full_chunks = find "clear_object" ((max_frame_bytes / chunk) + 1) - 1 in
  let mk func header bound = { Wcet.Ipet.func; header; bound } in
  [
    mk "lookup" "l_head" decode_bound;
    mk "msgcopy" "m_head" (((p.msg_words + words_per_line - 1) / words_per_line) + 1);
    mk "capxfer" "x_head" (p.extra_caps + 1);
  ]
  @ (match build.Sel4.Build.sched with
    | Sel4.Build.Benno_bitmap -> []
    | Sel4.Build.Benno -> [ mk "choose" "ch_head" scan_bound ]
    | Sel4.Build.Lazy ->
        [
          mk "choose" "ch_head" scan_bound;
          mk "choose" "ch_scan" (scan_bound + p.max_parked);
        ])
  @
  if main <> "syscall" then []
  else
    [
      mk "syscall" "clear_head"
        (preemptible_bound build ~full:full_chunks + 1);
      mk "syscall" "del_head"
        (preemptible_bound build ~full:p.max_ep_waiters + 1);
      mk "syscall" "ab_head"
        (preemptible_bound build ~full:p.max_ep_waiters + 1);
    ]
    @ (match build.Sel4.Build.vspace with
      | Sel4.Build.Shadow_tables ->
          [
            mk "syscall" "vs_head"
              (preemptible_bound build ~full:Sel4.Ktypes.kernel_pde_first + 1);
          ]
      | Sel4.Build.Asid_table ->
          [
            mk "syscall" "as_head" (Sel4.Ktypes.asid_pool_size + 1);
            mk "syscall" "pool_head" (Sel4.Ktypes.asid_pool_size + 1);
          ])

(* The manual ILP constraints of Section 5.2.  The consistent-with pair
   plays the Figure 6 role (the capability type is switched on twice along
   the delivery path); the executes-at-most form caps the lazy scheduler's
   stale dequeues by the parked-thread population, which the natural loop
   bound cannot express. *)
let constraints (p : params) ~main =
  [
    Wcet.User_constraint.executes_at_most ~func:"choose" "ch_stale"
      p.max_parked;
  ]
  @
  if main <> "syscall" then []
  else
    [
      Wcet.User_constraint.consistent ~func:"syscall" "sp_t1_frame" "sp_t2_frame";
      Wcet.User_constraint.consistent ~func:"syscall" "sp_t1_ep" "sp_t2_ep";
    ]

(* --- Section 5.2 decision models --- *)

(* The delivery path switches on the transferred capability's type twice
   (the Figure 6 duplicated-switch pattern), once per transfer leg.
   Re-expressed as a TAC decision model over the run-constant [captype],
   the abstract interpreter proves the two switches consistent and the
   cross arms mutually exclusive. *)
let delivery_model : Wcet.Derive_constraints.model =
  let open Tac.Lang in
  let b label instrs term = { label; instrs; term } in
  {
    dm_name = "delivery";
    dm_func = "syscall";
    dm_program =
      {
        entry = "entry";
        params = [ { name = "captype"; lo = 0; hi = 1 } ];
        blocks =
          [
            b "entry" [] (Jump "t1");
            b "t1" []
              (Branch (Eq, Reg "captype", Imm 0, "t1_frame", "t1_ep"));
            b "t1_frame" [] (Jump "m1");
            b "t1_ep" [] (Jump "m1");
            b "m1" [] (Jump "t2");
            b "t2" []
              (Branch (Eq, Reg "captype", Imm 0, "t2_frame", "t2_ep"));
            b "t2_frame" [] (Jump "m2");
            b "t2_ep" [] (Jump "m2");
            b "m2" [] Halt;
          ];
      };
    dm_labels =
      [
        ("t1_frame", "sp_t1_frame");
        ("t1_ep", "sp_t1_ep");
        ("t2_frame", "sp_t2_frame");
        ("t2_ep", "sp_t2_ep");
      ];
    dm_calls_bound = 1;
  }

(* The lazy scheduler pops at most [max_parked] stale threads before it
   finds a runnable one: the stale arm sits in a loop whose trip count
   is the parked population, which the interval analysis bounds. *)
let stale_model (p : params) : Wcet.Derive_constraints.model =
  let open Tac.Lang in
  let b label instrs term = { label; instrs; term } in
  {
    dm_name = "stale";
    dm_func = "choose";
    dm_program =
      {
        entry = "entry";
        params = [ { name = "parked"; lo = 0; hi = p.max_parked } ];
        blocks =
          [
            b "entry" [ Assign ("i", Imm 0) ] (Jump "head");
            b "head" []
              (Branch (Lt, Reg "i", Reg "parked", "stale", "done"));
            b "stale" [ Binop ("i", Add, Reg "i", Imm 1) ] (Jump "head");
            b "done" [] Halt;
          ];
      };
    dm_labels = [ ("stale", "ch_stale") ];
    dm_calls_bound = 1;
  }

let decision_models (p : params) ~main =
  stale_model p :: (if main = "syscall" then [ delivery_model ] else [])

let constraint_report ?(params = default_params) ~main () =
  Wcet.Derive_constraints.audit
    ~models:(decision_models params ~main)
    ~manual:(constraints params ~main)

let spec ?(params = default_params) (build : Sel4.Build.t) entry =
  let main = entry_main entry in
  let program =
    match entry with
    | Syscall -> syscall_program build params
    | Interrupt -> interrupt_program build
    | Page_fault -> fault_program build ~name:"page_fault"
    | Undefined_instruction -> fault_program build ~name:"undef"
  in
  let derived =
    (Wcet.Derive_constraints.derive (decision_models params ~main))
      .Wcet.Derive_constraints.rep_derived
  in
  {
    Wcet.Ipet.program =
      { F.funcs = program :: shared_functions build; main };
    bounds = bounds build params ~main;
    constraints = constraints params ~main;
    derived;
  }

(* The realisable worst-ish path for Figure 8: the block counts our
   adversarial workload actually executes on the syscall path (full-depth
   decodes, full message, granted caps, receiver present, badged). *)
let realisable_syscall_path (p : params) =
  [
    ("syscall", "op_ipc", 1);
    ("syscall", "op_retype", 0);
    ("syscall", "op_delete", 0);
    ("syscall", "op_abort", 0);
    ("syscall", "op_vspace", 0);
    ("syscall", "sp_dequeue", 1);
    ("syscall", "sp_enqueue", 0);
    ("syscall", "sp_t1_ep", 1);
    ("syscall", "sp_t2_ep", 1);
    ("syscall", "rp_lookup", 0);
    ("syscall", "sp_grant", 1);
    ("syscall", "rp_block", 1);
    ("syscall", "rp_copy", 0);
    ("lookup", "l_body", (1 + p.extra_caps) * p.decode_depth);
    ("msgcopy", "m_body", (p.msg_words + words_per_line - 1) / words_per_line);
    ("capxfer", "x_install", p.extra_caps);
  ]

let realisable_fault_path (p : params) ~name =
  [
    (name, name ^ "_deliver", 1);
    (name, name ^ "_queue", 0);
    ("lookup", "l_body", p.decode_depth);
  ]

let realisable_interrupt_path (_p : params) =
  [ ("interrupt", "irq_deliver", 1); ("interrupt", "irq_nohandler", 0) ]

let realisable_path ?(params = default_params) entry =
  match entry with
  | Syscall -> realisable_syscall_path params
  | Interrupt -> realisable_interrupt_path params
  | Page_fault -> realisable_fault_path params ~name:"page_fault"
  | Undefined_instruction -> realisable_fault_path params ~name:"undef"
