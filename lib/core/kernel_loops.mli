(** The kernel's loops in the TAC mini-language, with their bounds
    computed mechanically (Section 5.3): counter analysis where the shape
    allows, slicing + bounded model checking otherwise, and the manual
    annotation recorded for cross-checking. *)

module L := Tac.Lang

type loop_spec = {
  name : string;
  program : L.program;
  header : string;
  annotated : int;  (** the bound the kernel source asserts *)
}

val clear_loop : max_bytes:int -> chunk:int -> loop_spec
(** Object clearing: for (off = 0; off < size; off += chunk). *)

val decode_loop : loop_spec
(** Capability decode: bits consumed per level are an input parameter, so
    only the model checker can bound it. *)

val priority_scan_loop : loop_spec
(** The Figure 3 scheduler scan over 256 priorities. *)

val asid_search_loop : pool_size:int -> loop_spec
(** The ASID free-slot search of Section 3.6 (occupancy in memory). *)

val badge_scan_loop : max_waiters:int -> loop_spec
(** The Section 3.4 badged-abort scan over an in-memory linked list: the
    trip count is carried through loads, so only the slice + model-check
    pipeline can bound it. *)

type method_used =
  | Counter_analysis
  | Model_checking
  | Abstract_interpretation
  | Annotation_only

type result = {
  spec : loop_spec;
  computed : int option;
  method_used : method_used;
  absint_bound : int option;
      (** the {!Tac.Absint} induction-variable bound (header visits per
          entry), computed independently as a cross-check; [None] where
          the abstract interpreter abstains (memory-carried counts) *)
  slice_stats : Tac.Slice.stats option;
}

val compute_bound : loop_spec -> result
(** Counter analysis first, then slice + model-check, then give up.  The
    abstract-interpretation bound is always computed alongside; it
    replaces the primary result when tighter, and becomes the method of
    record when every other method fails. *)

val catalogue : max_frame_bytes:int -> chunk:int -> result list
val pp_method : method_used Fmt.t
val pp_result : result Fmt.t
