(** Content-keyed, domain-safe memo cache over the WCET analysis pipeline.

    Results are keyed on (build variant, entry point, kernel-model
    parameters, hardware configuration, pinned lines, forced-path
    constraints, use of manual constraints); the analysis prefix (inlining
    + loop detection + cache fixpoint) is cached separately and shared by
    every ILP variant over it.  Concurrent requests for the same key
    compute once: later requesters block until the first one's result (or
    exception) is available.

    Cached {!Wcet.Ipet.result} values are shared structurally — treat
    their arrays as read-only. *)

val computed :
  ?params:Kernel_model.params ->
  ?pinned_code:int list ->
  ?pinned_data:int list ->
  ?use_constraints:bool ->
  ?sources:Wcet.Ipet.sources ->
  ?forced:(string * string * int) list ->
  config:Hw.Config.t ->
  Sel4.Build.t ->
  Kernel_model.entry_point ->
  Wcet.Ipet.result
(** Memoised [Kernel_model.spec |> Wcet.Ipet.analyse].
    [use_constraints:false] drops every user constraint; [sources]
    selects manual-only / derived-only / all constraint rows when they
    are on (default [`All]).  Less constrained variants warm-start from
    an already-cached [`All] sibling's solution. *)

val computed_cycles :
  ?params:Kernel_model.params ->
  ?pinned_code:int list ->
  ?pinned_data:int list ->
  ?use_constraints:bool ->
  ?sources:Wcet.Ipet.sources ->
  ?forced:(string * string * int) list ->
  config:Hw.Config.t ->
  Sel4.Build.t ->
  Kernel_model.entry_point ->
  int

type stats = {
  hits : int;  (** in-memory result hits (including waits on in-flight keys) *)
  misses : int;  (** cold computations (missed memory and the store) *)
  disk_hits : int;
      (** memory misses satisfied from the persistent store with zero ILP
          solves.  [hits], [disk_hits] and [misses] partition the result
          lookups — a persistent hit is never also counted as a miss. *)
  prefix_hits : int;
  prefix_misses : int;
}

val stats : unit -> stats

val hit_rate : stats -> float
(** [(hits + disk_hits) / (hits + disk_hits + misses)], 0 if no lookups. *)

type persist = {
  p_load : string -> Wcet.Ipet.persisted option;
      (** canonical key -> stored record; [None] on miss or corruption *)
  p_store : string -> Wcet.Ipet.persisted -> unit;
}
(** A persistent result store keyed by the canonical text rendering of the
    full analysis key (context digest convention: every field named,
    deterministic order).  Loaded records are {!Wcet.Ipet.rehydrate}d over
    the freshly prepared prefix, so a store hit performs no ILP build or
    solve; a missing or rejected record falls back to computing (and
    re-storing).  Implementations must be safe to call from any domain. *)

val set_persist : persist option -> unit
(** Install (or remove) the persistent store behind the memo tables.
    Installed by [Serve.Disk_cache.install]; [None] by default. *)

val reset : unit -> unit
(** Drop settled entries and zero the counters. *)

val reset_stats : unit -> unit
(** Zero the hit/miss counters without touching the cached entries; used
    at bench section boundaries so each section reports its own rates. *)

val set_enabled : bool -> unit
(** When disabled, every call recomputes from scratch and touches neither
    the tables nor the counters (the serial-fresh benchmark baseline). *)
