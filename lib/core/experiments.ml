(* The paper's evaluation, experiment by experiment.  Each function
   computes one table or figure and returns structured rows; the [print_*]
   companions render them in the paper's layout.  Absolute numbers differ
   from the paper (different substrate), but the shapes — who wins, by
   what factor, where the pessimism comes from — are the reproduction
   targets recorded in EXPERIMENTS.md. *)

let improved = Sel4.Build.improved
let original = Sel4.Build.original

let us = Hw.Config.cycles_to_us

(* Analysis jobs fan out over the shared domain pool.  Every job is a pure
   function of (entry, config, build, params), so batch results are
   deterministic and identical to the serial path; [Parallel.run_all]
   preserves submission order. *)
let batch thunks = Parallel.run_all (Parallel.default ()) thunks

(* Split a flat batch-result list into consecutive chunks of [n] (one chunk
   per row submitted). *)
let chunks n xs =
  let rec go acc xs =
    match xs with
    | [] -> List.rev acc
    | _ ->
        let rec take k xs =
          if k = 0 then ([], xs)
          else
            match xs with
            | [] -> invalid_arg "chunks: ragged input"
            | x :: rest ->
                let taken, rest = take (k - 1) rest in
                (x :: taken, rest)
        in
        let chunk, rest = take n xs in
        go (chunk :: acc) rest
  in
  go [] xs

(* --- Table 1: WCET with and without cache pinning --- *)

type table1_row = {
  t1_entry : Kernel_model.entry_point;
  without_pinning : int;  (* cycles *)
  with_pinning : int;
  gain_percent : float;
}

let table1 () =
  let selection = Pinning.select improved in
  let pins =
    {
      Response_time.code = selection.Pinning.code_lines;
      data = selection.Pinning.data_lines;
    }
  in
  let plain = Analysis_ctx.make ~build:improved () in
  let pinned =
    Analysis_ctx.make
      ~config:(Hw.Config.with_pinning Hw.Config.default)
      ~pins ~build:improved ()
  in
  let cells =
    batch
      (List.concat_map
         (fun entry ->
           [
             (fun () -> Response_time.computed_cycles plain entry);
             (fun () -> Response_time.computed_cycles pinned entry);
           ])
         Kernel_model.entry_points)
  in
  List.map2
    (fun entry -> function
      | [ without_pinning; with_pinning ] ->
          {
            t1_entry = entry;
            without_pinning;
            with_pinning;
            gain_percent =
              100.0
              *. float_of_int (without_pinning - with_pinning)
              /. float_of_int without_pinning;
          }
      | _ -> assert false)
    Kernel_model.entry_points (chunks 2 cells)

let print_table1 rows =
  let config = Hw.Config.default in
  Fmt.pr "@.Table 1: improvement in computed WCET from cache pinning@.";
  Fmt.pr "%-24s %14s %14s %8s@." "Event handler" "Without pinning"
    "With pinning" "% gain";
  List.iter
    (fun r ->
      Fmt.pr "%-24s %12.1f us %12.1f us %7.0f%%@."
        (Kernel_model.entry_name r.t1_entry)
        (us config r.without_pinning)
        (us config r.with_pinning)
        r.gain_percent)
    rows

(* --- Table 2: WCET before and after the changes, L2 off and on --- *)

(* Batch thunks mixing computed (IPET) and observed (traced execution)
   measurements; the variant keeps the thunk list homogeneous. *)
type meas = C of int | O of int * Workloads.provenance

let c_cycles = function C v -> v | O _ -> invalid_arg "expected computed"
let o_cycles = function O (v, p) -> (v, p) | C _ -> invalid_arg "expected observed"

type table2_cell = {
  computed : int;
  observed : int;
  ratio : float;
  prov : Workloads.provenance;
      (* where the observed worst case came from: pollution seed, worst
         non-preemptible section, stall/compute split *)
}

type table2_row = {
  t2_entry : Kernel_model.entry_point;
  before_l2_off : int;  (* computed only, as in the paper *)
  after_l2_off : table2_cell;
  after_l2_on : table2_cell;
}

let table2 ?(runs = 15) () =
  let before_off = Analysis_ctx.make ~build:original () in
  let after_off = Analysis_ctx.make ~build:improved () in
  let after_on = Analysis_ctx.make ~config:Hw.Config.with_l2 ~build:improved () in
  let cells =
    batch
      (List.concat_map
         (fun entry ->
           [
             (fun () -> C (Response_time.computed_cycles before_off entry));
             (fun () -> C (Response_time.computed_cycles after_off entry));
             (fun () ->
               let v, p = Response_time.observed_traced ~runs after_off entry in
               O (v, p));
             (fun () -> C (Response_time.computed_cycles after_on entry));
             (fun () ->
               let v, p = Response_time.observed_traced ~runs after_on entry in
               O (v, p));
           ])
         Kernel_model.entry_points)
  in
  let cell computed obs =
    let observed, prov = o_cycles obs in
    {
      computed;
      observed;
      ratio = float_of_int computed /. float_of_int observed;
      prov;
    }
  in
  List.map2
    (fun entry -> function
      | [ before; off_c; off_o; on_c; on_o ] ->
          {
            t2_entry = entry;
            before_l2_off = c_cycles before;
            after_l2_off = cell (c_cycles off_c) off_o;
            after_l2_on = cell (c_cycles on_c) on_o;
          }
      | _ -> assert false)
    Kernel_model.entry_points (chunks 5 cells)

let print_table2 rows =
  let off = Hw.Config.default and on = Hw.Config.with_l2 in
  Fmt.pr "@.Table 2: WCET per kernel entry point, before and after@.";
  Fmt.pr "%-22s | %10s | %10s %10s %6s | %10s %10s %6s@." "Event handler"
    "Before" "Computed" "Observed" "Ratio" "Computed" "Observed" "Ratio";
  Fmt.pr "%-22s | %10s | %21s %6s  | %21s %6s@." "" "L2 off" "after, L2 off" ""
    "after, L2 on" "";
  List.iter
    (fun r ->
      Fmt.pr "%-22s | %8.1fus | %8.1fus %8.1fus %6.2f | %8.1fus %8.1fus %6.2f@."
        (Kernel_model.entry_name r.t2_entry)
        (us off r.before_l2_off)
        (us off r.after_l2_off.computed)
        (us off r.after_l2_off.observed)
        r.after_l2_off.ratio
        (us on r.after_l2_on.computed)
        (us on r.after_l2_on.observed)
        r.after_l2_on.ratio)
    rows;
  Fmt.pr "Observed worst-case provenance (L2 off):@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Workloads.pp_provenance r.after_l2_off.prov)
    rows

(* --- Figure 8: overestimation of the hardware model on forced paths --- *)

type fig8_row = {
  f8_entry : Kernel_model.entry_point;
  overestimation_l2_off : float;  (* percent *)
  overestimation_l2_on : float;
}

let fig8 ?(runs = 15) () =
  let off = Analysis_ctx.make ~build:improved () in
  let on = Analysis_ctx.make ~config:Hw.Config.with_l2 ~build:improved () in
  let cells =
    batch
      (List.concat_map
         (fun entry ->
           [
             (fun () -> Response_time.computed_for_path off entry);
             (fun () -> Response_time.observed ~runs off entry);
             (fun () -> Response_time.computed_for_path on entry);
             (fun () -> Response_time.observed ~runs on entry);
           ])
         Kernel_model.entry_points)
  in
  let over predicted observed =
    100.0 *. float_of_int (predicted - observed) /. float_of_int observed
  in
  List.map2
    (fun entry -> function
      | [ off_p; off_o; on_p; on_o ] ->
          {
            f8_entry = entry;
            overestimation_l2_off = over off_p off_o;
            overestimation_l2_on = over on_p on_o;
          }
      | _ -> assert false)
    Kernel_model.entry_points (chunks 4 cells)

let print_fig8 rows =
  Fmt.pr "@.Figure 8: overestimation of the hardware model (forced paths)@.";
  Fmt.pr "%-24s %12s %12s@." "Path" "L2 off" "L2 on";
  List.iter
    (fun r ->
      Fmt.pr "%-24s %11.0f%% %11.0f%%@."
        (Kernel_model.entry_name r.f8_entry)
        r.overestimation_l2_off r.overestimation_l2_on)
    rows

(* --- Figure 9: observed effect of the L2 cache and branch predictor --- *)

type fig9_row = {
  f9_entry : Kernel_model.entry_point;
  baseline : int;
  with_l2 : int;
  with_bpred : int;
  with_both : int;
  f9_prov : Workloads.provenance;  (* attribution of the +both worst case *)
}

let fig9 ?(runs = 15) () =
  let obs config entry () =
    let ctx = Analysis_ctx.make ~config ~build:improved () in
    let v, p = Response_time.observed_traced ~runs ctx entry in
    O (v, p)
  in
  let cells =
    batch
      (List.concat_map
         (fun entry ->
           [
             obs Hw.Config.baseline entry;
             obs Hw.Config.with_l2 entry;
             obs Hw.Config.with_branch_predictor entry;
             obs Hw.Config.with_l2_and_branch_predictor entry;
           ])
         Kernel_model.entry_points)
  in
  List.map2
    (fun entry -> function
      | [ baseline; with_l2; with_bpred; with_both ] ->
          let both, prov = o_cycles with_both in
          {
            f9_entry = entry;
            baseline = fst (o_cycles baseline);
            with_l2 = fst (o_cycles with_l2);
            with_bpred = fst (o_cycles with_bpred);
            with_both = both;
            f9_prov = prov;
          }
      | _ -> assert false)
    Kernel_model.entry_points (chunks 4 cells)

let print_fig9 rows =
  Fmt.pr "@.Figure 9: observed worst cases, normalised to the baseline@.";
  Fmt.pr "%-24s %9s %9s %9s %9s@." "Path" "Baseline" "+L2" "+B-pred" "+both";
  List.iter
    (fun r ->
      let n v = float_of_int v /. float_of_int r.baseline in
      Fmt.pr "%-24s %9.2f %9.2f %9.2f %9.2f@."
        (Kernel_model.entry_name r.f9_entry)
        1.0 (n r.with_l2) (n r.with_bpred) (n r.with_both))
    rows

(* --- Figure 7 scenario: decode depth sweep --- *)

type fig7_row = { depth : int; syscall_cycles : int }

let fig7 ?(runs = 8) () =
  Parallel.map (Parallel.default ())
    (fun depth ->
      (* Shallow spaces cannot host the full complement of extra caps. *)
      let params =
        {
          Kernel_model.default_params with
          Kernel_model.decode_depth = depth;
          Kernel_model.extra_caps =
            min Kernel_model.default_params.Kernel_model.extra_caps
              (max 0 (depth - 1));
        }
      in
      {
        depth;
        syscall_cycles =
          Response_time.observed ~runs
            (Analysis_ctx.make ~params ~build:improved ())
            Kernel_model.Syscall;
      })
    [ 1; 2; 4; 8; 16; 32 ]

let print_fig7 rows =
  Fmt.pr "@.Figure 7 scenario: observed syscall cost vs capability-space depth@.";
  Fmt.pr "%8s %14s@." "Depth" "Cycles";
  List.iter (fun r -> Fmt.pr "%8d %14d@." r.depth r.syscall_cycles) rows

(* --- Scheduler ablation (Sections 3.1-3.2) --- *)

type sched_row = {
  parked : int;
  lazy_cycles : int;
  benno_cycles : int;
  bitmap_cycles : int;
}

(* Cost of the scheduling decision that has to clean up [parked] stale
   blocked threads under lazy scheduling (they sit behind a runnable
   worker until it is suspended). *)
let sched_decision_cycles build ~parked =
  let module K = Sel4.Kernel in
  let module B = Sel4.Boot in
  let cpu = Hw.Cpu.create Hw.Config.default in
  let env = B.boot ~cpu build in
  let _ep = B.spawn_endpoint env ~dest:10 in
  let w = B.spawn_thread env ~priority:140 ~dest:11 in
  B.make_runnable env w;
  let threads =
    List.init parked (fun i -> B.spawn_thread env ~priority:140 ~dest:(20 + i))
  in
  List.iter (B.make_runnable env) threads;
  List.iter
    (fun t ->
      K.force_run env.B.k t;
      match
        K.kernel_entry env.B.k
          (K.Ev_send { ep = 10; msg_len = 1; extra_caps = []; blocking = true })
      with
      | K.Completed -> ()
      | _ -> failwith "sched ablation: send failed")
    threads;
  K.force_run env.B.k env.B.root_tcb;
  (match
     K.kernel_entry env.B.k (K.Ev_invoke (K.Inv_tcb_suspend { target = 11 }))
   with
  | K.Completed -> ()
  | _ -> failwith "sched ablation: suspend failed");
  let before = K.cycles env.B.k in
  K.raise_irq env.B.k K.timer_irq;
  ignore (K.kernel_entry env.B.k K.Ev_interrupt);
  K.cycles env.B.k - before

let sched_ablation () =
  List.map
    (fun parked ->
      {
        parked;
        lazy_cycles =
          sched_decision_cycles
            { improved with Sel4.Build.sched = Sel4.Build.Lazy }
            ~parked;
        benno_cycles =
          sched_decision_cycles
            { improved with Sel4.Build.sched = Sel4.Build.Benno }
            ~parked;
        bitmap_cycles = sched_decision_cycles improved ~parked;
      })
    (* capped by root-CNode capacity: slots 20.. hold the parked threads *)
    [ 0; 16; 64; 200 ]

let print_sched rows =
  Fmt.pr "@.Scheduler ablation: timer-tick scheduling cost vs parked threads@.";
  Fmt.pr "%8s %12s %12s %14s@." "Parked" "Lazy" "Benno" "Benno+bitmap";
  List.iter
    (fun r ->
      Fmt.pr "%8d %12d %12d %14d@." r.parked r.lazy_cycles r.benno_cycles
        r.bitmap_cycles)
    rows

(* --- Loop bounds (Section 5.3) --- *)

let loop_bounds () =
  Kernel_loops.catalogue
    ~max_frame_bytes:(1 lsl Kernel_model.default_params.Kernel_model.max_frame_bits)
    ~chunk:improved.Sel4.Build.preempt_chunk

let print_loop_bounds results =
  Fmt.pr "@.Automatically computed loop bounds (Section 5.3)@.";
  List.iter (fun r -> Fmt.pr "  %a@." Kernel_loops.pp_result r) results

(* --- Analysis cost and the constraint-iteration story (Section 6.3) --- *)

type analysis_cost_row = {
  ac_entry : Kernel_model.entry_point;
  ilp_vars : int;
  ilp_constraints : int;
  bb_nodes : int;
  lp_solves : int;
  elapsed_s : float;
  unconstrained_wcet : int;  (* before the manual constraints *)
  constrained_wcet : int;
}

let analysis_cost () =
  let config = Hw.Config.default in
  Parallel.map (Parallel.default ())
    (fun entry ->
      (* Constrained first: its solution is feasible for (and warm-starts)
         the unconstrained relaxation, and both share the cached analysis
         prefix. *)
      let constrained = Analysis_cache.computed ~config improved entry in
      let unconstrained =
        Analysis_cache.computed ~use_constraints:false ~config improved entry
      in
      {
        ac_entry = entry;
        ilp_vars = constrained.Wcet.Ipet.ilp_vars;
        ilp_constraints = constrained.Wcet.Ipet.ilp_constraints;
        bb_nodes = constrained.Wcet.Ipet.bb_nodes;
        lp_solves = constrained.Wcet.Ipet.lp_solves;
        elapsed_s = constrained.Wcet.Ipet.elapsed_s;
        unconstrained_wcet = unconstrained.Wcet.Ipet.wcet;
        constrained_wcet = constrained.Wcet.Ipet.wcet;
      })
    Kernel_model.entry_points

let print_analysis_cost rows =
  Fmt.pr "@.Analysis cost per entry point (Section 6.3 analogue)@.";
  Fmt.pr "%-24s %6s %7s %6s %6s %8s %12s %12s@." "Entry" "vars" "cstrs"
    "nodes" "LPs" "time" "no-cstr WCET" "final WCET";
  List.iter
    (fun r ->
      Fmt.pr "%-24s %6d %7d %6d %6d %7.2fs %12d %12d@."
        (Kernel_model.entry_name r.ac_entry)
        r.ilp_vars r.ilp_constraints r.bb_nodes r.lp_solves r.elapsed_s
        r.unconstrained_wcet r.constrained_wcet)
    rows

(* --- WCET by constraint source: the Section 5.2 manual set vs the
   constraints Derive_constraints extracts from the decision models.
   Combined = manual + non-duplicate derived (the spec default). --- *)

type constraint_mode_row = {
  cm_entry : Kernel_model.entry_point;
  cm_unconstrained : int;
  cm_manual : int;
  cm_derived : int;
  cm_combined : int;
  cm_n_manual : int;
  cm_n_derived : int;
  cm_proved : int;
  cm_refuted : int;
  cm_unknown : int;
}

let constraint_modes () =
  let config = Hw.Config.default in
  Parallel.map (Parallel.default ())
    (fun entry ->
      (* Most constrained first: `All warm-starts both single-source
         variants and the unconstrained baseline, and all four share the
         cached analysis prefix. *)
      let combined = Analysis_cache.computed ~config improved entry in
      let manual =
        Analysis_cache.computed ~sources:`Manual ~config improved entry
      in
      let derived =
        Analysis_cache.computed ~sources:`Derived ~config improved entry
      in
      let unconstrained =
        Analysis_cache.computed ~use_constraints:false ~config improved entry
      in
      let report =
        Kernel_model.constraint_report
          ~main:(Kernel_model.entry_main entry) ()
      in
      let verdicts v =
        List.length
          (List.filter
             (fun (l : Wcet.Derive_constraints.audit_line) ->
               l.Wcet.Derive_constraints.al_verdict = v)
             report.Wcet.Derive_constraints.rep_audit)
      in
      {
        cm_entry = entry;
        cm_unconstrained = unconstrained.Wcet.Ipet.wcet;
        cm_manual = manual.Wcet.Ipet.wcet;
        cm_derived = derived.Wcet.Ipet.wcet;
        cm_combined = combined.Wcet.Ipet.wcet;
        cm_n_manual =
          List.length report.Wcet.Derive_constraints.rep_audit;
        cm_n_derived =
          List.length report.Wcet.Derive_constraints.rep_derived;
        cm_proved = verdicts Wcet.Derive_constraints.Proved;
        cm_refuted = verdicts Wcet.Derive_constraints.Refuted;
        cm_unknown = verdicts Wcet.Derive_constraints.Unknown;
      })
    Kernel_model.entry_points

let print_constraint_modes rows =
  Fmt.pr "@.WCET by constraint source (manual Section 5.2 vs derived)@.";
  Fmt.pr "%-24s %12s %12s %12s %12s %5s %5s %11s@." "Entry" "none" "manual"
    "derived" "combined" "#man" "#drv" "P/R/U";
  List.iter
    (fun r ->
      Fmt.pr "%-24s %12d %12d %12d %12d %5d %5d %5d/%d/%d@."
        (Kernel_model.entry_name r.cm_entry)
        r.cm_unconstrained r.cm_manual r.cm_derived r.cm_combined
        r.cm_n_manual r.cm_n_derived r.cm_proved r.cm_refuted r.cm_unknown)
    rows

(* --- L2 kernel lockdown (Section 8 future work) --- *)

type l2lock_row = {
  ll_entry : Kernel_model.entry_point;
  l2_plain : int;  (* computed, L2 on *)
  l2_locked : int;  (* computed, L2 on with the kernel text locked in *)
  ll_observed : int;  (* observed under the locked configuration *)
}

let l2_locked_config () =
  Hw.Config.with_l2_lock ~base:Sel4.Layout.text_base
    ~bytes:Sel4.Layout.text_bytes Hw.Config.with_l2

let l2_lock ?(runs = 10) () =
  let plain = Analysis_ctx.make ~config:Hw.Config.with_l2 ~build:improved () in
  let locked = Analysis_ctx.make ~config:(l2_locked_config ()) ~build:improved () in
  List.map
    (fun entry ->
      {
        ll_entry = entry;
        l2_plain = Response_time.computed_cycles plain entry;
        l2_locked = Response_time.computed_cycles locked entry;
        ll_observed = Response_time.observed ~runs locked entry;
      })
    Kernel_model.entry_points

let print_l2_lock rows =
  Fmt.pr "@.Section 8 extension: kernel text locked into the L2 cache@.";
  Fmt.pr "%-24s %12s %12s %12s@." "Entry" "L2 on" "L2 locked" "Observed";
  List.iter
    (fun r ->
      Fmt.pr "%-24s %12d %12d %12d@."
        (Kernel_model.entry_name r.ll_entry)
        r.l2_plain r.l2_locked r.ll_observed)
    rows;
  let locked = l2_locked_config () in
  let bound =
    Response_time.interrupt_response_bound
      (Analysis_ctx.make ~config:locked ~build:improved ())
  in
  Fmt.pr
    "Interrupt response bound with the kernel locked in: %d cycles (%.1f us)@."
    bound
    (Hw.Config.cycles_to_us locked bound);
  Fmt.pr "(The paper conjectures ~50,000 cycles is attainable this way.)@."

(* --- Section 6.1 ablation: preemptible atomic send-receive --- *)

type call_preempt_row = { atomic_call : int; preemptible_call : int }

(* "The execution time of this operation could be almost halved ... by
   inserting a preemption point between the send and receive phases." *)
let call_preempt () =
  let atomic_call =
    Response_time.computed_cycles
      (Analysis_ctx.make ~build:improved ())
      Kernel_model.Syscall
  in
  let params =
    { Kernel_model.default_params with Kernel_model.preemptible_call = true }
  in
  let preemptible_call =
    Response_time.computed_cycles
      (Analysis_ctx.make ~params ~build:improved ())
      Kernel_model.Syscall
  in
  { atomic_call; preemptible_call }

let print_call_preempt r =
  Fmt.pr "@.Section 6.1 ablation: preemption point between IPC phases@.";
  Fmt.pr "  atomic send-receive WCET:      %d cycles@." r.atomic_call;
  Fmt.pr "  with inter-phase preemption:   %d cycles (%.0f%% of atomic)@."
    r.preemptible_call
    (100.0 *. float_of_int r.preemptible_call /. float_of_int r.atomic_call);
  Fmt.pr "  (the paper predicts the operation could be almost halved)@."

(* --- IPC fastpath ablation (Section 6.1) --- *)

type fastpath_row = { fast_cycles : int; slow_cycles : int }

(* Warm ping-pong: an eligible short call takes the fastpath; lengthening
   the message by one word past the fastpath limit forces the slowpath.
   "fastpaths ... improve the performance of common IPC operations by an
   order of magnitude" is about cold caches; warm, the structural gap is
   what we show here. *)
let fastpath_ablation () =
  let module K = Sel4.Kernel in
  let module B = Sel4.Boot in
  let measure msg_len =
    let cpu = Hw.Cpu.create Hw.Config.default in
    let env = B.boot ~cpu improved in
    let _ep = B.spawn_endpoint env ~dest:10 in
    let server = B.spawn_thread env ~priority:150 ~dest:11 in
    let client = B.spawn_thread env ~priority:120 ~dest:12 in
    B.make_runnable env server;
    B.make_runnable env client;
    let entry tcb ev =
      K.force_run env.B.k tcb;
      ignore (K.kernel_entry env.B.k ev)
    in
    entry server (K.Ev_recv { ep = 10 });
    for _ = 1 to 5 do
      entry client
        (K.Ev_call { ep = 10; badge_hint = 0; msg_len; extra_caps = [] });
      entry server (K.Ev_reply_recv { ep = 10; msg_len = 1 })
    done;
    let before = K.cycles env.B.k in
    entry client (K.Ev_call { ep = 10; badge_hint = 0; msg_len; extra_caps = [] });
    K.cycles env.B.k - before
  in
  { fast_cycles = measure 2; slow_cycles = measure 5 }

let print_fastpath r =
  Fmt.pr "@.IPC fastpath ablation (Section 6.1)@.";
  Fmt.pr "  fastpath call (2 words):  %4d cycles (paper: 200-250)@." r.fast_cycles;
  Fmt.pr "  slowpath call (5 words):  %4d cycles (%.1fx)@." r.slow_cycles
    (float_of_int r.slow_cycles /. float_of_int r.fast_cycles)

(* --- Replacement-policy comparison (Section 5.1) --- *)

type replacement_row = {
  rp_entry : Kernel_model.entry_point;
  lru_observed : int;
  rr_observed : int;
  bound : int;  (* the same conservative bound covers both *)
}

(* The ARM1136 replaces round-robin, which the paper's tools cannot model
   directly; the one-way conservative analysis is sound for either policy.
   Here both executions run under the same bound. *)
let replacement ?(runs = 10) () =
  let lru = Analysis_ctx.make ~build:improved () in
  let rr =
    Analysis_ctx.make
      ~config:
        { Hw.Config.default with Hw.Config.replacement = Hw.Config.Round_robin }
      ~build:improved ()
  in
  List.map
    (fun entry ->
      {
        rp_entry = entry;
        lru_observed = Response_time.observed ~runs lru entry;
        rr_observed = Response_time.observed ~runs rr entry;
        bound = Response_time.computed_cycles lru entry;
      })
    Kernel_model.entry_points

let print_replacement rows =
  Fmt.pr "@.Replacement policy (Section 5.1): observed under LRU vs round-robin@.";
  Fmt.pr "%-24s %10s %12s %12s@." "Entry" "LRU" "Round-robin" "Bound";
  List.iter
    (fun r ->
      Fmt.pr "%-24s %10d %12d %12d@."
        (Kernel_model.entry_name r.rp_entry)
        r.lru_observed r.rr_observed r.bound)
    rows;
  Fmt.pr "(the one-way conservative model is sound for both policies)@."

(* --- Summary (Section 6 headline numbers) --- *)

type summary = {
  fastpath_cycles : int;
  syscall_factor : float;  (* before/after WCET improvement *)
  response_l2_off_us : float;
  response_l2_on_us : float;
  interrupt_observed : int;  (* observed interrupt-path worst case, L2 off *)
  interrupt_prov : Workloads.provenance;
}

let summary () =
  (* Fastpath: warm ping-pong measurement. *)
  let module K = Sel4.Kernel in
  let module B = Sel4.Boot in
  let cpu = Hw.Cpu.create Hw.Config.default in
  let env = B.boot ~cpu improved in
  let _ep = B.spawn_endpoint env ~dest:10 in
  let server = B.spawn_thread env ~priority:150 ~dest:11 in
  let client = B.spawn_thread env ~priority:120 ~dest:12 in
  B.make_runnable env server;
  B.make_runnable env client;
  let entry tcb ev =
    K.force_run env.B.k tcb;
    ignore (K.kernel_entry env.B.k ev)
  in
  entry server (K.Ev_recv { ep = 10 });
  for _ = 1 to 5 do
    entry client
      (K.Ev_call { ep = 10; badge_hint = 0; msg_len = 2; extra_caps = [] });
    entry server (K.Ev_reply_recv { ep = 10; msg_len = 1 })
  done;
  let before = K.cycles env.B.k in
  entry client
    (K.Ev_call { ep = 10; badge_hint = 0; msg_len = 2; extra_caps = [] });
  let fastpath_cycles = K.cycles env.B.k - before in
  let config = Hw.Config.default in
  let before_ctx = Analysis_ctx.make ~build:original () in
  let after_ctx = Analysis_ctx.make ~build:improved () in
  let after_l2 = Analysis_ctx.make ~config:Hw.Config.with_l2 ~build:improved () in
  match
    batch
      [
        (fun () ->
          C (Response_time.computed_cycles before_ctx Kernel_model.Syscall));
        (fun () ->
          C (Response_time.computed_cycles after_ctx Kernel_model.Syscall));
        (fun () -> C (Response_time.interrupt_response_bound after_ctx));
        (fun () -> C (Response_time.interrupt_response_bound after_l2));
        (fun () ->
          let v, p =
            Response_time.observed_traced after_ctx Kernel_model.Interrupt
          in
          O (v, p));
      ]
  with
  | [ before_syscall; after_syscall; response_off; response_on; int_obs ] ->
      let interrupt_observed, interrupt_prov = o_cycles int_obs in
      {
        fastpath_cycles;
        syscall_factor =
          float_of_int (c_cycles before_syscall)
          /. float_of_int (c_cycles after_syscall);
        response_l2_off_us = us config (c_cycles response_off);
        response_l2_on_us = us Hw.Config.with_l2 (c_cycles response_on);
        interrupt_observed;
        interrupt_prov;
      }
  | _ -> assert false

let print_summary s =
  Fmt.pr "@.Headline results (Section 6)@.";
  Fmt.pr "  IPC fastpath: %d cycles (paper: 200-250)@." s.fastpath_cycles;
  Fmt.pr "  System-call WCET improvement, before/after: %.1fx (paper: 11.6x)@."
    s.syscall_factor;
  Fmt.pr "  Worst-case interrupt response: %.1f us (L2 off), %.1f us (L2 on)@."
    s.response_l2_off_us s.response_l2_on_us;
  Fmt.pr "  (paper: 356 us L2 off, 481 us L2 on)@.";
  Fmt.pr "  Observed interrupt path: %d cycles [%a]@." s.interrupt_observed
    Workloads.pp_provenance s.interrupt_prov
