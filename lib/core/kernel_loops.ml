(* The kernel's loops, re-expressed in the TAC mini-language so their
   iteration bounds can be computed mechanically (Section 5.3) instead of
   asserted by hand.

   Each entry pairs a loop program with the kernel parameter that bounds
   it; the WCET skeletons consume the computed bounds.  Loops the counter
   analysis cannot handle (the paper's memory-carried loops) fall back to
   the slicing + model-checking pipeline. *)

module L = Tac.Lang

type loop_spec = {
  name : string;
  program : L.program;
  header : string;
  (* The bound the kernel source annotates, for cross-checking. *)
  annotated : int;
}

(* Clearing an object of up to [max_bytes] in [chunk]-byte steps:
   for (off = 0; off < size; off += chunk). *)
let clear_loop ~max_bytes ~chunk =
  {
    name = Fmt.str "clear_object(%d/%d)" max_bytes chunk;
    program =
      {
        L.entry = "entry";
        params = [ { L.name = "size"; lo = 0; hi = max_bytes } ];
        blocks =
          [
            {
              L.label = "entry";
              instrs = [ L.Assign ("off", L.Imm 0) ];
              term = L.Jump "header";
            };
            {
              L.label = "header";
              instrs = [];
              term = L.Branch (L.Lt, L.Reg "off", L.Reg "size", "body", "exit");
            };
            {
              L.label = "body";
              instrs = [ L.Binop ("off", L.Add, L.Reg "off", L.Imm chunk) ];
              term = L.Jump "header";
            };
            { L.label = "exit"; instrs = []; term = L.Halt };
          ];
      };
    header = "header";
    annotated = ((max_bytes + chunk - 1) / chunk) + 1;
  }

(* Capability-address decode: while (bits_left > 0) bits_left -= level_bits.
   In the Figure 7 worst case every level consumes one bit. *)
let decode_loop =
  {
    name = "cspace_decode";
    program =
      {
        L.entry = "entry";
        params = [ { L.name = "level_bits"; lo = 1; hi = 8 } ];
        blocks =
          [
            {
              L.label = "entry";
              instrs = [ L.Assign ("bits", L.Imm 32) ];
              term = L.Jump "header";
            };
            {
              L.label = "header";
              instrs = [];
              term = L.Branch (L.Gt, L.Reg "bits", L.Imm 0, "body", "exit");
            };
            {
              L.label = "body";
              instrs = [ L.Binop ("bits", L.Sub, L.Reg "bits", L.Reg "level_bits") ];
              term = L.Jump "header";
            };
            { L.label = "exit"; instrs = []; term = L.Halt };
          ];
      };
    header = "header";
    annotated = 33;
  }

(* The scheduler's priority scan (Figure 3): for (prio = 255; prio >= 0;
   prio--). *)
let priority_scan_loop =
  {
    name = "priority_scan";
    program =
      {
        L.entry = "entry";
        params = [];
        blocks =
          [
            {
              L.label = "entry";
              instrs = [ L.Assign ("prio", L.Imm 255) ];
              term = L.Jump "header";
            };
            {
              L.label = "header";
              instrs = [];
              term = L.Branch (L.Ge, L.Reg "prio", L.Imm 0, "body", "exit");
            };
            {
              L.label = "body";
              instrs = [ L.Binop ("prio", L.Sub, L.Reg "prio", L.Imm 1) ];
              term = L.Jump "header";
            };
            { L.label = "exit"; instrs = []; term = L.Halt };
          ];
      };
    header = "header";
    annotated = 257;
  }

(* ASID allocation scan (Section 3.6): the free-slot search over a pool,
   with the occupancy read from memory — exactly the kind of loop the
   paper's counter analysis cannot bound without pointer analysis, and the
   model checker can (we scale the pool to keep the state space small; the
   real pool is 1024 entries). *)
let asid_search_loop ~pool_size =
  {
    name = Fmt.str "asid_search(%d)" pool_size;
    program =
      {
        L.entry = "setup";
        params = [ { L.name = "used"; lo = 0; hi = pool_size } ];
        blocks =
          [
            (* mem[i] = 1 for i < used: the occupied prefix. *)
            {
              L.label = "setup";
              instrs = [ L.Assign ("i", L.Imm 0) ];
              term = L.Jump "fill";
            };
            {
              L.label = "fill";
              instrs = [];
              term = L.Branch (L.Lt, L.Reg "i", L.Reg "used", "fill_body", "entry");
            };
            {
              L.label = "fill_body";
              instrs =
                [
                  L.Store (L.Reg "i", L.Imm 1);
                  L.Binop ("i", L.Add, L.Reg "i", L.Imm 1);
                ];
              term = L.Jump "fill";
            };
            {
              L.label = "entry";
              instrs = [ L.Assign ("j", L.Imm 0) ];
              term = L.Jump "header";
            };
            {
              L.label = "header";
              instrs = [];
              term =
                L.Branch (L.Ge, L.Reg "j", L.Imm pool_size, "fail", "check");
            };
            {
              L.label = "check";
              instrs = [ L.Load ("occ", L.Reg "j") ];
              term = L.Branch (L.Eq, L.Reg "occ", L.Imm 0, "found", "next");
            };
            {
              L.label = "next";
              instrs = [ L.Binop ("j", L.Add, L.Reg "j", L.Imm 1) ];
              term = L.Jump "header";
            };
            { L.label = "found"; instrs = []; term = L.Halt };
            { L.label = "fail"; instrs = []; term = L.Halt };
          ];
      };
    header = "header";
    annotated = pool_size + 1;
  }

(* The badged-abort scan of Section 3.4: walk the endpoint's wait list —
   a linked list in memory — up to the end marker captured when the abort
   began.  The trip count is carried entirely through loads, so the
   counter analysis must abstain and the bound comes from slicing + model
   checking, which is precisely the split the paper describes. *)
let badge_scan_loop ~max_waiters =
  {
    name = Fmt.str "badge_scan(%d)" max_waiters;
    program =
      {
        L.entry = "setup";
        params = [ { L.name = "n"; lo = 0; hi = max_waiters } ];
        blocks =
          [
            (* Build the list 1 -> 2 -> ... -> n -> 0 in memory. *)
            {
              L.label = "setup";
              instrs = [ L.Assign ("i", L.Imm 1) ];
              term = L.Jump "fill";
            };
            {
              L.label = "fill";
              instrs = [];
              term = L.Branch (L.Gt, L.Reg "i", L.Reg "n", "start", "fill_body");
            };
            {
              L.label = "fill_body";
              instrs =
                [
                  L.Binop ("next", L.Add, L.Reg "i", L.Imm 1);
                  L.Store (L.Reg "i", L.Reg "next");
                  L.Binop ("i", L.Add, L.Reg "i", L.Imm 1);
                ];
              term = L.Jump "fill";
            };
            (* Terminate the list, then scan from the head. *)
            {
              L.label = "start";
              instrs =
                [ L.Store (L.Reg "n", L.Imm 0); L.Assign ("cur", L.Imm 0) ];
              term = L.Branch (L.Ge, L.Imm 0, L.Reg "n", "exit", "head");
            };
            {
              L.label = "head";
              instrs = [ L.Assign ("cur", L.Imm 1) ];
              term = L.Jump "header";
            };
            {
              L.label = "header";
              instrs = [];
              term = L.Branch (L.Ne, L.Reg "cur", L.Imm 0, "body", "exit");
            };
            {
              L.label = "body";
              instrs = [ L.Load ("cur", L.Reg "cur") ];
              term = L.Jump "header";
            };
            { L.label = "exit"; instrs = []; term = L.Halt };
          ];
      };
    header = "header";
    annotated = max_waiters + 1;
  }

type method_used =
  | Counter_analysis
  | Model_checking
  | Abstract_interpretation
  | Annotation_only

type result = {
  spec : loop_spec;
  computed : int option;
  method_used : method_used;
  absint_bound : int option;
  slice_stats : Tac.Slice.stats option;
}

(* Independent cross-check: the abstract interpreter's induction-variable
   analysis, which handles interval-valued steps (the decode loop) but
   abstains on memory-carried trip counts (the badge scan).  Converts the
   per-entry body-iteration count to header visits, the convention the
   other methods use. *)
let absint_header_bound (spec : loop_spec) =
  let ai = Tac.Absint.analyse spec.program in
  Tac.Absint.trip_bound ai ~header:spec.header |> Option.map (fun t -> t + 1)

(* Try the counter analysis first; fall back to slicing + bounded model
   checking, as the paper's toolchain does; take the abstract
   interpreter's bound when it is available and tighter (or when nothing
   else worked). *)
let compute_bound (spec : loop_spec) =
  let absint_bound = absint_header_bound spec in
  let primary =
    match Loopbound.Counter.analyse spec.program ~header:spec.header with
    | Some bound ->
        {
          spec;
          computed = Some bound;
          method_used = Counter_analysis;
          absint_bound;
          slice_stats = None;
        }
    | None -> (
        let ssa = Tac.Ssa.convert spec.program in
        let _sliced, stats = Tac.Slice.compute ssa in
        match
          Loopbound.Checker.find_bound spec.program ~header:spec.header
            ~upper:(4 * spec.annotated)
        with
        | Some bound ->
            {
              spec;
              computed = Some bound;
              method_used = Model_checking;
              absint_bound;
              slice_stats = Some stats;
            }
        | None ->
            {
              spec;
              computed = None;
              method_used = Annotation_only;
              absint_bound;
              slice_stats = None;
            })
  in
  match (primary.computed, absint_bound) with
  | Some b, Some a when a < b -> { primary with computed = Some a }
  | None, Some a ->
      { primary with computed = Some a; method_used = Abstract_interpretation }
  | _ -> primary

(* The standard catalogue used by the analysis and the loop-bound
   benchmark.  The clear loop is scaled to the analysis scenario's largest
   object; the ASID pool is scaled down for the (exhaustive) checker. *)
let catalogue ~max_frame_bytes ~chunk =
  [
    compute_bound (clear_loop ~max_bytes:max_frame_bytes ~chunk);
    compute_bound decode_loop;
    compute_bound priority_scan_loop;
    compute_bound (asid_search_loop ~pool_size:16);
    compute_bound (badge_scan_loop ~max_waiters:12);
  ]

let pp_method ppf = function
  | Counter_analysis -> Fmt.string ppf "counter analysis"
  | Model_checking -> Fmt.string ppf "slice + model checking"
  | Abstract_interpretation -> Fmt.string ppf "abstract interpretation"
  | Annotation_only -> Fmt.string ppf "manual annotation"

let pp_result ppf r =
  Fmt.pf ppf "%-24s annotated=%-6d computed=%-6s absint=%-6s via %a%s"
    r.spec.name r.spec.annotated
    (match r.computed with Some b -> string_of_int b | None -> "-")
    (match r.absint_bound with Some b -> string_of_int b | None -> "-")
    pp_method r.method_used
    (match r.slice_stats with
    | Some s ->
        Fmt.str " (slice kept %d/%d instrs)" s.Tac.Slice.kept_instrs
          s.Tac.Slice.total_instrs
    | None -> "")
