(* Cache-pinning selection (Section 4).

   The paper pinned 118 instruction lines chosen from execution traces of
   interrupt deliveries, the first 256 bytes of the kernel stack, and some
   key data regions, all fitting in one quarter of each L1 cache.  We do
   the same: trace an interrupt delivery on the executable kernel, rank
   the touched lines by frequency, and greedily take as many as fit in the
   locked way. *)

type selection = {
  code_lines : int list;
  data_lines : int list;
}

let line_of config addr =
  addr / config.Hw.Config.l1_line * config.Hw.Config.l1_line

(* Lines a locked way can hold: one per set. *)
let way_capacity config = config.Hw.Config.l1_sets

(* Collect the (kind, line) access histogram of one interrupt delivery. *)
let trace_interrupt_delivery build =
  let config = Hw.Config.default in
  let s =
    Workloads.scenario (Analysis_ctx.make ~build ()) Kernel_model.Interrupt
  in
  let code : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let data : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let bump tbl line = Hashtbl.replace tbl line (1 + try Hashtbl.find tbl line with Not_found -> 0) in
  Hw.Cpu.set_tracer s.Workloads.cpu (fun kind addr ->
      let line = line_of config addr in
      match kind with
      | Hw.Cpu.Fetch -> bump code line
      | Hw.Cpu.Load | Hw.Cpu.Store -> bump data line);
  let _ = Workloads.measure_once s ~seed:1 in
  Hw.Cpu.clear_tracer s.Workloads.cpu;
  (code, data)

(* Greedy selection: most-frequently-used lines first, at most one line
   per cache set (a locked way holds one line per set), stopping at the
   way's capacity. *)
let select_lines config tbl ~extra ~capacity =
  let sets_used = Hashtbl.create 64 in
  let set_of line = line / config.Hw.Config.l1_line mod config.Hw.Config.l1_sets in
  let candidates =
    extra
    @ (Hashtbl.fold (fun line count acc -> (line, count) :: acc) tbl []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.map fst)
  in
  let rec pick acc n = function
    | [] -> List.rev acc
    | _ when n >= capacity -> List.rev acc
    | line :: rest ->
        if Hashtbl.mem sets_used (set_of line) then pick acc n rest
        else begin
          Hashtbl.replace sets_used (set_of line) ();
          pick (line :: acc) (n + 1) rest
        end
  in
  pick [] 0 candidates

(* The pin set: traced interrupt-path code lines, plus the first 256
   bytes of the kernel stack and the key scheduler/IRQ data words. *)
let select build =
  let config = Hw.Config.default in
  let code_hist, data_hist = trace_interrupt_delivery build in
  let stack_lines =
    List.init (256 / config.Hw.Config.l1_line) (fun i ->
        Sel4.Layout.stack_base + (i * config.Hw.Config.l1_line))
  in
  let key_data =
    List.map (line_of config)
      [
        Sel4.Layout.bitmap_top;
        Sel4.Layout.cur_thread_ptr;
        Sel4.Layout.irq_pending_word;
        Sel4.Layout.irq_handler_table;
      ]
  in
  {
    code_lines = select_lines config code_hist ~extra:[] ~capacity:(way_capacity config);
    data_lines =
      select_lines config data_hist ~extra:(stack_lines @ key_data)
        ~capacity:(way_capacity config);
  }

(* Install the selection into a machine whose configuration reserved
   locked ways. *)
let install selection machine =
  List.iter (fun l -> ignore (Hw.Machine.pin_icache machine l)) selection.code_lines;
  List.iter (fun l -> ignore (Hw.Machine.pin_dcache machine l)) selection.data_lines

let pp ppf s =
  Fmt.pf ppf "pinned %d I-lines, %d D-lines" (List.length s.code_lines)
    (List.length s.data_lines)
