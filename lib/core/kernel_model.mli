(** WCET timing skeletons: the static-analysis view of the kernel.

    Declarative CFGs of each kernel entry point, built from the same cost
    constants ({!Sel4.Costs}) and code-region addresses ({!Sel4.Layout})
    the executable kernel charges, so computed-vs-observed gaps arise only
    from the paper's sources (conservative cache model, infeasible paths).

    Preemptible loops are bounded by the work between preemption points —
    one unit with preemption points enabled, the full structure in the
    "before" kernel (Sections 5.2-5.3 path semantics). *)

type params = {
  decode_depth : int;  (** capability-space levels (Figure 7) *)
  msg_words : int;  (** message registers copied per IPC phase *)
  extra_caps : int;  (** capabilities granted per IPC *)
  max_frame_bits : int;  (** largest object retyped in the scenario *)
  max_ep_waiters : int;  (** endpoint queue length bound *)
  max_parked : int;  (** stale threads lazy scheduling can park *)
  preemptible_call : bool;
      (** Section 6.1's suggested preemption point between the send and
          receive phases of the atomic call *)
}

val default_params : params

type entry_point = Syscall | Interrupt | Page_fault | Undefined_instruction

val entry_points : entry_point list
val entry_name : entry_point -> string

val entry_main : entry_point -> string
(** The CFG function name of the entry's main program (the [~main]
    argument of {!constraint_report}). *)

val spec : ?params:params -> Sel4.Build.t -> entry_point -> Wcet.Ipet.spec
(** The complete analysis input: inlinable program, loop bounds (some
    computed by the {!Kernel_loops} pipeline), the manual constraints of
    Section 5.2, and the constraints {!Wcet.Derive_constraints} derives
    from the decision models. *)

val decision_models : params -> main:string -> Wcet.Derive_constraints.model list
(** The TAC decision models covering the kernel's manual constraints:
    the lazy-scheduler stale-dequeue loop always, plus the Figure 6
    delivery-path switch pair when [main] is ["syscall"]. *)

val constraint_report :
  ?params:params -> main:string -> unit -> Wcet.Derive_constraints.report
(** Derive constraints from the decision models and audit every manual
    constraint of [constraints] against them (Proved / Refuted /
    Unknown, with evidence). *)

val realisable_path : ?params:params -> entry_point -> (string * string * int) list
(** Block execution counts of the path the adversarial workload actually
    exercises, for path-forced analysis (Figure 8). *)
