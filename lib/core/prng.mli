(** The repository's single audited randomness source: splitmix64 with a
    splittable-stream interface.

    Both the fault-injection campaigns ({!Inject}) and the soak simulator
    ({!Sim}) draw every random decision from this module, so a seed fully
    determines a campaign and the generator only has to be audited once.

    Streams are cheap mutable values.  {!split} derives a statistically
    independent child stream from the parent's state without disturbing
    the parent's own future output beyond one advance — the tool for
    handing each shard, tenant or device its own deterministic stream
    whose draws cannot interleave with anyone else's. *)

type t

val create : int -> t
(** A stream seeded with [seed].  The output sequence is identical to the
    historical private generator of [lib/inject] for the same seed. *)

val of_state : int64 -> t
(** A stream starting from a raw 64-bit state (for replaying a child
    stream recorded by {!state}). *)

val state : t -> int64
(** The current raw state (advances with every draw). *)

val next64 : t -> int64
(** The next 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1] ([0] when
    [bound <= 0]). *)

val bool : t -> bool

val float : t -> float
(** Uniform draw from [[0, 1)] with 53 bits of precision. *)

val split : t -> t
(** A child stream whose state is derived from one draw of the parent
    mixed with an odd gamma, so parent and child sequences are
    independent.  Splitting [n] times yields [n] distinct streams
    regardless of draw order in between. *)

val split_at : t -> int -> t
(** [split_at t i]: the [i]-th child of [t]'s {e current} state, without
    advancing [t] — so shard [i]'s stream depends only on the parent seed
    and [i], never on how many shards were split before it.  The
    foundation of the simulator's "byte-identical for any domain count"
    guarantee. *)
