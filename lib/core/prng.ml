(* Splitmix64 (Steele, Lea & Flood, OOPSLA'14): a 64-bit state advanced by
   a golden-ratio increment and finalised through two xor-multiply rounds.
   Chosen because it is tiny, fast, passes BigCrush, and — critically for
   the injection and soak campaigns — supports cheap stream splitting, so
   every shard, tenant and device owns an independent deterministic
   sequence derived from one seed.

   The output sequence for [create seed] is bit-identical to the private
   generator the fault-injection engine shipped with, so historical
   campaign results (seed 42) are unchanged by the hoist. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let of_state s = { state = s }
let state t = t.state

let mix z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then 0
  else
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next64 t) 1) (Int64.of_int bound))

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  (* 53 high bits, scaled into [0, 1). *)
  Int64.to_float (Int64.shift_right_logical (next64 t) 11) *. 0x1p-53

(* Child-stream derivation: re-mix the parent output under a distinct odd
   gamma so the child state lands far from the parent trajectory.  (The
   full splitmix scheme also splits the gamma; a fixed gamma with a
   re-mixed state is sufficient at the scale of these campaigns and keeps
   streams single-word.) *)
let child_of raw index =
  of_state
    (mix
       (Int64.add
          (Int64.logxor raw 0x5851F42D4C957F2DL)
          (Int64.mul (Int64.of_int index) golden_gamma)))

let split t = child_of (next64 t) 0
let split_at t i = child_of (mix (Int64.add t.state golden_gamma)) i
