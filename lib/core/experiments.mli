(** The paper's evaluation, experiment by experiment.  Each function
    computes one table or figure and returns structured rows; the
    [print_*] companions render them in the paper's layout.  Expected
    shapes and a representative run are documented in EXPERIMENTS.md. *)

(** {1 Table 1 — WCET with and without cache pinning (Section 4)} *)

type table1_row = {
  t1_entry : Kernel_model.entry_point;
  without_pinning : int;  (** cycles *)
  with_pinning : int;
  gain_percent : float;
}

val table1 : unit -> table1_row list
val print_table1 : table1_row list -> unit

(** {1 Table 2 — before/after WCET, computed vs observed, L2 off/on} *)

type table2_cell = {
  computed : int;
  observed : int;
  ratio : float;
  prov : Workloads.provenance;
      (** provenance of the observed worst case: pollution seed, worst
          non-preemptible section, stall/compute split *)
}

type table2_row = {
  t2_entry : Kernel_model.entry_point;
  before_l2_off : int;  (** computed only, as in the paper *)
  after_l2_off : table2_cell;
  after_l2_on : table2_cell;
}

val table2 : ?runs:int -> unit -> table2_row list
val print_table2 : table2_row list -> unit

(** {1 Figure 8 — overestimation of the hardware model on forced paths} *)

type fig8_row = {
  f8_entry : Kernel_model.entry_point;
  overestimation_l2_off : float;  (** percent *)
  overestimation_l2_on : float;
}

val fig8 : ?runs:int -> unit -> fig8_row list
val print_fig8 : fig8_row list -> unit

(** {1 Figure 9 — observed effect of the L2 cache and branch predictor} *)

type fig9_row = {
  f9_entry : Kernel_model.entry_point;
  baseline : int;
  with_l2 : int;
  with_bpred : int;
  with_both : int;
  f9_prov : Workloads.provenance;  (** attribution of the +both worst case *)
}

val fig9 : ?runs:int -> unit -> fig9_row list
val print_fig9 : fig9_row list -> unit

(** {1 Figure 7 scenario — capability-decode depth sweep} *)

type fig7_row = { depth : int; syscall_cycles : int }

val fig7 : ?runs:int -> unit -> fig7_row list
val print_fig7 : fig7_row list -> unit

(** {1 Scheduler ablation (Sections 3.1-3.2)} *)

type sched_row = {
  parked : int;
  lazy_cycles : int;
  benno_cycles : int;
  bitmap_cycles : int;
}

val sched_decision_cycles : Sel4.Build.t -> parked:int -> int
val sched_ablation : unit -> sched_row list
val print_sched : sched_row list -> unit

(** {1 Loop bounds (Section 5.3)} *)

val loop_bounds : unit -> Kernel_loops.result list
val print_loop_bounds : Kernel_loops.result list -> unit

(** {1 Analysis cost and manual constraints (Section 6.3)} *)

type analysis_cost_row = {
  ac_entry : Kernel_model.entry_point;
  ilp_vars : int;
  ilp_constraints : int;
  bb_nodes : int;
  lp_solves : int;
  elapsed_s : float;
  unconstrained_wcet : int;
  constrained_wcet : int;
}

val analysis_cost : unit -> analysis_cost_row list
val print_analysis_cost : analysis_cost_row list -> unit

(** {1 Manual vs derived constraints (the Section 5.2 audit)} *)

type constraint_mode_row = {
  cm_entry : Kernel_model.entry_point;
  cm_unconstrained : int;  (** WCET, every user constraint dropped *)
  cm_manual : int;  (** WCET under the hand-written Section 5.2 set *)
  cm_derived : int;  (** WCET under the mechanically derived set only *)
  cm_combined : int;  (** WCET under manual + non-duplicate derived *)
  cm_n_manual : int;
  cm_n_derived : int;
  cm_proved : int;  (** manual constraints subsumed by a derivation *)
  cm_refuted : int;  (** manual constraints with a concrete counterexample *)
  cm_unknown : int;
}

val constraint_modes : unit -> constraint_mode_row list
val print_constraint_modes : constraint_mode_row list -> unit

(** {1 Section 8 extension — kernel text locked into the L2} *)

type l2lock_row = {
  ll_entry : Kernel_model.entry_point;
  l2_plain : int;
  l2_locked : int;
  ll_observed : int;
}

val l2_locked_config : unit -> Hw.Config.t
val l2_lock : ?runs:int -> unit -> l2lock_row list
val print_l2_lock : l2lock_row list -> unit

(** {1 Section 6.1 ablations} *)

type call_preempt_row = { atomic_call : int; preemptible_call : int }

val call_preempt : unit -> call_preempt_row
val print_call_preempt : call_preempt_row -> unit

type fastpath_row = { fast_cycles : int; slow_cycles : int }

val fastpath_ablation : unit -> fastpath_row
val print_fastpath : fastpath_row -> unit

(** {1 Replacement-policy comparison (Section 5.1)} *)

type replacement_row = {
  rp_entry : Kernel_model.entry_point;
  lru_observed : int;
  rr_observed : int;
  bound : int;
}

val replacement : ?runs:int -> unit -> replacement_row list
val print_replacement : replacement_row list -> unit

(** {1 Headline summary (Section 6)} *)

type summary = {
  fastpath_cycles : int;
  syscall_factor : float;
  response_l2_off_us : float;
  response_l2_on_us : float;
  interrupt_observed : int;  (** observed interrupt-path worst case, L2 off *)
  interrupt_prov : Workloads.provenance;
}

val summary : unit -> summary
val print_summary : summary -> unit
