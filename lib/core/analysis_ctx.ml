(* The unified analysis context (see analysis_ctx.mli).  The record is
   deliberately flat and immutable: a context is cheap to derive from
   another with the [with_*] updates, and two structurally equal contexts
   always denote the same analysis inputs (the analysis cache keys on the
   same four components). *)

type pins = { code : int list; data : int list }

let no_pins = { code = []; data = [] }

type t = {
  config : Hw.Config.t;
  params : Kernel_model.params;
  pins : pins;
  build : Sel4.Build.t;
}

let make ?(config = Hw.Config.default) ?(params = Kernel_model.default_params)
    ?(pins = no_pins) ?(build = Sel4.Build.improved) () =
  { config; params; pins; build }

let default = make ()
let with_config t config = { t with config }
let with_params t params = { t with params }
let with_pins t pins = { t with pins }
let with_build t build = { t with build }

let pp ppf t =
  Fmt.pf ppf "build=(%a) l2=%b pins=%d+%d depth=%d" Sel4.Build.pp t.build
    t.config.Hw.Config.l2_enabled
    (List.length t.pins.code)
    (List.length t.pins.data)
    t.params.Kernel_model.decode_depth
