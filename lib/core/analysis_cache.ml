(* Content-keyed memo cache over the WCET analysis pipeline.

   Every quantity the experiments compute is a pure function of a small
   structured key: (build variant, entry point, kernel-model parameters,
   hardware configuration, pinned lines, forced-path constraints, and
   whether the manual constraints apply).  The experiment suite re-derives
   identical tuples dozens of times across table1/table2/fig8/summary, so
   results are memoised at two levels:

   - a *prefix* cache over {!Wcet.Ipet.prepare} (virtual inlining, loop
     detection, cache-analysis fixpoint), shared by every ILP variant over
     the same (build, entry, params, config, pins);
   - a *result* cache over the full {!Wcet.Ipet.analyse_prepared} output.

   Both tables are guarded by one mutex so concurrent domains (the
   {!Parallel} pool) share work instead of duplicating it: the first
   requester of a key inserts a [Pending] marker and computes outside the
   lock; later requesters of the same key block on a condition variable
   until the result (or the exception) lands.  Hit/miss counters feed the
   bench harness's --json report. *)

type prefix_key = {
  pk_build : Sel4.Build.t;
  pk_entry : Kernel_model.entry_point;
  pk_params : Kernel_model.params;
  pk_config : Hw.Config.t;
  pk_pinned_code : int list;
  pk_pinned_data : int list;
}

type result_key = {
  rk_prefix : prefix_key;
  rk_use_constraints : bool;
  rk_sources : Wcet.Ipet.sources;
  rk_forced : (string * string * int) list;
}

type 'a cell = Pending | Ready of ('a, exn) Result.t

let lock = Mutex.create ()
let cond = Condition.create ()

let prefixes : (prefix_key, Wcet.Ipet.prepared cell) Hashtbl.t =
  Hashtbl.create 64

let results : (result_key, Wcet.Ipet.result cell) Hashtbl.t = Hashtbl.create 64

(* Counters live in the process-wide metrics registry, so `sel4rt metrics`
   and the bench --json report read the same numbers as {!stats}. *)
let result_hits = Obs.Metrics.counter "analysis_cache.result_hits"
let result_misses = Obs.Metrics.counter "analysis_cache.result_misses"
let prefix_hits = Obs.Metrics.counter "analysis_cache.prefix_hits"
let prefix_misses = Obs.Metrics.counter "analysis_cache.prefix_misses"

let enabled = Atomic.make true

let set_enabled b = Atomic.set enabled b

type stats = {
  hits : int;
  misses : int;
  prefix_hits : int;
  prefix_misses : int;
}

let stats () =
  {
    hits = Obs.Metrics.value result_hits;
    misses = Obs.Metrics.value result_misses;
    prefix_hits = Obs.Metrics.value prefix_hits;
    prefix_misses = Obs.Metrics.value prefix_misses;
  }

let hit_rate { hits; misses; _ } =
  if hits + misses = 0 then 0.0
  else float_of_int hits /. float_of_int (hits + misses)

let reset_stats () =
  Obs.Metrics.set_counter result_hits 0;
  Obs.Metrics.set_counter result_misses 0;
  Obs.Metrics.set_counter prefix_hits 0;
  Obs.Metrics.set_counter prefix_misses 0

let reset () =
  Mutex.lock lock;
  (* Pending entries belong to in-flight computations; dropping them would
     strand their waiters, so only settled entries are cleared. *)
  let settled tbl =
    Hashtbl.fold
      (fun k cell acc -> match cell with Ready _ -> k :: acc | Pending -> acc)
      tbl []
  in
  List.iter (Hashtbl.remove prefixes) (settled prefixes);
  List.iter (Hashtbl.remove results) (settled results);
  Mutex.unlock lock;
  reset_stats ()

(* Compute-once memoisation: the first requester computes, everyone else
   waits for the settled cell.  Cached exceptions are re-raised (the
   pipeline is deterministic, so a failure is as cacheable as a result). *)
let memo tbl hit miss key compute =
  let settle = function Ok v -> v | Error e -> raise e in
  (* Count each logical lookup once, as a hit or a miss, whichever state it
     first observes (waiting on an in-flight key counts as a hit). *)
  let counted = ref false in
  let count c =
    if not !counted then begin
      Obs.Metrics.incr c;
      counted := true
    end
  in
  Mutex.lock lock;
  let rec loop () =
    match Hashtbl.find_opt tbl key with
    | Some (Ready out) ->
        count hit;
        Mutex.unlock lock;
        settle out
    | Some Pending ->
        count hit;
        Condition.wait cond lock;
        (* The key may have been dropped by a concurrent [reset] between
           settling and this wakeup; [loop] then recomputes it. *)
        loop ()
    | None ->
        count miss;
        Hashtbl.replace tbl key Pending;
        Mutex.unlock lock;
        let out = try Ok (compute ()) with e -> Error e in
        Mutex.lock lock;
        Hashtbl.replace tbl key (Ready out);
        Condition.broadcast cond;
        Mutex.unlock lock;
        settle out
  in
  loop ()

let prepared key =
  memo prefixes prefix_hits prefix_misses key (fun () ->
      Wcet.Ipet.prepare ~config:key.pk_config ~pinned_code:key.pk_pinned_code
        ~pinned_data:key.pk_pinned_data
        (Kernel_model.spec ~params:key.pk_params key.pk_build key.pk_entry))

(* A cached solution of a *more* constrained sibling (same prefix and
   forced counts) remains feasible for a less constrained variant and
   warm-starts its branch-and-bound: the full constraint set ([`All])
   warm-starts the unconstrained baseline and the single-source
   ([`Manual] / [`Derived]) variants alike. *)
let warm_start_for rkey =
  let find k =
    match Hashtbl.find_opt results k with
    | Some (Ready (Ok r)) -> Some r.Wcet.Ipet.ilp_solution
    | _ -> None
  in
  if not rkey.rk_use_constraints then
    find { rkey with rk_use_constraints = true; rk_sources = `All }
  else
    match rkey.rk_sources with
    | `All -> None
    | `Manual | `Derived -> find { rkey with rk_sources = `All }

let computed ?(params = Kernel_model.default_params) ?(pinned_code = [])
    ?(pinned_data = []) ?(use_constraints = true)
    ?(sources : Wcet.Ipet.sources = `All)
    ?(forced = ([] : (string * string * int) list)) ~config build entry =
  (* With constraints off the sources selector is inert; normalise it so
     the baseline occupies one cache slot instead of three. *)
  let sources = if use_constraints then sources else `All in
  let pkey =
    {
      pk_build = build;
      pk_entry = entry;
      pk_params = params;
      pk_config = config;
      pk_pinned_code = pinned_code;
      pk_pinned_data = pinned_data;
    }
  in
  if not (Atomic.get enabled) then
    Wcet.Ipet.analyse_prepared ~use_constraints ~sources ~forced
      (Wcet.Ipet.prepare ~config ~pinned_code ~pinned_data
         (Kernel_model.spec ~params build entry))
  else begin
    let rkey =
      {
        rk_prefix = pkey;
        rk_use_constraints = use_constraints;
        rk_sources = sources;
        rk_forced = forced;
      }
    in
    memo results result_hits result_misses rkey (fun () ->
        let prefix = prepared pkey in
        let warm_start =
          Mutex.lock lock;
          let w = warm_start_for rkey in
          Mutex.unlock lock;
          w
        in
        Wcet.Ipet.analyse_prepared ~use_constraints ~sources ~forced
          ?warm_start prefix)
  end

let computed_cycles ?params ?pinned_code ?pinned_data ?use_constraints ?sources
    ?forced ~config build entry =
  (computed ?params ?pinned_code ?pinned_data ?use_constraints ?sources ?forced
     ~config build entry)
    .Wcet.Ipet.wcet
