(* Content-keyed memo cache over the WCET analysis pipeline.

   Every quantity the experiments compute is a pure function of a small
   structured key: (build variant, entry point, kernel-model parameters,
   hardware configuration, pinned lines, forced-path constraints, and
   whether the manual constraints apply).  The experiment suite re-derives
   identical tuples dozens of times across table1/table2/fig8/summary, so
   results are memoised at two levels:

   - a *prefix* cache over {!Wcet.Ipet.prepare} (virtual inlining, loop
     detection, cache-analysis fixpoint), shared by every ILP variant over
     the same (build, entry, params, config, pins);
   - a *result* cache over the full {!Wcet.Ipet.analyse_prepared} output.

   Both tables are guarded by one mutex so concurrent domains (the
   {!Parallel} pool) share work instead of duplicating it: the first
   requester of a key inserts a [Pending] marker and computes outside the
   lock; later requesters of the same key block on a condition variable
   until the result (or the exception) lands.  Hit/miss counters feed the
   bench harness's --json report. *)

type prefix_key = {
  pk_build : Sel4.Build.t;
  pk_entry : Kernel_model.entry_point;
  pk_params : Kernel_model.params;
  pk_config : Hw.Config.t;
  pk_pinned_code : int list;
  pk_pinned_data : int list;
}

type result_key = {
  rk_prefix : prefix_key;
  rk_use_constraints : bool;
  rk_sources : Wcet.Ipet.sources;
  rk_forced : (string * string * int) list;
}

type 'a cell = Pending | Ready of ('a, exn) Result.t

let lock = Mutex.create ()
let cond = Condition.create ()

let prefixes : (prefix_key, Wcet.Ipet.prepared cell) Hashtbl.t =
  Hashtbl.create 64

let results : (result_key, Wcet.Ipet.result cell) Hashtbl.t = Hashtbl.create 64

(* Counters live in the process-wide metrics registry, so `sel4rt metrics`
   and the bench --json report read the same numbers as {!stats}.  A
   result-cache lookup resolves to exactly one of: an in-memory hit, a
   persistent-store hit (a memory miss satisfied from disk with no ILP
   solve), or a miss (a cold computation) — the three counters partition
   the lookups, so per-section bench stats cannot double-count a disk hit
   as both a hit and a miss. *)
let result_hits = Obs.Metrics.counter "analysis_cache.result_hits"
let result_misses = Obs.Metrics.counter "analysis_cache.result_misses"
let result_disk_hits = Obs.Metrics.counter "analysis_cache.disk_hits"
let prefix_hits = Obs.Metrics.counter "analysis_cache.prefix_hits"
let prefix_misses = Obs.Metrics.counter "analysis_cache.prefix_misses"

let enabled = Atomic.make true

let set_enabled b = Atomic.set enabled b

type stats = {
  hits : int;
  misses : int;
  disk_hits : int;
  prefix_hits : int;
  prefix_misses : int;
}

let stats () =
  {
    hits = Obs.Metrics.value result_hits;
    misses = Obs.Metrics.value result_misses;
    disk_hits = Obs.Metrics.value result_disk_hits;
    prefix_hits = Obs.Metrics.value prefix_hits;
    prefix_misses = Obs.Metrics.value prefix_misses;
  }

let hit_rate { hits; misses; disk_hits; _ } =
  let total = hits + disk_hits + misses in
  if total = 0 then 0.0 else float_of_int (hits + disk_hits) /. float_of_int total

let reset_stats () =
  Obs.Metrics.set_counter result_hits 0;
  Obs.Metrics.set_counter result_misses 0;
  Obs.Metrics.set_counter result_disk_hits 0;
  Obs.Metrics.set_counter prefix_hits 0;
  Obs.Metrics.set_counter prefix_misses 0

let reset () =
  Mutex.lock lock;
  (* Pending entries belong to in-flight computations; dropping them would
     strand their waiters, so only settled entries are cleared. *)
  let settled tbl =
    Hashtbl.fold
      (fun k cell acc -> match cell with Ready _ -> k :: acc | Pending -> acc)
      tbl []
  in
  List.iter (Hashtbl.remove prefixes) (settled prefixes);
  List.iter (Hashtbl.remove results) (settled results);
  Mutex.unlock lock;
  reset_stats ()

(* Compute-once memoisation: the first requester computes, everyone else
   waits for the settled cell.  Cached exceptions are re-raised (the
   pipeline is deterministic, so a failure is as cacheable as a result).
   The miss counter is the compute closure's responsibility: the result
   cache attributes a memory miss to either the persistent store or a
   cold computation, which only the closure can distinguish. *)
let memo tbl hit key compute =
  let settle = function Ok v -> v | Error e -> raise e in
  (* Count each logical lookup once, whichever state it first observes
     (waiting on an in-flight key counts as a hit). *)
  let counted = ref false in
  let count c =
    if not !counted then begin
      Obs.Metrics.incr c;
      counted := true
    end
  in
  Mutex.lock lock;
  let rec loop () =
    match Hashtbl.find_opt tbl key with
    | Some (Ready out) ->
        count hit;
        Mutex.unlock lock;
        settle out
    | Some Pending ->
        count hit;
        Condition.wait cond lock;
        (* The key may have been dropped by a concurrent [reset] between
           settling and this wakeup; [loop] then recomputes it. *)
        loop ()
    | None ->
        counted := true;
        Hashtbl.replace tbl key Pending;
        Mutex.unlock lock;
        let out = try Ok (compute ()) with e -> Error e in
        Mutex.lock lock;
        Hashtbl.replace tbl key (Ready out);
        Condition.broadcast cond;
        Mutex.unlock lock;
        settle out
  in
  loop ()

let prepared key =
  memo prefixes prefix_hits key (fun () ->
      Obs.Metrics.incr prefix_misses;
      Wcet.Ipet.prepare ~config:key.pk_config ~pinned_code:key.pk_pinned_code
        ~pinned_data:key.pk_pinned_data
        (Kernel_model.spec ~params:key.pk_params key.pk_build key.pk_entry))

(* --- persistence hooks (installed by Serve.Disk_cache) --- *)

type persist = {
  p_load : string -> Wcet.Ipet.persisted option;
      (** canonical key -> stored record, [None] on miss or corruption *)
  p_store : string -> Wcet.Ipet.persisted -> unit;
}

let persist_store : persist option Atomic.t = Atomic.make None
let set_persist p = Atomic.set persist_store p

(* Canonical text rendering of a result key, in the style of
   {!Sel4.Digest}: every field named, one line per component, no
   dependence on hash-table or marshalling order.  The records are
   destructured field by field so that adding a field to any component
   type fails compilation here rather than silently aliasing distinct
   configurations to one cache entry. *)
let render_key (rk : result_key) =
  let b = Buffer.create 512 in
  let add fmt = Fmt.kstr (Buffer.add_string b) fmt in
  let ints l = String.concat "," (List.map string_of_int l) in
  let {
    pk_build;
    pk_entry;
    pk_params;
    pk_config;
    pk_pinned_code;
    pk_pinned_data;
  } =
    rk.rk_prefix
  in
  let { Sel4.Build.sched; vspace; preemption_points; preempt_chunk } =
    pk_build
  in
  add "build sched=%s vspace=%s preempt=%b chunk=%d\n"
    (match sched with
    | Sel4.Build.Lazy -> "lazy"
    | Sel4.Build.Benno -> "benno"
    | Sel4.Build.Benno_bitmap -> "benno_bitmap")
    (match vspace with
    | Sel4.Build.Asid_table -> "asid_table"
    | Sel4.Build.Shadow_tables -> "shadow_tables")
    preemption_points preempt_chunk;
  add "entry %s\n" (Kernel_model.entry_name pk_entry);
  let {
    Kernel_model.decode_depth;
    msg_words;
    extra_caps;
    max_frame_bits;
    max_ep_waiters;
    max_parked;
    preemptible_call;
  } =
    pk_params
  in
  add
    "params depth=%d msg=%d caps=%d frame_bits=%d waiters=%d parked=%d \
     preemptible_call=%b\n"
    decode_depth msg_words extra_caps max_frame_bits max_ep_waiters max_parked
    preemptible_call;
  let {
    Hw.Config.clock_mhz;
    replacement;
    l1_line;
    l1_sets;
    l1_ways;
    l1_hit_cycles;
    l2_enabled;
    l2_line;
    l2_sets;
    l2_ways;
    l2_hit_cycles;
    mem_cycles_l2_off;
    mem_cycles_l2_on;
    writeback_fraction;
    branch_predictor;
    branch_cost_static;
    branch_cost_predicted;
    branch_cost_mispredicted;
    locked_ways_i;
    locked_ways_d;
    l2_locked_base;
    l2_locked_bytes;
  } =
    pk_config
  in
  add "config clock=%h repl=%s l1=%d/%d/%d+%d l2=%b/%d/%d/%d+%d\n" clock_mhz
    (match replacement with
    | Hw.Config.Lru -> "lru"
    | Hw.Config.Round_robin -> "rr")
    l1_line l1_sets l1_ways l1_hit_cycles l2_enabled l2_line l2_sets l2_ways
    l2_hit_cycles;
  add
    "config mem=%d/%d wb=%d bp=%b/%d/%d/%d lock_ways=%d/%d l2lock=%d+%d\n"
    mem_cycles_l2_off mem_cycles_l2_on writeback_fraction branch_predictor
    branch_cost_static branch_cost_predicted branch_cost_mispredicted
    locked_ways_i locked_ways_d l2_locked_base l2_locked_bytes;
  add "pins code=[%s] data=[%s]\n" (ints pk_pinned_code) (ints pk_pinned_data);
  add "variant constraints=%b sources=%s\n" rk.rk_use_constraints
    (match rk.rk_sources with
    | `All -> "all"
    | `Manual -> "manual"
    | `Derived -> "derived");
  List.iter
    (fun (func, block, count) -> add "forced %s/%s=%d\n" func block count)
    rk.rk_forced;
  Buffer.contents b

(* A cached solution of a *more* constrained sibling (same prefix and
   forced counts) remains feasible for a less constrained variant and
   warm-starts its branch-and-bound: the full constraint set ([`All])
   warm-starts the unconstrained baseline and the single-source
   ([`Manual] / [`Derived]) variants alike. *)
let warm_start_for rkey =
  let find k =
    match Hashtbl.find_opt results k with
    | Some (Ready (Ok r)) -> Some r.Wcet.Ipet.ilp_solution
    | _ -> None
  in
  if not rkey.rk_use_constraints then
    find { rkey with rk_use_constraints = true; rk_sources = `All }
  else
    match rkey.rk_sources with
    | `All -> None
    | `Manual | `Derived -> find { rkey with rk_sources = `All }

let computed ?(params = Kernel_model.default_params) ?(pinned_code = [])
    ?(pinned_data = []) ?(use_constraints = true)
    ?(sources : Wcet.Ipet.sources = `All)
    ?(forced = ([] : (string * string * int) list)) ~config build entry =
  (* With constraints off the sources selector is inert; normalise it so
     the baseline occupies one cache slot instead of three. *)
  let sources = if use_constraints then sources else `All in
  let pkey =
    {
      pk_build = build;
      pk_entry = entry;
      pk_params = params;
      pk_config = config;
      pk_pinned_code = pinned_code;
      pk_pinned_data = pinned_data;
    }
  in
  if not (Atomic.get enabled) then
    Wcet.Ipet.analyse_prepared ~use_constraints ~sources ~forced
      (Wcet.Ipet.prepare ~config ~pinned_code ~pinned_data
         (Kernel_model.spec ~params build entry))
  else begin
    let rkey =
      {
        rk_prefix = pkey;
        rk_use_constraints = use_constraints;
        rk_sources = sources;
        rk_forced = forced;
      }
    in
    memo results result_hits rkey (fun () ->
        let prefix = prepared pkey in
        let solve () =
          Obs.Metrics.incr result_misses;
          let warm_start =
            Mutex.lock lock;
            let w = warm_start_for rkey in
            Mutex.unlock lock;
            w
          in
          Wcet.Ipet.analyse_prepared ~use_constraints ~sources ~forced
            ?warm_start prefix
        in
        match Atomic.get persist_store with
        | None -> solve ()
        | Some store -> (
            let key = render_key rkey in
            match store.p_load key with
            | Some stored -> (
                (* A shape mismatch means a stale or colliding entry:
                   recompute (and overwrite it) rather than crash. *)
                match Wcet.Ipet.rehydrate prefix stored with
                | r ->
                    Obs.Metrics.incr result_disk_hits;
                    r
                | exception Invalid_argument _ ->
                    let r = solve () in
                    store.p_store key (Wcet.Ipet.to_persisted r);
                    r)
            | None ->
                let r = solve () in
                store.p_store key (Wcet.Ipet.to_persisted r);
                r))
  end

let computed_cycles ?params ?pinned_code ?pinned_data ?use_constraints ?sources
    ?forced ~config build entry =
  (computed ?params ?pinned_code ?pinned_data ?use_constraints ?sources ?forced
     ~config build entry)
    .Wcet.Ipet.wcet
