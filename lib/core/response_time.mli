(** Response-time analysis driver: computed (IPET) and observed
    (adversarial execution) worst cases per kernel entry point.

    The headline quantity follows Section 6: worst-case interrupt
    response = WCET of the longest kernel operation (the system-call
    path) + WCET of the interrupt path.

    All drivers take an {!Analysis_ctx.t}. *)

type pins = Analysis_ctx.pins = { code : int list; data : int list }
(** Re-export of {!Analysis_ctx.pins} under its historical name. *)

val no_pins : pins

val computed : Analysis_ctx.t -> Kernel_model.entry_point -> Wcet.Ipet.result
val computed_cycles : Analysis_ctx.t -> Kernel_model.entry_point -> int

val computed_for_path : Analysis_ctx.t -> Kernel_model.entry_point -> int
(** Predicted time of the realisable path the workloads execute, obtained
    by forcing the ILP (Section 6.2); the Figure 8 numerator. *)

val observed : ?runs:int -> Analysis_ctx.t -> Kernel_model.entry_point -> int
(** Worst cycles over [runs] polluted-cache adversarial executions. *)

val observed_traced :
  ?runs:int ->
  Analysis_ctx.t ->
  Kernel_model.entry_point ->
  int * Workloads.provenance
(** Same worst case as {!observed} (the attached event trace never charges
    cycles), plus the latency attribution of the worst run. *)

val interrupt_response_bound : Analysis_ctx.t -> int

val profile : Analysis_ctx.t -> Kernel_model.entry_point -> Obs.Bound_profile.t
(** Block-by-block decomposition of the entry point's computed bound
    (the optimal IPET basis); its {!Obs.Bound_profile.total} equals
    {!computed_cycles} exactly.  Cached like {!computed}. *)

val interrupt_response_profile : Analysis_ctx.t -> Obs.Bound_profile.t
(** Decomposition of the full response bound: the syscall-path profile
    followed by the interrupt-path profile; total equals
    {!interrupt_response_bound}. *)

val us : Hw.Config.t -> int -> float
