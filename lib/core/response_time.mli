(** Response-time analysis driver: computed (IPET) and observed
    (adversarial execution) worst cases per kernel entry point.

    The headline quantity follows Section 6: worst-case interrupt
    response = WCET of the longest kernel operation (the system-call
    path) + WCET of the interrupt path. *)

type pins = { code : int list; data : int list }

val no_pins : pins

val computed :
  ?params:Kernel_model.params ->
  ?pins:pins ->
  config:Hw.Config.t ->
  Sel4.Build.t ->
  Kernel_model.entry_point ->
  Wcet.Ipet.result

val computed_cycles :
  ?params:Kernel_model.params ->
  ?pins:pins ->
  config:Hw.Config.t ->
  Sel4.Build.t ->
  Kernel_model.entry_point ->
  int

val computed_for_path :
  ?params:Kernel_model.params ->
  config:Hw.Config.t ->
  Sel4.Build.t ->
  Kernel_model.entry_point ->
  int
(** Predicted time of the realisable path the workloads execute, obtained
    by forcing the ILP (Section 6.2); the Figure 8 numerator. *)

val observed :
  ?runs:int ->
  ?params:Kernel_model.params ->
  config:Hw.Config.t ->
  Sel4.Build.t ->
  Kernel_model.entry_point ->
  int
(** Worst cycles over [runs] polluted-cache adversarial executions. *)

val observed_traced :
  ?runs:int ->
  ?params:Kernel_model.params ->
  config:Hw.Config.t ->
  Sel4.Build.t ->
  Kernel_model.entry_point ->
  int * Workloads.provenance
(** Same worst case as {!observed} (the attached event trace never charges
    cycles), plus the latency attribution of the worst run. *)

val interrupt_response_bound :
  ?params:Kernel_model.params ->
  ?pins:pins ->
  config:Hw.Config.t ->
  Sel4.Build.t ->
  int

val us : Hw.Config.t -> int -> float
