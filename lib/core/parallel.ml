(* Fixed-size OCaml 5 Domain worker pool (stdlib only — domainslib is not
   available in this environment).

   The analysis engine fans (entry point x hardware configuration x build)
   jobs out across domains: every job is a pure function of its inputs (the
   simulator and the WCET pipeline allocate all their state per call), so
   parallel evaluation is deterministic and [map]/[run_all] return results
   in submission order, exactly as the serial path would.

   Design notes:
   - Work is submitted as a *batch*; the submitting domain participates in
     draining its own batch, so a batch can never deadlock waiting for busy
     workers, and nested [map] calls from worker domains simply degrade to
     serial execution (checked via a domain-local flag).
   - Exceptions inside jobs are caught per-job; the first one is re-raised
     in the submitter after the whole batch has drained, so the pool is
     never left with orphaned jobs.
   - The pool is sized once (SEL4RT_DOMAINS overrides the default of
     [recommended_domain_count - 1], capped at 8) and shared process-wide
     via [default]; [set_serial true] forces every map onto the calling
     domain, which benchmarks use to measure the serial baseline. *)

type batch = {
  count : int;
  run : int -> unit;  (* run job [i]; must not raise *)
  next : int Atomic.t;  (* next job index to claim *)
  remaining : int Atomic.t;  (* jobs not yet finished *)
}

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* workers: a batch was submitted / shutdown *)
  finished : Condition.t;  (* submitters: some batch drained *)
  mutable batches : batch list;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  size : int;  (* worker domains; the submitter adds one more *)
}

let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Pool activity for the metrics registry (bench --json, sel4rt metrics). *)
let m_batches = Obs.Metrics.counter "parallel.batches"
let m_jobs = Obs.Metrics.counter "parallel.jobs"
let m_domains = Obs.Metrics.gauge "parallel.domains"

let serial_override = Atomic.make false

let set_serial b = Atomic.set serial_override b

(* Claim and run jobs from [b] until it is exhausted.  Called both by
   workers and by the submitting domain. *)
let help pool b =
  let rec loop () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.count then begin
      b.run i;
      if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
        (* Last job of the batch: wake any submitter waiting on it. *)
        Mutex.lock pool.lock;
        Condition.broadcast pool.finished;
        Mutex.unlock pool.lock
      end;
      loop ()
    end
  in
  loop ()

let worker pool () =
  Domain.DLS.set in_worker true;
  let rec next_batch () =
    Mutex.lock pool.lock;
    let rec wait () =
      if pool.stop then begin
        Mutex.unlock pool.lock;
        None
      end
      else begin
        (* Drop exhausted batches; their submitters hold their results. *)
        pool.batches <-
          List.filter (fun b -> Atomic.get b.next < b.count) pool.batches;
        match pool.batches with
        | b :: _ ->
            Mutex.unlock pool.lock;
            Some b
        | [] ->
            Condition.wait pool.work pool.lock;
            wait ()
      end
    in
    match wait () with
    | None -> ()
    | Some b ->
        help pool b;
        next_batch ()
  in
  next_batch ()

let create ?domains () =
  let size =
    match domains with
    | Some n -> max 0 (n - 1)  (* the submitter is one of the [n] *)
    | None -> (
        match Sys.getenv_opt "SEL4RT_DOMAINS" with
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some n when n >= 1 -> n - 1
            | _ -> invalid_arg "SEL4RT_DOMAINS must be a positive integer")
        | None -> max 0 (min 8 (Domain.recommended_domain_count ()) - 1))
  in
  let pool =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batches = [];
      stop = false;
      workers = [];
      size;
    }
  in
  pool.workers <- List.init size (fun _ -> Domain.spawn (worker pool));
  Obs.Metrics.set_gauge m_domains (float_of_int (size + 1));
  pool

let size pool = pool.size + 1

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

(* The process-wide pool, created on first use.  Guarded by a mutex rather
   than [lazy] because [Lazy.force] is not safe under domain races. *)
let default_lock = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_lock;
  pool

let map pool f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if
    n <= 1 || pool.size = 0
    || Atomic.get serial_override
    || Domain.DLS.get in_worker
  then List.map f xs
  else begin
    let results = Array.make n None in
    let error = Atomic.make None in
    let run i =
      match f arr.(i) with
      | r -> results.(i) <- Some r
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set error None (Some (e, bt)))
    in
    Obs.Metrics.incr m_batches;
    Obs.Metrics.incr ~by:n m_jobs;
    let b =
      { count = n; run; next = Atomic.make 0; remaining = Atomic.make n }
    in
    Mutex.lock pool.lock;
    pool.batches <- pool.batches @ [ b ];
    Condition.broadcast pool.work;
    Mutex.unlock pool.lock;
    help pool b;
    Mutex.lock pool.lock;
    while Atomic.get b.remaining > 0 do
      Condition.wait pool.finished pool.lock
    done;
    Mutex.unlock pool.lock;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let run_all pool thunks = map pool (fun f -> f ()) thunks

(* --- streaming ordered fold --- *)

type 'a fold_slot =
  | Fold_pending
  | Fold_done of 'a
  | Fold_consumed  (* merged into the accumulator, or the job raised *)

(* Fold thunk results into [init] in submission order, merging each result
   on the submitting domain as soon as the ordered prefix is complete.
   Equivalent to [run_all] followed by [List.fold_left merge init], but
   retains at most the out-of-order window of results (bounded by the
   domain count) instead of the whole batch — this is what keeps soak
   campaigns at constant memory in the job count.  Merge order never
   depends on completion order, so the fold is deterministic under any
   parallelism.  The submitter alternates between merging ready results
   and helping run unclaimed jobs. *)
let fold_ordered pool ~init ~merge thunks =
  let arr = Array.of_list thunks in
  let n = Array.length arr in
  if n = 0 then init
  else if
    n <= 1 || pool.size = 0
    || Atomic.get serial_override
    || Domain.DLS.get in_worker
  then Array.fold_left (fun acc th -> merge acc (th ())) init arr
  else begin
    let slots = Array.init n (fun _ -> Atomic.make Fold_pending) in
    let error = Atomic.make None in
    let run i =
      (match arr.(i) () with
      | r -> Atomic.set slots.(i) (Fold_done r)
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set error None (Some (e, bt)));
          Atomic.set slots.(i) Fold_consumed);
      (* Wake the submitter after every job, not only the batch's last:
         it may be blocked on exactly this slot. *)
      Mutex.lock pool.lock;
      Condition.broadcast pool.finished;
      Mutex.unlock pool.lock
    in
    Obs.Metrics.incr m_batches;
    Obs.Metrics.incr ~by:n m_jobs;
    let b =
      { count = n; run; next = Atomic.make 0; remaining = Atomic.make n }
    in
    Mutex.lock pool.lock;
    pool.batches <- pool.batches @ [ b ];
    Condition.broadcast pool.work;
    Mutex.unlock pool.lock;
    let acc = ref init in
    let merged = ref 0 in
    let drain_ready () =
      let continue = ref true in
      while !continue && !merged < n do
        match Atomic.get slots.(!merged) with
        | Fold_done r ->
            Atomic.set slots.(!merged) Fold_consumed;  (* release for GC *)
            acc := merge !acc r;
            incr merged
        | Fold_consumed -> incr merged  (* job raised: nothing to merge *)
        | Fold_pending -> continue := false
      done
    in
    while !merged < n do
      drain_ready ();
      if !merged < n then begin
        let i = Atomic.fetch_and_add b.next 1 in
        if i < b.count then begin
          b.run i;
          if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
            Mutex.lock pool.lock;
            Condition.broadcast pool.finished;
            Mutex.unlock pool.lock
          end
        end
        else begin
          (* Every job is claimed; sleep until the next-to-merge slot is
             filled.  The slot check and the workers' broadcast both run
             under the pool lock, so the wakeup cannot be lost. *)
          Mutex.lock pool.lock;
          (match Atomic.get slots.(!merged) with
          | Fold_pending when Atomic.get b.remaining > 0 ->
              Condition.wait pool.finished pool.lock
          | _ -> ());
          Mutex.unlock pool.lock
        end
      end
    done;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    !acc
  end
